// Ablation (paper §2.4): cost of emulating the DNS hierarchy with one
// meta-DNS-server + proxies vs one server process per nameserver address.
//
// The paper's argument: per-zone servers cannot scale to the hundreds of
// zones a recursive trace touches (memory + virtual interfaces), while the
// meta-server needs one listener and one zone store. This harness measures
// both topologies serving the same reconstructed hierarchy: node count,
// zone-store memory, and the resolver-visible behaviour (which must be
// identical — checked, not assumed).
#include "bench/bench_util.h"
#include "proxy/proxy.h"
#include "resolver/resolver.h"

using namespace ldp;

namespace {

struct TopologyCost {
  size_t server_nodes = 0;
  size_t listener_addresses = 0;
  size_t zone_store_bytes = 0;
  uint64_t upstream_queries = 0;
  size_t answers = 0;
};

TopologyCost RunDistributed(const workload::Hierarchy& hierarchy,
                            const std::vector<dns::Name>& probes) {
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  TopologyCost cost;

  std::vector<std::unique_ptr<server::SimDnsServer>> servers;
  for (const auto& [address, origin] : hierarchy.address_to_zone) {
    zone::ZoneSet set;
    for (const auto& zone : hierarchy.AllZones()) {
      if (zone->origin() == origin) {
        auto add_ok = set.AddZone(zone);
        (void)add_ok;
        // Every per-address replica keeps its own copy in the naive
        // deployment; count it.
        cost.zone_store_bytes += zone->MemoryFootprint();
        break;
      }
    }
    servers.push_back(
        server::MakeAuthoritativeNode(net, address, std::move(set)));
    ++cost.server_nodes;
    ++cost.listener_addresses;
  }

  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 2);
  rconfig.root_hints = hierarchy.nameservers.at(dns::Name::Root());
  resolver::SimResolver resolver(net, rconfig);
  auto start_ok = resolver.Start();
  (void)start_ok;

  for (const auto& name : probes) {
    resolver.Resolve(name, dns::RRType::kA, [&](const dns::Message& m) {
      if (!m.answers.empty()) ++cost.answers;
    });
    simulator.Run();
  }
  cost.upstream_queries = resolver.stats().upstream_queries;
  return cost;
}

TopologyCost RunMetaServer(const workload::Hierarchy& hierarchy,
                           const std::vector<dns::Name>& probes) {
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  TopologyCost cost;

  zone::ViewTable views;
  for (const auto& zone : hierarchy.AllZones()) {
    zone::ZoneSet set;
    auto add_ok = set.AddZone(zone);
    (void)add_ok;
    cost.zone_store_bytes += zone->MemoryFootprint();  // one copy, total
    auto view_ok = views.AddView(zone->origin().ToString(),
                                 hierarchy.nameservers.at(zone->origin()),
                                 std::move(set));
    (void)view_ok;
  }
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));
  server::SimDnsServer::Config config;
  config.address = IpAddress(10, 0, 0, 50);
  server::SimDnsServer meta(net, engine, config);
  auto start_ok = meta.Start();
  (void)start_ok;
  cost.server_nodes = 1;
  cost.listener_addresses = 1;

  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 2);
  rconfig.root_hints = hierarchy.nameservers.at(dns::Name::Root());
  resolver::SimResolver resolver(net, rconfig);
  auto rstart_ok = resolver.Start();
  (void)rstart_ok;
  proxy::RecursiveProxy rproxy(net, rconfig.address, config.address);
  proxy::AuthoritativeProxy aproxy(net, config.address, rconfig.address);

  for (const auto& name : probes) {
    resolver.Resolve(name, dns::RRType::kA, [&](const dns::Message& m) {
      if (!m.answers.empty()) ++cost.answers;
    });
    simulator.Run();
  }
  cost.upstream_queries = resolver.stats().upstream_queries;
  return cost;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: hierarchy emulation topology",
                     "meta-DNS-server + proxies vs one server per "
                     "nameserver address",
                     "549 zones fit one server instance; per-zone servers "
                     "hit host/interface limits (paper 2.4)");

  stats::Table table({"zones", "topology", "server nodes", "listen addrs",
                      "zone-store", "upstream queries", "answers"});
  for (auto [tlds, slds] : {std::pair<size_t, size_t>{5, 10}, {20, 27}}) {
    workload::HierarchyConfig config;
    config.n_tlds = tlds;
    config.n_slds_per_tld = slds;
    auto hierarchy = workload::BuildHierarchy(config);
    std::vector<dns::Name> probes(
        hierarchy.hostnames.begin(),
        hierarchy.hostnames.begin() +
            std::min<size_t>(hierarchy.hostnames.size(), 200));

    auto distributed = RunDistributed(hierarchy, probes);
    auto meta = RunMetaServer(hierarchy, probes);
    size_t zones = hierarchy.AllZones().size();
    table.AddRow({std::to_string(zones), "per-zone servers",
                  std::to_string(distributed.server_nodes),
                  std::to_string(distributed.listener_addresses),
                  FormatDouble(distributed.zone_store_bytes/1048576.0, 1) + " MB",
                  std::to_string(distributed.upstream_queries),
                  std::to_string(distributed.answers)});
    table.AddRow({std::to_string(zones), "meta-server+proxies",
                  std::to_string(meta.server_nodes),
                  std::to_string(meta.listener_addresses),
                  FormatDouble(meta.zone_store_bytes/1048576.0, 1) + " MB",
                  std::to_string(meta.upstream_queries),
                  std::to_string(meta.answers)});
    if (distributed.upstream_queries != meta.upstream_queries ||
        distributed.answers != meta.answers) {
      std::printf("WARNING: behaviours diverge — emulation is NOT faithful\n");
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("identical upstream-query counts and answers confirm the "
              "emulation is behaviour-preserving while collapsing N server "
              "nodes (and N listener addresses / routes) to 1.\n");
  return 0;
}
