// Ablation (paper §2.4): cost of emulating the DNS hierarchy with one
// meta-DNS-server + proxies vs one server process per nameserver address.
//
// The paper's argument: per-zone servers cannot scale to the hundreds of
// zones a recursive trace touches (memory + virtual interfaces), while the
// meta-server needs one listener and one zone store. This harness measures
// both topologies serving the same reconstructed hierarchy: node count,
// zone-store memory, and the resolver-visible behaviour (which must be
// identical — checked, not assumed).
// Phase 2 (real sockets): the same split-horizon meta-server behind the
// HierarchyProxy, driven by the realtime replay engine over loopback UDP —
// proxied vs direct throughput, written to BENCH_hierarchy.json.
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "proxy/proxy.h"
#include "proxy/relay.h"
#include "replay/realtime.h"
#include "resolver/resolver.h"
#include "server/sharded_server.h"
#include "trace/record.h"

using namespace ldp;

namespace {

struct TopologyCost {
  size_t server_nodes = 0;
  size_t listener_addresses = 0;
  size_t zone_store_bytes = 0;
  uint64_t upstream_queries = 0;
  size_t answers = 0;
};

TopologyCost RunDistributed(const workload::Hierarchy& hierarchy,
                            const std::vector<dns::Name>& probes) {
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  TopologyCost cost;

  std::vector<std::unique_ptr<server::SimDnsServer>> servers;
  for (const auto& [address, origin] : hierarchy.address_to_zone) {
    zone::ZoneSet set;
    for (const auto& zone : hierarchy.AllZones()) {
      if (zone->origin() == origin) {
        auto add_ok = set.AddZone(zone);
        (void)add_ok;
        // Every per-address replica keeps its own copy in the naive
        // deployment; count it.
        cost.zone_store_bytes += zone->MemoryFootprint();
        break;
      }
    }
    servers.push_back(
        server::MakeAuthoritativeNode(net, address, std::move(set)));
    ++cost.server_nodes;
    ++cost.listener_addresses;
  }

  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 2);
  rconfig.root_hints = hierarchy.nameservers.at(dns::Name::Root());
  resolver::SimResolver resolver(net, rconfig);
  auto start_ok = resolver.Start();
  (void)start_ok;

  for (const auto& name : probes) {
    resolver.Resolve(name, dns::RRType::kA, [&](const dns::Message& m) {
      if (!m.answers.empty()) ++cost.answers;
    });
    simulator.Run();
  }
  cost.upstream_queries = resolver.stats().upstream_queries;
  return cost;
}

TopologyCost RunMetaServer(const workload::Hierarchy& hierarchy,
                           const std::vector<dns::Name>& probes) {
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  TopologyCost cost;

  zone::ViewTable views;
  for (const auto& zone : hierarchy.AllZones()) {
    zone::ZoneSet set;
    auto add_ok = set.AddZone(zone);
    (void)add_ok;
    cost.zone_store_bytes += zone->MemoryFootprint();  // one copy, total
    auto view_ok = views.AddView(zone->origin().ToString(),
                                 hierarchy.nameservers.at(zone->origin()),
                                 std::move(set));
    (void)view_ok;
  }
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));
  server::SimDnsServer::Config config;
  config.address = IpAddress(10, 0, 0, 50);
  server::SimDnsServer meta(net, engine, config);
  auto start_ok = meta.Start();
  (void)start_ok;
  cost.server_nodes = 1;
  cost.listener_addresses = 1;

  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 2);
  rconfig.root_hints = hierarchy.nameservers.at(dns::Name::Root());
  resolver::SimResolver resolver(net, rconfig);
  auto rstart_ok = resolver.Start();
  (void)rstart_ok;
  proxy::RecursiveProxy rproxy(net, rconfig.address, config.address);
  proxy::AuthoritativeProxy aproxy(net, config.address, rconfig.address);

  for (const auto& name : probes) {
    resolver.Resolve(name, dns::RRType::kA, [&](const dns::Message& m) {
      if (!m.answers.empty()) ++cost.answers;
    });
    simulator.Run();
  }
  cost.upstream_queries = resolver.stats().upstream_queries;
  return cost;
}

// --- Real-socket phase -----------------------------------------------------

struct RealRun {
  uint64_t sent = 0;
  uint64_t answered = 0;
  uint64_t lost = 0;  // timed_out + send_failed after retransmits
  uint64_t retransmits = 0;
  double qps = 0;     // end-to-end: sent / wall
  double wall_s = 0;
};

RealRun SummarizeReport(const replay::RealtimeReport& report) {
  RealRun run;
  run.sent = report.queries_sent;
  run.answered = report.answered;
  run.lost = report.timed_out + report.send_failed;
  run.retransmits = report.retransmits;
  run.wall_s = ToSeconds(report.wall_duration);
  run.qps = run.wall_s > 0 ? static_cast<double>(run.sent) / run.wall_s : 0;
  return run;
}

// Paced loopback replay of `records` restamped to `qps`. Returns nullopt
// (with a message) on setup failure.
std::optional<RealRun> Replay(std::vector<trace::QueryRecord> records,
                              int64_t qps,
                              const replay::RealtimeConfig& config) {
  const NanoDuration step = kNanosPerSecond / qps;
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].timestamp = static_cast<NanoTime>(i) * step;
  }
  auto report = replay::RunRealtimeReplay(records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "replay: %s\n", report.error().ToString().c_str());
    return std::nullopt;
  }
  return SummarizeReport(*report);
}

// Builds the query stream of the real-socket phase: leaf A lookups against
// the PUBLIC nameserver addresses (the OQDAs a capture point would record),
// every 7th a delegation NS query one level up. Timestamps ascend but are
// ignored (fast mode).
std::vector<trace::QueryRecord> MakeRealTrace(
    const workload::Hierarchy& hierarchy, size_t n_queries) {
  std::vector<trace::QueryRecord> records;
  records.reserve(n_queries);
  for (size_t i = 0; i < n_queries; ++i) {
    trace::QueryRecord record;
    record.timestamp = static_cast<NanoTime>(i) * 1000;
    record.src = IpAddress(203, 0, 113, static_cast<uint8_t>(1 + i % 200));
    record.src_port = static_cast<uint16_t>(40000 + i % 20000);
    record.qname = hierarchy.hostnames[i % hierarchy.hostnames.size()];
    auto owner = record.qname.Parent();
    if (!owner.ok()) continue;
    dns::Name target_zone = *owner;
    if (i % 7 == 3) {
      record.qname = target_zone;
      record.qtype = dns::RRType::kNS;
      if (auto parent = target_zone.Parent(); parent.ok()) {
        target_zone = *parent;
      }
    }
    auto ns = hierarchy.nameservers.find(target_zone);
    if (ns == hierarchy.nameservers.end() || ns->second.empty()) continue;
    record.dst = ns->second[i % ns->second.size()];
    record.dst_port = 53;
    records.push_back(std::move(record));
  }
  return records;
}

int RunRealSocketPhase(bench::BenchJson& json) {
  workload::HierarchyConfig hconfig;
  hconfig.n_tlds = 3;
  hconfig.n_slds_per_tld = 4;
  hconfig.n_hosts_per_sld = 2;
  auto hierarchy = workload::BuildHierarchy(hconfig);

  // Split-horizon views keyed on the proxy's REWRITTEN sources (the
  // LoopbackAlias'd OQDAs), plus a default view holding every zone so the
  // direct baseline — whose queries arrive from 127.0.0.1 — still answers.
  zone::ViewTable views;
  zone::ZoneSet all_zones;
  for (const auto& zone : hierarchy.AllZones()) {
    zone::ZoneSet set;
    auto add_ok = set.AddZone(zone);
    (void)add_ok;
    auto all_ok = all_zones.AddZone(zone);
    (void)all_ok;
    std::vector<IpAddress> sources;
    for (IpAddress addr : hierarchy.nameservers.at(zone->origin())) {
      sources.push_back(LoopbackAlias(addr));
    }
    auto view_ok =
        views.AddView(zone->origin().ToString(), sources, std::move(set));
    (void)view_ok;
  }
  views.SetDefaultView(std::move(all_zones));
  auto shared_views =
      std::make_shared<const zone::ViewTable>(std::move(views));

  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 2;
  sconfig.serve_tcp = false;
  sconfig.udp_recv_buffer_bytes = 1 << 22;
  sconfig.engine.response_cache_entries = 4096;
  auto meta = server::ShardedDnsServer::Start(shared_views, sconfig);
  if (!meta.ok()) {
    std::fprintf(stderr, "meta server: %s\n",
                 meta.error().ToString().c_str());
    return 1;
  }

  const size_t kQueries = 40000;
  auto records = MakeRealTrace(hierarchy, kQueries);

  // One distributor, one querier: on small hosts the whole chain
  // (replayer + relay + meta server) time-slices few cores, and extra
  // replay threads cost more in context switches than they add in send
  // capacity. Retransmits recover transient kernel-buffer drops; a query
  // is only "lost" if it times out after the retransmit budget.
  replay::RealtimeConfig rconfig;
  rconfig.server = (*meta)->endpoint();
  rconfig.n_distributors = 1;
  rconfig.queriers_per_distributor = 1;
  rconfig.query_timeout = Millis(300);
  rconfig.max_retransmits = 2;

  // Proxied path: the replayer addresses each OQDA (aliased into 127/8) on
  // the relay's service port; the relay rewrites toward the meta server.
  proxy::RelayConfig pconfig;
  for (const auto& [address, origin] : hierarchy.address_to_zone) {
    pconfig.addresses.push_back(LoopbackAlias(address));
  }
  pconfig.meta_server = rconfig.server;
  pconfig.n_shards = 1;
  pconfig.udp_recv_buffer_bytes = 1 << 22;
  pconfig.flow_capacity = 1 << 16;
  pconfig.splice_tcp = false;  // all-UDP stream; TCP splice is test-covered
  auto relay = proxy::HierarchyProxy::Start(pconfig);
  if (!relay.ok()) {
    std::fprintf(stderr, "relay: %s\n", relay.error().ToString().c_str());
    return 1;
  }

  replay::RealtimeConfig proxied_config = rconfig;
  proxied_config.follow_trace_dst = true;
  proxied_config.dst_port_override = (*relay)->port();
  proxied_config.loopback_alias_dst = true;

  // Descending offered-rate ladder. Achieved throughput is not monotonic
  // in offered rate: a rung can be zero-loss yet spend most of its wall
  // time in the retransmit tail, so keep walking down past the first
  // clean rung and report the zero-loss run with the best achieved rate.
  const int64_t kLadder[] = {80000, 60000, 50000, 40000, 30000, 20000,
                             10000, 5000};
  std::optional<RealRun> proxied;
  int64_t offered = 0;
  for (int64_t rate : kLadder) {
    // Let the relay and server drain the previous rung's retransmit
    // backlog; late responses otherwise bleed into this rung's loss.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    auto run = Replay(records, rate, proxied_config);
    if (!run) return 1;
    std::printf("  proxied @ %lldk q/s offered: answered %llu/%llu, "
                "retransmits %llu, wall %.2fs (%.1fk q/s)\n",
                static_cast<long long>(rate / 1000),
                static_cast<unsigned long long>(run->answered),
                static_cast<unsigned long long>(run->sent),
                static_cast<unsigned long long>(run->retransmits),
                run->wall_s, run->qps / 1000.0);
    if (run->lost != 0) continue;
    if (!proxied) {
      proxied = run;
      offered = rate;
    } else if (run->qps > proxied->qps) {
      proxied = run;
      offered = rate;
    } else {
      break;  // achieved rate started falling again; stop descending
    }
  }
  if (!proxied) {
    std::fprintf(stderr, "no zero-loss rate found down to 5k q/s\n");
    return 1;
  }
  proxy::RelayStats relay_stats = (*relay)->TotalStats();

  // Direct baseline at the same offered rate: every query straight at the
  // meta server's endpoint.
  auto direct_records = records;
  for (auto& record : direct_records) {
    record.dst = rconfig.server.addr;
    record.dst_port = rconfig.server.port;
  }
  auto direct = Replay(direct_records, offered, rconfig);
  if (!direct) return 1;
  (*relay)->Stop();
  (*meta)->Stop();

  double ratio = direct->qps > 0 ? proxied->qps / direct->qps : 0;

  stats::Table table({"path", "offered", "sent", "answered", "lost",
                      "wall (s)", "achieved"});
  table.AddRow({"direct -> meta",
                FormatDouble(offered / 1000.0, 0) + "k q/s",
                std::to_string(direct->sent),
                std::to_string(direct->answered),
                std::to_string(direct->lost),
                FormatDouble(direct->wall_s, 2),
                FormatDouble(direct->qps / 1000.0, 1) + "k q/s"});
  table.AddRow({"via ldp_proxy",
                FormatDouble(offered / 1000.0, 0) + "k q/s",
                std::to_string(proxied->sent),
                std::to_string(proxied->answered),
                std::to_string(proxied->lost),
                FormatDouble(proxied->wall_s, 2),
                FormatDouble(proxied->qps / 1000.0, 1) + "k q/s"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("proxied/direct throughput ratio: %.2f; relay rewrote %llu "
              "datagrams across %llu flows (%llu evicted, %llu port "
              "fallbacks)\n",
              ratio,
              static_cast<unsigned long long>(relay_stats.rewritten),
              static_cast<unsigned long long>(relay_stats.flows_created),
              static_cast<unsigned long long>(relay_stats.flows_evicted),
              static_cast<unsigned long long>(relay_stats.port_fallbacks));

  json.Set("real_queries", static_cast<uint64_t>(records.size()));
  json.Set("real_emulated_addresses",
           static_cast<uint64_t>(pconfig.addresses.size()));
  json.Set("zero_loss_offered_qps", static_cast<uint64_t>(offered));
  json.Set("direct_qps", direct->qps);
  json.Set("direct_answered", direct->answered);
  json.Set("direct_lost", direct->lost);
  json.Set("proxied_qps", proxied->qps);
  json.Set("proxied_answered", proxied->answered);
  json.Set("proxied_lost", proxied->lost);
  json.Set("proxied_retransmits", proxied->retransmits);
  json.Set("proxied_direct_ratio", ratio);
  json.Set("relay_rewritten", relay_stats.rewritten);
  json.Set("relay_flows_created", relay_stats.flows_created);
  json.Set("relay_flows_evicted", relay_stats.flows_evicted);
  json.Set("relay_port_fallbacks", relay_stats.port_fallbacks);
  json.Set("relay_meta_send_errors", relay_stats.meta_send_errors);
  return 0;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: hierarchy emulation topology",
                     "meta-DNS-server + proxies vs one server per "
                     "nameserver address",
                     "549 zones fit one server instance; per-zone servers "
                     "hit host/interface limits (paper 2.4)");

  bench::BenchJson json;
  stats::Table table({"zones", "topology", "server nodes", "listen addrs",
                      "zone-store", "upstream queries", "answers"});
  for (auto [tlds, slds] : {std::pair<size_t, size_t>{5, 10}, {20, 27}}) {
    workload::HierarchyConfig config;
    config.n_tlds = tlds;
    config.n_slds_per_tld = slds;
    auto hierarchy = workload::BuildHierarchy(config);
    std::vector<dns::Name> probes(
        hierarchy.hostnames.begin(),
        hierarchy.hostnames.begin() +
            std::min<size_t>(hierarchy.hostnames.size(), 200));

    auto distributed = RunDistributed(hierarchy, probes);
    auto meta = RunMetaServer(hierarchy, probes);
    size_t zones = hierarchy.AllZones().size();
    table.AddRow({std::to_string(zones), "per-zone servers",
                  std::to_string(distributed.server_nodes),
                  std::to_string(distributed.listener_addresses),
                  FormatDouble(distributed.zone_store_bytes/1048576.0, 1) + " MB",
                  std::to_string(distributed.upstream_queries),
                  std::to_string(distributed.answers)});
    table.AddRow({std::to_string(zones), "meta-server+proxies",
                  std::to_string(meta.server_nodes),
                  std::to_string(meta.listener_addresses),
                  FormatDouble(meta.zone_store_bytes/1048576.0, 1) + " MB",
                  std::to_string(meta.upstream_queries),
                  std::to_string(meta.answers)});
    if (distributed.upstream_queries != meta.upstream_queries ||
        distributed.answers != meta.answers) {
      std::printf("WARNING: behaviours diverge — emulation is NOT faithful\n");
    }
    if (tlds == 20) {
      json.Set("sim_zones", static_cast<uint64_t>(zones));
      json.Set("sim_per_zone_nodes",
               static_cast<uint64_t>(distributed.server_nodes));
      json.Set("sim_meta_nodes", static_cast<uint64_t>(meta.server_nodes));
      json.Set("sim_per_zone_store_mb",
               static_cast<double>(distributed.zone_store_bytes) / 1048576.0);
      json.Set("sim_meta_store_mb",
               static_cast<double>(meta.zone_store_bytes) / 1048576.0);
      json.Set("sim_behaviour_identical",
               static_cast<uint64_t>(
                   distributed.upstream_queries == meta.upstream_queries &&
                   distributed.answers == meta.answers));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("identical upstream-query counts and answers confirm the "
              "emulation is behaviour-preserving while collapsing N server "
              "nodes (and N listener addresses / routes) to 1.\n");

  bench::PrintHeader("Hierarchy emulation over real sockets",
                     "paced loopback replay, rate ladder, direct vs via "
                     "the address-rewriting relay",
                     "proxy adds one UDP hop; throughput stays within the "
                     "same order (paper 2.4)");
  int real_rc = RunRealSocketPhase(json);
  json.WriteTo("BENCH_hierarchy.json");
  return real_rc;
}
