// Ablation (paper §2.5, Figure 3): input-format processing cost — parsing
// the human-editable text format live vs decoding the pre-processed
// length-prefixed binary stream vs full pcap parsing.
//
// LDplayer pre-converts traces to the binary form precisely because text
// parsing at replay time would bound the query rate; this measures that
// gap with google-benchmark.
#include <benchmark/benchmark.h>

#include "trace/binary.h"
#include "trace/pcap.h"
#include "trace/text.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

std::vector<trace::QueryRecord> SampleRecords(size_t n) {
  workload::FixedIntervalConfig config;
  config.interarrival = Micros(100);
  config.duration = static_cast<NanoDuration>(n) * Micros(100);
  return workload::MakeFixedIntervalTrace(config);
}

void BM_TextParse(benchmark::State& state) {
  auto records = SampleRecords(1000);
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const auto& r : records) lines.push_back(trace::FormatQueryLine(r));
  size_t i = 0;
  for (auto _ : state) {
    auto record = trace::ParseQueryLine(lines[i % lines.size()]);
    benchmark::DoNotOptimize(record);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TextParse);

void BM_BinaryDecode(benchmark::State& state) {
  auto records = SampleRecords(1000);
  Bytes stream = trace::EncodeBinaryTrace(records);
  ByteReader reader(stream);
  for (auto _ : state) {
    if (reader.AtEnd()) {
      auto seek_ok = reader.Seek(0);
      benchmark::DoNotOptimize(seek_ok);
    }
    auto record = trace::DecodeBinaryRecord(reader);
    benchmark::DoNotOptimize(record);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryDecode);

void BM_PcapParse(benchmark::State& state) {
  auto records = SampleRecords(256);
  std::vector<trace::PacketRecord> packets;
  for (const auto& r : records) {
    packets.push_back(trace::MessageToPacket(r.ToMessage(), r.timestamp,
                                             r.src, r.src_port, r.dst,
                                             r.dst_port, r.protocol));
  }
  Bytes file = trace::WritePcap(packets);
  for (auto _ : state) {
    auto parsed = trace::ReadPcap(file);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * packets.size()));
}
BENCHMARK(BM_PcapParse);

void BM_BinaryEncode(benchmark::State& state) {
  auto records = SampleRecords(1000);
  size_t i = 0;
  for (auto _ : state) {
    ByteWriter writer;
    trace::EncodeBinaryRecord(records[i % records.size()], writer);
    benchmark::DoNotOptimize(writer.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryEncode);

}  // namespace

BENCHMARK_MAIN();
