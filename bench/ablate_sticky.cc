// Ablation: sticky same-source assignment (paper §2.6) vs random
// per-query assignment of sources to queriers.
//
// Sticky assignment is what lets one querier own one socket per source;
// random assignment splinters a source's queries across queriers, so every
// querier opens its own connection to the server — inflating the server's
// connection load and the fraction of fresh (2-4 RTT) queries. This is the
// design choice DESIGN.md §5 calls out; the replay engine models it by
// splitting each source into N pseudo-sources.
#include "bench/bench_util.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"
#include "replay/sticky.h"

using namespace ldp;

namespace {

struct Result {
  uint64_t fresh = 0;
  uint64_t reused = 0;
  uint64_t peak_established = 0;
  double median_latency_ms = 0;
};

Result Run(bool sticky, size_t queriers) {
  auto world = bench::MakeRootServer(false, zone::DnssecConfig{}, Seconds(20));
  auto config = bench::ScaledBRootConfig(Seconds(20));
  config.median_rate_qps = 1000;
  config.n_clients = 3000;
  config.server = world.address;
  auto records = workload::MakeBRootTrace(config);
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  pipeline.Apply(records);

  if (!sticky) {
    // Random assignment: query i of source S goes to querier (i mod N);
    // each (source, querier) pair becomes its own pseudo-source, exactly
    // the socket-splintering a non-sticky distributor would cause.
    size_t i = 0;
    for (auto& record : records) {
      uint32_t querier = static_cast<uint32_t>(i++ % queriers);
      record.src = IpAddress(record.src.value() ^ (querier << 28));
    }
  }

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.gauge_interval = Seconds(5);
  replay::SimReplayEngine engine(*world.net, replay_config,
                                 &world.server->meters());
  engine.Load(records);
  auto report = engine.Finish();

  Result result;
  result.fresh = report.fresh_connections;
  result.reused = report.reused_connections;
  for (const auto& [t, v] : report.established_samples) {
    result.peak_established = std::max(result.peak_established, v);
  }
  result.median_latency_ms = report.LatencySummary().p50;
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: sticky source assignment",
                     "same-source-same-querier vs random distribution",
                     "sticky assignment is required for connection-reuse "
                     "emulation (paper 2.6)");

  stats::Table table({"assignment", "queriers", "fresh conns", "reused",
                      "reuse rate", "peak server conns", "median ms"});
  for (size_t queriers : {4, 16}) {
    for (bool sticky : {true, false}) {
      auto r = Run(sticky, queriers);
      double reuse_rate =
          static_cast<double>(r.reused) /
          static_cast<double>(std::max<uint64_t>(1, r.fresh + r.reused));
      table.AddRow({sticky ? "sticky" : "random", std::to_string(queriers),
                    std::to_string(r.fresh), std::to_string(r.reused),
                    FormatDouble(100 * reuse_rate, 1) + "%",
                    std::to_string(r.peak_established),
                    FormatDouble(r.median_latency_ms, 1)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("random assignment multiplies fresh connections and server "
              "connection state, and drags the median toward the 2-RTT "
              "fresh-connection cost.\n");
  return 0;
}
