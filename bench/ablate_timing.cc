// Ablation: the ΔT = Δt̄ − Δt compensated scheduler (paper §2.6) vs a naive
// scheduler that sleeps the raw inter-arrival gap between consecutive
// queries.
//
// Input processing is not smooth: batch loads, queue hand-offs, and GC-ish
// stalls inject occasional multi-millisecond delays. A naive scheduler that
// paces by "previous send + inter-arrival gap" carries every stall forward
// — its absolute error is a staircase that only ever grows. The ΔT rule
// subtracts accumulated real-time lag from the ideal offset, so it sends
// immediately until caught up and then re-locks onto the trace schedule.
// This isolates the paper's timing design without sockets: both schedulers
// see the same virtual clock, per-query costs, jitter, and stalls.
#include "bench/bench_util.h"
#include "common/rng.h"
#include "replay/timing.h"

using namespace ldp;

namespace {

struct SchedulerResult {
  stats::Distribution error_ms;
  double final_error_ms;
};

SchedulerResult Simulate(bool compensated, size_t n_queries,
                         NanoDuration gap, NanoDuration per_query_cost,
                         NanoDuration jitter_amplitude, uint64_t seed) {
  Rng rng(seed);
  replay::ReplayScheduler scheduler;
  scheduler.Synchronize(0, 0);

  // Input stalls: every ~1000 queries the input path hiccups for 2-8 ms
  // (batch read, queue contention, scheduler preemption).
  constexpr size_t kStallEvery = 1000;

  NanoTime clock = 0;  // virtual "real time"
  stats::Summary errors;
  double final_error = 0;
  NanoTime last_send = 0;

  for (size_t i = 0; i < n_queries; ++i) {
    NanoTime trace_time = static_cast<NanoTime>(i) * gap;
    clock += per_query_cost +
             static_cast<NanoDuration>(rng.NextBelow(
                 static_cast<uint64_t>(jitter_amplitude)));
    if (i > 0 && i % kStallEvery == 0) {
      clock += Millis(2) + static_cast<NanoDuration>(
                               rng.NextBelow(Millis(6)));
    }

    NanoTime send_at;
    if (compensated) {
      send_at = clock + scheduler.DelayFor(trace_time, clock);
    } else {
      // Naive: pace by "previous send + trace gap". Any lag becomes a
      // permanent offset; stalls stack.
      send_at = i == 0 ? clock : std::max(clock, last_send + gap);
    }
    clock = send_at;
    last_send = send_at;

    double error = ToMillis(send_at - trace_time);
    errors.Add(error);
    final_error = error;
  }
  return SchedulerResult{errors.Summarize(), final_error};
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: timing compensation",
                     "deltaT = (trace offset) - (elapsed) vs naive "
                     "inter-arrival sleeping",
                     "compensation keeps absolute error flat; naive drift "
                     "grows with query count");

  stats::Table table({"scheduler", "queries", "gap", "median err ms",
                      "p95 err ms", "final err ms"});
  for (auto [n, gap] : {std::pair<size_t, NanoDuration>{10000, Millis(1)},
                        {100000, Millis(1)},
                        {100000, Micros(100)}}) {
    for (bool compensated : {true, false}) {
      auto r = Simulate(compensated, n, gap, /*per_query_cost=*/Micros(5),
                        /*jitter_amplitude=*/Micros(20), /*seed=*/7);
      table.AddRow({compensated ? "compensated" : "naive",
                    std::to_string(n),
                    FormatDouble(ToMillis(gap), 1) + "ms",
                    FormatDouble(r.error_ms.p50, 3),
                    FormatDouble(r.error_ms.p95, 3),
                    FormatDouble(r.final_error_ms, 3)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("every input stall becomes a permanent offset for the naive "
              "scheduler (final error ~= sum of all stalls); the "
              "compensated scheduler re-locks onto the trace schedule after "
              "each one — how the paper replays an hour of B-Root with "
              "+-0.1%% rate error.\n");
  return 0;
}
