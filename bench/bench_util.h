// Shared plumbing for the experiment harnesses in bench/: every binary
// regenerates one table or figure of the paper (see DESIGN.md §4) at
// laptop scale and prints the same rows/series the paper reports.
//
// Scaling: the paper replays 1-hour B-Root traces at a median 38k q/s on a
// DETER testbed. The benches replay the same *models* at 1/10 rate over
// shorter windows; rates are reported raw, and the comparisons the paper
// makes (ratios, crossovers, who-wins) are scale-free.
#ifndef LDPLAYER_BENCH_BENCH_UTIL_H
#define LDPLAYER_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "server/sim_server.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "workload/hierarchy.h"
#include "workload/traces.h"
#include "zone/dnssec.h"

namespace ldp::bench {

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& paper_result) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_result.c_str());
  std::printf("================================================================\n");
}

// The default laptop-scale B-Root model (1/10 of the paper's rate).
inline workload::BRootConfig ScaledBRootConfig(NanoDuration duration,
                                               uint64_t seed = 1) {
  workload::BRootConfig config;
  config.median_rate_qps = 3800;
  config.duration = duration;
  config.n_clients = 20000;
  config.seed = seed;
  return config;
}

struct RootServerWorld {
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<sim::SimNetwork> net;
  std::shared_ptr<server::AuthServerEngine> engine;
  std::unique_ptr<server::SimDnsServer> server;
  IpAddress address{10, 0, 0, 1};
};

// A simulated root server (optionally DNSSEC-signed) ready for replay.
inline RootServerWorld MakeRootServer(bool sign,
                                      const zone::DnssecConfig& dnssec,
                                      NanoDuration tcp_idle_timeout,
                                      size_t n_tlds = 100) {
  RootServerWorld world;
  world.simulator = std::make_unique<sim::Simulator>();
  world.net = std::make_unique<sim::SimNetwork>(*world.simulator);
  world.net->SetDefaultOneWayDelay(Micros(400));  // <1 ms RTT, like Fig 5

  auto hierarchy = workload::BuildRootHierarchy(n_tlds, sign, dnssec);
  zone::ZoneSet zones;
  auto add_ok = zones.AddZone(hierarchy.root);
  (void)add_ok;
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  world.engine =
      std::make_shared<server::AuthServerEngine>(std::move(views));

  server::SimDnsServer::Config config;
  config.address = world.address;
  config.tcp_idle_timeout = tcp_idle_timeout;
  world.server = std::make_unique<server::SimDnsServer>(*world.net,
                                                        world.engine, config);
  auto start_ok = world.server->Start();
  (void)start_ok;
  return world;
}

inline std::string Gb(uint64_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1ull << 30), 2) + " GB";
}

inline std::string Mbps(double bits_per_second) {
  return FormatDouble(bits_per_second / 1e6, 1) + " Mb/s";
}

// Minimal JSON result writer for the BENCH_*.json files the benches emit
// alongside their printed tables, so runs can be diffed mechanically.
// Flat object of key → number/string/number-array; insertion order kept.
class BenchJson {
 public:
  void Set(const std::string& key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Set(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  void Set(const std::string& key, const std::vector<double>& values) {
    std::string out = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
      if (i > 0) out += ", ";
      out += buf;
    }
    fields_.emplace_back(key, out + "]");
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", Escape(fields_[i].first).c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace ldp::bench

#endif  // LDPLAYER_BENCH_BENCH_UTIL_H
