// Mass-connection bench over real sockets (paper §5, Figs 13-15): ramp
// >=10k concurrent long-lived connections — plain TCP, then DoT — against a
// 2-shard loopback server and measure what the simulator only models:
// userspace memory per connection, sustained/peak accept rate, and (fig15)
// query latency as the server's idle timeout forces reconnects that TLS
// session resumption must absorb.
//
// The server runs in a forked child process, which buys two things: each
// side gets its own RLIMIT_NOFILE budget (10k connections = 10k fds per
// side, and this container's hard limit is 20k per process), and the
// server's RSS delta is pure server state — the fig13/14 quantity —
// instead of a client+server blur.
//
// Honest caveats, recorded in BENCH_tls.json: RSS sees userspace only (the
// sim's 216 KB/conn constant is mostly *kernel* socket buffers, so the
// JSON carries the model constants alongside the measured bytes rather
// than pretending they are the same quantity), and on a 1-CPU container
// accept/handshake rates are a floor, not a capability ceiling.
//
// LDP_CONN_SCALE overrides the connection count (default 10000); the bench
// raises RLIMIT_NOFILE toward N + slack and scales down, loudly, if the
// hard limit wins.
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "mutate/mutate.h"
#include "net/event_loop.h"
#include "net/sockets.h"
#include "net/tls.h"
#include "replay/realtime.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

size_t ConnTarget() {
  if (const char* env = std::getenv("LDP_CONN_SCALE")) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 10000;
}

// Resident set from /proc/self/statm (userspace pages only — kernel socket
// buffers, the bulk of the sim's 216 KB/conn, are invisible here).
size_t RssBytes() {
  std::ifstream statm("/proc/self/statm");
  size_t total = 0, resident = 0;
  statm >> total >> resident;
  return resident * static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

// Best-effort: lift RLIMIT_NOFILE to `want` fds (root may raise the hard
// limit too). Returns the achieved soft limit.
size_t RaiseFdLimit(size_t want) {
  struct rlimit lim;
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur >= want) return lim.rlim_cur;
  struct rlimit raised = lim;
  raised.rlim_cur = want;
  raised.rlim_max = std::max<rlim_t>(lim.rlim_max, want);
  if (setrlimit(RLIMIT_NOFILE, &raised) == 0) return want;
  // Hard limit held: take everything the soft limit can reach.
  raised.rlim_max = lim.rlim_max;
  raised.rlim_cur = lim.rlim_max;
  if (setrlimit(RLIMIT_NOFILE, &raised) == 0) return raised.rlim_cur;
  return lim.rlim_cur;
}

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

// --- Phase A/B: connection ramp ---------------------------------------

struct RampResult {
  bool ok = false;
  size_t established = 0;
  size_t failed = 0;
  size_t max_open = 0;  // peak of the server's open gauge
  double wall_s = 0;
  double accept_rate_avg = 0;          // established / wall
  double accept_rate_peak = 0;         // best 100 ms window
  double server_rss_per_conn = 0;      // server-process RSS delta / conns
  double client_rss_per_conn = 0;      // client-process RSS delta / conns
  double server_tls_mem_per_conn = 0;  // OpenSSL bytes, server side
  double client_tls_mem_per_conn = 0;  // OpenSSL bytes, client side
  uint64_t handshakes = 0, resumptions = 0;
  std::vector<uint64_t> shard_accepted;
};

// --- server child process ----------------------------------------------
//
// The ramp server runs in a forked child: with the container's hard
// RLIMIT_NOFILE of 20k, 10k connections cannot fit both their client and
// server fds in one process — and a separate process also means the
// server's RSS delta is *server state only*, the actual fig13/14 quantity,
// instead of a client+server blur. The parent polls stats over a
// socketpair.

struct WireHello {
  int32_t ok = 0;
  uint16_t tcp_port = 0;
  uint16_t tls_port = 0;
  uint64_t rss_bytes = 0;
  uint64_t tls_mem_bytes = 0;
};

struct WireStats {
  uint64_t accepted = 0;
  uint64_t open = 0;
  uint64_t tls_open = 0;
  uint64_t tls_handshakes = 0;
  uint64_t tls_resumptions = 0;
  uint64_t rss_bytes = 0;
  uint64_t tls_mem_bytes = 0;
  uint64_t n_shards = 0;
  uint64_t shard_accepted[16] = {0};
};

bool ReadFull(int fd, void* buf, size_t n) {
  auto* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    ssize_t got = ::read(fd, p, n);
    if (got <= 0) return false;
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t n) {
  const auto* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    ssize_t put = ::write(fd, p, n);
    if (put <= 0) return false;
    p += put;
    n -= static_cast<size_t>(put);
  }
  return true;
}

// Child body: serve until the parent says quit. Uses _exit so the parent's
// duplicated stdio buffers are never flushed twice.
[[noreturn]] void ServerChild(int pipe_fd, bool tls, size_t n_shards) {
  bench::LoopbackOptions options;
  options.n_shards = n_shards;
  options.serve_tls = tls;
  options.tcp_idle_timeout = 0;  // long-lived: never idle-close
  auto server = bench::LoopbackServer::Start(options);

  WireHello hello;
  hello.ok = server != nullptr ? 1 : 0;
  if (server != nullptr) {
    hello.tcp_port = server->endpoint().port;
    hello.tls_port = tls ? server->tls_endpoint().port : 0;
    hello.rss_bytes = RssBytes();
    hello.tls_mem_bytes = net::TlsAllocatedBytes();
  }
  if (!WriteFull(pipe_fd, &hello, sizeof(hello)) || server == nullptr) {
    ::_exit(1);
  }

  char cmd = 0;
  while (ReadFull(pipe_fd, &cmd, 1)) {
    if (cmd == 'S') {
      WireStats stats;
      auto total = server->tcp_stats();
      stats.accepted = total.accepted;
      stats.open = total.open;
      stats.tls_open = total.tls_open;
      stats.tls_handshakes = total.tls_handshakes;
      stats.tls_resumptions = total.tls_resumptions;
      stats.rss_bytes = RssBytes();
      stats.tls_mem_bytes = net::TlsAllocatedBytes();
      auto shards = server->shard_tcp_stats();
      stats.n_shards = std::min<size_t>(shards.size(), 16);
      for (size_t i = 0; i < stats.n_shards; ++i) {
        stats.shard_accepted[i] = shards[i].accepted;
      }
      if (!WriteFull(pipe_fd, &stats, sizeof(stats))) break;
    } else if (cmd == 'Q') {
      // Server-first shutdown, deliberately: destroying the server sends
      // every FIN from this side, so the ~10k ephemeral-port TIME_WAITs
      // land on the server's one listen port instead of squatting on 10k
      // client ports that the next phase's listener would collide with.
      server.reset();
      char ack = 'q';
      WriteFull(pipe_fd, &ack, 1);
      break;
    }
  }
  ::_exit(0);
}

// One event-loop thread that owns `share` long-lived client connections,
// dialing them in paced batches so the (shared, 1-CPU) server thread gets
// scheduled between bursts and pending handshakes stay bounded.
struct DialerLoop {
  std::unique_ptr<net::EventLoop> loop;
  std::thread thread;
  std::unique_ptr<net::TlsContext> tls_ctx;  // client ctx, loop-local
  std::vector<std::unique_ptr<net::StreamConn>> conns;
  std::atomic<size_t> ready{0};
  std::atomic<size_t> failed{0};
  std::atomic<bool> closing{false};  // teardown: closes are expected now
  size_t dialed = 0;
  size_t share = 0;
  Endpoint target;
  bool tls = false;
  net::TimerHandle timer;

  static constexpr size_t kBatch = 200;
  static constexpr size_t kMaxPending = 1000;

  void DialBatch() {
    size_t pending = dialed - ready.load(std::memory_order_relaxed) -
                     failed.load(std::memory_order_relaxed);
    size_t room = pending >= kMaxPending ? 0 : kMaxPending - pending;
    size_t n = std::min({kBatch, share - dialed, room});
    for (size_t i = 0; i < n; ++i) DialOne();
    if (dialed < share) {
      timer = loop->ScheduleAfter(Millis(10), [this] { DialBatch(); });
    }
  }

  void DialOne() {
    ++dialed;
    auto on_ready = [this](Status status) {
      if (status.ok()) {
        ready.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    };
    auto on_data = [](std::span<const uint8_t>) {};
    // Long-lived conns never send, so a close here is the server hanging
    // up on us — a failure, except during deliberate teardown (the server
    // process exits first, FINing every connection).
    auto on_close = [this](Status) {
      if (!closing.load(std::memory_order_relaxed)) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (tls) {
      auto conn = net::TlsConnection::Connect(*loop, *tls_ctx, target,
                                              std::move(on_ready),
                                              std::move(on_data), on_close);
      if (conn.ok()) {
        conns.push_back(std::move(*conn));
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      auto conn =
          net::TcpConnection::Connect(*loop, target, std::move(on_ready),
                                      std::move(on_data), on_close);
      if (conn.ok()) {
        conns.push_back(std::move(*conn));
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
};

RampResult RunRamp(bool tls, size_t n_conns, size_t n_shards) {
  RampResult result;

  int pipe[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pipe) != 0) {
    std::perror("socketpair");
    return result;
  }
  std::fflush(nullptr);  // nothing buffered crosses the fork twice
  pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return result;
  }
  if (child == 0) {
    ::close(pipe[0]);
    ServerChild(pipe[1], tls, n_shards);  // never returns
  }
  ::close(pipe[1]);
  int ctl = pipe[0];

  WireHello hello;
  if (!ReadFull(ctl, &hello, sizeof(hello)) || hello.ok == 0) {
    std::fprintf(stderr, "ramp: server child failed to start\n");
    ::close(ctl);
    ::waitpid(child, nullptr, 0);
    return result;
  }
  Endpoint target{IpAddress::Loopback(),
                  tls ? hello.tls_port : hello.tcp_port};

  size_t rss_before = RssBytes();
  size_t tls_before = net::TlsAllocatedBytes();

  constexpr size_t kLoops = 2;
  std::vector<std::unique_ptr<DialerLoop>> dialers;
  for (size_t i = 0; i < kLoops; ++i) {
    auto d = std::make_unique<DialerLoop>();
    auto loop = net::EventLoop::Create();
    if (!loop.ok()) {
      std::fprintf(stderr, "ramp: event loop: %s\n",
                   loop.error().ToString().c_str());
      ::close(ctl);
      ::waitpid(child, nullptr, 0);
      return result;
    }
    d->loop = std::move(*loop);
    d->share = n_conns / kLoops + (i < n_conns % kLoops ? 1 : 0);
    d->target = target;
    d->tls = tls;
    if (tls) {
      auto ctx = net::TlsContext::NewClient();
      if (!ctx.ok()) {
        std::fprintf(stderr, "ramp: client TLS ctx: %s\n",
                     ctx.error().ToString().c_str());
        return result;
      }
      d->tls_ctx = std::move(*ctx);
    }
    dialers.push_back(std::move(d));
  }
  NanoTime start = MonotonicNow();
  for (auto& d : dialers) {
    d->thread = std::thread([&d] {
      d->DialBatch();
      d->loop->Run();
      d->conns.clear();  // destroy on the loop thread, after Run returns
    });
  }

  // Main thread: watch progress, sample the child's accept counter for the
  // peak rate, and stop once every dial reached a terminal state.
  auto poll_stats = [&](WireStats& stats) {
    char cmd = 'S';
    return WriteFull(ctl, &cmd, 1) && ReadFull(ctl, &stats, sizeof(stats));
  };
  uint64_t last_accepted = 0;
  NanoTime deadline = start + Seconds(180);
  bool done = false;
  WireStats stats;
  while (MonotonicNow() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!poll_stats(stats)) break;
    result.accept_rate_peak =
        std::max(result.accept_rate_peak,
                 static_cast<double>(stats.accepted - last_accepted) / 0.1);
    last_accepted = stats.accepted;
    result.max_open = std::max(
        result.max_open,
        static_cast<size_t>(tls ? stats.tls_open : stats.open));
    size_t ready = 0, failed = 0;
    for (auto& d : dialers) {
      ready += d->ready.load(std::memory_order_relaxed);
      failed += d->failed.load(std::memory_order_relaxed);
    }
    if (ready + failed >= n_conns) {
      result.established = ready;
      result.failed = failed;
      done = true;
      break;
    }
  }
  result.wall_s = ToSeconds(MonotonicNow() - start);
  if (!done) std::fprintf(stderr, "ramp: timed out before settling\n");

  // Final sample while every connection is still open: peak gauges, the
  // per-shard accept spread, and both sides' per-connection memory.
  if (poll_stats(stats)) {
    result.max_open = std::max(
        result.max_open,
        static_cast<size_t>(tls ? stats.tls_open : stats.open));
    result.handshakes = stats.tls_handshakes;
    result.resumptions = stats.tls_resumptions;
    for (size_t i = 0; i < stats.n_shards; ++i) {
      result.shard_accepted.push_back(stats.shard_accepted[i]);
    }
    if (result.established > 0) {
      auto per_conn = [&](uint64_t after, uint64_t before) {
        return static_cast<double>(after > before ? after - before : 0) /
               static_cast<double>(result.established);
      };
      result.server_rss_per_conn = per_conn(stats.rss_bytes, hello.rss_bytes);
      result.server_tls_mem_per_conn =
          per_conn(stats.tls_mem_bytes, hello.tls_mem_bytes);
      result.client_rss_per_conn = per_conn(RssBytes(), rss_before);
      result.client_tls_mem_per_conn =
          per_conn(net::TlsAllocatedBytes(), tls_before);
    }
  }
  result.accept_rate_avg =
      result.wall_s > 0
          ? static_cast<double>(result.established) / result.wall_s
          : 0;

  // Teardown, server first (see ServerChild): expected closes from here on.
  for (auto& d : dialers) d->closing.store(true, std::memory_order_relaxed);
  char quit = 'Q';
  if (WriteFull(ctl, &quit, 1)) {
    char ack = 0;
    ReadFull(ctl, &ack, 1);  // server destroyed: every FIN already sent
  }
  ::close(ctl);
  ::waitpid(child, nullptr, 0);
  for (auto& d : dialers) d->loop->RequestStop();
  for (auto& d : dialers) d->thread.join();
  result.ok = done && result.failed == 0 && result.established == n_conns;
  return result;
}

void PrintRamp(const char* name, const RampResult& r) {
  std::printf(
      "  %-4s established %zu/%zu (failed %zu)  peak open %zu  wall %.1f s\n"
      "       accept %.0f/s avg, %.0f/s peak  server rss/conn %.1f KB"
      " (tls %.1f KB)  client rss/conn %.1f KB  hs %llu (resumed %llu)\n",
      name, r.established, r.established + r.failed, r.failed, r.max_open,
      r.wall_s, r.accept_rate_avg, r.accept_rate_peak,
      r.server_rss_per_conn / 1024, r.server_tls_mem_per_conn / 1024,
      r.client_rss_per_conn / 1024,
      static_cast<unsigned long long>(r.handshakes),
      static_cast<unsigned long long>(r.resumptions));
  std::printf("       per-shard accepts:");
  for (uint64_t a : r.shard_accepted)
    std::printf(" %llu", static_cast<unsigned long long>(a));
  std::printf("\n");
}

// --- Phase C: fig15, latency vs server idle timeout --------------------

struct LatencyResult {
  bool ok = false;
  double mean_ms = 0, p50_ms = 0, p95_ms = 0;
  uint64_t answered = 0, handshakes = 0, resumptions = 0, reconnects = 0;
};

LatencyResult RunLatency(NanoDuration server_idle_timeout) {
  LatencyResult result;
  bench::LoopbackOptions options;
  options.n_shards = 2;
  options.serve_tls = true;
  options.tcp_idle_timeout = server_idle_timeout;
  auto server = bench::LoopbackServer::Start(options);
  if (server == nullptr) return result;

  // 64 sources, one query each every 512 ms (interarrival 8 ms x 64):
  // against a 250 ms idle timeout every query redials (and should resume);
  // against 1 s / 4 s the connections persist and queries ride warm
  // streams — the fig15 contrast.
  constexpr size_t kSources = 64;
  constexpr size_t kRounds = 4;
  workload::FixedIntervalConfig trace_config;
  trace_config.interarrival = Millis(8);
  trace_config.duration = trace_config.interarrival *
                          static_cast<int64_t>(kSources * kRounds);
  trace_config.n_clients = kSources;
  auto records = workload::MakeFixedIntervalTrace(trace_config);
  for (auto& r : records) {
    r.dst = server->endpoint().addr;
    r.dst_port = server->endpoint().port;
  }
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTls));
  pipeline.Apply(records);

  replay::RealtimeConfig config;
  config.server = server->endpoint();
  config.tls_port = server->tls_endpoint().port;
  config.queriers_per_distributor = 2;
  config.query_timeout = Seconds(2);
  auto report = replay::RunRealtimeReplay(records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "latency: %s\n", report.error().ToString().c_str());
    return result;
  }

  std::vector<double> latencies_ms;
  for (const auto& send : report->sends) {
    if (send.state != replay::SendOutcome::State::kAnswered) continue;
    latencies_ms.push_back(ToSeconds(send.replied - send.sent) * 1e3);
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  double sum = 0;
  for (double v : latencies_ms) sum += v;
  result.answered = report->answered;
  result.mean_ms = latencies_ms.empty() ? 0 : sum / latencies_ms.size();
  result.p50_ms = PercentileMs(latencies_ms, 0.50);
  result.p95_ms = PercentileMs(latencies_ms, 0.95);
  result.handshakes = report->tls_handshakes;
  result.resumptions = report->tls_resumptions;
  result.reconnects = report->tcp_reconnects;
  result.ok = report->queries_sent ==
                  report->answered + report->timed_out + report->send_failed &&
              report->send_failed == 0;
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("tls", "mass-connection TCP/DoT scale (figs 13-15)",
                     "216 KB/conn TCP + ~50 KB TLS; resumption hides "
                     "idle-timeout reconnects");

  const size_t requested = ConnTarget();
  // One fd per connection per process (the server is a forked child with
  // its own limit), plus loops/listeners/slack.
  size_t fd_limit = RaiseFdLimit(requested + 4096);
  size_t n_conns = requested;
  if (fd_limit < requested + 512) {
    n_conns = fd_limit - 512;
    std::printf("  fd limit %zu: scaling target %zu -> %zu conns\n", fd_limit,
                requested, n_conns);
  }
  constexpr size_t kShards = 2;

  bench::BenchJson json;
  json.Set("conns_target", static_cast<uint64_t>(n_conns));
  json.Set("n_shards", static_cast<uint64_t>(kShards));
  json.Set("host_cpus",
           static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.Set("model_tcp_conn_bytes", static_cast<uint64_t>(216 * 1024));
  json.Set("model_tls_extra_bytes", static_cast<uint64_t>(50 * 1024));
  json.Set("note_memory", std::string(
      "rss deltas are userspace-only (server and client measured in "
      "separate processes); the 216KB/conn sim constant is mostly kernel "
      "socket buffers, invisible to RSS"));

  bool ok = true;

  std::printf("phase A: %zu long-lived plain-TCP connections\n", n_conns);
  RampResult tcp = RunRamp(/*tls=*/false, n_conns, kShards);
  PrintRamp("tcp", tcp);
  ok &= tcp.ok;
  json.Set("tcp_established", static_cast<uint64_t>(tcp.established));
  json.Set("tcp_failed", static_cast<uint64_t>(tcp.failed));
  json.Set("tcp_max_open", static_cast<uint64_t>(tcp.max_open));
  json.Set("tcp_accept_rate_avg", tcp.accept_rate_avg);
  json.Set("tcp_accept_rate_peak", tcp.accept_rate_peak);
  json.Set("tcp_server_rss_per_conn_bytes", tcp.server_rss_per_conn);
  json.Set("tcp_client_rss_per_conn_bytes", tcp.client_rss_per_conn);
  {
    std::vector<double> shards(tcp.shard_accepted.begin(),
                               tcp.shard_accepted.end());
    json.Set("tcp_shard_accepts", shards);
  }

  bool have_tls = net::TlsAvailable();
  json.Set("tls_available", have_tls);
  RampResult dot;
  if (have_tls) {
    std::printf("phase B: %zu long-lived DoT connections\n", n_conns);
    dot = RunRamp(/*tls=*/true, n_conns, kShards);
    PrintRamp("dot", dot);
    ok &= dot.ok;
    json.Set("tls_established", static_cast<uint64_t>(dot.established));
    json.Set("tls_failed", static_cast<uint64_t>(dot.failed));
    json.Set("tls_max_open", static_cast<uint64_t>(dot.max_open));
    json.Set("tls_accept_rate_avg", dot.accept_rate_avg);
    json.Set("tls_accept_rate_peak", dot.accept_rate_peak);
    json.Set("tls_server_rss_per_conn_bytes", dot.server_rss_per_conn);
    json.Set("tls_client_rss_per_conn_bytes", dot.client_rss_per_conn);
    json.Set("tls_server_mem_per_conn_bytes", dot.server_tls_mem_per_conn);
    json.Set("tls_client_mem_per_conn_bytes", dot.client_tls_mem_per_conn);
    json.Set("tls_handshakes", dot.handshakes);
    json.Set("tls_resumptions", dot.resumptions);
    // The measured TLS-over-TCP increment on the server, the quantity
    // fig14 models as ~50 KB/conn of session state.
    json.Set("tls_minus_tcp_server_rss_bytes",
             dot.server_rss_per_conn - tcp.server_rss_per_conn);
    std::vector<double> shards(dot.shard_accepted.begin(),
                               dot.shard_accepted.end());
    json.Set("tls_shard_accepts", shards);
  } else {
    std::printf("phase B: skipped (built without OpenSSL)\n");
  }

  if (have_tls) {
    std::printf("phase C: DoT query latency vs server idle timeout\n");
    struct Sweep {
      const char* key;
      NanoDuration timeout;
    };
    const Sweep sweep[] = {
        {"250ms", Millis(250)}, {"1s", Seconds(1)}, {"4s", Seconds(4)}};
    for (const auto& point : sweep) {
      LatencyResult lat = RunLatency(point.timeout);
      ok &= lat.ok;
      std::printf(
          "  idle %-5s mean %.2f ms  p50 %.2f  p95 %.2f  answered %llu"
          "  hs %llu (resumed %llu)  reconnects %llu\n",
          point.key, lat.mean_ms, lat.p50_ms, lat.p95_ms,
          static_cast<unsigned long long>(lat.answered),
          static_cast<unsigned long long>(lat.handshakes),
          static_cast<unsigned long long>(lat.resumptions),
          static_cast<unsigned long long>(lat.reconnects));
      std::string prefix = std::string("latency_idle_") + point.key;
      json.Set(prefix + "_mean_ms", lat.mean_ms);
      json.Set(prefix + "_p50_ms", lat.p50_ms);
      json.Set(prefix + "_p95_ms", lat.p95_ms);
      json.Set(prefix + "_handshakes", lat.handshakes);
      json.Set(prefix + "_resumptions", lat.resumptions);
      json.Set(prefix + "_reconnects", lat.reconnects);
    }
  }

  // Acceptance gates: every shard took accepts (SO_REUSEPORT spread), and
  // every dialed connection established.
  auto shards_nonzero = [](const std::vector<uint64_t>& accepts) {
    for (uint64_t a : accepts)
      if (a == 0) return false;
    return !accepts.empty();
  };
  if (!shards_nonzero(tcp.shard_accepted)) {
    std::fprintf(stderr, "FAIL: a TCP shard accepted nothing\n");
    ok = false;
  }
  if (have_tls && !shards_nonzero(dot.shard_accepted)) {
    std::fprintf(stderr, "FAIL: a DoT shard accepted nothing\n");
    ok = false;
  }

  json.Set("ok", ok);
  json.WriteTo("BENCH_tls.json");
  std::printf("%s (BENCH_tls.json written)\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
