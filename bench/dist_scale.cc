// Distributed-replay scaling (paper §2.6 / §5.3): the same fast-mode UDP
// stream replayed (a) by one in-process engine and (b) through the
// controller → agent wire protocol with two agents, against the same
// loopback server. Reports the throughput ratio and the full terminal-
// outcome accounting for both phases into BENCH_dist.json.
//
// Paper result: distributing queriers across hosts scales replay past the
// single-host generator bottleneck (LDplayer drives B-Root-scale load from
// a handful of machines). Honest caveat for this harness: on a single-core
// container both phases share one CPU, so the expected ratio is ~1× (the
// wire protocol must merely not make it worse); >=1.5x needs real
// parallelism — rerun on a multi-core host for the paper-shaped result.
// host_cpus is recorded so the ratio can be judged in context, and with
// host_cpus < 2 the JSON carries "inconclusive": true so downstream
// tooling never reads the ~1x ratio as a scaling measurement.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "distrib/agent.h"
#include "distrib/controller.h"
#include "net/event_loop.h"
#include "replay/realtime.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

constexpr size_t kRecords = 20000;

std::vector<trace::QueryRecord> MakeTrace(const bench::LoopbackServer& server) {
  workload::FixedIntervalConfig config;
  config.interarrival = Micros(50);  // nominal; fast mode ignores pacing
  config.duration = config.interarrival * static_cast<int64_t>(kRecords);
  config.n_clients = 200;
  auto records = workload::MakeFixedIntervalTrace(config);
  server.Target(records);
  return records;
}

replay::RealtimeConfig BaseConfig(const bench::LoopbackServer& server) {
  replay::RealtimeConfig config;
  config.server = server.endpoint();
  config.fast_mode = true;
  config.n_distributors = 1;
  config.queriers_per_distributor = 3;
  config.query_timeout = Seconds(2);
  return config;
}

struct PhaseResult {
  double rate_qps = 0;
  uint64_t sent = 0, answered = 0, timed_out = 0, send_failed = 0;
  NanoDuration wall = 0;
};

void PrintPhase(const char* name, const PhaseResult& result) {
  std::printf("  %-8s %8.0f q/s  sent %llu  answered %llu  timed_out %llu"
              "  send_failed %llu  wall %.2f s\n",
              name, result.rate_qps,
              static_cast<unsigned long long>(result.sent),
              static_cast<unsigned long long>(result.answered),
              static_cast<unsigned long long>(result.timed_out),
              static_cast<unsigned long long>(result.send_failed),
              ToSeconds(result.wall));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "dist", "distributed replay scaling (1 engine vs 2 wire agents)",
      "replay scales across hosts once the single generator saturates");

  auto server = bench::LoopbackServer::Start();
  if (server == nullptr) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  const auto records = MakeTrace(*server);

  // Phase 1: one in-process replay engine (the PR-2 path).
  PhaseResult single;
  {
    NanoTime start = MonotonicNow();
    auto report = replay::RunRealtimeReplay(records, BaseConfig(*server));
    NanoDuration elapsed = MonotonicNow() - start;
    if (!report.ok()) {
      std::fprintf(stderr, "single: %s\n", report.error().ToString().c_str());
      return 1;
    }
    single.sent = report->queries_sent;
    single.answered = report->answered;
    single.timed_out = report->timed_out;
    single.send_failed = report->send_failed;
    single.wall = elapsed;
    single.rate_qps =
        static_cast<double>(report->queries_sent) / ToSeconds(elapsed);
  }
  PrintPhase("single", single);

  // Phase 2: the same trace through the controller → agent protocol, two
  // agents in-process (each on its own event loop thread, exactly what
  // ldp_replay_agent runs per process).
  PhaseResult dist;
  {
    struct Agent {
      std::unique_ptr<net::EventLoop> loop;
      std::unique_ptr<distrib::AgentServer> server;
      std::thread thread;
    };
    std::vector<Agent> agents(2);
    distrib::ControllerOptions options;
    options.config = BaseConfig(*server);
    options.chunk_records = 512;
    for (auto& agent : agents) {
      auto loop = net::EventLoop::Create();
      if (!loop.ok()) {
        std::fprintf(stderr, "loop: %s\n", loop.error().ToString().c_str());
        return 1;
      }
      agent.loop = std::move(*loop);
      auto started =
          distrib::AgentServer::Start(*agent.loop, distrib::AgentOptions{});
      if (!started.ok()) {
        std::fprintf(stderr, "agent: %s\n",
                     started.error().ToString().c_str());
        return 1;
      }
      agent.server = std::move(*started);
      options.agents.push_back(agent.server->local());
      agent.thread = std::thread([raw = agent.loop.get()] { raw->Run(); });
    }

    NanoTime start = MonotonicNow();
    auto report = distrib::RunDistributedReplay(records, options);
    NanoDuration elapsed = MonotonicNow() - start;
    for (auto& agent : agents) agent.thread.join();
    if (!report.ok()) {
      std::fprintf(stderr, "dist: %s\n", report.error().ToString().c_str());
      return 1;
    }
    if (report->failed) {
      std::fprintf(stderr, "dist: %s\n", report->error.c_str());
      return 1;
    }
    for (const auto& diff : report->ReconcileDiffs()) {
      std::fprintf(stderr, "reconcile: %s\n", diff.c_str());
      return 1;
    }
    dist.sent = report->merged.sent;
    dist.answered = report->merged.answered;
    dist.timed_out = report->merged.timed_out;
    dist.send_failed = report->merged.send_failed;
    dist.wall = elapsed;
    dist.rate_qps =
        static_cast<double>(report->merged.sent) / ToSeconds(elapsed);
  }
  PrintPhase("dist2", dist);

  const double ratio = dist.rate_qps / single.rate_qps;
  const unsigned host_cpus = std::thread::hardware_concurrency();
  // A scaling ratio measured with every phase pinned to one core says
  // nothing about distribution — flag it rather than report a misleading
  // ~1x as if it were the experiment's answer.
  const bool inconclusive = host_cpus < 2;
  std::printf("  ratio: %.2fx on %u cpu(s)%s\n", ratio, host_cpus,
              inconclusive ? "  [inconclusive: needs >=2 cpus]" : "");

  bench::BenchJson json;
  json.Set("records", static_cast<uint64_t>(kRecords));
  json.Set("host_cpus", static_cast<uint64_t>(host_cpus));
  if (inconclusive) json.Set("inconclusive", true);
  json.Set("single_qps", single.rate_qps);
  json.Set("single_sent", single.sent);
  json.Set("single_answered", single.answered);
  json.Set("single_timed_out", single.timed_out);
  json.Set("single_send_failed", single.send_failed);
  json.Set("dist2_qps", dist.rate_qps);
  json.Set("dist2_sent", dist.sent);
  json.Set("dist2_answered", dist.answered);
  json.Set("dist2_timed_out", dist.timed_out);
  json.Set("dist2_send_failed", dist.send_failed);
  json.Set("ratio", ratio);
  json.Set("note",
           std::string("both phases share the same CPUs; on 1 cpu the "
                       "expected ratio is ~1x — >=1.5x needs a multi-core "
                       "host (or real multi-host agents)"));
  if (!json.WriteTo("BENCH_dist.json")) return 1;
  return 0;
}
