// Extension (paper §1/§5: "potential applications include the study of
// server hardware and software under denial-of-service attack"): overlay a
// random-qname flood on the B-Root model and measure what the legitimate
// traffic experiences and what the attack costs the server — for UDP
// floods and for TCP floods (connection-state exhaustion).
//
// This experiment is *enabled* by LDplayer's machinery (trace mutation +
// timed replay + server meters); the paper proposes it without running it,
// so there is no paper number to match — the harness demonstrates the
// capability and prints the observed behaviour.
#include "bench/bench_util.h"
#include "mutate/attack.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"

using namespace ldp;

namespace {

struct DosResult {
  double legit_median_ms = 0;
  double legit_answer_rate = 0;
  double cpu_pct = 0;
  uint64_t peak_established = 0;
  uint64_t peak_memory = 0;
  double amplification = 0;  // response bytes / query bytes
};

DosResult Run(double attack_qps, trace::Protocol attack_protocol) {
  auto world = bench::MakeRootServer(true, zone::DnssecConfig{}, Seconds(20));
  NanoDuration duration = Seconds(20);

  auto legit_config = bench::ScaledBRootConfig(duration);
  legit_config.median_rate_qps = 1000;
  legit_config.n_clients = 5000;
  legit_config.server = world.address;
  auto records = workload::MakeBRootTrace(legit_config);
  size_t legit_count = records.size();

  // Random-subdomain flood from src/mutate/attack.h (the shared attack
  // source of truth) with DO + EDNS forced on: signed NXDOMAIN responses
  // are what amplify.
  if (attack_qps > 0) {
    mutate::AttackConfig attack_config;
    attack_config.kind = mutate::AttackKind::kNxdomainFlood;
    attack_config.rate_qps = attack_qps;
    attack_config.duration = duration;
    attack_config.server = world.address;
    attack_config.protocol = attack_protocol;
    attack_config.seed = 0xa77ac;
    auto attack = mutate::MakeAttackTrace(attack_config);
    mutate::MutationPipeline dnssec;
    dnssec.Add(mutate::SetDnssecOk(1.0)).Add(mutate::SetEdnsSize(4096));
    dnssec.Apply(attack);
    mutate::OverlayAttack(records, std::move(attack));
  }

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.gauge_interval = Seconds(5);
  replay::SimReplayEngine engine(*world.net, replay_config,
                                 &world.server->meters());
  engine.Load(records);
  auto report = engine.Finish();

  DosResult result;
  stats::Summary legit_latency;
  size_t legit_answered = 0, legit_seen = 0;
  for (const auto& outcome : report.outcomes) {
    // Attack sources live in their own /8, so the class split is a prefix
    // test — no need to remember individual spoofed addresses.
    if (mutate::IsSpoofedSource(outcome.source)) continue;
    ++legit_seen;
    if (outcome.answered()) {
      ++legit_answered;
      legit_latency.Add(ToMillis(outcome.latency()));
    }
  }
  result.legit_median_ms = legit_latency.Quantile(0.5);
  result.legit_answer_rate =
      legit_seen ? static_cast<double>(legit_answered) /
                       static_cast<double>(legit_seen)
                 : 0;
  const auto& meters = world.server->meters();
  result.cpu_pct =
      100.0 * meters.CpuUtilization(0, duration);
  for (const auto& [t, v] : report.established_samples) {
    result.peak_established = std::max(result.peak_established, v);
  }
  for (const auto& [t, v] : report.memory_samples) {
    result.peak_memory = std::max(result.peak_memory, v);
  }
  result.amplification =
      meters.bytes_received() > 0
          ? static_cast<double>(meters.bytes_sent()) /
                static_cast<double>(meters.bytes_received())
          : 0;
  (void)legit_count;
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Extension: DoS attack study",
                     "random-qname flood over the B-Root model",
                     "proposed but not run in the paper (application list, "
                     "SS1/5) — capability demonstration");

  stats::Table table({"attack", "rate", "legit median ms", "legit answered",
                      "server CPU", "peak conns", "peak mem",
                      "bytes out/in"});
  for (double rate : {0.0, 2000.0, 10000.0}) {
    for (trace::Protocol protocol :
         {trace::Protocol::kUdp, trace::Protocol::kTcp}) {
      if (rate == 0 && protocol == trace::Protocol::kTcp) continue;
      auto r = Run(rate, protocol);
      table.AddRow({rate == 0 ? "none"
                              : std::string(trace::ProtocolName(protocol)) +
                                    " flood",
                    FormatDouble(rate / 1000, 0) + "k q/s",
                    FormatDouble(r.legit_median_ms, 2),
                    FormatDouble(100 * r.legit_answer_rate, 1) + "%",
                    FormatDouble(r.cpu_pct, 1) + "%",
                    std::to_string(r.peak_established),
                    bench::Gb(r.peak_memory),
                    FormatDouble(r.amplification, 1) + "x"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("a DNSSEC random-qname flood amplifies (signed NXDOMAIN "
              "responses dwarf queries) and a TCP flood additionally pins "
              "connection state until the idle timeout reaps it.\n");
  return 0;
}
