// Figure 10 (§5.1): bandwidth of all root-server responses under different
// DNSSEC ZSK sizes (1024 / 2048 / 2048-during-rollover) and DO-bit
// fractions (72.3% = 2016 reality, 100% = what-if).
//
// Paper results (at 38k q/s): 225 Mb/s median with 72.3% DO + 2048-bit ZSK;
// 296 Mb/s with 100% DO + 2048-bit ZSK (+31%); upgrading 1024->2048 adds
// +32%. This harness replays the B-Root-16 model at 1/10 rate, so absolute
// numbers are ~1/10; the ratios are the result.
#include "bench/bench_util.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"

using namespace ldp;

namespace {

struct Scenario {
  const char* group;
  const char* zsk;
  double do_fraction;
  int zsk_bits;
  bool rollover;
};

stats::Distribution MeasureBandwidth(const Scenario& scenario) {
  zone::DnssecConfig dnssec;
  dnssec.zsk_bits = scenario.zsk_bits;
  dnssec.zsk_rollover = scenario.rollover;
  auto world = bench::MakeRootServer(/*sign=*/true, dnssec, Seconds(20));

  auto trace_config = bench::ScaledBRootConfig(Seconds(30), /*seed=*/2016);
  trace_config.server = world.address;
  auto records = workload::MakeBRootTrace(trace_config);
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::SetDnssecOk(scenario.do_fraction));
  pipeline.Apply(records);

  // Sample the server's cumulative sent bytes every second; the per-second
  // deltas are the response bandwidth series the figure summarizes.
  std::vector<uint64_t> samples;
  sim::NodeMeters& meters = world.server->meters();
  std::function<void()> sample = [&]() {
    samples.push_back(meters.bytes_sent());
    if (world.simulator->Now() <
        records.back().timestamp + Seconds(1)) {
      world.simulator->Schedule(Seconds(1), sample);
    }
  };
  world.simulator->Schedule(Seconds(1), sample);

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.gauge_interval = 0;
  replay::SimReplayEngine engine(*world.net, replay_config, &meters);
  engine.Load(records);
  engine.Finish();

  stats::Summary bandwidth;
  for (size_t i = 1; i < samples.size(); ++i) {
    bandwidth.Add(static_cast<double>(samples[i] - samples[i - 1]) * 8.0 /
                  1e6);  // Mb/s
  }
  return bandwidth.Summarize();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 10", "bandwidth of root responses vs ZSK size and DO fraction",
      "225 Mb/s @72.3% DO/2048 ZSK -> 296 Mb/s @100% DO (+31%); "
      "1024->2048 ZSK adds +32%");

  const Scenario scenarios[] = {
      {"72.3% DO (current)", "1024", 0.723, 1024, false},
      {"72.3% DO (current)", "2048", 0.723, 2048, false},
      {"72.3% DO (current)", "2048 rollover", 0.723, 2048, true},
      {"All queries DO", "1024", 1.0, 1024, false},
      {"All queries DO", "2048", 1.0, 2048, false},
      {"All queries DO", "2048 rollover", 1.0, 2048, true},
      // The paper's stated future work (§5.1): 4096-bit ZSK.
      {"72.3% DO (current)", "4096 (future)", 0.723, 4096, false},
      {"All queries DO", "4096 (future)", 1.0, 4096, false},
  };

  stats::Table table({"group", "ZSK", "p5", "p25", "median", "p75", "p95"});
  double current_2048 = 0, all_do_2048 = 0, current_1024 = 0;
  for (const auto& scenario : scenarios) {
    auto d = MeasureBandwidth(scenario);
    table.AddRow({scenario.group, scenario.zsk, FormatDouble(d.p5, 1),
                  FormatDouble(d.p25, 1), FormatDouble(d.p50, 1),
                  FormatDouble(d.p75, 1), FormatDouble(d.p95, 1)});
    if (scenario.do_fraction < 1 && scenario.zsk_bits == 2048 &&
        !scenario.rollover) {
      current_2048 = d.p50;
    }
    if (scenario.do_fraction < 1 && scenario.zsk_bits == 1024) {
      current_1024 = d.p50;
    }
    if (scenario.do_fraction == 1.0 && scenario.zsk_bits == 2048 &&
        !scenario.rollover) {
      all_do_2048 = d.p50;
    }
  }
  std::printf("%s  (all columns Mb/s at 1/10 of B-Root rate)\n\n",
              table.Render().c_str());

  std::printf("headline ratios (medians):\n");
  std::printf("  72.3%% DO -> 100%% DO at 2048-bit ZSK: %+.0f%%   (paper: +31%%)\n",
              100.0 * (all_do_2048 / current_2048 - 1.0));
  std::printf("  ZSK 1024 -> 2048 at 72.3%% DO:        %+.0f%%   (paper: +32%%)\n",
              100.0 * (current_2048 / current_1024 - 1.0));
  return 0;
}
