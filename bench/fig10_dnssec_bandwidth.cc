// Figure 10 (§5.1): bandwidth of all root-server responses under different
// DNSSEC ZSK sizes (1024 / 2048 / 2048-during-rollover) and DO-bit
// fractions (72.3% = 2016 reality, 100% = what-if).
//
// Paper results (at 38k q/s): 225 Mb/s median with 72.3% DO + 2048-bit ZSK;
// 296 Mb/s with 100% DO + 2048-bit ZSK (+31%); upgrading 1024->2048 adds
// +32%. This harness replays the B-Root-16 model at 1/10 rate, so absolute
// numbers are ~1/10; the ratios are the result.
#include "bench/bench_util.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"

using namespace ldp;

namespace {

struct Scenario {
  const char* group;
  const char* zsk;
  double do_fraction;
  int zsk_bits;
  bool rollover;
};

struct ScenarioResult {
  stats::Distribution bandwidth;
  // Loss accounting from the replay engine: a bandwidth figure is only
  // meaningful if the replayed load actually arrived and was answered.
  uint64_t queries_sent = 0;
  uint64_t answered = 0;
  uint64_t unanswered = 0;
};

ScenarioResult MeasureBandwidth(const Scenario& scenario) {
  zone::DnssecConfig dnssec;
  dnssec.zsk_bits = scenario.zsk_bits;
  dnssec.zsk_rollover = scenario.rollover;
  auto world = bench::MakeRootServer(/*sign=*/true, dnssec, Seconds(20));

  auto trace_config = bench::ScaledBRootConfig(Seconds(30), /*seed=*/2016);
  trace_config.server = world.address;
  auto records = workload::MakeBRootTrace(trace_config);
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::SetDnssecOk(scenario.do_fraction));
  pipeline.Apply(records);

  // Sample the server's cumulative sent bytes every second; the per-second
  // deltas are the response bandwidth series the figure summarizes.
  std::vector<uint64_t> samples;
  sim::NodeMeters& meters = world.server->meters();
  std::function<void()> sample = [&]() {
    samples.push_back(meters.bytes_sent());
    if (world.simulator->Now() <
        records.back().timestamp + Seconds(1)) {
      world.simulator->Schedule(Seconds(1), sample);
    }
  };
  world.simulator->Schedule(Seconds(1), sample);

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.gauge_interval = 0;
  replay::SimReplayEngine engine(*world.net, replay_config, &meters);
  engine.Load(records);
  auto report = engine.Finish();

  stats::Summary bandwidth;
  for (size_t i = 1; i < samples.size(); ++i) {
    bandwidth.Add(static_cast<double>(samples[i] - samples[i - 1]) * 8.0 /
                  1e6);  // Mb/s
  }
  ScenarioResult result;
  result.bandwidth = bandwidth.Summarize();
  result.queries_sent = report.queries_sent;
  result.answered = report.responses;
  result.unanswered = report.unanswered();
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 10", "bandwidth of root responses vs ZSK size and DO fraction",
      "225 Mb/s @72.3% DO/2048 ZSK -> 296 Mb/s @100% DO (+31%); "
      "1024->2048 ZSK adds +32%");

  const Scenario scenarios[] = {
      {"72.3% DO (current)", "1024", 0.723, 1024, false},
      {"72.3% DO (current)", "2048", 0.723, 2048, false},
      {"72.3% DO (current)", "2048 rollover", 0.723, 2048, true},
      {"All queries DO", "1024", 1.0, 1024, false},
      {"All queries DO", "2048", 1.0, 2048, false},
      {"All queries DO", "2048 rollover", 1.0, 2048, true},
      // The paper's stated future work (§5.1): 4096-bit ZSK.
      {"72.3% DO (current)", "4096 (future)", 0.723, 4096, false},
      {"All queries DO", "4096 (future)", 1.0, 4096, false},
  };

  stats::Table table({"group", "ZSK", "p5", "p25", "median", "p75", "p95",
                      "sent", "answered", "lost"});
  double current_2048 = 0, all_do_2048 = 0, current_1024 = 0;
  uint64_t total_sent = 0, total_answered = 0, total_unanswered = 0;
  for (const auto& scenario : scenarios) {
    auto r = MeasureBandwidth(scenario);
    const auto& d = r.bandwidth;
    table.AddRow({scenario.group, scenario.zsk, FormatDouble(d.p5, 1),
                  FormatDouble(d.p25, 1), FormatDouble(d.p50, 1),
                  FormatDouble(d.p75, 1), FormatDouble(d.p95, 1),
                  std::to_string(r.queries_sent),
                  std::to_string(r.answered),
                  std::to_string(r.unanswered)});
    total_sent += r.queries_sent;
    total_answered += r.answered;
    total_unanswered += r.unanswered;
    if (scenario.do_fraction < 1 && scenario.zsk_bits == 2048 &&
        !scenario.rollover) {
      current_2048 = d.p50;
    }
    if (scenario.do_fraction < 1 && scenario.zsk_bits == 1024) {
      current_1024 = d.p50;
    }
    if (scenario.do_fraction == 1.0 && scenario.zsk_bits == 2048 &&
        !scenario.rollover) {
      all_do_2048 = d.p50;
    }
  }
  std::printf("%s  (bandwidth columns Mb/s at 1/10 of B-Root rate)\n\n",
              table.Render().c_str());

  std::printf("loss accounting: sent %llu, answered %llu, unanswered %llu "
              "across all scenarios\n",
              static_cast<unsigned long long>(total_sent),
              static_cast<unsigned long long>(total_answered),
              static_cast<unsigned long long>(total_unanswered));
  std::printf("headline ratios (medians):\n");
  std::printf("  72.3%% DO -> 100%% DO at 2048-bit ZSK: %+.0f%%   (paper: +31%%)\n",
              100.0 * (all_do_2048 / current_2048 - 1.0));
  std::printf("  ZSK 1024 -> 2048 at 72.3%% DO:        %+.0f%%   (paper: +32%%)\n",
              100.0 * (current_2048 / current_1024 - 1.0));

  bench::BenchJson json;
  json.Set("figure", std::string("fig10"));
  json.Set("queries_sent", total_sent);
  json.Set("answered", total_answered);
  json.Set("unanswered", total_unanswered);
  json.Set("current_1024_median_mbps", current_1024);
  json.Set("current_2048_median_mbps", current_2048);
  json.Set("all_do_2048_median_mbps", all_do_2048);
  json.Set("do_ratio_pct", 100.0 * (all_do_2048 / current_2048 - 1.0));
  json.Set("zsk_ratio_pct", 100.0 * (current_2048 / current_1024 - 1.0));
  json.WriteTo("BENCH_fig10.json");
  return 0;
}
