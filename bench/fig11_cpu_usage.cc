// Figure 11 (§5.2.3): overall server CPU usage vs TCP idle-timeout window,
// for the original trace (3% TCP), all-TCP, and all-TLS replays, at minimal
// RTT (<1 ms).
//
// Paper results (48-thread server, B-Root-17a): all-TCP ≈ 5% median,
// all-TLS ≈ 9-10%, original trace ≈ 10% (surprisingly *above* all-TCP —
// attributed to NIC TCP offloads); all flat in the timeout window, with
// TLS slightly elevated at a 5 s timeout (more handshakes).
#include "bench/bench_util.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"
#include "stats/metrics.h"

using namespace ldp;

namespace {

stats::Distribution MeasureCpu(const char* scenario,
                               NanoDuration idle_timeout) {
  auto world = bench::MakeRootServer(/*sign=*/true, zone::DnssecConfig{},
                                     idle_timeout);

  auto trace_config = bench::ScaledBRootConfig(Seconds(30), /*seed=*/2017);
  trace_config.server = world.address;
  auto records = workload::MakeBRootTrace(trace_config);
  mutate::MutationPipeline pipeline;
  if (std::string(scenario) == "all-TCP") {
    pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  } else if (std::string(scenario) == "all-TLS") {
    pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTls));
  }
  pipeline.Apply(records);

  // Sample CPU busy time every 2 s -> windowed utilization series, like
  // dstat in the paper's methodology. The sampling goes through the live
  // metrics layer: a polled gauge over the node meter, snapshotted on the
  // simulator clock, so the bench reads the same rows an operator would.
  sim::NodeMeters& meters = world.server->meters();
  stats::MetricsRegistry registry;
  registry.AddGaugeFn("sim.cpu_busy_ns", [&meters] {
    return static_cast<int64_t>(meters.cpu_busy());
  });
  stats::MetricsSnapshotter::Options snap_opts;
  snap_opts.interval = Seconds(2);
  snap_opts.keep_history = true;  // no path: rows stay in memory
  snap_opts.clock = [&world] { return world.simulator->Now(); };
  stats::MetricsSnapshotter snapshotter(registry, snap_opts);
  std::function<void()> sample = [&]() {
    snapshotter.WriteNow();
    if (world.simulator->Now() < records.back().timestamp + Seconds(2)) {
      world.simulator->Schedule(Seconds(2), sample);
    }
  };
  world.simulator->Schedule(Seconds(2), sample);

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.gauge_interval = 0;
  replay::SimReplayEngine engine(*world.net, replay_config, &meters);
  engine.Load(records);
  engine.Finish();

  // The model's per-query CPU constants are calibrated at the paper's 38k
  // q/s on 48 threads; we replay at 1/10 rate, so scale utilization by 10
  // to report machine-level percentages comparable to the figure.
  stats::Summary utilization;
  double capacity_per_window =
      ToSeconds(Seconds(2)) * meters.model().cores;
  const auto& rows = snapshotter.history();
  for (size_t i = 1; i < rows.size(); ++i) {
    double busy = ToSeconds(rows[i].GaugeValue("sim.cpu_busy_ns") -
                            rows[i - 1].GaugeValue("sim.cpu_busy_ns"));
    utilization.Add(100.0 * 10.0 * busy / capacity_per_window);
  }
  return utilization.Summarize();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 11", "server CPU usage vs TCP idle timeout (RTT < 1ms)",
      "medians: original (3% TCP) ~10%, all-TCP ~5%, all-TLS ~9-10%; flat "
      "across 5-40s timeouts; TLS +2% at 5s");

  stats::Table table({"scenario", "timeout", "p5 %", "p25 %", "median %",
                      "p75 %", "p95 %"});
  for (const char* scenario : {"original", "all-TCP", "all-TLS"}) {
    for (int timeout_s : {5, 10, 20, 30, 40}) {
      auto d = MeasureCpu(scenario, Seconds(timeout_s));
      table.AddRow({scenario, std::to_string(timeout_s) + "s",
                    FormatDouble(d.p5, 1), FormatDouble(d.p25, 1),
                    FormatDouble(d.p50, 1), FormatDouble(d.p75, 1),
                    FormatDouble(d.p95, 1)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "(percent of the whole 48-thread machine, scaled to the paper's "
      "38k q/s; the UDP>TCP per-query cost encodes the paper's NIC-offload "
      "observation — see sim::ResourceModel)\n");
  return 0;
}
