// Figure 13 (§5.2.2): server memory, established TCP connections, and
// TIME_WAIT population over time when *all* queries use TCP, across idle
// timeouts of 5-40 s, at minimal RTT.
//
// Paper results: ~15 GB RAM at a 20 s timeout (vs ~2 GB UDP-only
// baseline, ~6x growth moving UDP->TCP); ~180k total connections of which
// one third are established and the rest TIME_WAIT; steady state within
// ~5 minutes and flat thereafter; all three quantities rise with the
// timeout.
#include "bench/bench_util.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"

using namespace ldp;

namespace ldp::bench {

struct ResourceRun {
  replay::SimReplayReport report;
  uint64_t baseline_memory = 0;
};

// Shared by fig13 (TCP) and fig14 (TLS).
inline ResourceRun RunResourceExperiment(trace::Protocol protocol,
                                         NanoDuration idle_timeout,
                                         NanoDuration duration) {
  auto world = MakeRootServer(/*sign=*/true, zone::DnssecConfig{},
                              idle_timeout);
  auto trace_config = ScaledBRootConfig(duration, /*seed=*/2017);
  trace_config.server = world.address;
  auto records = workload::MakeBRootTrace(trace_config);
  mutate::MutationPipeline pipeline;
  pipeline.Add(mutate::ForceProtocol(protocol));
  pipeline.Apply(records);

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.tls_port = 853;
  replay_config.gauge_interval = Seconds(10);
  replay::SimReplayEngine engine(*world.net, replay_config,
                                 &world.server->meters());
  engine.Load(records);
  ResourceRun run;
  run.baseline_memory = world.server->meters().model().base_memory;
  run.report = engine.Finish();
  return run;
}

inline void PrintResourceFigure(trace::Protocol protocol,
                                const char* figure_name) {
  const NanoDuration kDuration = Seconds(90);
  stats::Table memory_table(
      {"timeout", "t=30s", "t=60s", "t=90s (steady)", "conn memory"});
  stats::Table conn_table(
      {"timeout", "established", "TIME_WAIT", "TW/EST ratio", "fresh conns",
       "reused"});

  for (int timeout_s : {5, 10, 20, 30, 40}) {
    auto run = RunResourceExperiment(protocol, Seconds(timeout_s), kDuration);
    const auto& report = run.report;

    auto sample_at = [&](const auto& series, NanoTime when) -> uint64_t {
      uint64_t value = 0;
      for (const auto& [t, v] : series) {
        if (t <= when) value = v;
      }
      return value;
    };
    uint64_t mem30 = sample_at(report.memory_samples, Seconds(30));
    uint64_t mem60 = sample_at(report.memory_samples, Seconds(60));
    uint64_t mem90 = sample_at(report.memory_samples, Seconds(90));
    uint64_t est = sample_at(report.established_samples, Seconds(90));
    uint64_t tw = sample_at(report.time_wait_samples, Seconds(90));

    memory_table.AddRow(
        {std::to_string(timeout_s) + "s", Gb(mem30), Gb(mem60), Gb(mem90),
         Gb(mem90 > run.baseline_memory ? mem90 - run.baseline_memory : 0)});
    conn_table.AddRow({std::to_string(timeout_s) + "s", std::to_string(est),
                       std::to_string(tw),
                       est > 0 ? FormatDouble(static_cast<double>(tw) /
                                                  static_cast<double>(est),
                                              2)
                               : "-",
                       std::to_string(report.fresh_connections),
                       std::to_string(report.reused_connections)});
  }

  std::printf("%s(a) memory consumption over time:\n%s\n", figure_name,
              memory_table.Render().c_str());
  std::printf("%s(b,c) connections at steady state (t=90s):\n%s\n",
              figure_name, conn_table.Render().c_str());
}

}  // namespace ldp::bench

#ifndef LDPLAYER_FIG14_TLS
int main() {
  bench::PrintHeader(
      "Figure 13", "server memory & connections, all queries over TCP",
      "~15 GB at 20s timeout (UDP baseline ~2 GB, ~6x); ~60k established + "
      "~120k TIME_WAIT; monotonic in timeout; steady after ~5 min");
  bench::PrintResourceFigure(trace::Protocol::kTcp, "Fig 13");
  std::printf(
      "(connection counts scale with the 1/10-rate, 20k-client model; the "
      "paper's trace has 1.17M clients. Memory = 2 GB base + 216 KB per "
      "established connection — the paper's measured NSD footprint.)\n");
  return 0;
}
#endif
