// Figure 14 (§5.2.2): server memory, established connections, and TIME_WAIT
// over time when all queries use TLS, across idle timeouts.
//
// Paper results: ~18 GB RAM at a 20 s timeout — only ~30% above all-TCP
// (most of the connection cost is TCP state, not TLS sessions) — with a
// connection population like Figure 13's.
#define LDPLAYER_FIG14_TLS
#include "bench/fig13_tcp_resources.cc"

int main() {
  using namespace ldp;
  bench::PrintHeader(
      "Figure 14", "server memory & connections, all queries over TLS",
      "~18 GB at 20s timeout (+30% over TCP's 15 GB); connection counts "
      "like Fig 13");
  bench::PrintResourceFigure(trace::Protocol::kTls, "Fig 14");
  std::printf(
      "(per-connection TLS adds 50 KB of session state on top of the "
      "216 KB TCP footprint — the paper's TCP-to-TLS delta)\n");
  return 0;
}
