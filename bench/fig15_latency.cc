// Figure 15 (§5.2.4): query latency as a function of client RTT with a
// 20 s connection timeout — (a) over all clients, (b) over non-busy
// clients (<250 queries in the trace), (c) the per-client query-load CDF.
//
// Paper results:
//  (a) all clients: TCP median ≈ UDP (connection reuse; ~15% slower at
//      160 ms RTT); tails are asymmetric and grow with RTT; TLS tail worst.
//  (b) non-busy clients: TCP median ≈ 2 RTT, TLS median drifts 2→4 RTT as
//      RTT grows; 25th percentile stays at 1 RTT (some reuse persists);
//      75th+ percentiles reach multiple RTTs (segment batching).
//  (c) 1% of clients send ~75% of queries; 81% of clients send <10.
#include <unordered_set>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"

using namespace ldp;

namespace {

// rtt == 0 selects the paper's "based on a distribution" variant
// (§5.2.1): per-client RTTs drawn from a mix approximating real resolver
// populations (20% near 10 ms, 50% 30-80 ms, 30% 100-250 ms).
replay::SimReplayReport RunLatency(const char* scenario, NanoDuration rtt) {
  auto world = bench::MakeRootServer(/*sign=*/true, zone::DnssecConfig{},
                                     Seconds(20));
  auto trace_config = bench::ScaledBRootConfig(Seconds(20), /*seed=*/2017);
  trace_config.server = world.address;
  auto records = workload::MakeBRootTrace(trace_config);
  mutate::MutationPipeline pipeline;
  if (std::string(scenario) == "all-TCP") {
    pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
  } else if (std::string(scenario) == "all-TLS") {
    pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTls));
  }
  pipeline.Apply(records);

  // Client-server RTT: the network's base one-way delay is 400 us; add the
  // rest on the client side.
  Rng rtt_rng(0x277);
  std::unordered_set<uint32_t> seen;
  for (const auto& record : records) {
    if (!seen.insert(record.src.value()).second) continue;
    NanoDuration client_rtt = rtt;
    if (rtt == 0) {
      double u = rtt_rng.NextDouble();
      if (u < 0.2) {
        client_rtt = Millis(5 + static_cast<int64_t>(rtt_rng.NextBelow(10)));
      } else if (u < 0.7) {
        client_rtt = Millis(30 + static_cast<int64_t>(rtt_rng.NextBelow(50)));
      } else {
        client_rtt =
            Millis(100 + static_cast<int64_t>(rtt_rng.NextBelow(150)));
      }
    }
    NanoDuration extra =
        client_rtt / 2 > Micros(400) ? client_rtt / 2 - Micros(400) : 0;
    world.net->SetHostExtraDelay(record.src, extra);
  }

  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{world.address, 53};
  replay_config.gauge_interval = 0;
  replay::SimReplayEngine engine(*world.net, replay_config,
                                 &world.server->meters());
  engine.Load(records);
  return engine.Finish();
}

void PrintRow(stats::Table& table, const char* scenario, NanoDuration rtt,
              const stats::Distribution& d) {
  table.AddRow({scenario,
                rtt == 0 ? "mixed" : FormatDouble(ToMillis(rtt), 0) + "ms",
                FormatDouble(d.p5, 1), FormatDouble(d.p25, 1),
                FormatDouble(d.p50, 1), FormatDouble(d.p75, 1),
                FormatDouble(d.p95, 1)});
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 15", "query latency vs client RTT (20s timeout)",
      "(a) TCP median ~ UDP (reuse); (b) non-busy: TCP ~2 RTT, TLS 2->4 "
      "RTT; (c) 1% of clients = 3/4 of load, 81% send <10 queries");

  stats::Table all_table({"scenario", "RTT", "p5 ms", "p25 ms", "median ms",
                          "p75 ms", "p95 ms"});
  stats::Table quiet_table({"scenario", "RTT", "p5 ms", "p25 ms",
                            "median ms", "p75 ms", "p95 ms"});
  std::unordered_map<IpAddress, size_t> loads;

  // Fixed RTTs sweep the figure's x-axis; rtt = 0 is the distribution
  // variant the paper also ran ("or based on a distribution", §5.2.1).
  for (NanoDuration rtt :
       {Millis(20), Millis(40), Millis(80), Millis(160), NanoDuration{0}}) {
    for (const char* scenario : {"original", "all-TCP", "all-TLS"}) {
      auto report = RunLatency(scenario, rtt);
      PrintRow(all_table, scenario, rtt, report.LatencySummary());
      // Non-busy clients: <250 queries in the full-rate trace = <25 at our
      // 1/10 scale.
      PrintRow(quiet_table, scenario, rtt, report.LatencySummary(25));
      if (loads.empty()) loads = report.SourceLoads();
    }
  }

  std::printf("(a) all clients:\n%s\n", all_table.Render().c_str());
  std::printf("(b) non-busy clients (<250 queries at paper scale):\n%s\n",
              quiet_table.Render().c_str());

  // (c) per-client load CDF.
  std::vector<size_t> counts;
  counts.reserve(loads.size());
  size_t total = 0;
  for (const auto& [src, count] : loads) {
    counts.push_back(count);
    total += count;
  }
  std::sort(counts.rbegin(), counts.rend());
  size_t top1pct_clients = std::max<size_t>(1, counts.size() / 100);
  size_t top_load = 0;
  for (size_t i = 0; i < top1pct_clients; ++i) top_load += counts[i];
  size_t quiet_clients = 0;
  for (size_t c : counts) quiet_clients += (c < 10) ? 1 : 0;

  std::printf("(c) per-client query load (%zu clients, %zu queries):\n",
              counts.size(), total);
  stats::Table cdf({"clients fraction", "load share"});
  for (double fraction : {0.001, 0.01, 0.05, 0.2, 0.5, 1.0}) {
    size_t n = std::max<size_t>(1, static_cast<size_t>(
                                       fraction *
                                       static_cast<double>(counts.size())));
    size_t share = 0;
    for (size_t i = 0; i < n; ++i) share += counts[i];
    cdf.AddRow({"top " + FormatDouble(fraction * 100, 1) + "%",
                FormatDouble(100.0 * static_cast<double>(share) /
                                 static_cast<double>(total),
                             1) +
                    "%"});
  }
  std::printf("%s", cdf.Render().c_str());
  std::printf("top 1%% of clients carry %.0f%% of load (paper: ~75%%); "
              "%.0f%% of clients send <10 queries (paper: 81%%)\n",
              100.0 * static_cast<double>(top_load) /
                  static_cast<double>(total),
              100.0 * static_cast<double>(quiet_clients) /
                  static_cast<double>(counts.size()));
  return 0;
}
