// Figure 6: query-time error between replayed and original traces (real
// sockets, real time, loopback): quartiles, min, max per trace.
//
// Paper result: quartiles usually within ±2.5 ms, worst (syn-1, 0.1 s
// inter-arrival) ±8 ms; min/max within ±17 ms.
#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

struct TraceSpec {
  std::string name;
  std::vector<trace::QueryRecord> records;
};

}  // namespace

int main() {
  bench::PrintHeader("Figure 6",
                     "query timing error of replay vs original trace",
                     "quartiles within +-2.5ms (worst +-8ms at 0.1s "
                     "inter-arrival); min/max within +-17ms");

  auto server = bench::LoopbackServer::Start();
  if (server == nullptr) {
    std::fprintf(stderr, "cannot start loopback server\n");
    return 1;
  }

  std::vector<TraceSpec> specs;
  {
    auto config = bench::ScaledBRootConfig(Seconds(10));
    specs.push_back({"B-Root*", workload::MakeBRootTrace(config)});
  }
  struct Syn {
    const char* name;
    NanoDuration interarrival;
    NanoDuration duration;
  };
  for (const Syn& syn : {Syn{"syn-0 (1s)", Seconds(1), Seconds(20)},
                         Syn{"syn-1 (0.1s)", Millis(100), Seconds(12)},
                         Syn{"syn-2 (10ms)", Millis(10), Seconds(8)},
                         Syn{"syn-3 (1ms)", Millis(1), Seconds(8)},
                         Syn{"syn-4 (0.1ms)", Micros(100), Seconds(8)}}) {
    workload::FixedIntervalConfig config;
    config.interarrival = syn.interarrival;
    config.duration = syn.duration;
    specs.push_back({syn.name, workload::MakeFixedIntervalTrace(config)});
  }

  stats::Table table({"trace", "queries", "min ms", "p25 ms", "median ms",
                      "p75 ms", "max ms"});
  for (auto& spec : specs) {
    server->Target(spec.records);
    replay::RealtimeConfig config;
    config.server = server->endpoint();
    config.n_distributors = 2;
    config.queriers_per_distributor = 2;
    auto report = replay::RunRealtimeReplay(spec.records, config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   report.error().ToString().c_str());
      continue;
    }
    // The paper ignores the first 20 s (startup transients); at our scale
    // skip the first 5% of queries.
    stats::Summary summary;
    summary.AddAll(report->TimingErrorsMs(spec.records.size() / 20));
    auto d = summary.Summarize();
    table.AddRow({spec.name, std::to_string(d.count), FormatDouble(d.min, 3),
                  FormatDouble(d.p25, 3), FormatDouble(d.p50, 3),
                  FormatDouble(d.p75, 3), FormatDouble(d.max, 3)});
  }
  std::printf("%s\n(single shared CPU core; paper used dedicated DETER "
              "hosts)\n",
              table.Render().c_str());
  return 0;
}
