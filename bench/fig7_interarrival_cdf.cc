// Figure 7: cumulative distribution of query inter-arrival times, original
// vs replayed, for the B-Root model and synthetic traces.
//
// Paper result: replayed CDFs overlay the originals for inter-arrivals of
// 10 ms or more and for real-world traffic; sub-millisecond fixed
// inter-arrivals show jitter around the target (syscall overhead is
// comparable to the desired delay) with the median on target.
#include <cmath>

#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

// Prints paired CDFs at fixed fractions for one trace.
void PrintCdfs(const std::string& name,
               const std::vector<trace::QueryRecord>& records,
               const replay::RealtimeReport& report) {
  std::vector<double> original;
  original.reserve(records.size());
  for (size_t i = 1; i < records.size(); ++i) {
    original.push_back(
        ToSeconds(records[i].timestamp - records[i - 1].timestamp));
  }
  std::vector<double> replayed = report.ReplayInterarrivalsS();

  stats::Summary orig_summary, replay_summary;
  orig_summary.AddAll(original);
  replay_summary.AddAll(replayed);

  std::printf("\n%s: inter-arrival CDF (seconds)\n", name.c_str());
  stats::Table table({"fraction", "original", "replayed"});
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    table.AddRow({FormatDouble(q, 2),
                  FormatDouble(orig_summary.Quantile(q), 6),
                  FormatDouble(replay_summary.Quantile(q), 6)});
  }
  std::printf("%s", table.Render().c_str());

  // One-number divergence: median absolute quantile difference.
  double diff = 0;
  int n = 0;
  for (double q = 0.05; q <= 0.95; q += 0.05) {
    diff += std::abs(orig_summary.Quantile(q) - replay_summary.Quantile(q));
    ++n;
  }
  std::printf("mean |quantile difference|: %.6f s\n", diff / n);
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 7",
                     "CDF of inter-arrival time, original vs replayed",
                     "curves overlay for >=10ms inter-arrivals and real "
                     "traffic; jitter below 1ms");

  auto server = bench::LoopbackServer::Start();
  if (server == nullptr) return 1;

  struct Spec {
    std::string name;
    std::vector<trace::QueryRecord> records;
  };
  std::vector<Spec> specs;
  {
    auto config = bench::ScaledBRootConfig(Seconds(10));
    specs.push_back({"B-Root*", workload::MakeBRootTrace(config)});
  }
  for (auto [name, gap, dur] :
       {std::tuple{"synthetic 100ms", Millis(100), Seconds(12)},
        std::tuple{"synthetic 10ms", Millis(10), Seconds(8)},
        std::tuple{"synthetic 1ms", Millis(1), Seconds(8)},
        std::tuple{"synthetic 0.1ms", Micros(100), Seconds(6)}}) {
    workload::FixedIntervalConfig config;
    config.interarrival = gap;
    config.duration = dur;
    specs.push_back({name, workload::MakeFixedIntervalTrace(config)});
  }

  for (auto& spec : specs) {
    server->Target(spec.records);
    replay::RealtimeConfig config;
    config.server = server->endpoint();
    config.n_distributors = 2;
    config.queriers_per_distributor = 2;
    auto report = replay::RunRealtimeReplay(spec.records, config);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   report.error().ToString().c_str());
      continue;
    }
    PrintCdfs(spec.name, spec.records, *report);
  }
  return 0;
}
