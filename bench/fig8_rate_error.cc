// Figure 8: per-second query-rate difference between replayed and original
// B-Root trace, five trials.
//
// Paper result: almost all seconds (4 trials 98-99%, 1 trial 95%) within
// ±0.1% rate difference at a median 38k q/s.
#include <cmath>

#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "workload/traces.h"

using namespace ldp;

int main() {
  bench::PrintHeader("Figure 8",
                     "per-second rate error of B-Root replay (5 trials)",
                     ">=95% of seconds within +-0.1% rate difference");

  auto server = bench::LoopbackServer::Start();
  if (server == nullptr) return 1;

  auto trace_config = bench::ScaledBRootConfig(Seconds(12));
  auto records = workload::MakeBRootTrace(trace_config);
  server->Target(records);

  stats::Table table({"trial", "seconds", "median err %", "p5 %", "p95 %",
                      "within +-0.1%", "within +-1%"});
  for (int trial = 1; trial <= 5; ++trial) {
    replay::RealtimeConfig config;
    config.server = server->endpoint();
    config.n_distributors = 2;
    config.queriers_per_distributor = 3;
    config.seed = 99 + static_cast<uint64_t>(trial);
    auto report = replay::RunRealtimeReplay(records, config);
    if (!report.ok()) {
      std::fprintf(stderr, "trial %d: %s\n", trial,
                   report.error().ToString().c_str());
      continue;
    }
    auto errors = report->RateErrors();
    stats::Summary summary;
    size_t tight = 0, loose = 0;
    for (double e : errors) {
      summary.Add(e * 100.0);
      if (std::abs(e) <= 0.001) ++tight;
      if (std::abs(e) <= 0.01) ++loose;
    }
    auto d = summary.Summarize();
    table.AddRow({std::to_string(trial), std::to_string(errors.size()),
                  FormatDouble(d.p50, 3), FormatDouble(d.p5, 3),
                  FormatDouble(d.p95, 3),
                  FormatDouble(100.0 * tight / errors.size(), 1) + "%",
                  FormatDouble(100.0 * loose / errors.size(), 1) + "%"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("note: at 1/10 rate each second holds ~3.8k queries, so one "
              "displaced query = 0.03%% — the +-0.1%% band is coarser here "
              "than at the paper's 38k q/s.\n");
  return 0;
}
