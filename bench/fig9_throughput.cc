// Figure 9: single-host maximum replay throughput — a continuous stream of
// identical queries over UDP in fast mode (no timer events), sampling query
// rate and bandwidth every two seconds.
//
// Paper result: 87k queries/s (60 Mb/s) sustained from one 4-core host,
// bottlenecked on the query generator's single core; twice the normal
// B-Root rate.
//
// Four phases: "before" replays against a 1-shard server with per-datagram
// syscalls (the original path), "after" uses 4 SO_REUSEPORT shards, the
// wire-level response cache, and batched sendmmsg/recvmmsg on both sides,
// "after+metrics" reruns the fast path with the live-metrics layer
// enabled — the per-window rate table comes from its JSONL snapshots, and
// the rate delta vs the plain fast path is the metrics overhead (budget:
// within 3%) — and "afpacket" reruns the fast path over AF_PACKET mmap
// rings on both sides (skipped with the probe's reason on hosts without
// CAP_NET_RAW). All rates land in BENCH_fig9.json.
#include <optional>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "net/datapath.h"
#include "stats/metrics.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

struct PhaseResult {
  double rate_qps = 0;          // sends / wall time (includes timeout drain)
  double send_window_rate_qps = 0;  // sends / (last send - first send)
  double served_rate_qps = 0;   // queries the server answered / wall time
  uint64_t queries_sent = 0;
  uint64_t replies = 0;
  // Terminal-outcome accounting: sent == answered + timed_out + send_failed,
  // so client-side loss under overload is explicit, not inferred.
  uint64_t answered = 0;
  uint64_t timed_out = 0;
  uint64_t send_failed = 0;
  uint64_t retransmits = 0;
  server::EngineStats server_stats;
  std::vector<double> window_rates;  // per-snapshot-window send rate, q/s
};

// When `metrics`/`snapshotter` are set, the phase runs with the live-metrics
// layer on both sides and the per-window table is derived from the
// snapshotter's history (delta of replay.sent between rows) — the same JSONL
// rows an operator would tail during a real replay.
std::optional<PhaseResult> RunPhase(
    const char* name, std::vector<trace::QueryRecord> records,
    const bench::LoopbackOptions& server_options, bool batch_udp,
    stats::Table* table, stats::MetricsRegistry* metrics = nullptr,
    stats::MetricsSnapshotter* snapshotter = nullptr) {
  bench::LoopbackOptions options = server_options;
  options.metrics = metrics;
  auto server = bench::LoopbackServer::Start(options);
  if (server == nullptr) {
    std::fprintf(stderr, "%s: server start failed\n", name);
    return std::nullopt;
  }
  server->Target(records);
  size_t query_wire_size = records[0].ToMessage().Encode().size() + 28;

  replay::RealtimeConfig config;
  config.server = server->endpoint();
  config.fast_mode = true;
  config.batch_udp = batch_udp;
  config.n_distributors = 1;
  config.queriers_per_distributor = 6;
  // Queriers ride the same transport as the server: mixed epoll/afpacket
  // loopback runs need route_localnet (DESIGN.md §12), so the comparison
  // keeps both sides on one backend.
  config.datapath = server_options.datapath;
  config.afpacket = server_options.afpacket;
  config.metrics = metrics;
  config.snapshotter = snapshotter;

  NanoTime start = MonotonicNow();
  auto report = replay::RunRealtimeReplay(records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 report.error().ToString().c_str());
    return std::nullopt;
  }
  NanoDuration elapsed = MonotonicNow() - start;

  PhaseResult result;
  result.queries_sent = report->queries_sent;
  result.replies = report->replies;
  result.answered = report->answered;
  result.timed_out = report->timed_out;
  result.send_failed = report->send_failed;
  result.retransmits = report->retransmits;
  result.rate_qps =
      static_cast<double>(report->queries_sent) / ToSeconds(elapsed);
  // Wall time above includes the timeout drain after the last send, whose
  // length depends on how many stragglers were inflight — noisy between
  // runs. The send-window rate (first send to last send) is the stable
  // throughput measure the overhead comparison uses.
  NanoTime first_send = 0;
  NanoTime last_send = 0;
  for (const auto& send : report->sends) {
    if (send.sent == 0) continue;
    if (first_send == 0 || send.sent < first_send) first_send = send.sent;
    if (send.sent > last_send) last_send = send.sent;
  }
  result.send_window_rate_qps =
      last_send > first_send
          ? static_cast<double>(report->queries_sent) /
                ToSeconds(last_send - first_send)
          : result.rate_qps;
  result.server_stats = server->stats();
  result.served_rate_qps =
      static_cast<double>(result.server_stats.queries) / ToSeconds(elapsed);

  // Per-window series straight from the live snapshots: each JSONL row's
  // replay.sent delta over the wall time since the previous row. The final
  // row (written after the distributors join) can land moments after the
  // last periodic one; skip near-empty windows to avoid noise rates.
  if (snapshotter != nullptr) {
    uint64_t prev_sent = 0;
    NanoTime prev_ts = 0;
    double offset_s = 0;
    for (const auto& row : snapshotter->history()) {
      double dt = prev_ts != 0 ? ToSeconds(row.taken_at - prev_ts)
                               : ToSeconds(snapshotter->interval());
      uint64_t sent = row.CounterValue("replay.sent");
      uint64_t delta = sent >= prev_sent ? sent - prev_sent : 0;
      prev_ts = row.taken_at;
      prev_sent = sent;
      if (dt < 0.05) continue;
      if (delta == 0) {  // timeout-drain window after the last send
        offset_s += dt;
        continue;
      }
      double rate = static_cast<double>(delta) / dt;
      result.window_rates.push_back(rate);
      if (table != nullptr) {
        table->AddRow({FormatDouble(offset_s, 1) + "-" +
                           FormatDouble(offset_s + dt, 1) + "s",
                       std::to_string(delta),
                       FormatDouble(rate / 1000.0, 1) + "k q/s",
                       bench::Mbps(rate *
                                   static_cast<double>(query_wire_size) *
                                   8.0)});
      }
      offset_s += dt;
    }
  }

  std::printf("%s: sent %llu in %.2f s = %.1fk q/s (%s); server answered "
              "%llu = %.1fk q/s served (cache hit %llu / miss %llu)\n",
              name, static_cast<unsigned long long>(result.queries_sent),
              ToSeconds(elapsed), result.rate_qps / 1000.0,
              bench::Mbps(result.rate_qps *
                          static_cast<double>(query_wire_size) * 8)
                  .c_str(),
              static_cast<unsigned long long>(result.server_stats.queries),
              result.served_rate_qps / 1000.0,
              static_cast<unsigned long long>(
                  result.server_stats.cache_hits),
              static_cast<unsigned long long>(
                  result.server_stats.cache_misses));
  std::printf("%s: outcomes answered %llu / timed_out %llu / send_failed "
              "%llu (retransmits %llu)\n",
              name, static_cast<unsigned long long>(result.answered),
              static_cast<unsigned long long>(result.timed_out),
              static_cast<unsigned long long>(result.send_failed),
              static_cast<unsigned long long>(result.retransmits));
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9",
                     "single-host fast-replay throughput over UDP",
                     "87k q/s (60 Mb/s) sustained; generator core is the "
                     "bottleneck");

  // The paper streams www.example.com for 5 minutes; we run ~10 s windows.
  // Identical queries, fast mode, one distributor with several queriers
  // (paper: 1 distributor + 6 queriers on a 4-core host).
  const size_t kQueries = 400000;
  std::vector<trace::QueryRecord> records;
  records.reserve(kQueries);
  trace::QueryRecord proto;
  proto.qname = *dns::Name::Parse("www.example.com");
  proto.qtype = dns::RRType::kA;
  for (size_t i = 0; i < kQueries; ++i) {
    proto.timestamp = static_cast<NanoTime>(i);  // irrelevant in fast mode
    proto.src = IpAddress(172, 16, 0, static_cast<uint8_t>(i % 200 + 1));
    records.push_back(proto);
  }

  // Phase 1 — the original single-syscall path: one shard, no response
  // cache, one sendto per query.
  auto before = RunPhase("before (1 shard, no cache, per-datagram io)",
                         records, bench::LoopbackOptions{}, false, nullptr);
  if (!before) return 1;

  // Phase 2 — the multi-core fast path: 4 SO_REUSEPORT shards, wire-level
  // response cache, sendmmsg/recvmmsg batches on both sides.
  bench::LoopbackOptions fast;
  fast.n_shards = 4;
  fast.response_cache_entries = 1024;
  fast.udp_recv_buffer_bytes = 4 << 20;
  auto after = RunPhase("after  (4 shards, cache, batched io)", records,
                        fast, true, nullptr);
  if (!after) return 1;

  // Phase 3 — the fast path again with the live-metrics layer recording on
  // both sides and JSONL snapshots streaming every 500 ms. The per-window
  // table below reads those snapshots, and the send-rate delta vs phase 2
  // is the observability overhead (budget: within 3%).
  stats::MetricsRegistry registry;
  stats::MetricsSnapshotter::Options snap_opts;
  snap_opts.path = "BENCH_fig9_metrics.jsonl";
  snap_opts.interval = Millis(500);
  snap_opts.keep_history = true;
  stats::MetricsSnapshotter snapshotter(registry, snap_opts);
  if (auto s = snapshotter.Open(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }
  stats::Table table({"window", "queries", "rate", "bandwidth"});
  auto with_metrics =
      RunPhase("after+metrics (fast path, live snapshots)", records, fast,
               true, &table, &registry, &snapshotter);
  if (!with_metrics) return 1;

  // Phase 4 — the fast path over the AF_PACKET datapath on both sides:
  // mmap'd rings, userspace frame assembly, PACKET_FANOUT across the
  // server shards. Detect-and-skip on hosts without CAP_NET_RAW or ring
  // support, recording the probe's reason instead of failing.
  std::optional<PhaseResult> afpacket;
  std::string afpacket_skipped;
  if (auto probe = net::ProbeAfPacket({}); !probe.ok()) {
    afpacket_skipped = probe.error().ToString();
    std::printf("afpacket phase skipped: %s\n", afpacket_skipped.c_str());
  } else {
    bench::LoopbackOptions ring = fast;
    ring.datapath = net::DatapathKind::kAfPacket;
    afpacket = RunPhase("afpacket (4 fanout rings, cache, ring tx)",
                        records, ring, true, nullptr);
    if (!afpacket) return 1;
  }

  std::printf("\nper-window send rate of the fast path (from "
              "BENCH_fig9_metrics.jsonl snapshots):\n%s\n",
              table.Render().c_str());

  double overhead_pct =
      after->send_window_rate_qps > 0
          ? 100.0 *
                (after->send_window_rate_qps -
                 with_metrics->send_window_rate_qps) /
                after->send_window_rate_qps
          : 0.0;
  std::printf("metrics overhead (send-window rate): %.1fk q/s with "
              "snapshots vs %.1fk q/s without = %+.2f%% (budget 3%%)%s\n",
              with_metrics->send_window_rate_qps / 1000.0,
              after->send_window_rate_qps / 1000.0, overhead_pct,
              overhead_pct > 3.0 ? "  ** OVER BUDGET **" : "");

  double total_rate = 0;
  int windows = 0;
  for (double rate : with_metrics->window_rates) {
    total_rate += rate;
    ++windows;
  }
  double send_speedup = after->rate_qps / before->rate_qps;
  double served_speedup = after->served_rate_qps / before->served_rate_qps;
  std::printf("mean window send rate %.1fk q/s over %d windows\n",
              windows > 0 ? total_rate / windows / 1000.0 : 0.0, windows);
  std::printf("server fast path: %.1fk q/s served vs %.1fk q/s seed — "
              "%.2fx (send path %.2fx)\n",
              after->served_rate_qps / 1000.0,
              before->served_rate_qps / 1000.0, served_speedup,
              send_speedup);
  std::printf("(paper: 87k q/s sent from a dedicated 4-core host, generator "
              "core the bottleneck — the send path is generator-bound here "
              "too, so the fast path shows up in the *served* rate: the "
              "sharded server answers what the seed server dropped)\n");

  const uint64_t host_cpus = std::thread::hardware_concurrency();
  if (afpacket) {
    double ring_speedup =
        after->served_rate_qps > 0
            ? afpacket->served_rate_qps / after->served_rate_qps
            : 0.0;
    std::printf("afpacket datapath: %.1fk q/s served vs %.1fk q/s epoll "
                "fast path = %.2fx on %llu cpu%s\n",
                afpacket->served_rate_qps / 1000.0,
                after->served_rate_qps / 1000.0, ring_speedup,
                static_cast<unsigned long long>(host_cpus),
                host_cpus == 1 ? "" : "s");
    if (host_cpus < 4) {
      std::printf("(ring and generator share %llu core%s here — the paper's "
                  "target rates need dedicated cores per fanout ring)\n",
                  static_cast<unsigned long long>(host_cpus),
                  host_cpus == 1 ? "" : "s");
    }
  }

  bench::BenchJson json;
  json.Set("figure", std::string("fig9"));
  json.Set("queries", static_cast<uint64_t>(kQueries));
  json.Set("before_send_rate_qps", before->rate_qps);
  json.Set("before_served_rate_qps", before->served_rate_qps);
  json.Set("before_served_queries", before->server_stats.queries);
  json.Set("after_send_rate_qps", after->rate_qps);
  json.Set("after_served_rate_qps", after->served_rate_qps);
  json.Set("after_served_queries", after->server_stats.queries);
  json.Set("after_shards", static_cast<uint64_t>(fast.n_shards));
  json.Set("after_cache_entries",
           static_cast<uint64_t>(fast.response_cache_entries));
  json.Set("after_cache_hits", after->server_stats.cache_hits);
  json.Set("after_cache_misses", after->server_stats.cache_misses);
  json.Set("before_answered", before->answered);
  json.Set("before_timed_out", before->timed_out);
  json.Set("before_send_failed", before->send_failed);
  json.Set("before_retransmits", before->retransmits);
  json.Set("after_answered", after->answered);
  json.Set("after_timed_out", after->timed_out);
  json.Set("after_send_failed", after->send_failed);
  json.Set("after_retransmits", after->retransmits);
  json.Set("served_speedup", served_speedup);
  json.Set("send_speedup", send_speedup);
  json.Set("after_send_window_rate_qps", after->send_window_rate_qps);
  json.Set("metrics_send_rate_qps", with_metrics->rate_qps);
  json.Set("metrics_send_window_rate_qps",
           with_metrics->send_window_rate_qps);
  json.Set("metrics_served_rate_qps", with_metrics->served_rate_qps);
  json.Set("metrics_overhead_pct", overhead_pct);
  json.Set("metrics_snapshot_rows",
           static_cast<uint64_t>(snapshotter.rows_written()));
  json.Set("after_window_rates_qps", with_metrics->window_rates);
  json.Set("host_cpus", host_cpus);
  if (afpacket) {
    json.Set("afpacket_send_rate_qps", afpacket->rate_qps);
    json.Set("afpacket_send_window_rate_qps",
             afpacket->send_window_rate_qps);
    json.Set("afpacket_served_rate_qps", afpacket->served_rate_qps);
    json.Set("afpacket_served_queries", afpacket->server_stats.queries);
    json.Set("afpacket_answered", afpacket->answered);
    json.Set("afpacket_timed_out", afpacket->timed_out);
    json.Set("afpacket_send_failed", afpacket->send_failed);
    json.Set("afpacket_vs_epoll_served_speedup",
             after->served_rate_qps > 0
                 ? afpacket->served_rate_qps / after->served_rate_qps
                 : 0.0);
  } else {
    json.Set("skipped", afpacket_skipped);
  }
  json.WriteTo("BENCH_fig9.json");
  return 0;
}
