// Figure 9: single-host maximum replay throughput — a continuous stream of
// identical queries over UDP in fast mode (no timer events), sampling query
// rate and bandwidth every two seconds.
//
// Paper result: 87k queries/s (60 Mb/s) sustained from one 4-core host,
// bottlenecked on the query generator's single core; twice the normal
// B-Root rate.
#include <atomic>

#include "bench/bench_util.h"
#include "stats/timeseries.h"
#include "bench/realtime_util.h"
#include "workload/traces.h"

using namespace ldp;

int main() {
  bench::PrintHeader("Figure 9",
                     "single-host fast-replay throughput over UDP",
                     "87k q/s (60 Mb/s) sustained; generator core is the "
                     "bottleneck");

  auto server = bench::LoopbackServer::Start();
  if (server == nullptr) return 1;

  // The paper streams www.example.com for 5 minutes; we run ~10 s windows.
  // Identical queries, fast mode, one distributor with several queriers
  // (paper: 1 distributor + 6 queriers on a 4-core host).
  const size_t kQueries = 400000;
  std::vector<trace::QueryRecord> records;
  records.reserve(kQueries);
  trace::QueryRecord proto;
  proto.qname = *dns::Name::Parse("www.example.com");
  proto.qtype = dns::RRType::kA;
  proto.src = IpAddress(172, 16, 0, 1);
  for (size_t i = 0; i < kQueries; ++i) {
    proto.timestamp = static_cast<NanoTime>(i);  // irrelevant in fast mode
    proto.src = IpAddress(172, 16, 0, static_cast<uint8_t>(i % 200 + 1));
    records.push_back(proto);
  }
  server->Target(records);

  size_t query_wire_size = records[0].ToMessage().Encode().size() + 28;

  replay::RealtimeConfig config;
  config.server = server->endpoint();
  config.fast_mode = true;
  config.n_distributors = 1;
  config.queriers_per_distributor = 6;

  stats::Table table({"window", "queries", "rate", "bandwidth"});
  double total_rate = 0;
  int windows = 0;
  NanoTime start = MonotonicNow();
  auto report = replay::RunRealtimeReplay(records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.error().ToString().c_str());
    return 1;
  }
  NanoDuration elapsed = MonotonicNow() - start;

  // Reconstruct the per-2s series from send timestamps.
  stats::RateCounter counter(Seconds(2));
  for (const auto& send : report->sends) counter.Record(send.sent);
  int index = 0;
  for (uint64_t count : counter.BucketCounts()) {
    double rate = static_cast<double>(count) / 2.0;
    table.AddRow({std::to_string(index * 2) + "-" +
                      std::to_string(index * 2 + 2) + "s",
                  std::to_string(count),
                  FormatDouble(rate / 1000.0, 1) + "k q/s",
                  bench::Mbps(rate * static_cast<double>(query_wire_size) *
                              8.0)});
    total_rate += rate;
    ++windows;
    ++index;
  }
  std::printf("%s\n", table.Render().c_str());

  double overall =
      static_cast<double>(report->queries_sent) / ToSeconds(elapsed);
  std::printf("overall: %llu queries in %.2f s = %.1fk q/s (%s), "
              "replies received: %llu\n",
              static_cast<unsigned long long>(report->queries_sent),
              ToSeconds(elapsed), overall / 1000.0,
              bench::Mbps(overall * static_cast<double>(query_wire_size) * 8)
                  .c_str(),
              static_cast<unsigned long long>(report->replies));
  std::printf("server answered %llu of those in the same window\n",
              static_cast<unsigned long long>(
                  server->engine().stats().queries));
  std::printf("(paper: 87k q/s on a dedicated 4-core host with the server "
              "on separate hardware; here the replay engine, the server, "
              "and the kernel share one core, so the reply path lags the "
              "send path — the figure's metric is send throughput)\n");
  (void)total_rate;
  (void)windows;
  return 0;
}
