// Figure 9: single-host maximum replay throughput — a continuous stream of
// identical queries over UDP in fast mode (no timer events), sampling query
// rate and bandwidth every two seconds.
//
// Paper result: 87k queries/s (60 Mb/s) sustained from one 4-core host,
// bottlenecked on the query generator's single core; twice the normal
// B-Root rate.
//
// Two phases bracket the multi-core fast path: "before" replays against a
// 1-shard server with per-datagram syscalls (the original path), "after"
// uses 4 SO_REUSEPORT shards, the wire-level response cache, and batched
// sendmmsg/recvmmsg on both sides. Both rates land in BENCH_fig9.json.
#include <optional>

#include "bench/bench_util.h"
#include "bench/realtime_util.h"
#include "stats/timeseries.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

struct PhaseResult {
  double rate_qps = 0;          // sends / wall time
  double served_rate_qps = 0;   // queries the server answered / wall time
  uint64_t queries_sent = 0;
  uint64_t replies = 0;
  // Terminal-outcome accounting: sent == answered + timed_out + send_failed,
  // so client-side loss under overload is explicit, not inferred.
  uint64_t answered = 0;
  uint64_t timed_out = 0;
  uint64_t send_failed = 0;
  uint64_t retransmits = 0;
  server::EngineStats server_stats;
  std::vector<double> window_rates;  // per-2s send rate, q/s
};

std::optional<PhaseResult> RunPhase(
    const char* name, std::vector<trace::QueryRecord> records,
    const bench::LoopbackOptions& server_options, bool batch_udp,
    stats::Table* table) {
  auto server = bench::LoopbackServer::Start(server_options);
  if (server == nullptr) {
    std::fprintf(stderr, "%s: server start failed\n", name);
    return std::nullopt;
  }
  server->Target(records);
  size_t query_wire_size = records[0].ToMessage().Encode().size() + 28;

  replay::RealtimeConfig config;
  config.server = server->endpoint();
  config.fast_mode = true;
  config.batch_udp = batch_udp;
  config.n_distributors = 1;
  config.queriers_per_distributor = 6;

  NanoTime start = MonotonicNow();
  auto report = replay::RunRealtimeReplay(records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 report.error().ToString().c_str());
    return std::nullopt;
  }
  NanoDuration elapsed = MonotonicNow() - start;

  PhaseResult result;
  result.queries_sent = report->queries_sent;
  result.replies = report->replies;
  result.answered = report->answered;
  result.timed_out = report->timed_out;
  result.send_failed = report->send_failed;
  result.retransmits = report->retransmits;
  result.rate_qps =
      static_cast<double>(report->queries_sent) / ToSeconds(elapsed);
  result.server_stats = server->stats();
  result.served_rate_qps =
      static_cast<double>(result.server_stats.queries) / ToSeconds(elapsed);

  // Reconstruct the per-2s series from send timestamps (queries that never
  // reached the wire have no send instant and are excluded).
  stats::RateCounter counter(Seconds(2));
  for (const auto& send : report->sends) {
    if (send.sent == 0 ||
        send.state == replay::SendOutcome::State::kSendFailed) {
      continue;
    }
    counter.Record(send.sent);
  }
  int index = 0;
  for (uint64_t count : counter.BucketCounts()) {
    double rate = static_cast<double>(count) / 2.0;
    result.window_rates.push_back(rate);
    if (table != nullptr) {
      table->AddRow({std::to_string(index * 2) + "-" +
                         std::to_string(index * 2 + 2) + "s",
                     std::to_string(count),
                     FormatDouble(rate / 1000.0, 1) + "k q/s",
                     bench::Mbps(rate *
                                 static_cast<double>(query_wire_size) *
                                 8.0)});
    }
    ++index;
  }

  std::printf("%s: sent %llu in %.2f s = %.1fk q/s (%s); server answered "
              "%llu = %.1fk q/s served (cache hit %llu / miss %llu)\n",
              name, static_cast<unsigned long long>(result.queries_sent),
              ToSeconds(elapsed), result.rate_qps / 1000.0,
              bench::Mbps(result.rate_qps *
                          static_cast<double>(query_wire_size) * 8)
                  .c_str(),
              static_cast<unsigned long long>(result.server_stats.queries),
              result.served_rate_qps / 1000.0,
              static_cast<unsigned long long>(
                  result.server_stats.cache_hits),
              static_cast<unsigned long long>(
                  result.server_stats.cache_misses));
  std::printf("%s: outcomes answered %llu / timed_out %llu / send_failed "
              "%llu (retransmits %llu)\n",
              name, static_cast<unsigned long long>(result.answered),
              static_cast<unsigned long long>(result.timed_out),
              static_cast<unsigned long long>(result.send_failed),
              static_cast<unsigned long long>(result.retransmits));
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9",
                     "single-host fast-replay throughput over UDP",
                     "87k q/s (60 Mb/s) sustained; generator core is the "
                     "bottleneck");

  // The paper streams www.example.com for 5 minutes; we run ~10 s windows.
  // Identical queries, fast mode, one distributor with several queriers
  // (paper: 1 distributor + 6 queriers on a 4-core host).
  const size_t kQueries = 400000;
  std::vector<trace::QueryRecord> records;
  records.reserve(kQueries);
  trace::QueryRecord proto;
  proto.qname = *dns::Name::Parse("www.example.com");
  proto.qtype = dns::RRType::kA;
  for (size_t i = 0; i < kQueries; ++i) {
    proto.timestamp = static_cast<NanoTime>(i);  // irrelevant in fast mode
    proto.src = IpAddress(172, 16, 0, static_cast<uint8_t>(i % 200 + 1));
    records.push_back(proto);
  }

  // Phase 1 — the original single-syscall path: one shard, no response
  // cache, one sendto per query.
  auto before = RunPhase("before (1 shard, no cache, per-datagram io)",
                         records, bench::LoopbackOptions{}, false, nullptr);
  if (!before) return 1;

  // Phase 2 — the multi-core fast path: 4 SO_REUSEPORT shards, wire-level
  // response cache, sendmmsg/recvmmsg batches on both sides.
  bench::LoopbackOptions fast;
  fast.n_shards = 4;
  fast.response_cache_entries = 1024;
  fast.udp_recv_buffer_bytes = 4 << 20;
  stats::Table table({"window", "queries", "rate", "bandwidth"});
  auto after = RunPhase("after  (4 shards, cache, batched io)", records,
                        fast, true, &table);
  if (!after) return 1;

  std::printf("\nper-window send rate of the fast path:\n%s\n",
              table.Render().c_str());

  double total_rate = 0;
  int windows = 0;
  for (double rate : after->window_rates) {
    total_rate += rate;
    ++windows;
  }
  double send_speedup = after->rate_qps / before->rate_qps;
  double served_speedup = after->served_rate_qps / before->served_rate_qps;
  std::printf("mean window send rate %.1fk q/s over %d windows\n",
              windows > 0 ? total_rate / windows / 1000.0 : 0.0, windows);
  std::printf("server fast path: %.1fk q/s served vs %.1fk q/s seed — "
              "%.2fx (send path %.2fx)\n",
              after->served_rate_qps / 1000.0,
              before->served_rate_qps / 1000.0, served_speedup,
              send_speedup);
  std::printf("(paper: 87k q/s sent from a dedicated 4-core host, generator "
              "core the bottleneck — the send path is generator-bound here "
              "too, so the fast path shows up in the *served* rate: the "
              "sharded server answers what the seed server dropped)\n");

  bench::BenchJson json;
  json.Set("figure", std::string("fig9"));
  json.Set("queries", static_cast<uint64_t>(kQueries));
  json.Set("before_send_rate_qps", before->rate_qps);
  json.Set("before_served_rate_qps", before->served_rate_qps);
  json.Set("before_served_queries", before->server_stats.queries);
  json.Set("after_send_rate_qps", after->rate_qps);
  json.Set("after_served_rate_qps", after->served_rate_qps);
  json.Set("after_served_queries", after->server_stats.queries);
  json.Set("after_shards", static_cast<uint64_t>(fast.n_shards));
  json.Set("after_cache_entries",
           static_cast<uint64_t>(fast.response_cache_entries));
  json.Set("after_cache_hits", after->server_stats.cache_hits);
  json.Set("after_cache_misses", after->server_stats.cache_misses);
  json.Set("before_answered", before->answered);
  json.Set("before_timed_out", before->timed_out);
  json.Set("before_send_failed", before->send_failed);
  json.Set("before_retransmits", before->retransmits);
  json.Set("after_answered", after->answered);
  json.Set("after_timed_out", after->timed_out);
  json.Set("after_send_failed", after->send_failed);
  json.Set("after_retransmits", after->retransmits);
  json.Set("served_speedup", served_speedup);
  json.Set("send_speedup", send_speedup);
  json.Set("after_window_rates_qps", after->window_rates);
  json.WriteTo("BENCH_fig9.json");
  return 0;
}
