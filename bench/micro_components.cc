// Component microbenchmarks (google-benchmark): the per-query costs that
// bound single-host replay throughput (Fig 9's 87k q/s) and server answer
// rates — message codec, name compression, zone lookup, full engine
// wire-to-wire, and the simulator's event throughput.
#include <benchmark/benchmark.h>

#include "server/engine.h"
#include "sim/simulator.h"
#include "workload/hierarchy.h"
#include "zone/dnssec.h"
#include "zone/lookup.h"

using namespace ldp;

namespace {

dns::Message SampleResponse() {
  dns::Message msg;
  msg.id = 4242;
  msg.qr = true;
  msg.aa = true;
  msg.questions.push_back(dns::Question{*dns::Name::Parse("www.example.com"),
                                        dns::RRType::kA, dns::RRClass::kIN});
  for (int i = 0; i < 4; ++i) {
    msg.answers.push_back(dns::ResourceRecord{
        *dns::Name::Parse("www.example.com"), dns::RRType::kA,
        dns::RRClass::kIN, 300,
        dns::ARdata{IpAddress(192, 0, 2, static_cast<uint8_t>(i))}});
  }
  msg.authorities.push_back(dns::ResourceRecord{
      *dns::Name::Parse("example.com"), dns::RRType::kNS, dns::RRClass::kIN,
      86400, dns::NsRdata{*dns::Name::Parse("ns1.example.com")}});
  msg.additionals.push_back(dns::ResourceRecord{
      *dns::Name::Parse("ns1.example.com"), dns::RRType::kA,
      dns::RRClass::kIN, 86400, dns::ARdata{IpAddress(192, 0, 2, 53)}});
  return msg;
}

void BM_MessageEncode(benchmark::State& state) {
  dns::Message msg = SampleResponse();
  for (auto _ : state) {
    Bytes wire = msg.Encode();
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  Bytes wire = SampleResponse().Encode();
  for (auto _ : state) {
    auto msg = dns::Message::Decode(wire);
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MessageDecode);

void BM_QueryEncode(benchmark::State& state) {
  auto query = dns::Message::MakeQuery(*dns::Name::Parse("www.example.com"),
                                       dns::RRType::kA, false);
  for (auto _ : state) {
    Bytes wire = query.Encode();
    benchmark::DoNotOptimize(wire);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEncode);

void BM_ZoneLookup(benchmark::State& state) {
  auto hierarchy = workload::BuildRootHierarchy(
      static_cast<size_t>(state.range(0)), /*sign=*/true,
      zone::DnssecConfig{});
  auto qname = *dns::Name::Parse("domain5.com");
  for (auto _ : state) {
    auto result = zone::Lookup(*hierarchy.root, qname, dns::RRType::kA);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZoneLookup)->Arg(100)->Arg(1000);

void BM_EngineWireToWire(benchmark::State& state) {
  auto hierarchy = workload::BuildRootHierarchy(100, /*sign=*/true,
                                                zone::DnssecConfig{});
  zone::ZoneSet zones;
  auto add_ok = zones.AddZone(hierarchy.root);
  benchmark::DoNotOptimize(add_ok);
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  server::AuthServerEngine engine(std::move(views));

  auto query = dns::Message::MakeQuery(*dns::Name::Parse("domain3.com"),
                                       dns::RRType::kA, false);
  query.edns = dns::Edns{.udp_payload_size = 4096, .do_bit = true};
  Bytes wire = query.Encode();
  for (auto _ : state) {
    auto response = engine.HandleWire(wire, IpAddress(10, 0, 0, 9), 65535);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineWireToWire);

void BM_EngineNxDomainDnssec(benchmark::State& state) {
  auto hierarchy = workload::BuildRootHierarchy(100, /*sign=*/true,
                                                zone::DnssecConfig{});
  zone::ZoneSet zones;
  auto add_ok = zones.AddZone(hierarchy.root);
  benchmark::DoNotOptimize(add_ok);
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  server::AuthServerEngine engine(std::move(views));

  auto query = dns::Message::MakeQuery(
      *dns::Name::Parse("no-such-tld-zzzz"), dns::RRType::kA, false);
  query.edns = dns::Edns{.udp_payload_size = 4096, .do_bit = true};
  Bytes wire = query.Encode();
  for (auto _ : state) {
    auto response = engine.HandleWire(wire, IpAddress(10, 0, 0, 9), 65535);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineNxDomainDnssec);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    constexpr int kEvents = 10000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      simulator.Schedule(i, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    simulator.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorEvents);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    auto name = dns::Name::Parse("www.subdomain.example.com");
    benchmark::DoNotOptimize(name);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NameParse);

}  // namespace

BENCHMARK_MAIN();
