// Helpers for the real-socket fidelity benches (Figs 6-9): a loopback
// authoritative server with a wildcard zone (answers every unique replayed
// name, paper §4.1) running on its own thread.
#ifndef LDPLAYER_BENCH_REALTIME_UTIL_H
#define LDPLAYER_BENCH_REALTIME_UTIL_H

#include <memory>
#include <thread>

#include "replay/realtime.h"
#include "server/socket_server.h"
#include "zone/masterfile.h"

namespace ldp::bench {

class LoopbackServer {
 public:
  static std::unique_ptr<LoopbackServer> Start() {
    auto zone = zone::ParseMasterFile(
        "$ORIGIN example.com.\n"
        "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
        "@ IN NS ns1\n"
        "ns1 IN A 192.0.2.53\n"
        "* IN A 192.0.2.200\n",
        zone::MasterFileOptions{});
    if (!zone.ok()) return nullptr;
    zone::ZoneSet zones;
    if (!zones.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok()) {
      return nullptr;
    }
    zone::ViewTable views;
    views.SetDefaultView(std::move(zones));
    auto engine =
        std::make_shared<server::AuthServerEngine>(std::move(views));

    auto loop = net::EventLoop::Create();
    if (!loop.ok()) return nullptr;
    server::SocketDnsServer::Config config;
    config.listen = Endpoint{IpAddress::Loopback(), 0};
    auto server = server::SocketDnsServer::Start(**loop, engine, config);
    if (!server.ok()) return nullptr;

    auto out = std::unique_ptr<LoopbackServer>(new LoopbackServer);
    out->loop_ = std::move(*loop);
    out->server_ = std::move(*server);
    out->engine_ = std::move(engine);
    out->thread_ = std::thread([raw = out.get()]() { raw->loop_->Run(); });
    return out;
  }

  ~LoopbackServer() {
    loop_->ScheduleAfter(0, [this]() { loop_->Stop(); });
    thread_.join();
  }

  Endpoint endpoint() const { return server_->endpoint(); }
  const server::AuthServerEngine& engine() const { return *engine_; }

  // Points a trace at this server.
  void Target(std::vector<trace::QueryRecord>& records) const {
    for (auto& r : records) {
      r.dst = endpoint().addr;
      r.dst_port = endpoint().port;
    }
  }

 private:
  LoopbackServer() = default;
  std::unique_ptr<net::EventLoop> loop_;
  std::unique_ptr<server::SocketDnsServer> server_;
  std::shared_ptr<server::AuthServerEngine> engine_;
  std::thread thread_;
};

}  // namespace ldp::bench

#endif  // LDPLAYER_BENCH_REALTIME_UTIL_H
