// Helpers for the real-socket fidelity benches (Figs 6-9): a loopback
// authoritative server with a wildcard zone (answers every unique replayed
// name, paper §4.1). Built on ShardedDnsServer so throughput benches can
// dial worker shards and the wire-level response cache; the fidelity
// benches (Figs 6-8) keep the 1-shard, no-cache default.
#ifndef LDPLAYER_BENCH_REALTIME_UTIL_H
#define LDPLAYER_BENCH_REALTIME_UTIL_H

#include <cstdio>
#include <memory>

#include "replay/realtime.h"
#include "server/sharded_server.h"
#include "zone/masterfile.h"

namespace ldp::bench {

struct LoopbackOptions {
  size_t n_shards = 1;
  size_t response_cache_entries = 0;  // per shard; 0 = off
  int udp_recv_buffer_bytes = 0;      // per shard; 0 = kernel default
  // Transport under the server shards: epoll kernel sockets (default) or
  // AF_PACKET rings (needs CAP_NET_RAW — probe with net::ProbeAfPacket).
  net::DatapathKind datapath = net::DatapathKind::kEpoll;
  net::AfPacketOptions afpacket;
  // Stream-lane knobs for the mass-connection benches (figs 13-15):
  // serve DoT (requires OpenSSL — probe net::TlsAvailable()), idle-close
  // timeout (0 = never), and the per-shard connection cap (0 = unbounded).
  bool serve_tls = false;
  NanoDuration tcp_idle_timeout = Seconds(20);
  size_t max_tcp_connections = 0;
  // Optional live-metrics registry for the server side (must outlive it).
  stats::MetricsRegistry* metrics = nullptr;
};

class LoopbackServer {
 public:
  static std::unique_ptr<LoopbackServer> Start(
      const LoopbackOptions& options = LoopbackOptions()) {
    auto zone = zone::ParseMasterFile(
        "$ORIGIN example.com.\n"
        "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
        "@ IN NS ns1\n"
        "ns1 IN A 192.0.2.53\n"
        "* IN A 192.0.2.200\n",
        zone::MasterFileOptions{});
    if (!zone.ok()) return nullptr;
    zone::ZoneSet zones;
    if (!zones.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok()) {
      return nullptr;
    }
    zone::ViewTable views;
    views.SetDefaultView(std::move(zones));

    server::ShardedDnsServer::Config config;
    config.listen = Endpoint{IpAddress::Loopback(), 0};
    config.n_shards = options.n_shards;
    config.engine.response_cache_entries = options.response_cache_entries;
    config.udp_recv_buffer_bytes = options.udp_recv_buffer_bytes;
    config.datapath = options.datapath;
    config.afpacket = options.afpacket;
    config.serve_tls = options.serve_tls;
    config.tcp_idle_timeout = options.tcp_idle_timeout;
    config.max_tcp_connections = options.max_tcp_connections;
    config.metrics = options.metrics;
    auto server = server::ShardedDnsServer::Start(
        std::make_shared<const zone::ViewTable>(std::move(views)), config);
    if (!server.ok()) {
      std::fprintf(stderr, "LoopbackServer: %s\n",
                   server.error().ToString().c_str());
      return nullptr;
    }

    auto out = std::unique_ptr<LoopbackServer>(new LoopbackServer);
    out->server_ = std::move(*server);
    return out;
  }

  Endpoint endpoint() const { return server_->endpoint(); }
  Endpoint tls_endpoint() const { return server_->tls_endpoint(); }
  size_t n_shards() const { return server_->n_shards(); }
  server::EngineStats stats() const { return server_->TotalStats(); }
  server::TcpStats tcp_stats() const { return server_->TotalTcpStats(); }
  std::vector<server::TcpStats> shard_tcp_stats() const {
    return server_->ShardTcpStats();
  }

  // Points a trace at this server.
  void Target(std::vector<trace::QueryRecord>& records) const {
    for (auto& r : records) {
      r.dst = endpoint().addr;
      r.dst_port = endpoint().port;
    }
  }

 private:
  LoopbackServer() = default;
  std::unique_ptr<server::ShardedDnsServer> server_;
};

}  // namespace ldp::bench

#endif  // LDPLAYER_BENCH_REALTIME_UTIL_H
