// Scenario pack (paper §1/§5 application list): the attack and anycast
// what-ifs LDplayer is pitched for, run end-to-end over real sockets —
// replay → hierarchy proxy → sharded meta server on loopback — with the
// legitimate traffic's experience and the attack's cost both measured.
//
// Five phases, one BENCH_scenarios.json:
//   baseline    legit trace only; the answered-rate/latency yardstick
//   nxdomain    random-subdomain flood; response-cache hit rate collapses
//   amp         DNSSEC ANY/DNSKEY flood; amplification factor (bytes
//               out/in) from the same engine code path the server runs
//   spoofed     socket-rotating spoofed-source flood at a small-flow-table
//               proxy; flow churn + evicted_drops while legit rides along
//   anycast     three-site catchment map with skewed client groups and
//               per-site reply-path RTT; load shares + RTT-shifted latency
//
// The scenario cookbook in EXPERIMENTS.md reproduces each phase with the
// standalone tools (ldp_mutate_trace --attack, ldp_proxy --sites).
#include <chrono>
#include <thread>

#include "bench/bench_util.h"
#include "mutate/attack.h"
#include "mutate/mutate.h"
#include "proxy/relay.h"
#include "replay/realtime.h"
#include "scenario/scenario.h"
#include "server/sharded_server.h"
#include "trace/record.h"

using namespace ldp;

namespace {

constexpr int64_t kLegitQps = 4000;
constexpr double kDurationS = 2.0;

// Engine-stat delta between two cumulative snapshots (the fields the
// scenarios read; EngineStats has += but no -).
struct EngineDelta {
  uint64_t queries = 0;
  uint64_t nxdomain = 0;
  uint64_t response_bytes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  double hit_rate() const {
    uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

EngineDelta Delta(const server::EngineStats& before,
                  const server::EngineStats& after) {
  EngineDelta d;
  d.queries = after.queries - before.queries;
  d.nxdomain = after.nxdomain - before.nxdomain;
  d.response_bytes = after.response_bytes - before.response_bytes;
  d.cache_hits = after.cache_hits - before.cache_hits;
  d.cache_misses = after.cache_misses - before.cache_misses;
  d.cache_evictions = after.cache_evictions - before.cache_evictions;
  return d;
}

// Legitimate stream: leaf A lookups against the public NS addresses (the
// OQDAs), every 7th a delegation NS query — same shape as the hierarchy
// ablation — restamped evenly at kLegitQps.
std::vector<trace::QueryRecord> MakeLegitTrace(
    const workload::Hierarchy& hierarchy, size_t n_queries) {
  std::vector<trace::QueryRecord> records;
  records.reserve(n_queries);
  const NanoDuration step = kNanosPerSecond / kLegitQps;
  for (size_t i = 0; i < n_queries; ++i) {
    trace::QueryRecord record;
    record.src = IpAddress(10, 0, 0, static_cast<uint8_t>(1 + i % 200));
    record.src_port = static_cast<uint16_t>(40000 + i % 20000);
    record.qname = hierarchy.hostnames[i % hierarchy.hostnames.size()];
    auto owner = record.qname.Parent();
    if (!owner.ok()) continue;
    dns::Name target_zone = *owner;
    if (i % 7 == 3) {
      record.qname = target_zone;
      record.qtype = dns::RRType::kNS;
      if (auto parent = target_zone.Parent(); parent.ok()) {
        target_zone = *parent;
      }
    }
    auto ns = hierarchy.nameservers.find(target_zone);
    if (ns == hierarchy.nameservers.end() || ns->second.empty()) continue;
    record.dst = ns->second[i % ns->second.size()];
    record.dst_port = 53;
    record.timestamp = static_cast<NanoTime>(records.size()) * step;
    records.push_back(std::move(record));
  }
  return records;
}

struct Phase {
  scenario::SplitReport split;
  EngineDelta engine;
  replay::RealtimeReport report;
};

// Replays `records` (legit + optional overlay) through the proxy and
// carves the report into classes with `mask`.
std::optional<Phase> RunPhase(std::vector<trace::QueryRecord> records,
                              const std::vector<bool>& mask,
                              const replay::RealtimeConfig& config,
                              const server::ShardedDnsServer& meta) {
  server::EngineStats before = meta.TotalStats();
  auto report = replay::RunRealtimeReplay(records, config);
  if (!report.ok()) {
    std::fprintf(stderr, "replay: %s\n", report.error().ToString().c_str());
    return std::nullopt;
  }
  Phase phase;
  phase.split = scenario::SplitOutcomes(*report, mask);
  phase.engine = Delta(before, meta.TotalStats());
  phase.report = std::move(*report);
  return phase;
}

mutate::AttackConfig BaseAttack(mutate::AttackKind kind,
                                const workload::Hierarchy& hierarchy,
                                double rate_qps) {
  mutate::AttackConfig config;
  config.kind = kind;
  config.rate_qps = rate_qps;
  config.duration = SecondsF(kDurationS);
  config.start = 0;
  // Aim at the root: the signed zone, so NXDOMAINs carry NSEC proofs and
  // ANY/DNSKEY answers carry RRSIGs — the worst (realistic) case.
  config.server = hierarchy.nameservers.at(dns::Name::Root()).front();
  config.seed = 0xa77ac;
  return config;
}

void AddClassRow(stats::Table& table, const std::string& phase,
                 const std::string& klass,
                 const scenario::TrafficClassReport& r) {
  table.AddRow({phase, klass, std::to_string(r.sent),
                FormatDouble(100 * r.answered_rate(), 1) + "%",
                std::to_string(r.timed_out + r.send_failed),
                FormatDouble(r.latency_p50_ms, 2),
                FormatDouble(r.latency_p99_ms, 2)});
}

}  // namespace

int main() {
  bench::PrintHeader("Scenario pack: attack floods + anycast catchment",
                     "replay → proxy → meta server over loopback sockets",
                     "proposed applications (SS1/5) — capability "
                     "demonstration, no paper number to match");

  // --- Shared testbed -------------------------------------------------------
  workload::HierarchyConfig hconfig;
  hconfig.n_tlds = 3;
  hconfig.n_slds_per_tld = 4;
  hconfig.n_hosts_per_sld = 2;
  hconfig.sign_root = true;  // amplification needs a signed victim zone
  auto hierarchy = workload::BuildHierarchy(hconfig);

  zone::ViewTable views;
  zone::ZoneSet all_zones;
  for (const auto& zone : hierarchy.AllZones()) {
    zone::ZoneSet set;
    auto add_ok = set.AddZone(zone);
    (void)add_ok;
    auto all_ok = all_zones.AddZone(zone);
    (void)all_ok;
    std::vector<IpAddress> sources;
    for (IpAddress addr : hierarchy.nameservers.at(zone->origin())) {
      sources.push_back(LoopbackAlias(addr));
    }
    auto view_ok =
        views.AddView(zone->origin().ToString(), sources, std::move(set));
    (void)view_ok;
  }
  views.SetDefaultView(std::move(all_zones));
  auto shared_views = std::make_shared<const zone::ViewTable>(std::move(views));

  server::ShardedDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};
  sconfig.n_shards = 2;
  sconfig.serve_tcp = false;
  sconfig.udp_recv_buffer_bytes = 1 << 22;
  sconfig.engine.response_cache_entries = 4096;
  auto meta = server::ShardedDnsServer::Start(shared_views, sconfig);
  if (!meta.ok()) {
    std::fprintf(stderr, "meta server: %s\n", meta.error().ToString().c_str());
    return 1;
  }

  proxy::RelayConfig pconfig;
  for (const auto& [address, origin] : hierarchy.address_to_zone) {
    pconfig.addresses.push_back(LoopbackAlias(address));
  }
  pconfig.meta_server = (*meta)->endpoint();
  pconfig.n_shards = 1;
  pconfig.udp_recv_buffer_bytes = 1 << 22;
  pconfig.flow_capacity = 1 << 16;
  pconfig.splice_tcp = false;
  auto relay = proxy::HierarchyProxy::Start(pconfig);
  if (!relay.ok()) {
    std::fprintf(stderr, "relay: %s\n", relay.error().ToString().c_str());
    return 1;
  }

  const auto legit =
      MakeLegitTrace(hierarchy, static_cast<size_t>(kLegitQps * kDurationS));

  replay::RealtimeConfig rconfig;
  rconfig.server = (*meta)->endpoint();
  rconfig.n_distributors = 1;
  rconfig.queriers_per_distributor = 1;
  rconfig.query_timeout = Millis(300);
  rconfig.max_retransmits = 2;
  rconfig.follow_trace_dst = true;
  rconfig.dst_port_override = (*relay)->port();
  rconfig.loopback_alias_dst = true;

  bench::BenchJson json;
  stats::Table table({"phase", "class", "sent", "answered", "lost",
                      "p50 ms", "p99 ms"});

  // --- Phase 1: no-attack baseline ------------------------------------------
  auto baseline =
      RunPhase(legit, std::vector<bool>(legit.size(), false), rconfig, **meta);
  if (!baseline) return 1;
  AddClassRow(table, "baseline", "legit", baseline->split.legit);
  json.Set("baseline_sent", baseline->split.legit.sent);
  json.Set("baseline_answered_rate", baseline->split.legit.answered_rate());
  json.Set("baseline_p50_ms", baseline->split.legit.latency_p50_ms);
  json.Set("baseline_p99_ms", baseline->split.legit.latency_p99_ms);
  json.Set("baseline_cache_hit_rate", baseline->engine.hit_rate());

  // --- Phase 2: random-subdomain NXDOMAIN flood -----------------------------
  {
    auto records = legit;
    auto attack = mutate::MakeAttackTrace(
        BaseAttack(mutate::AttackKind::kNxdomainFlood, hierarchy, 8000));
    auto mask = mutate::OverlayAttack(records, std::move(attack));
    auto phase = RunPhase(std::move(records), mask, rconfig, **meta);
    if (!phase) return 1;
    AddClassRow(table, "nxdomain", "legit", phase->split.legit);
    AddClassRow(table, "nxdomain", "attack", phase->split.attack);
    json.Set("nxdomain_attack_qps", 8000.0);
    json.Set("nxdomain_legit_answered_rate",
             phase->split.legit.answered_rate());
    json.Set("nxdomain_legit_p50_ms", phase->split.legit.latency_p50_ms);
    json.Set("nxdomain_legit_p99_ms", phase->split.legit.latency_p99_ms);
    json.Set("nxdomain_cache_hit_rate", phase->engine.hit_rate());
    json.Set("nxdomain_cache_evictions", phase->engine.cache_evictions);
    json.Set("nxdomain_served", phase->engine.nxdomain);
    std::printf("nxdomain flood: cache hit rate %.1f%% -> %.1f%% "
                "(%llu evictions, %llu NXDOMAINs served)\n",
                100 * baseline->engine.hit_rate(),
                100 * phase->engine.hit_rate(),
                static_cast<unsigned long long>(phase->engine.cache_evictions),
                static_cast<unsigned long long>(phase->engine.nxdomain));
  }

  // --- Phase 3: DNSSEC amplification flood ----------------------------------
  {
    auto records = legit;
    auto attack = mutate::MakeAttackTrace(
        BaseAttack(mutate::AttackKind::kAmplification, hierarchy, 4000));
    // Offline factor: same queries, same engine code path, byte-exact.
    server::AuthServerEngine offline(shared_views);
    auto amp = scenario::ComputeAmplification(offline, attack);
    auto mask = mutate::OverlayAttack(records, std::move(attack));
    auto phase = RunPhase(std::move(records), mask, rconfig, **meta);
    if (!phase) return 1;
    AddClassRow(table, "amp", "legit", phase->split.legit);
    AddClassRow(table, "amp", "attack", phase->split.attack);
    json.Set("amp_attack_qps", 4000.0);
    json.Set("amp_factor", amp.factor());
    json.Set("amp_query_bytes", amp.query_bytes);
    json.Set("amp_response_bytes", amp.response_bytes);
    json.Set("amp_live_response_bytes", phase->engine.response_bytes);
    json.Set("amp_legit_answered_rate", phase->split.legit.answered_rate());
    json.Set("amp_legit_p99_ms", phase->split.legit.latency_p99_ms);
    std::printf("amplification: ANY/DNSKEY+DO vs signed root -> %.1fx "
                "(%llu query bytes -> %llu response bytes offline; "
                "%llu live response bytes this phase)\n",
                amp.factor(),
                static_cast<unsigned long long>(amp.query_bytes),
                static_cast<unsigned long long>(amp.response_bytes),
                static_cast<unsigned long long>(phase->engine.response_bytes));
  }

  // --- Phase 4: spoofed-source flood vs a small flow table ------------------
  // A separate proxy with a deliberately tiny flow table: the socket-
  // rotating flood mints fresh client endpoints far faster than flows
  // idle out, so the LRU churns and late replies die as evicted_drops.
  {
    proxy::RelayConfig small = pconfig;
    small.flow_capacity = 512;
    auto small_relay = proxy::HierarchyProxy::Start(small);
    if (!small_relay.ok()) {
      std::fprintf(stderr, "small relay: %s\n",
                   small_relay.error().ToString().c_str());
      return 1;
    }
    scenario::SpoofedFloodConfig flood;
    flood.target = Endpoint{
        LoopbackAlias(hierarchy.nameservers.at(dns::Name::Root()).front()),
        (*small_relay)->port()};
    flood.query_wire =
        dns::Message::MakeQuery(dns::Name::Root(), dns::RRType::kNS, false)
            .Encode();
    flood.rate_qps = 20000;
    flood.duration = SecondsF(kDurationS);
    flood.n_sockets = 64;
    flood.rotate_after_sends = 2;

    Result<scenario::SpoofedFloodReport> flood_report =
        Error(ErrorCode::kInternal, "flood never ran");
    std::thread flooder([&] { flood_report = scenario::RunSpoofedFlood(flood); });
    replay::RealtimeConfig small_config = rconfig;
    small_config.dst_port_override = (*small_relay)->port();
    auto phase = RunPhase(legit, std::vector<bool>(legit.size(), false),
                          small_config, **meta);
    flooder.join();
    if (!phase) return 1;
    if (!flood_report.ok()) {
      std::fprintf(stderr, "spoofed flood: %s\n",
                   flood_report.error().ToString().c_str());
      return 1;
    }
    proxy::RelayStats churn = (*small_relay)->TotalStats();
    (*small_relay)->Stop();
    AddClassRow(table, "spoofed", "legit", phase->split.legit);
    json.Set("spoofed_flood_qps", flood.rate_qps);
    json.Set("spoofed_sent", flood_report->sent);
    json.Set("spoofed_client_endpoints", flood_report->sockets_opened);
    json.Set("spoofed_flood_replies", flood_report->replies);
    json.Set("spoofed_flow_capacity", static_cast<uint64_t>(small.flow_capacity));
    json.Set("spoofed_flows_created", churn.flows_created);
    json.Set("spoofed_flows_evicted", churn.flows_evicted);
    json.Set("spoofed_evicted_drops", churn.evicted_drops);
    json.Set("spoofed_legit_answered_rate", phase->split.legit.answered_rate());
    json.Set("spoofed_legit_p99_ms", phase->split.legit.latency_p99_ms);
    std::printf("spoofed flood: %llu queries from %llu rotating endpoints vs "
                "a %zu-flow table -> %llu flows created, %llu evicted, "
                "%llu replies dropped on evicted flows\n",
                static_cast<unsigned long long>(flood_report->sent),
                static_cast<unsigned long long>(flood_report->sockets_opened),
                small.flow_capacity,
                static_cast<unsigned long long>(churn.flows_created),
                static_cast<unsigned long long>(churn.flows_evicted),
                static_cast<unsigned long long>(churn.evicted_drops));
  }
  (*relay)->Stop();

  // --- Phase 5: anycast catchment skew --------------------------------------
  // Three virtual sites behind one meta server; client groups bind
  // distinct 127/8 source addresses, the catchment map routes each group
  // to a site, and each site injects its own reply-path RTT.
  {
    proxy::RelayConfig aconfig = pconfig;
    aconfig.sites = {{"lax", 0}, {"mia", Millis(15)}, {"nrt", Millis(40)}};
    proxy::CatchmentMap catchment;
    struct Group {
      IpAddress client;
      int site;
      double offered_share;
    };
    const Group kGroups[] = {
        {IpAddress(127, 201, 0, 9), 0, 0.6},
        {IpAddress(127, 202, 0, 9), 1, 0.3},
        {IpAddress(127, 203, 0, 9), 2, 0.1},
    };
    for (const auto& group : kGroups) {
      auto route_ok = catchment.AddRoute(group.client, 16,
                                         static_cast<size_t>(group.site));
      if (!route_ok.ok()) {
        std::fprintf(stderr, "catchment: %s\n",
                     route_ok.error().ToString().c_str());
        return 1;
      }
    }
    catchment.SetDefaultSite(0);
    aconfig.catchment = std::move(catchment);
    auto anycast = proxy::HierarchyProxy::Start(aconfig);
    if (!anycast.ok()) {
      std::fprintf(stderr, "anycast relay: %s\n",
                   anycast.error().ToString().c_str());
      return 1;
    }

    replay::RealtimeConfig group_config = rconfig;
    group_config.dst_port_override = (*anycast)->port();
    std::vector<double> group_p50;
    for (const auto& group : kGroups) {
      size_t count = static_cast<size_t>(
          group.offered_share * static_cast<double>(legit.size()));
      std::vector<trace::QueryRecord> slice(legit.begin(),
                                            legit.begin() + count);
      const NanoDuration step = kNanosPerSecond / kLegitQps;
      for (size_t i = 0; i < slice.size(); ++i) {
        slice[i].timestamp = static_cast<NanoTime>(i) * step;
      }
      group_config.local_addr = group.client;
      auto phase = RunPhase(std::move(slice),
                            std::vector<bool>(count, false), group_config,
                            **meta);
      if (!phase) return 1;
      std::string label = "anycast/" + aconfig.sites[group.site].name;
      AddClassRow(table, label, "legit", phase->split.legit);
      group_p50.push_back(phase->split.legit.latency_p50_ms);
      json.Set(label + "_answered_rate", phase->split.legit.answered_rate());
      json.Set(label + "_p50_ms", phase->split.legit.latency_p50_ms);
    }
    proxy::RelayStats stats = (*anycast)->TotalStats();
    (*anycast)->Stop();
    uint64_t total = 0;
    for (const auto& site : stats.sites) total += site.queries_in;
    double max_share = 0, min_share = 1;
    for (size_t i = 0; i < stats.sites.size(); ++i) {
      double share = total == 0 ? 0.0
                                : static_cast<double>(
                                      stats.sites[i].queries_in) /
                                      static_cast<double>(total);
      max_share = std::max(max_share, share);
      min_share = std::min(min_share, share);
      json.Set("anycast_" + stats.sites[i].name + "_share", share);
      std::printf("site %-4s caught %5.1f%% of queries (offered %5.1f%%), "
                  "injected rtt %.0f ms, group p50 %.2f ms\n",
                  stats.sites[i].name.c_str(), 100 * share,
                  100 * kGroups[i].offered_share,
                  ToMillis(aconfig.sites[i].rtt),
                  i < group_p50.size() ? group_p50[i] : 0.0);
    }
    json.Set("anycast_catchment_skew",
             min_share > 0 ? max_share / min_share : 0.0);
  }
  (*meta)->Stop();

  std::printf("%s\n", table.Render().c_str());
  std::printf("the flood phases degrade the cache and the flow table, not "
              "the legit answered rate at these bounded rates; the anycast "
              "phase shows catchment shares tracking the offered split and "
              "p50 latency tracking each site's injected RTT.\n");
  json.WriteTo("BENCH_scenarios.json");
  return 0;
}
