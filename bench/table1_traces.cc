// Table 1: the trace inventory — start/duration, inter-arrival mean and
// standard deviation, client IP count, and record count for each trace used
// in the evaluation.
//
// The real traces (B-Root DITL 2016/2017, Rec-17) are proprietary; this
// harness prints the same columns for the calibrated synthetic models
// (DESIGN.md substitution table) at 1/10 scale plus the five synthetic
// fixed-interval traces, which are generated exactly as described.
#include "bench/bench_util.h"
#include "trace/tracestats.h"

using namespace ldp;

namespace {

void AddRow(stats::Table& table, const std::string& name,
            const std::vector<trace::QueryRecord>& records,
            const std::string& note) {
  auto stats = trace::ComputeTraceStats(records);
  table.AddRow({name,
                FormatDouble(ToSeconds(stats.duration) / 60.0, 1) + " min",
                FormatDouble(stats.interarrival_mean_s, 6),
                FormatDouble(stats.interarrival_stddev_s, 6),
                std::to_string(stats.unique_clients),
                std::to_string(stats.records),
                FormatDouble(stats.mean_rate_qps, 0) + " q/s", note});
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 1", "DNS traces used in experiments and evaluation",
      "B-Root-16: ia 27us/1.07M clients/137M records; Rec-17: ia 0.18s/91 "
      "clients/20k records; syn-0..4: fixed 1s..0.1ms inter-arrival");

  stats::Table table({"trace", "duration", "ia mean (s)", "ia sd (s)",
                      "client IPs", "records", "mean rate", "model note"});

  // B-Root models at 1/10 rate over 60 s (paper: 60 min @ 38k q/s).
  {
    auto config = bench::ScaledBRootConfig(Seconds(60), /*seed=*/2016);
    AddRow(table, "B-Root-16*", workload::MakeBRootTrace(config),
           "1/10-rate model of 2016-04-06");
  }
  {
    auto config = bench::ScaledBRootConfig(Seconds(60), /*seed=*/2017);
    AddRow(table, "B-Root-17a*", workload::MakeBRootTrace(config),
           "1/10-rate model of 2017-04-11");
  }
  {
    auto config = bench::ScaledBRootConfig(Seconds(20), /*seed=*/2017);
    AddRow(table, "B-Root-17b*", workload::MakeBRootTrace(config),
           "20s subset of 17a");
  }

  // Rec-17: full scale (it is small).
  {
    workload::HierarchyConfig hconfig;
    hconfig.n_tlds = 20;
    hconfig.n_slds_per_tld = 27;  // 549 zones + root, like the paper's count
    auto hierarchy = workload::BuildHierarchy(hconfig);
    workload::RecConfig config;  // 91 clients, 20k records, ia 0.18 s
    AddRow(table, "Rec-17*", workload::MakeRecursiveTrace(config, hierarchy),
           "department recursive, " +
               std::to_string(hierarchy.AllZones().size()) + " zones");
  }

  // Synthetic syn-0..4, exactly as in the paper but 60 s long (the paper
  // uses 60 min; inter-arrival statistics are identical).
  struct Syn {
    const char* name;
    NanoDuration interarrival;
    size_t clients;
  };
  for (const Syn& syn : {Syn{"syn-0", Seconds(1), 3000},
                         Syn{"syn-1", Millis(100), 9700},
                         Syn{"syn-2", Millis(10), 10000},
                         Syn{"syn-3", Millis(1), 10000},
                         Syn{"syn-4", Micros(100), 10000}}) {
    workload::FixedIntervalConfig config;
    config.interarrival = syn.interarrival;
    config.duration = Seconds(60);
    config.n_clients = syn.clients;
    AddRow(table, syn.name, workload::MakeFixedIntervalTrace(config),
           "fixed inter-arrival, unique names");
  }

  std::printf("%s\n(* = synthetic model calibrated to the paper's Table 1;"
              " rates at 1/10 scale)\n",
              table.Render().c_str());
  return 0;
}
