file(REMOVE_RECURSE
  "CMakeFiles/ablate_hierarchy.dir/ablate_hierarchy.cc.o"
  "CMakeFiles/ablate_hierarchy.dir/ablate_hierarchy.cc.o.d"
  "ablate_hierarchy"
  "ablate_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
