file(REMOVE_RECURSE
  "CMakeFiles/ablate_input_format.dir/ablate_input_format.cc.o"
  "CMakeFiles/ablate_input_format.dir/ablate_input_format.cc.o.d"
  "ablate_input_format"
  "ablate_input_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_input_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
