# Empty dependencies file for ablate_input_format.
# This may be replaced when dependencies are built.
