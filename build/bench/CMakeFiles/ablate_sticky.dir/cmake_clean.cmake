file(REMOVE_RECURSE
  "CMakeFiles/ablate_sticky.dir/ablate_sticky.cc.o"
  "CMakeFiles/ablate_sticky.dir/ablate_sticky.cc.o.d"
  "ablate_sticky"
  "ablate_sticky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sticky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
