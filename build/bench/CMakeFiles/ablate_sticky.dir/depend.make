# Empty dependencies file for ablate_sticky.
# This may be replaced when dependencies are built.
