file(REMOVE_RECURSE
  "CMakeFiles/ext_dos_attack.dir/ext_dos_attack.cc.o"
  "CMakeFiles/ext_dos_attack.dir/ext_dos_attack.cc.o.d"
  "ext_dos_attack"
  "ext_dos_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dos_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
