# Empty dependencies file for ext_dos_attack.
# This may be replaced when dependencies are built.
