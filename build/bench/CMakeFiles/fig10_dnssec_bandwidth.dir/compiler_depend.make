# Empty compiler generated dependencies file for fig10_dnssec_bandwidth.
# This may be replaced when dependencies are built.
