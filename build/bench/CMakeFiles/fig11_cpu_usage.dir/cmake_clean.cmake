file(REMOVE_RECURSE
  "CMakeFiles/fig11_cpu_usage.dir/fig11_cpu_usage.cc.o"
  "CMakeFiles/fig11_cpu_usage.dir/fig11_cpu_usage.cc.o.d"
  "fig11_cpu_usage"
  "fig11_cpu_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cpu_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
