# Empty dependencies file for fig11_cpu_usage.
# This may be replaced when dependencies are built.
