file(REMOVE_RECURSE
  "CMakeFiles/fig13_tcp_resources.dir/fig13_tcp_resources.cc.o"
  "CMakeFiles/fig13_tcp_resources.dir/fig13_tcp_resources.cc.o.d"
  "fig13_tcp_resources"
  "fig13_tcp_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tcp_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
