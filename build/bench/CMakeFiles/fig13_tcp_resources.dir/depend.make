# Empty dependencies file for fig13_tcp_resources.
# This may be replaced when dependencies are built.
