file(REMOVE_RECURSE
  "CMakeFiles/fig14_tls_resources.dir/fig14_tls_resources.cc.o"
  "CMakeFiles/fig14_tls_resources.dir/fig14_tls_resources.cc.o.d"
  "fig14_tls_resources"
  "fig14_tls_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tls_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
