# Empty dependencies file for fig14_tls_resources.
# This may be replaced when dependencies are built.
