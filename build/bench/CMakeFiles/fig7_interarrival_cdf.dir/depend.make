# Empty dependencies file for fig7_interarrival_cdf.
# This may be replaced when dependencies are built.
