file(REMOVE_RECURSE
  "CMakeFiles/fig8_rate_error.dir/fig8_rate_error.cc.o"
  "CMakeFiles/fig8_rate_error.dir/fig8_rate_error.cc.o.d"
  "fig8_rate_error"
  "fig8_rate_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rate_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
