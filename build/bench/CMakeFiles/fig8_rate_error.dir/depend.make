# Empty dependencies file for fig8_rate_error.
# This may be replaced when dependencies are built.
