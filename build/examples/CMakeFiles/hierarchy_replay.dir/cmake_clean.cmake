file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_replay.dir/hierarchy_replay.cpp.o"
  "CMakeFiles/hierarchy_replay.dir/hierarchy_replay.cpp.o.d"
  "hierarchy_replay"
  "hierarchy_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
