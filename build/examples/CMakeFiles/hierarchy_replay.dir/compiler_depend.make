# Empty compiler generated dependencies file for hierarchy_replay.
# This may be replaced when dependencies are built.
