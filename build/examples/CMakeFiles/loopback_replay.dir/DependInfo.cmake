
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/loopback_replay.cpp" "examples/CMakeFiles/loopback_replay.dir/loopback_replay.cpp.o" "gcc" "examples/CMakeFiles/loopback_replay.dir/loopback_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replay/CMakeFiles/ldp_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ldp_server.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ldp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ldp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ldp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ldp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ldp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/ldp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/ldp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
