file(REMOVE_RECURSE
  "CMakeFiles/loopback_replay.dir/loopback_replay.cpp.o"
  "CMakeFiles/loopback_replay.dir/loopback_replay.cpp.o.d"
  "loopback_replay"
  "loopback_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loopback_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
