# Empty dependencies file for loopback_replay.
# This may be replaced when dependencies are built.
