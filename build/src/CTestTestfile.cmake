# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dns")
subdirs("stats")
subdirs("zone")
subdirs("trace")
subdirs("mutate")
subdirs("workload")
subdirs("sim")
subdirs("net")
subdirs("server")
subdirs("resolver")
subdirs("proxy")
subdirs("zoneconstruct")
subdirs("replay")
