file(REMOVE_RECURSE
  "CMakeFiles/ldp_common.dir/base64.cc.o"
  "CMakeFiles/ldp_common.dir/base64.cc.o.d"
  "CMakeFiles/ldp_common.dir/bytes.cc.o"
  "CMakeFiles/ldp_common.dir/bytes.cc.o.d"
  "CMakeFiles/ldp_common.dir/clock.cc.o"
  "CMakeFiles/ldp_common.dir/clock.cc.o.d"
  "CMakeFiles/ldp_common.dir/flags.cc.o"
  "CMakeFiles/ldp_common.dir/flags.cc.o.d"
  "CMakeFiles/ldp_common.dir/ip.cc.o"
  "CMakeFiles/ldp_common.dir/ip.cc.o.d"
  "CMakeFiles/ldp_common.dir/log.cc.o"
  "CMakeFiles/ldp_common.dir/log.cc.o.d"
  "CMakeFiles/ldp_common.dir/result.cc.o"
  "CMakeFiles/ldp_common.dir/result.cc.o.d"
  "CMakeFiles/ldp_common.dir/strings.cc.o"
  "CMakeFiles/ldp_common.dir/strings.cc.o.d"
  "libldp_common.a"
  "libldp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
