
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/framing.cc" "src/dns/CMakeFiles/ldp_dns.dir/framing.cc.o" "gcc" "src/dns/CMakeFiles/ldp_dns.dir/framing.cc.o.d"
  "/root/repo/src/dns/message.cc" "src/dns/CMakeFiles/ldp_dns.dir/message.cc.o" "gcc" "src/dns/CMakeFiles/ldp_dns.dir/message.cc.o.d"
  "/root/repo/src/dns/name.cc" "src/dns/CMakeFiles/ldp_dns.dir/name.cc.o" "gcc" "src/dns/CMakeFiles/ldp_dns.dir/name.cc.o.d"
  "/root/repo/src/dns/rdata.cc" "src/dns/CMakeFiles/ldp_dns.dir/rdata.cc.o" "gcc" "src/dns/CMakeFiles/ldp_dns.dir/rdata.cc.o.d"
  "/root/repo/src/dns/rr.cc" "src/dns/CMakeFiles/ldp_dns.dir/rr.cc.o" "gcc" "src/dns/CMakeFiles/ldp_dns.dir/rr.cc.o.d"
  "/root/repo/src/dns/types.cc" "src/dns/CMakeFiles/ldp_dns.dir/types.cc.o" "gcc" "src/dns/CMakeFiles/ldp_dns.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
