file(REMOVE_RECURSE
  "CMakeFiles/ldp_dns.dir/framing.cc.o"
  "CMakeFiles/ldp_dns.dir/framing.cc.o.d"
  "CMakeFiles/ldp_dns.dir/message.cc.o"
  "CMakeFiles/ldp_dns.dir/message.cc.o.d"
  "CMakeFiles/ldp_dns.dir/name.cc.o"
  "CMakeFiles/ldp_dns.dir/name.cc.o.d"
  "CMakeFiles/ldp_dns.dir/rdata.cc.o"
  "CMakeFiles/ldp_dns.dir/rdata.cc.o.d"
  "CMakeFiles/ldp_dns.dir/rr.cc.o"
  "CMakeFiles/ldp_dns.dir/rr.cc.o.d"
  "CMakeFiles/ldp_dns.dir/types.cc.o"
  "CMakeFiles/ldp_dns.dir/types.cc.o.d"
  "libldp_dns.a"
  "libldp_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
