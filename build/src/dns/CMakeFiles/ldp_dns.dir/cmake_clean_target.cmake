file(REMOVE_RECURSE
  "libldp_dns.a"
)
