# Empty compiler generated dependencies file for ldp_dns.
# This may be replaced when dependencies are built.
