# Empty dependencies file for ldp_mutate.
# This may be replaced when dependencies are built.
