file(REMOVE_RECURSE
  "CMakeFiles/ldp_net.dir/event_loop.cc.o"
  "CMakeFiles/ldp_net.dir/event_loop.cc.o.d"
  "CMakeFiles/ldp_net.dir/sockets.cc.o"
  "CMakeFiles/ldp_net.dir/sockets.cc.o.d"
  "libldp_net.a"
  "libldp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
