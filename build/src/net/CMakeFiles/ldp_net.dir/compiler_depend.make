# Empty compiler generated dependencies file for ldp_net.
# This may be replaced when dependencies are built.
