file(REMOVE_RECURSE
  "CMakeFiles/ldp_proxy.dir/proxy.cc.o"
  "CMakeFiles/ldp_proxy.dir/proxy.cc.o.d"
  "libldp_proxy.a"
  "libldp_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
