file(REMOVE_RECURSE
  "libldp_proxy.a"
)
