file(REMOVE_RECURSE
  "CMakeFiles/ldp_replay.dir/realtime.cc.o"
  "CMakeFiles/ldp_replay.dir/realtime.cc.o.d"
  "CMakeFiles/ldp_replay.dir/sim_engine.cc.o"
  "CMakeFiles/ldp_replay.dir/sim_engine.cc.o.d"
  "libldp_replay.a"
  "libldp_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
