file(REMOVE_RECURSE
  "libldp_replay.a"
)
