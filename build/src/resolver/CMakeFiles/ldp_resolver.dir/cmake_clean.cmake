file(REMOVE_RECURSE
  "CMakeFiles/ldp_resolver.dir/cache.cc.o"
  "CMakeFiles/ldp_resolver.dir/cache.cc.o.d"
  "CMakeFiles/ldp_resolver.dir/resolver.cc.o"
  "CMakeFiles/ldp_resolver.dir/resolver.cc.o.d"
  "libldp_resolver.a"
  "libldp_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
