file(REMOVE_RECURSE
  "libldp_resolver.a"
)
