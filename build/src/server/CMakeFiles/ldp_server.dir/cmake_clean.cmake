file(REMOVE_RECURSE
  "CMakeFiles/ldp_server.dir/engine.cc.o"
  "CMakeFiles/ldp_server.dir/engine.cc.o.d"
  "CMakeFiles/ldp_server.dir/sim_server.cc.o"
  "CMakeFiles/ldp_server.dir/sim_server.cc.o.d"
  "CMakeFiles/ldp_server.dir/socket_server.cc.o"
  "CMakeFiles/ldp_server.dir/socket_server.cc.o.d"
  "libldp_server.a"
  "libldp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
