# Empty dependencies file for ldp_server.
# This may be replaced when dependencies are built.
