file(REMOVE_RECURSE
  "CMakeFiles/ldp_sim.dir/meters.cc.o"
  "CMakeFiles/ldp_sim.dir/meters.cc.o.d"
  "CMakeFiles/ldp_sim.dir/network.cc.o"
  "CMakeFiles/ldp_sim.dir/network.cc.o.d"
  "CMakeFiles/ldp_sim.dir/simulator.cc.o"
  "CMakeFiles/ldp_sim.dir/simulator.cc.o.d"
  "CMakeFiles/ldp_sim.dir/tcp.cc.o"
  "CMakeFiles/ldp_sim.dir/tcp.cc.o.d"
  "libldp_sim.a"
  "libldp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
