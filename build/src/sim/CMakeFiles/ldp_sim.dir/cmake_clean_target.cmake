file(REMOVE_RECURSE
  "libldp_sim.a"
)
