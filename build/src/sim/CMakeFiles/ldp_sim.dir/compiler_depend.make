# Empty compiler generated dependencies file for ldp_sim.
# This may be replaced when dependencies are built.
