file(REMOVE_RECURSE
  "CMakeFiles/ldp_stats.dir/summary.cc.o"
  "CMakeFiles/ldp_stats.dir/summary.cc.o.d"
  "CMakeFiles/ldp_stats.dir/table.cc.o"
  "CMakeFiles/ldp_stats.dir/table.cc.o.d"
  "CMakeFiles/ldp_stats.dir/timeseries.cc.o"
  "CMakeFiles/ldp_stats.dir/timeseries.cc.o.d"
  "libldp_stats.a"
  "libldp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
