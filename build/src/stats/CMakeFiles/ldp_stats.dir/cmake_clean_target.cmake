file(REMOVE_RECURSE
  "libldp_stats.a"
)
