# Empty dependencies file for ldp_stats.
# This may be replaced when dependencies are built.
