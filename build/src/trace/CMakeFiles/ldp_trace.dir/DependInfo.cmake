
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary.cc" "src/trace/CMakeFiles/ldp_trace.dir/binary.cc.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/binary.cc.o.d"
  "/root/repo/src/trace/pcap.cc" "src/trace/CMakeFiles/ldp_trace.dir/pcap.cc.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/pcap.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/trace/CMakeFiles/ldp_trace.dir/record.cc.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/record.cc.o.d"
  "/root/repo/src/trace/text.cc" "src/trace/CMakeFiles/ldp_trace.dir/text.cc.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/text.cc.o.d"
  "/root/repo/src/trace/tracestats.cc" "src/trace/CMakeFiles/ldp_trace.dir/tracestats.cc.o" "gcc" "src/trace/CMakeFiles/ldp_trace.dir/tracestats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/ldp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
