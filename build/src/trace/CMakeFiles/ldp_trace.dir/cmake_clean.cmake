file(REMOVE_RECURSE
  "CMakeFiles/ldp_trace.dir/binary.cc.o"
  "CMakeFiles/ldp_trace.dir/binary.cc.o.d"
  "CMakeFiles/ldp_trace.dir/pcap.cc.o"
  "CMakeFiles/ldp_trace.dir/pcap.cc.o.d"
  "CMakeFiles/ldp_trace.dir/record.cc.o"
  "CMakeFiles/ldp_trace.dir/record.cc.o.d"
  "CMakeFiles/ldp_trace.dir/text.cc.o"
  "CMakeFiles/ldp_trace.dir/text.cc.o.d"
  "CMakeFiles/ldp_trace.dir/tracestats.cc.o"
  "CMakeFiles/ldp_trace.dir/tracestats.cc.o.d"
  "libldp_trace.a"
  "libldp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
