file(REMOVE_RECURSE
  "libldp_trace.a"
)
