# Empty compiler generated dependencies file for ldp_trace.
# This may be replaced when dependencies are built.
