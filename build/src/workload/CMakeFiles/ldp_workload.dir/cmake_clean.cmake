file(REMOVE_RECURSE
  "CMakeFiles/ldp_workload.dir/hierarchy.cc.o"
  "CMakeFiles/ldp_workload.dir/hierarchy.cc.o.d"
  "CMakeFiles/ldp_workload.dir/sampling.cc.o"
  "CMakeFiles/ldp_workload.dir/sampling.cc.o.d"
  "CMakeFiles/ldp_workload.dir/traces.cc.o"
  "CMakeFiles/ldp_workload.dir/traces.cc.o.d"
  "libldp_workload.a"
  "libldp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
