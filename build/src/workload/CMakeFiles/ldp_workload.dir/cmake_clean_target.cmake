file(REMOVE_RECURSE
  "libldp_workload.a"
)
