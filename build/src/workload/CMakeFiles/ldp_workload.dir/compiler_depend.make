# Empty compiler generated dependencies file for ldp_workload.
# This may be replaced when dependencies are built.
