
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zone/dnssec.cc" "src/zone/CMakeFiles/ldp_zone.dir/dnssec.cc.o" "gcc" "src/zone/CMakeFiles/ldp_zone.dir/dnssec.cc.o.d"
  "/root/repo/src/zone/lookup.cc" "src/zone/CMakeFiles/ldp_zone.dir/lookup.cc.o" "gcc" "src/zone/CMakeFiles/ldp_zone.dir/lookup.cc.o.d"
  "/root/repo/src/zone/masterfile.cc" "src/zone/CMakeFiles/ldp_zone.dir/masterfile.cc.o" "gcc" "src/zone/CMakeFiles/ldp_zone.dir/masterfile.cc.o.d"
  "/root/repo/src/zone/view.cc" "src/zone/CMakeFiles/ldp_zone.dir/view.cc.o" "gcc" "src/zone/CMakeFiles/ldp_zone.dir/view.cc.o.d"
  "/root/repo/src/zone/zone.cc" "src/zone/CMakeFiles/ldp_zone.dir/zone.cc.o" "gcc" "src/zone/CMakeFiles/ldp_zone.dir/zone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/ldp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
