file(REMOVE_RECURSE
  "CMakeFiles/ldp_zone.dir/dnssec.cc.o"
  "CMakeFiles/ldp_zone.dir/dnssec.cc.o.d"
  "CMakeFiles/ldp_zone.dir/lookup.cc.o"
  "CMakeFiles/ldp_zone.dir/lookup.cc.o.d"
  "CMakeFiles/ldp_zone.dir/masterfile.cc.o"
  "CMakeFiles/ldp_zone.dir/masterfile.cc.o.d"
  "CMakeFiles/ldp_zone.dir/view.cc.o"
  "CMakeFiles/ldp_zone.dir/view.cc.o.d"
  "CMakeFiles/ldp_zone.dir/zone.cc.o"
  "CMakeFiles/ldp_zone.dir/zone.cc.o.d"
  "libldp_zone.a"
  "libldp_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
