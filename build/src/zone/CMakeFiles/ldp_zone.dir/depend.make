# Empty dependencies file for ldp_zone.
# This may be replaced when dependencies are built.
