file(REMOVE_RECURSE
  "CMakeFiles/ldp_zoneconstruct.dir/axfr_client.cc.o"
  "CMakeFiles/ldp_zoneconstruct.dir/axfr_client.cc.o.d"
  "CMakeFiles/ldp_zoneconstruct.dir/constructor.cc.o"
  "CMakeFiles/ldp_zoneconstruct.dir/constructor.cc.o.d"
  "CMakeFiles/ldp_zoneconstruct.dir/harvest.cc.o"
  "CMakeFiles/ldp_zoneconstruct.dir/harvest.cc.o.d"
  "libldp_zoneconstruct.a"
  "libldp_zoneconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_zoneconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
