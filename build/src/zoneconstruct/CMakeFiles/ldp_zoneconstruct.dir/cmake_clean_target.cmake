file(REMOVE_RECURSE
  "libldp_zoneconstruct.a"
)
