# Empty dependencies file for ldp_zoneconstruct.
# This may be replaced when dependencies are built.
