file(REMOVE_RECURSE
  "CMakeFiles/axfr_test.dir/axfr_test.cc.o"
  "CMakeFiles/axfr_test.dir/axfr_test.cc.o.d"
  "axfr_test"
  "axfr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axfr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
