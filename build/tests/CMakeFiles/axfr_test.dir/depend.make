# Empty dependencies file for axfr_test.
# This may be replaced when dependencies are built.
