file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_emulation_test.dir/hierarchy_emulation_test.cc.o"
  "CMakeFiles/hierarchy_emulation_test.dir/hierarchy_emulation_test.cc.o.d"
  "hierarchy_emulation_test"
  "hierarchy_emulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_emulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
