# Empty dependencies file for hierarchy_emulation_test.
# This may be replaced when dependencies are built.
