file(REMOVE_RECURSE
  "CMakeFiles/mutate_test.dir/mutate_test.cc.o"
  "CMakeFiles/mutate_test.dir/mutate_test.cc.o.d"
  "mutate_test"
  "mutate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
