file(REMOVE_RECURSE
  "CMakeFiles/replay_realtime_test.dir/replay_realtime_test.cc.o"
  "CMakeFiles/replay_realtime_test.dir/replay_realtime_test.cc.o.d"
  "replay_realtime_test"
  "replay_realtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_realtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
