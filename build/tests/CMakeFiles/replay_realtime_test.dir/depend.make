# Empty dependencies file for replay_realtime_test.
# This may be replaced when dependencies are built.
