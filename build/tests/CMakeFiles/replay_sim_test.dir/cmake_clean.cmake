file(REMOVE_RECURSE
  "CMakeFiles/replay_sim_test.dir/replay_sim_test.cc.o"
  "CMakeFiles/replay_sim_test.dir/replay_sim_test.cc.o.d"
  "replay_sim_test"
  "replay_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
