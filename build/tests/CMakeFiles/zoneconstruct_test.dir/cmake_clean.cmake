file(REMOVE_RECURSE
  "CMakeFiles/zoneconstruct_test.dir/zoneconstruct_test.cc.o"
  "CMakeFiles/zoneconstruct_test.dir/zoneconstruct_test.cc.o.d"
  "zoneconstruct_test"
  "zoneconstruct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoneconstruct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
