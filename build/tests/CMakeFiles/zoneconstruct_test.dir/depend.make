# Empty dependencies file for zoneconstruct_test.
# This may be replaced when dependencies are built.
