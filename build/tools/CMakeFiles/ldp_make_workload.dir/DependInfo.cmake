
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ldp_make_workload.cc" "tools/CMakeFiles/ldp_make_workload.dir/ldp_make_workload.cc.o" "gcc" "tools/CMakeFiles/ldp_make_workload.dir/ldp_make_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ldp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ldp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/ldp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/ldp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
