file(REMOVE_RECURSE
  "CMakeFiles/ldp_make_workload.dir/ldp_make_workload.cc.o"
  "CMakeFiles/ldp_make_workload.dir/ldp_make_workload.cc.o.d"
  "ldp_make_workload"
  "ldp_make_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_make_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
