# Empty dependencies file for ldp_make_workload.
# This may be replaced when dependencies are built.
