file(REMOVE_RECURSE
  "CMakeFiles/ldp_mutate_trace.dir/ldp_mutate_trace.cc.o"
  "CMakeFiles/ldp_mutate_trace.dir/ldp_mutate_trace.cc.o.d"
  "ldp_mutate_trace"
  "ldp_mutate_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_mutate_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
