# Empty dependencies file for ldp_mutate_trace.
# This may be replaced when dependencies are built.
