file(REMOVE_RECURSE
  "CMakeFiles/ldp_query.dir/ldp_query.cc.o"
  "CMakeFiles/ldp_query.dir/ldp_query.cc.o.d"
  "ldp_query"
  "ldp_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
