file(REMOVE_RECURSE
  "CMakeFiles/ldp_replay_trace.dir/ldp_replay_trace.cc.o"
  "CMakeFiles/ldp_replay_trace.dir/ldp_replay_trace.cc.o.d"
  "ldp_replay_trace"
  "ldp_replay_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_replay_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
