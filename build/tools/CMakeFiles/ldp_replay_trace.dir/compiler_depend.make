# Empty compiler generated dependencies file for ldp_replay_trace.
# This may be replaced when dependencies are built.
