file(REMOVE_RECURSE
  "CMakeFiles/ldp_serve.dir/ldp_serve.cc.o"
  "CMakeFiles/ldp_serve.dir/ldp_serve.cc.o.d"
  "ldp_serve"
  "ldp_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
