# Empty dependencies file for ldp_serve.
# This may be replaced when dependencies are built.
