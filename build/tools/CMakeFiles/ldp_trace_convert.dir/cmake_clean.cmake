file(REMOVE_RECURSE
  "CMakeFiles/ldp_trace_convert.dir/ldp_trace_convert.cc.o"
  "CMakeFiles/ldp_trace_convert.dir/ldp_trace_convert.cc.o.d"
  "ldp_trace_convert"
  "ldp_trace_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_trace_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
