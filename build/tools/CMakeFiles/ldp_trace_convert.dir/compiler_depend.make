# Empty compiler generated dependencies file for ldp_trace_convert.
# This may be replaced when dependencies are built.
