file(REMOVE_RECURSE
  "CMakeFiles/ldp_trace_stats.dir/ldp_trace_stats.cc.o"
  "CMakeFiles/ldp_trace_stats.dir/ldp_trace_stats.cc.o.d"
  "ldp_trace_stats"
  "ldp_trace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_trace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
