# Empty compiler generated dependencies file for ldp_trace_stats.
# This may be replaced when dependencies are built.
