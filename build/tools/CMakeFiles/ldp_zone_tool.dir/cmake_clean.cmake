file(REMOVE_RECURSE
  "CMakeFiles/ldp_zone_tool.dir/ldp_zone_tool.cc.o"
  "CMakeFiles/ldp_zone_tool.dir/ldp_zone_tool.cc.o.d"
  "ldp_zone_tool"
  "ldp_zone_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp_zone_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
