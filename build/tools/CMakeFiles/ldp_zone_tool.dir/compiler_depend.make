# Empty compiler generated dependencies file for ldp_zone_tool.
# This may be replaced when dependencies are built.
