// End-to-end LDplayer pipeline (paper Figure 1):
//
//   ground-truth "Internet"  ─►  zone constructor (one-time harvest)
//        │                                 │
//        ▼                                 ▼
//   recursive trace            meta-DNS-server (split-horizon views)
//        │                                 ▲
//        └────────►  recursive + proxies ──┘   (replayed queries)
//
// Generates a ~100-zone hierarchy and a recursive-server trace, rebuilds
// every zone from harvested responses, then replays the trace through a
// cold recursive against the emulated hierarchy and prints resolver and
// proxy statistics.
//
//   ./build/examples/hierarchy_replay
#include <cstdio>

#include "proxy/proxy.h"
#include "resolver/resolver.h"
#include "server/sim_server.h"
#include "workload/traces.h"
#include "zone/masterfile.h"
#include "zoneconstruct/harvest.h"

using namespace ldp;

int main() {
  // --- 1. Ground truth: root + 5 TLDs x 18 SLDs = 96 zones. ---
  workload::HierarchyConfig hconfig;
  hconfig.n_tlds = 5;
  hconfig.n_slds_per_tld = 18;
  auto internet = workload::BuildHierarchy(hconfig);
  std::printf("ground truth: %zu zones, %zu hostnames\n",
              internet.AllZones().size(), internet.hostnames.size());

  // --- 2. A department-level recursive trace (Rec-17 model). ---
  workload::RecConfig tconfig;
  tconfig.n_records = 5000;
  tconfig.mean_interarrival_s = 0.002;
  auto trace_records = workload::MakeRecursiveTrace(tconfig, internet);
  std::printf("trace: %zu queries from %zu-client model\n",
              trace_records.size(), tconfig.n_clients);

  // --- 3. One-time harvest: rebuild zones from responses (§2.3). ---
  auto harvest = zoneconstruct::HarvestZonesFromTrace(trace_records, internet);
  if (!harvest.ok()) {
    std::fprintf(stderr, "harvest failed: %s\n",
                 harvest.error().ToString().c_str());
    return 1;
  }
  std::printf(
      "harvest: %zu unique queries, %zu responses captured, "
      "%zu zones rebuilt (%zu SOAs synthesized, %zu conflicts dropped)\n",
      harvest->unique_queries, harvest->construction.responses_harvested,
      harvest->construction.zones.size(), harvest->construction.soa_synthesized,
      harvest->construction.conflicts_dropped);

  // Zones are reusable artifacts; show one as a master file.
  for (const auto& zone : harvest->construction.zones) {
    if (!zone->origin().IsRoot() && zone->origin().label_count() == 1) {
      std::printf("\n--- rebuilt zone %s (as master file) ---\n%s\n",
                  zone->origin().ToString().c_str(),
                  zone::SerializeZone(*zone).c_str());
      break;
    }
  }

  // --- 4. The emulated hierarchy: meta server + views + proxies (§2.4). ---
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  net.SetDefaultOneWayDelay(Micros(500));

  auto views = harvest->construction.BuildViews();
  if (!views.ok()) {
    std::fprintf(stderr, "views: %s\n", views.error().ToString().c_str());
    return 1;
  }
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(*views));
  server::SimDnsServer::Config sconfig;
  sconfig.address = IpAddress(10, 0, 0, 50);
  server::SimDnsServer meta(net, engine, sconfig);
  if (auto s = meta.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }

  resolver::ResolverConfig rconfig;
  rconfig.address = IpAddress(10, 0, 0, 2);
  rconfig.root_hints = internet.nameservers.at(dns::Name::Root());
  resolver::SimResolver recursive(net, rconfig);
  if (auto s = recursive.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }

  proxy::RecursiveProxy recursive_proxy(net, rconfig.address, sconfig.address);
  proxy::AuthoritativeProxy authoritative_proxy(net, sconfig.address,
                                                rconfig.address);

  // --- 5. Replay the trace as stub queries to the recursive. ---
  IpAddress stub(10, 0, 0, 77);
  size_t answered = 0, failed = 0;
  if (auto s = net.ListenUdp(Endpoint{stub, 5353},
                             [&](const sim::SimPacket& packet) {
                               auto m = dns::Message::Decode(packet.payload);
                               if (m.ok() && m->rcode != dns::Rcode::kServFail) {
                                 ++answered;
                               } else {
                                 ++failed;
                               }
                             });
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }
  for (const auto& record : trace_records) {
    simulator.ScheduleAt(record.timestamp, [&, record]() {
      dns::Message query = record.ToMessage();
      net.SendUdp(Endpoint{stub, 5353}, Endpoint{rconfig.address, 53},
                  query.Encode());
    });
  }
  simulator.Run();

  // --- 6. Report. ---
  std::printf("replay: %zu answered, %zu failed\n", answered, failed);
  std::printf("recursive: %llu stub queries, %llu upstream queries, "
              "%llu cache hits, %llu SERVFAILs\n",
              static_cast<unsigned long long>(recursive.stats().stub_queries),
              static_cast<unsigned long long>(
                  recursive.stats().upstream_queries),
              static_cast<unsigned long long>(recursive.stats().cache_hits),
              static_cast<unsigned long long>(recursive.stats().servfails));
  std::printf("proxies: %llu query rewrites, %llu response rewrites\n",
              static_cast<unsigned long long>(
                  recursive_proxy.stats().rewritten),
              static_cast<unsigned long long>(
                  authoritative_proxy.stats().rewritten));
  std::printf("meta server: %llu queries over %zu views "
              "(one listener address for the whole hierarchy)\n",
              static_cast<unsigned long long>(engine->stats().queries),
              engine->views().view_count());
  return failed == 0 ? 0 : 1;
}
