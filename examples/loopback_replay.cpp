// Real-socket replay on loopback: the distributed query engine (controller
// → distributors → queriers) replaying a trace against a real UDP/TCP DNS
// server through the kernel, with replay-fidelity statistics like the
// paper's §4.2 (timing error, rate error).
//
//   ./build/examples/loopback_replay
#include <cstdio>
#include <thread>

#include "replay/realtime.h"
#include "server/socket_server.h"
#include "stats/summary.h"
#include "workload/traces.h"
#include "zone/dnssec.h"
#include "zone/masterfile.h"

using namespace ldp;

int main() {
  // A wildcard zone answers every unique replayed name (paper §4.1).
  auto zone = zone::ParseMasterFile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1 admin 1 2 3 4 300\n"
      "@ IN NS ns1\n"
      "ns1 IN A 192.0.2.53\n"
      "* IN A 192.0.2.200\n",
      zone::MasterFileOptions{});
  if (!zone.ok()) {
    std::fprintf(stderr, "%s\n", zone.error().ToString().c_str());
    return 1;
  }
  zone::ZoneSet zones;
  if (!zones.AddZone(std::make_shared<zone::Zone>(std::move(*zone))).ok()) {
    return 1;
  }
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));

  auto loop = net::EventLoop::Create();
  if (!loop.ok()) return 1;
  server::SocketDnsServer::Config sconfig;
  sconfig.listen = Endpoint{IpAddress::Loopback(), 0};  // ephemeral port
  auto server = server::SocketDnsServer::Start(**loop, engine, sconfig);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.error().ToString().c_str());
    return 1;
  }
  std::printf("authoritative server on %s\n",
              (*server)->endpoint().ToString().c_str());
  std::thread server_thread([&]() { (*loop)->Run(); });

  // A 10-second trace at 1 ms fixed inter-arrival (syn-3 style).
  workload::FixedIntervalConfig tconfig;
  tconfig.interarrival = Millis(1);
  tconfig.duration = Seconds(10);
  auto records = workload::MakeFixedIntervalTrace(tconfig);
  for (auto& r : records) {
    r.dst = (*server)->endpoint().addr;
    r.dst_port = (*server)->endpoint().port;
  }
  std::printf("replaying %zu queries over UDP in real time...\n",
              records.size());

  replay::RealtimeConfig rconfig;
  rconfig.server = (*server)->endpoint();
  rconfig.n_distributors = 2;
  rconfig.queriers_per_distributor = 3;
  auto report = replay::RunRealtimeReplay(records, rconfig);

  (*loop)->ScheduleAfter(0, [&]() { (*loop)->Stop(); });
  server_thread.join();
  if (!report.ok()) {
    std::fprintf(stderr, "replay: %s\n", report.error().ToString().c_str());
    return 1;
  }

  std::printf("sent %llu, replied %llu, wall time %.2f s\n",
              static_cast<unsigned long long>(report->queries_sent),
              static_cast<unsigned long long>(report->replies),
              ToSeconds(report->wall_duration));

  stats::Summary timing;
  timing.AddAll(report->TimingErrorsMs(/*skip_first=*/100));
  auto dist = timing.Summarize();
  std::printf("query-time error vs trace (ms): %s\n",
              dist.ToString(3).c_str());

  stats::Summary rate;
  for (double e : report->RateErrors()) rate.Add(e * 100.0);
  std::printf("per-second rate error (%%):     %s\n",
              rate.Summarize().ToString(3).c_str());
  std::printf("(compare paper Fig 6: quartiles within a few ms; "
              "Fig 8: rate within ±0.1%%)\n");
  return 0;
}
