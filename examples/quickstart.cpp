// Quickstart: the smallest useful LDplayer program.
//
// Builds a zone from master-file text, serves it from a simulated
// authoritative server, replays a three-query trace against it over UDP and
// TCP, and prints what came back.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "replay/sim_engine.h"
#include "server/sim_server.h"
#include "zone/masterfile.h"

using namespace ldp;

int main() {
  // 1. A zone, exactly as you would write it for BIND/NSD.
  auto zone = zone::ParseMasterFile(R"(
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 hostmaster 2026070501 7200 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.53
www  IN A   192.0.2.80
www  IN A   192.0.2.81
mail IN A   192.0.2.25
@    IN MX  10 mail
)",
                                    zone::MasterFileOptions{});
  if (!zone.ok()) {
    std::fprintf(stderr, "zone parse error: %s\n",
                 zone.error().ToString().c_str());
    return 1;
  }

  // 2. A simulated network with a 10 ms RTT and one authoritative server.
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  net.SetDefaultOneWayDelay(Millis(5));

  zone::ZoneSet zones;
  if (auto s = zones.AddZone(std::make_shared<zone::Zone>(std::move(*zone)));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));

  server::SimDnsServer::Config server_config;
  server_config.address = IpAddress(10, 0, 0, 1);
  server::SimDnsServer server(net, engine, server_config);
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().ToString().c_str());
    return 1;
  }

  // 3. A tiny trace: two UDP queries and one TCP query, 100 ms apart.
  std::vector<trace::QueryRecord> records;
  auto add = [&](const char* name, dns::RRType type, trace::Protocol proto) {
    trace::QueryRecord r;
    r.timestamp = Millis(100) * static_cast<int64_t>(records.size());
    r.src = IpAddress(172, 16, 0, 1);
    r.dst = server_config.address;
    r.protocol = proto;
    r.qname = *dns::Name::Parse(name);
    r.qtype = type;
    records.push_back(r);
  };
  add("www.example.com", dns::RRType::kA, trace::Protocol::kUdp);
  add("example.com", dns::RRType::kMX, trace::Protocol::kUdp);
  add("www.example.com", dns::RRType::kA, trace::Protocol::kTcp);

  // 4. Replay and report.
  replay::SimReplayConfig replay_config;
  replay_config.server = Endpoint{server_config.address, 53};
  replay_config.gauge_interval = 0;
  replay::SimReplayEngine replayer(net, replay_config, &server.meters());
  replayer.Load(records);
  auto report = replayer.Finish();

  std::printf("sent %llu queries, got %llu responses\n\n",
              static_cast<unsigned long long>(report.queries_sent),
              static_cast<unsigned long long>(report.responses));
  for (const auto& outcome : report.outcomes) {
    const auto& record = records[outcome.trace_index];
    std::printf("%-20s %-4s over %s: %s in %.1f ms (%u bytes)%s\n",
                record.qname.ToString().c_str(),
                dns::RRTypeToString(record.qtype).c_str(),
                std::string(trace::ProtocolName(record.protocol)).c_str(),
                outcome.answered() ? "answered" : "no reply",
                outcome.answered() ? ToMillis(outcome.latency()) : 0.0,
                outcome.response_bytes,
                outcome.fresh_connection ? "  [new connection]" : "");
  }
  std::printf("\nserver: %llu queries served, %llu bytes sent\n",
              static_cast<unsigned long long>(server.meters().queries_served()),
              static_cast<unsigned long long>(server.meters().bytes_sent()));
  return 0;
}
