// What-if study (paper §5.2 in miniature): take a B-Root-style trace and
// ask "what if every query used TCP or TLS instead of UDP?"
//
// Replays the same trace three ways (original mix, all-TCP, all-TLS)
// against a simulated root server at several client RTTs and prints the
// latency and server-resource consequences.
//
//   ./build/examples/whatif_tcp
#include <cstdio>

#include "common/strings.h"
#include "mutate/mutate.h"
#include "replay/sim_engine.h"
#include "server/sim_server.h"
#include "stats/table.h"
#include "workload/hierarchy.h"
#include "workload/traces.h"

using namespace ldp;

namespace {

struct RunResult {
  stats::Distribution latency_ms;
  uint64_t peak_established = 0;
  uint64_t peak_memory = 0;
  uint64_t fresh = 0;
  uint64_t reused = 0;
};

RunResult RunOnce(const std::vector<trace::QueryRecord>& records,
                  NanoDuration client_extra_delay) {
  sim::Simulator simulator;
  sim::SimNetwork net(simulator);
  net.SetDefaultOneWayDelay(Micros(500));

  // A root zone answers the trace (referrals + NXDOMAINs).
  auto hierarchy =
      workload::BuildRootHierarchy(100, /*sign=*/true, zone::DnssecConfig{});
  zone::ZoneSet zones;
  if (!zones.AddZone(hierarchy.root).ok()) return {};
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  auto engine = std::make_shared<server::AuthServerEngine>(std::move(views));

  server::SimDnsServer::Config sconfig;
  sconfig.address = IpAddress(10, 0, 0, 1);
  sconfig.tcp_idle_timeout = Seconds(20);
  server::SimDnsServer server(net, engine, sconfig);
  if (!server.Start().ok()) return {};

  // All clients sit `client_extra_delay` away from the IXP.
  for (const auto& record : records) {
    net.SetHostExtraDelay(record.src, client_extra_delay);
  }

  replay::SimReplayConfig rconfig;
  rconfig.server = Endpoint{sconfig.address, 53};
  rconfig.gauge_interval = Seconds(5);
  replay::SimReplayEngine replayer(net, rconfig, &server.meters());
  replayer.Load(records);
  auto report = replayer.Finish();

  RunResult result;
  result.latency_ms = report.LatencySummary();
  result.fresh = report.fresh_connections;
  result.reused = report.reused_connections;
  for (const auto& [when, value] : report.established_samples) {
    result.peak_established = std::max(result.peak_established, value);
  }
  for (const auto& [when, value] : report.memory_samples) {
    result.peak_memory = std::max(result.peak_memory, value);
  }
  return result;
}

}  // namespace

int main() {
  workload::BRootConfig tconfig;
  tconfig.median_rate_qps = 500;  // laptop-scale replica of 38k q/s
  tconfig.duration = Seconds(60);
  tconfig.n_clients = 3000;
  auto base = workload::MakeBRootTrace(tconfig);
  std::printf("trace: %zu queries over %lds (B-Root model, 3%% TCP)\n\n",
              base.size(),
              static_cast<long>(tconfig.duration / kNanosPerSecond));

  stats::Table table({"scenario", "RTT", "p25 ms", "median ms", "p75 ms",
                      "p95 ms", "fresh conns", "reused", "peak conns",
                      "peak mem"});

  for (NanoDuration rtt : {Millis(10), Millis(40), Millis(160)}) {
    NanoDuration extra = rtt / 2 - Micros(500);
    for (const char* scenario : {"original", "all-TCP", "all-TLS"}) {
      auto records = base;
      mutate::MutationPipeline pipeline;
      if (std::string(scenario) == "all-TCP") {
        pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTcp));
      } else if (std::string(scenario) == "all-TLS") {
        pipeline.Add(mutate::ForceProtocol(trace::Protocol::kTls));
      }
      pipeline.Apply(records);

      RunResult result = RunOnce(records, extra);
      char rtt_text[16], mem_text[32];
      std::snprintf(rtt_text, sizeof(rtt_text), "%ldms",
                    static_cast<long>(ToMillis(rtt)));
      std::snprintf(mem_text, sizeof(mem_text), "%.2f GB",
                    static_cast<double>(result.peak_memory) / (1 << 30));
      table.AddRow({scenario, rtt_text,
                    FormatDouble(result.latency_ms.p25, 1),
                    FormatDouble(result.latency_ms.p50, 1),
                    FormatDouble(result.latency_ms.p75, 1),
                    FormatDouble(result.latency_ms.p95, 1),
                    std::to_string(result.fresh),
                    std::to_string(result.reused),
                    std::to_string(result.peak_established), mem_text});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading the table: UDP latency is flat at ~1 RTT; fresh TCP costs\n"
      "2 RTT and fresh TLS 4 RTT, but connection reuse pulls busy-client\n"
      "medians toward 1 RTT — the paper's §5.2.4 observation.\n");
  return 0;
}
