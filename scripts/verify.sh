#!/bin/sh
# Tier-1 verification: the full build + test suite, then the threaded
# subsystems (sharded server, batched sockets, realtime replay, response
# cache) again under ThreadSanitizer (-DLDP_SANITIZE=thread), and the
# connection-lifetime tests (TCP reconnect, destroy-in-callback, timer
# wheel expiry) under AddressSanitizer (-DLDP_SANITIZE=address).
#
#   scripts/verify.sh [--skip-tsan]   # skips both sanitizer stages
set -eu

cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j2

if [ "${1:-}" = "--skip-tsan" ]; then
  echo "== sanitizers: skipped =="
  exit 0
fi

echo "== tsan: threaded subsystems =="
cmake -B build-tsan -S . -DLDP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  net_test sharded_server_test response_cache_test \
  server_test replay_realtime_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'net_test|sharded_server_test|response_cache_test|server_test|replay_realtime_test'

echo "== asan: socket + replay lifetime paths =="
cmake -B build-asan -S . -DLDP_SANITIZE=address >/dev/null
cmake --build build-asan -j"$(nproc)" --target \
  net_test replay_realtime_test
ctest --test-dir build-asan --output-on-failure \
  -R 'net_test|replay_realtime_test'

echo "verify: OK"
