#!/bin/sh
# Tier-1 verification: the full build + test suite, then a live-metrics
# smoke (ldp_serve + ldp_replay_trace with --metrics-out: snapshots must
# parse and the final row must reconcile with the report), the threaded
# subsystems (sharded server, batched sockets, realtime replay, response
# cache, TLS transport) again under ThreadSanitizer (-DLDP_SANITIZE=thread),
# and the connection-lifetime tests (TCP reconnect, destroy-in-callback,
# timer wheel expiry, TLS handshake/resumption, sharded TCP accept) under
# AddressSanitizer (-DLDP_SANITIZE=address).
#
#   scripts/verify.sh [--skip-tsan]   # skips both sanitizer stages
set -eu

cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j2

echo "== metrics smoke: live JSONL snapshots reconcile =="
SMOKE=$(mktemp -d)
SERVE_PID=""
PROXY_PID=""
ATTACK_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$PROXY_PID" ] && kill "$PROXY_PID" 2>/dev/null || true
  [ -n "$ATTACK_PID" ] && kill "$ATTACK_PID" 2>/dev/null || true
  rm -rf "$SMOKE"
}
trap cleanup EXIT
cat > "$SMOKE/zone.db" <<'EOF'
$ORIGIN example.com.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.53
www IN A 192.0.2.200
EOF
awk 'BEGIN { for (i = 0; i < 2000; i++)
  printf "%d.%09d 10.0.0.%d:5000 127.0.0.1:5353 udp www.example.com. IN A %d - 1232\n",
         int(i / 500), (i % 500) * 2000000, i % 200 + 1, i % 65536 }' \
  > "$SMOKE/trace.txt"
./build/tools/ldp_serve --listen 127.0.0.1:0 --stats-interval-s 0 \
  --metrics-out "$SMOKE/server_metrics.jsonl" --metrics-interval-ms 200 \
  "$SMOKE/zone.db" > "$SMOKE/serve.out" 2>&1 &
SERVE_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "serving on" "$SMOKE/serve.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' "$SMOKE/serve.out")
[ -n "$PORT" ] || { echo "metrics smoke: server never came up"; exit 1; }
./build/tools/ldp_replay_trace --trace "$SMOKE/trace.txt" \
  --server "127.0.0.1:$PORT" --fast \
  --metrics-out "$SMOKE/replay_metrics.jsonl" --metrics-interval-ms 200 \
  > "$SMOKE/replay.out" 2>&1
grep -q "reconcile: OK" "$SMOKE/replay.out" || {
  echo "metrics smoke: replay reconcile failed"; cat "$SMOKE/replay.out"
  exit 1
}
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
python3 - "$SMOKE/replay_metrics.jsonl" "$SMOKE/server_metrics.jsonl" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    rows = [json.loads(line) for line in open(path)]
    assert rows, path + ": no snapshot rows"
    for i, row in enumerate(rows):
        assert row["seq"] == i, path + ": seq gap"
        for name, c in row["counters"].items():
            assert c["total"] >= 0 and c["delta"] >= 0, (path, name)
        for name, h in row["histograms"].items():
            assert h["p50"] <= h["p95"] <= h["p99"], (path, name)
last = [json.loads(line) for line in open(sys.argv[1])][-1]["counters"]
sent = last["replay.sent"]["total"]
acct = (last["replay.answered"]["total"] + last["replay.timed_out"]["total"]
        + last["replay.send_failed"]["total"])
assert sent == acct, "sent %d != accounted %d" % (sent, acct)
print("metrics smoke: %d sent, fully accounted; all rows parse" % sent)
EOF

echo "== hierarchy smoke: replay through ldp_proxy, zero loss =="
./build/tools/ldp_zone_tool hierarchy "$SMOKE/hier" \
  --tlds 2 --slds 2 --hosts 2 --queries 400 --qps 2000
./build/tools/ldp_serve --listen 127.0.0.1:0 --views "$SMOKE/hier/views.txt" \
  --threads 1 --stats-interval-s 0 > "$SMOKE/hier_serve.out" 2>&1 &
SERVE_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "serving on" "$SMOKE/hier_serve.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
META_PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' \
  "$SMOKE/hier_serve.out")
[ -n "$META_PORT" ] || { echo "hierarchy smoke: meta server never came up"
  cat "$SMOKE/hier_serve.out"; exit 1; }
./build/tools/ldp_proxy --meta "127.0.0.1:$META_PORT" \
  --views "$SMOKE/hier/views.txt" --loopback-alias \
  --stats-interval-s 0 > "$SMOKE/hier_proxy.out" 2>&1 &
PROXY_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "proxying" "$SMOKE/hier_proxy.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
RELAY_PORT=$(sed -n 's/.*on port \([0-9]*\).*/\1/p' "$SMOKE/hier_proxy.out")
[ -n "$RELAY_PORT" ] || { echo "hierarchy smoke: proxy never came up"
  cat "$SMOKE/hier_proxy.out"; exit 1; }
./build/tools/ldp_replay_trace --trace "$SMOKE/hier/queries.txt" \
  --server "127.0.0.1:$META_PORT" --follow-dst --loopback-dst \
  --dst-port "$RELAY_PORT" --distributors 1 --queriers 1 \
  --timeout-ms 2000 --retransmits 2 \
  --metrics-out "$SMOKE/hier_replay.jsonl" \
  > "$SMOKE/hier_replay.out" 2>&1
grep -q "reconcile: OK" "$SMOKE/hier_replay.out" || {
  echo "hierarchy smoke: replay reconcile failed"
  cat "$SMOKE/hier_replay.out"; exit 1
}
SENT=$(sed -n 's/^sent \([0-9]*\), answered.*/\1/p' "$SMOKE/hier_replay.out")
ANSWERED=$(sed -n 's/^sent [0-9]*, answered \([0-9]*\).*/\1/p' \
  "$SMOKE/hier_replay.out")
[ -n "$SENT" ] && [ "$SENT" = "$ANSWERED" ] || {
  echo "hierarchy smoke: lost queries (sent=$SENT answered=$ANSWERED)"
  cat "$SMOKE/hier_replay.out" "$SMOKE/hier_proxy.out"; exit 1
}
kill -TERM "$PROXY_PID"; wait "$PROXY_PID"; PROXY_PID=""
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"; SERVE_PID=""
echo "hierarchy smoke: $SENT queries proxied, all answered"

echo "== scenario smoke: attack overlay + anycast catchment =="
# Same hierarchy testbed, but the proxy emulates two anycast sites: the
# catchment map routes the legit client group (127.77/16) to "far" (25 ms
# injected RTT) and everything else — including the attack replay from
# 127.0.0.1 — to "near". A bounded NXDOMAIN flood rides alongside; at
# smoke rates the legit traffic must still see zero loss, and the per-site
# split must be visible offline via ldp_trace_stats --by-site.
./build/tools/ldp_serve --listen 127.0.0.1:0 --views "$SMOKE/hier/views.txt" \
  --threads 1 --stats-interval-s 0 > "$SMOKE/sc_serve.out" 2>&1 &
SERVE_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "serving on" "$SMOKE/sc_serve.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
META_PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' \
  "$SMOKE/sc_serve.out")
[ -n "$META_PORT" ] || { echo "scenario smoke: meta server never came up"
  cat "$SMOKE/sc_serve.out"; exit 1; }
cat > "$SMOKE/catchment.txt" <<'EOF'
route 127.77.0.0/16 far
default near
EOF
./build/tools/ldp_proxy --meta "127.0.0.1:$META_PORT" \
  --views "$SMOKE/hier/views.txt" --loopback-alias \
  --sites near:0,far:25 --catchment "$SMOKE/catchment.txt" \
  --metrics-out "$SMOKE/sc_proxy.jsonl" --metrics-interval-ms 200 \
  --stats-interval-s 0 > "$SMOKE/sc_proxy.out" 2>&1 &
PROXY_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "proxying" "$SMOKE/sc_proxy.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
RELAY_PORT=$(sed -n 's/.*on port \([0-9]*\).*/\1/p' "$SMOKE/sc_proxy.out")
[ -n "$RELAY_PORT" ] || { echo "scenario smoke: proxy never came up"
  cat "$SMOKE/sc_proxy.out"; exit 1; }
grep -q "anycast sites" "$SMOKE/sc_proxy.out" || {
  echo "scenario smoke: proxy did not announce its anycast sites"
  cat "$SMOKE/sc_proxy.out"; exit 1; }
# Attack-only trace (--sample 0): a bounded random-subdomain flood shaped
# against the same testbed, replayed in the background as a second client.
./build/tools/ldp_mutate_trace --in "$SMOKE/hier/queries.txt" \
  --out "$SMOKE/attack.txt" --sample 0 \
  --attack nxdomain --attack-qps 500 --attack-duration-s 1 \
  > "$SMOKE/sc_mutate.out" 2>&1 || {
  echo "scenario smoke: attack trace generation failed"
  cat "$SMOKE/sc_mutate.out"; exit 1; }
./build/tools/ldp_replay_trace --trace "$SMOKE/attack.txt" \
  --server "127.0.0.1:$META_PORT" --follow-dst --loopback-dst \
  --dst-port "$RELAY_PORT" --distributors 1 --queriers 1 \
  --timeout-ms 2000 --retransmits 2 > "$SMOKE/sc_attack.out" 2>&1 &
ATTACK_PID=$!
./build/tools/ldp_replay_trace --trace "$SMOKE/hier/queries.txt" \
  --server "127.0.0.1:$META_PORT" --follow-dst --loopback-dst \
  --dst-port "$RELAY_PORT" --local-addr 127.77.0.9 \
  --distributors 1 --queriers 1 --timeout-ms 2000 --retransmits 2 \
  > "$SMOKE/sc_legit.out" 2>&1
wait "$ATTACK_PID" || { ATTACK_PID=""; echo "scenario smoke: attack replay failed"
  cat "$SMOKE/sc_attack.out"; exit 1; }
ATTACK_PID=""
SENT=$(sed -n 's/^sent \([0-9]*\), answered.*/\1/p' "$SMOKE/sc_legit.out")
ANSWERED=$(sed -n 's/^sent [0-9]*, answered \([0-9]*\).*/\1/p' \
  "$SMOKE/sc_legit.out")
[ -n "$SENT" ] && [ "$SENT" = "$ANSWERED" ] || {
  echo "scenario smoke: legit traffic lost under bounded flood" \
       "(sent=$SENT answered=$ANSWERED)"
  cat "$SMOKE/sc_legit.out" "$SMOKE/sc_proxy.out"; exit 1
}
kill -TERM "$PROXY_PID"; wait "$PROXY_PID"; PROXY_PID=""
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"; SERVE_PID=""
./build/tools/ldp_trace_stats --by-site "$SMOKE/sc_proxy.jsonl" \
  > "$SMOKE/sc_bysite.out" 2>&1 || {
  echo "scenario smoke: --by-site failed"; cat "$SMOKE/sc_bysite.out"; exit 1; }
# Both sites must have caught traffic: far = the legit group the catchment
# routed there, near = the attack replay under the default route.
awk '/site (near|far)/ { if ($4 + 0 > 0) seen++ } END { exit seen == 2 ? 0 : 1 }' \
  "$SMOKE/sc_bysite.out" || {
  echo "scenario smoke: per-site load split not visible"
  cat "$SMOKE/sc_bysite.out"; exit 1
}
echo "scenario smoke: $SENT legit queries answered under flood," \
     "both sites caught traffic"

echo "== distrib smoke: 2-agent replay, zero loss, merged metrics =="
./build/tools/ldp_serve --listen 127.0.0.1:0 --stats-interval-s 0 \
  "$SMOKE/zone.db" > "$SMOKE/dist_serve.out" 2>&1 &
SERVE_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "serving on" "$SMOKE/dist_serve.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' "$SMOKE/dist_serve.out")
[ -n "$PORT" ] || { echo "distrib smoke: server never came up"; exit 1; }
# Trace timing (not --fast): the zero-loss assertion needs the paced rate,
# not a 1-core burst that overflows receive buffers.
./build/tools/ldp_replay_trace --trace "$SMOKE/trace.txt" \
  --server "127.0.0.1:$PORT" --agents 2 \
  --metrics-out "$SMOKE/dist_metrics.jsonl" --metrics-interval-ms 200 \
  > "$SMOKE/dist_replay.out" 2>&1
grep -q "reconcile: OK" "$SMOKE/dist_replay.out" || {
  echo "distrib smoke: reconcile failed"; cat "$SMOKE/dist_replay.out"
  exit 1
}
MERGED_SENT=$(sed -n 's/^merged: sent \([0-9]*\),.*/\1/p' \
  "$SMOKE/dist_replay.out")
MERGED_ANSWERED=$(sed -n 's/^merged: sent [0-9]*, answered \([0-9]*\).*/\1/p' \
  "$SMOKE/dist_replay.out")
[ "$MERGED_SENT" = "2000" ] && [ "$MERGED_ANSWERED" = "2000" ] || {
  echo "distrib smoke: lost queries (sent=$MERGED_SENT answered=$MERGED_ANSWERED)"
  cat "$SMOKE/dist_replay.out"; exit 1
}
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"; SERVE_PID=""
# Offline fold of the per-agent streams must agree with the live merge.
./build/tools/ldp_trace_stats merge --out "$SMOKE/dist_folded.jsonl" \
  "$SMOKE/dist_metrics.agent0.jsonl" "$SMOKE/dist_metrics.agent1.jsonl"
python3 - "$SMOKE/dist_folded.jsonl" <<'EOF'
import json, sys
rows = [json.loads(line) for line in open(sys.argv[1])]
assert rows, "no folded rows"
sent = rows[-1]["counters"]["replay.sent"]["total"]
assert sent == 2000, "folded sent %d != 2000" % sent
print("distrib smoke: 2 agents, 2000 sent, 2000 answered, fold agrees")
EOF

echo "== datapath smoke: serve+replay through each backend =="
# Paced replay (not --fast) with a retransmit budget, like the other
# smokes: the zero-loss assertion must measure the datapath, not a 1-core
# burst overflowing buffers. Both sides ride the same backend — mixed
# epoll/afpacket over loopback needs route_localnet (DESIGN.md §12).
datapath_smoke() {
  DP="$1"
  ./build/tools/ldp_serve --listen 127.0.0.1:0 --stats-interval-s 0 \
    --datapath "$DP" "$SMOKE/zone.db" > "$SMOKE/dp_serve.$DP.out" 2>&1 &
  SERVE_PID=$!
  i=0
  while [ "$i" -lt 50 ]; do
    grep -q "serving on" "$SMOKE/dp_serve.$DP.out" 2>/dev/null && break
    sleep 0.1
    i=$((i + 1))
  done
  PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$SMOKE/dp_serve.$DP.out")
  [ -n "$PORT" ] || { echo "datapath smoke ($DP): server never came up"
    cat "$SMOKE/dp_serve.$DP.out"; exit 1; }
  grep -q "datapath $DP" "$SMOKE/dp_serve.$DP.out" || {
    echo "datapath smoke ($DP): server not on the requested backend"
    cat "$SMOKE/dp_serve.$DP.out"; exit 1; }
  # --metrics-out makes the tool print "reconcile: OK/FAIL" (snapshot
  # counters vs final report); without it no reconcile line exists and the
  # grep below could never pass.
  ./build/tools/ldp_replay_trace --trace "$SMOKE/trace.txt" \
    --server "127.0.0.1:$PORT" --datapath "$DP" \
    --timeout-ms 2000 --retransmits 2 \
    --metrics-out "$SMOKE/dp_metrics.$DP.jsonl" \
    > "$SMOKE/dp_replay.$DP.out" 2>&1
  grep -q "reconcile: OK" "$SMOKE/dp_replay.$DP.out" || {
    echo "datapath smoke ($DP): replay reconcile failed"
    cat "$SMOKE/dp_replay.$DP.out"; exit 1
  }
  SENT=$(sed -n 's/^sent \([0-9]*\), answered.*/\1/p' \
    "$SMOKE/dp_replay.$DP.out")
  ANSWERED=$(sed -n 's/^sent [0-9]*, answered \([0-9]*\).*/\1/p' \
    "$SMOKE/dp_replay.$DP.out")
  [ "$SENT" = "2000" ] && [ "$SENT" = "$ANSWERED" ] || {
    echo "datapath smoke ($DP): lost queries (sent=$SENT answered=$ANSWERED)"
    cat "$SMOKE/dp_replay.$DP.out"; exit 1
  }
  kill -TERM "$SERVE_PID"; wait "$SERVE_PID"; SERVE_PID=""
  echo "datapath smoke ($DP): $SENT queries, all answered"
}
datapath_smoke epoll
if ./build/tools/ldp_datapath_probe > "$SMOKE/dp_probe.out" 2>&1; then
  datapath_smoke afpacket
else
  echo "datapath smoke: afpacket skipped ($(cat "$SMOKE/dp_probe.out"))"
fi

echo "== tls smoke: serve+replay over DoT, zero loss =="
# Same shape as the datapath smoke, but the replay rides DNS-over-TLS to
# the server's DoT listener (session resumption included: the querier
# redials per source). Skips cleanly on builds without OpenSSL.
if ./build/tools/ldp_datapath_probe --tls > "$SMOKE/tls_probe.out" 2>&1; then
  ./build/tools/ldp_serve --listen 127.0.0.1:0 --tls --stats-interval-s 0 \
    "$SMOKE/zone.db" > "$SMOKE/tls_serve.out" 2>&1 &
  SERVE_PID=$!
  i=0
  while [ "$i" -lt 50 ]; do
    grep -q "tls on" "$SMOKE/tls_serve.out" 2>/dev/null && break
    sleep 0.1
    i=$((i + 1))
  done
  PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$SMOKE/tls_serve.out")
  TLS_PORT=$(sed -n 's/^tls on [0-9.]*:\([0-9]*\).*/\1/p' \
    "$SMOKE/tls_serve.out")
  [ -n "$PORT" ] && [ -n "$TLS_PORT" ] || {
    echo "tls smoke: server never published its DoT port"
    cat "$SMOKE/tls_serve.out"; exit 1; }
  ./build/tools/ldp_replay_trace --trace "$SMOKE/trace.txt" \
    --server "127.0.0.1:$PORT" --tls --tls-port "$TLS_PORT" \
    --timeout-ms 2000 \
    --metrics-out "$SMOKE/tls_metrics.jsonl" \
    > "$SMOKE/tls_replay.out" 2>&1
  grep -q "reconcile: OK" "$SMOKE/tls_replay.out" || {
    echo "tls smoke: replay reconcile failed"
    cat "$SMOKE/tls_replay.out"; exit 1
  }
  SENT=$(sed -n 's/^sent \([0-9]*\), answered.*/\1/p' "$SMOKE/tls_replay.out")
  ANSWERED=$(sed -n 's/^sent [0-9]*, answered \([0-9]*\).*/\1/p' \
    "$SMOKE/tls_replay.out")
  [ "$SENT" = "2000" ] && [ "$SENT" = "$ANSWERED" ] || {
    echo "tls smoke: lost queries (sent=$SENT answered=$ANSWERED)"
    cat "$SMOKE/tls_replay.out"; exit 1
  }
  kill -TERM "$SERVE_PID"; wait "$SERVE_PID"; SERVE_PID=""
  echo "tls smoke: $SENT queries over DoT, all answered"
else
  echo "tls smoke: skipped ($(cat "$SMOKE/tls_probe.out"))"
fi

echo "== docs: EXPERIMENTS.md command lines match tool --help =="
python3 - <<'EOF'
import re, subprocess, sys

text = open("EXPERIMENTS.md").read()
known = {}
failures = []
# Every ./build/tools/ldp_* invocation inside a code block: each --flag it
# passes must be advertised by that tool's --help (stale docs fail here).
for line in text.splitlines():
    m = re.search(r"(?:\./)?build/tools/(ldp_\w+)", line)
    if not m or line.lstrip().startswith("#"):
        continue
    tool = m.group(1)
    if tool not in known:
        out = subprocess.run(["./build/tools/" + tool, "--help"],
                             capture_output=True, text=True)
        known[tool] = set(re.findall(r"--[\w-]+", out.stdout + out.stderr))
    for flag in re.findall(r"--[\w-]+", line.split(m.group(0), 1)[1]):
        if flag not in known[tool]:
            failures.append("%s: %s not in --help (line: %s)"
                            % (tool, flag, line.strip()))
# The scenario cookbook must keep exercising the attack/anycast surface:
# if these flags disappear from EXPERIMENTS.md the cookbook has gone stale
# (the generic check above only validates lines that exist).
for needed in ["--attack", "--sites", "--catchment", "--by-site",
               "--local-addr"]:
    if needed not in text:
        failures.append("EXPERIMENTS.md: scenario cookbook no longer uses "
                        + needed)
if failures:
    print("\n".join(failures))
    sys.exit(1)
print("docs: %d tool invocations checked against --help" % len(known))
EOF

echo "== fuzz: ASan harnesses, corpus replay + bounded runs =="
# Builds the fuzz preset (libFuzzer under clang, bundled standalone driver
# under gcc) and gives each harness a bounded -runs budget over its
# checked-in corpus, so any new crash — including a regression on a landed
# reproducer — fails verification. Skips only if the preset cannot build.
if cmake -B build-fuzz -S . -DLDP_SANITIZE=address -DLDP_FUZZ=ON \
     > "$SMOKE/fuzz_configure.out" 2>&1 \
   && cmake --build build-fuzz -j"$(nproc)" --target \
        fuzz_wire fuzz_zone fuzz_framing fuzz_distrib \
        > "$SMOKE/fuzz_build.out" 2>&1; then
  for target in wire zone framing distrib; do
    ./build-fuzz/tests/fuzz/fuzz_$target "tests/fuzz/corpus/$target" \
      -runs=20000 -max_len=4096 -artifact_prefix="$SMOKE/" \
      > "$SMOKE/fuzz_$target.out" 2>&1 || {
      echo "fuzz smoke: fuzz_$target failed"
      tail -20 "$SMOKE/fuzz_$target.out"
      exit 1
    }
  done
  echo "fuzz smoke: 4 harnesses, corpus replay + 20000 bounded runs, clean"
else
  echo "fuzz smoke: skipped (fuzz preset failed to configure or build)"
  tail -5 "$SMOKE/fuzz_build.out" "$SMOKE/fuzz_configure.out" 2>/dev/null || true
fi

if [ "${1:-}" = "--skip-tsan" ]; then
  echo "== sanitizers: skipped =="
  exit 0
fi

echo "== tsan: threaded subsystems =="
cmake -B build-tsan -S . -DLDP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  net_test sharded_server_test response_cache_test \
  server_test replay_realtime_test metrics_test stats_test proxy_relay_test \
  distrib_test hashring_test packet_codec_test datapath_test tls_test \
  scenario_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'net_test|sharded_server_test|response_cache_test|server_test|replay_realtime_test|metrics_test|stats_test|proxy_relay_test|distrib_test|hashring_test|packet_codec_test|datapath_test|tls_test|scenario_test'

echo "== asan: socket + replay lifetime paths =="
cmake -B build-asan -S . -DLDP_SANITIZE=address >/dev/null
cmake --build build-asan -j"$(nproc)" --target \
  net_test replay_realtime_test packet_codec_test datapath_test \
  tls_test sharded_server_test
ctest --test-dir build-asan --output-on-failure \
  -R 'net_test|replay_realtime_test|packet_codec_test|datapath_test|tls_test|sharded_server_test'

echo "verify: OK"
