#!/bin/sh
# Tier-1 verification: the full build + test suite, then the threaded
# subsystems (sharded server, batched sockets, realtime replay, response
# cache) again under ThreadSanitizer (-DLDP_SANITIZE=thread).
#
#   scripts/verify.sh [--skip-tsan]
set -eu

cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j2

if [ "${1:-}" = "--skip-tsan" ]; then
  echo "== tsan: skipped =="
  exit 0
fi

echo "== tsan: threaded subsystems =="
cmake -B build-tsan -S . -DLDP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  net_test sharded_server_test response_cache_test \
  server_test replay_realtime_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'net_test|sharded_server_test|response_cache_test|server_test|replay_realtime_test'

echo "verify: OK"
