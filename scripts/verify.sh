#!/bin/sh
# Tier-1 verification: the full build + test suite, then a live-metrics
# smoke (ldp_serve + ldp_replay_trace with --metrics-out: snapshots must
# parse and the final row must reconcile with the report), the threaded
# subsystems (sharded server, batched sockets, realtime replay, response
# cache) again under ThreadSanitizer (-DLDP_SANITIZE=thread), and the
# connection-lifetime tests (TCP reconnect, destroy-in-callback, timer
# wheel expiry) under AddressSanitizer (-DLDP_SANITIZE=address).
#
#   scripts/verify.sh [--skip-tsan]   # skips both sanitizer stages
set -eu

cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j2

echo "== metrics smoke: live JSONL snapshots reconcile =="
SMOKE=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$SMOKE"
}
trap cleanup EXIT
cat > "$SMOKE/zone.db" <<'EOF'
$ORIGIN example.com.
@ 3600 IN SOA ns1 admin 1 2 3 4 300
@ IN NS ns1
ns1 IN A 192.0.2.53
www IN A 192.0.2.200
EOF
awk 'BEGIN { for (i = 0; i < 2000; i++)
  printf "%d.%09d 10.0.0.%d:5000 127.0.0.1:5353 udp www.example.com. IN A %d - 1232\n",
         int(i / 500), (i % 500) * 2000000, i % 200 + 1, i % 65536 }' \
  > "$SMOKE/trace.txt"
./build/tools/ldp_serve --listen 127.0.0.1:0 --stats-interval-s 0 \
  --metrics-out "$SMOKE/server_metrics.jsonl" --metrics-interval-ms 200 \
  "$SMOKE/zone.db" > "$SMOKE/serve.out" 2>&1 &
SERVE_PID=$!
i=0
while [ "$i" -lt 50 ]; do
  grep -q "serving on" "$SMOKE/serve.out" 2>/dev/null && break
  sleep 0.1
  i=$((i + 1))
done
PORT=$(sed -n 's/.*serving on [0-9.]*:\([0-9]*\).*/\1/p' "$SMOKE/serve.out")
[ -n "$PORT" ] || { echo "metrics smoke: server never came up"; exit 1; }
./build/tools/ldp_replay_trace --trace "$SMOKE/trace.txt" \
  --server "127.0.0.1:$PORT" --fast \
  --metrics-out "$SMOKE/replay_metrics.jsonl" --metrics-interval-ms 200 \
  > "$SMOKE/replay.out" 2>&1
grep -q "reconcile: OK" "$SMOKE/replay.out" || {
  echo "metrics smoke: replay reconcile failed"; cat "$SMOKE/replay.out"
  exit 1
}
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
python3 - "$SMOKE/replay_metrics.jsonl" "$SMOKE/server_metrics.jsonl" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    rows = [json.loads(line) for line in open(path)]
    assert rows, path + ": no snapshot rows"
    for i, row in enumerate(rows):
        assert row["seq"] == i, path + ": seq gap"
        for name, c in row["counters"].items():
            assert c["total"] >= 0 and c["delta"] >= 0, (path, name)
        for name, h in row["histograms"].items():
            assert h["p50"] <= h["p95"] <= h["p99"], (path, name)
last = [json.loads(line) for line in open(sys.argv[1])][-1]["counters"]
sent = last["replay.sent"]["total"]
acct = (last["replay.answered"]["total"] + last["replay.timed_out"]["total"]
        + last["replay.send_failed"]["total"])
assert sent == acct, "sent %d != accounted %d" % (sent, acct)
print("metrics smoke: %d sent, fully accounted; all rows parse" % sent)
EOF

if [ "${1:-}" = "--skip-tsan" ]; then
  echo "== sanitizers: skipped =="
  exit 0
fi

echo "== tsan: threaded subsystems =="
cmake -B build-tsan -S . -DLDP_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)" --target \
  net_test sharded_server_test response_cache_test \
  server_test replay_realtime_test metrics_test stats_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'net_test|sharded_server_test|response_cache_test|server_test|replay_realtime_test|metrics_test|stats_test'

echo "== asan: socket + replay lifetime paths =="
cmake -B build-asan -S . -DLDP_SANITIZE=address >/dev/null
cmake --build build-asan -j"$(nproc)" --target \
  net_test replay_realtime_test
ctest --test-dir build-asan --output-on-failure \
  -R 'net_test|replay_realtime_test'

echo "verify: OK"
