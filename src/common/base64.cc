#include "common/base64.h"

#include <array>

namespace ldp {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<int8_t, 256> BuildDecodeTable() {
  std::array<int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return table;
}

constexpr auto kDecodeTable = BuildDecodeTable();

}  // namespace

std::string Base64Encode(std::span<const uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t triple = (uint32_t{data[i]} << 16) | (uint32_t{data[i + 1]} << 8) |
                      uint32_t{data[i + 2]};
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3f]);
    out.push_back(kAlphabet[triple & 0x3f]);
    i += 3;
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t v = uint32_t{data[i]} << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    uint32_t v = (uint32_t{data[i]} << 16) | (uint32_t{data[i + 1]} << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Error(ErrorCode::kParseError, "base64 length not a multiple of 4");
  }
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) {
          return Error(ErrorCode::kParseError, "misplaced base64 padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {
        return Error(ErrorCode::kParseError, "data after base64 padding");
      }
      int8_t d = kDecodeTable[static_cast<unsigned char>(c)];
      if (d < 0) {
        return Error(ErrorCode::kParseError,
                     std::string("bad base64 character: ") + c);
      }
      v = (v << 6) | static_cast<uint32_t>(d);
    }
    out.push_back(static_cast<uint8_t>(v >> 16));
    if (pad < 2) out.push_back(static_cast<uint8_t>(v >> 8));
    if (pad < 1) out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

}  // namespace ldp
