// Base64 codec (RFC 4648) for DNSSEC key / signature material in master
// files (DNSKEY public keys, RRSIG signatures).
#ifndef LDPLAYER_COMMON_BASE64_H
#define LDPLAYER_COMMON_BASE64_H

#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace ldp {

std::string Base64Encode(std::span<const uint8_t> data);

// Rejects invalid characters and bad padding; ignores nothing (callers strip
// whitespace beforehand).
Result<Bytes> Base64Decode(std::string_view text);

}  // namespace ldp

#endif  // LDPLAYER_COMMON_BASE64_H
