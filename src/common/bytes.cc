#include "common/bytes.h"

#include <cstdio>

namespace ldp {

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Error(ErrorCode::kTruncated, "need 1 byte");
  return data_[offset_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  if (remaining() < 2) return Error(ErrorCode::kTruncated, "need 2 bytes");
  uint16_t v = static_cast<uint16_t>(data_[offset_] << 8) |
               static_cast<uint16_t>(data_[offset_ + 1]);
  offset_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Error(ErrorCode::kTruncated, "need 4 bytes");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[offset_ + i];
  offset_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) return Error(ErrorCode::kTruncated, "need 8 bytes");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[offset_ + i];
  offset_ += 8;
  return v;
}

Result<Bytes> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return Error(ErrorCode::kTruncated,
                 "need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
  }
  Bytes out(data_.begin() + offset_, data_.begin() + offset_ + n);
  offset_ += n;
  return out;
}

Result<std::span<const uint8_t>> ByteReader::ReadSpan(size_t n) {
  if (remaining() < n) {
    return Error(ErrorCode::kTruncated,
                 "need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
  }
  auto out = data_.subspan(offset_, n);
  offset_ += n;
  return out;
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) {
    return Error(ErrorCode::kTruncated, "skip past end");
  }
  offset_ += n;
  return Status::Ok();
}

Status ByteReader::Seek(size_t offset) {
  if (offset > data_.size()) {
    return Error(ErrorCode::kOutOfRange, "seek past end");
  }
  offset_ = offset;
  return Status::Ok();
}

void ByteWriter::WriteU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteU32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::WriteU64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::WriteBytes(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteString(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PatchU16(size_t offset, uint16_t v) {
  buf_.at(offset) = static_cast<uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<uint8_t>(v);
}

std::string HexDump(std::span<const uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 3);
  char tmp[4];
  for (size_t i = 0; i < data.size(); ++i) {
    std::snprintf(tmp, sizeof(tmp), "%02x", data[i]);
    if (i != 0) out += ' ';
    out += tmp;
  }
  return out;
}

}  // namespace ldp
