// Big-endian byte readers/writers used by every wire-format codec in the
// project (DNS messages, pcap records, internal binary trace streams).
#ifndef LDPLAYER_COMMON_BYTES_H
#define LDPLAYER_COMMON_BYTES_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ldp {

using Bytes = std::vector<uint8_t>;

// Sequential big-endian (network order) reader over a non-owning span.
// All accessors return kTruncated when the input runs out rather than
// reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data, size) {}

  size_t offset() const { return offset_; }
  size_t size() const { return data_.size(); }
  size_t remaining() const { return data_.size() - offset_; }
  bool AtEnd() const { return offset_ == data_.size(); }

  // Random access to the underlying buffer (needed for DNS name
  // decompression, which follows pointers to earlier offsets).
  std::span<const uint8_t> buffer() const { return data_; }

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  // Copies `n` bytes out of the stream.
  Result<Bytes> ReadBytes(size_t n);
  // Zero-copy view of the next `n` bytes; invalidated with the buffer.
  Result<std::span<const uint8_t>> ReadSpan(size_t n);

  Status Skip(size_t n);
  // Repositions the cursor (used after following a compression pointer).
  Status Seek(size_t offset);

 private:
  std::span<const uint8_t> data_;
  size_t offset_ = 0;
};

// Append-only big-endian writer over an owned, growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  size_t size() const { return buf_.size(); }
  const Bytes& data() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteBytes(std::span<const uint8_t> bytes);
  void WriteString(std::string_view s);

  // Overwrites 2 bytes at `offset` (used to back-patch length prefixes and
  // DNS RDLENGTH fields once the payload size is known).
  void PatchU16(size_t offset, uint16_t v);

 private:
  Bytes buf_;
};

// Hex rendering for logs and test failure messages: "0a 00 01 ...".
std::string HexDump(std::span<const uint8_t> data);

}  // namespace ldp

#endif  // LDPLAYER_COMMON_BYTES_H
