#include "common/clock.h"

#include <ctime>
#include <cstdio>
#include <cstdlib>

namespace ldp {

std::string FormatSeconds(NanoTime t) {
  bool negative = t < 0;
  uint64_t abs = negative ? static_cast<uint64_t>(-t) : static_cast<uint64_t>(t);
  uint64_t secs = abs / kNanosPerSecond;
  uint64_t nanos = abs % kNanosPerSecond;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%llu.%09llu", negative ? "-" : "",
                static_cast<unsigned long long>(secs),
                static_cast<unsigned long long>(nanos));
  return buf;
}

NanoTime MonotonicNow() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<NanoTime>(ts.tv_sec) * kNanosPerSecond + ts.tv_nsec;
}

NanoTime WallNow() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<NanoTime>(ts.tv_sec) * kNanosPerSecond + ts.tv_nsec;
}

}  // namespace ldp
