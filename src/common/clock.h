// Time representation shared by traces, the simulator, and the real-time
// replay engine. All timestamps are nanoseconds in a 64-bit signed integer:
// trace time is nanoseconds since the trace epoch, simulator time is
// nanoseconds since simulation start, and wall time is nanoseconds since the
// Unix epoch. Using one scalar type keeps the ΔT = Δt̄ − Δt replay arithmetic
// (paper §2.6) trivial and overflow-safe for ~292 years of range.
#ifndef LDPLAYER_COMMON_CLOCK_H
#define LDPLAYER_COMMON_CLOCK_H

#include <cstdint>
#include <string>

namespace ldp {

using NanoTime = int64_t;      // a point in time, ns
using NanoDuration = int64_t;  // a span of time, ns

constexpr NanoDuration kNanosPerMicro = 1'000;
constexpr NanoDuration kNanosPerMilli = 1'000'000;
constexpr NanoDuration kNanosPerSecond = 1'000'000'000;

constexpr NanoDuration Micros(int64_t n) { return n * kNanosPerMicro; }
constexpr NanoDuration Millis(int64_t n) { return n * kNanosPerMilli; }
constexpr NanoDuration Seconds(int64_t n) { return n * kNanosPerSecond; }
constexpr NanoDuration SecondsF(double s) {
  return static_cast<NanoDuration>(s * static_cast<double>(kNanosPerSecond));
}

constexpr double ToSeconds(NanoDuration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosPerSecond);
}
constexpr double ToMillis(NanoDuration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosPerMilli);
}

// "12.345678901" seconds rendering for trace text files.
std::string FormatSeconds(NanoTime t);

// Monotonic wall clock (CLOCK_MONOTONIC) for real-time replay scheduling.
NanoTime MonotonicNow();

// Wall clock (CLOCK_REALTIME) for timestamps in captures.
NanoTime WallNow();

}  // namespace ldp

#endif  // LDPLAYER_COMMON_CLOCK_H
