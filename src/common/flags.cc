#include "common/flags.h"

#include "common/strings.h"

namespace ldp {

Result<Flags> Flags::Parse(int argc, char** argv,
                           const std::vector<std::string>& boolean_flags) {
  auto is_boolean = [&boolean_flags](std::string_view key) {
    if (key == "help") return true;
    for (const auto& candidate : boolean_flags) {
      if (key == candidate) return true;
    }
    return false;
  };

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
      continue;
    }
    // "--key value" unless declared boolean or the next token is a flag.
    if (!is_boolean(arg) && i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[std::string(arg)] = argv[++i];
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto value = ParseInt64(it->second);
  if (!value.ok()) {
    return value.error().WithContext("--" + key);
  }
  return *value;
}

Result<double> Flags::GetDouble(const std::string& key,
                                double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto value = ParseDouble(it->second);
  if (!value.ok()) {
    return value.error().WithContext("--" + key);
  }
  return *value;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Status Flags::RequireKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const auto& candidate : known) {
      if (key == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Error(ErrorCode::kInvalidArgument, "unknown flag --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace ldp
