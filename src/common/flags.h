// Minimal command-line flag parsing for the tools/ binaries:
// --key=value and --key value forms, typed getters with defaults, and
// usage text. Deliberately tiny — no registration globals, no dashes in
// front of positional arguments.
#ifndef LDPLAYER_COMMON_FLAGS_H
#define LDPLAYER_COMMON_FLAGS_H

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace ldp {

class Flags {
 public:
  // Parses argv; unknown flags are kept (validated by RequireKnown).
  // Keys listed in `boolean_flags` never consume the following token, so
  // "--verbose file.txt" keeps file.txt positional. "help" is always
  // boolean.
  static Result<Flags> Parse(int argc, char** argv,
                             const std::vector<std::string>& boolean_flags = {});

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Errors if any parsed flag is not in `known` — catches typos.
  Status RequireKnown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ldp

#endif  // LDPLAYER_COMMON_FLAGS_H
