#include "common/ip.h"

#include <charconv>
#include <cstdio>
#include <vector>

#include "common/strings.h"

namespace ldp {

Result<IpAddress> IpAddress::Parse(std::string_view text) {
  uint32_t addr = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc() || next == p || value > 255) {
      return Error(ErrorCode::kParseError,
                   "bad IPv4 address: " + std::string(text));
    }
    addr = (addr << 8) | value;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') {
        return Error(ErrorCode::kParseError,
                     "bad IPv4 address: " + std::string(text));
      }
      ++p;
    }
  }
  if (p != end) {
    return Error(ErrorCode::kParseError,
                 "trailing characters in IPv4 address: " + std::string(text));
  }
  return IpAddress(addr);
}

std::string IpAddress::ToString() const {
  return std::to_string((addr_ >> 24) & 0xff) + "." +
         std::to_string((addr_ >> 16) & 0xff) + "." +
         std::to_string((addr_ >> 8) & 0xff) + "." +
         std::to_string(addr_ & 0xff);
}

Result<Ipv6Address> Ipv6Address::Parse(std::string_view text) {
  // Split into at most two halves around "::".
  size_t gap = text.find("::");
  std::array<uint16_t, 8> groups{};
  auto parse_groups = [](std::string_view part,
                         std::vector<uint16_t>& out) -> Status {
    if (part.empty()) return Status::Ok();
    for (std::string_view field : Split(part, ':')) {
      if (field.empty() || field.size() > 4) {
        return Error(ErrorCode::kParseError, "bad IPv6 group");
      }
      unsigned value = 0;
      for (char c : field) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return Error(ErrorCode::kParseError, "bad IPv6 hex digit");
        value = value * 16 + static_cast<unsigned>(digit);
      }
      out.push_back(static_cast<uint16_t>(value));
    }
    return Status::Ok();
  };

  std::vector<uint16_t> head, tail;
  if (gap == std::string_view::npos) {
    LDP_RETURN_IF_ERROR(parse_groups(text, head));
    if (head.size() != 8) {
      return Error(ErrorCode::kParseError,
                   "IPv6 address needs 8 groups: " + std::string(text));
    }
  } else {
    LDP_RETURN_IF_ERROR(parse_groups(text.substr(0, gap), head));
    LDP_RETURN_IF_ERROR(parse_groups(text.substr(gap + 2), tail));
    if (head.size() + tail.size() > 7) {
      return Error(ErrorCode::kParseError,
                   "IPv6 '::' must compress at least one group");
    }
  }
  for (size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  std::array<uint8_t, 16> octets{};
  for (size_t i = 0; i < 8; ++i) {
    octets[i * 2] = static_cast<uint8_t>(groups[i] >> 8);
    octets[i * 2 + 1] = static_cast<uint8_t>(groups[i]);
  }
  return Ipv6Address(octets);
}

std::string Ipv6Address::ToString() const {
  std::array<uint16_t, 8> groups{};
  for (size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<uint16_t>((octets_[i * 2] << 8) | octets_[i * 2 + 1]);
  }
  // Find the longest run of zero groups (length >= 2) to compress.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) { ++i; continue; }
    int j = i;
    while (j < 8 && groups[j] == 0) ++j;
    if (j - i > best_len) { best_start = i; best_len = j - i; }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // Preceding groups suppressed their trailing ':', so always emit "::".
      out += "::";
      i += best_len;
      if (i == 8) return out;
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
    if (i < 8 && i != best_start) out += ":";
  }
  return out;
}

std::string Endpoint::ToString() const {
  return addr.ToString() + ":" + std::to_string(port);
}

Result<Endpoint> Endpoint::Parse(std::string_view text) {
  size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    return Error(ErrorCode::kParseError,
                 "endpoint missing ':port': " + std::string(text));
  }
  LDP_ASSIGN_OR_RETURN(IpAddress addr, IpAddress::Parse(text.substr(0, colon)));
  std::string_view port_text = text.substr(colon + 1);
  unsigned port = 0;
  auto [next, ec] =
      std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || next != port_text.data() + port_text.size() ||
      port > 65535) {
    return Error(ErrorCode::kParseError,
                 "bad port in endpoint: " + std::string(text));
  }
  return Endpoint{addr, static_cast<uint16_t>(port)};
}

}  // namespace ldp
