// IPv4 address / endpoint value types shared by the simulator, the real
// socket layer, trace records, and the proxy rewrite algebra.
#ifndef LDPLAYER_COMMON_IP_H
#define LDPLAYER_COMMON_IP_H

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace ldp {

// An IPv4 address stored host-order for cheap comparison and hashing.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(uint32_t host_order) : addr_(host_order) {}
  constexpr IpAddress(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : addr_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              uint32_t{d}) {}

  static Result<IpAddress> Parse(std::string_view text);
  static constexpr IpAddress Any() { return IpAddress(0); }
  static constexpr IpAddress Loopback() { return IpAddress(127, 0, 0, 1); }

  constexpr uint32_t value() const { return addr_; }
  bool IsUnspecified() const { return addr_ == 0; }

  std::string ToString() const;

  auto operator<=>(const IpAddress&) const = default;

 private:
  uint32_t addr_ = 0;
};

// An IPv6 address (16 octets, network order). Used only as record payload
// (AAAA); the simulated and real transports in this project are IPv4.
class Ipv6Address {
 public:
  Ipv6Address() : octets_{} {}
  explicit Ipv6Address(const std::array<uint8_t, 16>& octets)
      : octets_(octets) {}

  // Parses full and "::"-compressed textual forms (RFC 4291 §2.2), without
  // the embedded-IPv4 dotted form.
  static Result<Ipv6Address> Parse(std::string_view text);

  const std::array<uint8_t, 16>& octets() const { return octets_; }

  // Canonical lowercase text form with the longest zero run compressed.
  std::string ToString() const;

  auto operator<=>(const Ipv6Address&) const = default;

 private:
  std::array<uint8_t, 16> octets_;
};

// Loopback alias of a public testbed address: Linux routes all of
// 127.0.0.0/8 to the loopback interface, so any 127.x.y.z is bindable
// without configuration. Keeping the low 24 bits makes the mapping
// deterministic and collision-free for the synthetic address plan (NS
// addresses 198.51.x.y -> 127.51.x.y, hosts 203.0.x.y -> 127.0.x.y).
// This is the real-socket stand-in for the paper's per-address TUN
// routes: the hierarchy proxy binds these aliases and the replayer
// targets them (DESIGN.md "Hierarchy emulation over real sockets").
constexpr IpAddress LoopbackAlias(IpAddress public_addr) {
  return IpAddress((127u << 24) | (public_addr.value() & 0x00ffffffu));
}

// Transport endpoint: address + port.
struct Endpoint {
  IpAddress addr;
  uint16_t port = 0;

  std::string ToString() const;  // "192.0.2.1:53"
  static Result<Endpoint> Parse(std::string_view text);

  auto operator<=>(const Endpoint&) const = default;
};

}  // namespace ldp

template <>
struct std::hash<ldp::IpAddress> {
  size_t operator()(const ldp::IpAddress& a) const noexcept {
    return std::hash<uint32_t>()(a.value());
  }
};

template <>
struct std::hash<ldp::Endpoint> {
  size_t operator()(const ldp::Endpoint& e) const noexcept {
    return std::hash<uint64_t>()((uint64_t{e.addr.value()} << 16) | e.port);
  }
};

#endif  // LDPLAYER_COMMON_IP_H
