#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ldp {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {
void Emit(LogLevel level, std::string_view file, int line,
          std::string_view message) {
  // Basename only: full paths are noise in terminal output.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) file = file.substr(slash + 1);
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", LevelName(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}
}  // namespace internal

}  // namespace ldp
