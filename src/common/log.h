// Minimal leveled logger. Experiments print their results on stdout; logging
// goes to stderr so harness output stays machine-parsable.
#ifndef LDPLAYER_COMMON_LOG_H
#define LDPLAYER_COMMON_LOG_H

#include <sstream>
#include <string_view>

namespace ldp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kWarn (quiet).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void Emit(LogLevel level, std::string_view file, int line,
          std::string_view message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define LDP_LOG(level)                                          \
  if (::ldp::GetLogLevel() > ::ldp::LogLevel::level) {          \
  } else                                                        \
    ::ldp::internal::LogLine(::ldp::LogLevel::level, __FILE__, __LINE__)

#define LDP_DEBUG LDP_LOG(kDebug)
#define LDP_INFO LDP_LOG(kInfo)
#define LDP_WARN LDP_LOG(kWarn)
#define LDP_ERROR LDP_LOG(kError)

}  // namespace ldp

#endif  // LDPLAYER_COMMON_LOG_H
