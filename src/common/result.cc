#include "common/result.h"

namespace ldp {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kTruncated: return "TRUNCATED";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kWouldBlock: return "WOULD_BLOCK";
    case ErrorCode::kConnectionClosed: return "CONNECTION_CLOSED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Error::ToString() const {
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Error Error::WithContext(std::string_view context) const {
  std::string combined(context);
  combined += ": ";
  combined += message_;
  return Error(code_, std::move(combined));
}

}  // namespace ldp
