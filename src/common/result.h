// Result<T>: lightweight expected-style error handling for recoverable
// failures (parse errors, I/O errors, lookup misses). Exceptions are reserved
// for programming errors; anything a caller is expected to handle flows
// through Result.
#ifndef LDPLAYER_COMMON_RESULT_H
#define LDPLAYER_COMMON_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ldp {

// Broad failure categories; the human-readable message carries the detail.
enum class ErrorCode {
  kInvalidArgument,
  kParseError,
  kTruncated,      // input ended before a complete value was decoded
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kWouldBlock,
  kConnectionClosed,
  kTimeout,
  kResourceExhausted,
  kUnsupported,
  kInternal,
};

std::string_view ErrorCodeName(ErrorCode code);

// An error with a category and a contextual message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "PARSE_ERROR: bad label length" style rendering for logs.
  std::string ToString() const;

  // Returns a new error with `context + ": "` prepended to the message,
  // preserving the code. Useful when propagating errors up a parse stack.
  Error WithContext(std::string_view context) const;

 private:
  ErrorCode code_;
  std::string message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}         // NOLINT: implicit by design
  Result(Error error) : rep_(std::move(error)) {}     // NOLINT: implicit by design
  Result(ErrorCode code, std::string message)
      : rep_(Error(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(rep_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> rep_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design
  Status(ErrorCode code, std::string message)
      : error_(Error(code, std::move(message))) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

// Propagate an error from an expression returning Result/Status.
#define LDP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    auto _ldp_status = (expr);                     \
    if (!_ldp_status.ok()) return _ldp_status.error(); \
  } while (0)

// Evaluate a Result-returning expression; on success bind the value to `lhs`,
// otherwise return the error from the enclosing function.
#define LDP_ASSIGN_OR_RETURN(lhs, expr)            \
  LDP_ASSIGN_OR_RETURN_IMPL_(                      \
      LDP_RESULT_CONCAT_(_ldp_result_, __LINE__), lhs, expr)

#define LDP_RESULT_CONCAT_INNER_(a, b) a##b
#define LDP_RESULT_CONCAT_(a, b) LDP_RESULT_CONCAT_INNER_(a, b)
#define LDP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.error();               \
  lhs = std::move(tmp).value()

}  // namespace ldp

#endif  // LDPLAYER_COMMON_RESULT_H
