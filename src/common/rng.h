// Deterministic random number generation. Every stochastic component
// (workload generators, simulator jitter, sampling mutators) takes an
// explicit Rng so experiments are reproducible from a single seed — a core
// LDplayer requirement (paper §2.1 "Repeatability of experiments").
#ifndef LDPLAYER_COMMON_RNG_H
#define LDPLAYER_COMMON_RNG_H

#include <cstdint>
#include <cmath>

namespace ldp {

// xoshiro256** — fast, high-quality, and stable across platforms (unlike
// std::mt19937_64 distributions, whose outputs vary by standard library).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the full state.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

  // Exponentially distributed with the given mean (Poisson inter-arrivals).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Pareto (Lomax-free classic form): xm * U^{-1/alpha}. Heavy-tailed
  // per-client query loads in the B-Root model use this.
  double NextPareto(double xm, double alpha) {
    double u = NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm * std::pow(u, -1.0 / alpha);
  }

  // Normal via Box–Muller (no cached second value: simplicity over speed).
  double NextNormal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
    return mean + stddev * z;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace ldp

#endif  // LDPLAYER_COMMON_RNG_H
