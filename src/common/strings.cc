#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ldp {

std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  int64_t value = 0;
  auto [next, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || next != text.data() + text.size()) {
    return Error(ErrorCode::kParseError, "bad integer: " + std::string(text));
  }
  return value;
}

Result<uint64_t> ParseUint64(std::string_view text) {
  uint64_t value = 0;
  auto [next, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || next != text.data() + text.size()) {
    return Error(ErrorCode::kParseError,
                 "bad unsigned integer: " + std::string(text));
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  // std::from_chars<double> is unreliable pre-GCC11 for some locales; strtod
  // on a NUL-terminated copy is portable and the inputs here are short.
  std::string copy(text);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return Error(ErrorCode::kParseError, "bad double: " + copy);
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace ldp
