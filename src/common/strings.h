// Small string helpers used by the master-file parser, trace text format,
// and CLI argument handling.
#ifndef LDPLAYER_COMMON_STRINGS_H
#define LDPLAYER_COMMON_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ldp {

// Splits on a single delimiter; keeps empty fields.
std::vector<std::string_view> Split(std::string_view text, char delim);

// Splits on runs of spaces/tabs; drops empty fields. The workhorse tokenizer
// for column-oriented text formats.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

std::string_view TrimWhitespace(std::string_view text);

std::string ToLower(std::string_view text);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

Result<int64_t> ParseInt64(std::string_view text);
Result<uint64_t> ParseUint64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

// Formats a double with fixed precision without locale surprises.
std::string FormatDouble(double value, int precision);

}  // namespace ldp

#endif  // LDPLAYER_COMMON_STRINGS_H
