#include "distrib/agent.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/clock.h"

namespace ldp::distrib {

Result<std::unique_ptr<AgentServer>> AgentServer::Start(net::EventLoop& loop,
                                                        AgentOptions options) {
  auto server = std::unique_ptr<AgentServer>(
      new AgentServer(loop, std::move(options)));
  AgentServer* raw = server.get();
  LDP_ASSIGN_OR_RETURN(
      server->listener_,
      net::TcpListener::Listen(loop, server->options_.listen,
                               [raw](std::unique_ptr<net::TcpConnection> c) {
                                 raw->OnAccept(std::move(c));
                               }));
  return server;
}

AgentServer::~AgentServer() = default;

void AgentServer::OnAccept(std::unique_ptr<net::TcpConnection> conn) {
  if (conn_) return;  // one controller per agent; extra dials are dropped
  conn_ = std::move(conn);
  Status adopted = net::TcpListener::AdoptHandlers(
      *conn_,
      [this](std::span<const uint8_t> data) { OnData(data); },
      [this](Status reason) { OnClose(std::move(reason)); });
  if (!adopted.ok()) {
    conn_.reset();
    Fail(adopted.error().WithContext("adopting controller connection"));
  }
}

void AgentServer::OnData(std::span<const uint8_t> data) {
  if (stopped_) return;
  Status fed = assembler_.Feed(data);
  if (!fed.ok()) {
    Fail(fed.error().WithContext("controller stream"));
    return;
  }
  while (auto frame = assembler_.Next()) {
    Status handled = HandleFrame(*frame);
    if (!handled.ok()) {
      Fail(std::move(handled));
      return;
    }
    if (stopped_) return;  // BYE inside the batch
  }
}

void AgentServer::OnClose(Status reason) {
  if (stopped_) return;
  conn_.reset();
  if (reported_) {
    // Controller read our REPORT and hung up without BYE — still a
    // completed run.
    Shutdown();
    return;
  }
  if (reason.ok()) {
    Fail(Error(ErrorCode::kConnectionClosed,
               "controller disconnected mid-run"));
  } else {
    Fail(reason.error().WithContext("controller connection"));
  }
}

Status AgentServer::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return HandleHello(frame);
    case FrameType::kClockPing: {
      LDP_ASSIGN_OR_RETURN(auto ping, DecodeClockPing(frame));
      Send(EncodeClockPong(
          ClockPongFrame{.t1 = ping.t1, .t2 = MonotonicNow()}));
      return Status::Ok();
    }
    case FrameType::kStart:
      return HandleStart(frame);
    case FrameType::kChunk:
      return HandleChunk(frame);
    case FrameType::kInputDone: {
      LDP_ASSIGN_OR_RETURN(auto done, DecodeInputDone(frame));
      if (!pipeline_) {
        return Error(ErrorCode::kInvalidArgument, "INPUT_DONE before START");
      }
      input_done_ = true;
      expected_total_ = done.total_records;
      Pump();
      MaybeFinish();
      return Status::Ok();
    }
    case FrameType::kError: {
      LDP_ASSIGN_OR_RETURN(auto error, DecodeError(frame));
      return Error(ErrorCode::kInternal, "controller error: " + error.message);
    }
    case FrameType::kBye:
      Shutdown();
      return Status::Ok();
    default:
      return Error(ErrorCode::kParseError,
                   "unexpected frame type " +
                       std::to_string(static_cast<int>(frame.type)));
  }
}

Status AgentServer::HandleHello(const Frame& frame) {
  if (got_hello_) {
    return Error(ErrorCode::kAlreadyExists, "second HELLO");
  }
  LDP_ASSIGN_OR_RETURN(hello_, DecodeHello(frame));
  got_hello_ = true;
  config_ = hello_.ToRealtimeConfig();
  // The agent owns its metrics: the registry feeds both the local JSONL
  // file and the STATS frames. The pipeline's internal snapshotter stays
  // unset — WriteNow must run on this loop thread, not distributor 0's.
  config_.metrics = &registry_;
  config_.snapshotter = nullptr;
  if (!options_.metrics_path.empty()) {
    stats::MetricsSnapshotter::Options snap_options;
    snap_options.path = options_.metrics_path;
    snap_options.interval = hello_.stats_interval;
    snap_options.emit_buckets = true;
    snapshotter_ = std::make_unique<stats::MetricsSnapshotter>(
        registry_, std::move(snap_options));
    LDP_RETURN_IF_ERROR(snapshotter_->Open());
  }
  Send(EncodeHelloAck(
      HelloAckFrame{.version = kVersion, .agent_id = hello_.agent_id}));
  return Status::Ok();
}

Status AgentServer::HandleStart(const Frame& frame) {
  if (!got_hello_) {
    return Error(ErrorCode::kInvalidArgument, "START before HELLO");
  }
  if (pipeline_) {
    return Error(ErrorCode::kAlreadyExists, "second START");
  }
  LDP_ASSIGN_OR_RETURN(auto start, DecodeStart(frame));
  epoch_mono_ = start.epoch_mono;
  // Chunk timestamps arrive pre-rebased, so the trace epoch is 0.
  LDP_ASSIGN_OR_RETURN(pipeline_,
                       replay::ReplayPipeline::Start(config_, epoch_mono_,
                                                     /*trace_epoch=*/0));
  RearmPump();
  RearmStats();
  return Status::Ok();
}

Status AgentServer::HandleChunk(const Frame& frame) {
  if (!pipeline_) {
    return Error(ErrorCode::kInvalidArgument, "CHUNK before START");
  }
  if (input_done_) {
    return Error(ErrorCode::kInvalidArgument, "CHUNK after INPUT_DONE");
  }
  LDP_ASSIGN_OR_RETURN(auto chunk, DecodeChunk(frame));
  staging_.push_back(StagedChunk{.seq = chunk.seq,
                                 .records = std::move(chunk.records),
                                 .cursor = 0});
  Pump();
  return Status::Ok();
}

void AgentServer::Pump() {
  if (!pipeline_ || stopped_) return;
  const NanoTime window_end =
      config_.fast_mode
          ? std::numeric_limits<NanoTime>::max()
          : (MonotonicNow() - epoch_mono_) + config_.lookahead;
  while (!staging_.empty()) {
    StagedChunk& chunk = staging_.front();
    // Engine backlog: queries fed but not yet terminal (with timeouts off,
    // not yet sent — terminal outcomes never arrive in that mode).
    const uint64_t backlog =
        config_.query_timeout > 0
            ? pipeline_->fed() - pipeline_->TerminalCount()
            : pipeline_->fed() - pipeline_->SentCount();
    if (backlog >= options_.max_outstanding) return;
    const uint64_t room = options_.max_outstanding - backlog;
    size_t end = chunk.cursor;
    while (end < chunk.records.size() &&
           end - chunk.cursor < room &&
           chunk.records[end].timestamp <= window_end) {
      ++end;
    }
    if (end > chunk.cursor) {
      pipeline_->Feed(std::span<const trace::QueryRecord>(chunk.records)
                          .subspan(chunk.cursor, end - chunk.cursor));
      chunk.cursor = end;
    }
    if (chunk.cursor < chunk.records.size()) return;  // not yet due / full
    Send(EncodeChunkAck(ChunkAckFrame{.seq = chunk.seq}));
    staging_.pop_front();
  }
}

void AgentServer::MaybeFinish() {
  if (!pipeline_ || stopped_ || reported_) return;
  if (!input_done_ || !staging_.empty()) return;
  if (!input_closed_) {
    if (pipeline_->fed() != expected_total_) {
      Fail(Error(ErrorCode::kInternal,
                 "fed " + std::to_string(pipeline_->fed()) + " records, "
                 "controller announced " +
                     std::to_string(expected_total_)));
      return;
    }
    pipeline_->CloseInput();
    input_closed_ = true;
  }
  if (!pipeline_->Done()) return;  // completion poll re-checks
  auto finished = pipeline_->Finish();
  if (!finished.ok()) {
    Fail(finished.error().WithContext("replay"));
    return;
  }
  stats::MetricsSnapshot final_snapshot =
      snapshotter_ ? snapshotter_->WriteNow() : registry_.Snapshot();
  if (!snapshotter_) final_snapshot.taken_at = WallNow();
  ReportFrame report;
  report.report = AgentReport::FromRealtime(finished.value());
  report.final_metrics = final_snapshot;
  Send(EncodeReport(report));
  reported_ = true;
  pump_timer_.Cancel();
  stats_timer_.Cancel();
}

void AgentServer::RearmPump() {
  pump_timer_ = loop_.ScheduleAfter(options_.pump_interval, [this] {
    Pump();
    MaybeFinish();
    if (!stopped_ && !reported_) RearmPump();
  });
}

void AgentServer::SendStats() {
  if (stopped_ || reported_ || !conn_) return;
  stats::MetricsSnapshot snapshot =
      snapshotter_ ? snapshotter_->WriteNow() : registry_.Snapshot();
  if (!snapshotter_) snapshot.taken_at = WallNow();
  Send(EncodeStats(snapshot));
}

void AgentServer::RearmStats() {
  stats_timer_ = loop_.ScheduleAfter(hello_.stats_interval, [this] {
    SendStats();
    if (!stopped_ && !reported_) RearmStats();
  });
}

void AgentServer::Send(Bytes frame) {
  if (!conn_) return;
  Status sent = conn_->Send(frame);
  if (!sent.ok() && !stopped_) {
    Fail(sent.error().WithContext("send to controller"));
  }
}

void AgentServer::Fail(Status status) {
  if (stopped_) return;
  result_ = std::move(status);
  if (conn_) {
    // Best effort; the controller may already be gone.
    (void)conn_->Send(EncodeError(ErrorFrame{result_.error().message()}));
  }
  Shutdown();
}

void AgentServer::Shutdown() {
  if (stopped_) return;
  stopped_ = true;
  pump_timer_.Cancel();
  stats_timer_.Cancel();
  // Tear the pipeline down before stopping: joins distributor threads so
  // nothing touches the registry after the tool frees us.
  if (pipeline_ && !reported_) {
    pipeline_->CloseInput();
    (void)pipeline_->Finish();
  }
  pipeline_.reset();
  loop_.Stop();
}

}  // namespace ldp::distrib
