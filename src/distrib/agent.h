// Agent side of the distributed replay (paper §2.6): one ldp_replay_agent
// process hosts the unchanged Distributor/Querier stack behind the wire
// protocol. The controller connects, configures the agent with HELLO,
// synchronizes clocks, then streams CHUNK frames; the agent feeds records
// into a ReplayPipeline within the configured look-ahead of real time and
// an outstanding-query cap, acking each chunk only once fully fed — that
// ack is the controller's flow-control credit. After INPUT_DONE drains it
// sends one REPORT (scalars + final metrics snapshot) and waits for BYE.
#ifndef LDPLAYER_DISTRIB_AGENT_H
#define LDPLAYER_DISTRIB_AGENT_H

#include <deque>
#include <memory>
#include <string>

#include "distrib/protocol.h"
#include "net/sockets.h"
#include "replay/realtime.h"
#include "stats/metrics.h"

namespace ldp::distrib {

struct AgentOptions {
  // Port 0 = ephemeral; the tool prints the bound endpoint for scripts.
  Endpoint listen{IpAddress::Loopback(), 0};
  // Local metrics JSONL (with buckets, so files merge exactly). Empty =
  // no file; STATS frames flow to the controller either way.
  std::string metrics_path;
  // Cap on queries fed into the engine but not yet at a terminal outcome.
  // Bounds agent memory when the controller runs far ahead (fast mode).
  uint64_t max_outstanding = 16384;
  // Cadence of the feed/completion poll while a replay is live.
  NanoDuration pump_interval = Millis(5);
};

// One agent process: accepts exactly one controller connection and runs
// its lifecycle on the caller's event loop. Loop-thread-only.
class AgentServer {
 public:
  static Result<std::unique_ptr<AgentServer>> Start(net::EventLoop& loop,
                                                    AgentOptions options);
  ~AgentServer();
  AgentServer(const AgentServer&) = delete;
  AgentServer& operator=(const AgentServer&) = delete;

  Endpoint local() const { return listener_->local(); }

  // Meaningful after the loop stops: Ok when the run completed (REPORT
  // delivered, BYE seen or clean close), the failure otherwise.
  const Status& result() const { return result_; }

 private:
  AgentServer(net::EventLoop& loop, AgentOptions options)
      : loop_(loop), options_(std::move(options)) {}

  void OnAccept(std::unique_ptr<net::TcpConnection> conn);
  void OnData(std::span<const uint8_t> data);
  void OnClose(Status reason);
  Status HandleFrame(const Frame& frame);
  Status HandleHello(const Frame& frame);
  Status HandleStart(const Frame& frame);
  Status HandleChunk(const Frame& frame);

  // Feeds due staged records into the pipeline, acks finished chunks.
  void Pump();
  // CloseInput once everything staged is fed; REPORT once drained.
  void MaybeFinish();
  void RearmPump();
  void SendStats();
  void RearmStats();

  void Send(Bytes frame);
  // Terminal failure: records the error, best-effort ERROR frame, stops.
  void Fail(Status status);
  void Shutdown();

  net::EventLoop& loop_;
  AgentOptions options_;
  std::unique_ptr<net::TcpListener> listener_;
  std::unique_ptr<net::TcpConnection> conn_;
  FrameAssembler assembler_;

  stats::MetricsRegistry registry_;
  std::unique_ptr<stats::MetricsSnapshotter> snapshotter_;
  replay::RealtimeConfig config_;
  HelloFrame hello_;
  bool got_hello_ = false;

  NanoTime epoch_mono_ = 0;
  std::unique_ptr<replay::ReplayPipeline> pipeline_;

  struct StagedChunk {
    uint32_t seq = 0;
    std::vector<trace::QueryRecord> records;
    size_t cursor = 0;  // next un-fed record
  };
  std::deque<StagedChunk> staging_;
  bool input_done_ = false;
  uint64_t expected_total_ = 0;
  bool input_closed_ = false;
  bool reported_ = false;
  bool stopped_ = false;

  net::TimerHandle pump_timer_;
  net::TimerHandle stats_timer_;
  Status result_;
};

}  // namespace ldp::distrib

#endif  // LDPLAYER_DISTRIB_AGENT_H
