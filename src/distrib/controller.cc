#include "distrib/controller.h"

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/clock.h"
#include "net/event_loop.h"
#include "net/sockets.h"
#include "replay/hashring.h"

namespace ldp::distrib {
namespace {

enum class AgentState : uint8_t {
  kConnecting,
  kHello,    // HELLO sent, waiting for HELLO_ACK
  kClock,    // clock-sample burst in flight
  kReady,    // handshake complete, waiting for START
  kRunning,  // replaying
  kDone,     // REPORT received
  kFailed,
};

struct Agent {
  AgentStatus status;
  AgentState state = AgentState::kConnecting;
  std::unique_ptr<net::TcpConnection> conn;
  FrameAssembler assembler;

  // Clock handshake.
  int samples_done = 0;
  NanoTime ping_sent = 0;
  NanoDuration best_rtt = 0;
  bool have_sample = false;

  // Flow control.
  uint32_t next_seq = 0;
  uint32_t unacked = 0;
  bool paused = false;  // TCP write queue above the high watermark
  std::vector<trace::QueryRecord> chunk;  // partial, pre-rebased

  bool live() const {
    return state != AgentState::kFailed && conn != nullptr;
  }
};

class Controller {
 public:
  Controller(const std::vector<trace::QueryRecord>& records,
             const ControllerOptions& options)
      : records_(records),
        options_(options),
        trace_epoch_(records.empty() ? 0 : records.front().timestamp),
        ring_(options.ring_vnodes, options.config.seed) {}

  ~Controller() {
    if (metrics_file_) std::fclose(metrics_file_);
  }

  Result<DistributedReport> Run();

 private:
  Status ConnectAll();
  void OnConnected(size_t index, Status status);
  void OnData(size_t index, std::span<const uint8_t> data);
  void OnClose(size_t index, Status reason);
  Status HandleFrame(size_t index, const Frame& frame);
  void SendHello(size_t index);
  void SendClockPing(size_t index);
  Status FinishClock(size_t index, const ClockPongFrame& pong);
  // Fires once every agent left the handshake: drops connect-time
  // failures, builds the ring, broadcasts START.
  void MaybeStart();
  void PumpInput();
  bool CanShip(const Agent& a) const {
    return a.unacked < options_.credit_window && !a.paused;
  }
  void ShipChunk(size_t index);
  void FinishInput();
  size_t OwnerOf(IpAddress source);
  void WriteMergedRow(bool force);
  void RearmMergedRow();
  void AgentFailed(size_t index, std::string why, bool fatal);
  void FailRun(std::string why);

  const std::vector<trace::QueryRecord>& records_;
  const ControllerOptions& options_;
  const NanoTime trace_epoch_;

  std::unique_ptr<net::EventLoop> loop_;
  std::vector<Agent> agents_;
  size_t handshakes_pending_ = 0;
  bool started_ = false;
  NanoTime epoch_controller_ = 0;  // replay epoch, controller clock
  NanoTime run_started_wall_ = 0;

  replay::HashRing ring_;
  std::unordered_map<IpAddress, size_t> sticky_;
  size_t cursor_ = 0;          // next trace record to assign
  bool input_done_ = false;    // INPUT_DONE broadcast
  size_t reports_pending_ = 0;

  std::FILE* metrics_file_ = nullptr;
  stats::MetricsSnapshot last_merged_;
  bool have_merged_ = false;
  uint64_t merged_seq_ = 0;
  net::TimerHandle merged_timer_;
  net::TimerHandle handshake_timer_;

  bool failed_ = false;
  std::string fail_reason_;
};

Result<DistributedReport> Controller::Run() {
  if (records_.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty trace");
  }
  if (options_.agents.empty()) {
    return Error(ErrorCode::kInvalidArgument, "no agent endpoints");
  }
  if (options_.chunk_records == 0 || options_.credit_window == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "chunk_records and credit_window must be positive");
  }
  LDP_ASSIGN_OR_RETURN(loop_, net::EventLoop::Create());
  if (!options_.metrics_path.empty()) {
    metrics_file_ = std::fopen(options_.metrics_path.c_str(), "w");
    if (!metrics_file_) {
      return Error(ErrorCode::kIoError,
                   "open " + options_.metrics_path + " failed");
    }
  }
  run_started_wall_ = MonotonicNow();
  LDP_RETURN_IF_ERROR(ConnectAll());

  handshake_timer_ = loop_->ScheduleAfter(options_.handshake_timeout, [this] {
    if (!started_) FailRun("handshake timed out");
  });
  loop_->Run();

  DistributedReport out;
  out.total_records = records_.size();
  out.failed = failed_;
  out.error = fail_reason_;
  out.wall_duration = MonotonicNow() - run_started_wall_;
  std::vector<stats::MetricsSnapshot> finals;
  for (Agent& a : agents_) {
    if (a.status.completed) {
      out.merged.Accumulate(a.status.report);
      finals.push_back(a.status.final_metrics);
    } else if (a.status.has_stats) {
      // Partial accounting from the last STATS frame of a failed run.
      finals.push_back(a.status.last_stats);
    }
    out.agents.push_back(std::move(a.status));
  }
  if (!finals.empty()) {
    out.merged_metrics = stats::MergeSnapshots(finals);
  }
  return out;
}

Status Controller::ConnectAll() {
  agents_.resize(options_.agents.size());
  handshakes_pending_ = agents_.size();
  for (size_t i = 0; i < agents_.size(); ++i) {
    Agent& a = agents_[i];
    a.status.id = static_cast<uint16_t>(i);
    a.status.endpoint = options_.agents[i];
    auto conn = net::TcpConnection::Connect(
        *loop_, options_.agents[i],
        [this, i](Status status) { OnConnected(i, std::move(status)); },
        [this, i](std::span<const uint8_t> data) { OnData(i, data); },
        [this, i](Status reason) { OnClose(i, std::move(reason)); });
    if (!conn.ok()) {
      AgentFailed(i, conn.error().ToString(), /*fatal=*/false);
      continue;
    }
    a.conn = std::move(conn).value();
    a.conn->SetWriteWatermarks(
        options_.config.tcp_write_high_watermark,
        options_.config.tcp_write_low_watermark, [this, i](bool paused) {
          agents_[i].paused = paused;
          if (!paused) PumpInput();
        });
  }
  return Status::Ok();
}

void Controller::OnConnected(size_t index, Status status) {
  Agent& a = agents_[index];
  if (!status.ok()) {
    AgentFailed(index, "connect: " + status.error().ToString(),
                /*fatal=*/false);
    return;
  }
  a.status.connected = true;
  SendHello(index);
}

void Controller::SendHello(size_t index) {
  Agent& a = agents_[index];
  HelloFrame hello = HelloFrame::FromConfig(options_.config);
  hello.agent_id = a.status.id;
  hello.credit_window = options_.credit_window;
  hello.stats_interval = options_.stats_interval;
  a.state = AgentState::kHello;
  (void)a.conn->Send(EncodeHello(hello));
}

void Controller::SendClockPing(size_t index) {
  Agent& a = agents_[index];
  a.ping_sent = MonotonicNow();
  (void)a.conn->Send(EncodeClockPing(ClockPingFrame{.t1 = a.ping_sent}));
}

void Controller::OnData(size_t index, std::span<const uint8_t> data) {
  Agent& a = agents_[index];
  Status fed = a.assembler.Feed(data);
  if (!fed.ok()) {
    AgentFailed(index, "stream: " + fed.error().ToString(), /*fatal=*/true);
    return;
  }
  while (auto frame = a.assembler.Next()) {
    Status handled = HandleFrame(index, *frame);
    if (!handled.ok()) {
      AgentFailed(index, handled.error().ToString(), /*fatal=*/true);
      return;
    }
    if (a.state == AgentState::kFailed) return;
  }
}

Status Controller::HandleFrame(size_t index, const Frame& frame) {
  Agent& a = agents_[index];
  switch (frame.type) {
    case FrameType::kHelloAck: {
      LDP_ASSIGN_OR_RETURN(auto ack, DecodeHelloAck(frame));
      if (ack.version != kVersion) {
        return Error(ErrorCode::kUnsupported,
                     "agent speaks protocol v" + std::to_string(ack.version));
      }
      if (a.state != AgentState::kHello) {
        return Error(ErrorCode::kInvalidArgument, "unexpected HELLO_ACK");
      }
      a.state = AgentState::kClock;
      SendClockPing(index);
      return Status::Ok();
    }
    case FrameType::kClockPong: {
      LDP_ASSIGN_OR_RETURN(auto pong, DecodeClockPong(frame));
      if (a.state != AgentState::kClock) {
        return Error(ErrorCode::kInvalidArgument, "unexpected CLOCK_PONG");
      }
      return FinishClock(index, pong);
    }
    case FrameType::kChunkAck: {
      LDP_ASSIGN_OR_RETURN(auto ack, DecodeChunkAck(frame));
      if (a.unacked == 0) {
        return Error(ErrorCode::kInvalidArgument,
                     "CHUNK_ACK " + std::to_string(ack.seq) +
                         " with no chunk outstanding");
      }
      --a.unacked;
      PumpInput();
      return Status::Ok();
    }
    case FrameType::kStats: {
      LDP_ASSIGN_OR_RETURN(a.status.last_stats, DecodeStats(frame));
      a.status.has_stats = true;
      return Status::Ok();
    }
    case FrameType::kReport: {
      LDP_ASSIGN_OR_RETURN(auto report, DecodeReport(frame));
      a.status.report = report.report;
      a.status.final_metrics = std::move(report.final_metrics);
      a.status.has_report = true;
      a.status.completed = true;
      a.state = AgentState::kDone;
      (void)a.conn->Send(EncodeBye());
      if (--reports_pending_ == 0) {
        WriteMergedRow(/*force=*/true);
        loop_->Stop();
      }
      return Status::Ok();
    }
    case FrameType::kError: {
      LDP_ASSIGN_OR_RETURN(auto error, DecodeError(frame));
      return Error(ErrorCode::kInternal, "agent error: " + error.message);
    }
    default:
      return Error(ErrorCode::kParseError,
                   "unexpected frame type " +
                       std::to_string(static_cast<int>(frame.type)));
  }
}

Status Controller::FinishClock(size_t index, const ClockPongFrame& pong) {
  Agent& a = agents_[index];
  if (pong.t1 != a.ping_sent) {
    return Error(ErrorCode::kInvalidArgument, "CLOCK_PONG echoes wrong t1");
  }
  const NanoTime t4 = MonotonicNow();
  const NanoDuration rtt = t4 - pong.t1;
  if (!a.have_sample || rtt < a.best_rtt) {
    a.have_sample = true;
    a.best_rtt = rtt;
    // Midpoint estimate: the agent stamped t2 when our ping — sent at t1,
    // answered by t4 — was roughly halfway through its round trip.
    a.status.clock_offset = pong.t2 - (pong.t1 + t4) / 2;
    a.status.clock_rtt = rtt;
  }
  if (++a.samples_done < options_.clock_samples) {
    SendClockPing(index);
    return Status::Ok();
  }
  a.state = AgentState::kReady;
  if (--handshakes_pending_ == 0) MaybeStart();
  return Status::Ok();
}

void Controller::MaybeStart() {
  if (started_ || failed_) return;
  size_t ready = 0;
  for (Agent& a : agents_) {
    if (a.state == AgentState::kReady) ++ready;
  }
  if (ready == 0) {
    FailRun("no agents completed the handshake");
    return;
  }
  if (!options_.allow_partial_connect && ready != agents_.size()) {
    FailRun("an agent failed to connect and partial runs are disabled");
    return;
  }
  started_ = true;
  handshake_timer_.Cancel();
  // The ring is built over the survivors only: a connect-time failure
  // moves just that agent's sources (hashring_test's stability property).
  for (Agent& a : agents_) {
    if (a.state == AgentState::kReady) ring_.AddNode(a.status.id);
  }
  epoch_controller_ = MonotonicNow() + options_.start_delay;
  reports_pending_ = ready;
  for (size_t i = 0; i < agents_.size(); ++i) {
    Agent& a = agents_[i];
    if (a.state != AgentState::kReady) continue;
    a.state = AgentState::kRunning;
    (void)a.conn->Send(EncodeStart(StartFrame{
        .epoch_mono = epoch_controller_ + a.status.clock_offset}));
  }
  RearmMergedRow();
  PumpInput();
}

size_t Controller::OwnerOf(IpAddress source) {
  return replay::StickyAssign(sticky_, source, [this](IpAddress src) {
    // The ring is non-empty whenever input is flowing (≥1 ready agent).
    return static_cast<size_t>(*ring_.NodeFor(src));
  });
}

void Controller::PumpInput() {
  if (!started_ || failed_ || input_done_) return;
  while (cursor_ < records_.size()) {
    const trace::QueryRecord& record = records_[cursor_];
    const size_t owner = OwnerOf(record.src);
    Agent& a = agents_[owner];
    if (a.chunk.size() >= options_.chunk_records) {
      if (!CanShip(a)) return;  // stalled, in global trace order
      ShipChunk(owner);
    }
    trace::QueryRecord rebased = record;
    rebased.timestamp -= trace_epoch_;
    a.chunk.push_back(std::move(rebased));
    ++cursor_;
  }
  FinishInput();
}

void Controller::ShipChunk(size_t index) {
  Agent& a = agents_[index];
  ChunkFrame chunk;
  chunk.seq = a.next_seq++;
  chunk.records = std::move(a.chunk);
  a.chunk.clear();
  a.status.records_sent += chunk.records.size();
  ++a.status.chunks_sent;
  ++a.unacked;
  (void)a.conn->Send(EncodeChunk(chunk));
}

void Controller::FinishInput() {
  // Flush every partial chunk (waiting for credit where needed), then
  // broadcast INPUT_DONE. Zero-record agents get INPUT_DONE too — they
  // still owe a REPORT.
  for (size_t i = 0; i < agents_.size(); ++i) {
    Agent& a = agents_[i];
    if (a.state != AgentState::kRunning) continue;
    if (a.chunk.empty()) continue;
    if (!CanShip(a)) return;  // a CHUNK_ACK will re-enter via PumpInput
    ShipChunk(i);
  }
  input_done_ = true;
  for (Agent& a : agents_) {
    if (a.state != AgentState::kRunning) continue;
    (void)a.conn->Send(
        EncodeInputDone(InputDoneFrame{.total_records = a.status.records_sent}));
  }
}

void Controller::OnClose(size_t index, Status reason) {
  Agent& a = agents_[index];
  a.conn.reset();
  if (a.state == AgentState::kDone || a.state == AgentState::kFailed) return;
  std::string why = reason.ok() ? std::string("agent closed the connection")
                                : reason.error().ToString();
  AgentFailed(index, std::move(why), /*fatal=*/started_);
}

void Controller::AgentFailed(size_t index, std::string why, bool fatal) {
  Agent& a = agents_[index];
  const bool was_handshaking = a.state == AgentState::kConnecting ||
                               a.state == AgentState::kHello ||
                               a.state == AgentState::kClock;
  a.state = AgentState::kFailed;
  a.status.error = why;
  a.conn.reset();
  if (fatal) {
    // Mid-run death: never rebalanced — surviving agents cannot replay
    // the dead agent's clients without breaking outcome accounting.
    FailRun("agent " + std::to_string(a.status.id) + " (" +
            a.status.endpoint.ToString() + "): " + why);
    return;
  }
  if (was_handshaking && handshakes_pending_ > 0 &&
      --handshakes_pending_ == 0) {
    MaybeStart();
  }
}

void Controller::FailRun(std::string why) {
  if (failed_) return;
  failed_ = true;
  fail_reason_ = std::move(why);
  loop_->Stop();
}

void Controller::WriteMergedRow(bool force) {
  if (!metrics_file_) return;
  std::vector<stats::MetricsSnapshot> parts;
  for (const Agent& a : agents_) {
    if (a.status.completed) {
      parts.push_back(a.status.final_metrics);
    } else if (a.status.has_stats) {
      parts.push_back(a.status.last_stats);
    }
  }
  if (parts.empty() && !force) return;
  stats::MetricsSnapshot merged = stats::MergeSnapshots(parts);
  stats::JsonlRow row = stats::RowFromSnapshot(
      merged, have_merged_ ? &last_merged_ : nullptr, merged_seq_++,
      /*emit_buckets=*/true);
  std::string line = stats::FormatJsonlRow(row);
  std::fwrite(line.data(), 1, line.size(), metrics_file_);
  std::fputc('\n', metrics_file_);
  std::fflush(metrics_file_);
  last_merged_ = std::move(merged);
  have_merged_ = true;
}

void Controller::RearmMergedRow() {
  if (!metrics_file_) return;
  merged_timer_ = loop_->ScheduleAfter(options_.stats_interval, [this] {
    WriteMergedRow(/*force=*/false);
    RearmMergedRow();
  });
}

}  // namespace

std::vector<std::string> DistributedReport::ReconcileDiffs() const {
  std::vector<std::string> diffs;
  uint64_t shipped_total = 0;
  for (const AgentStatus& a : agents) {
    shipped_total += a.records_sent;
    if (!a.completed) {
      if (!a.error.empty() && a.records_sent > 0) {
        diffs.push_back("agent " + std::to_string(a.id) + ": no report (" +
                        a.error + ") after " +
                        std::to_string(a.records_sent) + " records shipped");
      }
      continue;
    }
    if (a.records_sent != a.report.sent) {
      diffs.push_back("agent " + std::to_string(a.id) + ": shipped " +
                      std::to_string(a.records_sent) + " records but sent " +
                      std::to_string(a.report.sent));
    }
    if (!a.report.OutcomesReconcile()) {
      diffs.push_back(
          "agent " + std::to_string(a.id) + ": sent " +
          std::to_string(a.report.sent) + " != answered " +
          std::to_string(a.report.answered) + " + timed_out " +
          std::to_string(a.report.timed_out) + " + send_failed " +
          std::to_string(a.report.send_failed));
    }
  }
  if (!failed && shipped_total != total_records) {
    diffs.push_back("controller shipped " + std::to_string(shipped_total) +
                    " of " + std::to_string(total_records) +
                    " trace records");
  }
  if (!failed && merged.sent != total_records) {
    diffs.push_back("merged sent " + std::to_string(merged.sent) +
                    " != trace records " + std::to_string(total_records));
  }
  return diffs;
}

Result<DistributedReport> RunDistributedReplay(
    const std::vector<trace::QueryRecord>& records,
    const ControllerOptions& options) {
  Controller controller(records, options);
  return controller.Run();
}

}  // namespace ldp::distrib
