// Controller side of the distributed replay (paper §2.6): connects to N
// ldp_replay_agent processes, pushes the replay configuration, measures
// per-agent clock offsets, broadcasts a synchronized START epoch, then
// streams the trace in chunks — each query routed to the agent owning its
// source address via the same consistent-hash stickiness the in-process
// Postman uses, so one simulated client never splits across agents.
//
// Flow control is credit-based: at most `credit_window` un-acked chunks
// per agent, and the trace cursor STALLS (in global trace order) when the
// next record's owner is out of credit — a slow agent slows the replay
// instead of growing anyone's memory. Agents that fail at connect time
// are dropped and the ring is built over the survivors; an agent dying
// MID-RUN is a terminal error (reported, never rebalanced — rebalancing
// would break the sent == answered + timed_out + send_failed accounting).
#ifndef LDPLAYER_DISTRIB_CONTROLLER_H
#define LDPLAYER_DISTRIB_CONTROLLER_H

#include <string>
#include <vector>

#include "distrib/protocol.h"
#include "replay/realtime.h"
#include "stats/metrics.h"
#include "trace/record.h"

namespace ldp::distrib {

struct ControllerOptions {
  // Agent endpoints (already listening). At least one must connect.
  std::vector<Endpoint> agents;
  // Replay parameters forwarded to every agent via HELLO. Local metrics
  // pointers are ignored; seed also keys the assignment ring.
  replay::RealtimeConfig config;

  uint32_t chunk_records = 512;
  uint32_t credit_window = 8;
  NanoDuration stats_interval = Seconds(1);
  // Merged (all-agents) metrics JSONL path; empty = none.
  std::string metrics_path;
  // Gap between the last handshake and the synchronized epoch.
  NanoDuration start_delay = Millis(200);
  // CLOCK_PING samples per agent; the best-RTT sample wins.
  int clock_samples = 5;
  size_t ring_vnodes = 64;
  // Keep going when some (not all) agents fail to connect.
  bool allow_partial_connect = true;
  // Give up if an agent's handshake stalls this long.
  NanoDuration handshake_timeout = Seconds(10);
};

// Per-agent outcome, kept even for agents that failed.
struct AgentStatus {
  uint16_t id = 0;
  Endpoint endpoint;
  bool connected = false;
  bool completed = false;      // REPORT received
  bool has_report = false;
  AgentReport report;
  stats::MetricsSnapshot final_metrics;
  stats::MetricsSnapshot last_stats;  // most recent STATS frame
  bool has_stats = false;
  std::string error;           // why this agent dropped / died
  NanoDuration clock_offset = 0;  // agent_mono - controller_mono
  NanoDuration clock_rtt = 0;     // RTT of the winning sample
  uint64_t chunks_sent = 0;
  uint64_t records_sent = 0;
};

struct DistributedReport {
  std::vector<AgentStatus> agents;
  // Sum over completed agents' reports; send window is the union.
  AgentReport merged;
  // MergeSnapshots over completed agents' final REPORT metrics.
  stats::MetricsSnapshot merged_metrics;
  uint64_t total_records = 0;
  NanoDuration wall_duration = 0;

  // Mid-run failure: partial stats above are still valid; `error` says
  // which agent died and why.
  bool failed = false;
  std::string error;

  // Cross-process reconciliation: every record the controller shipped
  // must appear in exactly one agent's `sent`, every sent query must have
  // a terminal outcome, and the merged totals must cover the whole trace.
  // Returns one human-readable line per violation (empty = reconciled).
  std::vector<std::string> ReconcileDiffs() const;
};

// Runs one distributed replay to completion (blocks; owns its own event
// loop). Records' timestamps must ascend. Returns an error only when the
// run could not start (no agents reachable, bad arguments); runtime
// failures come back as report.failed with partial accounting.
Result<DistributedReport> RunDistributedReplay(
    const std::vector<trace::QueryRecord>& records,
    const ControllerOptions& options);

}  // namespace ldp::distrib

#endif  // LDPLAYER_DISTRIB_CONTROLLER_H
