#include "distrib/protocol.h"

#include <algorithm>
#include <cstring>

#include "trace/binary.h"

namespace ldp::distrib {
namespace {

// Frame = u32 payload_length | payload, payload = u8 type | body.
Bytes Seal(FrameType type, ByteWriter&& body) {
  Bytes inner = std::move(body).Take();
  ByteWriter out(inner.size() + 5);
  out.WriteU32(static_cast<uint32_t>(inner.size() + 1));
  out.WriteU8(static_cast<uint8_t>(type));
  out.WriteBytes(inner);
  return std::move(out).Take();
}

Status CheckType(const Frame& frame, FrameType expected, const char* name) {
  if (frame.type != expected) {
    return Error(ErrorCode::kInvalidArgument,
                 std::string("frame is not a ") + name);
  }
  return Status::Ok();
}

Status CheckDrained(const ByteReader& reader, const char* name) {
  if (!reader.AtEnd()) {
    return Error(ErrorCode::kParseError,
                 std::string(name) + " frame has trailing bytes");
  }
  return Status::Ok();
}

void WriteDuration(ByteWriter& writer, NanoDuration value) {
  writer.WriteU64(static_cast<uint64_t>(value));
}

Result<NanoDuration> ReadDuration(ByteReader& reader) {
  LDP_ASSIGN_OR_RETURN(uint64_t raw, reader.ReadU64());
  return static_cast<NanoDuration>(raw);
}

void WriteName(ByteWriter& writer, const std::string& name) {
  writer.WriteU16(static_cast<uint16_t>(std::min<size_t>(name.size(), 0xffff)));
  writer.WriteString(name);
}

Result<std::string> ReadName(ByteReader& reader) {
  LDP_ASSIGN_OR_RETURN(uint16_t length, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(auto span, reader.ReadSpan(length));
  return std::string(reinterpret_cast<const char*>(span.data()), span.size());
}

// Entry-count sanity bound for decoded snapshot sections: a registry has
// tens of names, not millions — a huge count is a corrupt frame.
constexpr uint32_t kMaxSnapshotEntries = 65536;

}  // namespace

// --- HELLO ---

replay::RealtimeConfig HelloFrame::ToRealtimeConfig() const {
  replay::RealtimeConfig config;
  config.server = server;
  config.follow_trace_dst = follow_trace_dst;
  config.dst_port_override = dst_port_override;
  config.loopback_alias_dst = loopback_alias_dst;
  config.fast_mode = fast_mode;
  config.batch_udp = batch_udp;
  config.n_distributors = n_distributors;
  config.queriers_per_distributor = queriers_per_distributor;
  config.lookahead = lookahead;
  config.drain_grace = drain_grace;
  config.seed = seed;
  config.query_timeout = query_timeout;
  config.max_retransmits = max_retransmits;
  config.tcp_idle_timeout = tcp_idle_timeout;
  config.tcp_max_reconnects = tcp_max_reconnects;
  config.datapath = datapath;
  config.afpacket.interface = afpacket_interface;
  config.afpacket.peer_mac = afpacket_peer_mac;
  config.tls_port = tls_port;
  return config;
}

HelloFrame HelloFrame::FromConfig(const replay::RealtimeConfig& config) {
  HelloFrame hello;
  hello.server = config.server;
  hello.follow_trace_dst = config.follow_trace_dst;
  hello.dst_port_override = config.dst_port_override;
  hello.loopback_alias_dst = config.loopback_alias_dst;
  hello.fast_mode = config.fast_mode;
  hello.batch_udp = config.batch_udp;
  hello.n_distributors = static_cast<uint16_t>(config.n_distributors);
  hello.queriers_per_distributor =
      static_cast<uint16_t>(config.queriers_per_distributor);
  hello.lookahead = config.lookahead;
  hello.drain_grace = config.drain_grace;
  hello.seed = config.seed;
  hello.query_timeout = config.query_timeout;
  hello.max_retransmits = static_cast<uint16_t>(
      std::max(config.max_retransmits, 0));
  hello.tcp_idle_timeout = config.tcp_idle_timeout;
  hello.tcp_max_reconnects = static_cast<uint16_t>(
      std::max(config.tcp_max_reconnects, 0));
  hello.datapath = config.datapath;
  hello.afpacket_interface = config.afpacket.interface;
  hello.afpacket_peer_mac = config.afpacket.peer_mac;
  hello.tls_port = config.tls_port;
  return hello;
}

Bytes EncodeHello(const HelloFrame& hello) {
  ByteWriter body(96);
  body.WriteU32(kMagic);
  body.WriteU16(kVersion);
  body.WriteU16(hello.agent_id);
  body.WriteU32(hello.credit_window);
  WriteDuration(body, hello.stats_interval);
  body.WriteU32(hello.server.addr.value());
  body.WriteU16(hello.server.port);
  uint8_t flags = 0;
  if (hello.follow_trace_dst) flags |= 1;
  if (hello.loopback_alias_dst) flags |= 2;
  if (hello.fast_mode) flags |= 4;
  if (hello.batch_udp) flags |= 8;
  body.WriteU8(flags);
  body.WriteU16(hello.dst_port_override);
  body.WriteU16(hello.n_distributors);
  body.WriteU16(hello.queriers_per_distributor);
  WriteDuration(body, hello.lookahead);
  WriteDuration(body, hello.drain_grace);
  body.WriteU64(hello.seed);
  WriteDuration(body, hello.query_timeout);
  body.WriteU16(hello.max_retransmits);
  WriteDuration(body, hello.tcp_idle_timeout);
  body.WriteU16(hello.tcp_max_reconnects);
  // v2 tail — appended after every v1 field so a v1 decoder's CheckDrained
  // is the only thing that rejects it (and we accept tail-less frames).
  body.WriteU8(static_cast<uint8_t>(hello.datapath));
  WriteName(body, hello.afpacket_interface);
  WriteName(body, hello.afpacket_peer_mac);
  body.WriteU16(hello.tls_port);
  return Seal(FrameType::kHello, std::move(body));
}

Result<HelloFrame> DecodeHello(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kHello, "HELLO"));
  ByteReader reader(frame.body);
  LDP_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kMagic) {
    return Error(ErrorCode::kParseError, "HELLO magic mismatch");
  }
  LDP_ASSIGN_OR_RETURN(uint16_t version, reader.ReadU16());
  if (version == 0 || version > kVersion) {
    return Error(ErrorCode::kUnsupported,
                 "protocol version " + std::to_string(version) +
                     " (this build speaks up to " + std::to_string(kVersion) +
                     ")");
  }
  HelloFrame hello;
  LDP_ASSIGN_OR_RETURN(hello.agent_id, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(hello.credit_window, reader.ReadU32());
  LDP_ASSIGN_OR_RETURN(hello.stats_interval, ReadDuration(reader));
  LDP_ASSIGN_OR_RETURN(uint32_t addr, reader.ReadU32());
  hello.server.addr = IpAddress(addr);
  LDP_ASSIGN_OR_RETURN(hello.server.port, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadU8());
  hello.follow_trace_dst = (flags & 1) != 0;
  hello.loopback_alias_dst = (flags & 2) != 0;
  hello.fast_mode = (flags & 4) != 0;
  hello.batch_udp = (flags & 8) != 0;
  LDP_ASSIGN_OR_RETURN(hello.dst_port_override, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(hello.n_distributors, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(hello.queriers_per_distributor, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(hello.lookahead, ReadDuration(reader));
  LDP_ASSIGN_OR_RETURN(hello.drain_grace, ReadDuration(reader));
  LDP_ASSIGN_OR_RETURN(hello.seed, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(hello.query_timeout, ReadDuration(reader));
  LDP_ASSIGN_OR_RETURN(hello.max_retransmits, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(hello.tcp_idle_timeout, ReadDuration(reader));
  LDP_ASSIGN_OR_RETURN(hello.tcp_max_reconnects, reader.ReadU16());
  if (reader.remaining() > 0) {
    // v2 tail. An older controller sends a frame that ends here; the
    // defaults above (epoll, "lo", no TLS port) then stand.
    LDP_ASSIGN_OR_RETURN(uint8_t datapath, reader.ReadU8());
    if (datapath > static_cast<uint8_t>(net::DatapathKind::kAfPacket)) {
      return Error(ErrorCode::kParseError, "HELLO with unknown datapath");
    }
    hello.datapath = static_cast<net::DatapathKind>(datapath);
    LDP_ASSIGN_OR_RETURN(hello.afpacket_interface, ReadName(reader));
    LDP_ASSIGN_OR_RETURN(hello.afpacket_peer_mac, ReadName(reader));
    LDP_ASSIGN_OR_RETURN(hello.tls_port, reader.ReadU16());
  }
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "HELLO"));
  if (hello.n_distributors == 0 || hello.queriers_per_distributor == 0 ||
      hello.credit_window == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "HELLO with zero distributors/queriers/credits");
  }
  return hello;
}

// --- small fixed frames ---

Bytes EncodeHelloAck(const HelloAckFrame& ack) {
  ByteWriter body(4);
  body.WriteU16(ack.version);
  body.WriteU16(ack.agent_id);
  return Seal(FrameType::kHelloAck, std::move(body));
}

Result<HelloAckFrame> DecodeHelloAck(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kHelloAck, "HELLO_ACK"));
  ByteReader reader(frame.body);
  HelloAckFrame ack;
  LDP_ASSIGN_OR_RETURN(ack.version, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(ack.agent_id, reader.ReadU16());
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "HELLO_ACK"));
  return ack;
}

Bytes EncodeClockPing(const ClockPingFrame& ping) {
  ByteWriter body(8);
  body.WriteU64(static_cast<uint64_t>(ping.t1));
  return Seal(FrameType::kClockPing, std::move(body));
}

Result<ClockPingFrame> DecodeClockPing(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kClockPing, "CLOCK_PING"));
  ByteReader reader(frame.body);
  ClockPingFrame ping;
  LDP_ASSIGN_OR_RETURN(uint64_t t1, reader.ReadU64());
  ping.t1 = static_cast<NanoTime>(t1);
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "CLOCK_PING"));
  return ping;
}

Bytes EncodeClockPong(const ClockPongFrame& pong) {
  ByteWriter body(16);
  body.WriteU64(static_cast<uint64_t>(pong.t1));
  body.WriteU64(static_cast<uint64_t>(pong.t2));
  return Seal(FrameType::kClockPong, std::move(body));
}

Result<ClockPongFrame> DecodeClockPong(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kClockPong, "CLOCK_PONG"));
  ByteReader reader(frame.body);
  ClockPongFrame pong;
  LDP_ASSIGN_OR_RETURN(uint64_t t1, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(uint64_t t2, reader.ReadU64());
  pong.t1 = static_cast<NanoTime>(t1);
  pong.t2 = static_cast<NanoTime>(t2);
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "CLOCK_PONG"));
  return pong;
}

Bytes EncodeStart(const StartFrame& start) {
  ByteWriter body(8);
  body.WriteU64(static_cast<uint64_t>(start.epoch_mono));
  return Seal(FrameType::kStart, std::move(body));
}

Result<StartFrame> DecodeStart(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kStart, "START"));
  ByteReader reader(frame.body);
  StartFrame start;
  LDP_ASSIGN_OR_RETURN(uint64_t epoch, reader.ReadU64());
  start.epoch_mono = static_cast<NanoTime>(epoch);
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "START"));
  return start;
}

Bytes EncodeChunk(const ChunkFrame& chunk) {
  ByteWriter body(64 + chunk.records.size() * 64);
  body.WriteU32(chunk.seq);
  body.WriteU32(static_cast<uint32_t>(chunk.records.size()));
  for (const auto& record : chunk.records) {
    trace::EncodeBinaryRecord(record, body);
  }
  return Seal(FrameType::kChunk, std::move(body));
}

Result<ChunkFrame> DecodeChunk(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kChunk, "CHUNK"));
  ByteReader reader(frame.body);
  ChunkFrame chunk;
  LDP_ASSIGN_OR_RETURN(chunk.seq, reader.ReadU32());
  LDP_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > kMaxChunkRecords) {
    return Error(ErrorCode::kParseError,
                 "CHUNK claims " + std::to_string(count) + " records");
  }
  // `count` is attacker-controlled; size the reserve by what the body could
  // actually hold (a binary trace record is at least 33 bytes on the wire)
  // so a tiny frame cannot demand a gigantic allocation up front.
  chunk.records.reserve(
      std::min<size_t>(count, reader.remaining() / 33 + 1));
  for (uint32_t i = 0; i < count; ++i) {
    LDP_ASSIGN_OR_RETURN(auto record, trace::DecodeBinaryRecord(reader));
    chunk.records.push_back(std::move(record));
  }
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "CHUNK"));
  return chunk;
}

Bytes EncodeChunkAck(const ChunkAckFrame& ack) {
  ByteWriter body(4);
  body.WriteU32(ack.seq);
  return Seal(FrameType::kChunkAck, std::move(body));
}

Result<ChunkAckFrame> DecodeChunkAck(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kChunkAck, "CHUNK_ACK"));
  ByteReader reader(frame.body);
  ChunkAckFrame ack;
  LDP_ASSIGN_OR_RETURN(ack.seq, reader.ReadU32());
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "CHUNK_ACK"));
  return ack;
}

Bytes EncodeInputDone(const InputDoneFrame& done) {
  ByteWriter body(8);
  body.WriteU64(done.total_records);
  return Seal(FrameType::kInputDone, std::move(body));
}

Result<InputDoneFrame> DecodeInputDone(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kInputDone, "INPUT_DONE"));
  ByteReader reader(frame.body);
  InputDoneFrame done;
  LDP_ASSIGN_OR_RETURN(done.total_records, reader.ReadU64());
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "INPUT_DONE"));
  return done;
}

// --- metrics snapshot codec ---

void EncodeSnapshot(const stats::MetricsSnapshot& snapshot,
                    ByteWriter& writer) {
  writer.WriteU64(static_cast<uint64_t>(snapshot.taken_at));
  writer.WriteU32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    WriteName(writer, name);
    writer.WriteU64(value);
  }
  writer.WriteU32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    WriteName(writer, name);
    writer.WriteU64(static_cast<uint64_t>(value));
  }
  writer.WriteU32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, h] : snapshot.histograms) {
    WriteName(writer, name);
    writer.WriteU64(h.count);
    writer.WriteU64(h.sum);
    writer.WriteU64(h.max);
    uint32_t nonzero = 0;
    for (uint64_t b : h.buckets) nonzero += b != 0 ? 1 : 0;
    writer.WriteU32(nonzero);
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      writer.WriteU32(static_cast<uint32_t>(i));
      writer.WriteU64(h.buckets[i]);
    }
  }
}

Result<stats::MetricsSnapshot> DecodeSnapshot(ByteReader& reader) {
  stats::MetricsSnapshot snapshot;
  LDP_ASSIGN_OR_RETURN(uint64_t taken_at, reader.ReadU64());
  snapshot.taken_at = static_cast<NanoTime>(taken_at);
  LDP_ASSIGN_OR_RETURN(uint32_t n_counters, reader.ReadU32());
  if (n_counters > kMaxSnapshotEntries) {
    return Error(ErrorCode::kParseError, "snapshot counter count");
  }
  // As in DecodeChunk: bound each reserve by the bytes actually present
  // (name length prefix + u64 value = 10 bytes minimum per entry).
  snapshot.counters.reserve(
      std::min<size_t>(n_counters, reader.remaining() / 10 + 1));
  for (uint32_t i = 0; i < n_counters; ++i) {
    LDP_ASSIGN_OR_RETURN(std::string name, ReadName(reader));
    LDP_ASSIGN_OR_RETURN(uint64_t value, reader.ReadU64());
    snapshot.counters.emplace_back(std::move(name), value);
  }
  LDP_ASSIGN_OR_RETURN(uint32_t n_gauges, reader.ReadU32());
  if (n_gauges > kMaxSnapshotEntries) {
    return Error(ErrorCode::kParseError, "snapshot gauge count");
  }
  snapshot.gauges.reserve(
      std::min<size_t>(n_gauges, reader.remaining() / 10 + 1));
  for (uint32_t i = 0; i < n_gauges; ++i) {
    LDP_ASSIGN_OR_RETURN(std::string name, ReadName(reader));
    LDP_ASSIGN_OR_RETURN(uint64_t value, reader.ReadU64());
    snapshot.gauges.emplace_back(std::move(name),
                                 static_cast<int64_t>(value));
  }
  LDP_ASSIGN_OR_RETURN(uint32_t n_histograms, reader.ReadU32());
  if (n_histograms > kMaxSnapshotEntries) {
    return Error(ErrorCode::kParseError, "snapshot histogram count");
  }
  snapshot.histograms.reserve(
      std::min<size_t>(n_histograms, reader.remaining() / 30 + 1));
  for (uint32_t i = 0; i < n_histograms; ++i) {
    LDP_ASSIGN_OR_RETURN(std::string name, ReadName(reader));
    stats::HistogramSnapshot h;
    LDP_ASSIGN_OR_RETURN(h.count, reader.ReadU64());
    LDP_ASSIGN_OR_RETURN(h.sum, reader.ReadU64());
    LDP_ASSIGN_OR_RETURN(h.max, reader.ReadU64());
    LDP_ASSIGN_OR_RETURN(uint32_t nonzero, reader.ReadU32());
    if (nonzero > stats::LogHistogram::kNumBuckets) {
      return Error(ErrorCode::kParseError, "snapshot bucket count");
    }
    h.buckets.resize(stats::LogHistogram::kNumBuckets, 0);
    for (uint32_t j = 0; j < nonzero; ++j) {
      LDP_ASSIGN_OR_RETURN(uint32_t index, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
      if (index >= stats::LogHistogram::kNumBuckets) {
        return Error(ErrorCode::kParseError, "snapshot bucket index");
      }
      h.buckets[index] = count;
    }
    snapshot.histograms.emplace_back(std::move(name), std::move(h));
  }
  return snapshot;
}

Bytes EncodeStats(const stats::MetricsSnapshot& snapshot) {
  ByteWriter body(512);
  EncodeSnapshot(snapshot, body);
  return Seal(FrameType::kStats, std::move(body));
}

Result<stats::MetricsSnapshot> DecodeStats(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kStats, "STATS"));
  ByteReader reader(frame.body);
  LDP_ASSIGN_OR_RETURN(auto snapshot, DecodeSnapshot(reader));
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "STATS"));
  return snapshot;
}

// --- REPORT ---

AgentReport AgentReport::FromRealtime(const replay::RealtimeReport& report) {
  AgentReport out;
  out.sent = report.queries_sent;
  out.answered = report.answered;
  out.timed_out = report.timed_out;
  out.send_failed = report.send_failed;
  out.retransmits = report.retransmits;
  out.id_collisions = report.id_collisions;
  out.tcp_reconnects = report.tcp_reconnects;
  out.tcp_idle_closes = report.tcp_idle_closes;
  out.wall_duration = report.wall_duration;
  for (const auto& send : report.sends) {
    if (send.sent == 0 ||
        send.state == replay::SendOutcome::State::kSendFailed) {
      continue;
    }
    if (out.first_send < 0 || send.sent < out.first_send) {
      out.first_send = send.sent;
    }
    out.last_send = std::max(out.last_send, send.sent);
  }
  return out;
}

AgentReport& AgentReport::Accumulate(const AgentReport& other) {
  sent += other.sent;
  answered += other.answered;
  timed_out += other.timed_out;
  send_failed += other.send_failed;
  retransmits += other.retransmits;
  id_collisions += other.id_collisions;
  tcp_reconnects += other.tcp_reconnects;
  tcp_idle_closes += other.tcp_idle_closes;
  wall_duration = std::max(wall_duration, other.wall_duration);
  if (other.first_send >= 0 &&
      (first_send < 0 || other.first_send < first_send)) {
    first_send = other.first_send;
  }
  last_send = std::max(last_send, other.last_send);
  return *this;
}

bool AgentReport::OutcomesReconcile() const {
  return sent == answered + timed_out + send_failed;
}

Bytes EncodeReport(const ReportFrame& report) {
  ByteWriter body(512);
  const AgentReport& r = report.report;
  body.WriteU64(r.sent);
  body.WriteU64(r.answered);
  body.WriteU64(r.timed_out);
  body.WriteU64(r.send_failed);
  body.WriteU64(r.retransmits);
  body.WriteU64(r.id_collisions);
  body.WriteU64(r.tcp_reconnects);
  body.WriteU64(r.tcp_idle_closes);
  body.WriteU64(static_cast<uint64_t>(r.wall_duration));
  body.WriteU64(static_cast<uint64_t>(r.first_send));
  body.WriteU64(static_cast<uint64_t>(r.last_send));
  EncodeSnapshot(report.final_metrics, body);
  return Seal(FrameType::kReport, std::move(body));
}

Result<ReportFrame> DecodeReport(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kReport, "REPORT"));
  ByteReader reader(frame.body);
  ReportFrame out;
  AgentReport& r = out.report;
  LDP_ASSIGN_OR_RETURN(r.sent, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.answered, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.timed_out, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.send_failed, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.retransmits, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.id_collisions, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.tcp_reconnects, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(r.tcp_idle_closes, reader.ReadU64());
  LDP_ASSIGN_OR_RETURN(uint64_t wall, reader.ReadU64());
  r.wall_duration = static_cast<NanoDuration>(wall);
  LDP_ASSIGN_OR_RETURN(uint64_t first, reader.ReadU64());
  r.first_send = static_cast<NanoTime>(first);
  LDP_ASSIGN_OR_RETURN(uint64_t last, reader.ReadU64());
  r.last_send = static_cast<NanoTime>(last);
  LDP_ASSIGN_OR_RETURN(out.final_metrics, DecodeSnapshot(reader));
  LDP_RETURN_IF_ERROR(CheckDrained(reader, "REPORT"));
  return out;
}

Bytes EncodeError(const ErrorFrame& error) {
  ByteWriter body(error.message.size());
  body.WriteString(error.message);
  return Seal(FrameType::kError, std::move(body));
}

Result<ErrorFrame> DecodeError(const Frame& frame) {
  LDP_RETURN_IF_ERROR(CheckType(frame, FrameType::kError, "ERROR"));
  ErrorFrame error;
  error.message.assign(reinterpret_cast<const char*>(frame.body.data()),
                       frame.body.size());
  return error;
}

Bytes EncodeBye() { return Seal(FrameType::kBye, ByteWriter(0)); }

// --- FrameAssembler ---

Status FrameAssembler::Feed(std::span<const uint8_t> data) {
  if (poisoned_.has_value()) return *poisoned_;
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  while (buffer_.size() - consumed_ >= 4) {
    const uint8_t* head = buffer_.data() + consumed_;
    uint32_t length = (uint32_t{head[0]} << 24) | (uint32_t{head[1]} << 16) |
                      (uint32_t{head[2]} << 8) | uint32_t{head[3]};
    if (length == 0 || length > kMaxFramePayload) {
      poisoned_ = Error(ErrorCode::kParseError,
                        "frame length " + std::to_string(length) +
                            " outside [1, " +
                            std::to_string(kMaxFramePayload) + "]");
      return *poisoned_;
    }
    if (buffer_.size() - consumed_ < 4 + static_cast<size_t>(length)) break;
    Frame frame;
    frame.type = static_cast<FrameType>(head[4]);
    frame.body.assign(head + 5, head + 4 + length);
    ready_.push_back(std::move(frame));
    consumed_ += 4 + static_cast<size_t>(length);
  }
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Status::Ok();
}

std::optional<Frame> FrameAssembler::Next() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

}  // namespace ldp::distrib
