// Wire protocol between the replay controller and ldp_replay_agent
// processes (paper §2.6: controller → distributor/querier hosts). One TCP
// stream per agent carries length-prefixed frames:
//
//   u32 payload_length | u8 type | body
//
// Lifecycle: HELLO (config + credit window) / HELLO_ACK, a CLOCK_PING/
// CLOCK_PONG burst for per-agent clock offsets, START (the synchronized
// replay epoch, already translated into the agent's monotonic clock),
// then CHUNK frames of binary trace records flowing controller→agent
// against CHUNK_ACK credits flowing back, periodic STATS snapshots,
// INPUT_DONE, one final REPORT after the agent drains, and BYE. ERROR may
// replace anything and is terminal.
//
// Credit rule: the controller keeps at most `credit_window` un-acked
// CHUNKs per agent; the agent acks a chunk only after feeding ALL of its
// records into the replay engine (which it does within the configured
// look-ahead of real time and an outstanding-query cap) — so a slow agent
// stalls the controller's trace cursor instead of growing anyone's heap.
#ifndef LDPLAYER_DISTRIB_PROTOCOL_H
#define LDPLAYER_DISTRIB_PROTOCOL_H

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "replay/realtime.h"
#include "stats/metrics.h"
#include "trace/record.h"

namespace ldp::distrib {

inline constexpr uint32_t kMagic = 0x4c445044;  // "LDPD"
// v2 appends the datapath/TLS tail to HELLO. Decoders accept any version
// up to their own: the tail is optional on the wire, so a v1 HELLO (no
// tail) decodes with the defaults and a v1 agent simply rejects v2.
inline constexpr uint16_t kVersion = 2;
// A frame larger than this is a corrupt stream, not a big chunk: even a
// 4096-record chunk of maximal records stays well under it.
inline constexpr uint32_t kMaxFramePayload = 8u << 20;
inline constexpr uint32_t kMaxChunkRecords = 1u << 20;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kClockPing = 3,
  kClockPong = 4,
  kStart = 5,
  kChunk = 6,
  kChunkAck = 7,
  kInputDone = 8,
  kStats = 9,
  kReport = 10,
  kError = 11,
  kBye = 12,
};

// --- frame bodies ---

// Controller → agent. Carries the replay configuration the agent builds
// its RealtimeConfig from (everything except host-local concerns like
// metrics file paths) plus the flow-control parameters.
struct HelloFrame {
  uint16_t agent_id = 0;
  uint32_t credit_window = 8;     // max un-acked chunks
  NanoDuration stats_interval = Seconds(1);

  Endpoint server;
  bool follow_trace_dst = false;
  uint16_t dst_port_override = 0;
  bool loopback_alias_dst = false;
  bool fast_mode = false;
  bool batch_udp = true;
  uint16_t n_distributors = 1;
  uint16_t queriers_per_distributor = 3;
  NanoDuration lookahead = Millis(500);
  NanoDuration drain_grace = Millis(500);
  uint64_t seed = 99;
  NanoDuration query_timeout = Seconds(2);
  uint16_t max_retransmits = 0;
  NanoDuration tcp_idle_timeout = 0;
  uint16_t tcp_max_reconnects = 3;

  // --- v2 tail (optional on the wire; these defaults apply when a v1
  // frame omits it) ---
  // Querier datapath on the agent host: kernel sockets or AF_PACKET rings
  // (plus the two options that must match the agent's interface).
  net::DatapathKind datapath = net::DatapathKind::kEpoll;
  std::string afpacket_interface = "lo";
  std::string afpacket_peer_mac;
  // DoT port for kTls records (0 = each record's own target port).
  uint16_t tls_port = 0;

  // The agent-side RealtimeConfig (metrics pointers left unset).
  replay::RealtimeConfig ToRealtimeConfig() const;
  static HelloFrame FromConfig(const replay::RealtimeConfig& config);
};

struct HelloAckFrame {
  uint16_t version = kVersion;
  uint16_t agent_id = 0;
};

struct ClockPingFrame {
  NanoTime t1 = 0;  // controller monotonic at send
};

struct ClockPongFrame {
  NanoTime t1 = 0;  // echoed
  NanoTime t2 = 0;  // agent monotonic at receive
};

struct StartFrame {
  // The synchronized replay epoch expressed in the AGENT's monotonic
  // clock (the controller applies the measured offset before sending).
  NanoTime epoch_mono = 0;
};

struct ChunkFrame {
  uint32_t seq = 0;
  // Record timestamps are pre-rebased: nanoseconds after the replay
  // epoch, not absolute trace time.
  std::vector<trace::QueryRecord> records;
};

struct ChunkAckFrame {
  uint32_t seq = 0;
};

struct InputDoneFrame {
  uint64_t total_records = 0;
};

// Final per-agent outcome accounting (the RealtimeReport scalars; the
// per-query SendOutcome vector stays on the agent).
struct AgentReport {
  uint64_t sent = 0;
  uint64_t answered = 0;
  uint64_t timed_out = 0;
  uint64_t send_failed = 0;
  uint64_t retransmits = 0;
  uint64_t id_collisions = 0;
  uint64_t tcp_reconnects = 0;
  uint64_t tcp_idle_closes = 0;
  NanoDuration wall_duration = 0;
  // First/last send instants relative to the replay epoch (-1 = none
  // reached the wire). Epochs are synchronized across agents, so the
  // controller can union these into a global send window.
  NanoTime first_send = -1;
  NanoTime last_send = -1;

  static AgentReport FromRealtime(const replay::RealtimeReport& report);

  AgentReport& Accumulate(const AgentReport& other);
  // sent == answered + timed_out + send_failed (the PR 2 invariant).
  bool OutcomesReconcile() const;
};

struct ReportFrame {
  AgentReport report;
  stats::MetricsSnapshot final_metrics;  // with buckets
};

struct ErrorFrame {
  std::string message;
};

// --- encode / decode ---

struct Frame {
  FrameType type;
  Bytes body;
};

Bytes EncodeHello(const HelloFrame& hello);
Bytes EncodeHelloAck(const HelloAckFrame& ack);
Bytes EncodeClockPing(const ClockPingFrame& ping);
Bytes EncodeClockPong(const ClockPongFrame& pong);
Bytes EncodeStart(const StartFrame& start);
Bytes EncodeChunk(const ChunkFrame& chunk);
Bytes EncodeChunkAck(const ChunkAckFrame& ack);
Bytes EncodeInputDone(const InputDoneFrame& done);
Bytes EncodeStats(const stats::MetricsSnapshot& snapshot);
Bytes EncodeReport(const ReportFrame& report);
Bytes EncodeError(const ErrorFrame& error);
Bytes EncodeBye();

Result<HelloFrame> DecodeHello(const Frame& frame);
Result<HelloAckFrame> DecodeHelloAck(const Frame& frame);
Result<ClockPingFrame> DecodeClockPing(const Frame& frame);
Result<ClockPongFrame> DecodeClockPong(const Frame& frame);
Result<StartFrame> DecodeStart(const Frame& frame);
Result<ChunkFrame> DecodeChunk(const Frame& frame);
Result<ChunkAckFrame> DecodeChunkAck(const Frame& frame);
Result<InputDoneFrame> DecodeInputDone(const Frame& frame);
Result<stats::MetricsSnapshot> DecodeStats(const Frame& frame);
Result<ReportFrame> DecodeReport(const Frame& frame);
Result<ErrorFrame> DecodeError(const Frame& frame);

// Metrics snapshot wire form (shared by STATS and REPORT): counters,
// gauges, and histograms with sparse non-zero buckets, so the controller
// can merge per-agent distributions exactly.
void EncodeSnapshot(const stats::MetricsSnapshot& snapshot,
                    ByteWriter& writer);
Result<stats::MetricsSnapshot> DecodeSnapshot(ByteReader& reader);

// Incremental length-prefix reassembly with hard caps: Feed raw stream
// bytes, pop complete frames with Next. A length over kMaxFramePayload
// (or an empty payload — every frame has at least its type byte) poisons
// the assembler and fails the session.
class FrameAssembler {
 public:
  Status Feed(std::span<const uint8_t> data);
  std::optional<Frame> Next();

 private:
  Bytes buffer_;
  size_t consumed_ = 0;
  std::deque<Frame> ready_;
  std::optional<Error> poisoned_;
};

}  // namespace ldp::distrib

#endif  // LDPLAYER_DISTRIB_PROTOCOL_H
