#include "distrib/spawn.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace ldp::distrib {
namespace {

constexpr char kReadyPrefix[] = "agent listening on ";

void KillAndReap(AgentProcess& agent) {
  if (agent.pid <= 0) return;
  ::kill(agent.pid, SIGTERM);
  int status = 0;
  ::waitpid(agent.pid, &status, 0);
  agent.pid = -1;
}

// Reads the child's stdout until the ready line appears (children print it
// first and flush). Returns the parsed endpoint.
Result<Endpoint> AwaitReadyLine(int fd, int64_t timeout_ms) {
  std::string buffered;
  for (;;) {
    // A completed line yet?
    size_t eol = buffered.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffered.substr(0, eol);
      if (line.rfind(kReadyPrefix, 0) == 0) {
        return Endpoint::Parse(line.substr(sizeof(kReadyPrefix) - 1));
      }
      buffered.erase(0, eol + 1);  // tolerate other startup chatter
      continue;
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready == 0) {
      return Error(ErrorCode::kTimeout, "agent never printed its endpoint");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Error(ErrorCode::kIoError,
                   std::string("poll: ") + std::strerror(errno));
    }
    char chunk[512];
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Error(ErrorCode::kIoError,
                   std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Error(ErrorCode::kConnectionClosed,
                   "agent exited before printing its endpoint");
    }
    buffered.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

std::string SiblingBinary(const std::string& name) {
  char self[4096];
  ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) return name;
  self[n] = '\0';
  std::string path(self);
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return name;
  return path.substr(0, slash + 1) + name;
}

Result<std::vector<AgentProcess>> SpawnLocalAgents(
    const std::string& binary, size_t n, const SpawnOptions& options) {
  std::vector<AgentProcess> agents;
  auto fail = [&agents](Error error) {
    StopAgents(agents);
    return error;
  };
  for (size_t i = 0; i < n; ++i) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return fail(Error(ErrorCode::kIoError,
                        std::string("pipe: ") + std::strerror(errno)));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return fail(Error(ErrorCode::kIoError,
                        std::string("fork: ") + std::strerror(errno)));
    }
    if (pid == 0) {
      // Child: stdout becomes the pipe, then exec the agent.
      ::close(pipe_fds[0]);
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[1]);
      std::vector<std::string> args;
      args.push_back(binary);
      args.push_back("--listen=127.0.0.1:0");
      for (const std::string& extra : options.extra_args) {
        args.push_back(extra);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(binary.c_str(), argv.data());
      // Exec failed; the parent sees EOF on the pipe.
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    AgentProcess agent;
    agent.pid = pid;
    Result<Endpoint> endpoint =
        AwaitReadyLine(pipe_fds[0], options.ready_timeout_ms);
    ::close(pipe_fds[0]);
    if (!endpoint.ok()) {
      KillAndReap(agent);
      return fail(endpoint.error().WithContext(
          "agent " + std::to_string(i) + " (" + binary + ")"));
    }
    agent.endpoint = endpoint.value();
    agents.push_back(agent);
  }
  return agents;
}

void StopAgents(std::vector<AgentProcess>& agents) {
  for (AgentProcess& agent : agents) KillAndReap(agent);
}

bool WaitAgents(std::vector<AgentProcess>& agents, int64_t grace_ms) {
  bool all_clean = true;
  for (AgentProcess& agent : agents) {
    if (agent.pid <= 0) continue;
    // Poll-wait with the grace budget, then escalate to SIGTERM.
    int status = 0;
    int64_t waited_ms = 0;
    pid_t got = 0;
    while ((got = ::waitpid(agent.pid, &status, WNOHANG)) == 0 &&
           waited_ms < grace_ms) {
      struct timespec ts = {0, 20 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
      waited_ms += 20;
    }
    if (got == 0) {
      all_clean = false;
      KillAndReap(agent);
      continue;
    }
    agent.pid = -1;
    if (got < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      all_clean = false;
    }
  }
  return all_clean;
}

}  // namespace ldp::distrib
