// Local agent process management for `ldp_replay_trace --agents=N`: fork
// and exec N ldp_replay_agent processes on loopback ephemeral ports and
// collect the endpoint each one prints. Multi-host runs skip this file
// entirely and pass --connect with already-running agents.
#ifndef LDPLAYER_DISTRIB_SPAWN_H
#define LDPLAYER_DISTRIB_SPAWN_H

#include <string>
#include <vector>

#include "common/ip.h"
#include "common/result.h"

namespace ldp::distrib {

// One spawned ldp_replay_agent child.
struct AgentProcess {
  int pid = -1;
  Endpoint endpoint;  // parsed from the child's "agent listening on" line
};

struct SpawnOptions {
  // Extra argv entries appended after --listen (e.g. --metrics-out=...
  // with a %d expanded per agent index by the caller beforehand).
  std::vector<std::string> extra_args;
  // How long to wait for each child to print its endpoint.
  int64_t ready_timeout_ms = 10000;
};

// Path of this executable's directory + `name` — where sibling tools live
// in the build tree. Falls back to `name` alone (PATH lookup) on error.
std::string SiblingBinary(const std::string& name);

// Spawns `n` agents from `binary`, each listening on 127.0.0.1:ephemeral,
// and waits until every one has printed its endpoint. On any failure the
// already-started children are killed before the error returns.
Result<std::vector<AgentProcess>> SpawnLocalAgents(const std::string& binary,
                                                   size_t n,
                                                   const SpawnOptions& options);

// SIGTERMs (then reaps) every child that is still running. Safe to call
// after a normal run: already-exited children are just reaped.
void StopAgents(std::vector<AgentProcess>& agents);

// Reaps children expected to have exited on their own (the normal path —
// agents exit after BYE). Returns false if any had a non-zero status or
// needed a SIGTERM after `grace_ms`.
bool WaitAgents(std::vector<AgentProcess>& agents, int64_t grace_ms = 5000);

}  // namespace ldp::distrib

#endif  // LDPLAYER_DISTRIB_SPAWN_H
