#include "dns/framing.h"

namespace ldp::dns {

Result<Bytes> FrameMessage(std::span<const uint8_t> wire) {
  if (wire.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot frame an empty message");
  }
  if (wire.size() > kMaxFramedMessage) {
    return Error(ErrorCode::kOutOfRange,
                 "message of " + std::to_string(wire.size()) +
                     " bytes exceeds the 65535-byte stream frame limit");
  }
  Bytes out;
  out.reserve(wire.size() + 2);
  out.push_back(static_cast<uint8_t>(wire.size() >> 8));
  out.push_back(static_cast<uint8_t>(wire.size()));
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

Status StreamAssembler::Feed(std::span<const uint8_t> chunk) {
  if (poisoned_.has_value()) return *poisoned_;
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  size_t cursor = 0;
  while (buffer_.size() - cursor >= 2) {
    size_t len = (static_cast<size_t>(buffer_[cursor]) << 8) |
                 buffer_[cursor + 1];
    if (len == 0) {
      // Discard the bytes consumed so far before failing, so a caller that
      // (incorrectly) keeps feeding cannot replay already-delivered
      // messages; poisoning makes the failure sticky either way.
      buffer_.erase(buffer_.begin(), buffer_.begin() + cursor);
      poisoned_ = Error(ErrorCode::kParseError, "zero-length DNS frame");
      return *poisoned_;
    }
    if (buffer_.size() - cursor - 2 < len) break;
    if (ready_.size() >= limits_.max_ready_messages ||
        ready_bytes_ + len > limits_.max_ready_bytes) {
      ++dropped_messages_;
      if (drop_counter_ != nullptr) {
        drop_counter_->fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      ready_.emplace_back(buffer_.begin() + cursor + 2,
                          buffer_.begin() + cursor + 2 + len);
      ready_bytes_ += len;
    }
    cursor += 2 + len;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + cursor);
  return Status::Ok();
}

std::optional<Bytes> StreamAssembler::NextMessage() {
  if (ready_.empty()) return std::nullopt;
  Bytes out = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= out.size();
  return out;
}

}  // namespace ldp::dns
