#include "dns/framing.h"

#include <optional>

namespace ldp::dns {

Bytes FrameMessage(std::span<const uint8_t> wire) {
  Bytes out;
  out.reserve(wire.size() + 2);
  out.push_back(static_cast<uint8_t>(wire.size() >> 8));
  out.push_back(static_cast<uint8_t>(wire.size()));
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

Status StreamAssembler::Feed(std::span<const uint8_t> chunk) {
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  size_t cursor = 0;
  while (buffer_.size() - cursor >= 2) {
    size_t len = (static_cast<size_t>(buffer_[cursor]) << 8) |
                 buffer_[cursor + 1];
    if (len == 0) {
      return Error(ErrorCode::kParseError, "zero-length DNS frame");
    }
    if (buffer_.size() - cursor - 2 < len) break;
    ready_.emplace_back(buffer_.begin() + cursor + 2,
                        buffer_.begin() + cursor + 2 + len);
    cursor += 2 + len;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + cursor);
  return Status::Ok();
}

std::optional<Bytes> StreamAssembler::NextMessage() {
  if (ready_.empty()) return std::nullopt;
  Bytes out = std::move(ready_.front());
  ready_.pop_front();
  return out;
}

}  // namespace ldp::dns
