// DNS-over-stream framing (RFC 1035 §4.2.2): each message is preceded by a
// two-octet big-endian length. StreamAssembler incrementally reassembles
// messages from arbitrary chunk boundaries — the core of TCP/TLS replay.
#ifndef LDPLAYER_DNS_FRAMING_H
#define LDPLAYER_DNS_FRAMING_H

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ldp::dns {

// Prepends the 2-byte length prefix.
Bytes FrameMessage(std::span<const uint8_t> wire);

class StreamAssembler {
 public:
  // Feeds a chunk of stream bytes. Complete messages become available via
  // NextMessage(). Returns an error if a frame declares length 0.
  Status Feed(std::span<const uint8_t> chunk);

  // Pops the next complete message payload (without the length prefix), or
  // nullopt when none is buffered.
  std::optional<Bytes> NextMessage();

  // Bytes currently buffered but not yet forming a complete message.
  size_t pending_bytes() const { return buffer_.size(); }
  size_t ready_messages() const { return ready_.size(); }

 private:
  Bytes buffer_;
  std::deque<Bytes> ready_;
};

}  // namespace ldp::dns

#endif  // LDPLAYER_DNS_FRAMING_H
