// DNS-over-stream framing (RFC 1035 §4.2.2): each message is preceded by a
// two-octet big-endian length. StreamAssembler incrementally reassembles
// messages from arbitrary chunk boundaries — the core of TCP/TLS replay.
#ifndef LDPLAYER_DNS_FRAMING_H
#define LDPLAYER_DNS_FRAMING_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ldp::dns {

// The largest payload a 2-byte length prefix can carry.
inline constexpr size_t kMaxFramedMessage = 65535;

// Prepends the 2-byte length prefix. Fails on an empty payload (a
// zero-length frame is rejected by every assembler) and on payloads over
// kMaxFramedMessage — silently truncating the length prefix would emit a
// corrupt frame that desyncs the peer's stream.
Result<Bytes> FrameMessage(std::span<const uint8_t> wire);

class StreamAssembler {
 public:
  // Backpressure bounds on the ready-message backlog. A peer that floods
  // complete frames faster than the server drains them hits these caps and
  // has its excess messages dropped (and counted) instead of growing the
  // deque without limit.
  struct Limits {
    size_t max_ready_messages = 1024;
    size_t max_ready_bytes = 4u << 20;
  };

  // Feeds a chunk of stream bytes. Complete messages become available via
  // NextMessage(). Returns an error if a frame declares length 0; once an
  // error has been returned the assembler is poisoned and every further
  // Feed reports the same failure (messages completed before the error
  // stay available exactly once).
  Status Feed(std::span<const uint8_t> chunk);

  // Pops the next complete message payload (without the length prefix), or
  // nullopt when none is buffered.
  std::optional<Bytes> NextMessage();

  // Bytes currently buffered but not yet forming a complete message.
  size_t pending_bytes() const { return buffer_.size(); }
  size_t ready_messages() const { return ready_.size(); }
  size_t ready_bytes() const { return ready_bytes_; }
  // Complete messages discarded because the backlog was at its limit.
  uint64_t dropped_messages() const { return dropped_messages_; }

  void set_limits(const Limits& limits) { limits_ = limits; }
  // Optional shared drop counter (e.g. a metrics-registry counter); bumped
  // relaxed alongside dropped_messages(). Must outlive the assembler.
  void set_drop_counter(std::atomic<uint64_t>* counter) {
    drop_counter_ = counter;
  }

 private:
  Bytes buffer_;
  std::deque<Bytes> ready_;
  Limits limits_;
  size_t ready_bytes_ = 0;
  uint64_t dropped_messages_ = 0;
  std::atomic<uint64_t>* drop_counter_ = nullptr;
  std::optional<Error> poisoned_;
};

}  // namespace ldp::dns

#endif  // LDPLAYER_DNS_FRAMING_H
