#include "dns/message.h"

#include <algorithm>

namespace ldp::dns {
namespace {

constexpr uint16_t kFlagQr = 0x8000;
constexpr uint16_t kFlagAa = 0x0400;
constexpr uint16_t kFlagTc = 0x0200;
constexpr uint16_t kFlagRd = 0x0100;
constexpr uint16_t kFlagRa = 0x0080;
constexpr uint16_t kFlagAd = 0x0020;
constexpr uint16_t kFlagCd = 0x0010;

// Encodes one RR, returning false (and rolling back) if the result would
// exceed max_size.
bool EncodeRecord(const ResourceRecord& rr, NameCompressor& compressor,
                  ByteWriter& writer, size_t max_size) {
  compressor.Encode(rr.name, writer);
  writer.WriteU16(static_cast<uint16_t>(rr.type));
  writer.WriteU16(static_cast<uint16_t>(rr.klass));
  writer.WriteU32(rr.ttl);
  size_t rdlength_offset = writer.size();
  writer.WriteU16(0);
  EncodeRdata(rr.rdata, compressor, writer);
  writer.PatchU16(rdlength_offset,
                  static_cast<uint16_t>(writer.size() - rdlength_offset - 2));
  // On overflow the caller discards the partial bytes. The compressor may
  // retain offsets into the discarded region, which is safe only because
  // encoding stops entirely once a record fails to fit.
  return writer.size() <= max_size;
}

ResourceRecord MakeOptRecord(const Edns& edns, Rcode rcode) {
  ResourceRecord opt;
  opt.name = Name::Root();
  opt.type = RRType::kOPT;
  opt.klass = static_cast<RRClass>(edns.udp_payload_size);
  uint32_t ttl = (static_cast<uint32_t>(edns.extended_rcode_high) << 24) |
                 (static_cast<uint32_t>(edns.version) << 16) |
                 (edns.do_bit ? 0x8000u : 0u);
  (void)rcode;
  opt.ttl = ttl;
  opt.rdata = GenericRdata{edns.options};
  return opt;
}

}  // namespace

std::string Question::ToText() const {
  return name.ToString() + " " + RRClassToString(klass) + " " +
         RRTypeToString(type);
}

Message Message::MakeQuery(Name name, RRType type, bool recursion_desired) {
  Message msg;
  msg.rd = recursion_desired;
  msg.questions.push_back(Question{std::move(name), type, RRClass::kIN});
  return msg;
}

Bytes Message::Encode(size_t max_size) const {
  // Truncation strategy: encode greedily; on the first record that does not
  // fit, stop, set TC, and re-encode the header. We build the body first and
  // patch counts afterwards.
  ByteWriter writer(512);
  NameCompressor compressor;

  uint16_t flags = 0;
  if (qr) flags |= kFlagQr;
  flags |= static_cast<uint16_t>((static_cast<uint16_t>(opcode) & 0xf) << 11);
  if (aa) flags |= kFlagAa;
  if (tc) flags |= kFlagTc;
  if (rd) flags |= kFlagRd;
  if (ra) flags |= kFlagRa;
  if (ad) flags |= kFlagAd;
  if (cd) flags |= kFlagCd;
  flags |= static_cast<uint16_t>(rcode) & 0xf;

  writer.WriteU16(id);
  size_t flags_offset = writer.size();
  writer.WriteU16(flags);
  writer.WriteU16(static_cast<uint16_t>(questions.size()));
  size_t ancount_offset = writer.size();
  writer.WriteU16(0);
  size_t nscount_offset = writer.size();
  writer.WriteU16(0);
  size_t arcount_offset = writer.size();
  writer.WriteU16(0);

  for (const auto& q : questions) {
    compressor.Encode(q.name, writer);
    writer.WriteU16(static_cast<uint16_t>(q.type));
    writer.WriteU16(static_cast<uint16_t>(q.klass));
  }

  bool truncated = false;
  uint16_t ancount = 0, nscount = 0, arcount = 0;

  // Reserve room for the OPT RR so truncation never drops EDNS itself.
  size_t opt_reserve = 0;
  ResourceRecord opt_rr;
  if (edns.has_value()) {
    opt_rr = MakeOptRecord(*edns, rcode);
    opt_reserve = 1 + 2 + 2 + 4 + 2 + edns->options.size();  // root + fixed
  }
  size_t body_limit = max_size > opt_reserve ? max_size - opt_reserve : 0;

  auto encode_section = [&](const std::vector<ResourceRecord>& section,
                            uint16_t& count) {
    for (const auto& rr : section) {
      if (truncated) return;
      size_t before = writer.size();
      if (!EncodeRecord(rr, compressor, writer, body_limit)) {
        truncated = true;
        // Drop the partial record by re-encoding everything up to `before`.
        Bytes kept(writer.data().begin(), writer.data().begin() + before);
        writer = ByteWriter(kept.size());
        writer.WriteBytes(kept);
        return;
      }
      ++count;
    }
  };

  encode_section(answers, ancount);
  encode_section(authorities, nscount);
  encode_section(additionals, arcount);

  if (edns.has_value()) {
    NameCompressor opt_compressor;  // OPT owner is root; no compression value
    EncodeRecord(opt_rr, opt_compressor, writer, max_size);
    ++arcount;
  }

  writer.PatchU16(ancount_offset, ancount);
  writer.PatchU16(nscount_offset, nscount);
  writer.PatchU16(arcount_offset, arcount);
  if (truncated) {
    writer.PatchU16(flags_offset, flags | kFlagTc);
  }
  return std::move(writer).Take();
}

Result<Message> Message::Decode(std::span<const uint8_t> wire) {
  ByteReader reader(wire);
  Message msg;

  LDP_ASSIGN_OR_RETURN(msg.id, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint16_t flags, reader.ReadU16());
  msg.qr = flags & kFlagQr;
  msg.opcode = static_cast<Opcode>((flags >> 11) & 0xf);
  msg.aa = flags & kFlagAa;
  msg.tc = flags & kFlagTc;
  msg.rd = flags & kFlagRd;
  msg.ra = flags & kFlagRa;
  msg.ad = flags & kFlagAd;
  msg.cd = flags & kFlagCd;
  uint8_t rcode_low = flags & 0xf;
  msg.rcode = static_cast<Rcode>(rcode_low);

  LDP_ASSIGN_OR_RETURN(uint16_t qdcount, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint16_t ancount, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint16_t nscount, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint16_t arcount, reader.ReadU16());

  // Header counts are attacker-controlled: reject up front any message whose
  // counts could not possibly fit in the remaining bytes (a question needs at
  // least 5 bytes, a record at least 11), instead of looping up to 4×65535
  // times over decoders that will fail anyway.
  size_t min_needed = static_cast<size_t>(qdcount) * 5 +
                      (static_cast<size_t>(ancount) +
                       static_cast<size_t>(nscount) +
                       static_cast<size_t>(arcount)) *
                          11;
  if (min_needed > reader.remaining()) {
    return Error(ErrorCode::kTruncated,
                 "header counts exceed message size");
  }

  for (uint16_t i = 0; i < qdcount; ++i) {
    Question q;
    LDP_ASSIGN_OR_RETURN(q.name, DecodeName(reader));
    LDP_ASSIGN_OR_RETURN(uint16_t type, reader.ReadU16());
    LDP_ASSIGN_OR_RETURN(uint16_t klass, reader.ReadU16());
    q.type = static_cast<RRType>(type);
    q.klass = static_cast<RRClass>(klass);
    msg.questions.push_back(std::move(q));
  }

  auto decode_records = [&](uint16_t count, std::vector<ResourceRecord>& out,
                            bool allow_opt) -> Status {
    for (uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      LDP_ASSIGN_OR_RETURN(rr.name, DecodeName(reader));
      LDP_ASSIGN_OR_RETURN(uint16_t type, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(uint16_t klass, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(rr.ttl, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(uint16_t rdlength, reader.ReadU16());
      rr.type = static_cast<RRType>(type);
      rr.klass = static_cast<RRClass>(klass);

      if (rr.type == RRType::kOPT) {
        if (!allow_opt) {
          return Error(ErrorCode::kParseError, "OPT outside additional section");
        }
        Edns edns;
        edns.udp_payload_size = klass;
        edns.extended_rcode_high = static_cast<uint8_t>(rr.ttl >> 24);
        edns.version = static_cast<uint8_t>(rr.ttl >> 16);
        edns.do_bit = (rr.ttl & 0x8000) != 0;
        LDP_ASSIGN_OR_RETURN(edns.options, reader.ReadBytes(rdlength));
        msg.edns = std::move(edns);
        continue;
      }
      LDP_ASSIGN_OR_RETURN(rr.rdata, DecodeRdata(rr.type, rdlength, reader));
      out.push_back(std::move(rr));
    }
    return Status::Ok();
  };

  LDP_RETURN_IF_ERROR(decode_records(ancount, msg.answers, false));
  LDP_RETURN_IF_ERROR(decode_records(nscount, msg.authorities, false));
  LDP_RETURN_IF_ERROR(decode_records(arcount, msg.additionals, true));

  if (msg.edns.has_value()) {
    msg.rcode = static_cast<Rcode>(
        (static_cast<uint16_t>(msg.edns->extended_rcode_high) << 4) |
        rcode_low);
  }
  return msg;
}

bool Message::Matches(const Message& query) const {
  if (!qr || id != query.id) return false;
  if (questions.empty() || query.questions.empty()) {
    // Responses may omit the question only in rare cases; accept on id.
    return true;
  }
  return questions[0] == query.questions[0];
}

std::string Message::ToText() const {
  std::string out;
  out += ";; " + std::string(qr ? "response" : "query") + " id=" +
         std::to_string(id) + " " + std::string(OpcodeToString(opcode)) + " " +
         std::string(RcodeToString(rcode));
  out += " flags=";
  if (aa) out += " aa";
  if (tc) out += " tc";
  if (rd) out += " rd";
  if (ra) out += " ra";
  if (ad) out += " ad";
  if (cd) out += " cd";
  out += "\n";
  if (edns.has_value()) {
    out += ";; EDNS v" + std::to_string(edns->version) + " udp=" +
           std::to_string(edns->udp_payload_size) +
           (edns->do_bit ? " do" : "") + "\n";
  }
  out += ";; QUESTION (" + std::to_string(questions.size()) + ")\n";
  for (const auto& q : questions) out += ";  " + q.ToText() + "\n";
  auto section = [&](const char* label,
                     const std::vector<ResourceRecord>& records) {
    out += ";; " + std::string(label) + " (" +
           std::to_string(records.size()) + ")\n";
    for (const auto& rr : records) out += rr.ToText() + "\n";
  };
  section("ANSWER", answers);
  section("AUTHORITY", authorities);
  section("ADDITIONAL", additionals);
  return out;
}

}  // namespace ldp::dns
