// DNS message (RFC 1035 §4) with EDNS0 (RFC 6891) support: full encode with
// name compression and size-limited truncation, and full decode.
#ifndef LDPLAYER_DNS_MESSAGE_H
#define LDPLAYER_DNS_MESSAGE_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "dns/name.h"
#include "dns/rr.h"
#include "dns/types.h"

namespace ldp::dns {

constexpr size_t kMaxUdpPayloadDefault = 512;   // pre-EDNS limit
constexpr size_t kMaxMessageSize = 65535;       // TCP / length-framed limit

struct Question {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;

  bool operator==(const Question&) const = default;
  std::string ToText() const;  // "example.com. IN A"
};

// EDNS0 pseudo-header carried by the OPT RR in the additional section.
struct Edns {
  uint16_t udp_payload_size = 4096;
  uint8_t extended_rcode_high = 0;  // upper 8 bits of the 12-bit rcode
  uint8_t version = 0;
  bool do_bit = false;  // DNSSEC OK (RFC 3225)
  Bytes options;        // raw option TLVs, opaque to this codec

  bool operator==(const Edns&) const = default;
};

struct Message {
  // Header.
  uint16_t id = 0;
  bool qr = false;  // false=query, true=response
  Opcode opcode = Opcode::kQuery;
  bool aa = false;
  bool tc = false;
  bool rd = false;
  bool ra = false;
  bool ad = false;
  bool cd = false;
  Rcode rcode = Rcode::kNoError;

  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  // excluding the OPT RR
  std::optional<Edns> edns;

  // Builds a query with sane defaults (RD set, random-free: caller sets id).
  static Message MakeQuery(Name name, RRType type, bool recursion_desired);

  // Encodes with name compression. If the result would exceed `max_size`,
  // records are dropped section-by-section from the back and TC is set
  // (RFC 2181 §9 truncation semantics; the question is always kept).
  Bytes Encode(size_t max_size = kMaxMessageSize) const;

  static Result<Message> Decode(std::span<const uint8_t> wire);

  // True if this message looks like a response to `query` (id and first
  // question match) — how the replay engine pairs answers with queries.
  bool Matches(const Message& query) const;

  // Multi-line dig-style rendering for debugging.
  std::string ToText() const;
};

}  // namespace ldp::dns

#endif  // LDPLAYER_DNS_MESSAGE_H
