#include "dns/name.h"

#include <algorithm>
#include <cctype>

namespace ldp::dns {
namespace {

char FoldCase(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool LabelEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (FoldCase(a[i]) != FoldCase(b[i])) return false;
  }
  return true;
}

// memcmp-style comparison of case-folded labels (RFC 4034 §6.1).
int LabelCompare(const std::string& a, const std::string& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    unsigned char ca = static_cast<unsigned char>(FoldCase(a[i]));
    unsigned char cb = static_cast<unsigned char>(FoldCase(b[i]));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

// Does a label need escaping in presentation format? Beyond the RFC 1035
// specials ('.', '\\'), cover everything the master-file reader treats as
// structure — quotes, comments, parens, whitespace, and the '$'/'@'
// sigils — so a serialized name re-tokenizes as exactly one name token
// (found by the zone fuzzer: an owner label "$" serialized bare and
// reparsed as an unknown $-directive).
bool NeedsEscape(char c) {
  return c == '.' || c == '\\' || c == '"' || c == '$' || c == '@' ||
         c == ';' || c == '(' || c == ')' || c == ' ' ||
         !std::isprint(static_cast<unsigned char>(c));
}

// Characters the tokenizer splits on before escapes are interpreted; they
// must be emitted as \DDD (no raw occurrence), not as '\' + char.
bool NeedsDddEscape(char c) {
  return c == ';' || c == '(' || c == ')' || c == ' ' ||
         !std::isprint(static_cast<unsigned char>(c));
}

}  // namespace

Result<Name> Name::Parse(std::string_view text) {
  Name name;
  if (text.empty()) {
    return Error(ErrorCode::kParseError, "empty name (root is \".\")");
  }
  if (text == ".") return name;

  std::string label;
  size_t i = 0;
  auto flush_label = [&]() -> Status {
    if (label.empty()) {
      return Error(ErrorCode::kParseError,
                   "empty label in name: " + std::string(text));
    }
    if (label.size() > kMaxLabelLength) {
      return Error(ErrorCode::kParseError,
                   "label longer than 63 octets in: " + std::string(text));
    }
    name.labels_.push_back(std::move(label));
    label.clear();
    return Status::Ok();
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '.') {
      LDP_RETURN_IF_ERROR(flush_label());
      ++i;
      // A trailing dot ends the name; a dot elsewhere must be followed by
      // another label, enforced by flush_label on the next '.' or at end.
      if (i == text.size()) break;
      continue;
    }
    if (c == '\\') {
      if (i + 1 >= text.size()) {
        return Error(ErrorCode::kParseError, "dangling escape in name");
      }
      char next = text[i + 1];
      if (std::isdigit(static_cast<unsigned char>(next))) {
        if (i + 3 >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[i + 2])) ||
            !std::isdigit(static_cast<unsigned char>(text[i + 3]))) {
          return Error(ErrorCode::kParseError, "bad \\DDD escape in name");
        }
        int value = (text[i + 1] - '0') * 100 + (text[i + 2] - '0') * 10 +
                    (text[i + 3] - '0');
        if (value > 255) {
          return Error(ErrorCode::kParseError, "\\DDD escape > 255");
        }
        label.push_back(static_cast<char>(value));
        i += 4;
      } else {
        label.push_back(next);
        i += 2;
      }
      continue;
    }
    label.push_back(c);
    ++i;
  }
  if (!label.empty()) LDP_RETURN_IF_ERROR(flush_label());

  if (name.WireLength() > kMaxNameWireLength) {
    return Error(ErrorCode::kParseError,
                 "name exceeds 255 octets: " + std::string(text));
  }
  return name;
}

Result<Name> Name::FromLabels(std::vector<std::string> labels) {
  for (const auto& label : labels) {
    if (label.empty()) {
      return Error(ErrorCode::kInvalidArgument, "empty label");
    }
    if (label.size() > kMaxLabelLength) {
      return Error(ErrorCode::kInvalidArgument, "label longer than 63 octets");
    }
  }
  Name name;
  name.labels_ = std::move(labels);
  if (name.WireLength() > kMaxNameWireLength) {
    return Error(ErrorCode::kInvalidArgument, "name exceeds 255 octets");
  }
  return name;
}

size_t Name::WireLength() const {
  size_t len = 1;  // terminal zero octet
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

std::string Name::ToString() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& label : labels_) {
    for (char c : label) {
      if (NeedsEscape(c)) {
        if (!NeedsDddEscape(c)) {
          out.push_back('\\');
          out.push_back(c);
        } else {
          unsigned value = static_cast<unsigned char>(c);
          out.push_back('\\');
          out.push_back(static_cast<char>('0' + value / 100));
          out.push_back(static_cast<char>('0' + (value / 10) % 10));
          out.push_back(static_cast<char>('0' + value % 10));
        }
      } else {
        out.push_back(c);
      }
    }
    out.push_back('.');
  }
  return out;
}

Result<Name> Name::Parent() const {
  if (IsRoot()) {
    return Error(ErrorCode::kInvalidArgument, "root has no parent");
  }
  Name parent;
  parent.labels_.assign(labels_.begin() + 1, labels_.end());
  return parent;
}

Result<Name> Name::Child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return FromLabels(std::move(labels));
}

bool Name::IsSubdomainOf(const Name& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  size_t offset = labels_.size() - ancestor.labels_.size();
  for (size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (!LabelEquals(labels_[offset + i], ancestor.labels_[i])) return false;
  }
  return true;
}

bool Name::IsWildcard() const {
  return !labels_.empty() && labels_.front() == "*";
}

Result<Name> Name::AsWildcardSibling() const {
  if (IsRoot()) {
    return Error(ErrorCode::kInvalidArgument, "root has no wildcard sibling");
  }
  Name out;
  out.labels_.reserve(labels_.size());
  out.labels_.emplace_back("*");
  out.labels_.insert(out.labels_.end(), labels_.begin() + 1, labels_.end());
  return out;
}

bool Name::operator==(const Name& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (!LabelEquals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

bool Name::operator<(const Name& other) const {
  // Canonical order: compare from the rightmost label.
  size_t n = std::min(labels_.size(), other.labels_.size());
  for (size_t i = 1; i <= n; ++i) {
    int cmp = LabelCompare(labels_[labels_.size() - i],
                           other.labels_[other.labels_.size() - i]);
    if (cmp != 0) return cmp < 0;
  }
  return labels_.size() < other.labels_.size();
}

std::string Name::CanonicalKey() const {
  std::string out = ToString();
  for (char& c : out) c = FoldCase(c);
  return out;
}

size_t Name::Hash() const {
  // FNV-1a over case-folded labels with separators.
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ULL;
  };
  for (const auto& label : labels_) {
    for (char c : label) mix(static_cast<unsigned char>(FoldCase(c)));
    mix(0);
  }
  return h;
}

void NameCompressor::EncodeInternal(const Name& name, ByteWriter& writer,
                                    bool compress) {
  const auto& labels = name.labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    // Suffix starting at label i, as a canonical key.
    std::string key;
    for (size_t j = i; j < labels.size(); ++j) {
      for (char c : labels[j]) key.push_back(FoldCase(c));
      key.push_back('.');
    }
    if (compress) {
      auto it = suffix_offsets_.find(key);
      if (it != suffix_offsets_.end()) {
        writer.WriteU16(static_cast<uint16_t>(0xc000 | it->second));
        return;
      }
    }
    if (writer.size() <= 0x3fff) {
      suffix_offsets_.emplace(std::move(key),
                              static_cast<uint16_t>(writer.size()));
    }
    writer.WriteU8(static_cast<uint8_t>(labels[i].size()));
    writer.WriteString(labels[i]);
  }
  writer.WriteU8(0);
}

void NameCompressor::Encode(const Name& name, ByteWriter& writer) {
  EncodeInternal(name, writer, /*compress=*/true);
}

void NameCompressor::EncodeUncompressed(const Name& name, ByteWriter& writer) {
  EncodeInternal(name, writer, /*compress=*/false);
}

void EncodeNameUncompressed(const Name& name, ByteWriter& writer) {
  for (const auto& label : name.labels()) {
    writer.WriteU8(static_cast<uint8_t>(label.size()));
    writer.WriteString(label);
  }
  writer.WriteU8(0);
}

Result<Name> DecodeName(ByteReader& reader) {
  std::vector<std::string> labels;
  size_t wire_len = 1;
  // After the first pointer we stop advancing the caller's cursor; we walk
  // the rest of the name at `jump` offsets via a secondary reader.
  bool jumped = false;
  ByteReader follower(reader.buffer());
  LDP_RETURN_IF_ERROR(follower.Seek(reader.offset()));
  int pointer_hops = 0;

  while (true) {
    LDP_ASSIGN_OR_RETURN(uint8_t len, follower.ReadU8());
    if ((len & 0xc0) == 0xc0) {
      LDP_ASSIGN_OR_RETURN(uint8_t low, follower.ReadU8());
      size_t target = (static_cast<size_t>(len & 0x3f) << 8) | low;
      if (!jumped) {
        LDP_RETURN_IF_ERROR(reader.Seek(follower.offset()));
        jumped = true;
      }
      if (++pointer_hops > 64) {
        return Error(ErrorCode::kParseError, "compression pointer loop");
      }
      // Pointers must point strictly backwards from their own position
      // (the two pointer octets just consumed); this rules out loops.
      if (target + 2 > follower.offset()) {
        return Error(ErrorCode::kParseError, "forward compression pointer");
      }
      LDP_RETURN_IF_ERROR(follower.Seek(target));
      continue;
    }
    if ((len & 0xc0) != 0) {
      return Error(ErrorCode::kParseError, "reserved label type");
    }
    if (len == 0) break;
    LDP_ASSIGN_OR_RETURN(auto span, follower.ReadSpan(len));
    labels.emplace_back(span.begin(), span.end());
    wire_len += 1 + len;
    if (wire_len > kMaxNameWireLength) {
      return Error(ErrorCode::kParseError, "decoded name exceeds 255 octets");
    }
  }
  if (!jumped) {
    LDP_RETURN_IF_ERROR(reader.Seek(follower.offset()));
  }
  return Name::FromLabels(std::move(labels));
}

}  // namespace ldp::dns
