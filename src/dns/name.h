// Domain names (RFC 1035 §3.1): an ordered list of labels, case-preserving
// but case-insensitive for comparison, with wire-format compression support.
#ifndef LDPLAYER_DNS_NAME_H
#define LDPLAYER_DNS_NAME_H

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace ldp::dns {

constexpr size_t kMaxLabelLength = 63;
constexpr size_t kMaxNameWireLength = 255;

class Name {
 public:
  // The root name (zero labels).
  Name() = default;

  // Parses presentation format ("www.example.com", trailing dot optional,
  // "." is the root). Supports \DDD and \X escapes per RFC 1035 §5.1.
  static Result<Name> Parse(std::string_view text);

  static Name Root() { return Name(); }

  // Builds from raw labels (no escaping applied); each label must be
  // non-empty and <= 63 octets.
  static Result<Name> FromLabels(std::vector<std::string> labels);

  bool IsRoot() const { return labels_.empty(); }
  size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }

  // Length of the wire encoding without compression (labels + length octets
  // + terminal zero octet).
  size_t WireLength() const;

  // Presentation format, always with a trailing dot ("www.example.com.",
  // root is ".").
  std::string ToString() const;

  // Strips the leftmost label; calling on the root is an error.
  Result<Name> Parent() const;

  // Prepends `label` (e.g. Child("www") on example.com -> www.example.com).
  Result<Name> Child(std::string_view label) const;

  // True if *this is `ancestor` or inside it (example.com is a subdomain of
  // com and of the root). Case-insensitive, per DNS semantics.
  bool IsSubdomainOf(const Name& ancestor) const;

  // True iff the leftmost label is "*" (wildcard owner name, RFC 4592).
  bool IsWildcard() const;

  // The wildcard name covering this name's immediate parent domain:
  // a.b.example.com -> *.b.example.com.
  Result<Name> AsWildcardSibling() const;

  // Case-insensitive equality/ordering. Ordering is canonical DNS order
  // (RFC 4034 §6.1): by label from the rightmost, case-folded, memcmp-style.
  bool operator==(const Name& other) const;
  bool operator!=(const Name& other) const { return !(*this == other); }
  bool operator<(const Name& other) const;

  // Lowercased presentation form; used as a canonical map key.
  std::string CanonicalKey() const;

  size_t Hash() const;

 private:
  std::vector<std::string> labels_;  // leftmost label first
};

// Tracks name→offset mappings while encoding a message so later names can
// emit compression pointers (RFC 1035 §4.1.4). One compressor per message.
class NameCompressor {
 public:
  // Appends the wire form of `name` to `writer`, emitting a pointer to a
  // previously written suffix when one exists, and recording newly written
  // suffixes (only offsets < 0x3fff are recordable).
  void Encode(const Name& name, ByteWriter& writer);

  // Appends without compression but still records suffix offsets so later
  // names may point into this one (used for RRSIG signer names etc., which
  // must not be compressed but historically may be pointed at).
  void EncodeUncompressed(const Name& name, ByteWriter& writer);

 private:
  void EncodeInternal(const Name& name, ByteWriter& writer, bool compress);

  std::unordered_map<std::string, uint16_t> suffix_offsets_;
};

// Decodes a wire-format name starting at the reader's cursor, following
// compression pointers through reader.buffer(). The cursor advances past the
// name as it appears in the stream (pointers count as 2 bytes).
Result<Name> DecodeName(ByteReader& reader);

// Encodes without compression (e.g. for canonical forms and hashing).
void EncodeNameUncompressed(const Name& name, ByteWriter& writer);

}  // namespace ldp::dns

template <>
struct std::hash<ldp::dns::Name> {
  size_t operator()(const ldp::dns::Name& n) const noexcept { return n.Hash(); }
};

#endif  // LDPLAYER_DNS_NAME_H
