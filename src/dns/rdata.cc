#include "dns/rdata.h"

#include <algorithm>

#include "common/base64.h"
#include "common/strings.h"

namespace ldp::dns {
namespace {

// Encodes the NSEC type bitmap (RFC 4034 §4.1.2): window blocks of up to 32
// octets, omitting trailing zero octets per window.
void EncodeTypeBitmap(const std::vector<RRType>& types, ByteWriter& writer) {
  // Group types by window (high byte of the type code).
  uint8_t window_bits[256][32] = {};
  bool window_used[256] = {};
  for (RRType type : types) {
    uint16_t code = static_cast<uint16_t>(type);
    uint8_t window = static_cast<uint8_t>(code >> 8);
    uint8_t low = static_cast<uint8_t>(code & 0xff);
    window_bits[window][low / 8] |= static_cast<uint8_t>(0x80 >> (low % 8));
    window_used[window] = true;
  }
  for (int w = 0; w < 256; ++w) {
    if (!window_used[w]) continue;
    int len = 32;
    while (len > 0 && window_bits[w][len - 1] == 0) --len;
    if (len == 0) continue;
    writer.WriteU8(static_cast<uint8_t>(w));
    writer.WriteU8(static_cast<uint8_t>(len));
    writer.WriteBytes(std::span<const uint8_t>(window_bits[w],
                                               static_cast<size_t>(len)));
  }
}

Result<std::vector<RRType>> DecodeTypeBitmap(ByteReader& reader, size_t end) {
  std::vector<RRType> types;
  int last_window = -1;
  while (reader.offset() < end) {
    LDP_ASSIGN_OR_RETURN(uint8_t window, reader.ReadU8());
    LDP_ASSIGN_OR_RETURN(uint8_t len, reader.ReadU8());
    if (len == 0 || len > 32) {
      return Error(ErrorCode::kParseError, "bad NSEC bitmap window length");
    }
    if (static_cast<int>(window) <= last_window) {
      return Error(ErrorCode::kParseError, "NSEC bitmap windows out of order");
    }
    last_window = window;
    LDP_ASSIGN_OR_RETURN(auto bits, reader.ReadSpan(len));
    for (size_t octet = 0; octet < bits.size(); ++octet) {
      for (int bit = 0; bit < 8; ++bit) {
        if (bits[octet] & (0x80 >> bit)) {
          types.push_back(static_cast<RRType>((window << 8) |
                                              (octet * 8 + bit)));
        }
      }
    }
  }
  if (reader.offset() != end) {
    return Error(ErrorCode::kParseError, "NSEC bitmap overruns rdata");
  }
  return types;
}

// Master-file <character-string>: either a quoted string or a bare token.
std::string CharacterStringToText(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<std::string> CharacterStringFromToken(std::string_view token) {
  std::string out;
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    token = token.substr(1, token.size() - 2);
    for (size_t i = 0; i < token.size(); ++i) {
      if (token[i] == '\\' && i + 1 < token.size()) ++i;
      out.push_back(token[i]);
    }
  } else {
    out.assign(token.begin(), token.end());
  }
  if (out.size() > 255) {
    return Error(ErrorCode::kParseError, "character-string exceeds 255 octets");
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view text) {
  if (text.size() % 2 != 0) {
    return Error(ErrorCode::kParseError, "odd-length hex string");
  }
  Bytes out;
  out.reserve(text.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i < text.size(); i += 2) {
    int hi = nibble(text[i]);
    int lo = nibble(text[i + 1]);
    if (hi < 0 || lo < 0) {
      return Error(ErrorCode::kParseError, "bad hex digit");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string HexEncode(std::span<const uint8_t> data) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

template <typename T>
Result<T> TokenToInt(std::string_view token, uint64_t max) {
  LDP_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(token));
  if (value > max) {
    return Error(ErrorCode::kOutOfRange,
                 "value out of range: " + std::string(token));
  }
  return static_cast<T>(value);
}

}  // namespace

void EncodeRdata(const Rdata& rdata, NameCompressor& compressor,
                 ByteWriter& writer) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          writer.WriteU32(r.address.value());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          writer.WriteBytes(r.address.octets());
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          compressor.Encode(r.nsdname, writer);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          compressor.Encode(r.target, writer);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          compressor.Encode(r.target, writer);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          compressor.Encode(r.mname, writer);
          compressor.Encode(r.rname, writer);
          writer.WriteU32(r.serial);
          writer.WriteU32(r.refresh);
          writer.WriteU32(r.retry);
          writer.WriteU32(r.expire);
          writer.WriteU32(r.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          writer.WriteU16(r.preference);
          compressor.Encode(r.exchange, writer);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : r.strings) {
            writer.WriteU8(static_cast<uint8_t>(s.size()));
            writer.WriteString(s);
          }
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          writer.WriteU16(r.priority);
          writer.WriteU16(r.weight);
          writer.WriteU16(r.port);
          // RFC 2782: target must not be compressed.
          EncodeNameUncompressed(r.target, writer);
        } else if constexpr (std::is_same_v<T, DsRdata>) {
          writer.WriteU16(r.key_tag);
          writer.WriteU8(r.algorithm);
          writer.WriteU8(r.digest_type);
          writer.WriteBytes(r.digest);
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          writer.WriteU16(r.flags);
          writer.WriteU8(r.protocol);
          writer.WriteU8(r.algorithm);
          writer.WriteBytes(r.public_key);
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          writer.WriteU16(static_cast<uint16_t>(r.type_covered));
          writer.WriteU8(r.algorithm);
          writer.WriteU8(r.labels);
          writer.WriteU32(r.original_ttl);
          writer.WriteU32(r.expiration);
          writer.WriteU32(r.inception);
          writer.WriteU16(r.key_tag);
          EncodeNameUncompressed(r.signer, writer);
          writer.WriteBytes(r.signature);
        } else if constexpr (std::is_same_v<T, NsecRdata>) {
          EncodeNameUncompressed(r.next, writer);
          EncodeTypeBitmap(r.types, writer);
        } else if constexpr (std::is_same_v<T, GenericRdata>) {
          writer.WriteBytes(r.data);
        }
      },
      rdata);
}

Result<Rdata> DecodeRdata(RRType type, uint16_t rdlength, ByteReader& reader) {
  size_t end = reader.offset() + rdlength;
  if (end > reader.size()) {
    return Error(ErrorCode::kTruncated, "rdata extends past message");
  }
  auto check_consumed = [&](Rdata value) -> Result<Rdata> {
    if (reader.offset() != end) {
      return Error(ErrorCode::kParseError, "rdata length mismatch for type " +
                                               RRTypeToString(type));
    }
    return value;
  };

  switch (type) {
    case RRType::kA: {
      LDP_ASSIGN_OR_RETURN(uint32_t addr, reader.ReadU32());
      return check_consumed(ARdata{IpAddress(addr)});
    }
    case RRType::kAAAA: {
      LDP_ASSIGN_OR_RETURN(auto span, reader.ReadSpan(16));
      std::array<uint8_t, 16> octets;
      std::copy(span.begin(), span.end(), octets.begin());
      return check_consumed(AaaaRdata{Ipv6Address(octets)});
    }
    case RRType::kNS: {
      LDP_ASSIGN_OR_RETURN(Name name, DecodeName(reader));
      return check_consumed(NsRdata{std::move(name)});
    }
    case RRType::kCNAME: {
      LDP_ASSIGN_OR_RETURN(Name name, DecodeName(reader));
      return check_consumed(CnameRdata{std::move(name)});
    }
    case RRType::kPTR: {
      LDP_ASSIGN_OR_RETURN(Name name, DecodeName(reader));
      return check_consumed(PtrRdata{std::move(name)});
    }
    case RRType::kSOA: {
      SoaRdata soa;
      LDP_ASSIGN_OR_RETURN(soa.mname, DecodeName(reader));
      LDP_ASSIGN_OR_RETURN(soa.rname, DecodeName(reader));
      LDP_ASSIGN_OR_RETURN(soa.serial, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(soa.refresh, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(soa.retry, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(soa.expire, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(soa.minimum, reader.ReadU32());
      return check_consumed(std::move(soa));
    }
    case RRType::kMX: {
      MxRdata mx;
      LDP_ASSIGN_OR_RETURN(mx.preference, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(mx.exchange, DecodeName(reader));
      return check_consumed(std::move(mx));
    }
    case RRType::kTXT: {
      TxtRdata txt;
      while (reader.offset() < end) {
        LDP_ASSIGN_OR_RETURN(uint8_t len, reader.ReadU8());
        if (reader.offset() + len > end) {
          return Error(ErrorCode::kParseError, "TXT string overruns rdata");
        }
        LDP_ASSIGN_OR_RETURN(auto span, reader.ReadSpan(len));
        txt.strings.emplace_back(span.begin(), span.end());
      }
      if (txt.strings.empty()) {
        return Error(ErrorCode::kParseError, "empty TXT rdata");
      }
      return check_consumed(std::move(txt));
    }
    case RRType::kSRV: {
      SrvRdata srv;
      LDP_ASSIGN_OR_RETURN(srv.priority, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(srv.weight, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(srv.port, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(srv.target, DecodeName(reader));
      return check_consumed(std::move(srv));
    }
    case RRType::kDS: {
      DsRdata ds;
      LDP_ASSIGN_OR_RETURN(ds.key_tag, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(ds.algorithm, reader.ReadU8());
      LDP_ASSIGN_OR_RETURN(ds.digest_type, reader.ReadU8());
      LDP_ASSIGN_OR_RETURN(ds.digest, reader.ReadBytes(end - reader.offset()));
      return check_consumed(std::move(ds));
    }
    case RRType::kDNSKEY: {
      DnskeyRdata key;
      LDP_ASSIGN_OR_RETURN(key.flags, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(key.protocol, reader.ReadU8());
      LDP_ASSIGN_OR_RETURN(key.algorithm, reader.ReadU8());
      LDP_ASSIGN_OR_RETURN(key.public_key,
                           reader.ReadBytes(end - reader.offset()));
      return check_consumed(std::move(key));
    }
    case RRType::kRRSIG: {
      RrsigRdata sig;
      LDP_ASSIGN_OR_RETURN(uint16_t covered, reader.ReadU16());
      sig.type_covered = static_cast<RRType>(covered);
      LDP_ASSIGN_OR_RETURN(sig.algorithm, reader.ReadU8());
      LDP_ASSIGN_OR_RETURN(sig.labels, reader.ReadU8());
      LDP_ASSIGN_OR_RETURN(sig.original_ttl, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(sig.expiration, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(sig.inception, reader.ReadU32());
      LDP_ASSIGN_OR_RETURN(sig.key_tag, reader.ReadU16());
      LDP_ASSIGN_OR_RETURN(sig.signer, DecodeName(reader));
      LDP_ASSIGN_OR_RETURN(sig.signature,
                           reader.ReadBytes(end - reader.offset()));
      return check_consumed(std::move(sig));
    }
    case RRType::kNSEC: {
      NsecRdata nsec;
      LDP_ASSIGN_OR_RETURN(nsec.next, DecodeName(reader));
      LDP_ASSIGN_OR_RETURN(nsec.types, DecodeTypeBitmap(reader, end));
      return check_consumed(std::move(nsec));
    }
    default: {
      LDP_ASSIGN_OR_RETURN(Bytes data, reader.ReadBytes(rdlength));
      return Rdata(GenericRdata{std::move(data)});
    }
  }
}

std::string RdataToText(const Rdata& rdata) {
  return std::visit(
      [](const auto& r) -> std::string {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          return r.address.ToString();
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          return r.address.ToString();
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          return r.nsdname.ToString();
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          return r.target.ToString();
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          return r.target.ToString();
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          return r.mname.ToString() + " " + r.rname.ToString() + " " +
                 std::to_string(r.serial) + " " + std::to_string(r.refresh) +
                 " " + std::to_string(r.retry) + " " +
                 std::to_string(r.expire) + " " + std::to_string(r.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          return std::to_string(r.preference) + " " + r.exchange.ToString();
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          std::string out;
          for (size_t i = 0; i < r.strings.size(); ++i) {
            if (i) out += " ";
            out += CharacterStringToText(r.strings[i]);
          }
          return out;
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          return std::to_string(r.priority) + " " + std::to_string(r.weight) +
                 " " + std::to_string(r.port) + " " + r.target.ToString();
        } else if constexpr (std::is_same_v<T, DsRdata>) {
          return std::to_string(r.key_tag) + " " +
                 std::to_string(r.algorithm) + " " +
                 std::to_string(r.digest_type) + " " + HexEncode(r.digest);
        } else if constexpr (std::is_same_v<T, DnskeyRdata>) {
          return std::to_string(r.flags) + " " + std::to_string(r.protocol) +
                 " " + std::to_string(r.algorithm) + " " +
                 Base64Encode(r.public_key);
        } else if constexpr (std::is_same_v<T, RrsigRdata>) {
          return RRTypeToString(r.type_covered) + " " +
                 std::to_string(r.algorithm) + " " + std::to_string(r.labels) +
                 " " + std::to_string(r.original_ttl) + " " +
                 std::to_string(r.expiration) + " " +
                 std::to_string(r.inception) + " " + std::to_string(r.key_tag) +
                 " " + r.signer.ToString() + " " + Base64Encode(r.signature);
        } else if constexpr (std::is_same_v<T, NsecRdata>) {
          std::string out = r.next.ToString();
          for (RRType t : r.types) out += " " + RRTypeToString(t);
          return out;
        } else if constexpr (std::is_same_v<T, GenericRdata>) {
          // RFC 3597 unknown-rdata form.
          return "\\# " + std::to_string(r.data.size()) +
                 (r.data.empty() ? "" : " " + HexEncode(r.data));
        }
      },
      rdata);
}

Result<Rdata> RdataFromText(RRType type,
                            const std::vector<std::string_view>& tokens) {
  auto need = [&](size_t n) -> Status {
    if (tokens.size() < n) {
      return Error(ErrorCode::kParseError,
                   RRTypeToString(type) + " rdata needs " + std::to_string(n) +
                       " fields, got " + std::to_string(tokens.size()));
    }
    return Status::Ok();
  };

  // RFC 3597 generic form is accepted for any type.
  if (!tokens.empty() && tokens[0] == "\\#") {
    LDP_RETURN_IF_ERROR(need(2));
    LDP_ASSIGN_OR_RETURN(uint64_t len, ParseUint64(tokens[1]));
    std::string hex;
    for (size_t i = 2; i < tokens.size(); ++i) hex += std::string(tokens[i]);
    LDP_ASSIGN_OR_RETURN(Bytes data, HexDecode(hex));
    if (data.size() != len) {
      return Error(ErrorCode::kParseError, "\\# length mismatch");
    }
    return Rdata(GenericRdata{std::move(data)});
  }

  switch (type) {
    case RRType::kA: {
      LDP_RETURN_IF_ERROR(need(1));
      LDP_ASSIGN_OR_RETURN(IpAddress addr, IpAddress::Parse(tokens[0]));
      return Rdata(ARdata{addr});
    }
    case RRType::kAAAA: {
      LDP_RETURN_IF_ERROR(need(1));
      LDP_ASSIGN_OR_RETURN(Ipv6Address addr, Ipv6Address::Parse(tokens[0]));
      return Rdata(AaaaRdata{addr});
    }
    case RRType::kNS: {
      LDP_RETURN_IF_ERROR(need(1));
      LDP_ASSIGN_OR_RETURN(Name name, Name::Parse(tokens[0]));
      return Rdata(NsRdata{std::move(name)});
    }
    case RRType::kCNAME: {
      LDP_RETURN_IF_ERROR(need(1));
      LDP_ASSIGN_OR_RETURN(Name name, Name::Parse(tokens[0]));
      return Rdata(CnameRdata{std::move(name)});
    }
    case RRType::kPTR: {
      LDP_RETURN_IF_ERROR(need(1));
      LDP_ASSIGN_OR_RETURN(Name name, Name::Parse(tokens[0]));
      return Rdata(PtrRdata{std::move(name)});
    }
    case RRType::kSOA: {
      LDP_RETURN_IF_ERROR(need(7));
      SoaRdata soa;
      LDP_ASSIGN_OR_RETURN(soa.mname, Name::Parse(tokens[0]));
      LDP_ASSIGN_OR_RETURN(soa.rname, Name::Parse(tokens[1]));
      LDP_ASSIGN_OR_RETURN(soa.serial, TokenToInt<uint32_t>(tokens[2], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(soa.refresh, TokenToInt<uint32_t>(tokens[3], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(soa.retry, TokenToInt<uint32_t>(tokens[4], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(soa.expire, TokenToInt<uint32_t>(tokens[5], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(soa.minimum, TokenToInt<uint32_t>(tokens[6], 0xffffffff));
      return Rdata(std::move(soa));
    }
    case RRType::kMX: {
      LDP_RETURN_IF_ERROR(need(2));
      MxRdata mx;
      LDP_ASSIGN_OR_RETURN(mx.preference, TokenToInt<uint16_t>(tokens[0], 0xffff));
      LDP_ASSIGN_OR_RETURN(mx.exchange, Name::Parse(tokens[1]));
      return Rdata(std::move(mx));
    }
    case RRType::kTXT: {
      LDP_RETURN_IF_ERROR(need(1));
      TxtRdata txt;
      for (auto token : tokens) {
        LDP_ASSIGN_OR_RETURN(std::string s, CharacterStringFromToken(token));
        txt.strings.push_back(std::move(s));
      }
      return Rdata(std::move(txt));
    }
    case RRType::kSRV: {
      LDP_RETURN_IF_ERROR(need(4));
      SrvRdata srv;
      LDP_ASSIGN_OR_RETURN(srv.priority, TokenToInt<uint16_t>(tokens[0], 0xffff));
      LDP_ASSIGN_OR_RETURN(srv.weight, TokenToInt<uint16_t>(tokens[1], 0xffff));
      LDP_ASSIGN_OR_RETURN(srv.port, TokenToInt<uint16_t>(tokens[2], 0xffff));
      LDP_ASSIGN_OR_RETURN(srv.target, Name::Parse(tokens[3]));
      return Rdata(std::move(srv));
    }
    case RRType::kDS: {
      LDP_RETURN_IF_ERROR(need(4));
      DsRdata ds;
      LDP_ASSIGN_OR_RETURN(ds.key_tag, TokenToInt<uint16_t>(tokens[0], 0xffff));
      LDP_ASSIGN_OR_RETURN(ds.algorithm, TokenToInt<uint8_t>(tokens[1], 0xff));
      LDP_ASSIGN_OR_RETURN(ds.digest_type, TokenToInt<uint8_t>(tokens[2], 0xff));
      std::string hex;
      for (size_t i = 3; i < tokens.size(); ++i) hex += std::string(tokens[i]);
      LDP_ASSIGN_OR_RETURN(ds.digest, HexDecode(hex));
      return Rdata(std::move(ds));
    }
    case RRType::kDNSKEY: {
      LDP_RETURN_IF_ERROR(need(4));
      DnskeyRdata key;
      LDP_ASSIGN_OR_RETURN(key.flags, TokenToInt<uint16_t>(tokens[0], 0xffff));
      LDP_ASSIGN_OR_RETURN(key.protocol, TokenToInt<uint8_t>(tokens[1], 0xff));
      LDP_ASSIGN_OR_RETURN(key.algorithm, TokenToInt<uint8_t>(tokens[2], 0xff));
      std::string b64;
      for (size_t i = 3; i < tokens.size(); ++i) b64 += std::string(tokens[i]);
      LDP_ASSIGN_OR_RETURN(key.public_key, Base64Decode(b64));
      return Rdata(std::move(key));
    }
    case RRType::kRRSIG: {
      LDP_RETURN_IF_ERROR(need(9));
      RrsigRdata sig;
      LDP_ASSIGN_OR_RETURN(sig.type_covered, RRTypeFromString(tokens[0]));
      LDP_ASSIGN_OR_RETURN(sig.algorithm, TokenToInt<uint8_t>(tokens[1], 0xff));
      LDP_ASSIGN_OR_RETURN(sig.labels, TokenToInt<uint8_t>(tokens[2], 0xff));
      LDP_ASSIGN_OR_RETURN(sig.original_ttl,
                           TokenToInt<uint32_t>(tokens[3], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(sig.expiration,
                           TokenToInt<uint32_t>(tokens[4], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(sig.inception,
                           TokenToInt<uint32_t>(tokens[5], 0xffffffff));
      LDP_ASSIGN_OR_RETURN(sig.key_tag, TokenToInt<uint16_t>(tokens[6], 0xffff));
      LDP_ASSIGN_OR_RETURN(sig.signer, Name::Parse(tokens[7]));
      std::string b64;
      for (size_t i = 8; i < tokens.size(); ++i) b64 += std::string(tokens[i]);
      LDP_ASSIGN_OR_RETURN(sig.signature, Base64Decode(b64));
      return Rdata(std::move(sig));
    }
    case RRType::kNSEC: {
      LDP_RETURN_IF_ERROR(need(1));
      NsecRdata nsec;
      LDP_ASSIGN_OR_RETURN(nsec.next, Name::Parse(tokens[0]));
      for (size_t i = 1; i < tokens.size(); ++i) {
        LDP_ASSIGN_OR_RETURN(RRType t, RRTypeFromString(tokens[i]));
        nsec.types.push_back(t);
      }
      std::sort(nsec.types.begin(), nsec.types.end(),
                [](RRType a, RRType b) {
                  return static_cast<uint16_t>(a) < static_cast<uint16_t>(b);
                });
      return Rdata(std::move(nsec));
    }
    default:
      return Error(ErrorCode::kUnsupported,
                   "no text parser for type " + RRTypeToString(type) +
                       " (use the RFC 3597 \\# form)");
  }
}

RRType RdataType(const Rdata& rdata) {
  return std::visit(
      [](const auto& r) -> RRType {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARdata>) return RRType::kA;
        else if constexpr (std::is_same_v<T, AaaaRdata>) return RRType::kAAAA;
        else if constexpr (std::is_same_v<T, NsRdata>) return RRType::kNS;
        else if constexpr (std::is_same_v<T, CnameRdata>) return RRType::kCNAME;
        else if constexpr (std::is_same_v<T, PtrRdata>) return RRType::kPTR;
        else if constexpr (std::is_same_v<T, SoaRdata>) return RRType::kSOA;
        else if constexpr (std::is_same_v<T, MxRdata>) return RRType::kMX;
        else if constexpr (std::is_same_v<T, TxtRdata>) return RRType::kTXT;
        else if constexpr (std::is_same_v<T, SrvRdata>) return RRType::kSRV;
        else if constexpr (std::is_same_v<T, DsRdata>) return RRType::kDS;
        else if constexpr (std::is_same_v<T, DnskeyRdata>) return RRType::kDNSKEY;
        else if constexpr (std::is_same_v<T, RrsigRdata>) return RRType::kRRSIG;
        else if constexpr (std::is_same_v<T, NsecRdata>) return RRType::kNSEC;
        else return RRType::kANY;
      },
      rdata);
}

size_t RdataWireLength(const Rdata& rdata) {
  NameCompressor compressor;
  ByteWriter writer;
  EncodeRdata(rdata, compressor, writer);
  return writer.size();
}

}  // namespace ldp::dns
