// Typed RDATA payloads (RFC 1035 §3.3, RFC 4034) with wire and presentation
// codecs. Unknown types round-trip losslessly through GenericRdata using the
// RFC 3597 \# convention.
#ifndef LDPLAYER_DNS_RDATA_H
#define LDPLAYER_DNS_RDATA_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/ip.h"
#include "common/result.h"
#include "dns/name.h"
#include "dns/types.h"

namespace ldp::dns {

struct ARdata {
  IpAddress address;
  bool operator==(const ARdata&) const = default;
};

struct AaaaRdata {
  Ipv6Address address;
  bool operator==(const AaaaRdata&) const = default;
};

struct NsRdata {
  Name nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  Name target;
  bool operator==(const CnameRdata&) const = default;
};

struct PtrRdata {
  Name target;
  bool operator==(const PtrRdata&) const = default;
};

struct SoaRdata {
  Name mname;     // primary nameserver
  Name rname;     // responsible mailbox
  uint32_t serial = 0;
  uint32_t refresh = 0;
  uint32_t retry = 0;
  uint32_t expire = 0;
  uint32_t minimum = 0;  // negative-caching TTL (RFC 2308)
  bool operator==(const SoaRdata&) const = default;
};

struct MxRdata {
  uint16_t preference = 0;
  Name exchange;
  bool operator==(const MxRdata&) const = default;
};

struct TxtRdata {
  // One or more <character-string>s, each <= 255 octets on the wire.
  std::vector<std::string> strings;
  bool operator==(const TxtRdata&) const = default;
};

struct SrvRdata {
  uint16_t priority = 0;
  uint16_t weight = 0;
  uint16_t port = 0;
  Name target;
  bool operator==(const SrvRdata&) const = default;
};

struct DsRdata {
  uint16_t key_tag = 0;
  uint8_t algorithm = 0;
  uint8_t digest_type = 0;
  Bytes digest;
  bool operator==(const DsRdata&) const = default;
};

struct DnskeyRdata {
  uint16_t flags = 0;      // 256 = ZSK, 257 = KSK
  uint8_t protocol = 3;    // always 3 (RFC 4034 §2.1.2)
  uint8_t algorithm = 0;   // 8 = RSASHA256 in our synthetic zones
  Bytes public_key;
  bool operator==(const DnskeyRdata&) const = default;
};

struct RrsigRdata {
  RRType type_covered = RRType::kA;
  uint8_t algorithm = 0;
  uint8_t labels = 0;
  uint32_t original_ttl = 0;
  uint32_t expiration = 0;  // seconds since epoch
  uint32_t inception = 0;
  uint16_t key_tag = 0;
  Name signer;
  Bytes signature;
  bool operator==(const RrsigRdata&) const = default;
};

struct NsecRdata {
  Name next;
  std::vector<RRType> types;  // kept sorted by numeric value
  bool operator==(const NsecRdata&) const = default;
};

// Fallback for types without a dedicated struct; also used for OPT options.
struct GenericRdata {
  Bytes data;
  bool operator==(const GenericRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, PtrRdata,
                           SoaRdata, MxRdata, TxtRdata, SrvRdata, DsRdata,
                           DnskeyRdata, RrsigRdata, NsecRdata, GenericRdata>;

// Appends the RDATA wire form (without the RDLENGTH prefix). Names inside
// RDATA are compressed only for the types where RFC 1035/3597 permit it
// (NS, CNAME, PTR, SOA, MX); DNSSEC types always encode uncompressed.
void EncodeRdata(const Rdata& rdata, NameCompressor& compressor,
                 ByteWriter& writer);

// Decodes RDLENGTH octets at the reader's cursor into a typed payload.
// `reader` must be positioned inside the full message buffer so that
// compression pointers resolve.
Result<Rdata> DecodeRdata(RRType type, uint16_t rdlength, ByteReader& reader);

// Presentation format (master-file RHS), e.g. "10 mail.example.com." for MX.
std::string RdataToText(const Rdata& rdata);

// Parses master-file tokens into a typed payload for the given RRType.
Result<Rdata> RdataFromText(RRType type,
                            const std::vector<std::string_view>& tokens);

// The RRType a typed payload corresponds to (GenericRdata needs the caller
// to track its type; this returns kANY for it).
RRType RdataType(const Rdata& rdata);

// Wire length of the encoded RDATA with no compression (used for response
// size accounting).
size_t RdataWireLength(const Rdata& rdata);

}  // namespace ldp::dns

#endif  // LDPLAYER_DNS_RDATA_H
