#include "dns/rr.h"

namespace ldp::dns {

std::string ResourceRecord::ToText() const {
  return name.ToString() + " " + std::to_string(ttl) + " " +
         RRClassToString(klass) + " " + RRTypeToString(type) + " " +
         RdataToText(rdata);
}

std::vector<ResourceRecord> RRset::ToRecords() const {
  std::vector<ResourceRecord> records;
  records.reserve(rdatas.size());
  for (const auto& rdata : rdatas) {
    records.push_back(ResourceRecord{name, type, klass, ttl, rdata});
  }
  return records;
}

}  // namespace ldp::dns
