// ResourceRecord and RRset containers.
#ifndef LDPLAYER_DNS_RR_H
#define LDPLAYER_DNS_RR_H

#include <cstdint>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/rdata.h"
#include "dns/types.h"

namespace ldp::dns {

struct ResourceRecord {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;
  uint32_t ttl = 0;
  Rdata rdata = GenericRdata{};

  // One-line master-file rendering: "name ttl class type rdata".
  std::string ToText() const;

  bool operator==(const ResourceRecord&) const = default;
};

// All records sharing (name, type, class); the unit of DNS responses and of
// DNSSEC signing.
struct RRset {
  Name name;
  RRType type = RRType::kA;
  RRClass klass = RRClass::kIN;
  uint32_t ttl = 0;
  std::vector<Rdata> rdatas;

  bool empty() const { return rdatas.empty(); }
  size_t size() const { return rdatas.size(); }

  // Expands into individual records (shared TTL).
  std::vector<ResourceRecord> ToRecords() const;

  bool operator==(const RRset&) const = default;
};

}  // namespace ldp::dns

#endif  // LDPLAYER_DNS_RR_H
