#include "dns/types.h"

#include "common/strings.h"

namespace ldp::dns {
namespace {

struct TypeName {
  RRType type;
  std::string_view name;
};

constexpr TypeName kTypeNames[] = {
    {RRType::kA, "A"},         {RRType::kNS, "NS"},
    {RRType::kCNAME, "CNAME"}, {RRType::kSOA, "SOA"},
    {RRType::kPTR, "PTR"},     {RRType::kMX, "MX"},
    {RRType::kTXT, "TXT"},     {RRType::kAAAA, "AAAA"},
    {RRType::kSRV, "SRV"},     {RRType::kOPT, "OPT"},
    {RRType::kDS, "DS"},       {RRType::kRRSIG, "RRSIG"},
    {RRType::kNSEC, "NSEC"},   {RRType::kDNSKEY, "DNSKEY"},
    {RRType::kCAA, "CAA"},     {RRType::kANY, "ANY"},
    {RRType::kAXFR, "AXFR"},
};

struct ClassName {
  RRClass klass;
  std::string_view name;
};

constexpr ClassName kClassNames[] = {
    {RRClass::kIN, "IN"},     {RRClass::kCH, "CH"},
    {RRClass::kHS, "HS"},     {RRClass::kNone, "NONE"},
    {RRClass::kAny, "ANY"},
};

}  // namespace

std::string RRTypeToString(RRType type) {
  for (const auto& entry : kTypeNames) {
    if (entry.type == type) return std::string(entry.name);
  }
  return "TYPE" + std::to_string(static_cast<uint16_t>(type));
}

Result<RRType> RRTypeFromString(std::string_view text) {
  for (const auto& entry : kTypeNames) {
    if (EqualsIgnoreCase(text, entry.name)) return entry.type;
  }
  if (StartsWith(text, "TYPE") || StartsWith(text, "type")) {
    LDP_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(text.substr(4)));
    if (value > 0xffff) {
      return Error(ErrorCode::kOutOfRange, "RR type > 65535");
    }
    return static_cast<RRType>(value);
  }
  return Error(ErrorCode::kParseError,
               "unknown RR type: " + std::string(text));
}

std::string RRClassToString(RRClass klass) {
  for (const auto& entry : kClassNames) {
    if (entry.klass == klass) return std::string(entry.name);
  }
  return "CLASS" + std::to_string(static_cast<uint16_t>(klass));
}

Result<RRClass> RRClassFromString(std::string_view text) {
  for (const auto& entry : kClassNames) {
    if (EqualsIgnoreCase(text, entry.name)) return entry.klass;
  }
  if (StartsWith(text, "CLASS") || StartsWith(text, "class")) {
    LDP_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(text.substr(5)));
    if (value > 0xffff) {
      return Error(ErrorCode::kOutOfRange, "RR class > 65535");
    }
    return static_cast<RRClass>(value);
  }
  return Error(ErrorCode::kParseError,
               "unknown RR class: " + std::string(text));
}

std::string_view RcodeToString(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
    case Rcode::kYXDomain: return "YXDOMAIN";
    case Rcode::kNotAuth: return "NOTAUTH";
    case Rcode::kNotZone: return "NOTZONE";
  }
  return "RCODE?";
}

std::string_view OpcodeToString(Opcode opcode) {
  switch (opcode) {
    case Opcode::kQuery: return "QUERY";
    case Opcode::kIQuery: return "IQUERY";
    case Opcode::kStatus: return "STATUS";
    case Opcode::kNotify: return "NOTIFY";
    case Opcode::kUpdate: return "UPDATE";
  }
  return "OPCODE?";
}

}  // namespace ldp::dns
