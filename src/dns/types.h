// DNS enumerations: record types, classes, opcodes, response codes
// (RFC 1035 §3.2, RFC 2136, RFC 4034, RFC 6891).
#ifndef LDPLAYER_DNS_TYPES_H
#define LDPLAYER_DNS_TYPES_H

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace ldp::dns {

enum class RRType : uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kSRV = 33,
  kOPT = 41,    // EDNS0 pseudo-RR (RFC 6891)
  kDS = 43,     // RFC 4034
  kRRSIG = 46,  // RFC 4034
  kNSEC = 47,   // RFC 4034
  kDNSKEY = 48, // RFC 4034
  kCAA = 257,
  kAXFR = 252,  // zone-transfer QTYPE (RFC 5936); stream transports only
  kANY = 255,
};

enum class RRClass : uint16_t {
  kIN = 1,
  kCH = 3,
  kHS = 4,
  kNone = 254,
  kAny = 255,
};

enum class Opcode : uint8_t {
  kQuery = 0,
  kIQuery = 1,
  kStatus = 2,
  kNotify = 4,
  kUpdate = 5,
};

enum class Rcode : uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
  kYXDomain = 6,
  kNotAuth = 9,
  kNotZone = 10,
};

// Mnemonic <-> value conversions. Unknown types render/parse using the
// RFC 3597 "TYPE12345" convention, so the codec never loses information.
std::string RRTypeToString(RRType type);
Result<RRType> RRTypeFromString(std::string_view text);

std::string RRClassToString(RRClass klass);
Result<RRClass> RRClassFromString(std::string_view text);

std::string_view RcodeToString(Rcode rcode);
std::string_view OpcodeToString(Opcode opcode);

}  // namespace ldp::dns

#endif  // LDPLAYER_DNS_TYPES_H
