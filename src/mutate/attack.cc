#include "mutate/attack.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "dns/types.h"

namespace ldp::mutate {

IpAddress SpoofedSource(Rng& rng) {
  constexpr uint32_t span = 1u << (32 - kSpoofedSourcePrefixBits);
  // Skip offset 0 so the network address is never a "client".
  uint32_t offset = 1 + static_cast<uint32_t>(rng.NextBelow(span - 1));
  return IpAddress(kSpoofedSourceBase.value() + offset);
}

std::string_view AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNxdomainFlood:
      return "nxdomain";
    case AttackKind::kAmplification:
      return "amplification";
    case AttackKind::kSpoofedFlood:
      return "spoofed";
  }
  return "unknown";
}

Result<AttackKind> AttackKindFromString(std::string_view text) {
  if (text == "nxdomain") return AttackKind::kNxdomainFlood;
  if (text == "amplification") return AttackKind::kAmplification;
  if (text == "spoofed") return AttackKind::kSpoofedFlood;
  return Error(ErrorCode::kInvalidArgument,
               "unknown attack kind '" + std::string(text) +
                   "' (expected nxdomain, amplification, or spoofed)");
}

namespace {

// A junk label carrying the record index keeps every NXDOMAIN-flood qname
// unique by construction: random tails alone collide at flood volumes
// (birthday bound ~1.2M for 5 base32 chars), and a collision would be a
// cache hit — silently weakening the cache-bypass property under test.
std::string JunkLabel(size_t index, Rng& rng) {
  char buf[32];
  uint64_t tail = rng.NextU64();
  int n = std::snprintf(buf, sizeof buf, "a%zx-%05llx", index,
                        static_cast<unsigned long long>(tail & 0xfffff));
  return std::string(buf, static_cast<size_t>(n));
}

}  // namespace

std::vector<trace::QueryRecord> MakeAttackTrace(const AttackConfig& config) {
  assert(config.rate_qps > 0 && config.duration > 0);
  Rng rng(config.seed);
  const auto count = static_cast<size_t>(
      std::ceil(config.rate_qps * ToSeconds(config.duration)));
  const double interval_ns =
      static_cast<double>(config.duration) / static_cast<double>(count);

  // Pre-draw the source pool for the spoofed flood so the flood cycles
  // through exactly n_sources distinct endpoints (each new endpoint is one
  // proxy flow; cycling beyond flow capacity is what forces LRU churn).
  std::vector<IpAddress> pool;
  if (config.kind == AttackKind::kSpoofedFlood) {
    pool.reserve(config.n_sources);
    for (size_t i = 0; i < config.n_sources; ++i)
      pool.push_back(SpoofedSource(rng));
  }

  std::vector<trace::QueryRecord> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    trace::QueryRecord r;
    r.timestamp =
        config.start + static_cast<NanoTime>(interval_ns * static_cast<double>(i));
    r.dst = config.server;
    r.dst_port = config.dst_port;
    r.protocol = config.protocol;
    r.id = static_cast<uint16_t>(rng.NextU64());
    r.src_port = static_cast<uint16_t>(1024 + rng.NextBelow(64512));
    switch (config.kind) {
      case AttackKind::kNxdomainFlood: {
        r.src = SpoofedSource(rng);
        auto child = config.apex.Child(JunkLabel(i, rng));
        assert(child.ok());  // junk labels are short hex, always valid
        r.qname = std::move(child).value();
        r.qtype = dns::RRType::kA;
        break;
      }
      case AttackKind::kAmplification: {
        r.src = SpoofedSource(rng);
        r.qname = config.apex;
        // ANY harvests every apex RRset; DNSKEY alone is the next-best
        // amplifier where ANY is refused (RFC 8482). Alternate so the
        // trace exercises both shapes.
        r.qtype = (i % 2 == 0) ? dns::RRType::kANY : dns::RRType::kDNSKEY;
        r.edns = true;
        r.udp_payload_size = 4096;
        r.do_bit = true;
        break;
      }
      case AttackKind::kSpoofedFlood: {
        r.src = pool[i % pool.size()];
        // One fixed, cacheable question: the server answers from its
        // response cache for free, isolating the middlebox (flow table)
        // as the component under stress.
        r.qname = config.apex;
        r.qtype = dns::RRType::kNS;
        break;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<bool> OverlayAttack(std::vector<trace::QueryRecord>& base,
                                std::vector<trace::QueryRecord> attack) {
  struct Tagged {
    trace::QueryRecord record;
    bool is_attack;
  };
  std::vector<Tagged> merged;
  merged.reserve(base.size() + attack.size());
  for (auto& r : base) merged.push_back({std::move(r), false});
  for (auto& r : attack) merged.push_back({std::move(r), true});
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.record.timestamp < b.record.timestamp;
                   });
  base.clear();
  base.reserve(merged.size());
  std::vector<bool> mask;
  mask.reserve(merged.size());
  for (auto& t : merged) {
    base.push_back(std::move(t.record));
    mask.push_back(t.is_attack);
  }
  return mask;
}

}  // namespace ldp::mutate
