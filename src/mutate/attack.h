// Attack-trace generators (paper §1/§5: "study of server hardware and
// software under denial-of-service attack"). Each generator emits a plain
// trace::QueryRecord vector, so attack traffic rides the exact machinery
// legitimate replay uses — the mutation pipeline, the sim engine, and the
// real-socket realtime replayer — and overlays compose with any base trace
// by timestamp merge.
//
// This is the single source of truth for attack traffic: the scenario
// engine (src/scenario/), `ldp_mutate_trace --attack`, and
// `bench/ext_dos_attack` all draw from here.
#ifndef LDPLAYER_MUTATE_ATTACK_H
#define LDPLAYER_MUTATE_ATTACK_H

#include <string_view>
#include <vector>

#include "common/ip.h"
#include "common/result.h"
#include "common/rng.h"
#include "dns/name.h"
#include "trace/record.h"

namespace ldp::mutate {

// Spoofed attack sources are drawn from one reserved /8 — 11.0.0.0/8,
// unassigned in every testbed this repo builds (hierarchies use 198.51./
// 203.0. documentation space, replay clients use 127/8 and 10/8) — so
// attack traffic is separable from legitimate traffic by source prefix
// alone, in traces and in catchment maps alike.
inline constexpr IpAddress kSpoofedSourceBase = IpAddress(11, 0, 0, 0);
inline constexpr int kSpoofedSourcePrefixBits = 8;
static_assert((kSpoofedSourceBase.value() &
               ((1u << (32 - kSpoofedSourcePrefixBits)) - 1)) == 0,
              "spoofed-source base must sit on its /8 boundary");

// A uniform draw from the spoofed /8 (never the network address itself).
IpAddress SpoofedSource(Rng& rng);

// True iff `addr` lies inside the spoofed-source /8 — the separability
// predicate benches use to split attack from legitimate outcomes.
constexpr bool IsSpoofedSource(IpAddress addr) {
  constexpr uint32_t mask =
      ~((1u << (32 - kSpoofedSourcePrefixBits)) - 1);
  return (addr.value() & mask) == kSpoofedSourceBase.value();
}

enum class AttackKind {
  // Random-subdomain flood: every query a unique junk name under the apex,
  // guaranteed NXDOMAIN. Bypasses the response cache (no two queries share
  // a cache key) and stresses view lookup plus the negative-answer path.
  kNxdomainFlood,
  // DNSSEC amplification: ANY/DNSKEY queries with DO + EDNS 4096 at the
  // apex of a signed zone. Tiny queries, signature-laden responses — the
  // classic reflection amplifier. Pair with scenario::ComputeAmplification
  // to get the response/query byte ratio off the signed zone.
  kAmplification,
  // Spoofed-source flood: a cheap, cacheable query repeated from a churn
  // of distinct spoofed endpoints. Harmless to the server, hostile to
  // stateful middleboxes: each new (source, OQDA) pair is a fresh
  // HierarchyProxy flow, so the flood LRU-thrashes the flow table
  // (flows_evicted) and late replies land on drained flows
  // (evicted_drops).
  kSpoofedFlood,
};

std::string_view AttackKindName(AttackKind kind);
Result<AttackKind> AttackKindFromString(std::string_view text);

struct AttackConfig {
  AttackKind kind = AttackKind::kNxdomainFlood;
  double rate_qps = 1000;
  NanoDuration duration = Seconds(10);
  // Timestamp of the first attack query (trace-epoch relative), so an
  // overlay can start mid-trace.
  NanoTime start = 0;
  // Where attack queries go: the victim nameserver's address (an OQDA when
  // the attack rides through the hierarchy proxy).
  IpAddress server;
  uint16_t dst_port = 53;
  // Zone under attack: junk subdomains go below it (NXDOMAIN flood), and
  // amplification queries ask for its apex RRsets.
  dns::Name apex;  // default-constructed = root
  trace::Protocol protocol = trace::Protocol::kUdp;
  // Distinct spoofed sources to cycle through (spoofed flood); the
  // NXDOMAIN and amplification floods draw a fresh source per query.
  size_t n_sources = 1 << 16;
  uint64_t seed = 0xa77ac;
};

// Generates the attack trace for `config`: ceil(rate * duration) records,
// evenly spaced over [start, start + duration), sources inside
// kSpoofedSourceBase/8. Deterministic in the seed.
std::vector<trace::QueryRecord> MakeAttackTrace(const AttackConfig& config);

// Merges `attack` into `base` by timestamp (stable: base records win ties)
// and returns a mask aligned with the merged `base`, true where the record
// came from the overlay. The mask lines up with RealtimeReport::sends, so
// per-class outcome accounting falls out of one replay.
std::vector<bool> OverlayAttack(std::vector<trace::QueryRecord>& base,
                                std::vector<trace::QueryRecord> attack);

}  // namespace ldp::mutate

#endif  // LDPLAYER_MUTATE_ATTACK_H
