#include "mutate/mutate.h"

#include <cmath>

namespace ldp::mutate {
namespace {

// splitmix64: index+seed -> uniform u64, for deterministic per-record coins.
uint64_t HashIndex(uint64_t index, uint64_t seed) {
  uint64_t z = index + seed * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool Coin(uint64_t index, uint64_t seed, double probability) {
  return static_cast<double>(HashIndex(index, seed) >> 11) * 0x1.0p-53 <
         probability;
}

}  // namespace

void MutationPipeline::Apply(std::vector<trace::QueryRecord>& records) const {
  size_t write = 0;
  for (size_t read = 0; read < records.size(); ++read) {
    trace::QueryRecord& record = records[read];
    if (ApplyOne(record, read)) {
      if (write != read) records[write] = std::move(record);
      ++write;
    }
  }
  records.resize(write);
}

bool MutationPipeline::ApplyOne(trace::QueryRecord& record,
                                size_t index) const {
  for (const auto& pass : passes_) {
    if (!pass(record, index)) return false;
  }
  return true;
}

Mutation ForceProtocol(trace::Protocol protocol) {
  return [protocol](trace::QueryRecord& record, size_t) {
    record.protocol = protocol;
    return true;
  };
}

Mutation SetDnssecOk(double fraction, uint64_t seed) {
  return [fraction, seed](trace::QueryRecord& record, size_t index) {
    bool want = fraction >= 1.0 || Coin(index, seed, fraction);
    record.do_bit = want;
    if (want) {
      record.edns = true;
      if (record.udp_payload_size == 0) record.udp_payload_size = 4096;
    }
    return true;
  };
}

Mutation SetEdnsSize(uint16_t size) {
  return [size](trace::QueryRecord& record, size_t) {
    if (record.edns) record.udp_payload_size = size;
    return true;
  };
}

Mutation PrependUniqueLabel(std::string prefix) {
  return [prefix = std::move(prefix)](trace::QueryRecord& record,
                                      size_t index) {
    auto child = record.qname.Child(prefix + std::to_string(index));
    if (child.ok()) record.qname = std::move(*child);
    // Names already at the 255-octet limit keep their original qname: the
    // replay still works, the query just cannot be uniquely matched.
    return true;
  };
}

Mutation TimeScale(double factor) {
  return [factor](trace::QueryRecord& record, size_t) {
    record.timestamp = static_cast<NanoTime>(
        std::llround(static_cast<double>(record.timestamp) * factor));
    return true;
  };
}

Mutation TimeShift(NanoDuration delta) {
  return [delta](trace::QueryRecord& record, size_t) {
    record.timestamp += delta;
    return true;
  };
}

Mutation RebaseToZero(NanoTime first_timestamp) {
  return [first_timestamp](trace::QueryRecord& record, size_t) {
    record.timestamp -= first_timestamp;
    return true;
  };
}

Mutation Sample(double fraction, uint64_t seed) {
  return [fraction, seed](trace::QueryRecord&, size_t index) {
    return Coin(index, seed, fraction);
  };
}

Mutation KeepOnlyProtocol(trace::Protocol protocol) {
  return [protocol](trace::QueryRecord& record, size_t) {
    return record.protocol == protocol;
  };
}

}  // namespace ldp::mutate
