// Query mutation (paper §2.5): composable passes that transform a trace
// into a "what-if" variant — all-TCP, all-TLS, 100% DNSSEC, scaled time,
// sampled load. A pass sees each record (with its index) and returns
// whether to keep it, so rewrites and filters compose in one pipeline.
//
// Passes run over the in-memory record vector (the pre-processing lane of
// Figure 3); MutationPipeline::ApplyOne supports streaming use at lower
// rates ("in principle ... manipulate a live query stream", §2.2).
#ifndef LDPLAYER_MUTATE_MUTATE_H
#define LDPLAYER_MUTATE_MUTATE_H

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "trace/record.h"

namespace ldp::mutate {

// Returns true to keep the record, false to drop it from the trace.
using Mutation = std::function<bool(trace::QueryRecord&, size_t index)>;

class MutationPipeline {
 public:
  MutationPipeline& Add(Mutation mutation) {
    passes_.push_back(std::move(mutation));
    return *this;
  }

  // In-place transformation of a whole trace.
  void Apply(std::vector<trace::QueryRecord>& records) const;

  // Streaming: mutate one record; false means the record was dropped.
  bool ApplyOne(trace::QueryRecord& record, size_t index) const;

  size_t pass_count() const { return passes_.size(); }

 private:
  std::vector<Mutation> passes_;
};

// --- Protocol & DNSSEC what-ifs (paper §5) ---

// Rewrites every query's transport: the §5.2 all-TCP / all-TLS experiments.
Mutation ForceProtocol(trace::Protocol protocol);

// Sets the DO bit (and EDNS) on a deterministic `fraction` of queries;
// 1.0 = the §5.1 "all queries with DO bit" scenario. Selection is by a
// seeded hash of the index so re-runs are identical.
Mutation SetDnssecOk(double fraction, uint64_t seed = 0xd0);

// Forces an EDNS payload size on queries that carry EDNS.
Mutation SetEdnsSize(uint16_t size);

// --- Replay bookkeeping ---

// Prepends "<prefix><index>." to each qname, the paper's §4.2 technique for
// matching replayed queries with responses after the fact.
Mutation PrependUniqueLabel(std::string prefix);

// --- Time manipulation ---

// Multiplies timestamps by `factor` (2.0 = half speed, 0.5 = double rate).
Mutation TimeScale(double factor);
// Adds a constant offset.
Mutation TimeShift(NanoDuration delta);
// Rebases the trace so the first record is at t=0 (index-order aware).
Mutation RebaseToZero(NanoTime first_timestamp);

// --- Load shaping ---

// Keeps a deterministic `fraction` of queries.
Mutation Sample(double fraction, uint64_t seed = 0x5a);

// Drops queries not using `protocol`.
Mutation KeepOnlyProtocol(trace::Protocol protocol);

}  // namespace ldp::mutate

#endif  // LDPLAYER_MUTATE_MUTATE_H
