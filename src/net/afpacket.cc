// AF_PACKET (TPACKET_V3 rx / TPACKET_V2 tx) backend. The packet walk:
//
//   rx: the kernel runs our classic-BPF filter ("IPv4, UDP, not a
//   fragment, dst port == ours [, dst addr == ours]") against every frame
//   on the interface — after PACKET_FANOUT has hashed the flow to one
//   shard's ring — and appends matches to the current rx block. A block
//   reaches userspace (TP_STATUS_USER, one epoll wakeup) when full or
//   when the retire timer fires. We walk its frames in place: parse
//   headers with the userspace codec, hand payload *spans into the block*
//   to the batch handler, then release the block back to the kernel.
//   PACKET_IGNORE_OUTGOING (plus a per-frame sll_pkttype check for older
//   kernels) keeps our own transmissions out of the ring.
//
//   tx: replies are assembled directly in a free TPACKET_V2 slot —
//   Ethernet/IPv4/UDP headers, checksums, payload copy; the only copy on
//   the tx path — marked TP_STATUS_SEND_REQUEST, and handed to the kernel
//   with one zero-length send() per batch. The kernel walks the ring,
//   transmits (PACKET_QDISC_BYPASS skips the qdisc), and flips slots back
//   to TP_STATUS_AVAILABLE for reuse: frames never leave the mmap.
//
//   The shadow kernel UDP socket bound to the same endpoint does no I/O
//   (a drop-all BPF filter empties its queue): it reserves the port from
//   other processes, resolves port-0 binds, and keeps the kernel from
//   answering our traffic with ICMP port-unreachable.
#include "net/afpacket.h"

#include <linux/filter.h>
#include <linux/if_ether.h>
#include <linux/if_packet.h>
#include <net/if.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace ldp::net {

namespace {

// Not in older uapi headers.
#ifndef PACKET_IGNORE_OUTGOING
#define PACKET_IGNORE_OUTGOING 23
#endif
#ifndef PACKET_QDISC_BYPASS
#define PACKET_QDISC_BYPASS 20
#endif

Error Errno(ErrorCode code, const std::string& what) {
  return Error(code, what + ": " + std::strerror(errno));
}

sockaddr_in ToSockaddr(Endpoint endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr.s_addr = htonl(endpoint.addr.value());
  return addr;
}

Status AttachFilter(int fd, std::span<sock_filter> insns,
                    const char* what) {
  sock_fprog prog{};
  prog.len = static_cast<unsigned short>(insns.size());
  prog.filter = insns.data();
  if (::setsockopt(fd, SOL_SOCKET, SO_ATTACH_FILTER, &prog, sizeof(prog)) !=
      0) {
    return Errno(ErrorCode::kIoError, std::string("attach ") + what);
  }
  return Status::Ok();
}

// Accept nothing: keeps a socket's receive queue permanently empty.
Status AttachDropAllFilter(int fd, const char* what) {
  sock_filter drop[] = {BPF_STMT(BPF_RET | BPF_K, 0)};
  return AttachFilter(fd, drop, what);
}

// "IPv4, UDP, not a fragment, dst port == `port` [, dst addr == `addr`]".
// Offsets are from the Ethernet header; the dst address sits at a fixed
// offset while the UDP header position honors the IHL (X register).
std::vector<sock_filter> BuildSteeringFilter(uint16_t port, IpAddress addr) {
  const bool match_addr = !addr.IsUnspecified();
  std::vector<sock_filter> prog;
  constexpr uint8_t kToDrop = 0xff;  // patched below
  auto stmt = [&](uint16_t code, uint32_t k) {
    prog.push_back(BPF_STMT(code, k));
  };
  auto jump = [&](uint16_t code, uint32_t k, uint8_t jt, uint8_t jf) {
    prog.push_back(BPF_JUMP(code, k, jt, jf));
  };
  stmt(BPF_LD | BPF_H | BPF_ABS, 12);  // EtherType
  jump(BPF_JMP | BPF_JEQ | BPF_K, ETH_P_IP, 0, kToDrop);
  stmt(BPF_LD | BPF_B | BPF_ABS, 23);  // IP protocol
  jump(BPF_JMP | BPF_JEQ | BPF_K, 17, 0, kToDrop);
  stmt(BPF_LD | BPF_H | BPF_ABS, 20);  // flags + fragment offset
  jump(BPF_JMP | BPF_JSET | BPF_K, 0x1fff, kToDrop, 0);
  if (match_addr) {
    stmt(BPF_LD | BPF_W | BPF_ABS, 30);  // IPv4 dst (fixed offset)
    jump(BPF_JMP | BPF_JEQ | BPF_K, addr.value(), 0, kToDrop);
  }
  stmt(BPF_LDX | BPF_B | BPF_MSH, 14);  // X = IHL * 4
  stmt(BPF_LD | BPF_H | BPF_IND, 16);   // UDP dst port at 14 + X + 2
  jump(BPF_JMP | BPF_JEQ | BPF_K, port, 0, kToDrop);
  stmt(BPF_RET | BPF_K, 0x40000);  // accept, generous snaplen
  const uint8_t drop_idx = static_cast<uint8_t>(prog.size());
  stmt(BPF_RET | BPF_K, 0);
  for (uint8_t i = 0; i < drop_idx; ++i) {
    if (BPF_CLASS(prog[i].code) != BPF_JMP) continue;
    if (prog[i].jt == kToDrop) prog[i].jt = drop_idx - i - 1;
    if (prog[i].jf == kToDrop) prog[i].jf = drop_idx - i - 1;
  }
  return prog;
}

// Bounded blocks consumed per wakeup, so a flooded ring cannot starve
// timers and the tx path (mirrors UdpSocket::OnReadable's 8-batch cap).
constexpr size_t kMaxBlocksPerWakeup = 8;

}  // namespace

Result<std::unique_ptr<DatagramPath>> AfPacketPath::Open(
    EventLoop& loop, Endpoint local, BatchHandler on_batch,
    const DatapathOptions& options) {
  auto path = std::unique_ptr<AfPacketPath>(
      new AfPacketPath(loop, std::move(on_batch)));
  if (options.metrics != nullptr) path->RegisterMetrics(*options.metrics);
  LDP_RETURN_IF_ERROR(path->Init(local, options));
  return std::unique_ptr<DatagramPath>(std::move(path));
}

void AfPacketPath::RegisterMetrics(stats::MetricsRegistry& registry) {
  metrics_.rx_frames = registry.AddCounter("datapath.rx_frames");
  metrics_.rx_bytes = registry.AddCounter("datapath.rx_bytes");
  metrics_.rx_parse_errors = registry.AddCounter("datapath.rx_parse_errors");
  metrics_.rx_kernel_drops = registry.AddCounter("datapath.rx_kernel_drops");
  metrics_.tx_frames = registry.AddCounter("datapath.tx_frames");
  metrics_.tx_bytes = registry.AddCounter("datapath.tx_bytes");
  metrics_.tx_ring_full = registry.AddCounter("datapath.tx_ring_full");
  metrics_.tx_wrong_format = registry.AddCounter("datapath.tx_wrong_format");
  metrics_.tx_oversize = registry.AddCounter("datapath.tx_oversize");
  metrics_.tx_kicks = registry.AddCounter("datapath.tx_kicks");
  metrics_.tx_kick_errors = registry.AddCounter("datapath.tx_kick_errors");
  metrics_.mac_fallbacks = registry.AddCounter("datapath.mac_fallbacks");
  metrics_.rx_blocks_per_wakeup =
      registry.AddHistogram("datapath.rx_blocks_per_wakeup");
  metrics_.rx_frames_per_wakeup =
      registry.AddHistogram("datapath.rx_frames_per_wakeup");
}

Status AfPacketPath::Init(Endpoint local, const DatapathOptions& options) {
  const AfPacketOptions& ap = options.afpacket;

  // --- interface facts ---
  ifindex_ = if_nametoindex(ap.interface.c_str());
  if (ifindex_ == 0) {
    return Error(ErrorCode::kNotFound,
                 "afpacket: interface '" + ap.interface +
                     "' not found (set --afpacket-if)");
  }
  {
    Fd probe(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
    if (!probe.valid()) return Errno(ErrorCode::kIoError, "socket(probe)");
    ifreq ifr{};
    std::strncpy(ifr.ifr_name, ap.interface.c_str(), IFNAMSIZ - 1);
    if (::ioctl(probe.get(), SIOCGIFFLAGS, &ifr) != 0) {
      return Errno(ErrorCode::kIoError, "ioctl(SIOCGIFFLAGS " + ap.interface + ")");
    }
    is_loopback_ = (ifr.ifr_flags & IFF_LOOPBACK) != 0;
    if (::ioctl(probe.get(), SIOCGIFHWADDR, &ifr) != 0) {
      return Errno(ErrorCode::kIoError, "ioctl(SIOCGIFHWADDR " + ap.interface + ")");
    }
    std::memcpy(if_mac_.bytes.data(), ifr.ifr_hwaddr.sa_data, 6);
  }
  if (!ap.peer_mac.empty()) {
    LDP_ASSIGN_OR_RETURN(peer_mac_, MacAddr::Parse(ap.peer_mac));
    have_peer_mac_ = true;
  }

  // --- shadow kernel UDP socket: reserve the port, resolve port 0,
  //     silence ICMP port-unreachable ---
  shadow_fd_ =
      Fd(::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!shadow_fd_.valid()) return Errno(ErrorCode::kIoError, "socket(shadow)");
  if (options.udp.reuse_port) {
    int one = 1;
    if (::setsockopt(shadow_fd_.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      return Errno(ErrorCode::kIoError, "setsockopt(SO_REUSEPORT shadow)");
    }
  }
  sockaddr_in addr = ToSockaddr(local);
  if (::bind(shadow_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno(ErrorCode::kIoError, "bind shadow " + local.ToString());
  }
  {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(shadow_fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Errno(ErrorCode::kIoError, "getsockname(shadow)");
    }
    local_ = Endpoint{IpAddress(ntohl(bound.sin_addr.s_addr)),
                      ntohs(bound.sin_port)};
  }
  LDP_RETURN_IF_ERROR(AttachDropAllFilter(shadow_fd_.get(), "shadow filter"));

  // --- rx: TPACKET_V3 ring ---
  // Protocol 0 at creation: nothing is delivered until the post-filter
  // bind() sets ETH_P_IP, so no unfiltered frames ever enter the ring.
  rx_fd_ = Fd(::socket(AF_PACKET, SOCK_RAW | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!rx_fd_.valid()) {
    if (errno == EPERM || errno == EACCES) {
      return Error(ErrorCode::kUnsupported,
                   "afpacket: socket(AF_PACKET) denied — needs CAP_NET_RAW "
                   "(run as root or `setcap cap_net_raw+ep`), or use "
                   "--datapath=epoll");
    }
    return Errno(ErrorCode::kIoError, "socket(AF_PACKET rx)");
  }
  int version = TPACKET_V3;
  if (::setsockopt(rx_fd_.get(), SOL_PACKET, PACKET_VERSION, &version,
                   sizeof(version)) != 0) {
    return Errno(ErrorCode::kUnsupported, "afpacket: TPACKET_V3 unavailable");
  }
  if (ap.rx_block_bytes == 0 || ap.rx_block_count == 0 ||
      ap.rx_block_bytes % static_cast<size_t>(::getpagesize()) != 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "afpacket: rx_block_bytes must be a positive multiple of "
                 "the page size");
  }
  rx_block_bytes_ = ap.rx_block_bytes;
  rx_block_count_ = ap.rx_block_count;
  tpacket_req3 req3{};
  req3.tp_block_size = static_cast<unsigned>(rx_block_bytes_);
  req3.tp_block_nr = static_cast<unsigned>(rx_block_count_);
  req3.tp_frame_size = static_cast<unsigned>(ap.rx_frame_bytes);
  req3.tp_frame_nr = static_cast<unsigned>(
      rx_block_bytes_ / ap.rx_frame_bytes * rx_block_count_);
  req3.tp_retire_blk_tov = ap.rx_retire_timeout_ms;
  if (::setsockopt(rx_fd_.get(), SOL_PACKET, PACKET_RX_RING, &req3,
                   sizeof(req3)) != 0) {
    return Errno(ErrorCode::kUnsupported, "afpacket: PACKET_RX_RING(V3)");
  }
  rx_map_len_ = rx_block_bytes_ * rx_block_count_;
  void* map = ::mmap(nullptr, rx_map_len_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     rx_fd_.get(), 0);
  if (map == MAP_FAILED) {
    rx_map_len_ = 0;
    return Errno(ErrorCode::kIoError, "mmap(rx ring)");
  }
  rx_map_ = static_cast<uint8_t*>(map);
  auto steer = BuildSteeringFilter(local_.port, local_.addr);
  LDP_RETURN_IF_ERROR(AttachFilter(rx_fd_.get(), steer, "steering filter"));
  {
    // Best-effort (4.20+): never ring-buffer our own transmissions. Older
    // kernels fall back to the per-frame sll_pkttype check in ConsumeBlock.
    int one = 1;
    ::setsockopt(rx_fd_.get(), SOL_PACKET, PACKET_IGNORE_OUTGOING, &one,
                 sizeof(one));
  }
  sockaddr_ll sll{};
  sll.sll_family = AF_PACKET;
  sll.sll_protocol = htons(ETH_P_IP);
  sll.sll_ifindex = static_cast<int>(ifindex_);
  if (::bind(rx_fd_.get(), reinterpret_cast<sockaddr*>(&sll), sizeof(sll)) !=
      0) {
    return Errno(ErrorCode::kIoError, "bind(AF_PACKET rx " + ap.interface + ")");
  }
  if (ap.fanout) {
    // Hash fanout splits flows across the sibling shards' rings; the group
    // id is derived from the (shared) service port so unrelated paths in
    // the same process never collide. Must be set after bind.
    const int fanout_arg =
        (local_.port & 0xffff) | (PACKET_FANOUT_HASH << 16);
    if (::setsockopt(rx_fd_.get(), SOL_PACKET, PACKET_FANOUT, &fanout_arg,
                     sizeof(fanout_arg)) != 0) {
      return Errno(ErrorCode::kUnsupported, "afpacket: PACKET_FANOUT");
    }
  }

  // --- tx: TPACKET_V2 ring (V3 tx is not supported everywhere) ---
  if (ap.tx_frame_bytes < 256 || (ap.tx_frame_bytes & (ap.tx_frame_bytes - 1)) != 0 ||
      ap.tx_frame_count == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "afpacket: tx_frame_bytes must be a power of two >= 256");
  }
  tx_fd_ = Fd(::socket(AF_PACKET, SOCK_RAW | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!tx_fd_.valid()) return Errno(ErrorCode::kIoError, "socket(AF_PACKET tx)");
  version = TPACKET_V2;
  if (::setsockopt(tx_fd_.get(), SOL_PACKET, PACKET_VERSION, &version,
                   sizeof(version)) != 0) {
    return Errno(ErrorCode::kUnsupported, "afpacket: TPACKET_V2 unavailable");
  }
  tx_frame_bytes_ = ap.tx_frame_bytes;
  tx_frame_count_ = ap.tx_frame_count;
  const size_t page = static_cast<size_t>(::getpagesize());
  size_t tx_block_bytes = std::max(tx_frame_bytes_, page);
  const size_t frames_per_block = tx_block_bytes / tx_frame_bytes_;
  const size_t tx_blocks =
      (tx_frame_count_ + frames_per_block - 1) / frames_per_block;
  tx_frame_count_ = tx_blocks * frames_per_block;
  tpacket_req req{};
  req.tp_block_size = static_cast<unsigned>(tx_block_bytes);
  req.tp_block_nr = static_cast<unsigned>(tx_blocks);
  req.tp_frame_size = static_cast<unsigned>(tx_frame_bytes_);
  req.tp_frame_nr = static_cast<unsigned>(tx_frame_count_);
  if (::setsockopt(tx_fd_.get(), SOL_PACKET, PACKET_TX_RING, &req,
                   sizeof(req)) != 0) {
    return Errno(ErrorCode::kUnsupported, "afpacket: PACKET_TX_RING(V2)");
  }
  tx_map_len_ = tx_block_bytes * tx_blocks;
  map = ::mmap(nullptr, tx_map_len_, PROT_READ | PROT_WRITE, MAP_SHARED,
               tx_fd_.get(), 0);
  if (map == MAP_FAILED) {
    tx_map_len_ = 0;
    return Errno(ErrorCode::kIoError, "mmap(tx ring)");
  }
  tx_map_ = static_cast<uint8_t*>(map);
  tx_data_offset_ = TPACKET_ALIGN(sizeof(tpacket2_hdr));
  tx_slot_capacity_ = tx_frame_bytes_ - tx_data_offset_ - kUdpFrameOverhead;
  {
    // Best-effort: skip the qdisc on tx (we accept the drops).
    int one = 1;
    ::setsockopt(tx_fd_.get(), SOL_PACKET, PACKET_QDISC_BYPASS, &one,
                 sizeof(one));
  }
  // A drop-all filter plus a protocol-0 bind: the tx socket can transmit
  // (the device comes from the bind) but never receives a frame.
  LDP_RETURN_IF_ERROR(AttachDropAllFilter(tx_fd_.get(), "tx filter"));
  sockaddr_ll tx_sll{};
  tx_sll.sll_family = AF_PACKET;
  tx_sll.sll_protocol = 0;
  tx_sll.sll_ifindex = static_cast<int>(ifindex_);
  if (::bind(tx_fd_.get(), reinterpret_cast<sockaddr*>(&tx_sll),
             sizeof(tx_sll)) != 0) {
    return Errno(ErrorCode::kIoError, "bind(AF_PACKET tx)");
  }

  // --- oversize fallback: plain packet socket, frame staged in a buffer ---
  oversize_fd_ =
      Fd(::socket(AF_PACKET, SOCK_RAW | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!oversize_fd_.valid()) {
    return Errno(ErrorCode::kIoError, "socket(AF_PACKET oversize)");
  }
  LDP_RETURN_IF_ERROR(AttachDropAllFilter(oversize_fd_.get(), "oversize filter"));

  AfPacketPath* raw = this;
  LDP_RETURN_IF_ERROR(loop_.Add(rx_fd_.get(), /*want_read=*/true,
                                /*want_write=*/false,
                                [raw](IoEvents) { raw->OnRxReadable(); }));
  return Status::Ok();
}

AfPacketPath::~AfPacketPath() {
  if (rx_fd_.valid()) loop_.Remove(rx_fd_.get());
  if (rx_map_ != nullptr) ::munmap(rx_map_, rx_map_len_);
  if (tx_map_ != nullptr) ::munmap(tx_map_, tx_map_len_);
}

void AfPacketPath::OnRxReadable() {
  size_t blocks = 0;
  size_t frames = 0;
  while (blocks < kMaxBlocksPerWakeup) {
    uint8_t* block = rx_map_ + rx_block_idx_ * rx_block_bytes_;
    auto* desc = reinterpret_cast<tpacket_block_desc*>(block);
    const uint32_t status =
        __atomic_load_n(&desc->hdr.bh1.block_status, __ATOMIC_ACQUIRE);
    if ((status & TP_STATUS_USER) == 0) break;
    ++blocks;
    frames += ConsumeBlock(block);
    // The batch handler saw every span pointing into this block; only now
    // may the kernel overwrite it.
    __atomic_store_n(&desc->hdr.bh1.block_status, TP_STATUS_KERNEL,
                     __ATOMIC_RELEASE);
    rx_block_idx_ = (rx_block_idx_ + 1) % rx_block_count_;
  }
  if (blocks > 0) {
    if (metrics_.rx_blocks_per_wakeup != nullptr) {
      metrics_.rx_blocks_per_wakeup->Record(blocks);
    }
    if (metrics_.rx_frames_per_wakeup != nullptr) {
      metrics_.rx_frames_per_wakeup->Record(frames);
    }
    PollKernelDrops();
  }
}

size_t AfPacketPath::ConsumeBlock(uint8_t* block) {
  auto* desc = reinterpret_cast<tpacket_block_desc*>(block);
  const uint32_t num_frames = desc->hdr.bh1.num_pkts;
  uint8_t* at = block + desc->hdr.bh1.offset_to_first_pkt;
  for (uint32_t i = 0; i < num_frames; ++i) {
    auto* hdr = reinterpret_cast<tpacket3_hdr*>(at);
    // Old-kernel fallback for PACKET_IGNORE_OUTGOING: the sockaddr_ll
    // stored after the header types our own transmissions as
    // PACKET_OUTGOING; serving them back would double every reply.
    const auto* sll = reinterpret_cast<const sockaddr_ll*>(
        at + TPACKET_ALIGN(sizeof(tpacket3_hdr)));
    if (sll->sll_pkttype != PACKET_OUTGOING) {
      ParseOptions parse_options;
      // Loopback-originated frames carry CHECKSUM_PARTIAL: the UDP field
      // holds only the pseudo-header sum the NIC would have finished.
      parse_options.verify_udp_checksum =
          (hdr->tp_status & TP_STATUS_CSUMNOTREADY) == 0;
      auto parsed = ParseUdpFrame({at + hdr->tp_mac, hdr->tp_snaplen},
                                  parse_options);
      if (parsed.ok()) {
        LearnMac(parsed->src.addr, parsed->src_mac);
        if (metrics_.rx_frames != nullptr) metrics_.rx_frames->Add();
        if (metrics_.rx_bytes != nullptr) {
          metrics_.rx_bytes->Add(parsed->payload.size());
        }
        rx_items_[n_rx_items_++] =
            RecvItem{parsed->payload, parsed->src, parsed->dst};
        if (n_rx_items_ == kBatchSize) FlushRxBatch();
      } else if (metrics_.rx_parse_errors != nullptr) {
        metrics_.rx_parse_errors->Add();
      }
    }
    at += hdr->tp_next_offset;
  }
  FlushRxBatch();
  return num_frames;
}

void AfPacketPath::FlushRxBatch() {
  if (n_rx_items_ == 0) return;
  const size_t n = n_rx_items_;
  n_rx_items_ = 0;
  on_batch_({rx_items_.data(), n});
}

void AfPacketPath::PollKernelDrops() {
  if (metrics_.rx_kernel_drops == nullptr) return;
  tpacket_stats_v3 kstats{};
  socklen_t len = sizeof(kstats);
  // Reading resets the kernel's counters, so accumulate into ours.
  if (::getsockopt(rx_fd_.get(), SOL_PACKET, PACKET_STATISTICS, &kstats,
                   &len) == 0 &&
      kstats.tp_drops > 0) {
    metrics_.rx_kernel_drops->Add(kstats.tp_drops);
  }
}

void AfPacketPath::LearnMac(IpAddress ip, const MacAddr& mac) {
  MacEntry& entry = mac_table_[(ip.value() * 2654435761u) >> 24];
  entry.ip = ip.value();
  entry.mac = mac;
  entry.valid = true;
}

MacAddr AfPacketPath::ResolveMac(IpAddress ip) {
  const MacEntry& entry = mac_table_[(ip.value() * 2654435761u) >> 24];
  if (entry.valid && entry.ip == ip.value()) return entry.mac;
  if (metrics_.mac_fallbacks != nullptr) metrics_.mac_fallbacks->Add();
  if (have_peer_mac_) return peer_mac_;
  // Loopback compares the (all-zero) device address, so zeros are the
  // "unicast to this host" form there; elsewhere broadcast at least gets
  // the frame onto the segment.
  return is_loopback_ ? MacAddr{} : MacAddr::Broadcast();
}

bool AfPacketPath::EmitFrame(std::span<const uint8_t> payload, Endpoint to,
                             Endpoint from) {
  // A default `from` sends from the bound endpoint; a wildcard-bound ring
  // (proxy) must name a concrete source per datagram.
  if (from == Endpoint{}) from = local_;
  const MacAddr dst_mac = ResolveMac(to.addr);
  if (payload.size() > tx_slot_capacity_) {
    return EmitOversize(payload, to, from, dst_mac);
  }
  auto* slot =
      reinterpret_cast<tpacket2_hdr*>(tx_map_ + tx_idx_ * tx_frame_bytes_);
  uint32_t status = __atomic_load_n(&slot->tp_status, __ATOMIC_ACQUIRE);
  if (status & TP_STATUS_WRONG_FORMAT) {
    // The kernel refused this slot's previous frame; reclaim it.
    if (metrics_.tx_wrong_format != nullptr) metrics_.tx_wrong_format->Add();
    status = TP_STATUS_AVAILABLE;
  }
  if (status != TP_STATUS_AVAILABLE) {
    // Ring full: hand pending frames over and retry this slot once — on a
    // fast interface the kernel may already have drained it.
    Kick();
    status = __atomic_load_n(&slot->tp_status, __ATOMIC_ACQUIRE);
    if (status != TP_STATUS_AVAILABLE) {
      if (metrics_.tx_ring_full != nullptr) metrics_.tx_ring_full->Add();
      return false;
    }
  }
  UdpFrameSpec spec;
  spec.src_mac = if_mac_;
  spec.dst_mac = dst_mac;
  spec.src = from;
  spec.dst = to;
  spec.ip_id = ip_id_++;
  uint8_t* data = reinterpret_cast<uint8_t*>(slot) + tx_data_offset_;
  auto frame_len = BuildUdpFrame(
      {data, tx_frame_bytes_ - tx_data_offset_}, spec, payload);
  if (!frame_len.ok()) return false;  // cannot happen: capacity checked above
  slot->tp_len = static_cast<uint32_t>(*frame_len);
  __atomic_store_n(&slot->tp_status, TP_STATUS_SEND_REQUEST, __ATOMIC_RELEASE);
  tx_idx_ = (tx_idx_ + 1) % tx_frame_count_;
  tx_dirty_ = true;
  if (metrics_.tx_frames != nullptr) metrics_.tx_frames->Add();
  if (metrics_.tx_bytes != nullptr) metrics_.tx_bytes->Add(payload.size());
  return true;
}

bool AfPacketPath::EmitOversize(std::span<const uint8_t> payload, Endpoint to,
                                Endpoint from, const MacAddr& dst_mac) {
  if (metrics_.tx_oversize != nullptr) metrics_.tx_oversize->Add();
  oversize_buf_.resize(kUdpFrameOverhead + payload.size());
  UdpFrameSpec spec;
  spec.src_mac = if_mac_;
  spec.dst_mac = dst_mac;
  spec.src = from;
  spec.dst = to;
  spec.ip_id = ip_id_++;
  auto frame_len = BuildUdpFrame(oversize_buf_, spec, payload);
  if (!frame_len.ok()) return false;  // payload beyond IPv4 total length
  sockaddr_ll sll{};
  sll.sll_family = AF_PACKET;
  sll.sll_ifindex = static_cast<int>(ifindex_);
  sll.sll_halen = 6;
  std::memcpy(sll.sll_addr, dst_mac.bytes.data(), 6);
  const ssize_t sent =
      ::sendto(oversize_fd_.get(), oversize_buf_.data(), *frame_len,
               MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&sll), sizeof(sll));
  if (sent < 0) return false;
  if (metrics_.tx_frames != nullptr) metrics_.tx_frames->Add();
  if (metrics_.tx_bytes != nullptr) metrics_.tx_bytes->Add(payload.size());
  return true;
}

void AfPacketPath::Kick() {
  if (!tx_dirty_) return;
  tx_dirty_ = false;
  if (metrics_.tx_kicks != nullptr) metrics_.tx_kicks->Add();
  if (::send(tx_fd_.get(), nullptr, 0, MSG_DONTWAIT) < 0) {
    // EAGAIN/ENOBUFS leave frames queued as SEND_REQUEST; the next kick
    // retries them. Anything else is a real transmit-path error.
    if (errno == EAGAIN || errno == ENOBUFS || errno == EWOULDBLOCK) {
      tx_dirty_ = true;
    } else if (metrics_.tx_kick_errors != nullptr) {
      metrics_.tx_kick_errors->Add();
    }
  }
}

Status AfPacketPath::SendTo(std::span<const uint8_t> payload, Endpoint to) {
  const bool emitted = EmitFrame(payload, to, Endpoint{});
  Kick();
  if (!emitted) {
    return Error(ErrorCode::kWouldBlock, "afpacket: tx ring full");
  }
  return Status::Ok();
}

size_t AfPacketPath::SendBatch(std::span<const SendItem> batch) {
  size_t accepted = 0;
  for (const SendItem& item : batch) {
    if (!EmitFrame(item.payload, item.to, item.from)) break;
    ++accepted;
  }
  Kick();
  return accepted;
}

Status ProbeAfPacket(const AfPacketOptions& options) {
  if (if_nametoindex(options.interface.c_str()) == 0) {
    return Error(ErrorCode::kNotFound,
                 "afpacket: interface '" + options.interface +
                     "' not found (set --afpacket-if)");
  }
  if (!options.peer_mac.empty()) {
    auto mac = MacAddr::Parse(options.peer_mac);
    if (!mac.ok()) return mac.error();
  }
  Fd rx(::socket(AF_PACKET, SOCK_RAW | SOCK_CLOEXEC, 0));
  if (!rx.valid()) {
    if (errno == EPERM || errno == EACCES) {
      return Error(ErrorCode::kUnsupported,
                   "afpacket: socket(AF_PACKET) denied — needs CAP_NET_RAW "
                   "(run as root or `setcap cap_net_raw+ep`), or use "
                   "--datapath=epoll");
    }
    return Errno(ErrorCode::kIoError, "socket(AF_PACKET)");
  }
  int version = TPACKET_V3;
  if (::setsockopt(rx.get(), SOL_PACKET, PACKET_VERSION, &version,
                   sizeof(version)) != 0) {
    return Errno(ErrorCode::kUnsupported,
                 "afpacket: kernel lacks TPACKET_V3");
  }
  tpacket_req3 req3{};
  req3.tp_block_size = static_cast<unsigned>(::getpagesize());
  req3.tp_block_nr = 2;
  req3.tp_frame_size = 2048;
  req3.tp_frame_nr = req3.tp_block_size / 2048 * 2;
  req3.tp_retire_blk_tov = 10;
  if (::setsockopt(rx.get(), SOL_PACKET, PACKET_RX_RING, &req3,
                   sizeof(req3)) != 0) {
    return Errno(ErrorCode::kUnsupported,
                 "afpacket: TPACKET_V3 rx ring rejected");
  }
  Fd tx(::socket(AF_PACKET, SOCK_RAW | SOCK_CLOEXEC, 0));
  if (!tx.valid()) return Errno(ErrorCode::kIoError, "socket(AF_PACKET tx)");
  version = TPACKET_V2;
  if (::setsockopt(tx.get(), SOL_PACKET, PACKET_VERSION, &version,
                   sizeof(version)) != 0) {
    return Errno(ErrorCode::kUnsupported,
                 "afpacket: kernel lacks TPACKET_V2");
  }
  tpacket_req req{};
  req.tp_block_size = static_cast<unsigned>(::getpagesize());
  req.tp_block_nr = 2;
  req.tp_frame_size = 2048;
  req.tp_frame_nr = req.tp_block_size / 2048 * 2;
  if (::setsockopt(tx.get(), SOL_PACKET, PACKET_TX_RING, &req, sizeof(req)) !=
      0) {
    return Errno(ErrorCode::kUnsupported,
                 "afpacket: TPACKET_V2 tx ring rejected");
  }
  return Status::Ok();
}

}  // namespace ldp::net
