// AF_PACKET ring backend for DatagramPath: TPACKET_V3 mmap'd rx blocks,
// a TPACKET_V2 mmap'd tx ring, userspace Ethernet/IPv4/UDP codec, a BPF
// steering filter, and PACKET_FANOUT sharding. See DESIGN.md §12 for the
// full packet walk.
#ifndef LDPLAYER_NET_AFPACKET_H
#define LDPLAYER_NET_AFPACKET_H

#include <array>
#include <memory>

#include "common/bytes.h"
#include "net/datapath.h"
#include "net/packet_codec.h"

namespace ldp::net {

class AfPacketPath final : public DatagramPath {
 public:
  static Result<std::unique_ptr<DatagramPath>> Open(
      EventLoop& loop, Endpoint local, BatchHandler on_batch,
      const DatapathOptions& options);
  ~AfPacketPath() override;

  Status SendTo(std::span<const uint8_t> payload, Endpoint to) override;
  size_t SendBatch(std::span<const SendItem> batch) override;
  Endpoint local() const override { return local_; }
  DatapathKind kind() const override { return DatapathKind::kAfPacket; }

 private:
  // datapath.* instruments; every pointer may be null (no registry).
  struct Instruments {
    stats::Counter* rx_frames = nullptr;
    stats::Counter* rx_bytes = nullptr;
    stats::Counter* rx_parse_errors = nullptr;
    stats::Counter* rx_kernel_drops = nullptr;  // tp_drops, accumulated
    stats::Counter* tx_frames = nullptr;
    stats::Counter* tx_bytes = nullptr;
    stats::Counter* tx_ring_full = nullptr;
    stats::Counter* tx_wrong_format = nullptr;
    stats::Counter* tx_oversize = nullptr;
    stats::Counter* tx_kicks = nullptr;
    stats::Counter* tx_kick_errors = nullptr;
    stats::Counter* mac_fallbacks = nullptr;
    stats::LogHistogram* rx_blocks_per_wakeup = nullptr;  // ring occupancy
    stats::LogHistogram* rx_frames_per_wakeup = nullptr;
  };

  // Last-seen source MAC per peer IP, direct-mapped. Replies go back to
  // whatever L2 address the query came from; misses fall back to the
  // configured peer MAC, then broadcast (zeros on loopback).
  struct MacEntry {
    uint32_t ip = 0;
    bool valid = false;
    MacAddr mac;
  };

  explicit AfPacketPath(EventLoop& loop, BatchHandler on_batch)
      : loop_(loop), on_batch_(std::move(on_batch)) {}

  Status Init(Endpoint local, const DatapathOptions& options);
  void RegisterMetrics(stats::MetricsRegistry& registry);

  void OnRxReadable();
  // Parses every frame of one retired block into rx_items_, flushing the
  // batch to the handler as it fills; returns the frame count. The final
  // flush happens before the caller releases the block — payload spans
  // point into it.
  size_t ConsumeBlock(uint8_t* block);
  void FlushRxBatch();
  void PollKernelDrops();

  // Assembles one frame into a free tx slot (or the oversize fallback).
  // Returns false when the ring is full even after a kick.
  bool EmitFrame(std::span<const uint8_t> payload, Endpoint to, Endpoint from);
  bool EmitOversize(std::span<const uint8_t> payload, Endpoint to,
                    Endpoint from, const MacAddr& dst_mac);
  // Hands pending TP_STATUS_SEND_REQUEST slots to the kernel.
  void Kick();

  void LearnMac(IpAddress ip, const MacAddr& mac);
  MacAddr ResolveMac(IpAddress ip);

  EventLoop& loop_;
  BatchHandler on_batch_;
  Endpoint local_;
  Instruments metrics_;

  Fd shadow_fd_;  // kernel UDP socket: port reservation + ICMP suppression
  Fd rx_fd_;
  Fd tx_fd_;
  Fd oversize_fd_;  // plain AF_PACKET socket for frames beyond a tx slot

  unsigned ifindex_ = 0;
  bool is_loopback_ = false;
  MacAddr if_mac_;
  bool have_peer_mac_ = false;
  MacAddr peer_mac_;

  uint8_t* rx_map_ = nullptr;
  size_t rx_map_len_ = 0;
  size_t rx_block_bytes_ = 0;
  size_t rx_block_count_ = 0;
  size_t rx_block_idx_ = 0;

  uint8_t* tx_map_ = nullptr;
  size_t tx_map_len_ = 0;
  size_t tx_frame_bytes_ = 0;
  size_t tx_frame_count_ = 0;
  size_t tx_data_offset_ = 0;
  size_t tx_slot_capacity_ = 0;  // payload bytes a slot can carry
  size_t tx_idx_ = 0;
  bool tx_dirty_ = false;  // SEND_REQUEST slots awaiting a kick

  std::array<RecvItem, kBatchSize> rx_items_;
  size_t n_rx_items_ = 0;
  std::array<MacEntry, 256> mac_table_;
  Bytes oversize_buf_;
  uint16_t ip_id_ = 1;
};

}  // namespace ldp::net

#endif  // LDPLAYER_NET_AFPACKET_H
