#include "net/datapath.h"

#include <array>
#include <utility>

#include "net/afpacket.h"

namespace ldp::net {

Result<DatapathKind> ParseDatapathKind(std::string_view text) {
  if (text == "epoll") return DatapathKind::kEpoll;
  if (text == "afpacket") return DatapathKind::kAfPacket;
  return Error(ErrorCode::kInvalidArgument,
               "unknown datapath '" + std::string(text) +
                   "' (expected epoll or afpacket)");
}

std::string_view DatapathKindName(DatapathKind kind) {
  switch (kind) {
    case DatapathKind::kEpoll:
      return "epoll";
    case DatapathKind::kAfPacket:
      return "afpacket";
  }
  return "?";
}

namespace {

// The default backend: a thin adapter over the kernel-socket batch path.
// RecvItem::to is always the bound endpoint (kernel demux already matched
// it) and SendItem::from is ignored — the socket's binding is the source.
class EpollPath final : public DatagramPath {
 public:
  static Result<std::unique_ptr<DatagramPath>> Open(
      EventLoop& loop, Endpoint local, BatchHandler on_batch,
      const DatapathOptions& options) {
    auto path = std::unique_ptr<EpollPath>(new EpollPath(std::move(on_batch)));
    if (options.metrics != nullptr) {
      path->rx_frames_ = options.metrics->AddCounter("datapath.rx_frames");
      path->tx_frames_ = options.metrics->AddCounter("datapath.tx_frames");
    }
    LDP_ASSIGN_OR_RETURN(
        path->socket_,
        UdpSocket::BindBatch(
            loop, local,
            [raw = path.get()](std::span<const UdpSocket::RecvItem> items) {
              raw->OnBatch(items);
            },
            options.udp));
    return std::unique_ptr<DatagramPath>(std::move(path));
  }

  Status SendTo(std::span<const uint8_t> payload, Endpoint to) override {
    if (tx_frames_ != nullptr) tx_frames_->Add();
    return socket_->SendTo(payload, to);
  }

  size_t SendBatch(std::span<const SendItem> batch) override {
    std::array<UdpSendItem, kBatchSize> chunk;
    size_t accepted = 0;
    while (accepted < batch.size()) {
      const size_t n = std::min(batch.size() - accepted, kBatchSize);
      for (size_t i = 0; i < n; ++i) {
        chunk[i] = UdpSendItem{batch[accepted + i].payload,
                               batch[accepted + i].to};
      }
      const size_t sent = socket_->SendBatch({chunk.data(), n});
      accepted += sent;
      if (sent < n) break;  // kernel buffer full: drop the tail
    }
    if (tx_frames_ != nullptr) tx_frames_->Add(accepted);
    return accepted;
  }

  Endpoint local() const override { return socket_->local(); }
  DatapathKind kind() const override { return DatapathKind::kEpoll; }

 private:
  explicit EpollPath(BatchHandler on_batch) : on_batch_(std::move(on_batch)) {}

  void OnBatch(std::span<const UdpSocket::RecvItem> items) {
    std::array<RecvItem, kBatchSize> out;
    const Endpoint to = socket_->local();
    size_t i = 0;
    for (const auto& item : items) {
      out[i++] = RecvItem{item.payload, item.from, to};
      if (i == kBatchSize) {
        if (rx_frames_ != nullptr) rx_frames_->Add(i);
        on_batch_({out.data(), i});
        i = 0;
      }
    }
    if (i > 0) {
      if (rx_frames_ != nullptr) rx_frames_->Add(i);
      on_batch_({out.data(), i});
    }
  }

  BatchHandler on_batch_;
  std::unique_ptr<UdpSocket> socket_;
  stats::Counter* rx_frames_ = nullptr;
  stats::Counter* tx_frames_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<DatagramPath>> DatagramPath::Open(
    EventLoop& loop, Endpoint local, BatchHandler on_batch,
    const DatapathOptions& options) {
  switch (options.kind) {
    case DatapathKind::kEpoll:
      return EpollPath::Open(loop, local, std::move(on_batch), options);
    case DatapathKind::kAfPacket:
      return AfPacketPath::Open(loop, local, std::move(on_batch), options);
  }
  return Error(ErrorCode::kInvalidArgument, "unknown datapath kind");
}

}  // namespace ldp::net
