// DatagramPath: the transport seam between the DNS engines and "how bytes
// reach them". ShardedDnsServer, HierarchyProxy, and the realtime replay
// querier all speak this interface; what sits underneath is selected at
// open time:
//
//   kEpoll     — the existing kernel UDP sockets with recvmmsg/sendmmsg
//                batching (net/sockets.h). Default; no capabilities needed.
//   kAfPacket  — AF_PACKET mmap rings (TPACKET_V3 rx, TPACKET_V2 tx) with
//                userspace Ethernet/IPv4/UDP assembly (net/packet_codec.h),
//                a BPF steering filter, and PACKET_FANOUT across shards.
//                Needs CAP_NET_RAW; see net/afpacket.cc for the packet walk.
//
// The interface is deliberately the UdpSocket batch shape plus two fields
// kernel sockets cannot express per datagram: RecvItem::to (the local
// address a datagram actually targeted — one wildcard afpacket ring can
// listen for every emulated nameserver address at once) and SendItem::from
// (source-address override, so the proxy answers from the queried address
// over that same single ring).
#ifndef LDPLAYER_NET_DATAPATH_H
#define LDPLAYER_NET_DATAPATH_H

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/ip.h"
#include "common/result.h"
#include "net/event_loop.h"
#include "net/sockets.h"
#include "stats/metrics.h"

namespace ldp::net {

enum class DatapathKind {
  kEpoll,
  kAfPacket,
};

// "epoll" / "afpacket" (the --datapath flag values).
Result<DatapathKind> ParseDatapathKind(std::string_view text);
std::string_view DatapathKindName(DatapathKind kind);

struct AfPacketOptions {
  // Interface the rings attach to. Loopback works out of the box for
  // afpacket<->afpacket runs; mixed epoll/afpacket loopback runs need
  // net.ipv4.conf.lo.route_localnet=1 (see DESIGN.md §12).
  std::string interface = "lo";

  // rx ring geometry (TPACKET_V3: fixed blocks, variable-size frames).
  // Blocks hand over to userspace when full or after the retire timeout,
  // whichever comes first — the timeout bounds added latency at low rate.
  size_t rx_block_bytes = 1 << 20;
  size_t rx_block_count = 16;
  size_t rx_frame_bytes = 2048;  // V3 treats this as a sizing hint
  unsigned rx_retire_timeout_ms = 1;

  // tx ring geometry (TPACKET_V2: fixed-size slots). A reply frame is
  // assembled directly in a free slot (headers + checksums + payload, no
  // staging copy); payloads that exceed a slot fall back to a plain
  // sendto on a companion socket.
  size_t tx_frame_bytes = 4096;
  size_t tx_frame_count = 512;

  // Join a PACKET_FANOUT(hash) group (id derived from the bound port) so
  // sibling shard rings split the flow space in-kernel — the AF_PACKET
  // equivalent of the SO_REUSEPORT sharding the epoll path uses.
  bool fanout = false;

  // Destination MAC for tx when no frame from that peer IP has been seen
  // yet. Empty: the per-IP learned table, then broadcast (zeros on a
  // loopback interface). Set this when talking through a veth pair or a
  // real gateway ("aa:bb:cc:dd:ee:ff").
  std::string peer_mac;
};

struct DatapathOptions {
  DatapathKind kind = DatapathKind::kEpoll;
  // Kernel-socket options. The afpacket backend honors reuse_port for its
  // shadow socket (the kernel UDP socket that reserves the port, resolves
  // ephemeral binds, and silences ICMP port-unreachable while a drop-all
  // BPF filter keeps its queue empty).
  UdpOptions udp;
  AfPacketOptions afpacket;
  // When set, the path registers datapath.* instruments here (rx/tx frame
  // counters for both backends; ring occupancy, frames/wakeup, kernel-drop
  // and fallback counters for afpacket). Must outlive the path.
  stats::MetricsRegistry* metrics = nullptr;
};

class DatagramPath {
 public:
  // Datagrams moved per handler call / send chunk, matching UdpSocket so
  // consumers keep their batch staging sizes.
  static constexpr size_t kBatchSize = UdpSocket::kBatchSize;

  // One received datagram; payload is valid only during the handler call.
  struct RecvItem {
    std::span<const uint8_t> payload;
    Endpoint from;
    // The local address/port this datagram targeted. For a path bound to
    // a concrete address this equals local(); for a wildcard afpacket
    // ring it is the address the peer actually queried (the proxy's OQDA).
    Endpoint to;
  };

  // One datagram of an outgoing batch; payload must stay alive through
  // the SendBatch call.
  struct SendItem {
    std::span<const uint8_t> payload;
    Endpoint to;
    // Source override: a default-constructed endpoint sends from local().
    // The afpacket backend writes any other value into the IPv4/UDP
    // headers (source spoofing is the point — the proxy answers from
    // emulated addresses over one ring). The epoll backend cannot rewrite
    // per-datagram sources; callers only set `from` on paths bound to
    // that same address.
    Endpoint from;
  };

  using BatchHandler = std::function<void(std::span<const RecvItem>)>;

  virtual ~DatagramPath() = default;

  // Binds `local` (port 0 = ephemeral) and registers rx readiness with the
  // loop; whole batches are delivered per handler call. An unspecified
  // address (0.0.0.0) makes an afpacket path a wildcard ring matching on
  // port alone; the epoll backend binds it like any kernel socket.
  static Result<std::unique_ptr<DatagramPath>> Open(
      EventLoop& loop, Endpoint local, BatchHandler on_batch,
      const DatapathOptions& options = DatapathOptions());

  virtual Status SendTo(std::span<const uint8_t> payload, Endpoint to) = 0;

  // Sends the batch; returns how many datagrams were accepted. A short
  // count means the tx ring / socket buffer filled and the rest were
  // dropped, as they would be on the wire.
  virtual size_t SendBatch(std::span<const SendItem> batch) = 0;

  virtual Endpoint local() const = 0;
  virtual DatapathKind kind() const = 0;
};

// Checks whether the afpacket backend can run with `options` on this host:
// interface exists, AF_PACKET sockets are permitted (CAP_NET_RAW), the
// kernel offers TPACKET_V3 rx and TPACKET_V2 tx rings, and peer_mac (if
// set) parses. The error message says what to fix — this is what tools
// surface verbatim and what benches/CI use to detect-and-skip.
Status ProbeAfPacket(const AfPacketOptions& options);

}  // namespace ldp::net

#endif  // LDPLAYER_NET_DATAPATH_H
