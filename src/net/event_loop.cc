#include "net/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace ldp::net {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    Reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TimerHandle::Cancel() {
  if (flag_ != nullptr) flag_->cancelled = true;
}

bool TimerHandle::active() const {
  return flag_ != nullptr && !flag_->cancelled && !flag_->fired;
}

Result<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) {
    return Error(ErrorCode::kIoError,
                 std::string("epoll_create1: ") + std::strerror(errno));
  }
  int wakeup = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup < 0) {
    ::close(fd);
    return Error(ErrorCode::kIoError,
                 std::string("eventfd: ") + std::strerror(errno));
  }
  auto loop = std::unique_ptr<EventLoop>(new EventLoop(fd, wakeup));
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wakeup;
  if (::epoll_ctl(fd, EPOLL_CTL_ADD, wakeup, &event) != 0) {
    return Error(ErrorCode::kIoError,
                 std::string("epoll_ctl ADD wakeup: ") + std::strerror(errno));
  }
  return loop;
}

EventLoop::~EventLoop() = default;

Status EventLoop::Add(int fd, bool want_read, bool want_write,
                      IoHandler handler) {
  epoll_event event{};
  event.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
    return Error(ErrorCode::kIoError,
                 std::string("epoll_ctl ADD: ") + std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<IoHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::Modify(int fd, bool want_read, bool want_write) {
  epoll_event event{};
  event.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &event) != 0) {
    return Error(ErrorCode::kIoError,
                 std::string("epoll_ctl MOD: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

TimerHandle EventLoop::ScheduleAt(NanoTime deadline, std::function<void()> fn) {
  auto flag = std::make_shared<TimerHandle::Flag>();
  timers_.push(Timer{deadline, next_timer_seq_++, std::move(fn), flag});
  return TimerHandle(std::move(flag));
}

NanoDuration EventLoop::FireDueTimers(NanoDuration cap) {
  // Fence: timers armed while firing (a handler re-scheduling itself with
  // a zero or already-elapsed delay) wait for the next pass. Firing them
  // in place would keep this loop spinning without ever reaching epoll,
  // starving socket IO for as long as the re-arm chain continues. Older
  // due timers always sort above fenced ones (deadline, then seq), so
  // breaking on a fenced timer skips nothing that was due when the pass
  // began.
  const uint64_t fence = next_timer_seq_;
  while (!timers_.empty()) {
    const Timer& top = timers_.top();
    if (top.flag->cancelled) {
      timers_.pop();
      continue;
    }
    NanoTime now = MonotonicNow();
    if (top.seq >= fence) {
      return std::min<NanoDuration>(
          cap, std::max<NanoDuration>(0, top.deadline - now));
    }
    if (top.deadline > now) {
      return std::min<NanoDuration>(cap, top.deadline - now);
    }
    Timer timer = std::move(const_cast<Timer&>(top));
    timers_.pop();
    timer.flag->fired = true;
    if (loop_lag_ != nullptr && now >= timer.deadline) {
      loop_lag_->Record(static_cast<uint64_t>(now - timer.deadline));
    }
    timer.fn();
  }
  return cap;
}

Status EventLoop::RunOnce(NanoDuration wait) {
  NanoDuration timeout = FireDueTimers(wait);
  if (timeout < 0) timeout = 0;

  epoll_event events[256];
  int count;
#if defined(__linux__) && defined(EPOLL_CLOEXEC)
  timespec ts{};
  ts.tv_sec = timeout / kNanosPerSecond;
  ts.tv_nsec = timeout % kNanosPerSecond;
  count = ::epoll_pwait2(epoll_fd_.get(), events, 256, &ts, nullptr);
  if (count < 0 && errno == ENOSYS) {
    count = ::epoll_wait(epoll_fd_.get(), events, 256,
                         static_cast<int>(timeout / kNanosPerMilli));
  }
#else
  count = ::epoll_wait(epoll_fd_.get(), events, 256,
                       static_cast<int>(timeout / kNanosPerMilli));
#endif
  if (count < 0) {
    if (errno == EINTR) return Status::Ok();
    return Error(ErrorCode::kIoError,
                 std::string("epoll_wait: ") + std::strerror(errno));
  }
  if (epoll_batch_ != nullptr && count > 0) {
    epoll_batch_->Record(static_cast<uint64_t>(count));
  }
  for (int i = 0; i < count; ++i) {
    if (events[i].data.fd == wakeup_fd_.get()) {
      // Cross-thread stop request: drain the eventfd and stop. The wakeup
      // fd never appears in handlers_, so registered_fds() stays honest.
      uint64_t counter;
      while (::read(wakeup_fd_.get(), &counter, sizeof(counter)) > 0) {
      }
      stopped_ = true;
      continue;
    }
    auto it = handlers_.find(events[i].data.fd);
    if (it == handlers_.end()) continue;  // removed by an earlier handler
    // Hold a reference: the handler may Remove() itself.
    std::shared_ptr<IoHandler> handler = it->second;
    IoEvents io;
    io.readable = events[i].events & EPOLLIN;
    io.writable = events[i].events & EPOLLOUT;
    io.error = events[i].events & EPOLLERR;
    io.hangup = events[i].events & (EPOLLHUP | EPOLLRDHUP);
    (*handler)(io);
  }
  FireDueTimers(0);
  return Status::Ok();
}

void EventLoop::RequestStop() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t rc =
      ::write(wakeup_fd_.get(), &one, sizeof(one));
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_) {
    auto status = RunOnce(Millis(100));
    if (!status.ok()) {
      LDP_ERROR << "event loop: " << status.error().ToString();
      return;
    }
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Error(ErrorCode::kIoError,
                 std::string("fcntl O_NONBLOCK: ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace ldp::net
