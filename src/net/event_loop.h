// Event-driven I/O for the real-socket lane (paper §3: "processes use
// event-driven programming to minimize state and scale to a large number of
// concurrent TCP connections"). epoll readiness callbacks plus a nanosecond
// timer heap; timer resolution uses epoll_pwait2 when available so replay
// scheduling error stays well under a millisecond (§4.2).
#ifndef LDPLAYER_NET_EVENT_LOOP_H
#define LDPLAYER_NET_EVENT_LOOP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "stats/metrics.h"

namespace ldp::net {

// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release();
  void Reset();

 private:
  int fd_ = -1;
};

// Bitmask passed to I/O handlers.
struct IoEvents {
  bool readable = false;
  bool writable = false;
  bool error = false;
  bool hangup = false;
};

using IoHandler = std::function<void(IoEvents)>;

class TimerHandle {
 public:
  TimerHandle() = default;
  void Cancel();
  bool active() const;

 private:
  friend class EventLoop;
  struct Flag {
    bool cancelled = false;
    bool fired = false;
  };
  explicit TimerHandle(std::shared_ptr<Flag> flag) : flag_(std::move(flag)) {}
  std::shared_ptr<Flag> flag_;
};

class EventLoop {
 public:
  static Result<std::unique_ptr<EventLoop>> Create();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers fd with the given interest; the handler fires on readiness.
  Status Add(int fd, bool want_read, bool want_write, IoHandler handler);
  Status Modify(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  // One-shot timer on CLOCK_MONOTONIC.
  TimerHandle ScheduleAt(NanoTime deadline, std::function<void()> fn);
  TimerHandle ScheduleAfter(NanoDuration delay, std::function<void()> fn) {
    return ScheduleAt(MonotonicNow() + delay, std::move(fn));
  }

  // Runs until Stop() is called AND no registered fds remain... in practice
  // callers call Stop() explicitly; Run returns after Stop.
  void Run();
  void Stop() { stopped_ = true; }

  // Thread-safe stop: wakes the loop via an eventfd and stops it from its
  // own thread. The only EventLoop entry point that may be called from a
  // different thread than the one running the loop (everything else —
  // Add/Modify/Remove/Schedule*/Stop — is loop-thread-only).
  void RequestStop();

  // Processes due timers and at most one epoll batch; `wait` bounds the
  // blocking time (<=0: poll without blocking).
  Status RunOnce(NanoDuration wait);

  size_t registered_fds() const { return handlers_.size(); }
  size_t pending_timers() const { return timers_.size(); }

  // Optional observability hooks (loop-thread-only, like everything else):
  // `loop_lag` records how late each timer fires (now - deadline, ns) — the
  // early-warning signal for IO/timer starvation; `epoll_batch` records the
  // number of ready events per epoll wakeup. Either may be nullptr. The
  // histograms must outlive the loop.
  void SetMetrics(stats::LogHistogram* loop_lag,
                  stats::LogHistogram* epoll_batch) {
    loop_lag_ = loop_lag;
    epoll_batch_ = epoll_batch;
  }

 private:
  EventLoop(int epoll_fd, int wakeup_fd)
      : epoll_fd_(epoll_fd), wakeup_fd_(wakeup_fd) {}

  struct Timer {
    NanoTime deadline;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<TimerHandle::Flag> flag;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  // Fires all due timers; returns the delay until the next one (or `cap`).
  NanoDuration FireDueTimers(NanoDuration cap);

  Fd epoll_fd_;
  Fd wakeup_fd_;
  bool stopped_ = false;
  uint64_t next_timer_seq_ = 0;
  std::unordered_map<int, std::shared_ptr<IoHandler>> handlers_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  stats::LogHistogram* loop_lag_ = nullptr;
  stats::LogHistogram* epoll_batch_ = nullptr;
};

// Makes a socket non-blocking; returns the error from fcntl if any.
Status SetNonBlocking(int fd);

}  // namespace ldp::net

#endif  // LDPLAYER_NET_EVENT_LOOP_H
