#include "net/packet_codec.h"

#include <cstdio>
#include <cstring>

namespace ldp::net {

namespace {

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>((uint16_t{p[0]} << 8) | p[1]);
}

uint32_t LoadU32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Pseudo-header + UDP header partial sum shared by build and verify paths:
// everything except the payload and the checksum field itself.
uint64_t UdpPartialSum(IpAddress src, IpAddress dst, uint16_t src_port,
                       uint16_t dst_port, uint16_t udp_len) {
  uint64_t sum = 0;
  sum += src.value() >> 16;
  sum += src.value() & 0xffff;
  sum += dst.value() >> 16;
  sum += dst.value() & 0xffff;
  sum += 17;       // zero byte + protocol
  sum += udp_len;  // pseudo-header length field
  sum += src_port;
  sum += dst_port;
  sum += udp_len;  // UDP header length field
  return sum;
}

}  // namespace

Result<MacAddr> MacAddr::Parse(std::string_view text) {
  MacAddr mac;
  size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != ':') {
        return Error(ErrorCode::kParseError,
                     "bad MAC address: " + std::string(text));
      }
      ++pos;
    }
    if (pos + 2 > text.size()) {
      return Error(ErrorCode::kParseError,
                   "bad MAC address: " + std::string(text));
    }
    int hi = HexNibble(text[pos]);
    int lo = HexNibble(text[pos + 1]);
    if (hi < 0 || lo < 0) {
      return Error(ErrorCode::kParseError,
                   "bad MAC address: " + std::string(text));
    }
    mac.bytes[i] = static_cast<uint8_t>((hi << 4) | lo);
    pos += 2;
  }
  if (pos != text.size()) {
    return Error(ErrorCode::kParseError,
                 "bad MAC address: " + std::string(text));
  }
  return mac;
}

std::string MacAddr::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

bool MacAddr::IsZero() const {
  for (uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

uint64_t ChecksumAccumulate(std::span<const uint8_t> data, uint64_t sum) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 2) {
    sum += LoadU16(p);
    p += 2;
    n -= 2;
  }
  if (n == 1) sum += uint64_t{*p} << 8;  // pad the odd byte on the right
  return sum;
}

uint16_t ChecksumFold(uint64_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(~sum);
}

uint16_t UdpChecksum(IpAddress src, IpAddress dst, uint16_t src_port,
                     uint16_t dst_port, std::span<const uint8_t> payload) {
  const uint16_t udp_len =
      static_cast<uint16_t>(kUdpHeaderBytes + payload.size());
  uint64_t sum = UdpPartialSum(src, dst, src_port, dst_port, udp_len);
  sum = ChecksumAccumulate(payload, sum);
  uint16_t folded = ChecksumFold(sum);
  // RFC 768: an all-zero transmitted checksum means "none computed", so a
  // computed zero is sent as its one's-complement equivalent 0xFFFF.
  return folded == 0 ? 0xffff : folded;
}

Result<UdpFrameView> ParseUdpFrame(std::span<const uint8_t> frame,
                                   const ParseOptions& options) {
  if (frame.size() < kEthernetHeaderBytes) {
    return Error(ErrorCode::kTruncated, "frame shorter than Ethernet header");
  }
  UdpFrameView view;
  std::memcpy(view.dst_mac.bytes.data(), frame.data(), 6);
  std::memcpy(view.src_mac.bytes.data(), frame.data() + 6, 6);
  const uint16_t ether_type = LoadU16(frame.data() + 12);
  if (ether_type != kEtherTypeIpv4) {
    return Error(ErrorCode::kUnsupported, "EtherType not IPv4");
  }

  std::span<const uint8_t> ip = frame.subspan(kEthernetHeaderBytes);
  if (ip.size() < kIpv4MinHeaderBytes) {
    return Error(ErrorCode::kTruncated, "frame shorter than IPv4 header");
  }
  if ((ip[0] >> 4) != 4) {
    return Error(ErrorCode::kParseError, "IP version not 4");
  }
  const size_t header_len = static_cast<size_t>(ip[0] & 0x0f) * 4;
  if (header_len < kIpv4MinHeaderBytes) {
    return Error(ErrorCode::kParseError, "IPv4 IHL below minimum");
  }
  if (ip.size() < header_len) {
    return Error(ErrorCode::kTruncated, "frame shorter than IPv4 IHL");
  }
  const size_t total_len = LoadU16(ip.data() + 2);
  if (total_len < header_len + kUdpHeaderBytes) {
    return Error(ErrorCode::kParseError, "IPv4 total length too small");
  }
  // Shorter captures are rejected; longer frames carry Ethernet padding.
  if (total_len > ip.size()) {
    return Error(ErrorCode::kTruncated, "IPv4 total length beyond frame");
  }
  const uint16_t frag = LoadU16(ip.data() + 6);
  if ((frag & 0x3fff) != 0) {  // MF set or fragment offset nonzero
    return Error(ErrorCode::kUnsupported, "fragmented IPv4 datagram");
  }
  if (ip[9] != 17) {
    return Error(ErrorCode::kUnsupported, "IP protocol not UDP");
  }
  if (ChecksumFold(ChecksumAccumulate(ip.first(header_len), 0)) != 0) {
    return Error(ErrorCode::kParseError, "IPv4 header checksum mismatch");
  }
  view.src.addr = IpAddress(LoadU32(ip.data() + 12));
  view.dst.addr = IpAddress(LoadU32(ip.data() + 16));

  std::span<const uint8_t> udp = ip.subspan(header_len, total_len - header_len);
  const size_t udp_len = LoadU16(udp.data() + 4);
  if (udp_len != udp.size()) {
    return Error(ErrorCode::kParseError, "UDP length disagrees with IP");
  }
  view.src.port = LoadU16(udp.data());
  view.dst.port = LoadU16(udp.data() + 2);
  const uint16_t stored_checksum = LoadU16(udp.data() + 6);
  // Zero means the sender computed none — legal for IPv4 UDP, accepted.
  if (stored_checksum != 0 && options.verify_udp_checksum) {
    uint64_t sum =
        UdpPartialSum(view.src.addr, view.dst.addr, view.src.port,
                      view.dst.port, static_cast<uint16_t>(udp_len));
    sum += stored_checksum;
    sum = ChecksumAccumulate(udp.subspan(kUdpHeaderBytes), sum);
    if (ChecksumFold(sum) != 0) {
      return Error(ErrorCode::kParseError, "UDP checksum mismatch");
    }
  }
  view.payload = udp.subspan(kUdpHeaderBytes);
  return view;
}

Result<size_t> BuildUdpFrame(std::span<uint8_t> out, const UdpFrameSpec& spec,
                             std::span<const uint8_t> payload) {
  const size_t frame_len = kUdpFrameOverhead + payload.size();
  const size_t ip_total = kIpv4MinHeaderBytes + kUdpHeaderBytes + payload.size();
  if (ip_total > 0xffff) {
    return Error(ErrorCode::kOutOfRange, "payload exceeds IPv4 total length");
  }
  if (out.size() < frame_len) {
    return Error(ErrorCode::kResourceExhausted,
                 "frame buffer too small: need " + std::to_string(frame_len) +
                     ", have " + std::to_string(out.size()));
  }
  uint8_t* eth = out.data();
  std::memcpy(eth, spec.dst_mac.bytes.data(), 6);
  std::memcpy(eth + 6, spec.src_mac.bytes.data(), 6);
  StoreU16(eth + 12, kEtherTypeIpv4);

  // IPv4 header, checksum accumulated incrementally as the words are laid
  // down (every field crosses the accumulator exactly once).
  uint8_t* ip = eth + kEthernetHeaderBytes;
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0;     // TOS
  StoreU16(ip + 2, static_cast<uint16_t>(ip_total));
  StoreU16(ip + 4, spec.ip_id);
  StoreU16(ip + 6, 0x4000);  // DF, no fragments
  ip[8] = spec.ttl;
  ip[9] = 17;  // UDP
  StoreU32(ip + 12, spec.src.addr.value());
  StoreU32(ip + 16, spec.dst.addr.value());
  uint64_t ip_sum = uint64_t{0x4500} + static_cast<uint16_t>(ip_total) +
                    spec.ip_id + 0x4000 +
                    ((uint32_t{spec.ttl} << 8) | 17) +
                    (spec.src.addr.value() >> 16) +
                    (spec.src.addr.value() & 0xffff) +
                    (spec.dst.addr.value() >> 16) +
                    (spec.dst.addr.value() & 0xffff);
  StoreU16(ip + 10, ChecksumFold(ip_sum));

  uint8_t* udp = ip + kIpv4MinHeaderBytes;
  const uint16_t udp_len =
      static_cast<uint16_t>(kUdpHeaderBytes + payload.size());
  StoreU16(udp, spec.src.port);
  StoreU16(udp + 2, spec.dst.port);
  StoreU16(udp + 4, udp_len);
  StoreU16(udp + 6, UdpChecksum(spec.src.addr, spec.dst.addr, spec.src.port,
                                spec.dst.port, payload));
  if (!payload.empty()) {
    std::memcpy(udp + kUdpHeaderBytes, payload.data(), payload.size());
  }
  return frame_len;
}

}  // namespace ldp::net
