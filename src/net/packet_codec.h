// Userspace Ethernet/IPv4/UDP frame codec for the AF_PACKET datapath.
// Pure in-memory parse and assembly — no sockets, no capabilities — so the
// checksum rules and malformed-frame rejection are unit-testable under the
// sanitizer presets. The AF_PACKET backend (net/afpacket.cc) runs every rx
// ring frame through ParseUdpFrame and assembles every tx ring frame with
// BuildUdpFrame directly in the mmap'd slot.
#ifndef LDPLAYER_NET_PACKET_CODEC_H
#define LDPLAYER_NET_PACKET_CODEC_H

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/ip.h"
#include "common/result.h"

namespace ldp::net {

// An Ethernet MAC address.
struct MacAddr {
  std::array<uint8_t, 6> bytes{};

  // Parses "aa:bb:cc:dd:ee:ff" (case-insensitive hex).
  static Result<MacAddr> Parse(std::string_view text);
  static constexpr MacAddr Broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  std::string ToString() const;
  bool IsZero() const;

  auto operator<=>(const MacAddr&) const = default;
};

// RFC 1071 internet checksum, split into accumulate + fold so multiple
// regions (pseudo-header, UDP header, payload) sum in one pass without
// intermediate copies. `sum` carries between calls; each region is treated
// as big-endian 16-bit words with an odd trailing byte padded on the right.
// Regions must each start on an even offset of the logical checksummed
// stream (true for all IP/UDP fields, which are 2- or 4-byte aligned).
uint64_t ChecksumAccumulate(std::span<const uint8_t> data, uint64_t sum);

// Folds the carries and complements: the value stored on the wire. A region
// whose stored checksum is correct folds to 0 when summed including the
// checksum field itself.
uint16_t ChecksumFold(uint64_t sum);

// The UDP checksum as it must appear on the wire: pseudo-header + UDP header
// + payload, with the 0x0000 result transmitted as 0xFFFF (RFC 768 — a zero
// field means "no checksum", so a computed zero is substituted).
uint16_t UdpChecksum(IpAddress src, IpAddress dst, uint16_t src_port,
                     uint16_t dst_port, std::span<const uint8_t> payload);

inline constexpr size_t kEthernetHeaderBytes = 14;
inline constexpr size_t kIpv4MinHeaderBytes = 20;
inline constexpr size_t kUdpHeaderBytes = 8;
// Headers of a frame we assemble (options are never emitted).
inline constexpr size_t kUdpFrameOverhead =
    kEthernetHeaderBytes + kIpv4MinHeaderBytes + kUdpHeaderBytes;  // 42
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;

// A parsed frame; `payload` points into the input buffer (zero-copy — valid
// only while the underlying frame is).
struct UdpFrameView {
  MacAddr src_mac;
  MacAddr dst_mac;
  Endpoint src;
  Endpoint dst;
  std::span<const uint8_t> payload;
};

struct ParseOptions {
  // Skip UDP checksum verification. The kernel flags frames it captured
  // before checksum fill-in (CHECKSUM_PARTIAL tx offload — universal on
  // loopback/veth) with TP_STATUS_CSUMNOTREADY; the field then holds only
  // the pseudo-header partial and verifying it would reject valid traffic.
  bool verify_udp_checksum = true;
};

// Strict parse of one Ethernet frame down to a UDP payload. Rejects
// anything the datapath cannot serve from: non-IPv4 EtherTypes (incl. VLAN
// tags), bad version/IHL, IP header checksum mismatches, fragments,
// non-UDP protocols, length fields out of bounds, and (unless disabled)
// UDP checksum mismatches. A zero UDP checksum is accepted ("checksum not
// computed" is legal for IPv4 UDP). Trailing bytes beyond the IP total
// length (Ethernet minimum-frame padding) are ignored.
Result<UdpFrameView> ParseUdpFrame(std::span<const uint8_t> frame,
                                   const ParseOptions& options = {});

// Everything needed to assemble a frame around a payload.
struct UdpFrameSpec {
  MacAddr src_mac;
  MacAddr dst_mac;
  Endpoint src;
  Endpoint dst;
  uint8_t ttl = 64;
  uint16_t ip_id = 0;
};

// Assembles Ethernet + IPv4 (no options, DF set) + UDP headers and the
// payload into `out` and returns the frame length (kUdpFrameOverhead +
// payload size). Both checksums are computed during assembly — the IP
// header sum incrementally over the words as they are written, the UDP sum
// over pseudo-header + header + payload with the 0x0000→0xFFFF rule.
// Fails if `out` is too small or the payload exceeds what an IPv4 total
// length can carry.
Result<size_t> BuildUdpFrame(std::span<uint8_t> out, const UdpFrameSpec& spec,
                             std::span<const uint8_t> payload);

}  // namespace ldp::net

#endif  // LDPLAYER_NET_PACKET_CODEC_H
