#include "net/sockets.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace ldp::net {
namespace {

sockaddr_in ToSockaddr(Endpoint endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr.s_addr = htonl(endpoint.addr.value());
  return addr;
}

Endpoint FromSockaddr(const sockaddr_in& addr) {
  return Endpoint{IpAddress(ntohl(addr.sin_addr.s_addr)),
                  ntohs(addr.sin_port)};
}

Result<Endpoint> LocalEndpoint(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Error(ErrorCode::kIoError,
                 std::string("getsockname: ") + std::strerror(errno));
  }
  return FromSockaddr(addr);
}

Error Errno(const char* what) {
  return Error(ErrorCode::kIoError, std::string(what) + ": " +
                                        std::strerror(errno));
}

}  // namespace

// --- UdpSocket ---

Result<std::unique_ptr<UdpSocket>> UdpSocket::BindInternal(
    EventLoop& loop, Endpoint local, const Options& options,
    DatagramHandler on_datagram, BatchHandler on_batch) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket(UDP)");

  if (options.reuse_port) {
    int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      return Errno("setsockopt(SO_REUSEPORT)");
    }
  }
  if (options.recv_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max without error.
    int bytes = options.recv_buffer_bytes;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  }

  sockaddr_in addr = ToSockaddr(local);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno(("bind " + local.ToString()).c_str());
  }
  LDP_ASSIGN_OR_RETURN(Endpoint bound, LocalEndpoint(fd.get()));

  auto socket =
      std::unique_ptr<UdpSocket>(new UdpSocket(loop, std::move(fd), bound));
  socket->on_datagram_ = std::move(on_datagram);
  socket->on_batch_ = std::move(on_batch);
  // for_overwrite: value-initializing these 2 MB costs ~1.2 ms of zeroing
  // per socket, which stalls an event loop that creates sockets on the hot
  // path (the relay binds one per flow); recvmmsg fills slots before any
  // read, so the zeroing bought nothing.
  socket->recv_slots_ =
      std::make_unique_for_overwrite<uint8_t[]>(kBatchSize * kRecvSlotSize);
  UdpSocket* raw = socket.get();
  LDP_RETURN_IF_ERROR(loop.Add(raw->fd_.get(), /*want_read=*/true,
                               /*want_write=*/false,
                               [raw](IoEvents) { raw->OnReadable(); }));
  return socket;
}

Result<std::unique_ptr<UdpSocket>> UdpSocket::Bind(EventLoop& loop,
                                                   Endpoint local,
                                                   DatagramHandler on_datagram,
                                                   const Options& options) {
  return BindInternal(loop, local, options, std::move(on_datagram), nullptr);
}

Result<std::unique_ptr<UdpSocket>> UdpSocket::BindBatch(
    EventLoop& loop, Endpoint local, BatchHandler on_batch,
    const Options& options) {
  return BindInternal(loop, local, options, nullptr, std::move(on_batch));
}

UdpSocket::~UdpSocket() {
  if (fd_.valid()) loop_.Remove(fd_.get());
}

Status UdpSocket::SendTo(std::span<const uint8_t> payload, Endpoint to) {
  sockaddr_in addr = ToSockaddr(to);
  ssize_t sent =
      ::sendto(fd_.get(), payload.data(), payload.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (sent < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // UDP send buffer full: datagram lost, as it would be on the wire.
      return Error(ErrorCode::kWouldBlock, "UDP send buffer full");
    }
    return Errno("sendto");
  }
  return Status::Ok();
}

size_t UdpSocket::RecvBatch(std::span<RecvItem> out) {
  size_t want = std::min(out.size(), kBatchSize);
  if (want == 0) return 0;

#if defined(__linux__)
  mmsghdr msgs[kBatchSize];
  iovec iovs[kBatchSize];
  sockaddr_in addrs[kBatchSize];
  std::memset(msgs, 0, sizeof(mmsghdr) * want);
  for (size_t i = 0; i < want; ++i) {
    iovs[i].iov_base = recv_slots_.get() + i * kRecvSlotSize;
    iovs[i].iov_len = kRecvSlotSize;
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
  }
  int got = ::recvmmsg(fd_.get(), msgs, static_cast<unsigned>(want), 0,
                       nullptr);
  if (got > 0) {
    for (int i = 0; i < got; ++i) {
      out[static_cast<size_t>(i)] = RecvItem{
          std::span<const uint8_t>(
              recv_slots_.get() + static_cast<size_t>(i) * kRecvSlotSize,
              msgs[i].msg_len),
          FromSockaddr(addrs[i])};
    }
    return static_cast<size_t>(got);
  }
  if (got < 0 && errno != ENOSYS) return 0;  // EAGAIN or error
#endif

  // Portable fallback: one recvfrom per datagram into the same slots.
  size_t count = 0;
  while (count < want) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    uint8_t* slot = recv_slots_.get() + count * kRecvSlotSize;
    ssize_t n = ::recvfrom(fd_.get(), slot, kRecvSlotSize, 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) break;  // EAGAIN or error: stop draining
    out[count] = RecvItem{
        std::span<const uint8_t>(slot, static_cast<size_t>(n)),
        FromSockaddr(from)};
    ++count;
  }
  return count;
}

size_t UdpSocket::SendBatch(std::span<const UdpSendItem> batch) {
  size_t accepted = 0;
#if defined(__linux__)
  while (accepted < batch.size()) {
    size_t chunk = std::min(batch.size() - accepted, kBatchSize);
    mmsghdr msgs[kBatchSize];
    iovec iovs[kBatchSize];
    sockaddr_in addrs[kBatchSize];
    std::memset(msgs, 0, sizeof(mmsghdr) * chunk);
    for (size_t i = 0; i < chunk; ++i) {
      const UdpSendItem& item = batch[accepted + i];
      iovs[i].iov_base = const_cast<uint8_t*>(item.payload.data());
      iovs[i].iov_len = item.payload.size();
      addrs[i] = ToSockaddr(item.to);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    }
    int sent = ::sendmmsg(fd_.get(), msgs, static_cast<unsigned>(chunk), 0);
    if (sent < 0) {
      if (errno == ENOSYS) break;  // fall through to the sendto loop
      // EAGAIN: send buffer full — remaining datagrams are dropped, as
      // they would be on the wire.
      return accepted;
    }
    accepted += static_cast<size_t>(sent);
    if (static_cast<size_t>(sent) < chunk) return accepted;  // buffer full
  }
  if (accepted == batch.size()) return accepted;
#endif

  for (size_t i = accepted; i < batch.size(); ++i) {
    if (!SendTo(batch[i].payload, batch[i].to).ok()) return accepted;
    ++accepted;
  }
  return accepted;
}

void UdpSocket::OnReadable() {
  // Drain the socket in recvmmsg batches: level-triggered epoll would
  // re-arm anyway, but draining cuts wakeups at high rates. The per-event
  // cap bounds how long one busy socket can starve its loop siblings.
  constexpr size_t kMaxPerEvent = 8 * kBatchSize;
  RecvItem items[kBatchSize];
  size_t total = 0;
  while (total < kMaxPerEvent) {
    size_t got = RecvBatch(items);
    if (got == 0) return;
    total += got;
    if (on_batch_) {
      on_batch_(std::span<const RecvItem>(items, got));
    } else if (on_datagram_) {
      for (size_t i = 0; i < got; ++i) {
        on_datagram_(items[i].payload, items[i].from);
      }
    }
  }
}

// --- TcpConnection ---

Result<std::unique_ptr<TcpConnection>> TcpConnection::Connect(
    EventLoop& loop, Endpoint remote, ConnectHandler on_connected,
    DataHandler on_data, CloseHandler on_close,
    const TcpConnectOptions& options) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket(TCP)");

  // The paper disables Nagle at the client (§5.2.1).
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (!options.local.addr.IsUnspecified() || options.local.port != 0) {
    // SO_REUSEADDR lets back-to-back reconnects reuse a source port still
    // in TIME_WAIT from the previous stream.
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in local = ToSockaddr(options.local);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&local),
               sizeof(local)) != 0) {
      return Errno(("bind " + options.local.ToString()).c_str());
    }
  }

  sockaddr_in addr = ToSockaddr(remote);
  int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Errno(("connect " + remote.ToString()).c_str());
  }

  auto conn =
      std::unique_ptr<TcpConnection>(new TcpConnection(loop, std::move(fd)));
  conn->remote_ = remote;
  conn->on_connected_ = std::move(on_connected);
  conn->on_data_ = std::move(on_data);
  conn->on_close_ = std::move(on_close);
  LDP_RETURN_IF_ERROR(conn->Register(/*connecting=*/true));
  return conn;
}

TcpConnection::~TcpConnection() {
  *alive_ = false;
  if (fd_.valid()) loop_.Remove(fd_.get());
}

void TcpConnection::SetWriteWatermarks(size_t high, size_t low,
                                       WatermarkHandler handler) {
  high_watermark_ = high;
  low_watermark_ = std::min(low, high);
  on_watermark_ = std::move(handler);
}

Status TcpConnection::Register(bool connecting) {
  want_write_ = connecting;
  return loop_.Add(fd_.get(), /*want_read=*/true, /*want_write=*/connecting,
                   [this](IoEvents events) { OnIo(events); });
}

Status TcpConnection::Send(std::span<const uint8_t> data) {
  if (closed_) return Error(ErrorCode::kConnectionClosed, "send after close");
  if (!send_queue_.empty() || !connected_) {
    send_queue_.insert(send_queue_.end(), data.begin(), data.end());
    MaybeSignalHighWatermark();
    return Status::Ok();
  }
  ssize_t sent = ::send(fd_.get(), data.data(), data.size(), MSG_NOSIGNAL);
  if (sent < 0) {
    if (errno != EAGAIN && errno != EWOULDBLOCK) return Errno("send");
    sent = 0;
  }
  if (static_cast<size_t>(sent) < data.size()) {
    send_queue_.insert(send_queue_.end(), data.begin() + sent, data.end());
    if (!want_write_) {
      want_write_ = true;
      LDP_RETURN_IF_ERROR(loop_.Modify(fd_.get(), true, true));
    }
    MaybeSignalHighWatermark();
  }
  return Status::Ok();
}

void TcpConnection::MaybeSignalHighWatermark() {
  if (high_watermark_ == 0 || above_high_) return;
  if (send_queue_.size() < high_watermark_) return;
  above_high_ = true;
  // Stack copy: the handler may destroy this connection (and with it the
  // member functor) while executing.
  WatermarkHandler on_watermark = on_watermark_;
  if (on_watermark) on_watermark(true);
}

size_t TcpConnection::queued_bytes() const { return send_queue_.size(); }

void TcpConnection::OnIo(IoEvents events) {
  // Every handler below may destroy this connection from inside its own
  // callback; `alive` outlives the object and gates every member access
  // that follows a handler invocation.
  std::shared_ptr<bool> alive = alive_;

  if (!connected_) {
    // Connect completion (or failure).
    int error = 0;
    socklen_t len = sizeof(error);
    ::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &error, &len);
    if (events.error || error != 0) {
      closed_ = true;
      loop_.Remove(fd_.get());
      fd_.Reset();
      // Moved to the stack: the handler may destroy this connection, and
      // the function object must outlive its own invocation.
      ConnectHandler on_connected = std::move(on_connected_);
      if (on_connected) {
        on_connected(Error(ErrorCode::kIoError,
                           std::string("connect: ") + std::strerror(error)));
      }
      return;
    }
    if (events.writable || events.readable) {
      connected_ = true;
      auto local = LocalEndpoint(fd_.get());
      if (local.ok()) local_ = *local;
      want_write_ = !send_queue_.empty();
      auto status = loop_.Modify(fd_.get(), true, want_write_);
      (void)status;
      if (on_connected_) {
        // Connect fires exactly once: move the handler out so destroying
        // the connection from inside it cannot free an executing functor.
        ConnectHandler on_connected = std::move(on_connected_);
        on_connected(Status::Ok());
        if (!*alive || closed_) return;
      }
      FlushSendQueue();
      if (!*alive || closed_) return;
    }
    if (!events.readable) return;
  }

  if (events.readable) {
    // Stack copy (SSO-sized captures: no allocation): the handler may
    // destroy this connection, and the member functor with it.
    DataHandler on_data = on_data_;
    uint8_t buffer[65536];
    while (true) {
      ssize_t got = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
      if (got > 0) {
        if (on_data) {
          on_data(std::span<const uint8_t>(buffer,
                                           static_cast<size_t>(got)));
        }
        if (!*alive || closed_) return;
        continue;
      }
      if (got == 0) {
        HandleClose(Status::Ok());  // clean peer EOF
        return;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        HandleClose(Errno("recv"));
        return;
      }
      break;  // EAGAIN: drained
    }
  }
  if (events.writable && connected_) {
    FlushSendQueue();
    if (!*alive || closed_) return;
  }
  if (events.hangup || events.error) {
    int error = 0;
    socklen_t len = sizeof(error);
    ::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &error, &len);
    if (events.error && error != 0) {
      errno = error;
      HandleClose(Errno("socket error"));
    } else {
      HandleClose(Status::Ok());  // hangup: peer closed
    }
  }
}

void TcpConnection::FlushSendQueue() {
  while (!send_queue_.empty()) {
    // deque is not contiguous: send in bounded contiguous chunks.
    uint8_t chunk[16384];
    size_t n = std::min(send_queue_.size(), sizeof(chunk));
    std::copy(send_queue_.begin(),
              send_queue_.begin() + static_cast<ptrdiff_t>(n), chunk);
    ssize_t sent = ::send(fd_.get(), chunk, n, MSG_NOSIGNAL);
    if (sent <= 0) break;
    send_queue_.erase(send_queue_.begin(),
                      send_queue_.begin() + sent);
  }
  bool need_write = !send_queue_.empty();
  if (need_write != want_write_) {
    want_write_ = need_write;
    auto status = loop_.Modify(fd_.get(), true, want_write_);
    (void)status;
  }
  // Signal last: the resume handler may call Send (re-entering this
  // connection) or even destroy it — nothing below touches members.
  if (above_high_ && send_queue_.size() <= low_watermark_) {
    above_high_ = false;
    WatermarkHandler on_watermark = on_watermark_;
    if (on_watermark) on_watermark(false);
  }
}

void TcpConnection::HandleClose(Status reason) {
  if (closed_) return;
  closed_ = true;
  loop_.Remove(fd_.get());
  fd_.Reset();
  // Moved to the stack: the handler commonly destroys this connection (the
  // function object must outlive its own invocation).
  CloseHandler on_close = std::move(on_close_);
  if (on_close) on_close(std::move(reason));
}

// --- TcpListener ---

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    EventLoop& loop, Endpoint local, AcceptHandler on_accept,
    const TcpListenOptions& options) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket(TCP listener)");

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options.reuse_port) {
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) != 0) {
      return Errno("setsockopt(SO_REUSEPORT)");
    }
  }

  sockaddr_in addr = ToSockaddr(local);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno(("bind " + local.ToString()).c_str());
  }
  // 4096: a mass-connection ramp (the fig13-15 bench opens tens of
  // thousands of connections in seconds) overflows the old 1024 backlog on
  // a single-core host; the kernel clamps to somaxconn either way.
  if (::listen(fd.get(), 4096) != 0) return Errno("listen");
  LDP_ASSIGN_OR_RETURN(Endpoint bound, LocalEndpoint(fd.get()));

  auto listener = std::unique_ptr<TcpListener>(
      new TcpListener(loop, std::move(fd), bound, std::move(on_accept)));
  TcpListener* raw = listener.get();
  LDP_RETURN_IF_ERROR(loop.Add(raw->fd_.get(), true, false,
                               [raw](IoEvents) { raw->OnReadable(); }));
  return listener;
}

TcpListener::~TcpListener() {
  if (fd_.valid()) loop_.Remove(fd_.get());
}

void TcpListener::Pause() {
  if (paused_ || !fd_.valid()) return;
  paused_ = true;
  auto status = loop_.Modify(fd_.get(), /*want_read=*/false,
                             /*want_write=*/false);
  (void)status;
}

void TcpListener::Resume() {
  if (!paused_ || !fd_.valid()) return;
  paused_ = false;
  auto status = loop_.Modify(fd_.get(), /*want_read=*/true,
                             /*want_write=*/false);
  (void)status;
}

void TcpListener::OnReadable() {
  // on_accept_ may Pause() this listener (connection cap reached): stop the
  // accept burst immediately and leave the rest in the kernel backlog.
  while (!paused_) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int client = ::accept4(fd_.get(), reinterpret_cast<sockaddr*>(&addr),
                           &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) return;  // EAGAIN or transient error

    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::unique_ptr<TcpConnection>(
        new TcpConnection(loop_, Fd(client)));
    conn->connected_ = true;
    conn->remote_ = FromSockaddr(addr);
    auto local = LocalEndpoint(client);
    if (local.ok()) conn->local_ = *local;
    if (on_accept_) on_accept_(std::move(conn));
  }
}

Status TcpListener::AdoptHandlers(TcpConnection& conn,
                                  TcpConnection::DataHandler on_data,
                                  TcpConnection::CloseHandler on_close) {
  conn.on_data_ = std::move(on_data);
  conn.on_close_ = std::move(on_close);
  return conn.Register(/*connecting=*/false);
}

}  // namespace ldp::net
