// Non-blocking UDP and TCP sockets over the event loop. IPv4 only (the
// testbed address plan is IPv4, like the paper's).
#ifndef LDPLAYER_NET_SOCKETS_H
#define LDPLAYER_NET_SOCKETS_H

#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "common/bytes.h"
#include "common/ip.h"
#include "common/result.h"
#include "net/event_loop.h"

namespace ldp::net {

// --- UDP ---

// One datagram of an outgoing batch; the payload must stay alive through
// the SendBatch call.
struct UdpSendItem {
  std::span<const uint8_t> payload;
  Endpoint to;
};

struct UdpOptions {
  // SO_REUSEPORT: lets several sockets bind the same address so the
  // kernel shards incoming datagrams across them (one per worker).
  bool reuse_port = false;
  // SO_RCVBUF in bytes (0 = kernel default). High-rate servers raise this
  // so bursts queue in the kernel instead of dropping while the worker is
  // mid-batch.
  int recv_buffer_bytes = 0;
};

class UdpSocket {
 public:
  // Datagrams moved per recvmmsg/sendmmsg syscall. Received payloads live
  // in per-socket slots of kRecvSlotSize bytes (the UDP maximum, so jumbo
  // loopback datagrams are never clipped).
  static constexpr size_t kBatchSize = 32;
  static constexpr size_t kRecvSlotSize = 65536;

  // One received datagram of a batch; the payload points into the socket's
  // receive slots and is valid only until the next RecvBatch call.
  struct RecvItem {
    std::span<const uint8_t> payload;
    Endpoint from;
  };

  using DatagramHandler =
      std::function<void(std::span<const uint8_t>, Endpoint from)>;
  using BatchHandler = std::function<void(std::span<const RecvItem>)>;

  using Options = UdpOptions;

  // Binds to `local` (port 0 = ephemeral) and registers with the loop.
  static Result<std::unique_ptr<UdpSocket>> Bind(EventLoop& loop,
                                                 Endpoint local,
                                                 DatagramHandler on_datagram,
                                                 const Options& options = Options());

  // Like Bind, but readiness delivers whole received batches: one handler
  // call per recvmmsg, so the callee can amortize its own work (and its
  // reply syscalls) across the batch.
  static Result<std::unique_ptr<UdpSocket>> BindBatch(
      EventLoop& loop, Endpoint local, BatchHandler on_batch,
      const Options& options = Options());

  ~UdpSocket();

  Status SendTo(std::span<const uint8_t> payload, Endpoint to);

  // Receives up to min(out.size(), kBatchSize) datagrams with one recvmmsg
  // (portable fallback: recvfrom loop). Returns the number received; 0 on
  // EAGAIN. Payload spans are valid until the next RecvBatch call.
  size_t RecvBatch(std::span<RecvItem> out);

  // Sends the whole batch via sendmmsg in kBatchSize chunks (portable
  // fallback: sendto loop). Returns how many datagrams the kernel accepted;
  // a short count means the send buffer filled and the rest were dropped,
  // as they would be on the wire.
  size_t SendBatch(std::span<const UdpSendItem> batch);

  Endpoint local() const { return local_; }

 private:
  UdpSocket(EventLoop& loop, Fd fd, Endpoint local)
      : loop_(loop), fd_(std::move(fd)), local_(local) {}
  static Result<std::unique_ptr<UdpSocket>> BindInternal(
      EventLoop& loop, Endpoint local, const Options& options,
      DatagramHandler on_datagram, BatchHandler on_batch);
  void OnReadable();

  EventLoop& loop_;
  Fd fd_;
  Endpoint local_;
  DatagramHandler on_datagram_;  // per-datagram mode
  BatchHandler on_batch_;        // batch mode (exactly one mode is set)
  // Receive slots, allocated once at bind: kBatchSize * kRecvSlotSize.
  std::unique_ptr<uint8_t[]> recv_slots_;
};

// --- TCP ---

struct TcpConnectOptions {
  // When set (address or port nonzero), bind the socket here before
  // connecting. The hierarchy proxy uses this to dial the meta server
  // *from* an emulated nameserver address so the server's split-horizon
  // view match sees the OQDA as the stream's source.
  Endpoint local;
};

// A bidirectional byte stream driven by the event loop. Plain TCP
// (TcpConnection) and TLS-over-TCP (net::TlsConnection) both implement it,
// so the DNS server and the replay querier hold either transport behind one
// pointer — the same seam the datapath abstraction gives the UDP path.
class StreamConn {
 public:
  using DataHandler = std::function<void(std::span<const uint8_t>)>;
  // Close reason: Ok() means a clean peer EOF (or hangup); an error status
  // carries the socket error (ECONNRESET, EPIPE, ...) so callers can tell
  // normal lifecycle from failure and decide whether to reconnect.
  using CloseHandler = std::function<void(Status)>;
  using ConnectHandler = std::function<void(Status)>;
  using WatermarkHandler = std::function<void(bool paused)>;

  virtual ~StreamConn() = default;

  // Buffered write: queues what the transport cannot take immediately.
  virtual Status Send(std::span<const uint8_t> data) = 0;

  // Write-queue backpressure: once queued_bytes() reaches `high` the handler
  // fires with paused=true; when the queue drains to `low` or below it fires
  // with paused=false. Advisory, like the kernel's send buffer.
  virtual void SetWriteWatermarks(size_t high, size_t low,
                                  WatermarkHandler handler) = 0;

  virtual bool connected() const = 0;
  virtual Endpoint local() const = 0;
  virtual Endpoint remote() const = 0;
  virtual size_t queued_bytes() const = 0;
};

class TcpConnection : public StreamConn {
 public:
  using DataHandler = StreamConn::DataHandler;
  using CloseHandler = StreamConn::CloseHandler;
  using ConnectHandler = StreamConn::ConnectHandler;
  using WatermarkHandler = StreamConn::WatermarkHandler;
  // Asynchronous connect; `on_connected` fires once with the outcome.
  static Result<std::unique_ptr<TcpConnection>> Connect(
      EventLoop& loop, Endpoint remote, ConnectHandler on_connected,
      DataHandler on_data, CloseHandler on_close,
      const TcpConnectOptions& options = TcpConnectOptions());

  ~TcpConnection() override;

  // Buffered write: queues what the kernel will not take immediately.
  Status Send(std::span<const uint8_t> data) override;

  // Write-queue backpressure: once queued_bytes() reaches `high` the handler
  // fires with paused=true; when the queue drains to `low` or below it fires
  // with paused=false. A paused caller should stop calling Send (nothing is
  // enforced — watermarks are advisory, like the kernel's send buffer).
  void SetWriteWatermarks(size_t high, size_t low,
                          WatermarkHandler handler) override;

  bool connected() const override { return connected_; }
  Endpoint local() const override { return local_; }
  Endpoint remote() const override { return remote_; }
  size_t queued_bytes() const override;

 private:
  friend class TcpListener;
  TcpConnection(EventLoop& loop, Fd fd) : loop_(loop), fd_(std::move(fd)) {}

  Status Register(bool connecting);
  void OnIo(IoEvents events);
  void FlushSendQueue();
  void MaybeSignalHighWatermark();
  void HandleClose(Status reason);

  EventLoop& loop_;
  Fd fd_;
  Endpoint local_;
  Endpoint remote_;
  bool connected_ = false;
  bool closed_ = false;
  bool want_write_ = false;
  ConnectHandler on_connected_;
  DataHandler on_data_;
  CloseHandler on_close_;
  std::deque<uint8_t> send_queue_;
  // Backpressure state; high == 0 disables watermarks.
  size_t high_watermark_ = 0;
  size_t low_watermark_ = 0;
  bool above_high_ = false;
  WatermarkHandler on_watermark_;
  // Any handler may destroy this connection (including from inside its own
  // callback); OnIo keeps a copy of this flag on the stack and re-checks it
  // after every handler invocation before touching members again.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

struct TcpListenOptions {
  // SO_REUSEPORT: lets every server shard bind its own listener on the same
  // address, so the kernel spreads incoming connections across shards by
  // 4-tuple hash — the TCP twin of the sharded UDP fast path.
  bool reuse_port = false;
};

class TcpListener {
 public:
  using AcceptHandler = std::function<void(std::unique_ptr<TcpConnection>)>;

  // The accepted connection is delivered unregistered for data; the callee
  // assigns handlers via AdoptHandlers and the listener registers it.
  static Result<std::unique_ptr<TcpListener>> Listen(
      EventLoop& loop, Endpoint local, AcceptHandler on_accept,
      const TcpListenOptions& options = TcpListenOptions());
  ~TcpListener();

  Endpoint local() const { return local_; }

  // Accept-pause flow control: Pause drops read interest so pending and new
  // connections wait in the kernel backlog instead of being accepted; Resume
  // re-arms it (level-triggered epoll re-fires if the backlog is non-empty).
  // The server uses this to stop an accept flood at its connection cap.
  void Pause();
  void Resume();
  bool paused() const { return paused_; }

  // Completes setup of an accepted connection: installs handlers and
  // registers it with the loop.
  static Status AdoptHandlers(TcpConnection& conn,
                              TcpConnection::DataHandler on_data,
                              TcpConnection::CloseHandler on_close);

 private:
  TcpListener(EventLoop& loop, Fd fd, Endpoint local,
              AcceptHandler on_accept)
      : loop_(loop),
        fd_(std::move(fd)),
        local_(local),
        on_accept_(std::move(on_accept)) {}
  void OnReadable();

  EventLoop& loop_;
  Fd fd_;
  Endpoint local_;
  AcceptHandler on_accept_;
  bool paused_ = false;
};

}  // namespace ldp::net

#endif  // LDPLAYER_NET_SOCKETS_H
