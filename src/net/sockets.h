// Non-blocking UDP and TCP sockets over the event loop. IPv4 only (the
// testbed address plan is IPv4, like the paper's).
#ifndef LDPLAYER_NET_SOCKETS_H
#define LDPLAYER_NET_SOCKETS_H

#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "common/bytes.h"
#include "common/ip.h"
#include "common/result.h"
#include "net/event_loop.h"

namespace ldp::net {

// --- UDP ---

class UdpSocket {
 public:
  using DatagramHandler =
      std::function<void(std::span<const uint8_t>, Endpoint from)>;

  // Binds to `local` (port 0 = ephemeral) and registers with the loop.
  static Result<std::unique_ptr<UdpSocket>> Bind(EventLoop& loop,
                                                 Endpoint local,
                                                 DatagramHandler on_datagram);
  ~UdpSocket();

  Status SendTo(std::span<const uint8_t> payload, Endpoint to);
  Endpoint local() const { return local_; }

 private:
  UdpSocket(EventLoop& loop, Fd fd, Endpoint local,
            DatagramHandler on_datagram)
      : loop_(loop),
        fd_(std::move(fd)),
        local_(local),
        on_datagram_(std::move(on_datagram)) {}
  void OnReadable();

  EventLoop& loop_;
  Fd fd_;
  Endpoint local_;
  DatagramHandler on_datagram_;
};

// --- TCP ---

class TcpConnection {
 public:
  using DataHandler = std::function<void(std::span<const uint8_t>)>;
  using CloseHandler = std::function<void()>;
  using ConnectHandler = std::function<void(Status)>;

  // Asynchronous connect; `on_connected` fires once with the outcome.
  static Result<std::unique_ptr<TcpConnection>> Connect(
      EventLoop& loop, Endpoint remote, ConnectHandler on_connected,
      DataHandler on_data, CloseHandler on_close);

  ~TcpConnection();

  // Buffered write: queues what the kernel will not take immediately.
  Status Send(std::span<const uint8_t> data);

  bool connected() const { return connected_; }
  Endpoint local() const { return local_; }
  Endpoint remote() const { return remote_; }
  size_t queued_bytes() const;

 private:
  friend class TcpListener;
  TcpConnection(EventLoop& loop, Fd fd) : loop_(loop), fd_(std::move(fd)) {}

  Status Register(bool connecting);
  void OnIo(IoEvents events);
  void FlushSendQueue();
  void HandleClose();

  EventLoop& loop_;
  Fd fd_;
  Endpoint local_;
  Endpoint remote_;
  bool connected_ = false;
  bool closed_ = false;
  bool want_write_ = false;
  ConnectHandler on_connected_;
  DataHandler on_data_;
  CloseHandler on_close_;
  std::deque<uint8_t> send_queue_;
};

class TcpListener {
 public:
  using AcceptHandler = std::function<void(std::unique_ptr<TcpConnection>)>;

  // The accepted connection is delivered unregistered for data; the callee
  // assigns handlers via AdoptHandlers and the listener registers it.
  static Result<std::unique_ptr<TcpListener>> Listen(EventLoop& loop,
                                                     Endpoint local,
                                                     AcceptHandler on_accept);
  ~TcpListener();

  Endpoint local() const { return local_; }

  // Completes setup of an accepted connection: installs handlers and
  // registers it with the loop.
  static Status AdoptHandlers(TcpConnection& conn,
                              TcpConnection::DataHandler on_data,
                              TcpConnection::CloseHandler on_close);

 private:
  TcpListener(EventLoop& loop, Fd fd, Endpoint local,
              AcceptHandler on_accept)
      : loop_(loop),
        fd_(std::move(fd)),
        local_(local),
        on_accept_(std::move(on_accept)) {}
  void OnReadable();

  EventLoop& loop_;
  Fd fd_;
  Endpoint local_;
  AcceptHandler on_accept_;
};

}  // namespace ldp::net

#endif  // LDPLAYER_NET_SOCKETS_H
