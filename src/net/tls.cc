#include "net/tls.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/log.h"

#if defined(LDP_HAVE_OPENSSL)
#include <openssl/bio.h>
#include <openssl/crypto.h>
#include <openssl/err.h>
#include <openssl/evp.h>
#include <openssl/ssl.h>
#include <openssl/x509.h>
#endif

namespace ldp::net {

// --- OpenSSL memory accounting (works with or without OpenSSL: without it
// the counter simply never moves) ---

namespace {

std::atomic<size_t> g_tls_bytes{0};

#if defined(LDP_HAVE_OPENSSL)
// Each allocation is prefixed with its size in a 16-byte header (16 keeps
// malloc's alignment guarantee intact for the caller-visible pointer).
constexpr size_t kAccountingHeader = 16;

void* AccountingMalloc(size_t num, const char*, int) {
  void* base = std::malloc(num + kAccountingHeader);
  if (base == nullptr) return nullptr;
  std::memcpy(base, &num, sizeof(num));
  g_tls_bytes.fetch_add(num, std::memory_order_relaxed);
  return static_cast<uint8_t*>(base) + kAccountingHeader;
}

void AccountingFree(void* ptr, const char*, int) {
  if (ptr == nullptr) return;
  void* base = static_cast<uint8_t*>(ptr) - kAccountingHeader;
  size_t num = 0;
  std::memcpy(&num, base, sizeof(num));
  g_tls_bytes.fetch_sub(num, std::memory_order_relaxed);
  std::free(base);
}

void* AccountingRealloc(void* ptr, size_t num, const char* file, int line) {
  if (ptr == nullptr) return AccountingMalloc(num, file, line);
  void* base = static_cast<uint8_t*>(ptr) - kAccountingHeader;
  size_t old = 0;
  std::memcpy(&old, base, sizeof(old));
  void* grown = std::realloc(base, num + kAccountingHeader);
  if (grown == nullptr) return nullptr;
  std::memcpy(grown, &num, sizeof(num));
  g_tls_bytes.fetch_add(num, std::memory_order_relaxed);
  g_tls_bytes.fetch_sub(old, std::memory_order_relaxed);
  return static_cast<uint8_t*>(grown) + kAccountingHeader;
}
#endif  // LDP_HAVE_OPENSSL

}  // namespace

size_t TlsAllocatedBytes() {
  return g_tls_bytes.load(std::memory_order_relaxed);
}

#if defined(LDP_HAVE_OPENSSL)

bool TlsAvailable() { return true; }

bool TlsEnableMemoryAccounting() {
  // Fails (returns 0) once OpenSSL has allocated anything; callers treat
  // that as "no accounting", never as an error.
  return CRYPTO_set_mem_functions(AccountingMalloc, AccountingRealloc,
                                  AccountingFree) == 1;
}

namespace {
// CRYPTO_set_mem_functions only succeeds before OpenSSL's first allocation,
// so the hook installs itself at static-initialization time — lazily
// enabling it from TlsContext creation would already be too late in any
// process that touched OpenSSL first.
const bool g_accounting_enabled = TlsEnableMemoryAccounting();
}  // namespace

namespace {

std::string OpensslErrString(const char* what) {
  char buf[256];
  unsigned long code = ERR_get_error();
  if (code == 0) return std::string(what) + ": unknown OpenSSL error";
  ERR_error_string_n(code, buf, sizeof(buf));
  ERR_clear_error();
  return std::string(what) + ": " + buf;
}

uint64_t EndpointKey(Endpoint endpoint) {
  return (static_cast<uint64_t>(endpoint.addr.value()) << 16) |
         endpoint.port;
}

// Self-signed certificate over a fresh EC P-256 key, entirely in memory.
// Returns true and fills cert/key on success (caller owns both).
bool MakeSelfSignedCert(X509** cert_out, EVP_PKEY** key_out) {
  EVP_PKEY* key = EVP_PKEY_Q_keygen(nullptr, nullptr, "EC", "P-256");
  if (key == nullptr) return false;
  X509* cert = X509_new();
  if (cert == nullptr) {
    EVP_PKEY_free(key);
    return false;
  }
  bool ok = X509_set_version(cert, 2) == 1 &&
            ASN1_INTEGER_set(X509_get_serialNumber(cert), 1) == 1 &&
            X509_gmtime_adj(X509_getm_notBefore(cert), -3600) != nullptr &&
            X509_gmtime_adj(X509_getm_notAfter(cert),
                            60L * 60 * 24 * 365 * 10) != nullptr &&
            X509_set_pubkey(cert, key) == 1;
  if (ok) {
    X509_NAME* name = X509_get_subject_name(cert);
    ok = X509_NAME_add_entry_by_txt(
             name, "CN", MBSTRING_ASC,
             reinterpret_cast<const unsigned char*>("ldplayer"), -1, -1,
             0) == 1 &&
         X509_set_issuer_name(cert, name) == 1 &&
         X509_sign(cert, key, EVP_sha256()) != 0;
  }
  if (!ok) {
    X509_free(cert);
    EVP_PKEY_free(key);
    return false;
  }
  *cert_out = cert;
  *key_out = key;
  return true;
}

}  // namespace

// Defined at namespace scope so it can be befriended by TlsConnection and
// still see OpenSSL types (which must stay out of tls.h).
struct TlsCallbacks {
  // Client new-session callback: TLS 1.3 tickets arrive *after* the
  // handshake, so capturing them here (not by snapshotting at
  // handshake-complete) is what makes resumption actually work.
  static int NewSession(SSL* ssl, SSL_SESSION* session);
};

struct TlsContext::Impl {
  SSL_CTX* ctx = nullptr;
  bool server = false;
  // Client-side session cache: most recent session per target endpoint.
  std::mutex mu;
  std::unordered_map<uint64_t, SSL_SESSION*> sessions;

  ~Impl() {
    for (auto& [key, session] : sessions) SSL_SESSION_free(session);
    if (ctx != nullptr) SSL_CTX_free(ctx);
  }

  void Store(Endpoint endpoint, SSL_SESSION* session) {
    std::lock_guard<std::mutex> lock(mu);
    SSL_SESSION*& slot = sessions[EndpointKey(endpoint)];
    if (slot != nullptr) SSL_SESSION_free(slot);
    slot = session;  // ownership transferred from the callback
  }

  // Applies the cached session for `endpoint` (if any) to a fresh SSL;
  // SSL_set_session takes its own reference, the cache keeps its copy.
  void ApplyCached(SSL* ssl, Endpoint endpoint) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = sessions.find(EndpointKey(endpoint));
    if (it != sessions.end()) SSL_set_session(ssl, it->second);
  }
};

TlsContext::TlsContext(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
TlsContext::~TlsContext() = default;
bool TlsContext::is_server() const { return impl_->server; }

size_t TlsContext::cached_sessions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sessions.size();
}

Result<std::unique_ptr<TlsContext>> TlsContext::NewServer() {
  SSL_CTX* ctx = SSL_CTX_new(TLS_server_method());
  if (ctx == nullptr) {
    return Error(ErrorCode::kInternal, OpensslErrString("SSL_CTX_new"));
  }
  auto impl = std::make_unique<Impl>();
  impl->ctx = ctx;
  impl->server = true;

  SSL_CTX_set_min_proto_version(ctx, TLS1_2_VERSION);
  // RELEASE_BUFFERS frees a connection's ~34 KB of record buffers whenever
  // they are empty — the difference between ~50 KB and ~15 KB per idle
  // connection, which dominates the fig14 memory/conn measurement.
  SSL_CTX_set_mode(ctx, SSL_MODE_RELEASE_BUFFERS);
  // Stateless resumption only (session tickets): SERVER mode makes OpenSSL
  // honor incoming tickets, NO_INTERNAL keeps it from also growing a
  // stateful per-session cache with connection count.
  SSL_CTX_set_session_cache_mode(
      ctx, SSL_SESS_CACHE_SERVER | SSL_SESS_CACHE_NO_INTERNAL);

  X509* cert = nullptr;
  EVP_PKEY* key = nullptr;
  if (!MakeSelfSignedCert(&cert, &key)) {
    return Error(ErrorCode::kInternal,
                 OpensslErrString("self-signed certificate"));
  }
  bool ok = SSL_CTX_use_certificate(ctx, cert) == 1 &&
            SSL_CTX_use_PrivateKey(ctx, key) == 1 &&
            SSL_CTX_check_private_key(ctx) == 1;
  X509_free(cert);
  EVP_PKEY_free(key);
  if (!ok) {
    return Error(ErrorCode::kInternal,
                 OpensslErrString("SSL_CTX_use_certificate"));
  }
  return std::unique_ptr<TlsContext>(new TlsContext(std::move(impl)));
}

Result<std::unique_ptr<TlsContext>> TlsContext::NewClient() {
  SSL_CTX* ctx = SSL_CTX_new(TLS_client_method());
  if (ctx == nullptr) {
    return Error(ErrorCode::kInternal, OpensslErrString("SSL_CTX_new"));
  }
  auto impl = std::make_unique<Impl>();
  impl->ctx = ctx;
  impl->server = false;

  SSL_CTX_set_min_proto_version(ctx, TLS1_2_VERSION);
  SSL_CTX_set_mode(ctx, SSL_MODE_RELEASE_BUFFERS);
  // The testbed dials servers by address with self-signed certificates;
  // there is nothing to verify against (closed experiment network).
  SSL_CTX_set_verify(ctx, SSL_VERIFY_NONE, nullptr);
  // Route new sessions to our per-endpoint cache instead of OpenSSL's
  // internal one (NO_INTERNAL keeps it from growing behind our back).
  SSL_CTX_set_session_cache_mode(
      ctx, SSL_SESS_CACHE_CLIENT | SSL_SESS_CACHE_NO_INTERNAL);
  SSL_CTX_sess_set_new_cb(ctx, TlsCallbacks::NewSession);
  return std::unique_ptr<TlsContext>(new TlsContext(std::move(impl)));
}

// --- TlsConnection ---

struct TlsConnection::Ssl {
  SSL* ssl = nullptr;  // owns rbio/wbio via SSL_set_bio
  BIO* rbio = nullptr;
  BIO* wbio = nullptr;

  ~Ssl() {
    if (ssl != nullptr) SSL_free(ssl);
  }

  Status Create(TlsContext& ctx, TlsConnection* conn, bool client) {
    ssl = SSL_new(ctx.impl()->ctx);
    rbio = BIO_new(BIO_s_mem());
    wbio = BIO_new(BIO_s_mem());
    if (ssl == nullptr || rbio == nullptr || wbio == nullptr) {
      if (rbio != nullptr) BIO_free(rbio);
      if (wbio != nullptr) BIO_free(wbio);
      rbio = wbio = nullptr;
      return Error(ErrorCode::kInternal, OpensslErrString("SSL_new"));
    }
    SSL_set_bio(ssl, rbio, wbio);
    SSL_set_app_data(ssl, conn);
    if (client) {
      SSL_set_connect_state(ssl);
    } else {
      SSL_set_accept_state(ssl);
    }
    return Status::Ok();
  }
};

int TlsCallbacks::NewSession(SSL* ssl, SSL_SESSION* session) {
  auto* conn = static_cast<TlsConnection*>(SSL_get_app_data(ssl));
  if (conn == nullptr || conn->context_ == nullptr) return 0;
  // Cache a deep copy, not the delivered object: the most recent ticket's
  // SSL_SESSION *is* the connection's live session, and when that
  // connection later dies without a finished SSL_shutdown (abortive close,
  // server idle timeout — the normal cases here), OpenSSL marks that very
  // object not_resumable via ssl_clear_bad_session(). Caching the shared
  // object therefore poisons the cache retroactively and every redial
  // falls back to a full handshake; a dup taken now stays resumable.
  SSL_SESSION* copy = SSL_SESSION_dup(session);
  if (copy != nullptr) conn->context_->impl()->Store(conn->remote_, copy);
  return 0;  // we did not keep the callback's reference
}

TlsConnection::TlsConnection() = default;

TlsConnection::~TlsConnection() { *alive_ = false; }

Result<std::unique_ptr<TlsConnection>> TlsConnection::Connect(
    EventLoop& loop, TlsContext& ctx, Endpoint remote,
    ConnectHandler on_ready, DataHandler on_data, CloseHandler on_close,
    const TcpConnectOptions& options) {
  auto conn = std::unique_ptr<TlsConnection>(new TlsConnection());
  conn->context_ = &ctx;
  conn->remote_ = remote;
  conn->is_client_ = true;
  conn->on_ready_ = std::move(on_ready);
  conn->on_data_ = std::move(on_data);
  conn->on_close_ = std::move(on_close);
  conn->ssl_ = std::make_unique<Ssl>();
  LDP_RETURN_IF_ERROR(conn->ssl_->Create(ctx, conn.get(), /*client=*/true));
  // Resume the last session seen for this endpoint, if the cache has one.
  ctx.impl()->ApplyCached(conn->ssl_->ssl, remote);

  TlsConnection* raw = conn.get();
  auto tcp = TcpConnection::Connect(
      loop, remote,
      [raw](Status status) {
        if (!status.ok()) {
          raw->FailHandshake(std::move(status));
          return;
        }
        raw->start_time_ = MonotonicNow();
        raw->StartHandshake();
      },
      [raw](std::span<const uint8_t> data) { raw->OnTcpData(data); },
      [raw](Status reason) { raw->OnTcpClose(std::move(reason)); }, options);
  if (!tcp.ok()) return tcp.error();
  conn->tcp_ = std::move(*tcp);
  return conn;
}

Result<std::unique_ptr<TlsConnection>> TlsConnection::Accept(
    TlsContext& ctx, std::unique_ptr<TcpConnection> tcp) {
  auto conn = std::unique_ptr<TlsConnection>(new TlsConnection());
  conn->context_ = &ctx;
  conn->remote_ = tcp->remote();
  conn->is_client_ = false;
  conn->tcp_ = std::move(tcp);
  conn->ssl_ = std::make_unique<Ssl>();
  LDP_RETURN_IF_ERROR(conn->ssl_->Create(ctx, conn.get(), /*client=*/false));
  return conn;
}

Status TlsConnection::Start(ConnectHandler on_ready, DataHandler on_data,
                            CloseHandler on_close) {
  on_ready_ = std::move(on_ready);
  on_data_ = std::move(on_data);
  on_close_ = std::move(on_close);
  start_time_ = MonotonicNow();
  return TcpListener::AdoptHandlers(
      *tcp_,
      [this](std::span<const uint8_t> data) { OnTcpData(data); },
      [this](Status reason) { OnTcpClose(std::move(reason)); });
}

void TlsConnection::StartHandshake() {
  // Kicks off the client flight; everything after is data-driven via Pump.
  Pump();
}

void TlsConnection::OnTcpData(std::span<const uint8_t> data) {
  if (closed_) return;
  // A memory BIO grows to take everything; a short write means OOM-level
  // trouble, surfaced by the SSL layer on the next operation.
  BIO_write(ssl_->rbio, data.data(), static_cast<int>(data.size()));
  Pump();
}

void TlsConnection::OnTcpClose(Status reason) {
  if (closed_) return;
  closed_ = true;
  if (!handshake_done_) {
    // Close before the handshake finished is a handshake failure: report
    // once, through on_ready (on_close never fires for this connection).
    ConnectHandler on_ready = std::move(on_ready_);
    if (on_ready) {
      on_ready(reason.ok() ? Error(ErrorCode::kConnectionClosed,
                                   "connection closed during TLS handshake")
                           : std::move(reason));
    }
    return;
  }
  CloseHandler on_close = std::move(on_close_);
  if (on_close) on_close(std::move(reason));
}

void TlsConnection::FailHandshake(Status reason) {
  if (closed_) return;
  closed_ = true;
  ConnectHandler on_ready = std::move(on_ready_);
  if (on_ready) on_ready(std::move(reason));
}

bool TlsConnection::FlushCiphertext() {
  std::shared_ptr<bool> alive = alive_;
  uint8_t buffer[16384];
  while (BIO_ctrl_pending(ssl_->wbio) > 0) {
    int n = BIO_read(ssl_->wbio, buffer, sizeof(buffer));
    if (n <= 0) break;
    Status status =
        tcp_->Send(std::span<const uint8_t>(buffer, static_cast<size_t>(n)));
    // Send may fire the (user) watermark handler, which may destroy us.
    if (!*alive) return false;
    if (!status.ok()) {
      if (!handshake_done_) {
        FailHandshake(std::move(status));
      } else {
        closed_ = true;
        CloseHandler on_close = std::move(on_close_);
        if (on_close) on_close(std::move(status));
      }
      return false;
    }
    if (closed_) return false;
  }
  return true;
}

bool TlsConnection::Pump() {
  std::shared_ptr<bool> alive = alive_;
  if (closed_) return false;

  if (!handshake_done_) {
    int rc = SSL_do_handshake(ssl_->ssl);
    int err = rc == 1 ? SSL_ERROR_NONE : SSL_get_error(ssl_->ssl, rc);
    if (!FlushCiphertext() || !*alive || closed_) return false;
    if (rc == 1) {
      handshake_done_ = true;
      handshake_ns_ = MonotonicNow() - start_time_;
      reused_ = SSL_session_reused(ssl_->ssl) == 1;
      ConnectHandler on_ready = std::move(on_ready_);
      if (on_ready) {
        on_ready(Status::Ok());
        if (!*alive || closed_) return false;
      }
      if (!pending_plaintext_.empty()) {
        std::vector<uint8_t> pending = std::move(pending_plaintext_);
        Status status = Send(pending);
        (void)status;  // failure already routed through close handling
        if (!*alive || closed_) return false;
      }
    } else if (err != SSL_ERROR_WANT_READ && err != SSL_ERROR_WANT_WRITE) {
      FailHandshake(
          Error(ErrorCode::kIoError, OpensslErrString("TLS handshake")));
      return false;
    } else {
      return true;  // waiting for more handshake bytes
    }
  }

  // Deliver plaintext. SSL_read may also produce ciphertext (tickets, key
  // updates, alerts), flushed after each drain.
  uint8_t buffer[16384];
  while (true) {
    int n = SSL_read(ssl_->ssl, buffer, sizeof(buffer));
    if (n > 0) {
      DataHandler on_data = on_data_;  // stack copy: handler may destroy us
      if (on_data) {
        on_data(std::span<const uint8_t>(buffer, static_cast<size_t>(n)));
      }
      if (!*alive || closed_) return false;
      continue;
    }
    int err = SSL_get_error(ssl_->ssl, n);
    if (!FlushCiphertext() || !*alive || closed_) return false;
    if (err == SSL_ERROR_WANT_READ || err == SSL_ERROR_WANT_WRITE) break;
    closed_ = true;
    CloseHandler on_close = std::move(on_close_);
    if (on_close) {
      if (err == SSL_ERROR_ZERO_RETURN) {
        on_close(Status::Ok());  // clean close_notify from the peer
      } else {
        on_close(Error(ErrorCode::kIoError, OpensslErrString("SSL_read")));
      }
    }
    return false;
  }
  return true;
}

Status TlsConnection::Send(std::span<const uint8_t> data) {
  if (closed_) {
    return Error(ErrorCode::kConnectionClosed, "send after close");
  }
  if (data.empty()) return Status::Ok();
  if (!handshake_done_) {
    pending_plaintext_.insert(pending_plaintext_.end(), data.begin(),
                              data.end());
    return Status::Ok();
  }
  int rc = SSL_write(ssl_->ssl, data.data(), static_cast<int>(data.size()));
  if (rc <= 0) {
    // With a memory write-BIO, SSL_write takes everything; a failure is a
    // broken session, not backpressure.
    return Error(ErrorCode::kIoError, OpensslErrString("SSL_write"));
  }
  std::shared_ptr<bool> alive = alive_;
  if (!FlushCiphertext() || !*alive || closed_) {
    return Error(ErrorCode::kConnectionClosed, "connection closed mid-send");
  }
  return Status::Ok();
}

void TlsConnection::SetWriteWatermarks(size_t high, size_t low,
                                       WatermarkHandler handler) {
  if (tcp_ != nullptr) tcp_->SetWriteWatermarks(high, low, std::move(handler));
}

bool TlsConnection::connected() const { return handshake_done_ && !closed_; }

Endpoint TlsConnection::local() const {
  return tcp_ != nullptr ? tcp_->local() : Endpoint{};
}

Endpoint TlsConnection::remote() const { return remote_; }

size_t TlsConnection::queued_bytes() const {
  return (tcp_ != nullptr ? tcp_->queued_bytes() : 0) +
         pending_plaintext_.size();
}

bool TlsConnection::session_reused() const { return reused_; }

NanoDuration TlsConnection::handshake_duration() const {
  return handshake_ns_;
}

#else  // !LDP_HAVE_OPENSSL — stubs so callers can probe and skip

namespace {
Error TlsUnsupported() {
  return Error(ErrorCode::kUnsupported, "built without OpenSSL (no TLS)");
}
}  // namespace

bool TlsAvailable() { return false; }
bool TlsEnableMemoryAccounting() { return false; }

struct TlsContext::Impl {};

TlsContext::TlsContext(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
TlsContext::~TlsContext() = default;
bool TlsContext::is_server() const { return false; }
size_t TlsContext::cached_sessions() const { return 0; }

Result<std::unique_ptr<TlsContext>> TlsContext::NewServer() {
  return TlsUnsupported();
}
Result<std::unique_ptr<TlsContext>> TlsContext::NewClient() {
  return TlsUnsupported();
}

struct TlsConnection::Ssl {};

TlsConnection::TlsConnection() = default;
TlsConnection::~TlsConnection() { *alive_ = false; }

Result<std::unique_ptr<TlsConnection>> TlsConnection::Connect(
    EventLoop&, TlsContext&, Endpoint, ConnectHandler, DataHandler,
    CloseHandler, const TcpConnectOptions&) {
  return TlsUnsupported();
}
Result<std::unique_ptr<TlsConnection>> TlsConnection::Accept(
    TlsContext&, std::unique_ptr<TcpConnection>) {
  return TlsUnsupported();
}
Status TlsConnection::Start(ConnectHandler, DataHandler, CloseHandler) {
  return TlsUnsupported();
}
void TlsConnection::StartHandshake() {}
void TlsConnection::OnTcpData(std::span<const uint8_t>) {}
void TlsConnection::OnTcpClose(Status) {}
bool TlsConnection::Pump() { return false; }
bool TlsConnection::FlushCiphertext() { return false; }
void TlsConnection::FailHandshake(Status) {}
Status TlsConnection::Send(std::span<const uint8_t>) {
  return TlsUnsupported();
}
void TlsConnection::SetWriteWatermarks(size_t, size_t, WatermarkHandler) {}
bool TlsConnection::connected() const { return false; }
Endpoint TlsConnection::local() const { return Endpoint{}; }
Endpoint TlsConnection::remote() const { return remote_; }
size_t TlsConnection::queued_bytes() const { return 0; }
bool TlsConnection::session_reused() const { return false; }
NanoDuration TlsConnection::handshake_duration() const { return 0; }

#endif  // LDP_HAVE_OPENSSL

}  // namespace ldp::net
