// DNS-over-TLS transport: a TlsConnection layers TLS (OpenSSL) over a
// net::TcpConnection using memory BIOs, so the event loop, write queue, and
// accept path stay exactly the plain-TCP ones and TLS is pure byte
// transformation in userspace. Compiled against OpenSSL when CMake finds it;
// otherwise every entry point reports kUnsupported and TlsAvailable() is
// false, mirroring the probe-and-skip precedent of the fuzzing subsystem.
//
// OpenSSL never sees a socket: the SSL object reads ciphertext from a
// memory read-BIO that we fill from the TCP data callback, and writes
// ciphertext into a memory write-BIO that we drain into TcpConnection::Send.
#ifndef LDPLAYER_NET_TLS_H
#define LDPLAYER_NET_TLS_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "net/sockets.h"

namespace ldp::net {

// True when the build linked OpenSSL (LDP_HAVE_OPENSSL); scripts and tests
// probe this (via `ldp_datapath_probe --tls`) to skip TLS stages cleanly.
bool TlsAvailable();

// Routes OpenSSL's allocator through counting wrappers so the real bytes
// held by TLS state (SSL objects, buffers, session tickets) are observable
// as a gauge. Must run before any other OpenSSL call in the process;
// returns false (harmless) if OpenSSL already allocated or is absent.
bool TlsEnableMemoryAccounting();

// Live bytes allocated through OpenSSL after TlsEnableMemoryAccounting();
// 0 if accounting is off. The tls.mem_bytes gauge and the fig14 bench
// divide this by open connections for an honest memory/conn figure.
size_t TlsAllocatedBytes();

// Shared TLS configuration plus, on the client side, a session cache.
//
// Server contexts self-sign an in-memory certificate over a fresh EC P-256
// key at startup (the testbed dials by address and verifies nothing, like
// the paper's closed experiment networks; P-256 keeps a full handshake
// ~10x cheaper than RSA-2048 so mass-connection runs are CPU-honest).
//
// Client contexts cache the most recent session per target endpoint
// (captured from OpenSSL's new-session callback, which is where TLS 1.3
// tickets surface) and resume it on the next Connect to the same endpoint —
// the mechanism behind the paper's latency-vs-idle-timeout study: a short
// server idle timeout forces reconnects, and resumption is what keeps those
// reconnects to one round trip.
//
// A server context is shared by all shards (SSL_CTX is internally locked);
// a client context is typically per-querier so its cache needs no
// cross-thread traffic.
class TlsContext {
 public:
  static Result<std::unique_ptr<TlsContext>> NewServer();
  static Result<std::unique_ptr<TlsContext>> NewClient();
  ~TlsContext();

  TlsContext(const TlsContext&) = delete;
  TlsContext& operator=(const TlsContext&) = delete;

  bool is_server() const;
  // Client cache size (sessions held); server: 0.
  size_t cached_sessions() const;

  struct Impl;
  Impl* impl() const { return impl_.get(); }

 private:
  explicit TlsContext(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

// One TLS stream over an owned TcpConnection. Handlers see plaintext only;
// `on_ready` fires once when the handshake completes (or fails — a close or
// alert before completion surfaces there, not via on_close).
class TlsConnection : public StreamConn {
 public:
  using DataHandler = StreamConn::DataHandler;
  using CloseHandler = StreamConn::CloseHandler;
  using ConnectHandler = StreamConn::ConnectHandler;
  using WatermarkHandler = StreamConn::WatermarkHandler;

  // Client side: TCP connect, then handshake (resuming a cached session for
  // `remote` when the context has one). `on_ready` fires after the
  // handshake, so a caller can treat it exactly like TcpConnection's
  // connect callback — by then Send() ships application data immediately.
  static Result<std::unique_ptr<TlsConnection>> Connect(
      EventLoop& loop, TlsContext& ctx, Endpoint remote,
      ConnectHandler on_ready, DataHandler on_data, CloseHandler on_close,
      const TcpConnectOptions& options = TcpConnectOptions());

  // Server side, two-phase so the caller can key its connection table by the
  // returned pointer before any callback can fire: Accept wraps a connection
  // fresh from TcpListener; Start installs handlers and registers it.
  static Result<std::unique_ptr<TlsConnection>> Accept(
      TlsContext& ctx, std::unique_ptr<TcpConnection> conn);
  Status Start(ConnectHandler on_ready, DataHandler on_data,
               CloseHandler on_close);

  ~TlsConnection() override;

  // Plaintext write; buffered until the handshake completes.
  Status Send(std::span<const uint8_t> data) override;
  void SetWriteWatermarks(size_t high, size_t low,
                          WatermarkHandler handler) override;

  bool connected() const override;  // handshake complete
  Endpoint local() const override;
  Endpoint remote() const override;
  size_t queued_bytes() const override;

  // Handshake observability, valid once on_ready fired with Ok():
  bool session_reused() const;            // resumed (ticket/PSK) handshake
  NanoDuration handshake_duration() const;  // TCP-connect/accept → ready

 private:
  friend struct TlsCallbacks;  // OpenSSL session callback (tls.cc)
  struct Ssl;
  TlsConnection();

  void StartHandshake();
  void OnTcpData(std::span<const uint8_t> data);
  void OnTcpClose(Status reason);
  // Drives SSL_do_handshake/SSL_read and flushes produced ciphertext.
  // Returns false if this connection was destroyed by a handler.
  bool Pump();
  bool FlushCiphertext();
  void FailHandshake(Status reason);

  std::unique_ptr<Ssl> ssl_;
  std::unique_ptr<TcpConnection> tcp_;
  TlsContext* context_ = nullptr;
  Endpoint remote_;
  bool is_client_ = false;
  bool handshake_done_ = false;
  bool closed_ = false;
  bool reused_ = false;
  NanoTime start_time_ = 0;
  NanoDuration handshake_ns_ = 0;
  ConnectHandler on_ready_;
  DataHandler on_data_;
  CloseHandler on_close_;
  // Plaintext queued by Send() before the handshake finished.
  std::vector<uint8_t> pending_plaintext_;
  // Handlers may destroy this connection from inside their own invocation;
  // same stack-copy guard as TcpConnection.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace ldp::net

#endif  // LDPLAYER_NET_TLS_H
