#include "proxy/catchment.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace ldp::proxy {

namespace {

constexpr uint32_t MaskForBits(int bits) {
  return bits == 0 ? 0u : ~0u << (32 - bits);
}

Result<size_t> SiteIndex(std::string_view name,
                         const std::vector<SiteSpec>& sites) {
  for (size_t i = 0; i < sites.size(); ++i)
    if (sites[i].name == name) return i;
  return Error(ErrorCode::kNotFound,
               "unknown site '" + std::string(name) + "'");
}

}  // namespace

Result<std::vector<SiteSpec>> ParseSiteSpecs(std::string_view text) {
  std::vector<SiteSpec> sites;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t colon = item.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return Error(ErrorCode::kParseError,
                   "site spec '" + std::string(item) +
                       "' is not name:rtt_ms");
    std::string name(item.substr(0, colon));
    std::string_view rtt_text = item.substr(colon + 1);
    double rtt_ms = 0;
    auto [p, ec] = std::from_chars(rtt_text.data(),
                                   rtt_text.data() + rtt_text.size(), rtt_ms);
    if (ec != std::errc() || p != rtt_text.data() + rtt_text.size() ||
        rtt_ms < 0)
      return Error(ErrorCode::kParseError,
                   "bad rtt_ms in site spec '" + std::string(item) + "'");
    for (const auto& s : sites)
      if (s.name == name)
        return Error(ErrorCode::kAlreadyExists,
                     "duplicate site name '" + name + "'");
    sites.push_back({std::move(name), SecondsF(rtt_ms / 1000.0)});
  }
  if (sites.empty())
    return Error(ErrorCode::kInvalidArgument, "no sites in spec");
  return sites;
}

Status CatchmentMap::AddRoute(IpAddress prefix, int prefix_bits,
                                    size_t site) {
  if (prefix_bits < 0 || prefix_bits > 32)
    return Error(ErrorCode::kOutOfRange, "prefix length must be in [0,32]");
  Route route;
  route.bits = prefix_bits;
  route.mask = MaskForBits(prefix_bits);
  route.prefix = prefix.value() & route.mask;
  route.site = site;
  // Keep descending-length order so Lookup's first hit is the longest match.
  auto at = std::upper_bound(routes_.begin(), routes_.end(), route,
                             [](const Route& a, const Route& b) {
                               return a.bits > b.bits;
                             });
  routes_.insert(at, route);
  return {};
}

size_t CatchmentMap::Lookup(IpAddress client) const {
  for (const auto& route : routes_)
    if ((client.value() & route.mask) == route.prefix) return route.site;
  return default_site_;
}

Result<CatchmentMap> CatchmentMap::Parse(std::string_view text,
                                         const std::vector<SiteSpec>& sites) {
  CatchmentMap map;
  std::istringstream in{std::string(text)};
  std::string line;
  size_t lineno = 0;
  auto fail = [&](const std::string& why) {
    return Error(ErrorCode::kParseError,
                 "catchment line " + std::to_string(lineno) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank / comment-only line
    if (keyword == "route") {
      std::string cidr, site_name;
      if (!(fields >> cidr >> site_name))
        return fail("expected: route PREFIX/LEN SITE");
      size_t slash = cidr.find('/');
      if (slash == std::string::npos) return fail("missing /LEN in " + cidr);
      auto addr = IpAddress::Parse(cidr.substr(0, slash));
      if (!addr.ok()) return fail(addr.error().message());
      int bits = -1;
      std::string_view bits_text(cidr);
      bits_text.remove_prefix(slash + 1);
      auto [p, ec] = std::from_chars(
          bits_text.data(), bits_text.data() + bits_text.size(), bits);
      if (ec != std::errc() || p != bits_text.data() + bits_text.size())
        return fail("bad prefix length in " + cidr);
      auto site = SiteIndex(site_name, sites);
      if (!site.ok()) return fail(site.error().message());
      auto added = map.AddRoute(addr.value(), bits, site.value());
      if (!added.ok()) return fail(added.error().message());
    } else if (keyword == "default") {
      std::string site_name;
      if (!(fields >> site_name)) return fail("expected: default SITE");
      auto site = SiteIndex(site_name, sites);
      if (!site.ok()) return fail(site.error().message());
      map.SetDefaultSite(site.value());
    } else {
      return fail("unknown directive '" + keyword + "'");
    }
    std::string extra;
    if (fields >> extra) return fail("trailing field '" + extra + "'");
  }
  return map;
}

Result<CatchmentMap> CatchmentMap::Load(const std::string& path,
                                        const std::vector<SiteSpec>& sites) {
  std::ifstream in(path);
  if (!in)
    return Error(ErrorCode::kIoError, "cannot open catchment file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), sites);
}

}  // namespace ldp::proxy
