// Anycast catchment emulation ("Anycast Performance in Context",
// PAPERS.md): the hierarchy proxy models a meta-server replicated at
// multiple "sites". Sites are virtual — one real server backs them all —
// but each client is mapped to exactly one site by a static catchment map
// (longest-prefix match on the client source address, the stand-in for
// BGP's route selection), each site injects its own client↔site RTT on
// the reply path, and per-site `proxy.site.*` counters expose the load
// split so experiments can measure catchment skew.
#ifndef LDPLAYER_PROXY_CATCHMENT_H
#define LDPLAYER_PROXY_CATCHMENT_H

#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"

namespace ldp::proxy {

struct SiteSpec {
  std::string name;
  // One-way client→site delay injected on each UDP reply (0 = co-located).
  NanoDuration rtt = 0;
};

// Parses "lax:0,mia:25,ams:80" (name:rtt_ms pairs). Names must be unique.
Result<std::vector<SiteSpec>> ParseSiteSpecs(std::string_view text);

// Maps client source prefixes to site indexes, longest prefix wins.
// Lookups are exact-interval scans over ≤33 prefix lengths — fine for the
// handful of routes an experiment declares; swap in an LC-trie if
// catchment maps ever grow to BGP scale.
class CatchmentMap {
 public:
  // `site` indexes the SiteSpec vector the proxy was configured with.
  Status AddRoute(IpAddress prefix, int prefix_bits, size_t site);

  // Site for clients no route covers (default: site 0).
  void SetDefaultSite(size_t site) { default_site_ = site; }
  size_t default_site() const { return default_site_; }

  // Longest-prefix match; falls back to the default site.
  size_t Lookup(IpAddress client) const;

  size_t route_count() const { return routes_.size(); }

  // Parses catchment text, one directive per line:
  //   route 127.10.0.0/16 lax
  //   default ams
  // '#' starts a comment. Site names resolve against `sites`.
  static Result<CatchmentMap> Parse(std::string_view text,
                                    const std::vector<SiteSpec>& sites);
  static Result<CatchmentMap> Load(const std::string& path,
                                   const std::vector<SiteSpec>& sites);

 private:
  struct Route {
    uint32_t prefix = 0;  // host order, masked
    uint32_t mask = 0;
    int bits = 0;
    size_t site = 0;
  };
  std::vector<Route> routes_;  // sorted by descending prefix length
  size_t default_site_ = 0;
};

}  // namespace ldp::proxy

#endif  // LDPLAYER_PROXY_CATCHMENT_H
