#include "proxy/proxy.h"

namespace ldp::proxy {
namespace {

void ExportProxyCounters(stats::MetricsRegistry& metrics,
                         std::shared_ptr<ProxyStats> stats) {
  metrics.AddCounterFn("proxy.rewritten", [stats] {
    return stats->rewritten.load(std::memory_order_relaxed);
  });
  metrics.AddCounterFn("proxy.passed_through", [stats] {
    return stats->passed_through.load(std::memory_order_relaxed);
  });
}

}  // namespace

RecursiveProxy::RecursiveProxy(sim::SimNetwork& net, IpAddress recursive,
                               IpAddress meta_server)
    : net_(net), recursive_(recursive), meta_server_(meta_server) {
  net_.SetEgressHook(recursive_, [this](sim::SimPacket& packet) {
    // Port-based capture, as with the iptables mangle rule: every UDP
    // packet leaving the recursive for port 53 is a hierarchy query.
    if (packet.kind != sim::SegmentKind::kUdp || packet.dst_port != 53) {
      stats_->passed_through.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // OQDA into the source; meta server into the destination.
    packet.src = packet.dst;
    packet.dst = meta_server_;
    stats_->rewritten.fetch_add(1, std::memory_order_relaxed);
    net_.Inject(std::move(packet));
    return true;
  });
}

RecursiveProxy::~RecursiveProxy() { net_.ClearEgressHook(recursive_); }

void RecursiveProxy::RegisterMetrics(stats::MetricsRegistry& metrics) {
  ExportProxyCounters(metrics, stats_);
}

AuthoritativeProxy::AuthoritativeProxy(sim::SimNetwork& net,
                                       IpAddress meta_server,
                                       IpAddress recursive)
    : net_(net), meta_server_(meta_server), recursive_(recursive) {
  net_.SetEgressHook(meta_server_, [this](sim::SimPacket& packet) {
    if (packet.kind != sim::SegmentKind::kUdp || packet.src_port != 53) {
      stats_->passed_through.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // The server replied toward the OQDA (the rewritten query source).
    // Put that OQDA back in the source field and hand the packet to the
    // recursive, which then matches reply source == query destination.
    packet.src = packet.dst;
    packet.dst = recursive_;
    stats_->rewritten.fetch_add(1, std::memory_order_relaxed);
    net_.Inject(std::move(packet));
    return true;
  });
}

AuthoritativeProxy::~AuthoritativeProxy() {
  net_.ClearEgressHook(meta_server_);
}

void AuthoritativeProxy::RegisterMetrics(stats::MetricsRegistry& metrics) {
  ExportProxyCounters(metrics, stats_);
}

}  // namespace ldp::proxy
