// LDplayer's server proxies (paper §2.4, Figure 2).
//
// The recursive resolver walks the hierarchy by sending queries to the
// *public* addresses of nameservers (a.root-servers.net, a.gtld-servers.net,
// ...). In the testbed none of those addresses exist; a single meta-DNS-
// server answers for all of them. Two address-rewriting proxies make that
// work without the resolver noticing:
//
//   recursive proxy  (egress of the recursive, packets with dst port 53):
//       src := original query destination address (OQDA)
//       dst := meta-DNS-server
//     The OQDA lands in the source field, which is exactly what the meta
//     server's split-horizon views match on to pick the zone.
//
//   authoritative proxy  (egress of the meta server, packets with src
//   port 53):
//       src := original destination (the OQDA the server replied toward)
//       dst := recursive server
//     The recursive sees a reply arriving from the address it queried and
//     accepts it; ports pass through untouched so demultiplexing works.
//
// In the paper this capture runs over TUN devices programmed by iptables
// mangle rules; here the SimNetwork egress hook plays that role (the same
// "all packets leaving the host with port 53" predicate).
#ifndef LDPLAYER_PROXY_PROXY_H
#define LDPLAYER_PROXY_PROXY_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/ip.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace ldp::proxy {

// Relaxed atomics so a MetricsRegistry snapshot thread may poll these
// while the (single-threaded) simulation increments them. Reads in tests
// go through the implicit atomic load.
struct ProxyStats {
  std::atomic<uint64_t> rewritten{0};
  std::atomic<uint64_t> passed_through{0};
};

class RecursiveProxy {
 public:
  // Captures DNS queries leaving `recursive` and redirects them to
  // `meta_server`. Installs itself as the node's egress hook.
  RecursiveProxy(sim::SimNetwork& net, IpAddress recursive,
                 IpAddress meta_server);
  ~RecursiveProxy();
  RecursiveProxy(const RecursiveProxy&) = delete;
  RecursiveProxy& operator=(const RecursiveProxy&) = delete;

  const ProxyStats& stats() const { return *stats_; }

  // Exports the shared proxy.* counter names (proxy.rewritten,
  // proxy.passed_through) as polled metrics, so sim and real-socket
  // hierarchy proxies (relay.h) are interchangeable in dashboards. The
  // polled lambdas keep the counter cells alive past the proxy itself.
  void RegisterMetrics(stats::MetricsRegistry& metrics);

 private:
  sim::SimNetwork& net_;
  IpAddress recursive_;
  IpAddress meta_server_;
  std::shared_ptr<ProxyStats> stats_ = std::make_shared<ProxyStats>();
};

class AuthoritativeProxy {
 public:
  // Captures DNS responses leaving `meta_server` and delivers them to
  // `recursive`, restoring the expected source address.
  AuthoritativeProxy(sim::SimNetwork& net, IpAddress meta_server,
                     IpAddress recursive);
  ~AuthoritativeProxy();
  AuthoritativeProxy(const AuthoritativeProxy&) = delete;
  AuthoritativeProxy& operator=(const AuthoritativeProxy&) = delete;

  const ProxyStats& stats() const { return *stats_; }

  // Same proxy.* export as RecursiveProxy::RegisterMetrics.
  void RegisterMetrics(stats::MetricsRegistry& metrics);

 private:
  sim::SimNetwork& net_;
  IpAddress meta_server_;
  IpAddress recursive_;
  std::shared_ptr<ProxyStats> stats_ = std::make_shared<ProxyStats>();
};

}  // namespace ldp::proxy

#endif  // LDPLAYER_PROXY_PROXY_H
