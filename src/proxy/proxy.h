// LDplayer's server proxies (paper §2.4, Figure 2).
//
// The recursive resolver walks the hierarchy by sending queries to the
// *public* addresses of nameservers (a.root-servers.net, a.gtld-servers.net,
// ...). In the testbed none of those addresses exist; a single meta-DNS-
// server answers for all of them. Two address-rewriting proxies make that
// work without the resolver noticing:
//
//   recursive proxy  (egress of the recursive, packets with dst port 53):
//       src := original query destination address (OQDA)
//       dst := meta-DNS-server
//     The OQDA lands in the source field, which is exactly what the meta
//     server's split-horizon views match on to pick the zone.
//
//   authoritative proxy  (egress of the meta server, packets with src
//   port 53):
//       src := original destination (the OQDA the server replied toward)
//       dst := recursive server
//     The recursive sees a reply arriving from the address it queried and
//     accepts it; ports pass through untouched so demultiplexing works.
//
// In the paper this capture runs over TUN devices programmed by iptables
// mangle rules; here the SimNetwork egress hook plays that role (the same
// "all packets leaving the host with port 53" predicate).
#ifndef LDPLAYER_PROXY_PROXY_H
#define LDPLAYER_PROXY_PROXY_H

#include <cstdint>

#include "common/ip.h"
#include "sim/network.h"

namespace ldp::proxy {

struct ProxyStats {
  uint64_t rewritten = 0;
  uint64_t passed_through = 0;
};

class RecursiveProxy {
 public:
  // Captures DNS queries leaving `recursive` and redirects them to
  // `meta_server`. Installs itself as the node's egress hook.
  RecursiveProxy(sim::SimNetwork& net, IpAddress recursive,
                 IpAddress meta_server);
  ~RecursiveProxy();
  RecursiveProxy(const RecursiveProxy&) = delete;
  RecursiveProxy& operator=(const RecursiveProxy&) = delete;

  const ProxyStats& stats() const { return stats_; }

 private:
  sim::SimNetwork& net_;
  IpAddress recursive_;
  IpAddress meta_server_;
  ProxyStats stats_;
};

class AuthoritativeProxy {
 public:
  // Captures DNS responses leaving `meta_server` and delivers them to
  // `recursive`, restoring the expected source address.
  AuthoritativeProxy(sim::SimNetwork& net, IpAddress meta_server,
                     IpAddress recursive);
  ~AuthoritativeProxy();
  AuthoritativeProxy(const AuthoritativeProxy&) = delete;
  AuthoritativeProxy& operator=(const AuthoritativeProxy&) = delete;

  const ProxyStats& stats() const { return stats_; }

 private:
  sim::SimNetwork& net_;
  IpAddress meta_server_;
  IpAddress recursive_;
  ProxyStats stats_;
};

}  // namespace ldp::proxy

#endif  // LDPLAYER_PROXY_PROXY_H
