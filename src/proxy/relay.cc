#include "proxy/relay.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <list>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/log.h"
#include "dns/framing.h"
#include "net/datapath.h"
#include "net/event_loop.h"
#include "net/sockets.h"
#include "replay/timing.h"
#include "stats/counters.h"

namespace ldp::proxy {
namespace {

// One flow per (client endpoint, listener address). The OQDA is part of
// the key: the same client talking to two emulated nameservers holds two
// flows, each with its own relay socket bound to the right source.
struct FlowKey {
  Endpoint client;
  IpAddress oqda;
  bool operator==(const FlowKey&) const = default;
};

struct FlowKeyHash {
  size_t operator()(const FlowKey& key) const noexcept {
    uint64_t packed = (uint64_t{key.client.addr.value()} << 32) |
                      (uint64_t{key.client.port} << 16) |
                      (key.oqda.value() >> 16);
    return std::hash<uint64_t>()(packed ^ (uint64_t{key.oqda.value()} << 40));
  }
};

// Relaxed-atomic counters shared with polled-metric lambdas: held by
// shared_ptr so a registry snapshot taken after the proxy is destroyed
// still reads the final totals (same pattern as replay's
// TransportCounters).
struct ShardCounters {
  // Per-site attribution; deque because RelaxedCounter is pinned in place.
  // Sized once at Start (before any metric lambda captures the pointer),
  // immutable after.
  struct SiteCounters {
    stats::RelaxedCounter queries_in;
    stats::RelaxedCounter responses_out;
  };
  std::deque<SiteCounters> sites;

  stats::RelaxedCounter rewritten;
  stats::RelaxedCounter passed_through;
  stats::RelaxedCounter queries_in;
  stats::RelaxedCounter responses_in;
  stats::RelaxedCounter responses_out;
  stats::RelaxedCounter flows_created;
  stats::RelaxedCounter flows_evicted;
  stats::RelaxedCounter flows_expired;
  stats::RelaxedCounter evicted_drops;
  stats::RelaxedCounter port_fallbacks;
  stats::RelaxedCounter meta_send_errors;
  stats::RelaxedCounter tcp_accepted;
  stats::RelaxedCounter tcp_queries;
  stats::RelaxedCounter tcp_responses;
  stats::RelaxedCounter tcp_reconnects;
  stats::RelaxedCounter tcp_failed;
  std::atomic<int64_t> active_flows{0};
};

void RegisterRelayMetrics(stats::MetricsRegistry* metrics,
                          std::shared_ptr<ShardCounters> counters,
                          const std::vector<SiteSpec>& sites) {
  for (size_t i = 0; i < sites.size(); ++i) {
    metrics->AddCounterFn("proxy.site." + sites[i].name + ".queries",
                          [counters, i] {
                            return counters->sites[i].queries_in.Get();
                          });
    metrics->AddCounterFn("proxy.site." + sites[i].name + ".responses",
                          [counters, i] {
                            return counters->sites[i].responses_out.Get();
                          });
  }
  auto counter = [&](const char* name,
                     stats::RelaxedCounter ShardCounters::*field) {
    metrics->AddCounterFn(
        name, [counters, field] { return (counters.get()->*field).Get(); });
  };
  counter("proxy.rewritten", &ShardCounters::rewritten);
  counter("proxy.passed_through", &ShardCounters::passed_through);
  counter("proxy.queries_in", &ShardCounters::queries_in);
  counter("proxy.responses_in", &ShardCounters::responses_in);
  counter("proxy.responses_out", &ShardCounters::responses_out);
  counter("proxy.flows_created", &ShardCounters::flows_created);
  counter("proxy.flows_evicted", &ShardCounters::flows_evicted);
  counter("proxy.flows_expired", &ShardCounters::flows_expired);
  counter("proxy.evicted_drops", &ShardCounters::evicted_drops);
  counter("proxy.port_fallbacks", &ShardCounters::port_fallbacks);
  counter("proxy.meta_send_errors", &ShardCounters::meta_send_errors);
  counter("proxy.tcp_accepted", &ShardCounters::tcp_accepted);
  counter("proxy.tcp_queries", &ShardCounters::tcp_queries);
  counter("proxy.tcp_responses", &ShardCounters::tcp_responses);
  counter("proxy.tcp_reconnects", &ShardCounters::tcp_reconnects);
  counter("proxy.tcp_failed", &ShardCounters::tcp_failed);
  metrics->AddGaugeFn("proxy.flow_table", [counters] {
    return counters->active_flows.load(std::memory_order_relaxed);
  });
}

constexpr size_t kDnsHeaderBytes = 12;

NanoDuration RelayTickFor(const RelayConfig& config) {
  NanoDuration shortest =
      std::min(config.flow_idle_timeout > 0 ? config.flow_idle_timeout
                                            : Seconds(30),
               config.flow_linger > 0 ? config.flow_linger : Seconds(1));
  return std::clamp<NanoDuration>(shortest / 8, Millis(1), Millis(250));
}

}  // namespace

// One worker shard: event loop, the SO_REUSEPORT listener set, and a
// private flow table + wheel + counters. Everything except the counters is
// loop-thread-only after Start.
struct HierarchyProxy::Shard {
  struct Flow {
    uint64_t id = 0;
    FlowKey key;
    std::unique_ptr<net::UdpSocket> sock;
    bool draining = false;
    size_t site = 0;  // catchment assignment, fixed for the flow's life
    std::list<uint64_t>::iterator lru_it;
  };

  // A spliced TCP pass-through (shard 0 only). Callbacks capture the
  // splice id, never pointers: disposed splices are simply not found, and
  // dead connections die in the graveyard one loop pass later — the same
  // lifecycle discipline as the replay querier.
  struct Splice {
    IpAddress oqda;
    std::unique_ptr<net::TcpConnection> client;
    std::unique_ptr<net::TcpConnection> upstream;
    dns::StreamAssembler from_client;
    dns::StreamAssembler from_upstream;
    bool up_connected = false;
    int attempts = 0;  // reconnect budget used; reset by a reply
    uint64_t next_seq = 0;
    struct Entry {
      uint64_t seq = 0;  // arrival order, for redelivery
      Bytes frame;       // length-prefixed query, kept for redelivery
    };
    std::unordered_map<uint16_t, Entry> inflight;  // by DNS ID
    std::deque<uint16_t> backlog;  // awaiting upstream connect/reconnect
    net::TimerHandle reconnect_timer;
  };

  RelayConfig config;
  std::unique_ptr<net::EventLoop> loop;
  // Epoll: one path per emulated address. Afpacket: a single wildcard
  // ring; listener_by_addr then maps every configured address to it, so
  // the map doubles as the "is this one of ours" ingress check.
  std::vector<std::unique_ptr<net::DatagramPath>> listeners;
  std::unordered_map<IpAddress, net::DatagramPath*> listener_by_addr;
  std::vector<std::unique_ptr<net::TcpListener>> tcp_listeners;
  std::shared_ptr<ShardCounters> counters =
      std::make_shared<ShardCounters>();
  std::thread thread;

  // Flow table.
  std::unordered_map<uint64_t, Flow> flows;  // by id (draining included)
  std::unordered_map<FlowKey, uint64_t, FlowKeyHash> flows_by_key;
  std::list<uint64_t> lru;  // front = coldest active flow
  uint64_t next_flow_id = 1;
  replay::TimerWheel wheel{Millis(8), 512};
  NanoDuration tick_interval = Millis(8);
  bool tick_armed = false;
  std::vector<uint64_t> expired;

  // Reply staging, reused across batches (SocketDnsServer idiom).
  std::vector<net::DatagramPath::SendItem> reply_items;

  // TCP splices (shard 0 only).
  std::unordered_map<uint64_t, std::unique_ptr<Splice>> splices;
  uint64_t next_splice_id = 1;
  std::vector<std::unique_ptr<net::TcpConnection>> graveyard_conns;
  std::vector<std::unique_ptr<Splice>> graveyard_splices;
  bool sweep_armed = false;

  // Optional per-shard histogram instances (registry-owned).
  stats::LogHistogram* rewrite_ns = nullptr;
  stats::LogHistogram* udp_batch = nullptr;

  // --- flow table ---

  void Touch(Flow& flow) {
    lru.splice(lru.end(), lru, flow.lru_it);  // move to hottest position
    wheel.Schedule(flow.id, MonotonicNow() + config.flow_idle_timeout);
    ArmTick();
  }

  // Active -> draining: unreachable by key, excluded from the LRU, socket
  // kept open for flow_linger so late replies are counted, not invisible.
  void MoveToDraining(Flow& flow, stats::RelaxedCounter& reason) {
    flow.draining = true;
    lru.erase(flow.lru_it);
    counters->active_flows.fetch_sub(1, std::memory_order_relaxed);
    auto by_key = flows_by_key.find(flow.key);
    if (by_key != flows_by_key.end() && by_key->second == flow.id) {
      flows_by_key.erase(by_key);
    }
    reason.Add();
    wheel.Schedule(flow.id, MonotonicNow() + config.flow_linger);
    ArmTick();
  }

  Flow* FlowFor(Endpoint client, IpAddress oqda) {
    FlowKey key{client, oqda};
    auto it = flows_by_key.find(key);
    if (it != flows_by_key.end()) return &flows.at(it->second);

    if (lru.size() >= config.flow_capacity && !lru.empty()) {
      MoveToDraining(flows.at(lru.front()), counters->flows_evicted);
    }

    uint64_t id = next_flow_id++;
    // Port-preserving relay bind: the meta server should see the client's
    // original source port (paper §2.4, "ports pass through untouched").
    // A collision (e.g. two clients sharing a port across evict/re-create,
    // or the service port itself) falls back to an ephemeral port.
    auto handler = [this, id](std::span<const net::UdpSocket::RecvItem>
                                  items) { OnRelayBatch(id, items); };
    auto sock = net::UdpSocket::BindBatch(
        *loop, Endpoint{oqda, client.port}, handler);
    if (!sock.ok()) {
      counters->port_fallbacks.Add();
      sock = net::UdpSocket::BindBatch(*loop, Endpoint{oqda, 0}, handler);
      if (!sock.ok()) {
        LDP_DEBUG << "relay bind failed: " << sock.error().ToString();
        return nullptr;
      }
    }

    Flow flow;
    flow.id = id;
    flow.key = key;
    flow.sock = std::move(*sock);
    if (!config.sites.empty()) {
      flow.site = config.catchment.Lookup(client.addr);
    }
    flow.lru_it = lru.insert(lru.end(), id);
    auto emplaced = flows.emplace(id, std::move(flow));
    flows_by_key.emplace(key, id);
    counters->flows_created.Add();
    counters->active_flows.fetch_add(1, std::memory_order_relaxed);
    wheel.Schedule(id, MonotonicNow() + config.flow_idle_timeout);
    ArmTick();
    return &emplaced.first->second;
  }

  void ArmTick() {
    if (tick_armed || wheel.empty()) return;
    tick_armed = true;
    loop->ScheduleAfter(tick_interval, [this]() { OnTick(); });
  }

  void OnTick() {
    tick_armed = false;
    expired.clear();
    wheel.Advance(MonotonicNow(), expired);
    for (uint64_t id : expired) {
      auto it = flows.find(id);
      if (it == flows.end()) continue;
      if (it->second.draining) {
        flows.erase(it);  // linger over: the relay socket closes here
      } else {
        MoveToDraining(it->second, counters->flows_expired);
      }
    }
    ArmTick();
  }

  // --- UDP data path ---

  // Queries arriving at an emulated nameserver address. The paper's
  // recursive-proxy rewrite (src := OQDA, dst := meta) is realized by
  // forwarding from the flow's relay socket, which is bound to the OQDA.
  // Each datagram carries the address it targeted (RecvItem::to): the
  // listener's own address on epoll paths, the parsed destination on the
  // wildcard afpacket ring.
  void OnIngressBatch(std::span<const net::DatagramPath::RecvItem> items) {
    NanoTime t0 = MonotonicNow();
    if (udp_batch != nullptr) udp_batch->Record(items.size());
    for (const auto& item : items) {
      counters->queries_in.Add();
      IpAddress oqda = item.to.addr;
      if (item.payload.size() < kDnsHeaderBytes ||
          !listener_by_addr.contains(oqda)) {
        // Not a DNS message — or (wildcard ring only) a datagram for an
        // address we don't emulate that happens to share the service
        // port. Nothing to rewrite; the iptables analogue would never
        // have captured it.
        counters->passed_through.Add();
        continue;
      }
      Flow* flow = FlowFor(item.from, oqda);
      if (flow == nullptr) {
        counters->meta_send_errors.Add();
        continue;
      }
      if (flow->site < counters->sites.size()) {
        counters->sites[flow->site].queries_in.Add();
      }
      auto status = flow->sock->SendTo(item.payload, config.meta_server);
      if (status.ok()) {
        counters->rewritten.Add();
      } else {
        counters->meta_send_errors.Add();
      }
      Touch(*flow);
    }
    if (rewrite_ns != nullptr && !items.empty()) {
      // Per-query rewrite+forward cost, averaged over the batch.
      rewrite_ns->Record(static_cast<uint64_t>(
          (MonotonicNow() - t0) / static_cast<int64_t>(items.size())));
    }
  }

  // Meta-server replies landing on one flow's relay socket. The reverse
  // rewrite (src := OQDA, dst := client) is realized by answering from
  // the listener bound to the OQDA.
  void OnRelayBatch(uint64_t flow_id,
                    std::span<const net::UdpSocket::RecvItem> items) {
    auto it = flows.find(flow_id);
    if (it == flows.end()) return;
    Flow& flow = it->second;
    if (flow.draining) {
      // The flow was evicted/expired before the meta server answered:
      // accountable loss, not silence.
      counters->evicted_drops.Add(items.size());
      return;
    }
    counters->responses_in.Add(items.size());
    auto listener = listener_by_addr.find(flow.key.oqda);
    if (listener == listener_by_addr.end()) return;  // unreachable
    // `from` makes the reply leave from the queried address: redundant on
    // an epoll path (already bound to the OQDA), load-bearing on the
    // wildcard afpacket ring, which writes it into the IPv4 header.
    Endpoint reply_source{flow.key.oqda, listener->second->local().port};
    NanoDuration rtt =
        flow.site < config.sites.size() ? config.sites[flow.site].rtt : 0;
    if (rtt > 0) {
      // Anycast RTT injection: hold the reply for the flow's site delay.
      // Payloads are copied (the recv spans die with this batch) and the
      // send runs on this same loop thread, so the shared reply_items
      // staging and counters stay single-writer.
      std::vector<Bytes> held;
      held.reserve(items.size());
      for (const auto& item : items) {
        held.emplace_back(item.payload.begin(), item.payload.end());
      }
      net::DatagramPath* path = listener->second;
      Endpoint client = flow.key.client;
      size_t site = flow.site;
      loop->ScheduleAfter(
          rtt, [this, path, client, reply_source, site,
                held = std::move(held)]() {
            reply_items.clear();
            for (const auto& payload : held) {
              reply_items.push_back(
                  net::DatagramPath::SendItem{payload, client, reply_source});
            }
            SendReplies(*path, site);
          });
    } else {
      reply_items.clear();
      for (const auto& item : items) {
        reply_items.push_back(net::DatagramPath::SendItem{
            item.payload, flow.key.client, reply_source});
      }
      SendReplies(*listener->second, flow.site);
    }
    Touch(flow);
  }

  // Flushes reply_items through `path`, attributing to `site`.
  void SendReplies(net::DatagramPath& path, size_t site) {
    size_t accepted = path.SendBatch(reply_items);
    counters->responses_out.Add(accepted);
    counters->rewritten.Add(accepted);
    if (site < counters->sites.size()) {
      counters->sites[site].responses_out.Add(accepted);
    }
  }

  // --- TCP splice (shard 0) ---

  void OnTcpAccept(std::unique_ptr<net::TcpConnection> conn) {
    counters->tcp_accepted.Add();
    uint64_t id = next_splice_id++;
    auto splice = std::make_unique<Splice>();
    splice->oqda = conn->local().addr;  // the address the client dialed
    splice->client = std::move(conn);
    Splice* raw = splice.get();
    splices.emplace(id, std::move(splice));
    auto status = net::TcpListener::AdoptHandlers(
        *raw->client,
        [this, id](std::span<const uint8_t> data) { OnClientData(id, data); },
        [this, id](Status) { DisposeSplice(id); });
    if (!status.ok()) {
      DisposeSplice(id);
      return;
    }
    StartUpstream(id, /*port_preserving=*/true);
  }

  void StartUpstream(uint64_t id, bool port_preserving) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    Splice& splice = *it->second;
    BuryUpstream(splice);
    splice.up_connected = false;
    splice.from_upstream = dns::StreamAssembler();  // new stream, new framing
    net::TcpConnectOptions options;
    // Dial from the OQDA so the meta server's view match sees it; keep the
    // client's port on the first attempt (reconnects use an ephemeral port
    // — the old 4-tuple may linger in TIME_WAIT).
    options.local = Endpoint{
        splice.oqda,
        port_preserving ? splice.client->remote().port : uint16_t{0}};
    auto conn = net::TcpConnection::Connect(
        *loop, config.meta_server,
        [this, id](Status status) { OnUpstreamConnected(id, status); },
        [this, id](std::span<const uint8_t> data) {
          OnUpstreamData(id, data);
        },
        [this, id](Status) { OnUpstreamClosed(id); }, options);
    if (!conn.ok() && port_preserving) {
      counters->port_fallbacks.Add();
      options.local.port = 0;
      conn = net::TcpConnection::Connect(
          *loop, config.meta_server,
          [this, id](Status status) { OnUpstreamConnected(id, status); },
          [this, id](std::span<const uint8_t> data) {
            OnUpstreamData(id, data);
          },
          [this, id](Status) { OnUpstreamClosed(id); }, options);
    }
    if (!conn.ok()) {
      RetryOrFail(id);
      return;
    }
    splice.upstream = std::move(*conn);
  }

  void OnClientData(uint64_t id, std::span<const uint8_t> data) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    Splice& splice = *it->second;
    if (!splice.from_client.Feed(data).ok()) {
      DisposeSplice(id);
      return;
    }
    while (auto wire = splice.from_client.NextMessage()) {
      if (wire->size() < kDnsHeaderBytes) {
        counters->passed_through.Add();
        continue;
      }
      counters->tcp_queries.Add();
      uint16_t dns_id =
          static_cast<uint16_t>(((*wire)[0] << 8) | (*wire)[1]);
      Splice::Entry entry;
      entry.seq = splice.next_seq++;
      // *wire came out of a StreamAssembler, so it fits a u16 frame.
      entry.frame = std::move(dns::FrameMessage(*wire)).value();
      // A client reusing an inflight ID orphans the old query — it could
      // never be demultiplexed anyway.
      splice.inflight[dns_id] = std::move(entry);
      if (splice.up_connected && splice.backlog.empty()) {
        auto status = splice.upstream->Send(splice.inflight[dns_id].frame);
        if (status.ok()) {
          counters->rewritten.Add();
        } else {
          splice.backlog.push_back(dns_id);  // close event will re-queue
        }
      } else {
        splice.backlog.push_back(dns_id);
      }
    }
  }

  void OnUpstreamConnected(uint64_t id, Status status) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    if (!status.ok()) {
      BuryUpstream(*it->second);
      RetryOrFail(id);
      return;
    }
    Splice& splice = *it->second;
    splice.up_connected = true;
    while (!splice.backlog.empty()) {
      uint16_t dns_id = splice.backlog.front();
      auto entry = splice.inflight.find(dns_id);
      if (entry != splice.inflight.end()) {
        if (!splice.upstream->Send(entry->second.frame).ok()) break;
        counters->rewritten.Add();
      }
      splice.backlog.pop_front();
    }
  }

  void OnUpstreamData(uint64_t id, std::span<const uint8_t> data) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    Splice& splice = *it->second;
    if (!splice.from_upstream.Feed(data).ok()) return;
    while (auto wire = splice.from_upstream.NextMessage()) {
      if (wire->size() < 2) continue;
      uint16_t dns_id =
          static_cast<uint16_t>(((*wire)[0] << 8) | (*wire)[1]);
      splice.inflight.erase(dns_id);
      splice.attempts = 0;  // a live reply refills the reconnect budget
      counters->tcp_responses.Add();
      counters->rewritten.Add();
      Bytes framed = std::move(dns::FrameMessage(*wire)).value();
      auto status = splice.client->Send(framed);
      (void)status;  // client gone => its close callback disposes us
    }
  }

  void OnUpstreamClosed(uint64_t id) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    Splice& splice = *it->second;
    splice.up_connected = false;
    BuryUpstream(splice);
    if (splice.inflight.empty()) {
      // Nothing owed: mirror the close to the client.
      DisposeSplice(id);
      return;
    }
    RetryOrFail(id);
  }

  // The stream died with queries still owed: rebuild the backlog in
  // arrival order and reconnect (budget + backoff), redelivering the
  // unanswered frames on the new stream — the rewrite survives the
  // reconnect. Budget spent => the splice failed; closing the client lets
  // the replayer's own TCP recovery take over.
  void RetryOrFail(uint64_t id) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    Splice& splice = *it->second;
    if (splice.attempts >= config.tcp_max_reconnects) {
      counters->tcp_failed.Add();
      DisposeSplice(id);
      return;
    }
    std::vector<uint16_t> ids;
    ids.reserve(splice.inflight.size());
    for (const auto& [dns_id, entry] : splice.inflight) ids.push_back(dns_id);
    std::sort(ids.begin(), ids.end(),
              [&splice](uint16_t a, uint16_t b) {
                return splice.inflight[a].seq < splice.inflight[b].seq;
              });
    splice.backlog.assign(ids.begin(), ids.end());

    NanoDuration delay = config.tcp_reconnect_backoff
                         << std::min(splice.attempts, 10);
    ++splice.attempts;
    counters->tcp_reconnects.Add();
    splice.reconnect_timer = loop->ScheduleAfter(delay, [this, id]() {
      StartUpstream(id, /*port_preserving=*/false);
    });
  }

  void DisposeSplice(uint64_t id) {
    auto it = splices.find(id);
    if (it == splices.end()) return;
    it->second->reconnect_timer.Cancel();
    BuryUpstream(*it->second);
    if (it->second->client != nullptr) {
      graveyard_conns.push_back(std::move(it->second->client));
    }
    graveyard_splices.push_back(std::move(it->second));
    splices.erase(it);
    ArmSweep();
  }

  void BuryUpstream(Splice& splice) {
    if (splice.upstream == nullptr) return;
    graveyard_conns.push_back(std::move(splice.upstream));
    ArmSweep();
  }

  void ArmSweep() {
    if (sweep_armed) return;
    sweep_armed = true;
    // Destroy on the next loop pass: the buried connection may be the one
    // whose callback is executing right now.
    loop->ScheduleAfter(0, [this]() {
      sweep_armed = false;
      graveyard_conns.clear();
      graveyard_splices.clear();
    });
  }
};

Result<std::unique_ptr<HierarchyProxy>> HierarchyProxy::Start(
    const Config& config) {
  if (config.addresses.empty()) {
    return Error(ErrorCode::kInvalidArgument, "no addresses to proxy");
  }
  if (config.meta_server.addr.IsUnspecified() ||
      config.meta_server.port == 0) {
    return Error(ErrorCode::kInvalidArgument, "meta server endpoint unset");
  }
  if (!config.sites.empty() &&
      config.catchment.default_site() >= config.sites.size()) {
    return Error(ErrorCode::kOutOfRange,
                 "catchment default site out of range");
  }
  auto proxy = std::unique_ptr<HierarchyProxy>(new HierarchyProxy());
  size_t n_shards = config.n_shards > 0 ? config.n_shards : 1;
  uint16_t port = config.port;

  for (size_t i = 0; i < n_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->config = config;
    shard->config.n_shards = n_shards;
    shard->tick_interval = RelayTickFor(config);
    shard->wheel = replay::TimerWheel(shard->tick_interval, 512);
    LDP_ASSIGN_OR_RETURN(shard->loop, net::EventLoop::Create());
    for (size_t s = 0; s < config.sites.size(); ++s) {
      shard->counters->sites.emplace_back();
    }

    if (config.metrics != nullptr) {
      RegisterRelayMetrics(config.metrics, shard->counters, config.sites);
      shard->rewrite_ns = config.metrics->AddHistogram("proxy.rewrite_ns");
      shard->udp_batch = config.metrics->AddHistogram("proxy.udp_batch");
      shard->loop->SetMetrics(
          config.metrics->AddHistogram("proxy.loop_lag_ns"),
          config.metrics->AddHistogram("proxy.epoll_batch"));
    }

    net::DatapathOptions dp_options;
    dp_options.kind = config.datapath;
    dp_options.udp.reuse_port = true;  // kernel shards datagrams across workers
    dp_options.udp.recv_buffer_bytes = config.udp_recv_buffer_bytes;
    dp_options.afpacket = config.afpacket;
    dp_options.afpacket.fanout =
        config.datapath == net::DatapathKind::kAfPacket && n_shards > 1;
    dp_options.metrics = config.metrics;

    Shard* raw = shard.get();
    auto handler = [raw](std::span<const net::DatagramPath::RecvItem> items) {
      raw->OnIngressBatch(items);
    };
    if (config.datapath == net::DatapathKind::kAfPacket) {
      // One wildcard ring carries every emulated address: the steering
      // filter matches the service port alone and OnIngressBatch reads
      // the OQDA from each frame.
      auto listener = net::DatagramPath::Open(
          *shard->loop, Endpoint{IpAddress(), port}, handler, dp_options);
      if (!listener.ok()) return listener.error();
      if (port == 0) port = (*listener)->local().port;  // resolve once
      for (IpAddress address : config.addresses) {
        shard->listener_by_addr[address] = listener->get();
      }
      shard->listeners.push_back(std::move(*listener));
    } else {
      for (IpAddress address : config.addresses) {
        auto listener = net::DatagramPath::Open(
            *shard->loop, Endpoint{address, port}, handler, dp_options);
        if (!listener.ok()) return listener.error();
        if (port == 0) port = (*listener)->local().port;  // resolve once
        shard->listener_by_addr[address] = listener->get();
        shard->listeners.push_back(std::move(*listener));
      }
    }

    // TCP splice on shard 0 only (mirrors ShardedDnsServer: the TCP lane
    // needs correctness, not multi-core throughput).
    if (i == 0 && config.splice_tcp) {
      for (IpAddress address : config.addresses) {
        Shard* raw = shard.get();
        auto listener = net::TcpListener::Listen(
            *shard->loop, Endpoint{address, port},
            [raw](std::unique_ptr<net::TcpConnection> conn) {
              raw->OnTcpAccept(std::move(conn));
            });
        if (!listener.ok()) return listener.error();
        shard->tcp_listeners.push_back(std::move(*listener));
      }
    }
    proxy->shards_.push_back(std::move(shard));
  }
  proxy->port_ = port;

  for (auto& shard : proxy->shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw]() { raw->loop->Run(); });
  }
  return proxy;
}

HierarchyProxy::~HierarchyProxy() { Stop(); }

void HierarchyProxy::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->loop->RequestStop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

RelayStats HierarchyProxy::TotalStats() const {
  RelayStats total;
  if (!shards_.empty()) {
    for (const auto& site : shards_.front()->config.sites) {
      total.sites.push_back({site.name, 0, 0});
    }
  }
  for (const auto& shard : shards_) {
    const ShardCounters& c = *shard->counters;
    total.rewritten += c.rewritten.Get();
    total.passed_through += c.passed_through.Get();
    total.queries_in += c.queries_in.Get();
    total.responses_in += c.responses_in.Get();
    total.responses_out += c.responses_out.Get();
    total.flows_created += c.flows_created.Get();
    total.flows_evicted += c.flows_evicted.Get();
    total.flows_expired += c.flows_expired.Get();
    total.evicted_drops += c.evicted_drops.Get();
    total.port_fallbacks += c.port_fallbacks.Get();
    total.meta_send_errors += c.meta_send_errors.Get();
    total.tcp_accepted += c.tcp_accepted.Get();
    total.tcp_queries += c.tcp_queries.Get();
    total.tcp_responses += c.tcp_responses.Get();
    total.tcp_reconnects += c.tcp_reconnects.Get();
    total.tcp_failed += c.tcp_failed.Get();
    total.active_flows +=
        c.active_flows.load(std::memory_order_relaxed);
    for (size_t i = 0; i < c.sites.size() && i < total.sites.size(); ++i) {
      total.sites[i].queries_in += c.sites[i].queries_in.Get();
      total.sites[i].responses_out += c.sites[i].responses_out.Get();
    }
  }
  return total;
}

}  // namespace ldp::proxy
