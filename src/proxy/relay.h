// Real-socket hierarchy-emulation proxy (paper §2.4, Figure 2, over real
// sockets instead of TUN/iptables).
//
// The paper interposes two address-rewriting proxies between the recursive
// and the meta-DNS-server. Over real sockets both rewrites collapse into
// one relay process:
//
//   recursive side:  the proxy *listens on* every emulated nameserver
//     address (loopback aliases, see LoopbackAlias in common/ip.h) at one
//     shared service port. A query arriving at address A already carries
//     its OQDA — it is the listener address itself.
//   rewrite:         the query is forwarded to the meta server from a
//     relay socket bound to (A, client-port): the meta server sees
//     src == OQDA (its split-horizon view selector) and the client's
//     original port (ports pass through untouched, paper §2.4).
//   authoritative side: the meta server's reply lands on that relay
//     socket; the proxy sends it back to the client *from* the listener
//     on A, so the client sees the reply arriving from the address it
//     queried.
//
// Flows — one per (client endpoint, OQDA) pair — live in a NAT-style
// bounded table: LRU-evicted at capacity, idle-expired on a timer wheel.
// Evicted/expired flows linger briefly in a draining state so a late meta
// reply is counted (proxy.evicted_drops) instead of silently vanishing.
//
// TCP is spliced: the proxy accepts on each emulated address, dials the
// meta server from that address, and re-frames both directions; if the
// upstream stream dies with queries still owed, the proxy reconnects (with
// budget + backoff) and redelivers the unanswered frames, carrying the
// rewrite across reconnects.
//
// Sharding mirrors ShardedDnsServer: n_shards worker threads, each with
// its own EventLoop, SO_REUSEPORT listener set, flow table, wheel, and
// metric instances (merged by name at snapshot). TCP stays on shard 0.
//
// Anycast emulation (catchment.h): when `sites` is configured, each flow
// is pinned to a site by catchment lookup on the client address, UDP
// replies are delayed by the site's RTT, and per-site proxy.site.*
// counters expose the load split. Sites are virtual — all catchments
// reach the same meta server — which is exactly the paper's meta-server
// move applied to anycast: one real server plays every replica, and the
// catchment map plays BGP. (TCP splices are not RTT-delayed; the anycast
// experiments are UDP-first, like root traffic.)
#ifndef LDPLAYER_PROXY_RELAY_H
#define LDPLAYER_PROXY_RELAY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "net/datapath.h"
#include "proxy/catchment.h"
#include "stats/metrics.h"

namespace ldp::proxy {

struct RelayConfig {
  // Emulated nameserver addresses to impersonate. Must be bindable on
  // this host — pass public testbed addresses through LoopbackAlias.
  std::vector<IpAddress> addresses;
  // Shared service port across all addresses (0 = pick an ephemeral port
  // from the first bind and reuse it for the rest).
  uint16_t port = 0;
  // Where rewritten queries go: the meta-DNS-server.
  Endpoint meta_server;
  size_t n_shards = 1;
  int udp_recv_buffer_bytes = 0;

  // Ingress transport. Epoll binds one kernel listener per emulated
  // address; afpacket opens ONE wildcard ring per shard that matches on
  // the service port alone and reads each query's OQDA out of the frame,
  // answering from that address over the same ring — the per-address
  // listener fan-out collapses into a single mmap'd channel. The meta
  // legs (per-flow relay sockets, TCP splice) stay on kernel sockets.
  net::DatapathKind datapath = net::DatapathKind::kEpoll;
  net::AfPacketOptions afpacket;  // used when datapath == kAfPacket

  // Flow table bounds (per shard).
  size_t flow_capacity = 4096;
  NanoDuration flow_idle_timeout = Seconds(30);
  // Draining window after eviction/expiry during which late replies are
  // still observed (and counted as drops) before the socket closes.
  NanoDuration flow_linger = Seconds(1);

  // TCP splice (shard 0).
  bool splice_tcp = true;
  int tcp_max_reconnects = 3;
  NanoDuration tcp_reconnect_backoff = Millis(50);

  // Anycast sites (empty = single-site, no catchment logic on the hot
  // path). Flows are assigned a site at creation by catchment lookup on
  // the client source address; each site's RTT is injected on the UDP
  // reply path.
  std::vector<SiteSpec> sites;
  CatchmentMap catchment;

  // Optional live metrics: proxy.* counters, flow-table occupancy gauge,
  // rewrite-latency and ingress-batch histograms. The registry must
  // outlive the proxy; polled-counter lambdas keep the counter cells
  // alive, so snapshots taken after Stop() still read final totals.
  stats::MetricsRegistry* metrics = nullptr;
};

// Aggregate across shards; all counters monotonic except active_flows.
struct RelayStats {
  uint64_t rewritten = 0;       // address-rewritten packets, both legs
  uint64_t passed_through = 0;  // seen but not rewritable (not DNS-sized)
  uint64_t queries_in = 0;
  uint64_t responses_in = 0;
  uint64_t responses_out = 0;
  uint64_t flows_created = 0;
  uint64_t flows_evicted = 0;   // LRU pressure
  uint64_t flows_expired = 0;   // idle timeout
  uint64_t evicted_drops = 0;   // replies that arrived for a draining flow
  uint64_t port_fallbacks = 0;  // relay bind fell back to an ephemeral port
  uint64_t meta_send_errors = 0;
  uint64_t tcp_accepted = 0;
  uint64_t tcp_queries = 0;
  uint64_t tcp_responses = 0;
  uint64_t tcp_reconnects = 0;
  uint64_t tcp_failed = 0;      // splices torn down with queries still owed
  int64_t active_flows = 0;     // current flow-table occupancy (gauge)

  // Per-site load split (empty unless RelayConfig::sites was set).
  struct SiteLoad {
    std::string name;
    uint64_t queries_in = 0;
    uint64_t responses_out = 0;
  };
  std::vector<SiteLoad> sites;
};

class HierarchyProxy {
 public:
  using Config = RelayConfig;

  // Binds every listener (resolving an ephemeral service port via the
  // first bind), then starts one worker thread per shard. Mirrors
  // ShardedDnsServer: sockets and loops are built on the calling thread;
  // after Start returns each loop is touched only by its own worker.
  static Result<std::unique_ptr<HierarchyProxy>> Start(const Config& config);

  ~HierarchyProxy();  // Stop() + join

  // Stops every worker loop (thread-safe wakeup) and joins. Idempotent.
  void Stop();

  // The resolved shared service port.
  uint16_t port() const { return port_; }
  size_t n_shards() const { return shards_.size(); }

  // Lock-free aggregate of the per-shard counter snapshots.
  RelayStats TotalStats() const;

 private:
  struct Shard;
  HierarchyProxy() = default;

  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool stopped_ = false;
};

}  // namespace ldp::proxy

#endif  // LDPLAYER_PROXY_RELAY_H
