// Sticky client→downstream assignment helpers shared by the in-process
// Postman (replay/sticky.h) and the distributed controller (distrib/).
//
// Two pieces:
//  - StickyAssign: the memoization that makes any picker "sticky" — the
//    first query from a source consults the picker, every later query
//    reuses the stored choice. Paper §2.6: all queries from one original
//    source must land on the same downstream entity.
//  - HashRing: a consistent-hash picker over explicit node ids. Unlike the
//    seeded-random picker, its choice for a source depends only on the
//    node set, so when an agent fails AT CONNECT TIME and is dropped from
//    the ring, only the dead agent's sources move — every surviving
//    agent keeps exactly the clients it would have had. (Mid-run death is
//    never rebalanced; see distrib/controller.h.)
#ifndef LDPLAYER_REPLAY_HASHRING_H
#define LDPLAYER_REPLAY_HASHRING_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ip.h"

namespace ldp::replay {

// First sight of `source` consults picker(source); afterwards the table
// answers. Extracted from StickyAssigner so ring- and random-based
// assigners share the one memoization.
template <typename Picker>
size_t StickyAssign(std::unordered_map<IpAddress, size_t>& table,
                    IpAddress source, Picker&& picker) {
  auto [it, inserted] = table.emplace(source, 0);
  if (inserted) it->second = picker(source);
  return it->second;
}

// splitmix64 finalizer: a fixed, platform-independent 64-bit mix so ring
// positions (and therefore assignments) are reproducible everywhere.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Consistent-hash ring: each node contributes `vnodes` points; a source
// maps to the owner of the first point at or after its own hash (wrapping).
// Removing a node reassigns only the sources whose owning point belonged
// to it — ~1/n of the keyspace — which is the connect-time-failure
// property hashring_test locks in.
class HashRing {
 public:
  explicit HashRing(size_t vnodes_per_node = 64, uint64_t seed = 0)
      : vnodes_(vnodes_per_node == 0 ? 1 : vnodes_per_node), seed_(seed) {}

  void AddNode(uint32_t node_id) {
    for (size_t replica = 0; replica < vnodes_; ++replica) {
      uint64_t point = Mix64(seed_ ^ (uint64_t{node_id} << 20) ^ replica);
      ring_.emplace_back(point, node_id);
    }
    std::sort(ring_.begin(), ring_.end());
  }

  void RemoveNode(uint32_t node_id) {
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [node_id](const auto& p) {
                                 return p.second == node_id;
                               }),
                ring_.end());
  }

  // Owning node for `source`; nullopt on an empty ring.
  std::optional<uint32_t> NodeFor(IpAddress source) const {
    if (ring_.empty()) return std::nullopt;
    uint64_t h = Mix64(seed_ ^ source.value());
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto& p, uint64_t value) { return p.first < value; });
    if (it == ring_.end()) it = ring_.begin();  // wrap
    return it->second;
  }

  bool empty() const { return ring_.empty(); }
  size_t point_count() const { return ring_.size(); }

 private:
  size_t vnodes_;
  uint64_t seed_;
  std::vector<std::pair<uint64_t, uint32_t>> ring_;  // sorted by point
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_HASHRING_H
