// MPSC hand-off queue between replay pipeline stages (controller →
// distributor), with an eventfd the consumer registers in its event loop so
// query hand-off wakes the loop without polling.
#ifndef LDPLAYER_REPLAY_QUEUE_H
#define LDPLAYER_REPLAY_QUEUE_H

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace ldp::replay {

template <typename T>
class NotifyQueue {
 public:
  NotifyQueue() : event_fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}
  ~NotifyQueue() {
    if (event_fd_ >= 0) ::close(event_fd_);
  }
  NotifyQueue(const NotifyQueue&) = delete;
  NotifyQueue& operator=(const NotifyQueue&) = delete;

  // Readable when items are pending or input has closed.
  int event_fd() const { return event_fd_; }

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      items_.push_back(std::move(item));
    }
    Notify();
  }

  void PushBatch(std::vector<T>&& items) {
    if (items.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& item : items) items_.push_back(std::move(item));
    }
    Notify();
  }

  // Marks end of input; consumers see `closed` from Drain once drained.
  void CloseInput() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    Notify();
  }

  struct DrainResult {
    std::vector<T> items;
    bool closed = false;  // no more input will ever arrive
  };

  DrainResult Drain() {
    // Clear the eventfd, then take everything under the lock.
    uint64_t counter;
    while (::read(event_fd_, &counter, sizeof(counter)) > 0) {
    }
    DrainResult result;
    std::lock_guard<std::mutex> lock(mutex_);
    result.items.assign(std::make_move_iterator(items_.begin()),
                        std::make_move_iterator(items_.end()));
    items_.clear();
    result.closed = closed_;
    return result;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  void Notify() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t rc = ::write(event_fd_, &one, sizeof(one));
  }

  int event_fd_;
  mutable std::mutex mutex_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_QUEUE_H
