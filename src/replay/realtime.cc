#include "replay/realtime.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/log.h"
#include "dns/framing.h"
#include "net/sockets.h"
#include "replay/queue.h"
#include "replay/sticky.h"
#include "replay/timing.h"
#include "stats/timeseries.h"

namespace ldp::replay {
namespace {

struct QueryJob {
  uint64_t trace_index;
  NanoTime trace_time;  // rebased: first query = 0
  trace::QueryRecord record;
};

// One logical querier: a UDP socket plus per-source TCP connections.
class Querier {
 public:
  Querier(net::EventLoop& loop, Endpoint server, bool batch_udp,
          std::vector<SendOutcome>& sends, std::atomic<uint64_t>& replies)
      : loop_(loop),
        server_(server),
        batch_udp_(batch_udp),
        sends_(sends),
        replies_(replies) {}

  Status Init() {
    LDP_ASSIGN_OR_RETURN(
        udp_, net::UdpSocket::Bind(
                  loop_, Endpoint{IpAddress::Loopback(), 0},
                  [this](std::span<const uint8_t> payload, Endpoint) {
                    OnUdpReply(payload);
                  }));
    return Status::Ok();
  }

  void Send(const QueryJob& job, NanoTime epoch_mono) {
    epoch_mono_ = epoch_mono;  // reply timestamps share the send epoch
    dns::Message query = job.record.ToMessage();
    query.id = next_id_++;

    SendOutcome& outcome = sends_[job.trace_index];
    outcome.trace_index = job.trace_index;
    outcome.trace_time = job.trace_time;
    outcome.sent = MonotonicNow() - epoch_mono;

    if (job.record.protocol == trace::Protocol::kUdp) {
      udp_inflight_[query.id] = job.trace_index;
      if (batch_udp_) {
        pending_udp_.push_back(query.Encode());
        if (pending_udp_.size() >= net::UdpSocket::kBatchSize) Flush();
        return;
      }
      auto status = udp_->SendTo(query.Encode(), server_);
      if (!status.ok()) {
        LDP_DEBUG << "UDP send failed: " << status.error().ToString();
      }
      return;
    }
    SendTcp(job, query, epoch_mono);
  }

  // Pushes all pending UDP queries to the kernel with one sendmmsg. The
  // distributor calls this at every scheduling point (end of a queue
  // drain, each timer dispatch), so batching never delays a scheduled
  // send past its loop iteration.
  void Flush() {
    if (pending_udp_.empty()) return;
    pending_items_.clear();
    for (const Bytes& wire : pending_udp_) {
      pending_items_.push_back(net::UdpSendItem{wire, server_});
    }
    size_t sent = udp_->SendBatch(pending_items_);
    if (sent < pending_items_.size()) {
      LDP_DEBUG << "UDP send batch: kernel took " << sent << " of "
                << pending_items_.size();
    }
    pending_udp_.clear();
  }

 private:
  struct TcpState {
    std::unique_ptr<net::TcpConnection> conn;
    dns::StreamAssembler assembler;
    bool connected = false;
    std::vector<Bytes> backlog;  // frames awaiting connect completion
    std::unordered_map<uint16_t, uint64_t> inflight;
  };

  void OnUdpReply(std::span<const uint8_t> payload) {
    if (payload.size() < 2) return;
    uint16_t id = static_cast<uint16_t>((payload[0] << 8) | payload[1]);
    auto it = udp_inflight_.find(id);
    if (it == udp_inflight_.end()) return;
    RecordReply(it->second);
    udp_inflight_.erase(it);
  }

  void RecordReply(uint64_t trace_index) {
    SendOutcome& outcome = sends_[trace_index];
    if (outcome.replied == 0) {
      outcome.replied = MonotonicNow() - epoch_mono_;
      replies_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void SendTcp(const QueryJob& job, const dns::Message& query,
               NanoTime /*epoch_mono: already latched in Send*/) {
    IpAddress source = job.record.src;
    auto it = tcp_.find(source);
    if (it == tcp_.end()) {
      it = tcp_.emplace(source, std::make_unique<TcpState>()).first;
      TcpState* state = it->second.get();
      auto conn = net::TcpConnection::Connect(
          loop_, server_,
          [this, source, state](Status status) {
            if (!status.ok()) {
              tcp_.erase(source);
              return;
            }
            state->connected = true;
            for (auto& frame : state->backlog) {
              auto send_ok = state->conn->Send(frame);
              (void)send_ok;
            }
            state->backlog.clear();
          },
          [this, state](std::span<const uint8_t> data) {
            OnTcpData(*state, data);
          },
          [this, source]() { tcp_.erase(source); });
      if (!conn.ok()) {
        tcp_.erase(source);
        return;
      }
      state->conn = std::move(*conn);
    }
    TcpState& state = *it->second;
    state.inflight[query.id] = job.trace_index;
    Bytes frame = dns::FrameMessage(query.Encode());
    if (state.connected) {
      auto status = state.conn->Send(frame);
      (void)status;
    } else {
      state.backlog.push_back(std::move(frame));
    }
  }

  void OnTcpData(TcpState& state, std::span<const uint8_t> data) {
    if (!state.assembler.Feed(data).ok()) return;
    while (auto wire = state.assembler.NextMessage()) {
      if (wire->size() < 2) continue;
      uint16_t id = static_cast<uint16_t>(((*wire)[0] << 8) | (*wire)[1]);
      auto it = state.inflight.find(id);
      if (it == state.inflight.end()) continue;
      RecordReply(it->second);
      state.inflight.erase(it);
    }
  }

  net::EventLoop& loop_;
  Endpoint server_;
  bool batch_udp_;
  std::vector<SendOutcome>& sends_;
  std::atomic<uint64_t>& replies_;
  std::unique_ptr<net::UdpSocket> udp_;
  std::vector<Bytes> pending_udp_;  // encoded, awaiting the batch flush
  std::vector<net::UdpSendItem> pending_items_;
  std::unordered_map<uint16_t, uint64_t> udp_inflight_;
  std::unordered_map<IpAddress, std::unique_ptr<TcpState>> tcp_;
  uint16_t next_id_ = 1;
  NanoTime epoch_mono_ = 0;
};

// A distributor thread: event loop + sticky querier assignment + the
// ΔT scheduler.
class Distributor {
 public:
  Distributor(const RealtimeConfig& config, NanoTime trace_epoch_rebased,
              NanoTime epoch_mono, std::vector<SendOutcome>& sends,
              std::atomic<uint64_t>& sent, std::atomic<uint64_t>& replies,
              uint64_t seed)
      : config_(config),
        epoch_mono_(epoch_mono),
        sends_(sends),
        sent_(sent),
        replies_(replies),
        assigner_(config.queriers_per_distributor, seed) {
    scheduler_.Synchronize(trace_epoch_rebased, epoch_mono);
  }

  NotifyQueue<QueryJob>& queue() { return queue_; }

  void Start() {
    thread_ = std::thread([this]() { ThreadMain(); });
  }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  Status status() const { return status_; }

 private:
  void ThreadMain() {
    auto loop = net::EventLoop::Create();
    if (!loop.ok()) {
      status_ = loop.error();
      return;
    }
    loop_ = std::move(*loop);

    for (size_t i = 0; i < config_.queriers_per_distributor; ++i) {
      queriers_.push_back(std::make_unique<Querier>(
          *loop_, config_.server, config_.batch_udp, sends_, replies_));
      auto status = queriers_.back()->Init();
      if (!status.ok()) {
        status_ = status;
        return;
      }
    }

    auto status = loop_->Add(queue_.event_fd(), true, false,
                             [this](net::IoEvents) { OnQueue(); });
    if (!status.ok()) {
      status_ = status;
      return;
    }
    loop_->Run();
  }

  void OnQueue() {
    auto drained = queue_.Drain();
    for (auto& job : drained.items) {
      ++outstanding_;
      size_t querier = assigner_.Assign(job.record.src);
      if (config_.fast_mode) {
        Dispatch(querier, std::move(job));
        continue;
      }
      NanoDuration delay = scheduler_.DelayFor(
          job.trace_time, MonotonicNow());
      if (delay <= 0) {
        Dispatch(querier, std::move(job));
      } else {
        loop_->ScheduleAfter(delay,
                             [this, querier, job = std::move(job)]() {
                               Dispatch(querier, job);
                               queriers_[querier]->Flush();
                             });
      }
    }
    // One sendmmsg per querier covers everything dispatched this drain.
    for (auto& querier : queriers_) querier->Flush();
    if (drained.closed) input_closed_ = true;
    MaybeFinish();
  }

  void Dispatch(size_t querier, const QueryJob& job) {
    queriers_[querier]->Send(job, epoch_mono_);
    sent_.fetch_add(1, std::memory_order_relaxed);
    --outstanding_;
    MaybeFinish();
  }

  void MaybeFinish() {
    if (!input_closed_ || outstanding_ != 0 || stopping_) return;
    stopping_ = true;
    loop_->ScheduleAfter(config_.drain_grace, [this]() { loop_->Stop(); });
  }

  RealtimeConfig config_;
  NanoTime epoch_mono_;
  std::vector<SendOutcome>& sends_;
  std::atomic<uint64_t>& sent_;
  std::atomic<uint64_t>& replies_;
  StickyAssigner assigner_;
  ReplayScheduler scheduler_;
  NotifyQueue<QueryJob> queue_;
  std::unique_ptr<net::EventLoop> loop_;
  std::vector<std::unique_ptr<Querier>> queriers_;
  std::thread thread_;
  Status status_;
  size_t outstanding_ = 0;
  bool input_closed_ = false;
  bool stopping_ = false;
};

}  // namespace

std::vector<double> RealtimeReport::TimingErrorsMs(size_t skip_first) const {
  std::vector<double> errors;
  // Baseline: the first *sent* query anchors both clocks.
  const SendOutcome* first = nullptr;
  for (const auto& send : sends) {
    if (send.sent != 0 || send.trace_time == 0) {
      first = &send;
      break;
    }
  }
  if (first == nullptr) return errors;
  for (size_t i = 0; i < sends.size(); ++i) {
    if (i < skip_first) continue;
    const auto& send = sends[i];
    double replay_offset = ToMillis(send.sent - first->sent);
    double trace_offset = ToMillis(send.trace_time - first->trace_time);
    errors.push_back(replay_offset - trace_offset);
  }
  return errors;
}

std::vector<double> RealtimeReport::ReplayInterarrivalsS() const {
  std::vector<NanoTime> times;
  times.reserve(sends.size());
  for (const auto& send : sends) times.push_back(send.sent);
  std::sort(times.begin(), times.end());
  std::vector<double> gaps;
  gaps.reserve(times.size());
  for (size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(ToSeconds(times[i] - times[i - 1]));
  }
  return gaps;
}

std::vector<double> RealtimeReport::RateErrors() const {
  stats::RateCounter original, replayed;
  for (const auto& send : sends) {
    original.Record(send.trace_time);
    replayed.Record(send.sent);
  }
  auto orig = original.BucketCounts();
  auto replay = replayed.BucketCounts();
  std::vector<double> errors;
  size_t n = std::min(orig.size(), replay.size());
  for (size_t i = 0; i < n; ++i) {
    if (orig[i] == 0) continue;
    errors.push_back((static_cast<double>(replay[i]) -
                      static_cast<double>(orig[i])) /
                     static_cast<double>(orig[i]));
  }
  return errors;
}

Result<RealtimeReport> RunRealtimeReplay(
    const std::vector<trace::QueryRecord>& records,
    const RealtimeConfig& config) {
  if (records.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty trace");
  }
  RealtimeReport report;
  report.sends.resize(records.size());

  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> replies{0};
  NanoTime trace_epoch = records.front().timestamp;
  NanoTime epoch_mono = MonotonicNow() + config.start_delay;

  // Postman: sticky same-source assignment of queries to distributors.
  std::vector<std::unique_ptr<Distributor>> distributors;
  StickyAssigner postman(config.n_distributors, config.seed);
  for (size_t i = 0; i < config.n_distributors; ++i) {
    distributors.push_back(std::make_unique<Distributor>(
        config, 0, epoch_mono, report.sends, sent, replies,
        config.seed + 1 + i));
    distributors.back()->Start();
  }

  // Reader: stream the trace in look-ahead windows.
  NanoTime wall_start = MonotonicNow();
  size_t cursor = 0;
  std::vector<std::vector<QueryJob>> batches(config.n_distributors);
  while (cursor < records.size()) {
    NanoTime window_end;
    if (config.fast_mode) {
      window_end = INT64_MAX;
    } else {
      window_end = (MonotonicNow() - epoch_mono) + config.lookahead;
    }
    while (cursor < records.size() &&
           records[cursor].timestamp - trace_epoch <= window_end) {
      QueryJob job;
      job.trace_index = cursor;
      job.trace_time = records[cursor].timestamp - trace_epoch;
      job.record = records[cursor];
      size_t target = postman.Assign(job.record.src);
      batches[target].push_back(std::move(job));
      ++cursor;
    }
    for (size_t i = 0; i < distributors.size(); ++i) {
      distributors[i]->queue().PushBatch(std::move(batches[i]));
      batches[i].clear();
    }
    if (cursor < records.size() && !config.fast_mode) {
      NanoTime next_due =
          epoch_mono + (records[cursor].timestamp - trace_epoch);
      NanoDuration sleep_for =
          std::min<NanoDuration>(next_due - MonotonicNow() -
                                     config.lookahead / 2,
                                 Millis(50));
      if (sleep_for > 0) {
        timespec ts{};
        ts.tv_sec = sleep_for / kNanosPerSecond;
        ts.tv_nsec = sleep_for % kNanosPerSecond;
        nanosleep(&ts, nullptr);
      }
    }
  }
  for (auto& distributor : distributors) distributor->queue().CloseInput();
  for (auto& distributor : distributors) distributor->Join();
  for (auto& distributor : distributors) {
    if (!distributor->status().ok()) return distributor->status().error();
  }

  report.queries_sent = sent.load();
  report.replies = replies.load();
  report.wall_duration = MonotonicNow() - wall_start;
  return report;
}

}  // namespace ldp::replay
