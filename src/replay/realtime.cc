#include "replay/realtime.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/log.h"
#include "dns/framing.h"
#include "net/sockets.h"
#include "net/tls.h"
#include "replay/queue.h"
#include "replay/sticky.h"
#include "replay/timing.h"
#include "stats/counters.h"
#include "stats/timeseries.h"

namespace ldp::replay {
namespace {

struct QueryJob {
  uint64_t trace_index;
  NanoTime trace_time;  // rebased: first query = 0
  trace::QueryRecord record;
  // Slot for this query's terminal outcome. Owned by the pipeline's
  // chunk storage, whose addresses are stable for the run, so queriers
  // write results through the pointer without ever sharing an index space
  // with the feeder.
  SendOutcome* outcome;
};

// Shared across all distributor threads; snapshotted into the report after
// they join. Held by shared_ptr so polled-metric lambdas registered in a
// caller-owned registry stay valid after the replay returns.
struct TransportCounters {
  stats::RelaxedCounter sent;
  stats::RelaxedCounter answered;
  stats::RelaxedCounter timed_out;
  stats::RelaxedCounter send_failed;
  stats::RelaxedCounter retransmits;
  stats::RelaxedCounter id_collisions;
  stats::RelaxedCounter tcp_reconnects;
  stats::RelaxedCounter tcp_idle_closes;
  stats::RelaxedCounter tls_handshakes;
  stats::RelaxedCounter tls_resumptions;
  stats::RelaxedCounter tls_aborts;
};

void RegisterTransportMetrics(stats::MetricsRegistry* metrics,
                              std::shared_ptr<TransportCounters> counters) {
  auto counter = [&](const char* name,
                     stats::RelaxedCounter TransportCounters::*field) {
    metrics->AddCounterFn(
        name, [counters, field] { return (counters.get()->*field).Get(); });
  };
  counter("replay.sent", &TransportCounters::sent);
  counter("replay.answered", &TransportCounters::answered);
  counter("replay.timed_out", &TransportCounters::timed_out);
  counter("replay.send_failed", &TransportCounters::send_failed);
  counter("replay.retransmits", &TransportCounters::retransmits);
  counter("replay.id_collisions", &TransportCounters::id_collisions);
  counter("replay.tcp_reconnects", &TransportCounters::tcp_reconnects);
  counter("replay.tcp_idle_closes", &TransportCounters::tcp_idle_closes);
  counter("replay.tls_handshakes", &TransportCounters::tls_handshakes);
  counter("replay.tls_resumptions", &TransportCounters::tls_resumptions);
  counter("replay.tls_aborts", &TransportCounters::tls_aborts);
}

// Per-querier live-metric instances (all nullptr when metrics are off).
// Each querier gets its own instances under shared names; the registry
// merges them at snapshot time, so recording never crosses threads.
struct QuerierMetrics {
  stats::LogHistogram* latency = nullptr;    // send→answer, ns
  stats::Gauge* inflight = nullptr;          // non-terminal tracked queries
  stats::LogHistogram* wheel_occupancy = nullptr;  // entries per tick
  stats::LogHistogram* tls_handshake = nullptr;    // client handshake, ns
};

// Timer-wheel keys: UDP entries are the bare 16-bit ID; TCP entries pack
// a per-connection index so per-connection ID spaces stay distinct. (An
// index rather than the source address: with follow_trace_dst a
// connection is keyed by source AND target, which no longer fits in the
// key's upper bits.)
constexpr uint64_t kTcpKeyBit = 1ULL << 63;
uint64_t UdpKey(uint16_t id) { return id; }

// Stream connection identity. Without follow_trace_dst every target is
// config.server, so this degenerates to the historical per-source keying.
// `tls` separates a source's DoT connection from its plain-TCP one (a
// mixed trace may carry both protocols for the same source).
struct ConnKey {
  IpAddress source;
  Endpoint target;
  bool tls = false;
  bool operator==(const ConnKey&) const = default;
};

struct ConnKeyHash {
  size_t operator()(const ConnKey& key) const noexcept {
    uint64_t packed = (uint64_t{key.source.value()} << 32) |
                      (uint64_t{key.target.addr.value()} ^
                       (uint64_t{key.target.port} << 24));
    if (key.tls) packed ^= 0x9e3779b97f4a7c15ULL;
    return std::hash<uint64_t>()(packed);
  }
};

// Expiry-check cadence (and wheel slot granularity): fine enough that a
// timeout is detected within ~1/8 of its length, floored so short test
// timeouts do not busy-spin the loop.
NanoDuration WheelTickFor(NanoDuration query_timeout) {
  if (query_timeout <= 0) return Millis(8);
  return std::clamp<NanoDuration>(query_timeout / 8, Millis(1), Millis(16));
}

// One logical querier: a UDP socket plus per-source TCP connections. Every
// accepted query is tracked by the timer wheel until it reaches a terminal
// outcome (answered / timed out / send-failed); see realtime.h.
class Querier {
 public:
  Querier(net::EventLoop& loop, const RealtimeConfig& config,
          TransportCounters& counters, QuerierMetrics metrics = {})
      : loop_(loop),
        config_(config),
        counters_(counters),
        metrics_(metrics),
        tick_interval_(WheelTickFor(config.query_timeout)),
        wheel_(WheelTickFor(config.query_timeout), 512) {}

  Status Init() {
    net::DatapathOptions options;
    options.kind = config_.datapath;
    options.afpacket = config_.afpacket;
    options.metrics = config_.metrics;
    LDP_ASSIGN_OR_RETURN(
        udp_, net::DatagramPath::Open(
                  loop_, Endpoint{config_.local_addr, 0},
                  [this](std::span<const net::DatagramPath::RecvItem> batch) {
                    for (const auto& item : batch) OnUdpReply(item.payload);
                  },
                  options));
    return Status::Ok();
  }

  // Fires whenever the querier may have just gone idle; the distributor
  // uses it to detect that every outcome is terminal and stop the loop.
  void set_on_idle(std::function<void()> on_idle) {
    on_idle_ = std::move(on_idle);
  }

  // With timeouts enabled every live query (UDP and TCP, including frames
  // waiting in a connect backlog) has a wheel entry, so an empty wheel
  // means every outcome this querier owns is terminal.
  bool idle() const { return wheel_.empty(); }

  void Send(const QueryJob& job, NanoTime epoch_mono) {
    epoch_mono_ = epoch_mono;  // reply timestamps share the send epoch
    dns::Message query = job.record.ToMessage();

    SendOutcome& outcome = *job.outcome;
    outcome.trace_index = job.trace_index;
    outcome.trace_time = job.trace_time;
    // Every accepted query raises the inflight gauge here; the matching
    // decrement happens on its terminal transition (Terminal/RecordAnswer),
    // so failure paths that go terminal immediately still balance.
    if (metrics_.inflight != nullptr) metrics_.inflight->Add(1);

    if (job.record.protocol == trace::Protocol::kUdp) {
      SendUdp(job, query);
    } else {
      SendTcp(job, query);
    }
  }

  // Pushes all pending UDP queries to the kernel with one sendmmsg. The
  // distributor calls this at every scheduling point (end of a queue
  // drain, each timer dispatch), so batching never delays a scheduled
  // send past its loop iteration.
  void Flush() {
    if (pending_udp_.empty()) return;
    pending_items_.clear();
    live_ids_.clear();
    for (uint16_t id : pending_udp_) {
      auto it = udp_inflight_.find(id);
      if (it == udp_inflight_.end()) continue;  // aged out while staged
      pending_items_.push_back(net::DatagramPath::SendItem{
          it->second.wire, it->second.target});
      live_ids_.push_back(id);
    }
    size_t accepted =
        pending_items_.empty() ? 0 : udp_->SendBatch(pending_items_);
    for (size_t i = 0; i < accepted; ++i) {
      udp_inflight_[live_ids_[i]].on_wire = true;
    }
    if (accepted == live_ids_.size()) {
      pending_udp_.clear();
      flush_retries_ = 0;
      return;
    }
    // Kernel send buffer full: re-queue the unsent tail and retry shortly
    // with backoff instead of silently dropping it.
    pending_udp_.assign(live_ids_.begin() + static_cast<ptrdiff_t>(accepted),
                        live_ids_.end());
    if (++flush_retries_ > kMaxFlushRetries) {
      LDP_DEBUG << "UDP flush: giving up on " << pending_udp_.size()
                << " staged queries after " << kMaxFlushRetries << " retries";
      for (uint16_t id : pending_udp_) {
        auto it = udp_inflight_.find(id);
        if (it == udp_inflight_.end()) continue;
        wheel_.Cancel(UdpKey(id));
        Terminal(it->second.outcome, SendOutcome::State::kSendFailed);
        udp_inflight_.erase(it);
      }
      pending_udp_.clear();
      flush_retries_ = 0;
      MaybeIdle();
      return;
    }
    ArmFlushRetry();
  }

 private:
  static constexpr int kMaxFlushRetries = 10;

  // Where a query goes: the fixed server, or (hierarchy replay) the
  // record's own destination, optionally aliased into 127/8 and repointed
  // at the proxy's shared service port.
  Endpoint TargetFor(const trace::QueryRecord& record) const {
    if (!config_.follow_trace_dst) return config_.server;
    Endpoint target{record.dst, record.dst_port};
    if (config_.loopback_alias_dst) target.addr = LoopbackAlias(target.addr);
    if (config_.dst_port_override != 0) target.port = config_.dst_port_override;
    return target;
  }

  struct UdpEntry {
    SendOutcome* outcome = nullptr;
    Bytes wire;           // encoded query, kept for retransmits
    Endpoint target;      // destination (kept so retransmits follow it)
    int tries = 0;        // retransmits performed
    bool on_wire = false;  // accepted by the kernel at least once
  };

  struct TcpState {
    ConnKey key;
    uint32_t index = 0;  // packs into timer-wheel keys; see conn_index_
    std::unique_ptr<net::StreamConn> conn;
    // Non-owning view of `conn` when key.tls, for the post-handshake
    // accessors (session_reused, handshake_duration); null otherwise.
    net::TlsConnection* tls_conn = nullptr;
    dns::StreamAssembler assembler;
    bool connected = false;
    bool paused = false;   // write-watermark backpressure
    int attempts = 0;      // reconnect budget used; reset by a reply
    NanoTime last_activity = 0;
    net::TimerHandle idle_timer;
    net::TimerHandle reconnect_timer;
    uint16_t next_id = 1;
    struct Entry {
      SendOutcome* outcome = nullptr;
      Bytes frame;  // length-prefixed wire form, kept for redelivery
      bool on_wire = false;
    };
    std::unordered_map<uint16_t, Entry> inflight;
    // IDs awaiting connect completion, watermark resume, or reconnect;
    // always a subset of inflight's keys.
    std::deque<uint16_t> backlog;
  };

  // --- terminal outcomes ---

  void Terminal(SendOutcome* slot, SendOutcome::State state) {
    SendOutcome& outcome = *slot;
    if (outcome.state != SendOutcome::State::kPending) return;
    outcome.state = state;
    if (state == SendOutcome::State::kTimedOut) {
      counters_.timed_out.Add();
    } else if (state == SendOutcome::State::kSendFailed) {
      counters_.send_failed.Add();
    }
    if (metrics_.inflight != nullptr) metrics_.inflight->Add(-1);
  }

  void RecordAnswer(SendOutcome* slot) {
    SendOutcome& outcome = *slot;
    if (outcome.state != SendOutcome::State::kPending) return;
    outcome.state = SendOutcome::State::kAnswered;
    outcome.replied = MonotonicNow() - epoch_mono_;
    counters_.answered.Add();
    if (metrics_.inflight != nullptr) metrics_.inflight->Add(-1);
    if (metrics_.latency != nullptr && outcome.replied > outcome.sent) {
      metrics_.latency->Record(
          static_cast<uint64_t>(outcome.replied - outcome.sent));
    }
  }

  void MaybeIdle() {
    if (on_idle_ && idle()) on_idle_();
  }

  // --- timeout wheel ---

  void ScheduleTimeout(uint64_t key, int tries) {
    if (config_.query_timeout <= 0) return;
    // Retry k waits query_timeout << k (exponential backoff); the shift is
    // clamped so a large retransmit budget cannot overflow int64 ns.
    NanoDuration wait = config_.query_timeout << std::min(tries, 10);
    wheel_.Schedule(key, MonotonicNow() + wait);
    ArmTick();
  }

  void ArmTick() {
    if (tick_armed_) return;
    tick_armed_ = true;
    loop_.ScheduleAfter(tick_interval_, [this]() { OnTick(); });
  }

  void OnTick() {
    tick_armed_ = false;
    if (metrics_.wheel_occupancy != nullptr) {
      metrics_.wheel_occupancy->Record(wheel_.size());
    }
    expired_.clear();
    wheel_.Advance(MonotonicNow(), expired_);
    for (uint64_t key : expired_) {
      if (key & kTcpKeyBit) {
        ExpireTcp(key);
      } else {
        ExpireUdp(static_cast<uint16_t>(key));
      }
    }
    if (!wheel_.empty()) ArmTick();
    MaybeIdle();
  }

  void ExpireUdp(uint16_t id) {
    auto it = udp_inflight_.find(id);
    if (it == udp_inflight_.end()) return;
    UdpEntry& entry = it->second;
    if (!entry.on_wire) {
      // Never accepted by the kernel within a full timeout: send-failed,
      // not timed-out — the server never saw it.
      Terminal(entry.outcome, SendOutcome::State::kSendFailed);
      udp_inflight_.erase(it);
      return;
    }
    if (entry.tries < config_.max_retransmits) {
      ++entry.tries;
      entry.outcome->retransmits =
          static_cast<uint8_t>(std::min(entry.tries, 255));
      counters_.retransmits.Add();
      auto status = udp_->SendTo(entry.wire, entry.target);
      (void)status;  // a full buffer just leaves it to the next expiry
      ScheduleTimeout(UdpKey(id), entry.tries);
      return;
    }
    Terminal(entry.outcome, SendOutcome::State::kTimedOut);
    udp_inflight_.erase(it);
  }

  void ExpireTcp(uint64_t wheel_key) {
    uint32_t index = static_cast<uint32_t>((wheel_key >> 16) & 0xffffffff);
    uint16_t id = static_cast<uint16_t>(wheel_key & 0xffff);
    auto indexed = conn_index_.find(index);
    if (indexed == conn_index_.end()) return;
    auto it = tcp_.find(indexed->second);
    if (it == tcp_.end()) return;
    TcpState& state = *it->second;
    auto entry = state.inflight.find(id);
    if (entry == state.inflight.end()) return;
    // on_wire distinguishes "written to a stream, no answer" (timed out)
    // from "still waiting in a backlog, never delivered" (send-failed).
    Terminal(entry->second.outcome,
             entry->second.on_wire ? SendOutcome::State::kTimedOut
                                   : SendOutcome::State::kSendFailed);
    state.inflight.erase(entry);
    // The backlog may still hold the ID; WriteFrame skips missing entries.
  }

  // --- UDP ---

  void SendUdp(const QueryJob& job, dns::Message& query) {
    uint16_t id = 0;
    bool collided = false;
    if (config_.query_timeout > 0) {
      auto allocated = AllocateQueryId(next_udp_id_, udp_inflight_, &collided);
      if (!allocated) {
        // All 65536 IDs inflight: this query cannot be matched to a reply.
        counters_.id_collisions.Add();
        Terminal(job.outcome, SendOutcome::State::kSendFailed);
        MaybeIdle();
        return;
      }
      id = *allocated;
    } else {
      // Legacy mode (no timeouts): nothing ever ages out, so probing would
      // deadlock once the trace exceeds 64k unanswered queries. Keep the
      // historical wrap but evict the stale entry and count the collision
      // instead of silently clobbering it.
      id = next_udp_id_++;
      auto old = udp_inflight_.find(id);
      if (old != udp_inflight_.end()) {
        collided = true;
        udp_inflight_.erase(old);
      }
    }
    if (collided) counters_.id_collisions.Add();

    query.id = id;
    UdpEntry entry;
    entry.outcome = job.outcome;
    entry.wire = query.Encode();
    entry.target = TargetFor(job.record);
    auto emplaced = udp_inflight_.emplace(id, std::move(entry));
    job.outcome->sent = MonotonicNow() - epoch_mono_;
    ScheduleTimeout(UdpKey(id), /*tries=*/0);

    if (config_.batch_udp) {
      pending_udp_.push_back(id);
      if (pending_udp_.size() >= net::DatagramPath::kBatchSize) Flush();
      return;
    }
    auto status = udp_->SendTo(emplaced.first->second.wire,
                               emplaced.first->second.target);
    if (status.ok()) {
      emplaced.first->second.on_wire = true;
      return;
    }
    LDP_DEBUG << "UDP send failed: " << status.error().ToString();
    // Send buffer full (or transient error): stage for the batch-flush
    // retry path instead of dropping.
    pending_udp_.push_back(id);
    ArmFlushRetry();
  }

  void ArmFlushRetry() {
    if (flush_retry_armed_) return;
    flush_retry_armed_ = true;
    NanoDuration delay = std::min<NanoDuration>(
        Millis(1) << std::min(flush_retries_, 4), Millis(16));
    loop_.ScheduleAfter(delay, [this]() {
      flush_retry_armed_ = false;
      Flush();
      MaybeIdle();
    });
  }

  void OnUdpReply(std::span<const uint8_t> payload) {
    if (payload.size() < 2) return;
    uint16_t id = static_cast<uint16_t>((payload[0] << 8) | payload[1]);
    auto it = udp_inflight_.find(id);
    if (it == udp_inflight_.end()) return;  // late reply after age-out
    RecordAnswer(it->second.outcome);
    wheel_.Cancel(UdpKey(id));
    udp_inflight_.erase(it);
    MaybeIdle();
  }

  // --- TCP lifecycle ---
  //
  // Connection callbacks capture the source address, never TcpState* or
  // TcpConnection* — state is re-looked-up through tcp_, so a state
  // disposed between scheduling and firing is simply not found. Dead
  // connections and states are moved to a graveyard and destroyed on the
  // next loop iteration: destroying them in place would free the
  // TcpConnection whose callback is currently executing.

  void SendTcp(const QueryJob& job, dns::Message& query) {
    bool tls = job.record.protocol == trace::Protocol::kTls;
    if (tls && !net::TlsAvailable()) {
      if (!warned_no_tls_) {
        warned_no_tls_ = true;
        LDP_WARN << "trace carries TLS queries but this build has no "
                    "OpenSSL; counting them as send_failed";
      }
      counters_.tls_aborts.Add();
      Terminal(job.outcome, SendOutcome::State::kSendFailed);
      MaybeIdle();
      return;
    }
    Endpoint target = TargetFor(job.record);
    if (tls && config_.tls_port != 0) target.port = config_.tls_port;
    ConnKey key{job.record.src, target, tls};
    auto it = tcp_.find(key);
    if (it == tcp_.end()) {
      auto state = std::make_unique<TcpState>();
      state->key = key;
      state->index = next_conn_index_++;
      conn_index_.emplace(state->index, key);
      it = tcp_.emplace(key, std::move(state)).first;
      StartConnect(*it->second);
      // A synchronous connect failure may already have disposed the state.
      it = tcp_.find(key);
      if (it == tcp_.end()) {
        Terminal(job.outcome, SendOutcome::State::kSendFailed);
        MaybeIdle();
        return;
      }
    }
    TcpState& state = *it->second;

    bool collided = false;
    auto allocated = AllocateQueryId(state.next_id, state.inflight, &collided);
    if (collided) counters_.id_collisions.Add();
    if (!allocated) {
      Terminal(job.outcome, SendOutcome::State::kSendFailed);
      MaybeIdle();
      return;
    }
    query.id = *allocated;

    auto framed = dns::FrameMessage(query.Encode());
    if (!framed.ok()) {
      Terminal(job.outcome, SendOutcome::State::kSendFailed);
      MaybeIdle();
      return;
    }

    TcpState::Entry entry;
    entry.outcome = job.outcome;
    entry.frame = std::move(*framed);
    state.inflight.emplace(*allocated, std::move(entry));
    job.outcome->sent = MonotonicNow() - epoch_mono_;
    ScheduleTimeout(TcpKeyFor(state, *allocated), /*tries=*/0);

    if (state.connected && !state.paused && state.backlog.empty()) {
      if (!WriteFrame(state, *allocated)) state.backlog.push_back(*allocated);
    } else {
      state.backlog.push_back(*allocated);
    }
  }

  // Timer-wheel key for one inflight TCP query of this connection.
  static uint64_t TcpKeyFor(const TcpState& state, uint16_t id) {
    return kTcpKeyBit | (static_cast<uint64_t>(state.index) << 16) | id;
  }

  void StartConnect(TcpState& state) {
    ConnKey key = state.key;
    BuryConn(state);  // re-dial: the previous connection (if any) is dead
    state.connected = false;
    state.paused = false;
    state.assembler = dns::StreamAssembler();  // new stream, new framing
    auto on_ready = [this, key](Status status) {
      OnTcpConnected(key, std::move(status));
    };
    auto on_data = [this, key](std::span<const uint8_t> data) {
      auto it = tcp_.find(key);
      if (it != tcp_.end()) OnTcpData(*it->second, data);
    };
    auto on_close = [this, key](Status reason) {
      OnTcpClosed(key, std::move(reason));
    };
    if (key.tls) {
      // One client context per querier: the session cache inside it makes
      // every re-dial to an endpoint a resumption candidate, and sticky
      // same-source assignment keeps a source's reconnects on this cache.
      if (tls_ctx_ == nullptr) {
        auto ctx = net::TlsContext::NewClient();
        if (!ctx.ok()) {
          RetryOrFail(state);
          return;
        }
        tls_ctx_ = std::move(*ctx);
      }
      auto conn = net::TlsConnection::Connect(loop_, *tls_ctx_, key.target,
                                              std::move(on_ready),
                                              std::move(on_data),
                                              std::move(on_close));
      if (!conn.ok()) {
        RetryOrFail(state);
        return;
      }
      state.tls_conn = conn->get();
      state.conn = std::move(*conn);
    } else {
      auto conn = net::TcpConnection::Connect(loop_, key.target,
                                              std::move(on_ready),
                                              std::move(on_data),
                                              std::move(on_close));
      if (!conn.ok()) {
        RetryOrFail(state);
        return;
      }
      state.conn = std::move(*conn);
    }
    state.conn->SetWriteWatermarks(
        config_.tcp_write_high_watermark, config_.tcp_write_low_watermark,
        [this, key](bool paused) { OnTcpWatermark(key, paused); });
  }

  // For TLS connections this fires at handshake completion, not TCP
  // establishment — `connected` means "ready to carry queries" either way.
  void OnTcpConnected(ConnKey key, Status status) {
    auto it = tcp_.find(key);
    if (it == tcp_.end()) return;
    TcpState& state = *it->second;
    if (!status.ok()) {
      if (key.tls) counters_.tls_aborts.Add();
      BuryConn(state);
      RetryOrFail(state);
      return;
    }
    if (key.tls && state.tls_conn != nullptr) {
      counters_.tls_handshakes.Add();
      if (state.tls_conn->session_reused()) counters_.tls_resumptions.Add();
      if (metrics_.tls_handshake != nullptr) {
        metrics_.tls_handshake->Record(
            static_cast<uint64_t>(state.tls_conn->handshake_duration()));
      }
    }
    state.connected = true;
    state.last_activity = MonotonicNow();
    ArmIdleTimer(state);
    DrainBacklog(state);
  }

  void OnTcpClosed(ConnKey key, Status reason) {
    (void)reason;  // Ok = peer EOF, error = reset; both re-queue the same way
    auto it = tcp_.find(key);
    if (it == tcp_.end()) return;
    TcpState& state = *it->second;
    state.connected = false;
    BuryConn(state);
    state.idle_timer.Cancel();
    if (state.inflight.empty()) {
      // Nothing owed (e.g. the server idle-closed us): dispose; the next
      // query for this source dials fresh.
      DisposeState(key);
      return;
    }
    RetryOrFail(state);
  }

  void OnTcpWatermark(ConnKey key, bool paused) {
    auto it = tcp_.find(key);
    if (it == tcp_.end()) return;
    TcpState& state = *it->second;
    state.paused = paused;
    if (!paused) DrainBacklog(state);
  }

  // Re-queues every inflight frame and schedules a reconnect, or fails the
  // whole state when the budget is spent.
  void RetryOrFail(TcpState& state) {
    state.connected = false;
    if (state.attempts >= config_.tcp_max_reconnects) {
      FailState(state.key);
      return;
    }
    // Everything written may have died with the stream: rebuild the
    // backlog (in trace order) so the next connection redelivers it.
    std::vector<uint16_t> ids;
    ids.reserve(state.inflight.size());
    for (auto& [id, entry] : state.inflight) {
      entry.on_wire = false;
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end(), [&state](uint16_t a, uint16_t b) {
      return state.inflight[a].outcome->trace_index <
             state.inflight[b].outcome->trace_index;
    });
    state.backlog.assign(ids.begin(), ids.end());

    NanoDuration delay = config_.tcp_reconnect_backoff
                         << std::min(state.attempts, 10);
    ++state.attempts;
    counters_.tcp_reconnects.Add();
    ConnKey key = state.key;
    state.reconnect_timer = loop_.ScheduleAfter(delay, [this, key]() {
      auto it = tcp_.find(key);
      if (it != tcp_.end()) StartConnect(*it->second);
    });
  }

  void FailState(ConnKey key) {
    auto it = tcp_.find(key);
    if (it == tcp_.end()) return;
    TcpState& state = *it->second;
    for (auto& [id, entry] : state.inflight) {
      wheel_.Cancel(TcpKeyFor(state, id));
      Terminal(entry.outcome, SendOutcome::State::kSendFailed);
    }
    state.inflight.clear();
    DisposeState(key);
    MaybeIdle();
  }

  void DisposeState(ConnKey key) {
    auto it = tcp_.find(key);
    if (it == tcp_.end()) return;
    it->second->idle_timer.Cancel();
    it->second->reconnect_timer.Cancel();
    conn_index_.erase(it->second->index);
    BuryConn(*it->second);
    graveyard_states_.push_back(std::move(it->second));
    tcp_.erase(it);
    ArmSweep();
  }

  void BuryConn(TcpState& state) {
    if (state.conn == nullptr) return;
    state.tls_conn = nullptr;
    graveyard_conns_.push_back(std::move(state.conn));
    ArmSweep();
  }

  void ArmSweep() {
    if (sweep_armed_) return;
    sweep_armed_ = true;
    // Destroy on the next loop pass: the buried connection may be the one
    // whose callback is executing right now.
    loop_.ScheduleAfter(0, [this]() {
      sweep_armed_ = false;
      graveyard_conns_.clear();
      graveyard_states_.clear();
    });
  }

  bool WriteFrame(TcpState& state, uint16_t id) {
    auto it = state.inflight.find(id);
    if (it == state.inflight.end()) return true;  // aged out meanwhile
    auto status = state.conn->Send(it->second.frame);
    if (!status.ok()) return false;  // stream dying; close event re-queues
    it->second.on_wire = true;
    state.last_activity = MonotonicNow();
    return true;
  }

  void DrainBacklog(TcpState& state) {
    while (!state.backlog.empty() && state.connected && !state.paused) {
      uint16_t id = state.backlog.front();
      if (!WriteFrame(state, id)) break;
      state.backlog.pop_front();
    }
  }

  void ArmIdleTimer(TcpState& state) {
    if (config_.tcp_idle_timeout <= 0) return;
    ConnKey key = state.key;
    state.idle_timer =
        loop_.ScheduleAfter(config_.tcp_idle_timeout, [this, key]() {
          auto it = tcp_.find(key);
          if (it == tcp_.end() || !it->second->connected) return;
          TcpState& state = *it->second;
          NanoTime deadline = state.last_activity + config_.tcp_idle_timeout;
          if (MonotonicNow() >= deadline && state.inflight.empty()) {
            counters_.tcp_idle_closes.Add();
            DisposeState(key);  // active close: destruction sends FIN
            return;
          }
          ArmIdleTimer(state);  // activity since arming: re-check later
        });
  }

  void OnTcpData(TcpState& state, std::span<const uint8_t> data) {
    state.last_activity = MonotonicNow();
    if (!state.assembler.Feed(data).ok()) return;
    while (auto wire = state.assembler.NextMessage()) {
      if (wire->size() < 2) continue;
      uint16_t id = static_cast<uint16_t>(((*wire)[0] << 8) | (*wire)[1]);
      auto it = state.inflight.find(id);
      if (it == state.inflight.end()) continue;
      RecordAnswer(it->second.outcome);
      wheel_.Cancel(TcpKeyFor(state, id));
      state.inflight.erase(it);
      state.attempts = 0;  // a live reply refills the reconnect budget
    }
    MaybeIdle();
  }

  net::EventLoop& loop_;
  const RealtimeConfig config_;
  TransportCounters& counters_;
  QuerierMetrics metrics_;
  std::function<void()> on_idle_;

  std::unique_ptr<net::DatagramPath> udp_;
  std::unordered_map<uint16_t, UdpEntry> udp_inflight_;
  // Staged IDs awaiting the batch flush; wire bytes live in udp_inflight_
  // (unordered_map references are rehash-stable).
  std::vector<uint16_t> pending_udp_;
  std::vector<net::DatagramPath::SendItem> pending_items_;
  std::vector<uint16_t> live_ids_;
  int flush_retries_ = 0;
  bool flush_retry_armed_ = false;
  uint16_t next_udp_id_ = 1;

  std::unordered_map<ConnKey, std::unique_ptr<TcpState>, ConnKeyHash> tcp_;
  // index -> key, for decoding timer-wheel expiries back to a connection.
  std::unordered_map<uint32_t, ConnKey> conn_index_;
  uint32_t next_conn_index_ = 1;
  std::vector<std::unique_ptr<net::StreamConn>> graveyard_conns_;
  std::vector<std::unique_ptr<TcpState>> graveyard_states_;
  bool sweep_armed_ = false;
  // Lazily created on the first kTls query this querier dials; holds the
  // client session cache that makes reconnects resumption candidates.
  std::unique_ptr<net::TlsContext> tls_ctx_;
  bool warned_no_tls_ = false;

  NanoDuration tick_interval_;
  TimerWheel wheel_;
  std::vector<uint64_t> expired_;
  bool tick_armed_ = false;

  NanoTime epoch_mono_ = 0;
};

// A distributor thread: event loop + sticky querier assignment + the
// ΔT scheduler.
class Distributor {
 public:
  Distributor(const RealtimeConfig& config, NanoTime trace_epoch_rebased,
              NanoTime epoch_mono, TransportCounters& counters, uint64_t seed,
              stats::MetricsSnapshotter* snapshotter,
              std::atomic<size_t>* finished)
      : config_(config),
        epoch_mono_(epoch_mono),
        counters_(counters),
        snapshotter_(snapshotter),
        finished_(finished),
        assigner_(config.queriers_per_distributor, seed) {
    scheduler_.Synchronize(trace_epoch_rebased, epoch_mono);
  }

  NotifyQueue<QueryJob>& queue() { return queue_; }

  void Start() {
    thread_ = std::thread([this]() { ThreadMain(); });
  }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }
  Status status() const { return status_; }

 private:
  void ThreadMain() {
    // Every exit path (including setup errors) must count the thread as
    // finished, or the pipeline's Done() would never flip.
    struct FinishedMark {
      std::atomic<size_t>* finished;
      ~FinishedMark() { finished->fetch_add(1, std::memory_order_release); }
    } mark{finished_};
    auto loop = net::EventLoop::Create();
    if (!loop.ok()) {
      status_ = loop.error();
      return;
    }
    loop_ = std::move(*loop);
    if (config_.metrics != nullptr) {
      loop_->SetMetrics(config_.metrics->AddHistogram("replay.loop_lag_ns"),
                        config_.metrics->AddHistogram("replay.epoll_batch"));
    }

    for (size_t i = 0; i < config_.queriers_per_distributor; ++i) {
      QuerierMetrics qm;
      if (config_.metrics != nullptr) {
        qm.latency = config_.metrics->AddHistogram("replay.latency_ns");
        qm.inflight = config_.metrics->AddGauge("replay.inflight");
        qm.wheel_occupancy =
            config_.metrics->AddHistogram("replay.wheel_occupancy");
        qm.tls_handshake =
            config_.metrics->AddHistogram("replay.tls_handshake_ns");
      }
      queriers_.push_back(
          std::make_unique<Querier>(*loop_, config_, counters_, qm));
      auto status = queriers_.back()->Init();
      if (!status.ok()) {
        status_ = status;
        return;
      }
      queriers_.back()->set_on_idle([this]() { MaybeFinish(); });
    }

    auto status = loop_->Add(queue_.event_fd(), true, false,
                             [this](net::IoEvents) { OnQueue(); });
    if (!status.ok()) {
      status_ = status;
      return;
    }
    if (snapshotter_ != nullptr) ArmSnapshot();
    loop_->Run();
  }

  // Periodic JSONL rows from this loop thread; the chain dies with the
  // loop (a stopped loop never fires the re-armed timer).
  void ArmSnapshot() {
    loop_->ScheduleAfter(snapshotter_->interval(), [this]() {
      snapshotter_->WriteNow();
      ArmSnapshot();
    });
  }

  void OnQueue() {
    auto drained = queue_.Drain();
    for (auto& job : drained.items) {
      ++outstanding_;
      if (config_.fast_mode) {
        fast_backlog_.push_back(std::move(job));
        continue;
      }
      size_t querier = assigner_.Assign(job.record.src);
      NanoDuration delay = scheduler_.DelayFor(
          job.trace_time, MonotonicNow());
      if (delay <= 0) {
        Dispatch(querier, std::move(job));
      } else {
        loop_->ScheduleAfter(delay,
                             [this, querier, job = std::move(job)]() {
                               Dispatch(querier, job);
                               queriers_[querier]->Flush();
                             });
      }
    }
    if (drained.closed) input_closed_ = true;
    if (config_.fast_mode) {
      PumpFastBacklog();
      return;
    }
    // One sendmmsg per querier covers everything dispatched this drain.
    for (auto& querier : queriers_) querier->Flush();
    MaybeFinish();
  }

  // Fast mode sends in bounded chunks, yielding to the event loop between
  // them. Dispatching a large drained batch monolithically would starve
  // socket reads (and timers) for the whole burst: replies pile up unread
  // in the kernel buffer until the timer wheel has already expired their
  // inflight entries, manufacturing timeouts for queries that were in fact
  // answered.
  void PumpFastBacklog() {
    if (fast_pump_armed_) return;
    size_t n = std::min(fast_backlog_.size(), kFastChunk);
    for (size_t i = 0; i < n; ++i) {
      QueryJob job = std::move(fast_backlog_.front());
      fast_backlog_.pop_front();
      Dispatch(assigner_.Assign(job.record.src), job);
    }
    for (auto& querier : queriers_) querier->Flush();
    if (!fast_backlog_.empty()) {
      fast_pump_armed_ = true;
      loop_->ScheduleAfter(0, [this]() {
        fast_pump_armed_ = false;
        PumpFastBacklog();
      });
      return;
    }
    MaybeFinish();
  }

  void Dispatch(size_t querier, const QueryJob& job) {
    queriers_[querier]->Send(job, epoch_mono_);
    counters_.sent.Add();
    --outstanding_;
    MaybeFinish();
  }

  void MaybeFinish() {
    if (!input_closed_ || outstanding_ != 0 || stopping_) return;
    if (config_.query_timeout > 0) {
      // Timeouts make every outcome terminal: stop the instant all
      // queriers are idle — there is nothing left to wait for.
      for (auto& querier : queriers_) {
        if (!querier->idle()) return;
      }
      stopping_ = true;
      loop_->Stop();
      return;
    }
    // Legacy mode: unanswered queries never resolve, so wait a fixed
    // grace period for trailing replies.
    stopping_ = true;
    loop_->ScheduleAfter(config_.drain_grace, [this]() { loop_->Stop(); });
  }

  RealtimeConfig config_;
  NanoTime epoch_mono_;
  TransportCounters& counters_;
  stats::MetricsSnapshotter* snapshotter_;
  std::atomic<size_t>* finished_;
  StickyAssigner assigner_;
  ReplayScheduler scheduler_;
  NotifyQueue<QueryJob> queue_;
  std::unique_ptr<net::EventLoop> loop_;
  std::vector<std::unique_ptr<Querier>> queriers_;
  std::thread thread_;
  Status status_;
  size_t outstanding_ = 0;
  bool input_closed_ = false;
  bool stopping_ = false;
  static constexpr size_t kFastChunk = 256;
  std::deque<QueryJob> fast_backlog_;
  bool fast_pump_armed_ = false;
};

}  // namespace

std::vector<double> RealtimeReport::TimingErrorsMs(size_t skip_first) const {
  std::vector<double> errors;
  // Baseline: the first query that actually reached the wire anchors both
  // clocks. (Anchoring on a never-sent record would fold its bogus zero
  // send time into every error.)
  const SendOutcome* first = nullptr;
  for (const auto& send : sends) {
    if (send.sent != 0 && send.state != SendOutcome::State::kSendFailed) {
      first = &send;
      break;
    }
  }
  if (first == nullptr) return errors;
  for (size_t i = 0; i < sends.size(); ++i) {
    if (i < skip_first) continue;
    const auto& send = sends[i];
    if (send.sent == 0 || send.state == SendOutcome::State::kSendFailed) {
      continue;  // never reached the wire: no replay time to compare
    }
    double replay_offset = ToMillis(send.sent - first->sent);
    double trace_offset = ToMillis(send.trace_time - first->trace_time);
    errors.push_back(replay_offset - trace_offset);
  }
  return errors;
}

std::vector<double> RealtimeReport::ReplayInterarrivalsS() const {
  std::vector<NanoTime> times;
  times.reserve(sends.size());
  for (const auto& send : sends) {
    if (send.sent == 0 || send.state == SendOutcome::State::kSendFailed) {
      continue;  // unsent records have no arrival to measure
    }
    times.push_back(send.sent);
  }
  std::sort(times.begin(), times.end());
  std::vector<double> gaps;
  gaps.reserve(times.size());
  for (size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(ToSeconds(times[i] - times[i - 1]));
  }
  return gaps;
}

std::vector<double> RealtimeReport::RateErrors() const {
  stats::RateCounter original, replayed;
  for (const auto& send : sends) {
    original.Record(send.trace_time);
    if (send.sent == 0 || send.state == SendOutcome::State::kSendFailed) {
      continue;  // lost queries depress the replayed rate; they are not in it
    }
    replayed.Record(send.sent);
  }
  auto orig = original.BucketCounts();
  auto replay = replayed.BucketCounts();
  std::vector<double> errors;
  size_t n = std::min(orig.size(), replay.size());
  for (size_t i = 0; i < n; ++i) {
    if (orig[i] == 0) continue;
    errors.push_back((static_cast<double>(replay[i]) -
                      static_cast<double>(orig[i])) /
                     static_cast<double>(orig[i]));
  }
  return errors;
}

struct ReplayPipeline::Impl {
  explicit Impl(const RealtimeConfig& c)
      : config(c),
        postman(c.n_distributors, c.seed),
        batches(c.n_distributors) {}

  RealtimeConfig config;
  NanoTime epoch_mono = 0;
  NanoTime trace_epoch = 0;
  NanoTime wall_start = 0;
  std::shared_ptr<TransportCounters> counters;
  // Postman: sticky same-source assignment of queries to distributors.
  StickyAssigner postman;
  std::vector<std::unique_ptr<Distributor>> distributors;
  std::atomic<size_t> finished{0};
  // Outcome slots, one vector per Feed call. A deque of vectors never
  // moves an existing chunk when a new one is appended, so the outcome
  // pointers handed to distributor threads stay valid while the feeder
  // keeps feeding. Only the feeder thread touches the deque itself.
  std::deque<std::vector<SendOutcome>> chunks;
  std::vector<std::vector<QueryJob>> batches;
  uint64_t fed = 0;
  bool input_closed = false;
  bool joined = false;
};

Result<std::unique_ptr<ReplayPipeline>> ReplayPipeline::Start(
    const RealtimeConfig& config, NanoTime epoch_mono, NanoTime trace_epoch) {
  if (config.n_distributors == 0 || config.queriers_per_distributor == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "need at least one distributor and querier");
  }
  auto pipeline = std::unique_ptr<ReplayPipeline>(new ReplayPipeline());
  pipeline->impl_ = std::make_unique<Impl>(config);
  Impl& impl = *pipeline->impl_;
  impl.epoch_mono = epoch_mono;
  impl.trace_epoch = trace_epoch;
  impl.counters = std::make_shared<TransportCounters>();
  if (config.metrics != nullptr) {
    RegisterTransportMetrics(config.metrics, impl.counters);
  }
  // Distributor 0 drives the snapshotter so rows come from exactly one
  // thread.
  for (size_t i = 0; i < config.n_distributors; ++i) {
    impl.distributors.push_back(std::make_unique<Distributor>(
        config, 0, epoch_mono, *impl.counters, config.seed + 1 + i,
        i == 0 ? config.snapshotter : nullptr, &impl.finished));
    impl.distributors.back()->Start();
  }
  impl.wall_start = MonotonicNow();
  return pipeline;
}

ReplayPipeline::~ReplayPipeline() {
  if (impl_ == nullptr || impl_->joined) return;
  CloseInput();
  for (auto& distributor : impl_->distributors) distributor->Join();
}

void ReplayPipeline::Feed(std::span<const trace::QueryRecord> records) {
  if (records.empty()) return;
  Impl& impl = *impl_;
  auto& chunk = impl.chunks.emplace_back(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    QueryJob job;
    job.trace_index = impl.fed;
    job.trace_time = records[i].timestamp - impl.trace_epoch;
    job.record = records[i];
    job.outcome = &chunk[i];
    size_t target = impl.postman.Assign(job.record.src);
    impl.batches[target].push_back(std::move(job));
    ++impl.fed;
  }
  for (size_t i = 0; i < impl.distributors.size(); ++i) {
    if (impl.batches[i].empty()) continue;
    impl.distributors[i]->queue().PushBatch(std::move(impl.batches[i]));
    impl.batches[i].clear();
  }
}

void ReplayPipeline::CloseInput() {
  if (impl_->input_closed) return;
  impl_->input_closed = true;
  for (auto& distributor : impl_->distributors) {
    distributor->queue().CloseInput();
  }
}

uint64_t ReplayPipeline::fed() const { return impl_->fed; }

bool ReplayPipeline::Done() const {
  return impl_->finished.load(std::memory_order_acquire) ==
         impl_->distributors.size();
}

uint64_t ReplayPipeline::SentCount() const {
  return impl_->counters->sent.Get();
}

uint64_t ReplayPipeline::TerminalCount() const {
  const TransportCounters& c = *impl_->counters;
  return c.answered.Get() + c.timed_out.Get() + c.send_failed.Get();
}

Result<RealtimeReport> ReplayPipeline::Finish() {
  Impl& impl = *impl_;
  CloseInput();
  for (auto& distributor : impl.distributors) distributor->Join();
  impl.joined = true;
  for (auto& distributor : impl.distributors) {
    if (!distributor->status().ok()) return distributor->status().error();
  }

  RealtimeReport report;
  report.sends.reserve(impl.fed);
  for (auto& chunk : impl.chunks) {
    for (auto& outcome : chunk) report.sends.push_back(outcome);
  }
  impl.chunks.clear();
  report.queries_sent = impl.counters->sent.Get();
  report.answered = impl.counters->answered.Get();
  report.replies = report.answered;
  report.timed_out = impl.counters->timed_out.Get();
  report.send_failed = impl.counters->send_failed.Get();
  report.retransmits = impl.counters->retransmits.Get();
  report.id_collisions = impl.counters->id_collisions.Get();
  report.tcp_reconnects = impl.counters->tcp_reconnects.Get();
  report.tcp_idle_closes = impl.counters->tcp_idle_closes.Get();
  report.tls_handshakes = impl.counters->tls_handshakes.Get();
  report.tls_resumptions = impl.counters->tls_resumptions.Get();
  report.tls_aborts = impl.counters->tls_aborts.Get();
  report.wall_duration = MonotonicNow() - impl.wall_start;
  // Final row after every distributor joined: cumulative counters are
  // settled, so this row reconciles exactly with the returned report.
  if (impl.config.snapshotter != nullptr) impl.config.snapshotter->WriteNow();
  return report;
}

Result<RealtimeReport> RunRealtimeReplay(
    const std::vector<trace::QueryRecord>& records,
    const RealtimeConfig& config) {
  if (records.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty trace");
  }
  NanoTime trace_epoch = records.front().timestamp;
  NanoTime epoch_mono = MonotonicNow() + config.start_delay;
  LDP_ASSIGN_OR_RETURN(
      auto pipeline, ReplayPipeline::Start(config, epoch_mono, trace_epoch));

  // Reader: stream the trace into the pipeline in look-ahead windows.
  size_t cursor = 0;
  while (cursor < records.size()) {
    NanoTime window_end;
    if (config.fast_mode) {
      window_end = INT64_MAX;
    } else {
      window_end = (MonotonicNow() - epoch_mono) + config.lookahead;
    }
    size_t begin = cursor;
    while (cursor < records.size() &&
           records[cursor].timestamp - trace_epoch <= window_end) {
      ++cursor;
    }
    pipeline->Feed(std::span(records).subspan(begin, cursor - begin));
    if (cursor < records.size() && !config.fast_mode) {
      NanoTime next_due =
          epoch_mono + (records[cursor].timestamp - trace_epoch);
      NanoDuration sleep_for =
          std::min<NanoDuration>(next_due - MonotonicNow() -
                                     config.lookahead / 2,
                                 Millis(50));
      if (sleep_for > 0) {
        timespec ts{};
        ts.tv_sec = sleep_for / kNanosPerSecond;
        ts.tv_nsec = sleep_for % kNanosPerSecond;
        nanosleep(&ts, nullptr);
      }
    }
  }
  pipeline->CloseInput();
  return pipeline->Finish();
}

}  // namespace ldp::replay
