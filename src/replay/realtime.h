// Real-time distributed replay over real sockets (paper §2.6, §3, Fig 4):
//
//   Controller (Reader + Postman)  ──►  Distributor₁..N  ──►  Querier₁..M
//
// The controller thread streams the trace in bounded look-ahead windows
// (the Reader "pre-loads a window of queries to avoid falling behind real
// time") and the Postman hands each query to a distributor chosen by
// sticky same-source assignment. Each distributor is a thread running an
// epoll event loop hosting several logical queriers; a querier owns one
// UDP socket and per-source TCP connections, schedules each query with the
// ΔT = Δt̄ − Δt rule, sends it, and timestamps the reply.
//
// Every replayed query is tracked to a terminal outcome: answered, timed
// out (a timer wheel ages inflight entries past query_timeout, after any
// configured UDP retransmits), or send-failed (never accepted by the
// kernel, or its TCP connection exhausted its reconnect budget). The
// invariant `queries_sent == answered + timed_out + send_failed` makes loss
// an explicit output instead of a silent gap in the fidelity metrics.
//
// The paper runs distributors/queriers as processes across DETER hosts;
// here they are threads on one host (documented substitution) — the
// scheduling, queue hand-off, and kernel-level jitter the §4 fidelity
// experiments measure are all real.
#ifndef LDPLAYER_REPLAY_REALTIME_H
#define LDPLAYER_REPLAY_REALTIME_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/datapath.h"
#include "stats/metrics.h"
#include "stats/summary.h"
#include "trace/record.h"

namespace ldp::replay {

struct RealtimeConfig {
  Endpoint server;
  // --- Hierarchy replay: per-query destinations (paper §2.4) ---
  // Send each query to its record's dst/dst_port (the OQDA) instead of
  // `server`. This is how a trace drives the hierarchy proxy: the proxy
  // listens on every emulated nameserver address and the replayer
  // addresses each query exactly as the original client did.
  bool follow_trace_dst = false;
  // With follow_trace_dst: rewrite every destination port to this value
  // (0 = keep each record's dst_port). The proxy serves all addresses on
  // one shared service port, which is rarely the trace's port 53.
  uint16_t dst_port_override = 0;
  // With follow_trace_dst: map each destination through LoopbackAlias so
  // public testbed addresses land on bindable 127/8 aliases.
  bool loopback_alias_dst = false;
  size_t n_distributors = 1;
  size_t queriers_per_distributor = 3;
  // Fast mode (paper §4.3): ignore trace timing, send as fast as possible.
  bool fast_mode = false;
  // Batch UDP sends with sendmmsg: queries dispatched in the same loop
  // iteration share one syscall (flushed at every scheduling point, so
  // timed replay still sends each query at its scheduled instant). Off =
  // one sendto per query, the original single-syscall path.
  bool batch_udp = true;
  // How far ahead of real time the controller feeds queries.
  NanoDuration lookahead = Millis(500);
  // Delay before the synchronized start (lets threads spin up).
  NanoDuration start_delay = Millis(100);
  // Wait after the last send for trailing replies. Only used when
  // query_timeout == 0; with timeouts enabled the replay ends as soon as
  // every query has reached a terminal outcome.
  NanoDuration drain_grace = Millis(500);
  uint64_t seed = 99;

  // --- Robust transport: timeouts, retransmit, TCP lifecycle ---

  // Inflight queries age out after this long without a reply and count as
  // timed_out. 0 disables aging: unanswered queries stay unresolved
  // (state kPending) and the replay ends after drain_grace — the legacy
  // behavior, where loss is invisible.
  NanoDuration query_timeout = Seconds(2);
  // UDP retransmits before declaring a timeout; retry k waits
  // query_timeout << k (exponential backoff). TCP queries are never
  // retransmitted in place — redelivery happens via reconnect.
  int max_retransmits = 0;
  // Client-side TCP idle closure (the §5 experiment knob): a connection
  // with nothing inflight and no activity for this long is closed; the
  // next query for that source dials fresh. 0 = keep connections open.
  NanoDuration tcp_idle_timeout = 0;
  // DoT port for kTls records (0 = the record's own target port). A kTls
  // record dials DNS-over-TLS to its target with this port substituted —
  // the server side binds DoT on a separate listener, so replaying an
  // all-TLS trace against it needs the port redirected. Requires OpenSSL
  // in the build (probe with net::TlsAvailable()); without it every kTls
  // query ends send_failed.
  uint16_t tls_port = 0;
  // Reconnect budget when a TCP connect fails or a stream dies with
  // queries still owed. Inflight frames are re-queued onto the new
  // connection; retry k waits tcp_reconnect_backoff << k. A successful
  // reply resets the budget. Exhausted => owed queries end send_failed.
  int tcp_max_reconnects = 3;
  NanoDuration tcp_reconnect_backoff = Millis(50);
  // Write-queue backpressure: at or above high the querier stops writing
  // frames (they wait in the per-source backlog); at or below low it
  // resumes draining.
  size_t tcp_write_high_watermark = 256 * 1024;
  size_t tcp_write_low_watermark = 64 * 1024;

  // --- Datapath (querier side) ---

  // Transport under each querier's UDP leg: epoll kernel sockets
  // (default) or an AF_PACKET ring per querier (CAP_NET_RAW; see
  // net/datapath.h). TCP queries always use kernel sockets.
  net::DatapathKind datapath = net::DatapathKind::kEpoll;
  net::AfPacketOptions afpacket;  // used when datapath == kAfPacket
  // Source address queriers bind (the port is always ephemeral). Default
  // loopback; set this when replaying over a real interface — in afpacket
  // mode it must be an address of afpacket.interface.
  IpAddress local_addr = IpAddress::Loopback();

  // --- Live metrics (both optional) ---

  // Registry for live counters/histograms: transport outcome counters
  // (replay.sent/answered/timed_out/send_failed/...), per-querier
  // send→answer latency histograms, inflight-depth gauges, timer-wheel
  // occupancy, and per-distributor loop-lag / epoll-batch histograms.
  // Must outlive the replay call AND any snapshots taken after it.
  stats::MetricsRegistry* metrics = nullptr;
  // When set, distributor 0 drives it: one JSONL row per interval() from
  // its own loop thread, plus a final row after all distributors join (so
  // the last row reconciles exactly with the returned report).
  stats::MetricsSnapshotter* snapshotter = nullptr;
};

struct SendOutcome {
  // Terminal outcome of one replayed query.
  enum class State : uint8_t {
    kPending = 0,  // not yet (or, with query_timeout == 0, never) resolved
    kAnswered,
    kTimedOut,    // reached the wire, aged out without a reply
    kSendFailed,  // never reached the wire (kernel refused the datagram,
                  // ID space exhausted, or TCP reconnect budget spent)
  };

  uint64_t trace_index = 0;
  NanoTime trace_time = 0;   // relative to the trace epoch
  NanoTime sent = 0;         // monotonic, relative to the replay epoch
  NanoTime replied = 0;      // 0 = no reply observed
  uint8_t retransmits = 0;   // UDP re-sends attempted for this query
  State state = State::kPending;
  bool answered() const { return state == State::kAnswered; }
};

struct RealtimeReport {
  std::vector<SendOutcome> sends;  // trace order
  uint64_t queries_sent = 0;
  uint64_t replies = 0;  // == answered; kept for existing callers

  // Terminal-outcome accounting. With query_timeout > 0,
  //   queries_sent == answered + timed_out + send_failed
  // holds once RunRealtimeReplay returns.
  uint64_t answered = 0;
  uint64_t timed_out = 0;
  uint64_t send_failed = 0;
  uint64_t retransmits = 0;      // total UDP re-sends
  uint64_t id_collisions = 0;    // preferred 16-bit ID was still inflight
  uint64_t tcp_reconnects = 0;   // re-dials after connect failure / close
  uint64_t tcp_idle_closes = 0;  // client-side idle-timeout closures
  uint64_t tls_handshakes = 0;   // completed client TLS handshakes
  uint64_t tls_resumptions = 0;  // of which resumed a cached session
  uint64_t tls_aborts = 0;       // handshakes that failed before completing
  NanoDuration wall_duration = 0;

  // Absolute-timing error (paper Fig 6): replayed (sent − first_sent)
  // minus original (trace − first_trace), in milliseconds, per query.
  // Only queries that reached the wire participate: the anchor is the
  // first sent query, and unsent/send-failed records are skipped.
  std::vector<double> TimingErrorsMs(size_t skip_first = 0) const;
  // Inter-arrival gaps of the replayed stream, seconds (Fig 7). Unsent
  // records are excluded.
  std::vector<double> ReplayInterarrivalsS() const;
  // Per-second rate error fractions replay-vs-original (Fig 8). Unsent
  // records count toward the original series only.
  std::vector<double> RateErrors() const;
};

// Allocates a 16-bit DNS query ID that is not currently inflight, probing
// upward from `next_id` (which is advanced past the returned ID). Sets
// *collided when the preferred ID was occupied — the caller counts it —
// and returns nullopt when all 65536 IDs are inflight. Shared by the UDP
// and per-TCP-connection ID spaces; a template so each can use its own
// map type without copying the wrap/probe logic.
template <typename InflightMap>
std::optional<uint16_t> AllocateQueryId(uint16_t& next_id,
                                        const InflightMap& inflight,
                                        bool* collided) {
  *collided = false;
  if (inflight.size() >= 0x10000) return std::nullopt;
  uint16_t id = next_id;
  while (inflight.find(id) != inflight.end()) {
    *collided = true;
    ++id;  // uint16_t arithmetic wraps 65535 -> 0 by definition
  }
  next_id = static_cast<uint16_t>(id + 1);
  return id;
}

// Replays `records` (timestamps must ascend) and blocks until done.
Result<RealtimeReport> RunRealtimeReplay(
    const std::vector<trace::QueryRecord>& records,
    const RealtimeConfig& config);

// RunRealtimeReplay with the Reader inverted: the caller streams record
// batches in whenever it likes and the same Postman → Distributor →
// Querier machinery runs underneath. This is the distributed agent's
// entry point — chunks arrive over the wire instead of from a trace file
// — and RunRealtimeReplay itself is now a thin Reader loop over one.
//
// Threading: Start spawns the distributor threads. Feed/CloseInput/fed
// must be called from ONE feeder thread; Done/SentCount/TerminalCount are
// safe from that thread while distributors run. Finish joins and may be
// called once (the destructor joins too if Finish never ran).
class ReplayPipeline {
 public:
  // `epoch_mono`: the synchronized replay start on this host's monotonic
  // clock — a record with rebased time t is sent at epoch_mono + t.
  // `trace_epoch` is subtracted from every fed record's timestamp (pass
  // records.front().timestamp, or 0 when the feeder pre-rebased them).
  static Result<std::unique_ptr<ReplayPipeline>> Start(
      const RealtimeConfig& config, NanoTime epoch_mono,
      NanoTime trace_epoch);
  ~ReplayPipeline();
  ReplayPipeline(const ReplayPipeline&) = delete;
  ReplayPipeline& operator=(const ReplayPipeline&) = delete;

  // Hands a batch to the distributors (timestamps ascend across calls).
  void Feed(std::span<const trace::QueryRecord> records);
  // After the last Feed. Distributors finish once every fed query reaches
  // a terminal outcome (or, with query_timeout == 0, after drain_grace).
  void CloseInput();

  uint64_t fed() const;
  // True once every distributor thread has stopped (non-blocking).
  bool Done() const;
  uint64_t SentCount() const;
  // Queries at a terminal outcome so far. `fed() - TerminalCount()` is the
  // engine's backlog — the agent's backpressure signal for withholding
  // chunk credits.
  uint64_t TerminalCount() const;

  // Joins the distributor threads and assembles the report (trace order).
  Result<RealtimeReport> Finish();

 private:
  ReplayPipeline() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_REALTIME_H
