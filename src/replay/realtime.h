// Real-time distributed replay over real sockets (paper §2.6, §3, Fig 4):
//
//   Controller (Reader + Postman)  ──►  Distributor₁..N  ──►  Querier₁..M
//
// The controller thread streams the trace in bounded look-ahead windows
// (the Reader "pre-loads a window of queries to avoid falling behind real
// time") and the Postman hands each query to a distributor chosen by
// sticky same-source assignment. Each distributor is a thread running an
// epoll event loop hosting several logical queriers; a querier owns one
// UDP socket and per-source TCP connections, schedules each query with the
// ΔT = Δt̄ − Δt rule, sends it, and timestamps the reply.
//
// The paper runs distributors/queriers as processes across DETER hosts;
// here they are threads on one host (documented substitution) — the
// scheduling, queue hand-off, and kernel-level jitter the §4 fidelity
// experiments measure are all real.
#ifndef LDPLAYER_REPLAY_REALTIME_H
#define LDPLAYER_REPLAY_REALTIME_H

#include <atomic>
#include <thread>
#include <vector>

#include "common/result.h"
#include "stats/summary.h"
#include "trace/record.h"

namespace ldp::replay {

struct RealtimeConfig {
  Endpoint server;
  size_t n_distributors = 1;
  size_t queriers_per_distributor = 3;
  // Fast mode (paper §4.3): ignore trace timing, send as fast as possible.
  bool fast_mode = false;
  // Batch UDP sends with sendmmsg: queries dispatched in the same loop
  // iteration share one syscall (flushed at every scheduling point, so
  // timed replay still sends each query at its scheduled instant). Off =
  // one sendto per query, the original single-syscall path.
  bool batch_udp = true;
  // How far ahead of real time the controller feeds queries.
  NanoDuration lookahead = Millis(500);
  // Delay before the synchronized start (lets threads spin up).
  NanoDuration start_delay = Millis(100);
  // Wait after the last send for trailing replies.
  NanoDuration drain_grace = Millis(500);
  uint64_t seed = 99;
};

struct SendOutcome {
  uint64_t trace_index = 0;
  NanoTime trace_time = 0;   // relative to the trace epoch
  NanoTime sent = 0;         // monotonic, relative to the replay epoch
  NanoTime replied = 0;      // 0 = no reply observed
  bool answered() const { return replied != 0; }
};

struct RealtimeReport {
  std::vector<SendOutcome> sends;  // trace order
  uint64_t queries_sent = 0;
  uint64_t replies = 0;
  NanoDuration wall_duration = 0;

  // Absolute-timing error (paper Fig 6): replayed (sent − first_sent)
  // minus original (trace − first_trace), in milliseconds, per query.
  std::vector<double> TimingErrorsMs(size_t skip_first = 0) const;
  // Inter-arrival gaps of the replayed stream, seconds (Fig 7).
  std::vector<double> ReplayInterarrivalsS() const;
  // Per-second rate error fractions replay-vs-original (Fig 8).
  std::vector<double> RateErrors() const;
};

// Replays `records` (timestamps must ascend) and blocks until done.
Result<RealtimeReport> RunRealtimeReplay(
    const std::vector<trace::QueryRecord>& records,
    const RealtimeConfig& config);

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_REALTIME_H
