#include "replay/sim_engine.h"

#include "common/log.h"
#include "dns/framing.h"

namespace ldp::replay {

stats::Distribution SimReplayReport::LatencySummary(
    size_t max_source_queries) const {
  std::unordered_map<IpAddress, size_t> loads;
  if (max_source_queries > 0) loads = SourceLoads();

  stats::Summary summary;
  for (const auto& outcome : outcomes) {
    if (!outcome.answered()) continue;
    if (max_source_queries > 0 &&
        loads[outcome.source] > max_source_queries) {
      continue;
    }
    summary.Add(ToMillis(outcome.latency()));
  }
  return summary.Summarize();
}

std::unordered_map<IpAddress, size_t> SimReplayReport::SourceLoads() const {
  std::unordered_map<IpAddress, size_t> loads;
  for (const auto& outcome : outcomes) ++loads[outcome.source];
  return loads;
}

SimReplayEngine::SimReplayEngine(sim::SimNetwork& net, SimReplayConfig config,
                                 sim::NodeMeters* server_meters)
    : net_(net), config_(config), server_meters_(server_meters) {}

SimReplayEngine::~SimReplayEngine() = default;

void SimReplayEngine::Load(const std::vector<trace::QueryRecord>& records) {
  records_ = records;
  report_.outcomes.reserve(records_.size());
  for (size_t i = 0; i < records_.size(); ++i) {
    const auto& record = records_[i];
    if (config_.time_limit > 0 && record.timestamp > config_.time_limit) {
      break;
    }
    size_t outcome_index = report_.outcomes.size();
    QueryOutcome outcome;
    outcome.trace_index = i;
    outcome.source = record.src;
    outcome.protocol = record.protocol;
    report_.outcomes.push_back(outcome);

    net_.simulator().ScheduleAt(record.timestamp, [this, outcome_index, i]() {
      SendQuery(outcome_index, records_[i]);
    });
  }
  if (config_.gauge_interval > 0 && server_meters_ != nullptr &&
      !gauge_sampling_armed_) {
    gauge_sampling_armed_ = true;
    SampleGauges();
  }
}

void SimReplayEngine::SampleGauges() {
  NanoTime now = net_.simulator().Now();
  report_.memory_samples.emplace_back(now, server_meters_->MemoryBytes());
  report_.established_samples.emplace_back(
      now, server_meters_->established_connections());
  report_.time_wait_samples.emplace_back(
      now, server_meters_->time_wait_connections());
  // Keep sampling while queries remain scheduled.
  NanoTime last =
      records_.empty() ? 0 : records_.back().timestamp + Seconds(1);
  if (config_.time_limit > 0 && config_.time_limit < last) {
    last = config_.time_limit;
  }
  if (now + config_.gauge_interval <= last) {
    net_.simulator().Schedule(config_.gauge_interval,
                              [this]() { SampleGauges(); });
  }
}

SimReplayEngine::SourceState& SimReplayEngine::StateFor(IpAddress source) {
  return sources_[source];
}

void SimReplayEngine::SendQuery(size_t outcome_index,
                                const trace::QueryRecord& record) {
  SourceState& state = StateFor(record.src);
  if (record.protocol == trace::Protocol::kUdp) {
    SendUdpQuery(state, outcome_index, record);
  } else {
    SendStreamQuery(state, outcome_index, record);
  }
}

void SimReplayEngine::SendUdpQuery(SourceState& state, size_t outcome_index,
                                   const trace::QueryRecord& record) {
  // One UDP endpoint per source, mirroring "a range of different port
  // numbers" at the server while sources stay stable.
  if (state.udp_port == 0) {
    state.udp_port = static_cast<uint16_t>(
        20000 + (record.src.value() % 40000));
    IpAddress source = record.src;
    auto status = net_.ListenUdp(
        Endpoint{record.src, state.udp_port},
        [this, source](const sim::SimPacket& packet) {
          auto message = dns::Message::Decode(packet.payload);
          if (!message.ok()) return;
          RecordResponse(StateFor(source), *message, packet.payload.size());
        });
    if (!status.ok()) {
      LDP_WARN << "UDP listen failed for replay source "
               << record.src.ToString();
      return;
    }
  }

  dns::Message query = record.ToMessage();
  query.id = next_id_++;
  state.inflight[query.id] = outcome_index;

  QueryOutcome& outcome = report_.outcomes[outcome_index];
  outcome.sent = net_.simulator().Now();
  ++report_.queries_sent;
  net_.SendUdp(Endpoint{record.src, state.udp_port}, config_.server,
               query.Encode());
}

void SimReplayEngine::SendStreamQuery(SourceState& state,
                                      size_t outcome_index,
                                      const trace::QueryRecord& record) {
  QueryOutcome& outcome = report_.outcomes[outcome_index];
  outcome.sent = net_.simulator().Now();

  // Existing connection of the right protocol: reuse it.
  if (state.conn != nullptr && state.conn_protocol == record.protocol &&
      state.conn->established()) {
    dns::Message query = record.ToMessage();
    query.id = next_id_++;
    state.inflight[query.id] = outcome_index;
    ++report_.queries_sent;
    ++report_.reused_connections;
    // Replayed queries come from our own encoder, which caps at 64KiB.
    state.conn->Send(std::move(dns::FrameMessage(query.Encode())).value());
    return;
  }

  // Queue behind an in-progress connect.
  state.backlog.push_back(outcome_index);
  if (state.connecting) return;

  if (state.tcp == nullptr) {
    state.tcp = std::make_unique<sim::SimTcpStack>(net_, record.src);
  }
  state.connecting = true;
  state.conn_protocol = record.protocol;
  bool tls = record.protocol == trace::Protocol::kTls;
  outcome.fresh_connection = true;
  ++report_.fresh_connections;

  IpAddress source = record.src;
  sim::ConnCallbacks callbacks;
  callbacks.on_established = [this, source](sim::SimTcpConnection& conn) {
    SourceState& st = StateFor(source);
    st.conn = &conn;
    st.connecting = false;
    st.assembler = std::make_shared<dns::StreamAssembler>();
    // Flush queries that queued while connecting.
    std::vector<size_t> backlog = std::move(st.backlog);
    st.backlog.clear();
    for (size_t index : backlog) {
      const auto& record = records_[report_.outcomes[index].trace_index];
      dns::Message query = record.ToMessage();
      query.id = next_id_++;
      st.inflight[query.id] = index;
      ++report_.queries_sent;
      conn.Send(std::move(dns::FrameMessage(query.Encode())).value());
    }
  };
  callbacks.on_data = [this, source](sim::SimTcpConnection&,
                                     std::span<const uint8_t> data) {
    OnStreamData(source, data);
  };
  callbacks.on_close = [this, source](sim::SimTcpConnection&) {
    SourceState& st = StateFor(source);
    st.conn = nullptr;
    st.connecting = false;
    st.assembler.reset();
  };

  Endpoint target{config_.server.addr,
                  tls ? config_.tls_port : config_.server.port};
  auto conn = state.tcp->Connect(target, callbacks, tls);
  if (!conn.ok()) {
    LDP_WARN << "replay connect failed from " << source.ToString() << ": "
             << conn.error().ToString();
    state.connecting = false;
    state.backlog.clear();
  }
}

void SimReplayEngine::OnStreamData(IpAddress source,
                                   std::span<const uint8_t> data) {
  SourceState& state = StateFor(source);
  if (state.assembler == nullptr) return;
  if (!state.assembler->Feed(data).ok()) return;
  while (auto wire = state.assembler->NextMessage()) {
    auto message = dns::Message::Decode(*wire);
    if (!message.ok()) continue;
    RecordResponse(state, *message, wire->size() + 2);
  }
}

void SimReplayEngine::RecordResponse(SourceState& state,
                                     const dns::Message& message,
                                     size_t wire_size) {
  auto it = state.inflight.find(message.id);
  if (it == state.inflight.end()) return;
  QueryOutcome& outcome = report_.outcomes[it->second];
  state.inflight.erase(it);
  if (outcome.replied != 0) return;
  outcome.replied = net_.simulator().Now();
  outcome.response_bytes = static_cast<uint32_t>(wire_size);
  ++report_.responses;
}

SimReplayReport SimReplayEngine::Finish() {
  net_.simulator().Run();
  return std::move(report_);
}

}  // namespace ldp::replay
