// Trace replay inside the simulator: each original source IP becomes a
// simulated client host that sends its queries at trace time over its
// recorded (or mutated) protocol, reusing one TCP/TLS connection per source
// while the server keeps it open (paper §2.6).
//
// This lane drives the what-if experiments (§5): the server under test is a
// SimDnsServer whose meters report memory / connections / CPU, and the
// engine reports per-query latency with the client's RTT configured on the
// network.
#ifndef LDPLAYER_REPLAY_SIM_ENGINE_H
#define LDPLAYER_REPLAY_SIM_ENGINE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "dns/framing.h"
#include "sim/network.h"
#include "sim/tcp.h"
#include "stats/summary.h"
#include "trace/record.h"

namespace ldp::replay {

struct SimReplayConfig {
  Endpoint server;          // UDP + TCP
  uint16_t tls_port = 853;
  // Stop issuing queries after this trace time (0 = whole trace).
  NanoTime time_limit = 0;
  // Sample server gauges (memory/connections) every so often (0 = off).
  NanoDuration gauge_interval = Seconds(60);
};

struct QueryOutcome {
  size_t trace_index = 0;
  IpAddress source;
  trace::Protocol protocol = trace::Protocol::kUdp;
  NanoTime sent = 0;       // sim time the query left the client
  NanoTime replied = 0;    // sim time the response arrived (0 = none)
  uint32_t response_bytes = 0;
  bool fresh_connection = false;  // TCP/TLS: query opened a new connection

  bool answered() const { return replied != 0; }
  NanoDuration latency() const { return replied - sent; }
};

struct SimReplayReport {
  std::vector<QueryOutcome> outcomes;
  uint64_t queries_sent = 0;
  uint64_t responses = 0;
  uint64_t fresh_connections = 0;
  uint64_t reused_connections = 0;
  // Server gauge samples over the run.
  std::vector<std::pair<NanoTime, uint64_t>> memory_samples;
  std::vector<std::pair<NanoTime, uint64_t>> established_samples;
  std::vector<std::pair<NanoTime, uint64_t>> time_wait_samples;

  // Loss accounting: queries the simulated server never answered. The sim
  // lane has no kernel drops, so sent == responses + unanswered() exactly.
  uint64_t unanswered() const {
    return queries_sent >= responses ? queries_sent - responses : 0;
  }

  // Latency summary over answered queries, optionally restricted to
  // sources with at most `max_source_queries` queries (Fig 15b's
  // "non-busy clients"; 0 = everyone).
  stats::Distribution LatencySummary(size_t max_source_queries = 0) const;
  // Per-source query counts (Fig 15c).
  std::unordered_map<IpAddress, size_t> SourceLoads() const;
};

class SimReplayEngine {
 public:
  // `meters` (optional) is the server's meter block to sample gauges from.
  SimReplayEngine(sim::SimNetwork& net, SimReplayConfig config,
                  sim::NodeMeters* server_meters = nullptr);
  ~SimReplayEngine();

  // Schedules the whole trace onto the simulator. Call before Run().
  void Load(const std::vector<trace::QueryRecord>& records);

  // Runs the simulation to completion and returns the report.
  SimReplayReport Finish();

 private:
  struct SourceState {
    std::unique_ptr<sim::SimTcpStack> tcp;           // lazily created
    sim::SimTcpConnection* conn = nullptr;           // open server conn
    bool connecting = false;
    trace::Protocol conn_protocol = trace::Protocol::kTcp;
    std::vector<size_t> backlog;  // outcome indices awaiting the connect
    std::shared_ptr<dns::StreamAssembler> assembler;
    // In-flight queries by DNS message id (shared across protocols).
    std::unordered_map<uint16_t, size_t> inflight;
    uint16_t udp_port = 0;  // this source's UDP socket
  };

  void SendQuery(size_t outcome_index, const trace::QueryRecord& record);
  void SendUdpQuery(SourceState& state, size_t outcome_index,
                    const trace::QueryRecord& record);
  void SendStreamQuery(SourceState& state, size_t outcome_index,
                       const trace::QueryRecord& record);
  void OnStreamData(IpAddress source, std::span<const uint8_t> data);
  void RecordResponse(SourceState& state, const dns::Message& message,
                      size_t wire_size);
  SourceState& StateFor(IpAddress source);
  void SampleGauges();

  sim::SimNetwork& net_;
  SimReplayConfig config_;
  sim::NodeMeters* server_meters_;
  SimReplayReport report_;
  std::vector<trace::QueryRecord> records_;
  std::unordered_map<IpAddress, SourceState> sources_;
  uint16_t next_id_ = 1;
  bool gauge_sampling_armed_ = false;
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_SIM_ENGINE_H
