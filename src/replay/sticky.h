// Sticky same-source assignment (paper §2.6 "Emulating queries from the
// same source"): every level of the distribution tree routes all queries
// from one original source IP to the same downstream entity, so the end
// querier can reuse one socket per source — the prerequisite for TCP/TLS
// connection-reuse emulation. New sources pick a downstream uniformly at
// random (seeded; reproducible).
#ifndef LDPLAYER_REPLAY_STICKY_H
#define LDPLAYER_REPLAY_STICKY_H

#include <unordered_map>
#include <vector>

#include "common/ip.h"
#include "common/rng.h"
#include "replay/hashring.h"

namespace ldp::replay {

class StickyAssigner {
 public:
  StickyAssigner(size_t n_downstream, uint64_t seed)
      : n_(n_downstream), rng_(seed), counts_(n_downstream, 0) {}

  // Stable downstream index for `source`.
  size_t Assign(IpAddress source) {
    return StickyAssign(table_, source, [this](IpAddress) {
      size_t d = rng_.NextBelow(n_);
      ++counts_[d];
      return d;
    });
  }

  size_t downstream_count() const { return n_; }
  size_t known_sources() const { return table_.size(); }
  // Sources assigned to each downstream (balance diagnostics).
  const std::vector<size_t>& source_counts() const { return counts_; }

 private:
  size_t n_;
  ldp::Rng rng_;
  std::unordered_map<IpAddress, size_t> table_;
  std::vector<size_t> counts_;
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_STICKY_H
