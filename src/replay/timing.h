// Replay timing (paper §2.6 "Correct timing for replayed queries").
//
// A querier learns the trace epoch t̄₁ and its own real epoch t₁ from the
// controller's time-synchronization message. For query i with trace time
// t̄ᵢ, arriving at the querier at real time tᵢ, the residual delay to
// inject is
//
//     ΔTᵢ = (t̄ᵢ − t̄₁) − (tᵢ − t₁)
//
// i.e. ideal relative trace delay minus the processing/communication delay
// already accumulated. When input processing falls behind (ΔTᵢ ≤ 0) the
// query goes out immediately — the scheduler self-corrects rather than
// drifting.
#ifndef LDPLAYER_REPLAY_TIMING_H
#define LDPLAYER_REPLAY_TIMING_H

#include "common/clock.h"

namespace ldp::replay {

class ReplayScheduler {
 public:
  // Starts the replay clock: `trace_epoch` is the first query's trace time,
  // `real_epoch` the real (or simulated) time at which replay begins.
  void Synchronize(NanoTime trace_epoch, NanoTime real_epoch) {
    trace_epoch_ = trace_epoch;
    real_epoch_ = real_epoch;
    synchronized_ = true;
  }
  bool synchronized() const { return synchronized_; }

  // Residual delay before sending a query stamped `trace_time`, evaluated
  // at real time `now`. Never negative.
  NanoDuration DelayFor(NanoTime trace_time, NanoTime now) const {
    NanoDuration ideal = trace_time - trace_epoch_;
    NanoDuration elapsed = now - real_epoch_;
    NanoDuration residual = ideal - elapsed;
    return residual > 0 ? residual : 0;
  }

  // How far behind schedule the replay is at `now` for `trace_time`
  // (positive = lagging); diagnostic for the §4.2 accuracy analysis.
  NanoDuration Lag(NanoTime trace_time, NanoTime now) const {
    return (now - real_epoch_) - (trace_time - trace_epoch_);
  }

 private:
  NanoTime trace_epoch_ = 0;
  NanoTime real_epoch_ = 0;
  bool synchronized_ = false;
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_TIMING_H
