// Replay timing (paper §2.6 "Correct timing for replayed queries").
//
// A querier learns the trace epoch t̄₁ and its own real epoch t₁ from the
// controller's time-synchronization message. For query i with trace time
// t̄ᵢ, arriving at the querier at real time tᵢ, the residual delay to
// inject is
//
//     ΔTᵢ = (t̄ᵢ − t̄₁) − (tᵢ − t₁)
//
// i.e. ideal relative trace delay minus the processing/communication delay
// already accumulated. When input processing falls behind (ΔTᵢ ≤ 0) the
// query goes out immediately — the scheduler self-corrects rather than
// drifting.
#ifndef LDPLAYER_REPLAY_TIMING_H
#define LDPLAYER_REPLAY_TIMING_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace ldp::replay {

class ReplayScheduler {
 public:
  // Starts the replay clock: `trace_epoch` is the first query's trace time,
  // `real_epoch` the real (or simulated) time at which replay begins.
  void Synchronize(NanoTime trace_epoch, NanoTime real_epoch) {
    trace_epoch_ = trace_epoch;
    real_epoch_ = real_epoch;
    synchronized_ = true;
  }
  bool synchronized() const { return synchronized_; }

  // Residual delay before sending a query stamped `trace_time`, evaluated
  // at real time `now`. Never negative.
  NanoDuration DelayFor(NanoTime trace_time, NanoTime now) const {
    NanoDuration ideal = trace_time - trace_epoch_;
    NanoDuration elapsed = now - real_epoch_;
    NanoDuration residual = ideal - elapsed;
    return residual > 0 ? residual : 0;
  }

  // How far behind schedule the replay is at `now` for `trace_time`
  // (positive = lagging); diagnostic for the §4.2 accuracy analysis.
  NanoDuration Lag(NanoTime trace_time, NanoTime now) const {
    return (now - real_epoch_) - (trace_time - trace_epoch_);
  }

 private:
  NanoTime trace_epoch_ = 0;
  NanoTime real_epoch_ = 0;
  bool synchronized_ = false;
};

// Hashed timer wheel for aging out inflight queries: O(1) schedule and
// cancel, expiry collection amortized across Advance calls. Keys are
// caller-defined 64-bit handles (the querier packs protocol, source, and
// DNS ID). Entries due further out than one wheel revolution stay parked in
// their slot and are skipped until the cursor passes them with the deadline
// actually due — no cascading levels needed at replay timeout scales.
//
// Re-scheduling a live key (retransmit backoff) just files it again; the
// stale slot entry is dropped lazily when scanned. Cancel is a map erase;
// the slot entry likewise dies lazily.
class TimerWheel {
 public:
  explicit TimerWheel(NanoDuration tick = Millis(8), size_t n_slots = 256)
      : tick_(tick > 0 ? tick : 1),
        slots_(n_slots > 0 ? n_slots : 1) {}

  void Schedule(uint64_t key, NanoTime deadline) {
    deadlines_[key] = deadline;
    int64_t t = deadline / tick_;
    // A deadline at or behind the cursor would land in an already-scanned
    // slot and wait a full revolution; file it into the next scanned slot.
    if (have_cursor_ && t <= cursor_tick_) t = cursor_tick_ + 1;
    slots_[static_cast<size_t>(t) % slots_.size()].push_back(key);
  }

  void Cancel(uint64_t key) { deadlines_.erase(key); }
  bool Contains(uint64_t key) const { return deadlines_.count(key) != 0; }
  bool empty() const { return deadlines_.empty(); }
  size_t size() const { return deadlines_.size(); }

  // Appends every key whose deadline is <= `now` to `expired` and removes
  // it from the wheel. Call with nondecreasing `now` (a monotonic clock).
  void Advance(NanoTime now, std::vector<uint64_t>& expired) {
    int64_t now_tick = now / tick_;
    int64_t span = have_cursor_ ? now_tick - cursor_tick_
                                : static_cast<int64_t>(slots_.size()) - 1;
    if (span < 0) span = 0;
    if (span >= static_cast<int64_t>(slots_.size())) {
      span = static_cast<int64_t>(slots_.size()) - 1;  // full revolution
    }
    have_cursor_ = true;
    cursor_tick_ = now_tick;
    if (deadlines_.empty()) return;
    for (int64_t t = now_tick - span; t <= now_tick; ++t) {
      auto& slot = slots_[static_cast<size_t>(t) % slots_.size()];
      size_t keep = 0;
      for (size_t i = 0; i < slot.size(); ++i) {
        uint64_t key = slot[i];
        auto it = deadlines_.find(key);
        if (it == deadlines_.end()) continue;  // cancelled: drop lazily
        if (it->second <= now) {
          expired.push_back(key);
          deadlines_.erase(it);
          continue;
        }
        slot[keep++] = key;  // rescheduled later or beyond one revolution
      }
      slot.resize(keep);
    }
  }

 private:
  NanoDuration tick_;
  std::vector<std::vector<uint64_t>> slots_;
  std::unordered_map<uint64_t, NanoTime> deadlines_;
  int64_t cursor_tick_ = 0;
  bool have_cursor_ = false;
};

}  // namespace ldp::replay

#endif  // LDPLAYER_REPLAY_TIMING_H
