#include "resolver/cache.h"

#include <vector>

namespace ldp::resolver {

void ResolverCache::Put(const dns::RRset& rrset, NanoTime now) {
  Key key{rrset.name, rrset.type};
  NanoTime expires = now + Seconds(rrset.ttl);
  positive_[key] = PositiveEntry{rrset, expires};
}

std::optional<dns::RRset> ResolverCache::Get(const dns::Name& name,
                                             dns::RRType type, NanoTime now) {
  auto it = positive_.find(Key{name, type});
  if (it == positive_.end()) return std::nullopt;
  if (it->second.expires <= now) {
    positive_.erase(it);
    return std::nullopt;
  }
  return it->second.rrset;
}

void ResolverCache::PutNegative(const dns::Name& name, dns::RRType type,
                                bool nxdomain, uint32_t ttl, NanoTime now) {
  // NXDOMAIN denies every type at the name; key it on kANY.
  Key key{name, nxdomain ? dns::RRType::kANY : type};
  negative_[key] = NegativeEntry{nxdomain, now + Seconds(ttl)};
}

std::optional<NegativeEntry> ResolverCache::GetNegative(const dns::Name& name,
                                                        dns::RRType type,
                                                        NanoTime now) {
  // NXDOMAIN entry first, then type-specific NODATA.
  for (dns::RRType key_type : {dns::RRType::kANY, type}) {
    auto it = negative_.find(Key{name, key_type});
    if (it == negative_.end()) continue;
    if (it->second.expires <= now) {
      negative_.erase(it);
      continue;
    }
    if (key_type == dns::RRType::kANY && !it->second.nxdomain) continue;
    return it->second;
  }
  return std::nullopt;
}

std::optional<dns::RRset> ResolverCache::DeepestNs(const dns::Name& name,
                                                   NanoTime now) {
  dns::Name current = name;
  while (true) {
    auto ns = Get(current, dns::RRType::kNS, now);
    if (ns.has_value()) return ns;
    if (current.IsRoot()) return std::nullopt;
    current = *current.Parent();
  }
}

void ResolverCache::Clear() {
  positive_.clear();
  negative_.clear();
}

void ResolverCache::Evict(NanoTime now) {
  for (auto it = positive_.begin(); it != positive_.end();) {
    it = it->second.expires <= now ? positive_.erase(it) : std::next(it);
  }
  for (auto it = negative_.begin(); it != negative_.end();) {
    it = it->second.expires <= now ? negative_.erase(it) : std::next(it);
  }
}

}  // namespace ldp::resolver
