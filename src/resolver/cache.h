// Resolver cache: positive RRset cache and negative (NXDOMAIN/NODATA)
// cache with TTL expiry against an externally supplied clock, so the same
// cache works under simulated and wall time.
//
// Caching is half of why LDplayer's hierarchy emulation must be faithful:
// a recursive with a warm cache skips upper levels of the hierarchy, and
// the paper's experiments depend on reproducing exactly that interplay.
#ifndef LDPLAYER_RESOLVER_CACHE_H
#define LDPLAYER_RESOLVER_CACHE_H

#include <map>
#include <optional>
#include <unordered_map>

#include "common/clock.h"
#include "dns/rr.h"

namespace ldp::resolver {

struct NegativeEntry {
  bool nxdomain = false;  // false = NODATA
  NanoTime expires = 0;
};

class ResolverCache {
 public:
  void Put(const dns::RRset& rrset, NanoTime now);
  std::optional<dns::RRset> Get(const dns::Name& name, dns::RRType type,
                                NanoTime now);

  void PutNegative(const dns::Name& name, dns::RRType type, bool nxdomain,
                   uint32_t ttl, NanoTime now);
  std::optional<NegativeEntry> GetNegative(const dns::Name& name,
                                           dns::RRType type, NanoTime now);

  // The deepest cached NS RRset at or above `name` (with its owner), used
  // to resume iteration below the highest warm zone cut.
  std::optional<dns::RRset> DeepestNs(const dns::Name& name, NanoTime now);

  size_t entry_count() const { return positive_.size() + negative_.size(); }
  void Clear();

  // Drops expired entries (the caches otherwise clean lazily on access).
  void Evict(NanoTime now);

 private:
  struct Key {
    dns::Name name;
    dns::RRType type;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return k.name.Hash() * 31 + static_cast<uint16_t>(k.type);
    }
  };
  struct PositiveEntry {
    dns::RRset rrset;
    NanoTime expires;
  };

  std::unordered_map<Key, PositiveEntry, KeyHash> positive_;
  std::unordered_map<Key, NegativeEntry, KeyHash> negative_;
};

}  // namespace ldp::resolver

#endif  // LDPLAYER_RESOLVER_CACHE_H
