#include "resolver/resolver.h"

#include <algorithm>

#include "common/log.h"
#include "dns/framing.h"

namespace ldp::resolver {

SimResolver::SimResolver(sim::SimNetwork& net, ResolverConfig config)
    : net_(net), config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    // Polled counters over the resolver's own stats: the lambdas read
    // plain fields, so (like the rest of the sim) snapshots must come from
    // the sim thread. The registry must outlive the resolver.
    auto counter = [this](const char* name, uint64_t ResolverStats::*field) {
      config_.metrics->AddCounterFn(name,
                                    [this, field] { return stats_.*field; });
    };
    counter("resolver.stub_queries", &ResolverStats::stub_queries);
    counter("resolver.upstream_queries", &ResolverStats::upstream_queries);
    counter("resolver.cache_hits", &ResolverStats::cache_hits);
    counter("resolver.cache_misses", &ResolverStats::cache_misses);
    counter("resolver.servfails", &ResolverStats::servfails);
    counter("resolver.nxdomains", &ResolverStats::nxdomains);
    counter("resolver.tcp_fallbacks", &ResolverStats::tcp_fallbacks);
    upstream_rtt_ = config_.metrics->AddHistogram("resolver.upstream_rtt_ns");
  }
}

Status SimResolver::Start() {
  return net_.ListenUdp(Endpoint{config_.address, config_.port},
                        [this](const sim::SimPacket& packet) {
                          OnStubQuery(packet);
                        });
}

void SimResolver::OnStubQuery(const sim::SimPacket& packet) {
  auto query = dns::Message::Decode(packet.payload);
  if (!query.ok() || query->questions.empty()) return;
  ++stats_.stub_queries;

  // Capture what the reply needs.
  dns::Message query_copy = *query;
  Endpoint stub{packet.src, packet.src_port};
  Endpoint self{packet.dst, packet.dst_port};

  Resolve(query->questions[0].name, query->questions[0].type,
          [this, query_copy, stub, self](const dns::Message& result) {
            dns::Message reply = result;
            reply.id = query_copy.id;
            reply.qr = true;
            reply.rd = query_copy.rd;
            reply.ra = true;
            reply.aa = false;
            reply.questions = query_copy.questions;
            net_.SendUdp(self, stub, reply.Encode());
          });
}

void SimResolver::Resolve(const dns::Name& qname, dns::RRType qtype,
                          ResolveCallback callback) {
  auto task = std::make_shared<Task>();
  task->qname = qname;
  task->qtype = qtype;
  task->callback = std::move(callback);
  task->referrals_left = config_.max_referrals;
  task->cname_left = config_.max_cname_chain;
  StartTask(std::move(task));
}

bool SimResolver::TryCache(const TaskPtr& task) {
  NanoTime now = net_.simulator().Now();
  auto negative = cache_.GetNegative(task->qname, task->qtype, now);
  if (negative.has_value()) {
    ++stats_.cache_hits;
    Finish(task, negative->nxdomain ? dns::Rcode::kNxDomain
                                    : dns::Rcode::kNoError,
           {});
    return true;
  }
  auto positive = cache_.Get(task->qname, task->qtype, now);
  if (positive.has_value()) {
    ++stats_.cache_hits;
    FinishFromCache(task, *positive);
    return true;
  }
  // Cached CNAME at the name redirects the chase.
  auto cname = cache_.Get(task->qname, dns::RRType::kCNAME, now);
  if (cname.has_value() && task->qtype != dns::RRType::kCNAME) {
    ++stats_.cache_hits;
    if (--task->cname_left < 0) {
      Finish(task, dns::Rcode::kServFail, {});
      return true;
    }
    for (auto& record : cname->ToRecords()) {
      task->answer_prefix.push_back(std::move(record));
    }
    task->qname = std::get<dns::CnameRdata>(cname->rdatas.front()).target;
    StartTask(task);
    return true;
  }
  return false;
}

void SimResolver::StartTask(TaskPtr task) {
  if (TryCache(task)) return;
  ++stats_.cache_misses;

  // Iteration resumes below the deepest cached delegation; with a cold
  // cache that is the root hints.
  NanoTime now = net_.simulator().Now();
  std::vector<IpAddress> servers;
  auto cached_ns = cache_.DeepestNs(task->qname, now);
  if (cached_ns.has_value()) {
    for (const auto& rdata : cached_ns->rdatas) {
      const auto& ns = std::get<dns::NsRdata>(rdata);
      auto glue = cache_.Get(ns.nsdname, dns::RRType::kA, now);
      if (glue.has_value()) {
        for (const auto& a : glue->rdatas) {
          servers.push_back(std::get<dns::ARdata>(a).address);
        }
      }
    }
  }
  if (servers.empty()) servers = config_.root_hints;
  if (servers.empty()) {
    Finish(task, dns::Rcode::kServFail, {});
    return;
  }
  task->servers = std::move(servers);
  task->server_index = 0;
  task->retries_left = config_.max_retries;
  SendUpstream(std::move(task));
}

void SimResolver::SendUpstream(TaskPtr task) {
  if (task->port == 0) {
    // One ephemeral port per in-flight task: responses route back uniquely.
    for (int attempts = 0; attempts < 55000; ++attempts) {
      uint16_t candidate = next_port_;
      next_port_ = next_port_ >= 65000 ? 10000 : next_port_ + 1;
      Endpoint local{config_.address, candidate};
      TaskPtr self = task;
      auto status = net_.ListenUdp(local, [this, self](
                                              const sim::SimPacket& packet) {
        OnUpstreamResponse(self, packet);
      });
      if (status.ok()) {
        task->port = candidate;
        break;
      }
    }
    if (task->port == 0) {
      Finish(task, dns::Rcode::kServFail, {});
      return;
    }
  }

  IpAddress server = task->servers[task->server_index % task->servers.size()];
  task->query_id = next_id_++;
  dns::Message query =
      dns::Message::MakeQuery(task->qname, task->qtype, /*rd=*/false);
  query.id = task->query_id;
  query.edns = dns::Edns{.udp_payload_size = 4096};

  ++stats_.upstream_queries;
  task->sent_at = net_.simulator().Now();
  net_.SendUdp(Endpoint{config_.address, task->port},
               Endpoint{server, 53}, query.Encode());

  task->timeout.Cancel();
  TaskPtr self = task;
  task->timeout = net_.simulator().Schedule(
      config_.query_timeout, [this, self]() { OnTimeout(self); });
}

void SimResolver::OnTimeout(TaskPtr task) {
  ++task->server_index;
  if (task->server_index >= task->servers.size()) {
    if (--task->retries_left <= 0) {
      Finish(task, dns::Rcode::kServFail, {});
      return;
    }
    task->server_index = 0;
  }
  SendUpstream(std::move(task));
}

void SimResolver::OnUpstreamResponse(TaskPtr task,
                                     const sim::SimPacket& packet) {
  auto response = dns::Message::Decode(packet.payload);
  if (!response.ok() || !response->qr || response->id != task->query_id) {
    return;  // stale or bogus; the timeout will advance the task
  }
  task->timeout.Cancel();
  if (response->tc) {
    // Truncated over UDP: retry this exchange over TCP (RFC 7766).
    RetryOverTcp(std::move(task), packet.src);
    return;
  }
  ProcessResponse(std::move(task), *response);
}

void SimResolver::RetryOverTcp(TaskPtr task, IpAddress server) {
  ++stats_.tcp_fallbacks;
  if (tcp_stack_ == nullptr) {
    tcp_stack_ = std::make_unique<sim::SimTcpStack>(net_, config_.address);
  }

  auto assembler = std::make_shared<dns::StreamAssembler>();
  sim::ConnCallbacks callbacks;
  callbacks.on_established = [this, task](sim::SimTcpConnection& conn) {
    dns::Message query =
        dns::Message::MakeQuery(task->qname, task->qtype, /*rd=*/false);
    query.id = task->query_id;
    query.edns = dns::Edns{.udp_payload_size = 4096};
    // A freshly built query is always well under the frame limit.
    conn.Send(std::move(dns::FrameMessage(query.Encode())).value());
  };
  callbacks.on_data = [this, task, assembler](
                          sim::SimTcpConnection& conn,
                          std::span<const uint8_t> data) {
    if (!assembler->Feed(data).ok()) {
      conn.Close();
      Finish(task, dns::Rcode::kServFail, {});
      return;
    }
    if (auto wire = assembler->NextMessage()) {
      auto response = dns::Message::Decode(*wire);
      conn.Close();
      if (!response.ok() || response->id != task->query_id) {
        Finish(task, dns::Rcode::kServFail, {});
        return;
      }
      task->timeout.Cancel();
      ProcessResponse(task, *response);
    }
  };
  auto conn = tcp_stack_->Connect(Endpoint{server, 53}, callbacks,
                                  /*tls=*/false);
  if (!conn.ok()) {
    Finish(std::move(task), dns::Rcode::kServFail, {});
    return;
  }
  // Re-arm the task timeout to cover the TCP exchange.
  TaskPtr self = task;
  task->timeout = net_.simulator().Schedule(
      config_.query_timeout, [this, self]() { OnTimeout(self); });
}

void SimResolver::ProcessResponse(TaskPtr task, const dns::Message& message) {
  const dns::Message* response = &message;
  NanoTime now = net_.simulator().Now();
  if (upstream_rtt_ != nullptr && task->sent_at > 0 && now >= task->sent_at) {
    upstream_rtt_->Record(static_cast<uint64_t>(now - task->sent_at));
  }

  // Cache everything the response teaches us.
  auto cache_records = [&](const std::vector<dns::ResourceRecord>& records) {
    // Group into RRsets first so TTLs attach to whole sets.
    for (const auto& record : records) {
      auto existing = cache_.Get(record.name, record.type, now);
      dns::RRset rrset;
      if (existing.has_value()) {
        rrset = *existing;
        if (std::find(rrset.rdatas.begin(), rrset.rdatas.end(),
                      record.rdata) == rrset.rdatas.end()) {
          rrset.rdatas.push_back(record.rdata);
        }
      } else {
        rrset.name = record.name;
        rrset.type = record.type;
        rrset.klass = record.klass;
        rrset.ttl = record.ttl;
        rrset.rdatas.push_back(record.rdata);
      }
      cache_.Put(rrset, now);
    }
  };
  cache_records(response->answers);
  cache_records(response->authorities);
  cache_records(response->additionals);

  if (response->rcode == dns::Rcode::kNxDomain) {
    uint32_t ttl = 300;
    for (const auto& rr : response->authorities) {
      if (rr.type == dns::RRType::kSOA) {
        ttl = std::min(rr.ttl,
                       std::get<dns::SoaRdata>(rr.rdata).minimum);
      }
    }
    cache_.PutNegative(task->qname, task->qtype, /*nxdomain=*/true, ttl, now);
    ++stats_.nxdomains;
    Finish(task, dns::Rcode::kNxDomain, {});
    return;
  }
  if (response->rcode != dns::Rcode::kNoError) {
    Finish(task, response->rcode, {});
    return;
  }

  if (!response->answers.empty()) {
    // Answer or CNAME chain. Collect answers for our qname; follow a CNAME
    // if the chain does not already include the target type.
    std::vector<dns::ResourceRecord> matching;
    dns::Name final_target = task->qname;
    bool has_final_answer = false;
    for (const auto& rr : response->answers) {
      matching.push_back(rr);
      if (rr.type == dns::RRType::kCNAME) {
        final_target = std::get<dns::CnameRdata>(rr.rdata).target;
      }
      if (rr.type == task->qtype) has_final_answer = true;
    }
    if (!has_final_answer && task->qtype != dns::RRType::kCNAME &&
        !(final_target == task->qname)) {
      // Chase the CNAME.
      if (--task->cname_left < 0) {
        Finish(task, dns::Rcode::kServFail, {});
        return;
      }
      for (auto& rr : matching) task->answer_prefix.push_back(std::move(rr));
      task->qname = final_target;
      ReleaseTaskPort(*task);
      StartTask(task);
      return;
    }
    Finish(task, dns::Rcode::kNoError, std::move(matching));
    return;
  }

  // Referral?
  const dns::ResourceRecord* ns_record = nullptr;
  for (const auto& rr : response->authorities) {
    if (rr.type == dns::RRType::kNS) {
      ns_record = &rr;
      break;
    }
  }
  if (ns_record != nullptr && !response->aa) {
    if (--task->referrals_left < 0) {
      Finish(task, dns::Rcode::kServFail, {});
      return;
    }
    // Next servers: glue for the NS names (answers were cached above).
    std::vector<IpAddress> next;
    for (const auto& rr : response->authorities) {
      if (rr.type != dns::RRType::kNS) continue;
      const auto& ns = std::get<dns::NsRdata>(rr.rdata);
      auto glue = cache_.Get(ns.nsdname, dns::RRType::kA, now);
      if (glue.has_value()) {
        for (const auto& a : glue->rdatas) {
          next.push_back(std::get<dns::ARdata>(a).address);
        }
      }
    }
    if (next.empty()) {
      // Glueless delegation: resolve the first NS name, then continue.
      const auto& ns_name =
          std::get<dns::NsRdata>(ns_record->rdata).nsdname;
      TaskPtr self = task;
      Resolve(ns_name, dns::RRType::kA,
              [this, self](const dns::Message& ns_response) {
                std::vector<IpAddress> servers;
                for (const auto& rr : ns_response.answers) {
                  if (rr.type == dns::RRType::kA) {
                    servers.push_back(std::get<dns::ARdata>(rr.rdata).address);
                  }
                }
                if (servers.empty()) {
                  Finish(self, dns::Rcode::kServFail, {});
                  return;
                }
                self->servers = std::move(servers);
                self->server_index = 0;
                self->retries_left = config_.max_retries;
                SendUpstream(self);
              });
      return;
    }
    task->servers = std::move(next);
    task->server_index = 0;
    task->retries_left = config_.max_retries;
    SendUpstream(std::move(task));
    return;
  }

  // Authoritative NODATA.
  uint32_t ttl = 300;
  for (const auto& rr : response->authorities) {
    if (rr.type == dns::RRType::kSOA) {
      ttl = std::min(rr.ttl, std::get<dns::SoaRdata>(rr.rdata).minimum);
    }
  }
  cache_.PutNegative(task->qname, task->qtype, /*nxdomain=*/false, ttl, now);
  Finish(task, dns::Rcode::kNoError, {});
}

void SimResolver::Finish(TaskPtr task, dns::Rcode rcode,
                         std::vector<dns::ResourceRecord> answers) {
  task->timeout.Cancel();
  ReleaseTaskPort(*task);
  if (rcode == dns::Rcode::kServFail) ++stats_.servfails;

  dns::Message response;
  response.qr = true;
  response.rcode = rcode;
  response.answers = std::move(task->answer_prefix);
  response.answers.insert(response.answers.end(),
                          std::make_move_iterator(answers.begin()),
                          std::make_move_iterator(answers.end()));
  if (task->callback) task->callback(response);
}

void SimResolver::FinishFromCache(TaskPtr task, const dns::RRset& rrset) {
  std::vector<dns::ResourceRecord> answers = rrset.ToRecords();
  Finish(std::move(task), dns::Rcode::kNoError, std::move(answers));
}

void SimResolver::ReleaseTaskPort(Task& task) {
  if (task.port != 0) {
    net_.CloseUdp(Endpoint{config_.address, task.port});
    task.port = 0;
  }
}

}  // namespace ldp::resolver
