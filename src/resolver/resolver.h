// Iterative recursive resolver over the simulated network. Given a stub
// query it walks the hierarchy from the root hints (or the deepest cached
// zone cut), following referrals and CNAMEs, caching everything it learns,
// and answering the stub.
//
// The resolver is what makes hierarchy-emulation experiments meaningful:
// with a cold cache it emits the exact root → TLD → SLD query sequence
// that the meta-DNS-server + proxies must answer correctly (paper §2.4),
// and its upstream traffic is what the zone constructor harvests (§2.3).
#ifndef LDPLAYER_RESOLVER_RESOLVER_H
#define LDPLAYER_RESOLVER_RESOLVER_H

#include <functional>
#include <memory>
#include <vector>

#include "dns/message.h"
#include "resolver/cache.h"
#include "sim/network.h"
#include "sim/tcp.h"
#include "stats/metrics.h"

namespace ldp::resolver {

struct ResolverConfig {
  IpAddress address;
  uint16_t port = 53;
  std::vector<IpAddress> root_hints;
  NanoDuration query_timeout = Seconds(2);
  int max_retries = 2;     // per nameserver set
  int max_referrals = 16;  // hierarchy depth bound
  int max_cname_chain = 8;
  // Optional live-metrics registry (must outlive the resolver). Registers
  // polled counters over the resolver's own stats plus an upstream-RTT
  // histogram. The resolver is single-threaded sim code, so snapshots must
  // be taken from the sim thread.
  stats::MetricsRegistry* metrics = nullptr;
};

struct ResolverStats {
  uint64_t stub_queries = 0;
  uint64_t upstream_queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;   // lookups that had to start an iteration
  uint64_t servfails = 0;
  uint64_t nxdomains = 0;
  uint64_t tcp_fallbacks = 0;  // truncated UDP answers retried over TCP
};

class SimResolver {
 public:
  using ResolveCallback = std::function<void(const dns::Message& response)>;

  SimResolver(sim::SimNetwork& net, ResolverConfig config);

  // Starts the stub-facing UDP listener on address:port.
  Status Start();

  // Programmatic resolution (used by the zone constructor and tests).
  void Resolve(const dns::Name& qname, dns::RRType qtype,
               ResolveCallback callback);

  ResolverCache& cache() { return cache_; }
  const ResolverStats& stats() const { return stats_; }

 private:
  struct Task : std::enable_shared_from_this<Task> {
    dns::Name qname;
    dns::RRType qtype;
    ResolveCallback callback;
    std::vector<IpAddress> servers;   // current nameserver candidates
    size_t server_index = 0;
    int retries_left = 0;
    int referrals_left = 0;
    int cname_left = 0;
    uint16_t port = 0;                // our ephemeral upstream port
    uint16_t query_id = 0;
    NanoTime sent_at = 0;             // sim time of the last upstream send
    std::vector<dns::ResourceRecord> answer_prefix;  // chased CNAMEs
    sim::EventHandle timeout;
  };
  using TaskPtr = std::shared_ptr<Task>;

  void OnStubQuery(const sim::SimPacket& packet);
  void StartTask(TaskPtr task);
  void SendUpstream(TaskPtr task);
  void OnUpstreamResponse(TaskPtr task, const sim::SimPacket& packet);
  // Shared continuation for UDP and TCP-fallback responses.
  void ProcessResponse(TaskPtr task, const dns::Message& response);
  // TC-bit handling (RFC 7766): retry the same question over TCP against
  // the truncating server.
  void RetryOverTcp(TaskPtr task, IpAddress server);
  void OnTimeout(TaskPtr task);
  void Finish(TaskPtr task, dns::Rcode rcode,
              std::vector<dns::ResourceRecord> answers);
  void FinishFromCache(TaskPtr task, const dns::RRset& rrset);
  void ReleaseTaskPort(Task& task);

  // Consults the cache; true if the task was answered without upstream I/O.
  bool TryCache(const TaskPtr& task);

  sim::SimNetwork& net_;
  ResolverConfig config_;
  ResolverCache cache_;
  ResolverStats stats_;
  stats::LogHistogram* upstream_rtt_ = nullptr;  // registry-owned, optional
  std::unique_ptr<sim::SimTcpStack> tcp_stack_;  // lazy: TC fallback only
  uint16_t next_port_ = 10000;
  uint16_t next_id_ = 1;
};

}  // namespace ldp::resolver

#endif  // LDPLAYER_RESOLVER_RESOLVER_H
