#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "dns/message.h"
#include "net/event_loop.h"
#include "net/sockets.h"

namespace ldp::scenario {

namespace {

double QuantileMs(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted_ms.size()));
  rank = std::min(rank, sorted_ms.size() - 1);
  return sorted_ms[rank];
}

void FillLatencies(TrafficClassReport& out, std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  out.latency_p50_ms = QuantileMs(ms, 0.50);
  out.latency_p95_ms = QuantileMs(ms, 0.95);
  out.latency_p99_ms = QuantileMs(ms, 0.99);
}

}  // namespace

SplitReport SplitOutcomes(const replay::RealtimeReport& report,
                          const std::vector<bool>& mask) {
  SplitReport split;
  std::vector<double> legit_ms;
  std::vector<double> attack_ms;
  for (const auto& outcome : report.sends) {
    if (outcome.trace_index >= mask.size()) continue;
    bool is_attack = mask[outcome.trace_index];
    TrafficClassReport& cls = is_attack ? split.attack : split.legit;
    ++cls.sent;
    switch (outcome.state) {
      case replay::SendOutcome::State::kAnswered:
        ++cls.answered;
        (is_attack ? attack_ms : legit_ms)
            .push_back(ToMillis(outcome.replied - outcome.sent));
        break;
      case replay::SendOutcome::State::kTimedOut:
        ++cls.timed_out;
        break;
      case replay::SendOutcome::State::kSendFailed:
        ++cls.send_failed;
        break;
      case replay::SendOutcome::State::kPending:
        break;
    }
  }
  FillLatencies(split.legit, legit_ms);
  FillLatencies(split.attack, attack_ms);
  return split;
}

AmplificationReport ComputeAmplification(
    server::AuthServerEngine& engine,
    std::span<const trace::QueryRecord> records) {
  AmplificationReport report;
  for (const auto& record : records) {
    dns::Message query = record.ToMessage();
    auto wire = query.Encode();
    size_t udp_limit =
        record.edns ? record.udp_payload_size : dns::kMaxUdpPayloadDefault;
    auto response = engine.HandleWire(wire, record.dst, udp_limit);
    if (!response.ok()) continue;
    ++report.queries;
    report.query_bytes += wire.size();
    report.response_bytes += response->size();
  }
  return report;
}

Result<SpoofedFloodReport> RunSpoofedFlood(const SpoofedFloodConfig& config) {
  if (config.rate_qps <= 0 || config.n_sockets == 0 ||
      config.rotate_after_sends == 0) {
    return Error(ErrorCode::kInvalidArgument, "bad spoofed-flood config");
  }
  std::unique_ptr<net::EventLoop> loop;
  LDP_ASSIGN_OR_RETURN(loop, net::EventLoop::Create());

  SpoofedFloodReport report;
  auto on_reply = [&report](std::span<const uint8_t>, Endpoint) {
    ++report.replies;
  };

  std::vector<std::unique_ptr<net::UdpSocket>> socks(config.n_sockets);
  std::vector<size_t> sends_on(config.n_sockets, 0);
  auto open = [&](size_t i) {
    auto sock = net::UdpSocket::Bind(
        *loop, Endpoint{IpAddress::Loopback(), 0}, on_reply);
    if (!sock.ok()) return false;
    socks[i] = std::move(*sock);
    sends_on[i] = 0;
    ++report.sockets_opened;
    return true;
  };

  constexpr NanoDuration kTick = Millis(1);
  const NanoTime deadline = MonotonicNow() + config.duration;
  double carry = 0;
  size_t cursor = 0;
  bool stopping = false;
  // Self-rearming pacer; everything it touches outlives loop->Run().
  std::function<void()> tick = [&]() {
    NanoTime now = MonotonicNow();
    if (now >= deadline) {
      if (!stopping) {
        stopping = true;
        loop->ScheduleAfter(config.linger,
                            [&loop]() { loop->RequestStop(); });
      }
      return;
    }
    carry += config.rate_qps * ToSeconds(kTick);
    auto burst = static_cast<size_t>(carry);
    carry -= static_cast<double>(burst);
    for (size_t n = 0; n < burst; ++n) {
      size_t i = cursor++ % socks.size();
      if (socks[i] == nullptr && !open(i)) {
        ++report.send_errors;
        continue;
      }
      if (socks[i]->SendTo(config.query_wire, config.target).ok()) {
        ++report.sent;
      } else {
        ++report.send_errors;
      }
      if (++sends_on[i] >= config.rotate_after_sends) {
        // Rotation: the next use of slot i binds a fresh ephemeral port —
        // a brand-new client endpoint from the proxy's point of view.
        socks[i].reset();
      }
    }
    loop->ScheduleAfter(kTick, tick);
  };
  loop->ScheduleAfter(0, tick);
  loop->Run();
  return report;
}

}  // namespace ldp::scenario
