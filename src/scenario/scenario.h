// Scenario engine: composes a legitimate replay trace with attack
// overlays (mutate/attack.h) and measures both sides of the fight over
// the real-socket chain replay → proxy → server.
//
// The paper positions LDplayer as the tool for exactly these what-ifs
// ("study of server hardware and software under denial-of-service
// attack", §1) but never runs them; this module supplies the missing
// harness. The split is deliberate:
//
//   - attack *generation* lives in mutate/ (plain trace records);
//   - per-class *measurement* lives here: OverlayAttack's mask lines up
//     with RealtimeReport::sends (both trace-ordered), so one replay
//     yields separate answered-rate/latency accounting for legitimate
//     and attack traffic;
//   - what the attack *costs the server* is read from the machinery's
//     existing meters: engine cache hit rate (NXDOMAIN flood collapses
//     it), response_bytes (amplification), proxy flow churn +
//     evicted_drops (spoofed flood), loop-lag histograms (CPU proxy).
//
// One attack cannot ride the trace replayer: spoofed *sources*. A
// realtime querier owns one socket, so every query it sends shares one
// flow key at the proxy no matter what record.src says. RunSpoofedFlood
// is the real-socket stand-in: a socket-rotating injector that mints a
// fresh ephemeral port (= fresh proxy flow) every few queries, producing
// genuine flow-table LRU churn.
#ifndef LDPLAYER_SCENARIO_SCENARIO_H
#define LDPLAYER_SCENARIO_SCENARIO_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "replay/realtime.h"
#include "server/engine.h"
#include "trace/record.h"

namespace ldp::scenario {

// Outcome summary for one traffic class carved out of a replay report.
struct TrafficClassReport {
  uint64_t sent = 0;
  uint64_t answered = 0;
  uint64_t timed_out = 0;
  uint64_t send_failed = 0;
  // Reply latency quantiles over answered queries, milliseconds.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;

  double answered_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(answered) /
                           static_cast<double>(sent);
  }
};

struct SplitReport {
  TrafficClassReport legit;
  TrafficClassReport attack;
};

// Splits a replay report into legitimate/attack classes using the
// is-attack mask from mutate::OverlayAttack. `report.sends` and `mask`
// are both in trace order; sends may be shorter if the replay was cut
// off early (trailing records count as neither class).
SplitReport SplitOutcomes(const replay::RealtimeReport& report,
                          const std::vector<bool>& mask);

// Amplification accounting: runs each attack query through the engine
// wire-to-wire (same code path the live server executes, including the
// EDNS-advertised size limit) and reports the response/query byte ratio
// — the number a reflector attack multiplies its bandwidth by.
struct AmplificationReport {
  uint64_t queries = 0;
  uint64_t query_bytes = 0;
  uint64_t response_bytes = 0;

  double factor() const {
    return query_bytes == 0 ? 0.0
                            : static_cast<double>(response_bytes) /
                                  static_cast<double>(query_bytes);
  }
};

AmplificationReport ComputeAmplification(
    server::AuthServerEngine& engine,
    std::span<const trace::QueryRecord> records);

// Spoofed-source flood over real sockets. Each rotation closes a socket
// and binds a fresh one, minting a new ephemeral port — to the proxy, a
// brand-new client endpoint and hence a brand-new flow. With
// rotate_after_sends small and rate high, flows are created far faster
// than they idle out, forcing LRU evictions; replies to already-evicted
// flows surface as proxy.evicted_drops.
struct SpoofedFloodConfig {
  Endpoint target;          // an emulated NS address at the proxy port
  Bytes query_wire;         // the (cacheable) query repeated by the flood
  double rate_qps = 5000;
  NanoDuration duration = Seconds(2);
  size_t n_sockets = 64;            // concurrent socket pool
  size_t rotate_after_sends = 2;    // sends per socket before rotation
  // Post-flood grace to count stragglers before the loop stops.
  NanoDuration linger = Millis(200);
};

struct SpoofedFloodReport {
  uint64_t sent = 0;
  uint64_t send_errors = 0;
  uint64_t sockets_opened = 0;  // == distinct client endpoints offered
  uint64_t replies = 0;
};

Result<SpoofedFloodReport> RunSpoofedFlood(const SpoofedFloodConfig& config);

}  // namespace ldp::scenario

#endif  // LDPLAYER_SCENARIO_SCENARIO_H
