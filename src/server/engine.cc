#include "server/engine.h"

namespace ldp::server {
namespace {

// Messages in an AXFR stream stay comfortably under the 64 KiB frame cap;
// real servers batch a few hundred records per message.
constexpr size_t kAxfrMessageBudget = 32 * 1024;

}  // namespace

dns::Message AuthServerEngine::HandleQuery(const dns::Message& query,
                                           IpAddress source) {
  ++stats_.queries;

  const zone::ZoneSet* zones = views_.Match(source);
  const zone::Zone* zone = nullptr;
  if (zones != nullptr && !query.questions.empty()) {
    zone = zones->FindBestZone(query.questions.front().name);
  }

  dns::Message response;
  if (zone == nullptr) {
    // No zone for this name in the matched view: REFUSED, like BIND with
    // no matching zone clause.
    response.id = query.id;
    response.qr = true;
    response.opcode = query.opcode;
    response.rd = query.rd;
    response.questions = query.questions;
    response.rcode = dns::Rcode::kRefused;
    if (query.edns.has_value()) {
      response.edns = dns::Edns{.udp_payload_size = 4096};
    }
    ++stats_.refused;
  } else {
    bool want_dnssec = query.edns.has_value() && query.edns->do_bit;
    response = zone::BuildResponse(*zone, query, want_dnssec);
    if (response.rcode == dns::Rcode::kNxDomain) ++stats_.nxdomain;
    if (response.rcode == dns::Rcode::kRefused) ++stats_.refused;
  }
  ++stats_.responses;
  return response;
}

Result<std::vector<Bytes>> AuthServerEngine::HandleAxfr(
    const dns::Message& query, IpAddress source) {
  ++stats_.queries;
  if (query.questions.empty()) {
    return Error(ErrorCode::kInvalidArgument, "AXFR without a question");
  }
  const dns::Name& origin = query.questions.front().name;
  const zone::ZoneSet* zones = views_.Match(source);
  zone::ZonePtr zone = zones != nullptr ? zones->FindZone(origin) : nullptr;

  auto make_base = [&]() {
    dns::Message msg;
    msg.id = query.id;
    msg.qr = true;
    msg.aa = true;
    msg.questions = query.questions;
    return msg;
  };

  if (zone == nullptr || zone->Soa() == nullptr) {
    // Not authoritative for exactly this origin in this view.
    dns::Message refused = make_base();
    refused.aa = false;
    refused.rcode = dns::Rcode::kNotAuth;
    ++stats_.refused;
    ++stats_.responses;
    return std::vector<Bytes>{refused.Encode()};
  }

  // SOA, every other record in canonical order, SOA again. Flush a message
  // whenever the running estimate crosses the per-message budget.
  std::vector<Bytes> messages;
  dns::Message current = make_base();
  size_t current_size = 0;
  auto flush = [&]() {
    if (current.answers.empty() && !messages.empty()) return;
    messages.push_back(current.Encode());
    stats_.response_bytes += messages.back().size();
    ++stats_.responses;
    current = make_base();
    current.questions.clear();  // only the first message carries it
    current_size = 0;
  };
  auto append = [&](const dns::ResourceRecord& record) {
    size_t estimate = record.name.WireLength() + 10 +
                      dns::RdataWireLength(record.rdata);
    if (current_size + estimate > kAxfrMessageBudget) flush();
    current.answers.push_back(record);
    current_size += estimate;
  };

  const dns::RRset* soa = zone->Soa();
  dns::ResourceRecord soa_record = soa->ToRecords().front();
  append(soa_record);
  zone->ForEachRRset([&](const dns::RRset& rrset) {
    if (rrset.type == dns::RRType::kSOA && rrset.name == zone->origin()) {
      return;
    }
    for (const auto& record : rrset.ToRecords()) append(record);
  });
  append(soa_record);  // terminal SOA
  flush();
  return messages;
}

Result<std::vector<Bytes>> AuthServerEngine::HandleStream(
    std::span<const uint8_t> wire, IpAddress source) {
  auto query = dns::Message::Decode(wire);
  if (!query.ok()) {
    ++stats_.dropped;
    return query.error();
  }
  if (!query->questions.empty() &&
      query->questions.front().type == dns::RRType::kAXFR) {
    return HandleAxfr(*query, source);
  }
  dns::Message response = HandleQuery(*query, source);
  Bytes encoded = response.Encode(dns::kMaxMessageSize);
  stats_.response_bytes += encoded.size();
  return std::vector<Bytes>{std::move(encoded)};
}

Result<Bytes> AuthServerEngine::HandleWire(std::span<const uint8_t> wire,
                                           IpAddress source,
                                           size_t udp_limit) {
  auto query = dns::Message::Decode(wire);
  if (!query.ok()) {
    ++stats_.dropped;
    return query.error();
  }
  if (!query->questions.empty() &&
      query->questions.front().type == dns::RRType::kAXFR) {
    // AXFR needs a stream; over UDP it is refused (RFC 5936 §4.2). Stream
    // transports special-case AXFR before calling HandleWire.
    ++stats_.queries;
    ++stats_.responses;
    ++stats_.refused;
    dns::Message refused;
    refused.id = query->id;
    refused.qr = true;
    refused.questions = query->questions;
    refused.rcode = dns::Rcode::kRefused;
    return refused.Encode();
  }
  dns::Message response = HandleQuery(*query, source);

  size_t limit = dns::kMaxMessageSize;
  if (udp_limit > 0) {
    // The effective UDP ceiling: the client's EDNS advertisement, else the
    // classic 512 bytes (RFC 1035 §4.2.1), both capped by the transport.
    size_t advertised = query->edns.has_value()
                            ? query->edns->udp_payload_size
                            : dns::kMaxUdpPayloadDefault;
    if (advertised < dns::kMaxUdpPayloadDefault) {
      advertised = dns::kMaxUdpPayloadDefault;
    }
    limit = std::min(udp_limit, advertised);
  }
  Bytes encoded = response.Encode(limit);
  // TC is patched into the wire during truncation; detect via re-check of
  // the flags byte rather than re-decoding the whole message.
  if (encoded.size() >= 4 && (encoded[2] & 0x02)) ++stats_.truncated;
  stats_.response_bytes += encoded.size();
  return encoded;
}

}  // namespace ldp::server
