#include "server/engine.h"

namespace ldp::server {
namespace {

// Messages in an AXFR stream stay comfortably under the 64 KiB frame cap;
// real servers batch a few hundred records per message.
constexpr size_t kAxfrMessageBudget = 32 * 1024;

// Counter increments are relaxed: each shard's engine is mutated by one
// thread only; atomics exist so cross-thread stat snapshots are race-free.
void Bump(std::atomic<uint64_t>& counter, uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Load(const std::atomic<uint64_t>& counter) {
  return counter.load(std::memory_order_relaxed);
}

// The effective UDP ceiling: the client's EDNS advertisement, else the
// classic 512 bytes (RFC 1035 §4.2.1), both capped by the transport.
// udp_limit == 0 means a stream transport: no truncation.
size_t EffectiveLimit(size_t udp_limit, bool has_edns, uint32_t advertised) {
  if (udp_limit == 0) return dns::kMaxMessageSize;
  size_t ceiling = has_edns ? advertised : dns::kMaxUdpPayloadDefault;
  if (ceiling < dns::kMaxUdpPayloadDefault) {
    ceiling = dns::kMaxUdpPayloadDefault;
  }
  return std::min(udp_limit, ceiling);
}

}  // namespace

EngineStats& EngineStats::operator+=(const EngineStats& other) {
  queries += other.queries;
  responses += other.responses;
  dropped += other.dropped;
  refused += other.refused;
  nxdomain += other.nxdomain;
  truncated += other.truncated;
  response_bytes += other.response_bytes;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_bypass += other.cache_bypass;
  cache_evictions += other.cache_evictions;
  cache_size += other.cache_size;
  return *this;
}

AuthServerEngine::AuthServerEngine(
    std::shared_ptr<const zone::ViewTable> views, EngineOptions options)
    : views_(std::move(views)) {
  if (options.response_cache_entries > 0) {
    cache_ =
        std::make_unique<ResponseCache>(options.response_cache_entries);
  }
}

EngineStats AuthServerEngine::stats() const {
  EngineStats snapshot;
  snapshot.queries = Load(stats_.queries);
  snapshot.responses = Load(stats_.responses);
  snapshot.dropped = Load(stats_.dropped);
  snapshot.refused = Load(stats_.refused);
  snapshot.nxdomain = Load(stats_.nxdomain);
  snapshot.truncated = Load(stats_.truncated);
  snapshot.response_bytes = Load(stats_.response_bytes);
  snapshot.cache_hits = Load(stats_.cache_hits);
  snapshot.cache_misses = Load(stats_.cache_misses);
  snapshot.cache_bypass = Load(stats_.cache_bypass);
  snapshot.cache_evictions = Load(stats_.cache_evictions);
  snapshot.cache_size = Load(stats_.cache_size);
  return snapshot;
}

void AuthServerEngine::BumpRcode(dns::Rcode rcode) {
  if (rcode == dns::Rcode::kNxDomain) Bump(stats_.nxdomain);
  if (rcode == dns::Rcode::kRefused) Bump(stats_.refused);
}

dns::Message AuthServerEngine::HandleQuery(const dns::Message& query,
                                           IpAddress source) {
  Bump(stats_.queries);

  const zone::ZoneSet* zones = views_->Match(source);
  const zone::Zone* zone = nullptr;
  if (zones != nullptr && !query.questions.empty()) {
    zone = zones->FindBestZone(query.questions.front().name);
  }

  dns::Message response;
  if (zone == nullptr) {
    // No zone for this name in the matched view: REFUSED, like BIND with
    // no matching zone clause.
    response.id = query.id;
    response.qr = true;
    response.opcode = query.opcode;
    response.rd = query.rd;
    response.questions = query.questions;
    response.rcode = dns::Rcode::kRefused;
    if (query.edns.has_value()) {
      // Echo the client's advertised payload size (RFC 6891 §6.2.3: the
      // OPT in a response states *our* capability, but for a zoneless
      // REFUSED the paper-faithful behaviour is a plain echo).
      response.edns =
          dns::Edns{.udp_payload_size = query.edns->udp_payload_size};
    }
    Bump(stats_.refused);
  } else {
    bool want_dnssec = query.edns.has_value() && query.edns->do_bit;
    response = zone::BuildResponse(*zone, query, want_dnssec);
    if (response.rcode == dns::Rcode::kNxDomain) Bump(stats_.nxdomain);
    if (response.rcode == dns::Rcode::kRefused) Bump(stats_.refused);
  }
  Bump(stats_.responses);
  return response;
}

Result<std::vector<Bytes>> AuthServerEngine::HandleAxfr(
    const dns::Message& query, IpAddress source) {
  Bump(stats_.queries);
  if (query.questions.empty()) {
    return Error(ErrorCode::kInvalidArgument, "AXFR without a question");
  }
  const dns::Name& origin = query.questions.front().name;
  const zone::ZoneSet* zones = views_->Match(source);
  zone::ZonePtr zone = zones != nullptr ? zones->FindZone(origin) : nullptr;

  auto make_base = [&]() {
    dns::Message msg;
    msg.id = query.id;
    msg.qr = true;
    msg.aa = true;
    msg.questions = query.questions;
    return msg;
  };

  if (zone == nullptr || zone->Soa() == nullptr) {
    // Not authoritative for exactly this origin in this view.
    dns::Message refused = make_base();
    refused.aa = false;
    refused.rcode = dns::Rcode::kNotAuth;
    Bump(stats_.refused);
    Bump(stats_.responses);
    return std::vector<Bytes>{refused.Encode()};
  }

  // SOA, every other record in canonical order, SOA again. Flush a message
  // whenever the running estimate crosses the per-message budget.
  std::vector<Bytes> messages;
  dns::Message current = make_base();
  size_t current_size = 0;
  auto flush = [&]() {
    if (current.answers.empty() && !messages.empty()) return;
    messages.push_back(current.Encode());
    Bump(stats_.response_bytes, messages.back().size());
    Bump(stats_.responses);
    current = make_base();
    current.questions.clear();  // only the first message carries it
    current_size = 0;
  };
  auto append = [&](const dns::ResourceRecord& record) {
    size_t estimate = record.name.WireLength() + 10 +
                      dns::RdataWireLength(record.rdata);
    if (current_size + estimate > kAxfrMessageBudget) flush();
    current.answers.push_back(record);
    current_size += estimate;
  };

  const dns::RRset* soa = zone->Soa();
  dns::ResourceRecord soa_record = soa->ToRecords().front();
  append(soa_record);
  zone->ForEachRRset([&](const dns::RRset& rrset) {
    if (rrset.type == dns::RRType::kSOA && rrset.name == zone->origin()) {
      return;
    }
    for (const auto& record : rrset.ToRecords()) append(record);
  });
  append(soa_record);  // terminal SOA
  flush();
  return messages;
}

Result<std::vector<Bytes>> AuthServerEngine::HandleStream(
    std::span<const uint8_t> wire, IpAddress source) {
  auto query = dns::Message::Decode(wire);
  if (!query.ok()) {
    Bump(stats_.dropped);
    return query.error();
  }
  if (!query->questions.empty() &&
      query->questions.front().type == dns::RRType::kAXFR) {
    return HandleAxfr(*query, source);
  }
  dns::Message response = HandleQuery(*query, source);
  Bytes encoded = response.Encode(dns::kMaxMessageSize);
  Bump(stats_.response_bytes, encoded.size());
  return std::vector<Bytes>{std::move(encoded)};
}

Result<Bytes> AuthServerEngine::HandleWire(std::span<const uint8_t> wire,
                                           IpAddress source,
                                           size_t udp_limit) {
  // Wire-level response cache: a repeat query is answered from the stored
  // encoding with just the ID and RD flag patched in — no decode, no
  // lookup, no encode. ParseWireQuery reads the key fields straight from
  // the wire; only plain single-question QUERYs pass it, everything else
  // bypasses (and a truncated response is never stored, response_cache.h).
  bool cacheable = false;
  if (cache_ != nullptr) {
    WireQueryInfo info;
    if (ParseWireQuery(wire, &info) &&
        info.qtype != static_cast<uint16_t>(dns::RRType::kAXFR)) {
      cacheable = true;
      scratch_key_.view = views_->Match(source);
      scratch_key_.question.assign(info.question.begin(),
                                   info.question.end());
      scratch_key_.has_edns = info.has_edns;
      scratch_key_.do_bit = info.do_bit;
      scratch_key_.advertised = info.has_edns ? info.advertised : 0;
      scratch_key_.limit = static_cast<uint32_t>(
          EffectiveLimit(udp_limit, info.has_edns, info.advertised));
      if (const ResponseCache::Entry* entry =
              cache_->Lookup(scratch_key_)) {
        Bump(stats_.queries);
        Bump(stats_.responses);
        BumpRcode(entry->rcode);
        Bump(stats_.cache_hits);
        Bump(stats_.response_bytes, entry->wire.size());
        return ResponseCache::PatchedCopy(entry->wire, info.id, info.rd);
      }
      Bump(stats_.cache_misses);
    } else {
      Bump(stats_.cache_bypass);
    }
  }

  auto query = dns::Message::Decode(wire);
  if (!query.ok()) {
    Bump(stats_.dropped);
    return query.error();
  }
  if (!query->questions.empty() &&
      query->questions.front().type == dns::RRType::kAXFR) {
    // AXFR needs a stream; over UDP it is refused (RFC 5936 §4.2). Stream
    // transports special-case AXFR before calling HandleWire.
    Bump(stats_.queries);
    Bump(stats_.responses);
    Bump(stats_.refused);
    dns::Message refused;
    refused.id = query->id;
    refused.qr = true;
    refused.questions = query->questions;
    refused.rcode = dns::Rcode::kRefused;
    return refused.Encode();
  }

  size_t limit = EffectiveLimit(
      udp_limit, query->edns.has_value(),
      query->edns.has_value() ? query->edns->udp_payload_size : 0);

  dns::Message response = HandleQuery(*query, source);
  Bytes encoded = response.Encode(limit);
  // TC is patched into the wire during truncation; detect via re-check of
  // the flags byte rather than re-decoding the whole message.
  bool truncated = encoded.size() >= 4 && (encoded[2] & 0x02);
  if (truncated) Bump(stats_.truncated);
  Bump(stats_.response_bytes, encoded.size());

  if (cacheable && !truncated) {
    cache_->Insert(std::move(scratch_key_), encoded, response.rcode);
    stats_.cache_evictions.store(cache_->evictions(),
                                 std::memory_order_relaxed);
    stats_.cache_size.store(cache_->size(), std::memory_order_relaxed);
  }
  return encoded;
}

}  // namespace ldp::server
