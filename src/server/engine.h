// Transport-agnostic authoritative DNS server engine: the meta-DNS-server
// of paper §2.4. A single engine instance serves many zones; split-horizon
// views keyed on the query *source address* select which zone answers —
// after the recursive proxy's OQDA rewrite, that source address is the
// public address of the nameserver the querier believed it was asking.
//
// The same engine runs over the simulator (sim_server.h) and over real
// sockets (socket_server.h): transports hand it wire bytes + the source
// address, it hands back wire bytes.
#ifndef LDPLAYER_SERVER_ENGINE_H
#define LDPLAYER_SERVER_ENGINE_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/ip.h"
#include "common/result.h"
#include "server/response_cache.h"
#include "zone/lookup.h"
#include "zone/view.h"

namespace ldp::server {

// A point-in-time snapshot of one engine's counters (see
// AuthServerEngine::stats). Plain integers: snapshots add and compare like
// values, which is how sharded servers aggregate across workers.
struct EngineStats {
  uint64_t queries = 0;
  uint64_t responses = 0;
  uint64_t dropped = 0;      // undecodable queries
  uint64_t refused = 0;      // no zone for qname in the matched view
  uint64_t nxdomain = 0;
  uint64_t truncated = 0;    // responses that set TC over UDP
  uint64_t response_bytes = 0;
  // Wire-level response cache (all zero when the cache is disabled).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;    // eligible queries not found in the cache
  uint64_t cache_bypass = 0;    // queries ineligible for caching
  uint64_t cache_evictions = 0;
  uint64_t cache_size = 0;      // entries at snapshot time

  EngineStats& operator+=(const EngineStats& other);
};

struct EngineOptions {
  // Capacity (entries) of the wire-level response cache; 0 disables it.
  size_t response_cache_entries = 0;
};

class AuthServerEngine {
 public:
  // The view table is shared so sharded servers can run one engine (and
  // one private response cache) per worker over the same zones.
  explicit AuthServerEngine(std::shared_ptr<const zone::ViewTable> views,
                            EngineOptions options = {});
  explicit AuthServerEngine(zone::ViewTable views, EngineOptions options = {})
      : AuthServerEngine(std::make_shared<const zone::ViewTable>(
                             std::move(views)),
                         options) {}

  // Serves one decoded query. `source` selects the split-horizon view.
  dns::Message HandleQuery(const dns::Message& query, IpAddress source);

  // Wire-to-wire: decode, serve, encode. `udp_limit` caps the response size
  // (EDNS-advertised or 512); pass 0 for stream transports (no truncation).
  // Returns kParseError for undecodable input (transports drop those).
  Result<Bytes> HandleWire(std::span<const uint8_t> wire, IpAddress source,
                           size_t udp_limit);

  // Stream-transport entry point: decodes once and routes to HandleAxfr
  // for AXFR questions or to the normal query path (no truncation)
  // otherwise. Each returned buffer is one DNS message to frame and send.
  Result<std::vector<Bytes>> HandleStream(std::span<const uint8_t> wire,
                                          IpAddress source);

  // AXFR (RFC 5936): the whole zone as a sequence of response messages,
  // SOA-first and SOA-last, each under the 64 KiB stream-message limit.
  // Stream transports call this when the question type is AXFR; over UDP
  // the engine REFUSEs instead. The zone is selected from the view for
  // `source`, so transfers obey split-horizon boundaries.
  Result<std::vector<Bytes>> HandleAxfr(const dns::Message& query,
                                        IpAddress source);

  // Snapshot of the counters. Increments use relaxed atomics, so another
  // thread may snapshot a shard's stats while the shard serves — no locks,
  // no torn reads (each counter individually exact; the set is only
  // loosely consistent, which aggregation tolerates).
  EngineStats stats() const;

  const zone::ViewTable& views() const { return *views_; }
  std::shared_ptr<const zone::ViewTable> shared_views() const {
    return views_;
  }
  bool response_cache_enabled() const { return cache_ != nullptr; }

 private:
  // Counters mirrored by EngineStats; mutated only by the owning thread,
  // read from anywhere.
  struct Counters {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> dropped{0};
    std::atomic<uint64_t> refused{0};
    std::atomic<uint64_t> nxdomain{0};
    std::atomic<uint64_t> truncated{0};
    std::atomic<uint64_t> response_bytes{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> cache_bypass{0};
    std::atomic<uint64_t> cache_evictions{0};
    std::atomic<uint64_t> cache_size{0};
  };

  void BumpRcode(dns::Rcode rcode);

  std::shared_ptr<const zone::ViewTable> views_;
  std::unique_ptr<ResponseCache> cache_;  // nullptr = disabled
  // Key staging for HandleWire, reused across queries so the hot path
  // amortizes the question-bytes allocation (engines are single-threaded).
  ResponseCacheKey scratch_key_;
  Counters stats_;
};

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_ENGINE_H
