// Transport-agnostic authoritative DNS server engine: the meta-DNS-server
// of paper §2.4. A single engine instance serves many zones; split-horizon
// views keyed on the query *source address* select which zone answers —
// after the recursive proxy's OQDA rewrite, that source address is the
// public address of the nameserver the querier believed it was asking.
//
// The same engine runs over the simulator (sim_server.h) and over real
// sockets (socket_server.h): transports hand it wire bytes + the source
// address, it hands back wire bytes.
#ifndef LDPLAYER_SERVER_ENGINE_H
#define LDPLAYER_SERVER_ENGINE_H

#include <cstdint>
#include <memory>

#include "common/ip.h"
#include "common/result.h"
#include "zone/lookup.h"
#include "zone/view.h"

namespace ldp::server {

struct EngineStats {
  uint64_t queries = 0;
  uint64_t responses = 0;
  uint64_t dropped = 0;      // undecodable queries
  uint64_t refused = 0;      // no zone for qname in the matched view
  uint64_t nxdomain = 0;
  uint64_t truncated = 0;    // responses that set TC over UDP
  uint64_t response_bytes = 0;
};

class AuthServerEngine {
 public:
  explicit AuthServerEngine(zone::ViewTable views)
      : views_(std::move(views)) {}

  // Serves one decoded query. `source` selects the split-horizon view.
  dns::Message HandleQuery(const dns::Message& query, IpAddress source);

  // Wire-to-wire: decode, serve, encode. `udp_limit` caps the response size
  // (EDNS-advertised or 512); pass 0 for stream transports (no truncation).
  // Returns kParseError for undecodable input (transports drop those).
  Result<Bytes> HandleWire(std::span<const uint8_t> wire, IpAddress source,
                           size_t udp_limit);

  // Stream-transport entry point: decodes once and routes to HandleAxfr
  // for AXFR questions or to the normal query path (no truncation)
  // otherwise. Each returned buffer is one DNS message to frame and send.
  Result<std::vector<Bytes>> HandleStream(std::span<const uint8_t> wire,
                                          IpAddress source);

  // AXFR (RFC 5936): the whole zone as a sequence of response messages,
  // SOA-first and SOA-last, each under the 64 KiB stream-message limit.
  // Stream transports call this when the question type is AXFR; over UDP
  // the engine REFUSEs instead. The zone is selected from the view for
  // `source`, so transfers obey split-horizon boundaries.
  Result<std::vector<Bytes>> HandleAxfr(const dns::Message& query,
                                        IpAddress source);

  const EngineStats& stats() const { return stats_; }
  const zone::ViewTable& views() const { return views_; }

 private:
  zone::ViewTable views_;
  EngineStats stats_;
};

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_ENGINE_H
