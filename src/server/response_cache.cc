#include "server/response_cache.h"

namespace ldp::server {

bool ParseWireQuery(std::span<const uint8_t> wire, WireQueryInfo* out) {
  if (wire.size() < 12) return false;
  const uint8_t* p = wire.data();
  auto u16 = [p](size_t off) {
    return static_cast<uint16_t>((p[off] << 8) | p[off + 1]);
  };

  uint8_t flags_hi = p[2];
  if (flags_hi & 0x80) return false;         // QR set: not a query
  if ((flags_hi >> 3) & 0x0f) return false;  // opcode != QUERY
  if (u16(4) != 1 || u16(6) != 0 || u16(8) != 0) return false;
  uint16_t arcount = u16(10);
  if (arcount > 1) return false;

  // Walk the qname: plain labels only, inside the RFC 1035 length cap.
  size_t off = 12;
  size_t name_len = 0;
  while (true) {
    if (off >= wire.size()) return false;
    uint8_t len = p[off];
    if (len == 0) {
      ++off;
      break;
    }
    if (len & 0xc0) return false;  // compression / extended label
    name_len += len + 1;
    if (name_len > 254) return false;
    off += 1 + static_cast<size_t>(len);
  }
  if (off + 4 > wire.size()) return false;
  out->qtype = u16(off);
  out->question = wire.subspan(12, off + 4 - 12);
  off += 4;

  out->id = u16(0);
  out->rd = flags_hi & 0x01;
  out->has_edns = arcount == 1;
  out->do_bit = false;
  out->advertised = 0;
  if (arcount == 1) {
    // The one additional must be a well-formed OPT pseudo-record:
    // root owner name, TYPE 41, class = advertised payload size,
    // TTL = extended-rcode(0) | version(0) | flags.
    if (off + 11 > wire.size()) return false;
    if (p[off] != 0) return false;
    if (u16(off + 1) != 41) return false;
    out->advertised = u16(off + 3);
    if (p[off + 5] != 0 || p[off + 6] != 0) return false;
    out->do_bit = p[off + 7] & 0x80;
    uint16_t rdlen = u16(off + 9);
    off += 11 + static_cast<size_t>(rdlen);
    if (off > wire.size()) return false;
  }
  return off == wire.size();  // trailing bytes: take the slow path
}

const ResponseCache::Entry* ResponseCache::Lookup(
    const ResponseCacheKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return &it->second->second;
}

void ResponseCache::Insert(ResponseCacheKey key, Bytes wire,
                           dns::Rcode rcode) {
  if (capacity_ == 0) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = Entry{std::move(wire), rcode};
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(std::move(key), Entry{std::move(wire), rcode});
  map_.emplace(lru_.front().first, lru_.begin());
}

Bytes ResponseCache::PatchedCopy(const Bytes& wire, uint16_t id, bool rd) {
  Bytes copy = wire;
  if (copy.size() >= 4) {
    copy[0] = static_cast<uint8_t>(id >> 8);
    copy[1] = static_cast<uint8_t>(id & 0xff);
    copy[2] = static_cast<uint8_t>((copy[2] & ~0x01) | (rd ? 0x01 : 0x00));
  }
  return copy;
}

}  // namespace ldp::server
