// Wire-level response cache for the authoritative engine: repeat queries
// skip zone lookup, message encoding, AND query decoding entirely. An entry
// stores the fully encoded response; a hit copies the buffer and patches
// the two query-dependent bytes (message ID, RD flag) into the copy. The
// query side never becomes a dns::Message either — ParseWireQuery pulls the
// handful of fields the key needs straight from the wire bytes.
//
// Keying has to cover everything else the encoded response depends on
// (see zone::BuildResponse): the split-horizon view matched by the query
// source, the raw question-section bytes (qname with the client's exact
// case — responses echo the question verbatim, so 0x20-style case mixing
// yields distinct entries — plus qtype and qclass), whether the query
// carried EDNS, the DO bit, and the effective size limit the response was
// encoded under. The advertised EDNS payload size is part of the key
// because the REFUSED path echoes it back verbatim.
//
// Anything shaped unusually — multiple questions, non-empty answer or
// authority sections, compression in the question, a non-OPT additional,
// EDNS version != 0, trailing bytes — fails the wire parse and takes the
// full decode path uncached, so the cache only ever sees queries whose
// response is a pure function of the key.
//
// Truncated responses (TC set) are never stored: whether a response
// truncates — and which records survive — depends on the exact limit, and
// a TC answer only tells the client to retry over TCP anyway, so caching
// it would trade correctness-sensitive bytes for nothing.
#ifndef LDPLAYER_SERVER_RESPONSE_CACHE_H
#define LDPLAYER_SERVER_RESPONSE_CACHE_H

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/bytes.h"
#include "dns/message.h"

namespace ldp::server {

// The cache-relevant fields of a plain single-question query, read directly
// from the wire (no dns::Message).
struct WireQueryInfo {
  uint16_t id = 0;
  bool rd = false;
  uint16_t qtype = 0;
  bool has_edns = false;
  bool do_bit = false;
  uint32_t advertised = 0;  // raw EDNS payload size (0 without EDNS)
  std::span<const uint8_t> question;  // raw question section bytes
};

// Parses a cache-eligible query: QR clear, opcode QUERY, exactly one
// question, no answer/authority records, at most one additional that must
// be a well-formed OPT, no compression, no trailing bytes. Returns false
// for anything else — those queries take the full decode path.
bool ParseWireQuery(std::span<const uint8_t> wire, WireQueryInfo* out);

struct ResponseCacheKey {
  // Identity of the matched split-horizon view (the ZoneSet pointer, stable
  // for the lifetime of the ViewTable). nullptr = no view matched.
  const void* view = nullptr;
  Bytes question;           // raw question section (qname, qtype, qclass)
  bool has_edns = false;
  bool do_bit = false;
  uint32_t advertised = 0;  // raw EDNS payload size (0 without EDNS)
  uint32_t limit = 0;       // effective encode limit (the size bucket)

  bool operator==(const ResponseCacheKey&) const = default;
};

struct ResponseCacheKeyHash {
  size_t operator()(const ResponseCacheKey& key) const {
    // FNV-1a over the question bytes, then mix in the scalar fields.
    size_t h = 0xcbf29ce484222325ull;
    for (uint8_t byte : key.question) {
      h = (h ^ byte) * 0x100000001b3ull;
    }
    auto mix = [&h](size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(reinterpret_cast<size_t>(key.view));
    mix((static_cast<size_t>(key.has_edns) << 1) |
        static_cast<size_t>(key.do_bit));
    mix((static_cast<size_t>(key.advertised) << 32) | key.limit);
    return h;
  }
};

// Capacity-bounded LRU map from key to encoded response. Not thread-safe:
// each server shard owns a private cache (no shared mutable hot state).
class ResponseCache {
 public:
  struct Entry {
    Bytes wire;             // encoded response; ID/RD bytes are stale
    dns::Rcode rcode;       // for stats accounting on hits
  };

  explicit ResponseCache(size_t capacity) : capacity_(capacity) {}

  // Returns the entry (promoted to most-recently-used) or nullptr.
  const Entry* Lookup(const ResponseCacheKey& key);

  // Inserts or refreshes; evicts the least-recently-used entry when full.
  void Insert(ResponseCacheKey key, Bytes wire, dns::Rcode rcode);

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }

  // Copies a cached wire response and patches the query-dependent bytes:
  // the 16-bit message ID and the RD flag (low bit of the flags byte).
  static Bytes PatchedCopy(const Bytes& wire, uint16_t id, bool rd);

 private:
  using LruList = std::list<std::pair<ResponseCacheKey, Entry>>;

  size_t capacity_;
  uint64_t evictions_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<ResponseCacheKey, LruList::iterator,
                     ResponseCacheKeyHash>
      map_;
};

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_RESPONSE_CACHE_H
