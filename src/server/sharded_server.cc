#include "server/sharded_server.h"

#include <algorithm>

namespace ldp::server {

namespace {

// Registers one polled counter per engine stat under shared names; the
// registry merges same-named entries across shards at snapshot time. The
// lambdas capture the engine shared_ptr, so they stay valid even if the
// server stops before the registry's last snapshot.
void RegisterEngineMetrics(stats::MetricsRegistry* metrics,
                           std::shared_ptr<AuthServerEngine> engine) {
  auto counter = [&](const char* name, uint64_t EngineStats::*field) {
    metrics->AddCounterFn(name,
                          [engine, field] { return engine->stats().*field; });
  };
  counter("server.queries", &EngineStats::queries);
  counter("server.responses", &EngineStats::responses);
  counter("server.dropped", &EngineStats::dropped);
  counter("server.refused", &EngineStats::refused);
  counter("server.nxdomain", &EngineStats::nxdomain);
  counter("server.truncated", &EngineStats::truncated);
  counter("server.response_bytes", &EngineStats::response_bytes);
  counter("server.cache_hits", &EngineStats::cache_hits);
  counter("server.cache_misses", &EngineStats::cache_misses);
  counter("server.cache_bypass", &EngineStats::cache_bypass);
  counter("server.cache_evictions", &EngineStats::cache_evictions);
  metrics->AddGaugeFn("server.cache_size", [engine] {
    return static_cast<int64_t>(engine->stats().cache_size);
  });
}

// Stream-lane counters, registered per shard under shared names (the
// registry merges at snapshot time). The shared_ptr captures keep the
// counters alive past server teardown, like the engine captures above.
void RegisterTcpMetrics(stats::MetricsRegistry* metrics,
                        std::shared_ptr<TcpCounters> counters, bool tls) {
  auto counter = [&](const char* name,
                     std::atomic<uint64_t> TcpCounters::*field) {
    metrics->AddCounterFn(name, [counters, field] {
      return (counters.get()->*field).load(std::memory_order_relaxed);
    });
  };
  counter("server.tcp_accepted", &TcpCounters::accepted);
  counter("server.tcp_accept_rejected", &TcpCounters::rejected);
  counter("server.tcp_idle_closed", &TcpCounters::idle_closed);
  metrics->AddGaugeFn("server.tcp_open", [counters] {
    return static_cast<int64_t>(
        counters->open.load(std::memory_order_relaxed));
  });
  if (tls) {
    counter("tls.handshakes", &TcpCounters::tls_handshakes);
    counter("tls.resumptions", &TcpCounters::tls_resumptions);
    counter("tls.aborts", &TcpCounters::tls_aborts);
    metrics->AddGaugeFn("tls.open_connections", [counters] {
      return static_cast<int64_t>(
          counters->tls_open.load(std::memory_order_relaxed));
    });
  }
}

}  // namespace

Result<std::unique_ptr<ShardedDnsServer>> ShardedDnsServer::Start(
    std::shared_ptr<const zone::ViewTable> views, const Config& config) {
  size_t n_shards = config.n_shards;
  if (n_shards == 0) {
    n_shards = std::max(1u, std::thread::hardware_concurrency());
  }

  auto sharded = std::unique_ptr<ShardedDnsServer>(new ShardedDnsServer);
  if (config.serve_tls) {
    // One context for every shard: one certificate, one ticket key, so a
    // session issued by any shard resumes on whichever shard the kernel
    // hashes the reconnect to.
    LDP_ASSIGN_OR_RETURN(sharded->tls_ctx_, net::TlsContext::NewServer());
  }
  Endpoint listen = config.listen;
  uint16_t tls_port = config.tls_port;
  for (size_t i = 0; i < n_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    LDP_ASSIGN_OR_RETURN(shard->loop, net::EventLoop::Create());
    shard->engine =
        std::make_shared<AuthServerEngine>(views, config.engine);

    SocketDnsServer::Config shard_config;
    shard_config.listen = listen;
    shard_config.serve_tcp = config.serve_tcp;
    shard_config.serve_tls = config.serve_tls;
    shard_config.tls_port = tls_port;
    shard_config.tls = sharded->tls_ctx_.get();
    shard_config.max_tcp_connections = config.max_tcp_connections;
    // With several shards the stream listeners must share their ports the
    // way the UDP sockets do.
    shard_config.tcp_reuse_port = n_shards > 1;
    shard_config.tcp_idle_timeout = config.tcp_idle_timeout;
    shard_config.datapath.kind = config.datapath;
    shard_config.datapath.udp.reuse_port = true;
    shard_config.datapath.udp.recv_buffer_bytes = config.udp_recv_buffer_bytes;
    shard_config.datapath.afpacket = config.afpacket;
    shard_config.datapath.afpacket.fanout =
        config.datapath == net::DatapathKind::kAfPacket && n_shards > 1;
    shard_config.datapath.metrics = config.metrics;
    if (config.metrics != nullptr) {
      RegisterEngineMetrics(config.metrics, shard->engine);
      shard->loop->SetMetrics(config.metrics->AddHistogram("server.loop_lag_ns"),
                              config.metrics->AddHistogram("server.epoll_batch"));
      shard_config.udp_batch_hist =
          config.metrics->AddHistogram("server.udp_batch");
      if (config.serve_tls) {
        shard_config.tls_handshake_hist =
            config.metrics->AddHistogram("tls.handshake_ns");
      }
    }
    LDP_ASSIGN_OR_RETURN(
        shard->server,
        SocketDnsServer::Start(*shard->loop, shard->engine, shard_config));
    if (config.metrics != nullptr &&
        (shard_config.serve_tcp || shard_config.serve_tls)) {
      // TCP frames dropped by backlog backpressure; the shared_ptr capture
      // keeps the counter alive past server teardown.
      config.metrics->AddCounterFn(
          "framing.stream_drops",
          [drops = shard->server->framing_drops()] {
            return drops->load(std::memory_order_relaxed);
          });
      RegisterTcpMetrics(config.metrics, shard->server->tcp_counters(),
                         config.serve_tls);
      if (config.serve_tls && i == 0) {
        // Process-wide OpenSSL live bytes (see TlsEnableMemoryAccounting);
        // registered once, not per shard — it is already a global sum.
        config.metrics->AddGaugeFn("tls.mem_bytes", [] {
          return static_cast<int64_t>(net::TlsAllocatedBytes());
        });
      }
    }
    if (i == 0) {
      // Shard 0 resolves port 0; the rest bind the concrete ports so
      // SO_REUSEPORT groups them onto the same addresses.
      listen = Endpoint{config.listen.addr, shard->server->endpoint().port};
      sharded->endpoint_ = shard->server->endpoint();
      if (config.serve_tls) {
        sharded->tls_endpoint_ = shard->server->tls_endpoint();
        tls_port = sharded->tls_endpoint_.port;
      }
    }
    sharded->shards_.push_back(std::move(shard));
  }

  // All shards bound: start the workers. Each loop is only touched by its
  // own thread from here on (Stop uses the thread-safe wakeup).
  for (auto& shard : sharded->shards_) {
    shard->thread = std::thread([loop = shard->loop.get()]() { loop->Run(); });
  }
  return sharded;
}

ShardedDnsServer::~ShardedDnsServer() { Stop(); }

void ShardedDnsServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->loop->RequestStop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

EngineStats ShardedDnsServer::TotalStats() const {
  EngineStats total;
  for (const auto& shard : shards_) total += shard->engine->stats();
  return total;
}

std::vector<EngineStats> ShardedDnsServer::ShardStats() const {
  std::vector<EngineStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->engine->stats());
  return stats;
}

TcpStats ShardedDnsServer::TotalTcpStats() const {
  TcpStats total;
  for (const auto& shard : shards_) total += shard->server->tcp_stats();
  return total;
}

std::vector<TcpStats> ShardedDnsServer::ShardTcpStats() const {
  std::vector<TcpStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->server->tcp_stats());
  return stats;
}

}  // namespace ldp::server
