#include "server/sharded_server.h"

#include <algorithm>

namespace ldp::server {

namespace {

// Registers one polled counter per engine stat under shared names; the
// registry merges same-named entries across shards at snapshot time. The
// lambdas capture the engine shared_ptr, so they stay valid even if the
// server stops before the registry's last snapshot.
void RegisterEngineMetrics(stats::MetricsRegistry* metrics,
                           std::shared_ptr<AuthServerEngine> engine) {
  auto counter = [&](const char* name, uint64_t EngineStats::*field) {
    metrics->AddCounterFn(name,
                          [engine, field] { return engine->stats().*field; });
  };
  counter("server.queries", &EngineStats::queries);
  counter("server.responses", &EngineStats::responses);
  counter("server.dropped", &EngineStats::dropped);
  counter("server.refused", &EngineStats::refused);
  counter("server.nxdomain", &EngineStats::nxdomain);
  counter("server.truncated", &EngineStats::truncated);
  counter("server.response_bytes", &EngineStats::response_bytes);
  counter("server.cache_hits", &EngineStats::cache_hits);
  counter("server.cache_misses", &EngineStats::cache_misses);
  counter("server.cache_bypass", &EngineStats::cache_bypass);
  counter("server.cache_evictions", &EngineStats::cache_evictions);
  metrics->AddGaugeFn("server.cache_size", [engine] {
    return static_cast<int64_t>(engine->stats().cache_size);
  });
}

}  // namespace

Result<std::unique_ptr<ShardedDnsServer>> ShardedDnsServer::Start(
    std::shared_ptr<const zone::ViewTable> views, const Config& config) {
  size_t n_shards = config.n_shards;
  if (n_shards == 0) {
    n_shards = std::max(1u, std::thread::hardware_concurrency());
  }

  auto sharded = std::unique_ptr<ShardedDnsServer>(new ShardedDnsServer);
  Endpoint listen = config.listen;
  for (size_t i = 0; i < n_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    LDP_ASSIGN_OR_RETURN(shard->loop, net::EventLoop::Create());
    shard->engine =
        std::make_shared<AuthServerEngine>(views, config.engine);

    SocketDnsServer::Config shard_config;
    shard_config.listen = listen;
    shard_config.serve_tcp = config.serve_tcp && i == 0;
    shard_config.tcp_idle_timeout = config.tcp_idle_timeout;
    shard_config.datapath.kind = config.datapath;
    shard_config.datapath.udp.reuse_port = true;
    shard_config.datapath.udp.recv_buffer_bytes = config.udp_recv_buffer_bytes;
    shard_config.datapath.afpacket = config.afpacket;
    shard_config.datapath.afpacket.fanout =
        config.datapath == net::DatapathKind::kAfPacket && n_shards > 1;
    shard_config.datapath.metrics = config.metrics;
    if (config.metrics != nullptr) {
      RegisterEngineMetrics(config.metrics, shard->engine);
      shard->loop->SetMetrics(config.metrics->AddHistogram("server.loop_lag_ns"),
                              config.metrics->AddHistogram("server.epoll_batch"));
      shard_config.udp_batch_hist =
          config.metrics->AddHistogram("server.udp_batch");
    }
    LDP_ASSIGN_OR_RETURN(
        shard->server,
        SocketDnsServer::Start(*shard->loop, shard->engine, shard_config));
    if (config.metrics != nullptr && shard_config.serve_tcp) {
      // TCP frames dropped by backlog backpressure; the shared_ptr capture
      // keeps the counter alive past server teardown.
      config.metrics->AddCounterFn(
          "framing.stream_drops",
          [drops = shard->server->framing_drops()] {
            return drops->load(std::memory_order_relaxed);
          });
    }
    if (i == 0) {
      // Shard 0 resolves port 0; the rest bind the concrete port so
      // SO_REUSEPORT groups them onto the same address.
      listen = Endpoint{config.listen.addr, shard->server->endpoint().port};
      sharded->endpoint_ = shard->server->endpoint();
    }
    sharded->shards_.push_back(std::move(shard));
  }

  // All shards bound: start the workers. Each loop is only touched by its
  // own thread from here on (Stop uses the thread-safe wakeup).
  for (auto& shard : sharded->shards_) {
    shard->thread = std::thread([loop = shard->loop.get()]() { loop->Run(); });
  }
  return sharded;
}

ShardedDnsServer::~ShardedDnsServer() { Stop(); }

void ShardedDnsServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->loop->RequestStop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

EngineStats ShardedDnsServer::TotalStats() const {
  EngineStats total;
  for (const auto& shard : shards_) total += shard->engine->stats();
  return total;
}

std::vector<EngineStats> ShardedDnsServer::ShardStats() const {
  std::vector<EngineStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->engine->stats());
  return stats;
}

}  // namespace ldp::server
