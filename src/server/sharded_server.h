// Multi-core UDP fast path: N worker shards, each a thread running its own
// EventLoop with its own SO_REUSEPORT-bound UDP socket and a private
// AuthServerEngine (own stats, own response cache) over a shared, immutable
// ViewTable. The kernel shards incoming datagrams across the sockets, so
// the hot path shares no mutable state between workers at all; aggregate
// counters come from per-shard snapshots (relaxed atomics, no locks).
//
// The stream lanes (TCP, and DNS-over-TLS with serve_tls) shard the same
// way: every shard binds its own SO_REUSEPORT listener and the kernel
// spreads incoming connections across shards by 4-tuple hash, so the
// mass-connection workloads of the all-TCP/all-TLS root study (figs 13-15)
// use every core. The TLS context (certificate, ticket key) is shared.
#ifndef LDPLAYER_SERVER_SHARDED_SERVER_H
#define LDPLAYER_SERVER_SHARDED_SERVER_H

#include <memory>
#include <thread>
#include <vector>

#include "server/socket_server.h"

namespace ldp::server {

class ShardedDnsServer {
 public:
  struct Config {
    Endpoint listen;        // port 0 picks an ephemeral port (tests)
    size_t n_shards = 0;    // 0 = hardware_concurrency
    bool serve_tcp = true;  // every shard accepts (SO_REUSEPORT listeners)
    // DNS-over-TLS listeners on every shard; requires OpenSSL in the build
    // (Start fails otherwise — probe with net::TlsAvailable()). tls_port 0
    // picks an ephemeral port, resolved via tls_endpoint().
    bool serve_tls = false;
    uint16_t tls_port = 0;
    // Per-shard cap on concurrent stream connections (0 = unbounded); see
    // SocketDnsServer::Config::max_tcp_connections for the semantics.
    size_t max_tcp_connections = 0;
    NanoDuration tcp_idle_timeout = Seconds(20);
    // Per-shard UDP SO_RCVBUF (0 = kernel default): the fast path raises
    // it so query bursts queue in the kernel while a worker drains a batch.
    int udp_recv_buffer_bytes = 0;
    // Datagram transport per shard: epoll kernel sockets (default) or
    // AF_PACKET rings. With >1 shard on afpacket, the shards join one
    // PACKET_FANOUT group keyed by the bound port, so the kernel hashes
    // flows across rings the way SO_REUSEPORT shards kernel sockets.
    net::DatapathKind datapath = net::DatapathKind::kEpoll;
    net::AfPacketOptions afpacket;  // used when datapath == kAfPacket
    EngineOptions engine;   // per-shard engine options (response cache)
    // Optional live-metrics registry (must outlive the server). Each shard
    // registers polled counters over its engine's existing relaxed-atomic
    // stats (zero added hot-path cost) plus loop-lag / epoll-batch /
    // udp-batch histograms on its own EventLoop.
    stats::MetricsRegistry* metrics = nullptr;
  };

  // Binds every shard (resolving an ephemeral port via shard 0), then
  // starts one worker thread per shard. Sockets and loops are constructed
  // on the calling thread; after Start returns, each loop is touched only
  // by its own worker.
  static Result<std::unique_ptr<ShardedDnsServer>> Start(
      std::shared_ptr<const zone::ViewTable> views, const Config& config);

  ~ShardedDnsServer();  // Stop() + join

  // Stops every worker loop (thread-safe wakeup) and joins. Idempotent.
  void Stop();

  // The actually-bound endpoint (same for all shards).
  Endpoint endpoint() const { return endpoint_; }
  // Bound DoT endpoint (same for all shards); meaningful with serve_tls.
  Endpoint tls_endpoint() const { return tls_endpoint_; }
  size_t n_shards() const { return shards_.size(); }

  // Lock-free aggregate of the per-shard counter snapshots.
  EngineStats TotalStats() const;
  std::vector<EngineStats> ShardStats() const;
  // Per-shard stream-connection counters; the cross-shard accept
  // distribution test and the fig13-15 bench assert every entry is nonzero.
  TcpStats TotalTcpStats() const;
  std::vector<TcpStats> ShardTcpStats() const;

 private:
  ShardedDnsServer() = default;

  struct Shard {
    std::unique_ptr<net::EventLoop> loop;
    std::shared_ptr<AuthServerEngine> engine;
    std::unique_ptr<SocketDnsServer> server;
    std::thread thread;
  };

  Endpoint endpoint_;
  Endpoint tls_endpoint_;
  // Shared across shards; must outlive every shard's SocketDnsServer.
  std::unique_ptr<net::TlsContext> tls_ctx_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool stopped_ = false;
};

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_SHARDED_SERVER_H
