#include "server/sim_server.h"

#include "common/log.h"
#include "dns/framing.h"

namespace ldp::server {

SimDnsServer::SimDnsServer(sim::SimNetwork& net,
                           std::shared_ptr<AuthServerEngine> engine,
                           const Config& config)
    : net_(net),
      engine_(std::move(engine)),
      config_(config),
      meters_(config.resources),
      tcp_stack_(net, config.address) {
  net_.AttachMeters(config_.address, &meters_);
}

Status SimDnsServer::Start() {
  LDP_RETURN_IF_ERROR(net_.ListenUdp(
      Endpoint{config_.address, config_.udp_tcp_port},
      [this](const sim::SimPacket& packet) { OnUdp(packet); }));
  if (config_.serve_tcp) {
    LDP_RETURN_IF_ERROR(tcp_stack_.Listen(
        config_.udp_tcp_port,
        [this](sim::SimTcpConnection&) { return MakeStreamCallbacks(); },
        /*tls=*/false, config_.tcp_idle_timeout));
  }
  if (config_.serve_tls) {
    LDP_RETURN_IF_ERROR(tcp_stack_.Listen(
        config_.tls_port,
        [this](sim::SimTcpConnection&) { return MakeStreamCallbacks(); },
        /*tls=*/true, config_.tcp_idle_timeout));
  }
  return Status::Ok();
}

void SimDnsServer::OnUdp(const sim::SimPacket& packet) {
  meters_.AddCpu(meters_.model().udp_query_cpu);
  auto response =
      engine_->HandleWire(packet.payload, packet.src, /*udp_limit=*/65535);
  if (!response.ok()) {
    LDP_DEBUG << "dropped undecodable UDP query from "
              << packet.src.ToString();
    return;
  }
  meters_.OnQueryServed();
  net_.SendUdp(Endpoint{packet.dst, packet.dst_port},
               Endpoint{packet.src, packet.src_port}, std::move(*response));
}

sim::ConnCallbacks SimDnsServer::MakeStreamCallbacks() {
  sim::ConnCallbacks callbacks;
  callbacks.on_established = [](sim::SimTcpConnection& conn) {
    conn.set_user_data(std::make_shared<dns::StreamAssembler>());
  };
  callbacks.on_data = [this](sim::SimTcpConnection& conn,
                             std::span<const uint8_t> data) {
    auto* assembler = conn.user_data<dns::StreamAssembler>();
    if (assembler == nullptr) {
      // Data can race establishment when the client pipelines its first
      // query with the handshake tail; create the assembler on demand.
      conn.set_user_data(std::make_shared<dns::StreamAssembler>());
      assembler = conn.user_data<dns::StreamAssembler>();
    }
    if (!assembler->Feed(data).ok()) {
      conn.Close();
      return;
    }
    while (auto wire = assembler->NextMessage()) {
      meters_.AddCpu(meters_.model().tcp_query_cpu);
      auto responses = engine_->HandleStream(*wire, conn.remote().addr);
      if (!responses.ok()) continue;
      meters_.OnQueryServed();
      for (const auto& response : *responses) {
        auto framed = dns::FrameMessage(response);
        if (!framed.ok()) continue;
        conn.Send(*framed);
      }
    }
  };
  return callbacks;
}

std::unique_ptr<SimDnsServer> MakeAuthoritativeNode(sim::SimNetwork& net,
                                                    IpAddress address,
                                                    zone::ZoneSet zones) {
  zone::ViewTable views;
  views.SetDefaultView(std::move(zones));
  auto engine = std::make_shared<AuthServerEngine>(std::move(views));
  SimDnsServer::Config config;
  config.address = address;
  auto server = std::make_unique<SimDnsServer>(net, std::move(engine), config);
  auto status = server->Start();
  if (!status.ok()) {
    LDP_ERROR << "authoritative node failed to start: "
              << status.error().ToString();
    return nullptr;
  }
  return server;
}

}  // namespace ldp::server
