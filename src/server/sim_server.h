// Authoritative server bound to the simulator: UDP, TCP, and TLS listeners
// feeding one AuthServerEngine, with per-connection stream reassembly, the
// idle-timeout knob of Figs 11/13/14, and resource metering.
#ifndef LDPLAYER_SERVER_SIM_SERVER_H
#define LDPLAYER_SERVER_SIM_SERVER_H

#include <memory>

#include "server/engine.h"
#include "sim/meters.h"
#include "sim/network.h"
#include "sim/tcp.h"

namespace ldp::server {

class SimDnsServer {
 public:
  struct Config {
    IpAddress address;
    uint16_t udp_tcp_port = 53;
    uint16_t tls_port = 853;
    bool serve_tcp = true;
    bool serve_tls = true;
    // Idle-connection close timer (0 = never close) — the experiments
    // sweep this from 5 s to 40 s.
    NanoDuration tcp_idle_timeout = Seconds(20);
    sim::ResourceModel resources;
  };

  // The engine is shared so several listener nodes can front one zone set
  // (the meta-DNS-server is "a single authoritative server instance").
  SimDnsServer(sim::SimNetwork& net, std::shared_ptr<AuthServerEngine> engine,
               const Config& config);

  // Starts the listeners.
  Status Start();

  sim::NodeMeters& meters() { return meters_; }
  const AuthServerEngine& engine() const { return *engine_; }
  AuthServerEngine& engine() { return *engine_; }
  const Config& config() const { return config_; }

 private:
  void OnUdp(const sim::SimPacket& packet);
  sim::ConnCallbacks MakeStreamCallbacks();

  sim::SimNetwork& net_;
  std::shared_ptr<AuthServerEngine> engine_;
  Config config_;
  sim::NodeMeters meters_;
  sim::SimTcpStack tcp_stack_;
};

// Convenience: a single-view authoritative node serving `zones` to anyone —
// the building block of the simulated Internet used for zone construction.
std::unique_ptr<SimDnsServer> MakeAuthoritativeNode(sim::SimNetwork& net,
                                                    IpAddress address,
                                                    zone::ZoneSet zones);

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_SIM_SERVER_H
