#include "server/socket_server.h"

#include "common/log.h"

namespace ldp::server {

Result<std::unique_ptr<SocketDnsServer>> SocketDnsServer::Start(
    net::EventLoop& loop, std::shared_ptr<AuthServerEngine> engine,
    const Config& config) {
  if (config.serve_tls && config.tls == nullptr) {
    return Error(ErrorCode::kInvalidArgument,
                 "serve_tls requires a server TlsContext");
  }
  auto server = std::unique_ptr<SocketDnsServer>(
      new SocketDnsServer(loop, std::move(engine), config));
  SocketDnsServer* raw = server.get();

  LDP_ASSIGN_OR_RETURN(
      server->udp_,
      net::DatagramPath::Open(
          loop, config.listen,
          [raw](std::span<const net::DatagramPath::RecvItem> batch) {
            raw->OnUdpBatch(batch);
          },
          config.datapath));
  net::TcpListenOptions listen_options;
  listen_options.reuse_port = config.tcp_reuse_port;
  if (config.serve_tcp) {
    // TCP binds the same port the UDP socket got (matters for port 0).
    Endpoint tcp_endpoint{config.listen.addr, server->udp_->local().port};
    LDP_ASSIGN_OR_RETURN(
        server->listener_,
        net::TcpListener::Listen(
            loop, tcp_endpoint,
            [raw](std::unique_ptr<net::TcpConnection> conn) {
              raw->OnAccept(std::move(conn), /*tls=*/false);
            },
            listen_options));
  }
  if (config.serve_tls) {
    Endpoint tls_endpoint{config.listen.addr, config.tls_port};
    LDP_ASSIGN_OR_RETURN(
        server->tls_listener_,
        net::TcpListener::Listen(
            loop, tls_endpoint,
            [raw](std::unique_ptr<net::TcpConnection> conn) {
              raw->OnAccept(std::move(conn), /*tls=*/true);
            },
            listen_options));
  }
  return server;
}

TcpStats SocketDnsServer::tcp_stats() const {
  TcpStats stats;
  stats.accepted = tcp_counters_->accepted.load(std::memory_order_relaxed);
  stats.rejected = tcp_counters_->rejected.load(std::memory_order_relaxed);
  stats.idle_closed =
      tcp_counters_->idle_closed.load(std::memory_order_relaxed);
  stats.open = tcp_counters_->open.load(std::memory_order_relaxed);
  stats.tls_open = tcp_counters_->tls_open.load(std::memory_order_relaxed);
  stats.tls_handshakes =
      tcp_counters_->tls_handshakes.load(std::memory_order_relaxed);
  stats.tls_resumptions =
      tcp_counters_->tls_resumptions.load(std::memory_order_relaxed);
  stats.tls_aborts =
      tcp_counters_->tls_aborts.load(std::memory_order_relaxed);
  return stats;
}

void SocketDnsServer::OnUdpBatch(
    std::span<const net::DatagramPath::RecvItem> batch) {
  // Serve the whole readiness batch, then flush every reply with one
  // sendmmsg — the syscall cost amortizes across the batch both ways.
  if (config_.udp_batch_hist != nullptr && !batch.empty()) {
    config_.udp_batch_hist->Record(batch.size());
  }
  reply_bufs_.clear();
  reply_items_.clear();
  for (const auto& datagram : batch) {
    auto response = engine_->HandleWire(datagram.payload, datagram.from.addr,
                                        /*udp_limit=*/65535);
    if (!response.ok()) continue;  // undecodable: dropped
    reply_bufs_.push_back(std::move(*response));
    // Replies leave from the address the query targeted — identical to
    // local() on a concretely-bound path, and the only correct source on
    // a wildcard afpacket ring.
    reply_items_.push_back(net::DatagramPath::SendItem{
        reply_bufs_.back(), datagram.from, datagram.to});
  }
  size_t sent = udp_->SendBatch(reply_items_);
  if (sent < reply_items_.size()) {
    LDP_DEBUG << "UDP reply batch: kernel took " << sent << " of "
              << reply_items_.size() << " (send buffer full)";
  }
}

void SocketDnsServer::OnAccept(std::unique_ptr<net::TcpConnection> conn,
                               bool tls) {
  if (config_.max_tcp_connections > 0 &&
      conns_.size() >= config_.max_tcp_connections) {
    // At the cap: close this connection (the client sees an immediate EOF
    // and can back off) and stop accepting until evictions make room.
    tcp_counters_->rejected.fetch_add(1, std::memory_order_relaxed);
    PauseAccept();
    return;  // `conn` destroyed: active close
  }

  net::StreamConn* key = nullptr;
  if (tls) {
    auto tls_conn = net::TlsConnection::Accept(*config_.tls, std::move(conn));
    if (!tls_conn.ok()) {
      tcp_counters_->tls_aborts.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    key = tls_conn->get();
    ConnState& state = conns_[key];
    state.conn = std::move(*tls_conn);
    state.tls = true;
    state.last_activity = MonotonicNow();
    state.assembler.set_limits(config_.stream_limits);
    state.assembler.set_drop_counter(framing_drops_.get());
    auto status = static_cast<net::TlsConnection*>(key)->Start(
        [this, key](Status ready) { OnTlsReady(key, std::move(ready)); },
        [this, key](std::span<const uint8_t> data) { OnTcpData(key, data); },
        [this, key](Status) { CloseConn(key); });
    if (!status.ok()) {
      tcp_counters_->tls_aborts.fetch_add(1, std::memory_order_relaxed);
      conns_.erase(key);
      return;
    }
    tcp_counters_->tls_open.fetch_add(1, std::memory_order_relaxed);
  } else {
    key = conn.get();
    ConnState& state = conns_[key];
    state.conn = std::move(conn);
    state.last_activity = MonotonicNow();
    state.assembler.set_limits(config_.stream_limits);
    state.assembler.set_drop_counter(framing_drops_.get());
    auto status = net::TcpListener::AdoptHandlers(
        static_cast<net::TcpConnection&>(*key),
        [this, key](std::span<const uint8_t> data) { OnTcpData(key, data); },
        [this, key](Status) { CloseConn(key); });
    if (!status.ok()) {
      conns_.erase(key);
      return;
    }
  }
  tcp_counters_->accepted.fetch_add(1, std::memory_order_relaxed);
  tcp_counters_->open.store(conns_.size(), std::memory_order_relaxed);
  // The idle timer also reaps connections whose TLS handshake never
  // completes (last_activity only advances on decrypted query bytes).
  if (config_.tcp_idle_timeout > 0) ArmIdleTimer(key);
}

void SocketDnsServer::OnTlsReady(net::StreamConn* key, Status status) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  if (!status.ok()) {
    tcp_counters_->tls_aborts.fetch_add(1, std::memory_order_relaxed);
    CloseConn(key);
    return;
  }
  auto* tls = static_cast<net::TlsConnection*>(key);
  tcp_counters_->tls_handshakes.fetch_add(1, std::memory_order_relaxed);
  if (tls->session_reused()) {
    tcp_counters_->tls_resumptions.fetch_add(1, std::memory_order_relaxed);
  }
  if (config_.tls_handshake_hist != nullptr) {
    config_.tls_handshake_hist->Record(
        static_cast<uint64_t>(tls->handshake_duration()));
  }
  it->second.last_activity = MonotonicNow();
}

void SocketDnsServer::OnTcpData(net::StreamConn* key,
                                std::span<const uint8_t> data) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  state.last_activity = MonotonicNow();

  if (!state.assembler.Feed(data).ok()) {
    CloseConn(key);
    return;
  }
  while (auto wire = state.assembler.NextMessage()) {
    auto responses = engine_->HandleStream(*wire, key->remote().addr);
    if (!responses.ok()) continue;
    for (const auto& response : *responses) {
      auto framed = dns::FrameMessage(response);
      if (!framed.ok()) continue;
      auto status = key->Send(*framed);
      if (!status.ok()) {
        CloseConn(key);
        return;
      }
    }
  }
}

void SocketDnsServer::ArmIdleTimer(net::StreamConn* key) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  it->second.idle_timer = loop_.ScheduleAfter(
      config_.tcp_idle_timeout, [this, key]() {
        auto conn_it = conns_.find(key);
        if (conn_it == conns_.end()) return;
        NanoTime deadline =
            conn_it->second.last_activity + config_.tcp_idle_timeout;
        if (MonotonicNow() >= deadline) {
          tcp_counters_->idle_closed.fetch_add(1, std::memory_order_relaxed);
          CloseConn(key);
        } else {
          ArmIdleTimer(key);  // activity since arming: re-check later
        }
      });
}

void SocketDnsServer::CloseConn(net::StreamConn* key) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  RemoveConn(it);  // destroys the connection (active close)
}

void SocketDnsServer::RemoveConn(
    std::unordered_map<net::StreamConn*, ConnState>::iterator it) {
  it->second.idle_timer.Cancel();
  if (it->second.tls) {
    tcp_counters_->tls_open.fetch_sub(1, std::memory_order_relaxed);
  }
  // Detach first and let `node` destroy the connection after the counters
  // are updated: destroying it closes the socket, and a client that sees
  // that EOF must not be able to read a stale `open` gauge.
  auto node = conns_.extract(it);
  tcp_counters_->open.store(conns_.size(), std::memory_order_relaxed);
  MaybeResumeAccept();
}

void SocketDnsServer::PauseAccept() {
  if (listener_ != nullptr) listener_->Pause();
  if (tls_listener_ != nullptr) tls_listener_->Pause();
}

void SocketDnsServer::MaybeResumeAccept() {
  if (config_.max_tcp_connections == 0) return;
  if (conns_.size() >= config_.max_tcp_connections) return;
  // Resume is a no-op on a listener that never paused.
  if (listener_ != nullptr) listener_->Resume();
  if (tls_listener_ != nullptr) tls_listener_->Resume();
}

}  // namespace ldp::server
