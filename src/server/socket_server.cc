#include "server/socket_server.h"

#include "common/log.h"

namespace ldp::server {

Result<std::unique_ptr<SocketDnsServer>> SocketDnsServer::Start(
    net::EventLoop& loop, std::shared_ptr<AuthServerEngine> engine,
    const Config& config) {
  auto server = std::unique_ptr<SocketDnsServer>(
      new SocketDnsServer(loop, std::move(engine), config));
  SocketDnsServer* raw = server.get();

  LDP_ASSIGN_OR_RETURN(
      server->udp_,
      net::DatagramPath::Open(
          loop, config.listen,
          [raw](std::span<const net::DatagramPath::RecvItem> batch) {
            raw->OnUdpBatch(batch);
          },
          config.datapath));
  if (config.serve_tcp) {
    // TCP binds the same port the UDP socket got (matters for port 0).
    Endpoint tcp_endpoint{config.listen.addr, server->udp_->local().port};
    LDP_ASSIGN_OR_RETURN(
        server->listener_,
        net::TcpListener::Listen(
            loop, tcp_endpoint,
            [raw](std::unique_ptr<net::TcpConnection> conn) {
              raw->OnAccept(std::move(conn));
            }));
  }
  return server;
}

void SocketDnsServer::OnUdpBatch(
    std::span<const net::DatagramPath::RecvItem> batch) {
  // Serve the whole readiness batch, then flush every reply with one
  // sendmmsg — the syscall cost amortizes across the batch both ways.
  if (config_.udp_batch_hist != nullptr && !batch.empty()) {
    config_.udp_batch_hist->Record(batch.size());
  }
  reply_bufs_.clear();
  reply_items_.clear();
  for (const auto& datagram : batch) {
    auto response = engine_->HandleWire(datagram.payload, datagram.from.addr,
                                        /*udp_limit=*/65535);
    if (!response.ok()) continue;  // undecodable: dropped
    reply_bufs_.push_back(std::move(*response));
    // Replies leave from the address the query targeted — identical to
    // local() on a concretely-bound path, and the only correct source on
    // a wildcard afpacket ring.
    reply_items_.push_back(net::DatagramPath::SendItem{
        reply_bufs_.back(), datagram.from, datagram.to});
  }
  size_t sent = udp_->SendBatch(reply_items_);
  if (sent < reply_items_.size()) {
    LDP_DEBUG << "UDP reply batch: kernel took " << sent << " of "
              << reply_items_.size() << " (send buffer full)";
  }
}

void SocketDnsServer::OnAccept(std::unique_ptr<net::TcpConnection> conn) {
  net::TcpConnection* key = conn.get();
  ConnState& state = conns_[key];
  state.conn = std::move(conn);
  state.last_activity = MonotonicNow();
  state.assembler.set_limits(config_.stream_limits);
  state.assembler.set_drop_counter(framing_drops_.get());

  auto status = net::TcpListener::AdoptHandlers(
      *key,
      [this, key](std::span<const uint8_t> data) { OnTcpData(key, data); },
      [this, key](Status) {
        auto it = conns_.find(key);
        if (it != conns_.end()) {
          it->second.idle_timer.Cancel();
          conns_.erase(it);
        }
      });
  if (!status.ok()) {
    conns_.erase(key);
    return;
  }
  if (config_.tcp_idle_timeout > 0) ArmIdleTimer(key);
}

void SocketDnsServer::OnTcpData(net::TcpConnection* key,
                                std::span<const uint8_t> data) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  ConnState& state = it->second;
  state.last_activity = MonotonicNow();

  if (!state.assembler.Feed(data).ok()) {
    CloseConn(key);
    return;
  }
  while (auto wire = state.assembler.NextMessage()) {
    auto responses = engine_->HandleStream(*wire, key->remote().addr);
    if (!responses.ok()) continue;
    for (const auto& response : *responses) {
      auto framed = dns::FrameMessage(response);
      if (!framed.ok()) continue;
      auto status = key->Send(*framed);
      if (!status.ok()) {
        CloseConn(key);
        return;
      }
    }
  }
}

void SocketDnsServer::ArmIdleTimer(net::TcpConnection* key) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  it->second.idle_timer = loop_.ScheduleAfter(
      config_.tcp_idle_timeout, [this, key]() {
        auto conn_it = conns_.find(key);
        if (conn_it == conns_.end()) return;
        NanoTime deadline =
            conn_it->second.last_activity + config_.tcp_idle_timeout;
        if (MonotonicNow() >= deadline) {
          CloseConn(key);
        } else {
          ArmIdleTimer(key);  // activity since arming: re-check later
        }
      });
}

void SocketDnsServer::CloseConn(net::TcpConnection* key) {
  auto it = conns_.find(key);
  if (it == conns_.end()) return;
  it->second.idle_timer.Cancel();
  conns_.erase(it);  // destroys the connection (active close)
}

}  // namespace ldp::server
