// Authoritative server on real sockets (UDP + TCP over loopback): the
// server side of the replay-fidelity experiments (§4), sharing the engine
// with the simulated binding.
#ifndef LDPLAYER_SERVER_SOCKET_SERVER_H
#define LDPLAYER_SERVER_SOCKET_SERVER_H

#include <atomic>
#include <memory>
#include <unordered_map>

#include "dns/framing.h"
#include "net/datapath.h"
#include "net/sockets.h"
#include "server/engine.h"
#include "stats/metrics.h"

namespace ldp::server {

class SocketDnsServer {
 public:
  struct Config {
    Endpoint listen;  // port 0 picks an ephemeral port (tests)
    bool serve_tcp = true;
    NanoDuration tcp_idle_timeout = Seconds(20);
    // How query bytes reach the engine: backend kind (epoll kernel sockets
    // by default, AF_PACKET rings with --datapath=afpacket), kernel-socket
    // options (reuse_port lets sibling shards share the port), ring
    // geometry, and the registry for datapath.* instruments. TCP always
    // stays on kernel sockets.
    net::DatapathOptions datapath;
    // Optional: records datagrams per readiness batch. Must outlive the
    // server (owned by a MetricsRegistry).
    stats::LogHistogram* udp_batch_hist = nullptr;
    // Backpressure bounds applied to every TCP connection's reassembly
    // backlog; drops are visible via framing_drops().
    dns::StreamAssembler::Limits stream_limits;
  };

  static Result<std::unique_ptr<SocketDnsServer>> Start(
      net::EventLoop& loop, std::shared_ptr<AuthServerEngine> engine,
      const Config& config);

  // The actually-bound endpoint (resolves ephemeral ports).
  Endpoint endpoint() const { return udp_->local(); }
  const AuthServerEngine& engine() const { return *engine_; }
  size_t open_tcp_connections() const { return conns_.size(); }
  // Complete TCP frames dropped because a connection's ready backlog was
  // full. Shared so a metrics registry lambda can outlive the server.
  std::shared_ptr<const std::atomic<uint64_t>> framing_drops() const {
    return framing_drops_;
  }

 private:
  SocketDnsServer(net::EventLoop& loop,
                  std::shared_ptr<AuthServerEngine> engine, Config config)
      : loop_(loop), engine_(std::move(engine)), config_(config) {}

  struct ConnState {
    std::unique_ptr<net::TcpConnection> conn;
    dns::StreamAssembler assembler;
    NanoTime last_activity = 0;
    net::TimerHandle idle_timer;
  };

  void OnUdpBatch(std::span<const net::DatagramPath::RecvItem> batch);
  void OnAccept(std::unique_ptr<net::TcpConnection> conn);
  void OnTcpData(net::TcpConnection* key, std::span<const uint8_t> data);
  void ArmIdleTimer(net::TcpConnection* key);
  void CloseConn(net::TcpConnection* key);

  net::EventLoop& loop_;
  std::shared_ptr<AuthServerEngine> engine_;
  Config config_;
  std::shared_ptr<std::atomic<uint64_t>> framing_drops_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  std::unique_ptr<net::DatagramPath> udp_;
  std::unique_ptr<net::TcpListener> listener_;
  std::unordered_map<net::TcpConnection*, ConnState> conns_;
  // Per-batch reply staging, reused across readiness events: the encoded
  // responses (kept alive through the SendBatch call) and their addresses.
  std::vector<Bytes> reply_bufs_;
  std::vector<net::DatagramPath::SendItem> reply_items_;
};

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_SOCKET_SERVER_H
