// Authoritative server on real sockets (UDP + TCP + DoT over loopback): the
// server side of the replay-fidelity experiments (§4), sharing the engine
// with the simulated binding.
#ifndef LDPLAYER_SERVER_SOCKET_SERVER_H
#define LDPLAYER_SERVER_SOCKET_SERVER_H

#include <atomic>
#include <memory>
#include <unordered_map>

#include "dns/framing.h"
#include "net/datapath.h"
#include "net/sockets.h"
#include "net/tls.h"
#include "server/engine.h"
#include "stats/metrics.h"

namespace ldp::server {

// Per-server connection-lane counters (relaxed atomics, written only from
// the server's loop thread, read from anywhere). Held in a shared_ptr so
// metrics-registry lambdas can outlive the server.
struct TcpCounters {
  std::atomic<uint64_t> accepted{0};   // admitted connections (TCP + TLS)
  std::atomic<uint64_t> rejected{0};   // closed at max_tcp_connections
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> open{0};       // current connections (gauge)
  std::atomic<uint64_t> tls_open{0};   // current TLS connections (gauge)
  std::atomic<uint64_t> tls_handshakes{0};   // completed handshakes
  std::atomic<uint64_t> tls_resumptions{0};  // of which session-resumed
  std::atomic<uint64_t> tls_aborts{0};       // failed/aborted handshakes
};

// Plain-value snapshot of TcpCounters, summable across shards.
struct TcpStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t idle_closed = 0;
  uint64_t open = 0;
  uint64_t tls_open = 0;
  uint64_t tls_handshakes = 0;
  uint64_t tls_resumptions = 0;
  uint64_t tls_aborts = 0;

  TcpStats& operator+=(const TcpStats& other) {
    accepted += other.accepted;
    rejected += other.rejected;
    idle_closed += other.idle_closed;
    open += other.open;
    tls_open += other.tls_open;
    tls_handshakes += other.tls_handshakes;
    tls_resumptions += other.tls_resumptions;
    tls_aborts += other.tls_aborts;
    return *this;
  }
};

class SocketDnsServer {
 public:
  struct Config {
    Endpoint listen;  // port 0 picks an ephemeral port (tests)
    bool serve_tcp = true;
    // DNS-over-TLS listener (requires `tls`); tls_port 0 picks an ephemeral
    // port, resolved via tls_endpoint().
    bool serve_tls = false;
    uint16_t tls_port = 0;
    // Shared server TLS context (one per process: SSL_CTX is internally
    // locked, and sharing it means one certificate and one ticket key for
    // every shard). Must outlive the server.
    net::TlsContext* tls = nullptr;
    NanoDuration tcp_idle_timeout = Seconds(20);
    // Upper bound on concurrent stream connections (TCP + TLS together);
    // 0 = unbounded. At the cap, newly accepted connections are closed
    // immediately (counted in TcpCounters::rejected) and both listeners
    // pause, leaving further SYNs in the kernel backlog until idle eviction
    // or client closes make room — the flow-table bounding discipline
    // applied to the connection map.
    size_t max_tcp_connections = 0;
    // SO_REUSEPORT on the stream listeners, so sibling shards can bind the
    // same port and the kernel spreads accepts across them.
    bool tcp_reuse_port = false;
    // How query bytes reach the engine: backend kind (epoll kernel sockets
    // by default, AF_PACKET rings with --datapath=afpacket), kernel-socket
    // options (reuse_port lets sibling shards share the port), ring
    // geometry, and the registry for datapath.* instruments. TCP always
    // stays on kernel sockets.
    net::DatapathOptions datapath;
    // Optional: records datagrams per readiness batch. Must outlive the
    // server (owned by a MetricsRegistry).
    stats::LogHistogram* udp_batch_hist = nullptr;
    // Optional: records TLS handshake wall time in ns. Must outlive the
    // server (owned by a MetricsRegistry).
    stats::LogHistogram* tls_handshake_hist = nullptr;
    // Backpressure bounds applied to every TCP connection's reassembly
    // backlog; drops are visible via framing_drops().
    dns::StreamAssembler::Limits stream_limits;
  };

  static Result<std::unique_ptr<SocketDnsServer>> Start(
      net::EventLoop& loop, std::shared_ptr<AuthServerEngine> engine,
      const Config& config);

  // The actually-bound endpoint (resolves ephemeral ports).
  Endpoint endpoint() const { return udp_->local(); }
  // Bound DoT endpoint; only meaningful with serve_tls.
  Endpoint tls_endpoint() const {
    return tls_listener_ != nullptr ? tls_listener_->local() : Endpoint{};
  }
  const AuthServerEngine& engine() const { return *engine_; }
  size_t open_tcp_connections() const { return conns_.size(); }
  // Complete TCP frames dropped because a connection's ready backlog was
  // full. Shared so a metrics registry lambda can outlive the server.
  std::shared_ptr<const std::atomic<uint64_t>> framing_drops() const {
    return framing_drops_;
  }
  std::shared_ptr<TcpCounters> tcp_counters() const { return tcp_counters_; }
  TcpStats tcp_stats() const;

 private:
  SocketDnsServer(net::EventLoop& loop,
                  std::shared_ptr<AuthServerEngine> engine, Config config)
      : loop_(loop), engine_(std::move(engine)), config_(config) {}

  struct ConnState {
    std::unique_ptr<net::StreamConn> conn;
    bool tls = false;
    dns::StreamAssembler assembler;
    NanoTime last_activity = 0;
    net::TimerHandle idle_timer;
  };

  void OnUdpBatch(std::span<const net::DatagramPath::RecvItem> batch);
  void OnAccept(std::unique_ptr<net::TcpConnection> conn, bool tls);
  void OnTlsReady(net::StreamConn* key, Status status);
  void OnTcpData(net::StreamConn* key, std::span<const uint8_t> data);
  void ArmIdleTimer(net::StreamConn* key);
  void CloseConn(net::StreamConn* key);
  // Erase + connection-gauge upkeep + listener resume below the cap.
  void RemoveConn(std::unordered_map<net::StreamConn*, ConnState>::iterator it);
  void PauseAccept();
  void MaybeResumeAccept();

  net::EventLoop& loop_;
  std::shared_ptr<AuthServerEngine> engine_;
  Config config_;
  std::shared_ptr<std::atomic<uint64_t>> framing_drops_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  std::shared_ptr<TcpCounters> tcp_counters_ =
      std::make_shared<TcpCounters>();
  std::unique_ptr<net::DatagramPath> udp_;
  std::unique_ptr<net::TcpListener> listener_;
  std::unique_ptr<net::TcpListener> tls_listener_;
  std::unordered_map<net::StreamConn*, ConnState> conns_;
  // Per-batch reply staging, reused across readiness events: the encoded
  // responses (kept alive through the SendBatch call) and their addresses.
  std::vector<Bytes> reply_bufs_;
  std::vector<net::DatagramPath::SendItem> reply_items_;
};

}  // namespace ldp::server

#endif  // LDPLAYER_SERVER_SOCKET_SERVER_H
