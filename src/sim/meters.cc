#include "sim/meters.h"

#include <algorithm>

namespace ldp::sim {

void NodeMeters::OnConnEstablished() { ++established_; }

void NodeMeters::OnTlsEstablished() { ++tls_sessions_; }

void NodeMeters::OnConnClosed(bool tls_active, bool enters_time_wait) {
  if (established_ > 0) --established_;
  if (tls_active && tls_sessions_ > 0) --tls_sessions_;
  if (enters_time_wait) ++time_wait_;
}

void NodeMeters::OnTimeWaitExpired() {
  if (time_wait_ > 0) --time_wait_;
}

uint64_t NodeMeters::MemoryBytes() const {
  return model_.base_memory + established_ * model_.tcp_conn_memory +
         tls_sessions_ * model_.tls_session_memory +
         time_wait_ * model_.time_wait_memory;
}

double NodeMeters::CpuUtilization(NanoTime from, NanoTime to) const {
  if (to <= from) return 0;
  double capacity = static_cast<double>(to - from) *
                    static_cast<double>(model_.cores);
  return std::min(1.0, static_cast<double>(cpu_busy_) / capacity);
}

void NodeMeters::ResetCounters() {
  cpu_busy_ = 0;
  bytes_sent_ = 0;
  bytes_received_ = 0;
  queries_served_ = 0;
}

}  // namespace ldp::sim
