// Per-node resource accounting: connection gauges, CPU busy time, memory
// estimation, and traffic byte counters. These meters regenerate the
// paper's §5.2 measurements (memory in Fig 13/14, CPU in Fig 11, response
// bandwidth in Fig 10).
//
// The cost constants are calibrated against the paper's own measurements of
// nsd-4.1.0 on a 24-core Xeon (§5.2.1); see ResourceModel field comments.
#ifndef LDPLAYER_SIM_METERS_H
#define LDPLAYER_SIM_METERS_H

#include <cstdint>

#include "common/clock.h"

namespace ldp::sim {

struct ResourceModel {
  // --- Memory (bytes) ---
  // Baseline server footprint incl. zone data: the paper's UDP-only run
  // sits near 2 GB (Fig 13a bottom line).
  uint64_t base_memory = 2ull * 1024 * 1024 * 1024;
  // Per established TCP connection: kernel socket buffers + NSD's per-
  // connection query/response buffers. Calibrated so ~60k established
  // connections cost ≈ 13 GB (15 GB total at 20 s timeout, Fig 13a).
  uint64_t tcp_conn_memory = 216 * 1024;
  // TIME_WAIT sockets hold only a compressed control block.
  uint64_t time_wait_memory = 512;
  // Extra per live TLS session (OpenSSL session + buffers): TLS totals
  // ≈ 18 GB where TCP totals ≈ 15 GB (Fig 14a vs 13a).
  uint64_t tls_session_memory = 50 * 1024;

  // --- CPU (nanoseconds of one core per operation) ---
  // Per-query costs land the Fig 11 medians at B-Root rate on 48 threads:
  // original trace (97% UDP) ≈ 10%, all-TCP ≈ 5%, all-TLS ≈ 9–10%.
  // UDP costs more than TCP per query, reflecting the paper's observation
  // that NIC TCP offloads (TOE/TSO on the Intel X710) favour TCP.
  NanoDuration udp_query_cpu = 126'000;
  NanoDuration tcp_query_cpu = 48'000;
  NanoDuration tcp_handshake_cpu = 100'000;
  NanoDuration tcp_segment_cpu = 3'000;
  // TLS costs: per-record symmetric crypto is charged on both receive and
  // send; the handshake (asymmetric) once per session at the server. The
  // values land the Fig 11 medians (~9.5% all-TLS vs ~5% all-TCP) and the
  // ~+2% TLS bump at a 5 s timeout, consistent with the paper's finding
  // that TLS cryptography does not dominate server CPU.
  NanoDuration tls_handshake_cpu = 350'000;
  NanoDuration tls_record_cpu = 15'000;
  uint32_t cores = 48;  // the paper's server: 24-core / 48-thread Xeon
};

class NodeMeters {
 public:
  explicit NodeMeters(const ResourceModel& model = ResourceModel{})
      : model_(model) {}

  const ResourceModel& model() const { return model_; }

  // --- Connection lifecycle (called by the TCP/TLS layer) ---
  void OnConnEstablished();       // TCP three-way handshake done
  void OnTlsEstablished();        // TLS handshake done on top of the conn
  void OnConnClosed(bool tls_active, bool enters_time_wait);
  void OnTimeWaitExpired();

  // --- CPU ---
  void AddCpu(NanoDuration busy) { cpu_busy_ += busy; }

  // --- Traffic ---
  void OnBytesSent(uint64_t bytes) { bytes_sent_ += bytes; }
  void OnBytesReceived(uint64_t bytes) { bytes_received_ += bytes; }
  void OnQueryServed() { ++queries_served_; }

  // --- Gauges ---
  uint64_t established_connections() const { return established_; }
  uint64_t time_wait_connections() const { return time_wait_; }
  uint64_t tls_sessions() const { return tls_sessions_; }
  uint64_t queries_served() const { return queries_served_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  // Estimated resident memory right now.
  uint64_t MemoryBytes() const;

  // Overall CPU utilization (0..1 of the whole machine) over [from, to].
  double CpuUtilization(NanoTime from, NanoTime to) const;
  NanoDuration cpu_busy() const { return cpu_busy_; }

  // Zeroes CPU/traffic counters (gauges persist) — used between benchmark
  // measurement windows.
  void ResetCounters();

 private:
  ResourceModel model_;
  uint64_t established_ = 0;
  uint64_t time_wait_ = 0;
  uint64_t tls_sessions_ = 0;
  uint64_t queries_served_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  NanoDuration cpu_busy_ = 0;
};

}  // namespace ldp::sim

#endif  // LDPLAYER_SIM_METERS_H
