#include "sim/network.h"

#include "common/log.h"

namespace ldp::sim {

void SimNetwork::SetHostExtraDelay(IpAddress host, NanoDuration extra) {
  host_extra_delay_[host] = extra;
}

NanoDuration SimNetwork::OneWayDelay(IpAddress a, IpAddress b) const {
  NanoDuration delay = default_delay_;
  auto it = host_extra_delay_.find(a);
  if (it != host_extra_delay_.end()) delay += it->second;
  it = host_extra_delay_.find(b);
  if (it != host_extra_delay_.end()) delay += it->second;
  return delay;
}

void SimNetwork::AttachMeters(IpAddress host, NodeMeters* meters) {
  meters_[host] = meters;
}

NodeMeters* SimNetwork::MetersFor(IpAddress host) const {
  auto it = meters_.find(host);
  return it == meters_.end() ? nullptr : it->second;
}

Status SimNetwork::ListenUdp(Endpoint local, DatagramHandler handler) {
  auto [it, inserted] = udp_listeners_.emplace(local, std::move(handler));
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists,
                 "UDP listener exists on " + local.ToString());
  }
  return Status::Ok();
}

void SimNetwork::CloseUdp(Endpoint local) { udp_listeners_.erase(local); }

void SimNetwork::SendUdp(Endpoint from, Endpoint to, Bytes payload) {
  SimPacket packet;
  packet.src = from.addr;
  packet.src_port = from.port;
  packet.dst = to.addr;
  packet.dst_port = to.port;
  packet.kind = SegmentKind::kUdp;
  packet.payload = std::move(payload);

  if (NodeMeters* m = MetersFor(packet.src)) {
    m->OnBytesSent(packet.payload.size());
  }
  auto hook_it = egress_hooks_.find(packet.src);
  if (hook_it != egress_hooks_.end() && hook_it->second(packet)) {
    return;  // hook consumed (proxy will Inject a rewritten copy)
  }
  Deliver(std::move(packet));
}

void SimNetwork::AttachTcpStack(IpAddress host, SegmentHandler handler) {
  tcp_stacks_[host] = std::move(handler);
}

void SimNetwork::DetachTcpStack(IpAddress host) { tcp_stacks_.erase(host); }

void SimNetwork::SendSegment(SimPacket packet) {
  if (NodeMeters* m = MetersFor(packet.src)) {
    m->OnBytesSent(packet.payload.size());
  }
  auto hook_it = egress_hooks_.find(packet.src);
  if (hook_it != egress_hooks_.end() && hook_it->second(packet)) {
    return;
  }
  Deliver(std::move(packet));
}

void SimNetwork::SetEgressHook(IpAddress host, EgressHook hook) {
  egress_hooks_[host] = std::move(hook);
}

void SimNetwork::ClearEgressHook(IpAddress host) { egress_hooks_.erase(host); }

void SimNetwork::Inject(SimPacket packet) { Deliver(std::move(packet)); }

void SimNetwork::Deliver(SimPacket packet) {
  NanoDuration delay = OneWayDelay(packet.src, packet.dst);
  sim_.Schedule(delay, [this, packet = std::move(packet)]() mutable {
    ++packets_delivered_;
    if (NodeMeters* m = MetersFor(packet.dst)) {
      m->OnBytesReceived(packet.payload.size());
    }
    if (packet.kind == SegmentKind::kUdp) {
      auto it = udp_listeners_.find(Endpoint{packet.dst, packet.dst_port});
      if (it != udp_listeners_.end()) {
        it->second(packet);
      } else {
        LDP_DEBUG << "dropped UDP to " << packet.dst.ToString() << ":"
                  << packet.dst_port << " (no listener)";
      }
      return;
    }
    auto it = tcp_stacks_.find(packet.dst);
    if (it != tcp_stacks_.end()) {
      it->second(packet);
    } else {
      LDP_DEBUG << "dropped TCP segment to " << packet.dst.ToString()
                << " (no stack)";
    }
  });
}

}  // namespace ldp::sim
