// Simulated IP network: nodes addressed by IPv4, point-to-point delivery
// with configurable per-host one-way delays (the star/IXP topologies of the
// paper's Figures 5 and 12), UDP datagram service, and egress hooks that
// reproduce the TUN + iptables port-based packet capture the proxies use
// (§2.4).
#ifndef LDPLAYER_SIM_NETWORK_H
#define LDPLAYER_SIM_NETWORK_H

#include <functional>
#include <unordered_map>

#include "common/bytes.h"
#include "common/ip.h"
#include "common/result.h"
#include "sim/meters.h"
#include "sim/simulator.h"

namespace ldp::sim {

// Transport-level segment kinds carried by the network. TCP control packets
// are modeled explicitly so handshakes cost real round trips.
enum class SegmentKind : uint8_t {
  kUdp,
  kTcpSyn,
  kTcpSynAck,
  kTcpAck,
  kTcpData,
  kTcpFin,
};

struct SimPacket {
  IpAddress src;
  uint16_t src_port = 0;
  IpAddress dst;
  uint16_t dst_port = 0;
  SegmentKind kind = SegmentKind::kUdp;
  Bytes payload;
};

// Returns true when the hook consumed the packet (it will not be delivered
// normally). Hooks may call SimNetwork::Inject to re-send modified packets.
using EgressHook = std::function<bool(SimPacket&)>;

using DatagramHandler =
    std::function<void(const SimPacket&)>;

class SimNetwork {
 public:
  explicit SimNetwork(Simulator& sim) : sim_(sim) {}

  Simulator& simulator() { return sim_; }

  // --- Topology ---
  // Default one-way delay between any two hosts (LAN: <1 ms as in Fig 5).
  void SetDefaultOneWayDelay(NanoDuration delay) { default_delay_ = delay; }
  // Extra one-way delay attached to a host (both directions), for the
  // client-RTT sweeps of Fig 15: RTT(client) = 2*(default + host_extra).
  void SetHostExtraDelay(IpAddress host, NanoDuration extra);

  NanoDuration OneWayDelay(IpAddress a, IpAddress b) const;

  // --- Resource meters ---
  // Registers meters for a node; the transports charge CPU and byte
  // counters to them. Nodes without meters are still routable.
  void AttachMeters(IpAddress host, NodeMeters* meters);
  NodeMeters* MetersFor(IpAddress host) const;

  // --- UDP ---
  Status ListenUdp(Endpoint local, DatagramHandler handler);
  void CloseUdp(Endpoint local);
  // Sends a datagram; delivery is scheduled after the path delay. Packets
  // to ports nobody listens on are dropped silently (no ICMP model).
  void SendUdp(Endpoint from, Endpoint to, Bytes payload);

  // --- Raw segment transport (used by the TCP layer) ---
  using SegmentHandler = std::function<void(const SimPacket&)>;
  // All non-UDP segments addressed to `host` are handed to one handler
  // (the host's TCP stack).
  void AttachTcpStack(IpAddress host, SegmentHandler handler);
  void DetachTcpStack(IpAddress host);
  void SendSegment(SimPacket packet);

  // --- TUN/iptables emulation ---
  // The hook sees every packet leaving `host` (after the transport built
  // it, before routing). LDplayer's recursive/authoritative proxies live
  // here.
  void SetEgressHook(IpAddress host, EgressHook hook);
  void ClearEgressHook(IpAddress host);

  // Delivers a packet as-is (bypassing egress hooks) — how a proxy
  // re-injects a rewritten packet, mirroring TUN re-injection.
  void Inject(SimPacket packet);

  // --- Introspection ---
  uint64_t packets_delivered() const { return packets_delivered_; }

 private:
  void Deliver(SimPacket packet);  // schedules the arrival event

  Simulator& sim_;
  NanoDuration default_delay_ = Micros(500);  // <1 ms LAN
  std::unordered_map<IpAddress, NanoDuration> host_extra_delay_;
  std::unordered_map<Endpoint, DatagramHandler> udp_listeners_;
  std::unordered_map<IpAddress, SegmentHandler> tcp_stacks_;
  std::unordered_map<IpAddress, EgressHook> egress_hooks_;
  std::unordered_map<IpAddress, NodeMeters*> meters_;
  uint64_t packets_delivered_ = 0;
};

}  // namespace ldp::sim

#endif  // LDPLAYER_SIM_NETWORK_H
