#include "sim/simulator.h"

#include <cassert>

namespace ldp::sim {

void EventHandle::Cancel() {
  if (flag_ != nullptr) flag_->cancelled = true;
}

bool EventHandle::active() const {
  return flag_ != nullptr && !flag_->cancelled && !flag_->fired;
}

EventHandle Simulator::ScheduleAt(NanoTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  auto flag = std::make_shared<EventHandle::Flag>();
  queue_.push(Event{when, next_seq_++, std::move(fn), flag});
  return EventHandle(std::move(flag));
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    // Move out of the queue before popping (top() is const because mutating
    // the key would break heap order; moving fn/flag does not touch the key).
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (event.flag->cancelled) continue;
    now_ = event.when;
    event.flag->fired = true;
    ++events_processed_;
    event.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(NanoTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace ldp::sim
