// Discrete-event simulation core: a virtual clock and an event queue with
// cancellable timers. Deterministic: ties break by schedule order.
//
// This is the testbed substitute (DESIGN.md): where the paper runs DETER
// hosts on a LAN, we schedule packet deliveries, timeouts, and handshakes
// against this clock, which lets one process model hours of a loaded root
// server with hundreds of thousands of connections.
#ifndef LDPLAYER_SIM_SIMULATOR_H
#define LDPLAYER_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace ldp::sim {

class Simulator;

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert. Cancelling an already-fired or cancelled event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void Cancel();
  bool active() const;

 private:
  friend class Simulator;
  struct Flag {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<Flag> flag) : flag_(std::move(flag)) {}
  std::shared_ptr<Flag> flag_;
};

class Simulator {
 public:
  NanoTime Now() const { return now_; }

  EventHandle Schedule(NanoDuration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }
  EventHandle ScheduleAt(NanoTime when, std::function<void()> fn);

  // Runs until the queue is empty.
  void Run();
  // Runs events with time <= deadline, then sets the clock to deadline.
  void RunUntil(NanoTime deadline);
  // Runs at most one event; false when the queue is empty.
  bool Step();

  size_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    NanoTime when;
    uint64_t seq;  // FIFO among same-time events
    std::function<void()> fn;
    std::shared_ptr<EventHandle::Flag> flag;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  NanoTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ldp::sim

#endif  // LDPLAYER_SIM_SIMULATOR_H
