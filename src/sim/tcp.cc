#include "sim/tcp.h"

#include <cassert>

#include "common/log.h"

namespace ldp::sim {
namespace {

constexpr uint8_t kTlsHandshake = 0x16;
constexpr uint8_t kTlsAppData = 0x17;
constexpr size_t kTlsRecordOverhead = 25;  // MAC + padding + IV, post-header

// Approximate TLS 1.2 full-handshake flight sizes (bytes).
constexpr size_t kFlightSizes[4] = {220, 3000, 330, 100};

// Writes a TLS record: type, u24 length, body of `size` zero bytes (the
// content of handshake flights is irrelevant; only size and count matter).
void AppendRecord(Bytes& out, uint8_t type, std::span<const uint8_t> body,
                  size_t pad_to = 0) {
  size_t body_size = pad_to > 0 ? pad_to : body.size() + kTlsRecordOverhead;
  out.push_back(type);
  out.push_back(static_cast<uint8_t>(body_size >> 16));
  out.push_back(static_cast<uint8_t>(body_size >> 8));
  out.push_back(static_cast<uint8_t>(body_size));
  out.insert(out.end(), body.begin(), body.end());
  size_t padding = body_size - body.size();
  out.insert(out.end(), padding, 0);
}

}  // namespace

// --- SimTcpConnection ---

void SimTcpConnection::Send(Bytes data) {
  assert(stack_ != nullptr);
  if (state_ != State::kEstablished) {
    LDP_WARN << "Send on non-established connection " << local_.ToString();
    return;
  }
  if (tls_) {
    NodeMeters* m = stack_->meters();
    if (m != nullptr) m->AddCpu(m->model().tls_record_cpu);
    Bytes record;
    record.reserve(data.size() + 4 + kTlsRecordOverhead);
    AppendRecord(record, kTlsAppData, data);
    stack_->FlushOrQueue(*this, std::move(record));
  } else {
    stack_->FlushOrQueue(*this, std::move(data));
  }
  stack_->TouchActivity(*this);
}

void SimTcpConnection::Close() {
  assert(stack_ != nullptr);
  if (state_ == State::kClosed) return;
  stack_->CloseActive(*this);
}

// --- SimTcpStack ---

SimTcpStack::SimTcpStack(SimNetwork& net, IpAddress host)
    : net_(net), host_(host) {
  net_.AttachTcpStack(host_, [this](const SimPacket& packet) {
    OnSegment(packet);
  });
}

SimTcpStack::~SimTcpStack() {
  // In-flight segments to this host must not hit a dangling handler.
  net_.DetachTcpStack(host_);
}

Status SimTcpStack::Listen(uint16_t port, AcceptHandler handler, bool tls,
                           NanoDuration idle_timeout) {
  auto [it, inserted] = listeners_.emplace(
      port, Listener{std::move(handler), tls, idle_timeout});
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists,
                 "TCP listener exists on port " + std::to_string(port));
  }
  return Status::Ok();
}

Result<uint16_t> SimTcpStack::AllocatePort() {
  for (int attempts = 0; attempts < 64512; ++attempts) {
    uint16_t candidate = next_port_;
    next_port_ = next_port_ == 65535 ? 1024 : next_port_ + 1;
    if (listeners_.count(candidate) || time_wait_ports_.count(candidate) ||
        used_client_ports_.count(candidate)) {
      continue;
    }
    used_client_ports_.insert(candidate);
    return candidate;
  }
  return Error(ErrorCode::kResourceExhausted,
               "no free ephemeral ports on " + host_.ToString());
}

Result<SimTcpConnection*> SimTcpStack::Connect(Endpoint remote,
                                               ConnCallbacks callbacks,
                                               bool tls, bool nagle) {
  LDP_ASSIGN_OR_RETURN(uint16_t port, AllocatePort());
  auto conn = std::make_unique<SimTcpConnection>();
  SimTcpConnection* raw = conn.get();
  raw->stack_ = this;
  raw->local_ = Endpoint{host_, port};
  raw->remote_ = remote;
  raw->state_ = SimTcpConnection::State::kSynSent;
  raw->tls_ = tls;
  raw->client_side_ = true;
  raw->nagle_ = nagle;
  raw->callbacks_ = std::move(callbacks);
  raw->last_activity_ = net_.simulator().Now();
  conns_.emplace(ConnKey{port, remote}, std::move(conn));

  ChargeCpu(meters() != nullptr ? meters()->model().tcp_handshake_cpu : 0);
  SendControl(*raw, SegmentKind::kTcpSyn);
  return raw;
}

void SimTcpStack::OnSegment(const SimPacket& packet) {
  ConnKey key{packet.dst_port, Endpoint{packet.src, packet.src_port}};
  auto it = conns_.find(key);

  if (packet.kind == SegmentKind::kTcpSyn) {
    auto listener_it = listeners_.find(packet.dst_port);
    if (listener_it == listeners_.end()) {
      LDP_DEBUG << "SYN to closed port " << packet.dst_port;
      return;
    }
    if (it != conns_.end()) return;  // duplicate SYN
    const Listener& listener = listener_it->second;
    auto conn = std::make_unique<SimTcpConnection>();
    SimTcpConnection* raw = conn.get();
    raw->stack_ = this;
    raw->local_ = Endpoint{host_, packet.dst_port};
    raw->remote_ = Endpoint{packet.src, packet.src_port};
    raw->state_ = SimTcpConnection::State::kSynRcvd;
    raw->tls_ = listener.tls;
    raw->client_side_ = false;
    raw->idle_timeout_ = listener.idle_timeout;
    raw->last_activity_ = net_.simulator().Now();
    raw->callbacks_ = listener.handler(*raw);
    conns_.emplace(key, std::move(conn));
    if (NodeMeters* m = meters()) m->AddCpu(m->model().tcp_handshake_cpu);
    SendControl(*raw, SegmentKind::kTcpSynAck);
    return;
  }

  if (it == conns_.end()) {
    LDP_DEBUG << "segment for unknown connection on " << host_.ToString();
    return;
  }
  SimTcpConnection& conn = *it->second;

  switch (packet.kind) {
    case SegmentKind::kTcpSynAck:
      if (conn.state_ == SimTcpConnection::State::kSynSent) {
        SendControl(conn, SegmentKind::kTcpAck);
        MarkEstablished(conn);
        if (conn.tls_) {
          // Client opens the TLS handshake.
          Bytes record;
          AppendRecord(record, kTlsHandshake, {}, kFlightSizes[0]);
          FlushOrQueue(conn, std::move(record));
        } else {
          MarkAppEstablished(conn);
        }
      }
      break;
    case SegmentKind::kTcpAck:
      if (conn.state_ == SimTcpConnection::State::kSynRcvd) {
        MarkEstablished(conn);
        if (!conn.tls_) MarkAppEstablished(conn);
      } else {
        OnAck(conn);
      }
      break;
    case SegmentKind::kTcpData:
      // Piggybacked establishment: data reaching a SYN_RCVD server implies
      // the client's ACK was coalesced with it.
      if (conn.state_ == SimTcpConnection::State::kSynRcvd) {
        MarkEstablished(conn);
        if (!conn.tls_) MarkAppEstablished(conn);
      }
      OnDataSegment(conn, packet);
      break;
    case SegmentKind::kTcpFin:
      ClosePassive(conn);
      break;
    case SegmentKind::kUdp:
      break;  // unreachable: UDP routes to datagram listeners
  }
}

void SimTcpStack::SendControl(const SimTcpConnection& conn, SegmentKind kind) {
  SimPacket packet;
  packet.src = conn.local_.addr;
  packet.src_port = conn.local_.port;
  packet.dst = conn.remote_.addr;
  packet.dst_port = conn.remote_.port;
  packet.kind = kind;
  net_.SendSegment(std::move(packet));
}

void SimTcpStack::FlushOrQueue(SimTcpConnection& conn, Bytes data) {
  // Nagle: while a segment is unacknowledged, buffer small writes and
  // flush them as one segment when the ACK arrives.
  if (conn.nagle_ && conn.segment_in_flight_) {
    conn.pending_.insert(conn.pending_.end(), data.begin(), data.end());
    return;
  }
  SendData(conn, std::move(data));
}

void SimTcpStack::SendData(SimTcpConnection& conn, Bytes data) {
  if (NodeMeters* m = meters()) m->AddCpu(m->model().tcp_segment_cpu);
  conn.segment_in_flight_ = true;
  SimPacket packet;
  packet.src = conn.local_.addr;
  packet.src_port = conn.local_.port;
  packet.dst = conn.remote_.addr;
  packet.dst_port = conn.remote_.port;
  packet.kind = SegmentKind::kTcpData;
  packet.payload = std::move(data);
  net_.SendSegment(std::move(packet));
}

void SimTcpStack::OnAck(SimTcpConnection& conn) {
  conn.segment_in_flight_ = false;
  if (!conn.pending_.empty()) {
    Bytes coalesced = std::move(conn.pending_);
    conn.pending_.clear();
    SendData(conn, std::move(coalesced));
  }
}

void SimTcpStack::OnDataSegment(SimTcpConnection& conn,
                                const SimPacket& packet) {
  if (NodeMeters* m = meters()) m->AddCpu(m->model().tcp_segment_cpu);
  SendControl(conn, SegmentKind::kTcpAck);
  TouchActivity(conn);

  if (!conn.tls_) {
    DeliverAppData(conn, packet.payload);
    return;
  }

  // TLS: reassemble records across segment boundaries.
  conn.record_buffer_.insert(conn.record_buffer_.end(),
                             packet.payload.begin(), packet.payload.end());
  while (conn.record_buffer_.size() >= 4) {
    uint8_t type = conn.record_buffer_[0];
    size_t len = (static_cast<size_t>(conn.record_buffer_[1]) << 16) |
                 (static_cast<size_t>(conn.record_buffer_[2]) << 8) |
                 conn.record_buffer_[3];
    if (conn.record_buffer_.size() < 4 + len) break;
    if (type == kTlsHandshake) {
      TlsHandshakeAdvance(conn, type);
    } else if (type == kTlsAppData) {
      if (NodeMeters* m = meters()) m->AddCpu(m->model().tls_record_cpu);
      size_t payload_len = len >= kTlsRecordOverhead
                               ? len - kTlsRecordOverhead
                               : 0;
      DeliverAppData(conn, std::span<const uint8_t>(
                               conn.record_buffer_.data() + 4, payload_len));
    }
    conn.record_buffer_.erase(conn.record_buffer_.begin(),
                              conn.record_buffer_.begin() + 4 +
                                  static_cast<ptrdiff_t>(len));
  }
}

void SimTcpStack::TlsHandshakeAdvance(SimTcpConnection& conn, uint8_t) {
  ++conn.tls_handshake_step_;
  if (conn.client_side_) {
    // Client receives flight 2, sends flight 3; receives flight 4, done.
    if (conn.tls_handshake_step_ == 1) {
      Bytes record;
      AppendRecord(record, kTlsHandshake, {}, kFlightSizes[2]);
      FlushOrQueue(conn, std::move(record));
    } else if (conn.tls_handshake_step_ == 2) {
      if (NodeMeters* m = meters()) m->AddCpu(m->model().tls_handshake_cpu);
      MarkAppEstablished(conn);
    }
  } else {
    // Server receives flight 1, sends flight 2; receives flight 3, sends
    // flight 4 and is done.
    if (conn.tls_handshake_step_ == 1) {
      Bytes record;
      AppendRecord(record, kTlsHandshake, {}, kFlightSizes[1]);
      FlushOrQueue(conn, std::move(record));
    } else if (conn.tls_handshake_step_ == 2) {
      if (NodeMeters* m = meters()) m->AddCpu(m->model().tls_handshake_cpu);
      Bytes record;
      AppendRecord(record, kTlsHandshake, {}, kFlightSizes[3]);
      FlushOrQueue(conn, std::move(record));
      MarkAppEstablished(conn);
    }
  }
}

void SimTcpStack::DeliverAppData(SimTcpConnection& conn,
                                 std::span<const uint8_t> data) {
  if (conn.callbacks_.on_data) conn.callbacks_.on_data(conn, data);
}

void SimTcpStack::MarkEstablished(SimTcpConnection& conn) {
  if (conn.state_ == SimTcpConnection::State::kEstablished) return;
  conn.state_ = SimTcpConnection::State::kEstablished;
  if (NodeMeters* m = meters()) m->OnConnEstablished();
  TouchActivity(conn);
}

void SimTcpStack::MarkAppEstablished(SimTcpConnection& conn) {
  if (conn.app_established_) return;
  conn.app_established_ = true;
  if (conn.tls_) {
    if (NodeMeters* m = meters()) m->OnTlsEstablished();
  }
  if (conn.callbacks_.on_established) conn.callbacks_.on_established(conn);
}

void SimTcpStack::TouchActivity(SimTcpConnection& conn) {
  conn.last_activity_ = net_.simulator().Now();
  if (conn.idle_timeout_ > 0) ArmIdleTimer(conn);
}

void SimTcpStack::ArmIdleTimer(SimTcpConnection& conn) {
  conn.idle_timer_.Cancel();
  ConnKey key{conn.local_.port, conn.remote_};
  std::weak_ptr<char> alive = alive_;
  conn.idle_timer_ = net_.simulator().Schedule(
      conn.idle_timeout_, [this, alive, key]() {
        if (alive.expired()) return;
        auto it = conns_.find(key);
        if (it == conns_.end()) return;
        SimTcpConnection& c = *it->second;
        NanoTime idle_since = c.last_activity_ + c.idle_timeout_;
        if (net_.simulator().Now() >= idle_since) {
          // Idle: server-side close. Inform the application.
          if (c.callbacks_.on_close) c.callbacks_.on_close(c);
          CloseActive(c);
        }
      });
}

void SimTcpStack::CloseActive(SimTcpConnection& conn) {
  if (conn.state_ == SimTcpConnection::State::kClosed) return;
  bool was_established =
      conn.state_ == SimTcpConnection::State::kEstablished;
  conn.state_ = SimTcpConnection::State::kClosed;
  conn.idle_timer_.Cancel();
  SendControl(conn, SegmentKind::kTcpFin);

  if (NodeMeters* m = meters()) {
    if (was_established) {
      m->OnConnClosed(conn.tls_ && conn.app_established_,
                      /*enters_time_wait=*/true);
    }
  }
  // Hold the port through TIME_WAIT (2*MSL), then release.
  uint16_t port = conn.local_.port;
  bool track_port = conn.client_side_;  // server port 53 is shared
  if (track_port) time_wait_ports_.insert(port);
  if (was_established) {
    std::weak_ptr<char> alive = alive_;
    net_.simulator().Schedule(time_wait_duration_,
                              [this, alive, port, track_port]() {
                                if (alive.expired()) return;
                                if (NodeMeters* m = meters()) {
                                  m->OnTimeWaitExpired();
                                }
                                if (track_port) time_wait_ports_.erase(port);
                              });
  } else if (track_port) {
    time_wait_ports_.erase(port);
  }
  EraseDeferred(conn);
}

void SimTcpStack::ClosePassive(SimTcpConnection& conn) {
  if (conn.state_ == SimTcpConnection::State::kClosed) return;
  bool was_established =
      conn.state_ == SimTcpConnection::State::kEstablished;
  conn.state_ = SimTcpConnection::State::kClosed;
  conn.idle_timer_.Cancel();
  if (NodeMeters* m = meters()) {
    if (was_established) {
      m->OnConnClosed(conn.tls_ && conn.app_established_,
                      /*enters_time_wait=*/false);
    }
  }
  if (conn.callbacks_.on_close) conn.callbacks_.on_close(conn);
  EraseDeferred(conn);
}

void SimTcpStack::EraseDeferred(const SimTcpConnection& conn) {
  // Deletion is deferred one event so callbacks running right now can
  // still touch the connection object safely. Client ports stay reserved
  // through TIME_WAIT (CloseActive keeps them in time_wait_ports_).
  ConnKey key{conn.local_.port, conn.remote_};
  bool client = conn.client_side_;
  uint16_t port = conn.local_.port;
  std::weak_ptr<char> alive = alive_;
  net_.simulator().Schedule(0, [this, alive, key, client, port]() {
    if (alive.expired()) return;
    auto it = conns_.find(key);
    if (it == conns_.end()) return;
    // Move the connection out *before* mutating the maps: destroying its
    // callbacks may release whatever owns this stack (an application
    // holding the stack alive through the connection's closures), so the
    // destruction must be the very last thing this frame does.
    std::unique_ptr<SimTcpConnection> doomed = std::move(it->second);
    conns_.erase(it);
    if (client) used_client_ports_.erase(port);
    // `doomed` (and potentially *this) die here; touch nothing after.
  });
}

void SimTcpStack::ChargeCpu(NanoDuration cost) {
  if (cost <= 0) return;
  if (NodeMeters* m = meters()) m->AddCpu(cost);
}

}  // namespace ldp::sim
