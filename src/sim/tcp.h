// Simulated TCP connections with an optional modeled TLS layer.
//
// The model keeps exactly the behaviours the paper's §5.2 experiments
// depend on and nothing more:
//
//  * Three-way handshake costing one RTT before client data flows
//    (a fresh TCP query completes in 2 RTT; the paper's Fig 15b median).
//  * A modeled TLS 1.2 handshake adding two more RTTs (fresh TLS query
//    = 4 RTT), with per-record framing overhead (+29 bytes) and CPU costs.
//  * Nagle-style write coalescing: while a segment is unacknowledged,
//    further small writes queue and flush together on the ACK. This is the
//    mechanism behind the multi-RTT tail latencies the paper observed on
//    busy connections ("many server reply TCP segments ... reassembled into
//    a large TCP message", §5.2.4). Disable per-connection to model
//    TCP_NODELAY.
//  * Active close enters TIME_WAIT and holds the port for 60 s (2*MSL),
//    reproducing the TIME_WAIT populations of Figs 13c/14c and ephemeral-
//    port exhaustion on busy client hosts.
//  * Idle timeout: the server side closes connections idle longer than a
//    configurable window — the x-axis of Figs 11/13/14.
//
// Not modeled: loss, retransmission, congestion/flow control, sequence
// numbers. The testbed LANs the paper uses are lossless and never
// bandwidth-bound at DNS message sizes, so these do not affect the
// reproduced results.
#ifndef LDPLAYER_SIM_TCP_H
#define LDPLAYER_SIM_TCP_H

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/bytes.h"
#include "common/result.h"
#include "sim/network.h"

namespace ldp::sim {

class SimTcpStack;
class SimTcpConnection;

struct ConnCallbacks {
  // Fired when the connection is ready for application data (for TLS
  // connections: after the TLS handshake).
  std::function<void(SimTcpConnection&)> on_established;
  // Application bytes (TLS: decrypted payload).
  std::function<void(SimTcpConnection&, std::span<const uint8_t>)> on_data;
  // Peer closed (or the idle timeout fired and this side closed).
  std::function<void(SimTcpConnection&)> on_close;
};

class SimTcpConnection {
 public:
  // Application stream write. On TLS connections the payload is wrapped in
  // a TLS application-data record (framing + CPU charged).
  void Send(Bytes data);

  // Active close: FIN to the peer, this side enters TIME_WAIT.
  void Close();

  Endpoint local() const { return local_; }
  Endpoint remote() const { return remote_; }
  bool is_tls() const { return tls_; }
  bool established() const { return app_established_; }
  NanoTime last_activity() const { return last_activity_; }

  // Opaque per-connection application state (e.g. the server's stream
  // assembler). The owner manages lifetime.
  void set_user_data(std::shared_ptr<void> data) { user_data_ = std::move(data); }
  template <typename T>
  T* user_data() const { return static_cast<T*>(user_data_.get()); }

 private:
  friend class SimTcpStack;

  enum class State { kSynSent, kSynRcvd, kEstablished, kClosed };

  SimTcpStack* stack_ = nullptr;
  Endpoint local_;
  Endpoint remote_;
  State state_ = State::kClosed;
  bool tls_ = false;
  bool client_side_ = false;
  bool app_established_ = false;  // TLS: only after handshake
  int tls_handshake_step_ = 0;
  ConnCallbacks callbacks_;
  NanoTime last_activity_ = 0;

  // Nagle coalescing.
  bool nagle_ = true;
  bool segment_in_flight_ = false;
  Bytes pending_;

  // TLS record reassembly.
  Bytes record_buffer_;

  // Server-side idle timeout management.
  NanoDuration idle_timeout_ = 0;  // 0 = none
  EventHandle idle_timer_;

  std::shared_ptr<void> user_data_;
};

class SimTcpStack {
 public:
  // Attaches this stack to `host` in the network; detaches on destruction.
  SimTcpStack(SimNetwork& net, IpAddress host);
  ~SimTcpStack();
  SimTcpStack(const SimTcpStack&) = delete;
  SimTcpStack& operator=(const SimTcpStack&) = delete;

  // Accept handler: invoked for each new connection once established;
  // returns the callbacks for it. `idle_timeout` > 0 makes the server
  // close connections idle that long (the Fig 11/13/14 knob).
  using AcceptHandler = std::function<ConnCallbacks(SimTcpConnection&)>;
  Status Listen(uint16_t port, AcceptHandler handler, bool tls,
                NanoDuration idle_timeout);

  // Opens a client connection from an ephemeral local port.
  // kResourceExhausted when no ports are free (the 65k-port limit the
  // paper works around by spreading queriers across hosts, §2.6).
  Result<SimTcpConnection*> Connect(Endpoint remote, ConnCallbacks callbacks,
                                    bool tls, bool nagle = true);

  IpAddress host() const { return host_; }
  size_t connection_count() const { return conns_.size(); }
  size_t ports_in_time_wait() const { return time_wait_ports_.size(); }

  // 2*MSL; Linux default 60 s.
  void set_time_wait_duration(NanoDuration d) { time_wait_duration_ = d; }

 private:
  friend class SimTcpConnection;

  struct ConnKey {
    uint16_t local_port;
    Endpoint remote;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    size_t operator()(const ConnKey& k) const {
      return std::hash<Endpoint>()(k.remote) * 31 + k.local_port;
    }
  };
  struct Listener {
    AcceptHandler handler;
    bool tls;
    NanoDuration idle_timeout;
  };

  void OnSegment(const SimPacket& packet);
  void SendControl(const SimTcpConnection& conn, SegmentKind kind);
  void SendData(SimTcpConnection& conn, Bytes data);
  void FlushOrQueue(SimTcpConnection& conn, Bytes data);
  void OnAck(SimTcpConnection& conn);
  void OnDataSegment(SimTcpConnection& conn, const SimPacket& packet);
  void DeliverAppData(SimTcpConnection& conn, std::span<const uint8_t> data);
  void TlsHandshakeAdvance(SimTcpConnection& conn, uint8_t message);
  void MarkEstablished(SimTcpConnection& conn);
  void MarkAppEstablished(SimTcpConnection& conn);
  void TouchActivity(SimTcpConnection& conn);
  void ArmIdleTimer(SimTcpConnection& conn);
  void CloseActive(SimTcpConnection& conn);
  void ClosePassive(SimTcpConnection& conn);
  void EraseDeferred(const SimTcpConnection& conn);
  Result<uint16_t> AllocatePort();
  NodeMeters* meters() const { return net_.MetersFor(host_); }
  void ChargeCpu(NanoDuration cost);

  SimNetwork& net_;
  IpAddress host_;
  NanoDuration time_wait_duration_ = Seconds(60);
  uint16_t next_port_ = 1024;
  std::unordered_map<uint16_t, Listener> listeners_;
  std::unordered_map<ConnKey, std::unique_ptr<SimTcpConnection>, ConnKeyHash>
      conns_;
  std::set<uint16_t> time_wait_ports_;
  std::set<uint16_t> used_client_ports_;
  // Liveness token: timer lambdas (idle timeout, TIME_WAIT expiry,
  // deferred erase) capture a weak_ptr to it and become no-ops if the
  // stack is destroyed before they fire.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace ldp::sim

#endif  // LDPLAYER_SIM_TCP_H
