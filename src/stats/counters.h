// Lock-free event counters shared across replay/server threads. Writers on
// hot paths pay one uncontended relaxed atomic add; readers snapshot without
// locks. Relaxed ordering suffices because the values are aggregates read
// after the worker threads join (or approximately, for live monitoring) —
// they never order other memory.
#ifndef LDPLAYER_STATS_COUNTERS_H
#define LDPLAYER_STATS_COUNTERS_H

#include <atomic>
#include <cstdint>

namespace ldp::stats {

class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace ldp::stats

#endif  // LDPLAYER_STATS_COUNTERS_H
