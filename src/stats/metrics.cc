#include "stats/metrics.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdarg>
#include <cstring>
#include <map>
#include <tuple>

namespace ldp::stats {

size_t LogHistogram::IndexFor(uint64_t value) {
  if (value < 2 * kSubBuckets) return static_cast<size_t>(value);
  // msb >= 5 here. The top kSubBucketBits bits after the leading 1 select
  // the sub-bucket within the octave.
  int msb = std::bit_width(value) - 1;
  size_t octave = static_cast<size_t>(msb - kSubBucketBits);
  uint64_t sub = (value >> (msb - kSubBucketBits)) & (kSubBuckets - 1);
  return (octave + 1) * kSubBuckets + static_cast<size_t>(sub);
}

uint64_t LogHistogram::BucketLowerBound(size_t index) {
  if (index < 2 * kSubBuckets) return index;
  // Inverse of IndexFor: index = (msb - kSubBucketBits + 1) * 16 + sub for
  // values in [2^msb, 2^(msb+1)), so index/16 = msb - 3 and the bucket
  // floor is (16 + sub) * 2^(msb - 4).
  size_t octave = index / kSubBuckets;
  uint64_t sub = index & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (octave - 1);
}

double LogHistogram::BucketMidpoint(size_t index) {
  uint64_t lower = BucketLowerBound(index);
  if (index < 2 * kSubBuckets) return static_cast<double>(lower);
  uint64_t next = index + 1 < kNumBuckets ? BucketLowerBound(index + 1)
                                          : lower + (lower >> kSubBucketBits);
  return (static_cast<double>(lower) + static_cast<double>(next)) / 2.0;
}

HistogramSnapshot LogHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

HistogramSnapshot& HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  return *this;
}

double HistogramSnapshot::Quantile(double q) const {
  // Bucket totals may lag `count` slightly under concurrent recording;
  // rank against the buckets' own sum so we never run off the end.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      double mid = LogHistogram::BucketMidpoint(i);
      // Never report beyond the observed max (the top bucket's midpoint
      // can overshoot it).
      return max > 0 ? std::min(mid, static_cast<double>(max)) : mid;
    }
  }
  return static_cast<double>(max);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::Histogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::AddCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.emplace_back(std::piecewise_construct,
                         std::forward_as_tuple(name), std::forward_as_tuple());
  return &counters_.back().second;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return &gauges_.back().second;
}

LogHistogram* MetricsRegistry::AddHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_.emplace_back(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return &histograms_.back().second;
}

void MetricsRegistry::AddCounterFn(const std::string& name,
                                   std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  counter_fns_.emplace_back(name, std::move(fn));
}

void MetricsRegistry::AddGaugeFn(const std::string& name,
                                 std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauge_fns_.emplace_back(name, std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const auto& [name, counter] : counters_) {
    counters[name] += counter.Get();
  }
  for (const auto& [name, fn] : counter_fns_) {
    counters[name] += fn();
  }
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] += gauge.Get();
  }
  for (const auto& [name, fn] : gauge_fns_) {
    gauges[name] += fn();
  }
  for (const auto& [name, histogram] : histograms_) {
    auto [it, inserted] = histograms.try_emplace(name, histogram.Snapshot());
    if (!inserted) it->second.Merge(histogram.Snapshot());
  }
  MetricsSnapshot snap;
  snap.counters.assign(counters.begin(), counters.end());
  snap.gauges.assign(gauges.begin(), gauges.end());
  snap.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) {
    snap.histograms.emplace_back(name, std::move(h));
  }
  return snap;
}

MetricsSnapshotter::MetricsSnapshotter(const MetricsRegistry& registry,
                                       Options options)
    : registry_(registry), options_(std::move(options)) {
  if (!options_.clock) options_.clock = [] { return WallNow(); };
}

MetricsSnapshotter::~MetricsSnapshotter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status MetricsSnapshotter::Open() {
  if (options_.path.empty()) return Status::Ok();
  file_ = std::fopen(options_.path.c_str(), "w");
  if (file_ == nullptr) {
    return Error(ErrorCode::kIoError, "open " + options_.path + ": " +
                                          std::strerror(errno));
  }
  return Status::Ok();
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

MetricsSnapshot MergeSnapshots(std::span<const MetricsSnapshot> parts) {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  MetricsSnapshot merged;
  for (const MetricsSnapshot& part : parts) {
    merged.taken_at = std::max(merged.taken_at, part.taken_at);
    for (const auto& [name, value] : part.counters) counters[name] += value;
    for (const auto& [name, value] : part.gauges) gauges[name] += value;
    for (const auto& [name, h] : part.histograms) {
      auto [it, inserted] = histograms.try_emplace(name, h);
      if (!inserted) it->second.Merge(h);
    }
  }
  merged.counters.assign(counters.begin(), counters.end());
  merged.gauges.assign(gauges.begin(), gauges.end());
  merged.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) {
    merged.histograms.emplace_back(name, std::move(h));
  }
  return merged;
}

JsonlRow RowFromSnapshot(const MetricsSnapshot& snapshot,
                         const MetricsSnapshot* prev, uint64_t seq,
                         bool emit_buckets) {
  JsonlRow row;
  row.ts_ms = snapshot.taken_at / kNanosPerMilli;
  row.seq = seq;
  for (const auto& [name, total] : snapshot.counters) {
    uint64_t before = prev != nullptr ? prev->CounterValue(name) : 0;
    // Polled counters can regress if the underlying subsystem resets;
    // report a zero delta rather than a huge wrapped one.
    JsonlRow::CounterCell cell;
    cell.total = total;
    cell.delta = total >= before ? total - before : 0;
    row.counters.emplace_back(name, cell);
  }
  row.gauges = snapshot.gauges;
  for (const auto& [name, h] : snapshot.histograms) {
    JsonlRow::HistogramCell cell;
    cell.count = h.count;
    cell.p50 = h.Quantile(0.50);
    cell.p95 = h.Quantile(0.95);
    cell.p99 = h.Quantile(0.99);
    cell.max = h.max;
    cell.mean = h.count > 0 ? static_cast<double>(h.sum) /
                                  static_cast<double>(h.count)
                            : 0.0;
    if (emit_buckets) {
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] != 0) {
          cell.buckets.emplace_back(static_cast<uint32_t>(i), h.buckets[i]);
        }
      }
    }
    row.histograms.emplace_back(name, std::move(cell));
  }
  return row;
}

std::string FormatJsonlRow(const JsonlRow& row) {
  std::string out;
  out.reserve(512);
  AppendF(&out, "{\"ts_ms\":%" PRId64 ",\"seq\":%" PRIu64, row.ts_ms,
          row.seq);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : row.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    AppendF(&out, "\":{\"total\":%" PRIu64 ",\"delta\":%" PRIu64 "}",
            cell.total, cell.delta);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : row.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    AppendF(&out, "\":%" PRId64, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : row.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendJsonEscaped(&out, name);
    AppendF(&out,
            "\":{\"count\":%" PRIu64
            ",\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f,\"max\":%" PRIu64
            ",\"mean\":%.1f",
            h.count, h.p50, h.p95, h.p99, h.max, h.mean);
    if (!h.buckets.empty()) {
      out += ",\"buckets\":[";
      bool first_bucket = true;
      for (const auto& [index, count] : h.buckets) {
        if (!first_bucket) out.push_back(',');
        first_bucket = false;
        AppendF(&out, "[%u,%" PRIu64 "]", index, count);
      }
      out.push_back(']');
    }
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshotter::FormatRow(
    const MetricsSnapshot& snapshot) const {
  return FormatJsonlRow(RowFromSnapshot(snapshot,
                                        have_last_ ? &last_ : nullptr, seq_,
                                        options_.emit_buckets));
}

const MetricsSnapshot& MetricsSnapshotter::WriteNow() {
  MetricsSnapshot snap = registry_.Snapshot();
  snap.taken_at = options_.clock();
  if (file_ != nullptr) {
    std::string row = FormatRow(snap);
    std::fwrite(row.data(), 1, row.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
  }
  ++seq_;
  last_ = std::move(snap);
  have_last_ = true;
  if (options_.keep_history) history_.push_back(last_);
  return last_;
}

}  // namespace ldp::stats
