// Live metrics: named counters, gauges, and log-bucketed streaming
// histograms observable *while* a replay or server is running, plus a
// snapshotter that appends periodic JSONL rows to a file. The post-hoc
// stats (summary.h) buffer every sample and sort on demand — fine for
// figure generation after the run, useless for watching a million-QPS
// experiment between start and final report.
//
// Threading contract (mirrors counters.h): recording on hot paths is one
// uncontended relaxed atomic op — no locks, no fences. Registration takes
// a mutex (cold path, once per shard/querier at startup), and a snapshot
// thread may read concurrently with writers: each cell is individually
// exact, the set is loosely consistent, which aggregation tolerates.
//
// Per-shard / per-querier pattern: every Add*() call creates a NEW metric
// instance registered under the given name; instances sharing a name are
// merged at snapshot time (counters and histogram buckets sum, gauges
// sum). Writers therefore never share a cache line across threads.
#ifndef LDPLAYER_STATS_METRICS_H
#define LDPLAYER_STATS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

namespace ldp::stats {

// Monotonic event counter (see counters.h for the relaxed-order rationale).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A level that moves both ways: inflight depth, backlog length, occupancy.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time view of one LogHistogram (or a merge of several).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // dense, indexed like LogHistogram

  // Quantile over the bucketed distribution: the representative (midpoint)
  // value of the bucket holding rank q*count. Bucket width is <= 1/16 of
  // the value (exact below 32), so the answer is within one sub-bucket of
  // the true quantile — "within 2 log-buckets" by a wide margin.
  double Quantile(double q) const;

  HistogramSnapshot& Merge(const HistogramSnapshot& other);
};

// Log-bucketed streaming histogram over uint64 values (latencies in ns,
// batch sizes, queue depths). Fixed 1040-bucket layout: values below 32
// are exact; above, each power of two splits into 16 sub-buckets (6.25%
// relative width). Record is two relaxed adds plus a relaxed max — cheap
// enough for per-query hot paths; memory is ~8 KB per instance.
class LogHistogram {
 public:
  static constexpr int kSubBucketBits = 4;                  // 16 per octave
  static constexpr uint64_t kSubBuckets = 1u << kSubBucketBits;
  // Values < 2*kSubBuckets map to themselves; octaves 5..63 add 16 each.
  static constexpr size_t kNumBuckets =
      2 * kSubBuckets + (63 - kSubBucketBits) * kSubBuckets;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  void Record(uint64_t value) {
    buckets_[IndexFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Loosely-consistent copy of the current state (safe during Record).
  HistogramSnapshot Snapshot() const;

  // Bucket index for a value; inverse helpers give the covered range.
  static size_t IndexFor(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);
  static double BucketMidpoint(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// One merged view of every metric in a registry, names sorted.
struct MetricsSnapshot {
  NanoTime taken_at = 0;  // snapshotter clock at capture time
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // 0 / nullptr when the name was never registered.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  const HistogramSnapshot* Histogram(const std::string& name) const;
};

// Sum of several registry snapshots, name-by-name: counters and gauges
// add, histograms merge bucket-wise. This is the cross-process
// aggregation the distributed controller applies to per-agent snapshots
// before writing one merged JSONL row.
MetricsSnapshot MergeSnapshots(std::span<const MetricsSnapshot> parts);

// One JSONL row's worth of rendered values. The snapshotter builds one
// from a live registry snapshot; the offline merge path
// (stats/snapshot_io.h, `ldp_trace_stats merge`) re-builds them from
// parsed rows. Keeping a single render struct means the file format has
// exactly one writer.
struct JsonlRow {
  int64_t ts_ms = 0;
  uint64_t seq = 0;
  struct CounterCell {
    uint64_t total = 0;
    uint64_t delta = 0;
  };
  struct HistogramCell {
    uint64_t count = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    uint64_t max = 0;
    double mean = 0;
    // Sparse non-zero buckets (LogHistogram indices). Present only when
    // the writer opted into emit_buckets; enables exact offline merging.
    std::vector<std::pair<uint32_t, uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, CounterCell>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramCell>> histograms;
};

// Renders the row (no trailing newline).
std::string FormatJsonlRow(const JsonlRow& row);

// Builds a row from a snapshot: counter deltas are against `prev` (zero
// when prev is null, and on regressions — polled counters can reset).
// With emit_buckets, each histogram cell carries its sparse buckets.
JsonlRow RowFromSnapshot(const MetricsSnapshot& snapshot,
                         const MetricsSnapshot* prev, uint64_t seq,
                         bool emit_buckets);

// Owns the metric instances; hands out stable pointers for hot-path
// recording. The registry must outlive every component holding one of its
// pointers (tools create it in main; benches per phase).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Each call creates a fresh instance under `name` (per-shard pattern —
  // see the file comment). Pointers stay valid for the registry lifetime.
  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  LogHistogram* AddHistogram(const std::string& name);

  // Polled metrics: read an existing subsystem's own counters at snapshot
  // time — zero added hot-path cost. The function runs on the snapshot
  // thread, so it must only read data that is safe to read from there
  // (relaxed atomics, or single-threaded sim state snapshotted in-thread).
  void AddCounterFn(const std::string& name, std::function<uint64_t()> fn);
  void AddGaugeFn(const std::string& name, std::function<int64_t()> fn);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;  // guards the containers, not the cells
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, LogHistogram>> histograms_;
  std::vector<std::pair<std::string, std::function<uint64_t()>>> counter_fns_;
  std::vector<std::pair<std::string, std::function<int64_t()>>> gauge_fns_;
};

// Appends one JSONL row per WriteNow() call:
//
//   {"ts_ms":..., "seq":N, "counters":{"name":{"total":T,"delta":D},...},
//    "gauges":{"name":V,...},
//    "histograms":{"name":{"count":C,"p50":...,"p95":...,"p99":...,
//                          "max":...,"mean":...},...}}
//
// Deltas are against the previous row, so `delta / (interval)` is a live
// rate. Histogram percentiles are cumulative over the run so the final row
// reconciles with the post-hoc report. The caller owns the cadence: arm a
// repeating timer on whatever event loop owns the snapshotter and call
// WriteNow() from that one thread (writers keep recording concurrently —
// that is the point).
class MetricsSnapshotter {
 public:
  struct Options {
    std::string path;                  // empty = history only, no file
    NanoDuration interval = Seconds(1);
    bool keep_history = false;         // retain every MetricsSnapshot
    // Include each histogram's sparse non-zero buckets in the row, so
    // offline tools (ldp_trace_stats merge) can combine per-agent files
    // exactly instead of approximating from pre-computed percentiles.
    bool emit_buckets = false;
    std::function<NanoTime()> clock;   // default WallNow (sim: Simulator::Now)
  };

  MetricsSnapshotter(const MetricsRegistry& registry, Options options);
  ~MetricsSnapshotter();
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  // Opens (truncates) the output file. No-op when path is empty.
  Status Open();

  // Takes one snapshot, appends the JSONL row, returns the snapshot.
  const MetricsSnapshot& WriteNow();

  NanoDuration interval() const { return options_.interval; }
  uint64_t rows_written() const { return seq_; }
  const std::vector<MetricsSnapshot>& history() const { return history_; }

 private:
  std::string FormatRow(const MetricsSnapshot& snapshot) const;

  const MetricsRegistry& registry_;
  Options options_;
  std::FILE* file_ = nullptr;
  uint64_t seq_ = 0;
  MetricsSnapshot last_;
  bool have_last_ = false;
  std::vector<MetricsSnapshot> history_;
};

}  // namespace ldp::stats

#endif  // LDPLAYER_STATS_METRICS_H
