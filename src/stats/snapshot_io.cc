#include "stats/snapshot_io.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

namespace ldp::stats {
namespace {

// Minimal recursive-descent parser for the JSON subset FormatJsonlRow
// emits: objects, arrays, strings (escape-light), and numbers. No general
// JSON library lives in this codebase and none is needed — the input has
// exactly one producer.
class RowParser {
 public:
  explicit RowParser(std::string_view text) : text_(text) {}

  Result<JsonlRow> Parse() {
    JsonlRow row;
    LDP_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) LDP_RETURN_IF_ERROR(Expect(','));
      first = false;
      LDP_ASSIGN_OR_RETURN(std::string key, ParseString());
      LDP_RETURN_IF_ERROR(Expect(':'));
      if (key == "ts_ms") {
        LDP_ASSIGN_OR_RETURN(double v, ParseNumber());
        row.ts_ms = static_cast<int64_t>(v);
      } else if (key == "seq") {
        LDP_ASSIGN_OR_RETURN(double v, ParseNumber());
        row.seq = static_cast<uint64_t>(v);
      } else if (key == "counters") {
        LDP_RETURN_IF_ERROR(ParseCounters(&row));
      } else if (key == "gauges") {
        LDP_RETURN_IF_ERROR(ParseGauges(&row));
      } else if (key == "histograms") {
        LDP_RETURN_IF_ERROR(ParseHistograms(&row));
      } else {
        return Fail("unknown row field '" + key + "'");
      }
    }
    if (pos_ != text_.size()) return Fail("trailing bytes after row");
    return row;
  }

 private:
  Error Fail(const std::string& message) const {
    return Error(ErrorCode::kParseError,
                 "snapshot row byte " + std::to_string(pos_) + ": " + message);
  }

  bool TryConsume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!TryConsume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::Ok();
  }

  Result<std::string> ParseString() {
    LDP_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        c = text_[pos_++];
      }
      out.push_back(c);
    }
    LDP_RETURN_IF_ERROR(Expect('"'));
    return out;
  }

  Result<double> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a number");
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return Fail("bad number '" + token + "'");
    }
    return value;
  }

  Result<uint64_t> ParseU64() {
    LDP_ASSIGN_OR_RETURN(double v, ParseNumber());
    if (v < 0) return Fail("expected a non-negative integer");
    return static_cast<uint64_t>(v);
  }

  Status ParseCounters(JsonlRow* row) {
    LDP_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) LDP_RETURN_IF_ERROR(Expect(','));
      first = false;
      LDP_ASSIGN_OR_RETURN(std::string name, ParseString());
      LDP_RETURN_IF_ERROR(Expect(':'));
      LDP_RETURN_IF_ERROR(Expect('{'));
      JsonlRow::CounterCell cell;
      bool first_field = true;
      while (!TryConsume('}')) {
        if (!first_field) LDP_RETURN_IF_ERROR(Expect(','));
        first_field = false;
        LDP_ASSIGN_OR_RETURN(std::string field, ParseString());
        LDP_RETURN_IF_ERROR(Expect(':'));
        LDP_ASSIGN_OR_RETURN(uint64_t value, ParseU64());
        if (field == "total") {
          cell.total = value;
        } else if (field == "delta") {
          cell.delta = value;
        } else {
          return Fail("unknown counter field '" + field + "'");
        }
      }
      row->counters.emplace_back(std::move(name), cell);
    }
    return Status::Ok();
  }

  Status ParseGauges(JsonlRow* row) {
    LDP_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) LDP_RETURN_IF_ERROR(Expect(','));
      first = false;
      LDP_ASSIGN_OR_RETURN(std::string name, ParseString());
      LDP_RETURN_IF_ERROR(Expect(':'));
      LDP_ASSIGN_OR_RETURN(double value, ParseNumber());
      row->gauges.emplace_back(std::move(name),
                               static_cast<int64_t>(value));
    }
    return Status::Ok();
  }

  Status ParseHistograms(JsonlRow* row) {
    LDP_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (!TryConsume('}')) {
      if (!first) LDP_RETURN_IF_ERROR(Expect(','));
      first = false;
      LDP_ASSIGN_OR_RETURN(std::string name, ParseString());
      LDP_RETURN_IF_ERROR(Expect(':'));
      LDP_RETURN_IF_ERROR(Expect('{'));
      JsonlRow::HistogramCell cell;
      bool first_field = true;
      while (!TryConsume('}')) {
        if (!first_field) LDP_RETURN_IF_ERROR(Expect(','));
        first_field = false;
        LDP_ASSIGN_OR_RETURN(std::string field, ParseString());
        LDP_RETURN_IF_ERROR(Expect(':'));
        if (field == "buckets") {
          LDP_RETURN_IF_ERROR(Expect('['));
          while (!TryConsume(']')) {
            if (!cell.buckets.empty()) LDP_RETURN_IF_ERROR(Expect(','));
            LDP_RETURN_IF_ERROR(Expect('['));
            LDP_ASSIGN_OR_RETURN(uint64_t index, ParseU64());
            LDP_RETURN_IF_ERROR(Expect(','));
            LDP_ASSIGN_OR_RETURN(uint64_t count, ParseU64());
            LDP_RETURN_IF_ERROR(Expect(']'));
            if (index >= LogHistogram::kNumBuckets) {
              return Fail("bucket index out of range");
            }
            cell.buckets.emplace_back(static_cast<uint32_t>(index), count);
          }
          continue;
        }
        LDP_ASSIGN_OR_RETURN(double value, ParseNumber());
        if (field == "count") {
          cell.count = static_cast<uint64_t>(value);
        } else if (field == "p50") {
          cell.p50 = value;
        } else if (field == "p95") {
          cell.p95 = value;
        } else if (field == "p99") {
          cell.p99 = value;
        } else if (field == "max") {
          cell.max = static_cast<uint64_t>(value);
        } else if (field == "mean") {
          cell.mean = value;
        } else {
          return Fail("unknown histogram field '" + field + "'");
        }
      }
      row->histograms.emplace_back(std::move(name), std::move(cell));
    }
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Merge one aligned set of rows (one per stream, last-row carried
// forward) into a single output row; deltas are fixed up by the caller.
JsonlRow MergeRowSet(const std::vector<const JsonlRow*>& rows, uint64_t seq) {
  JsonlRow merged;
  merged.seq = seq;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, std::vector<const JsonlRow::HistogramCell*>> hists;
  for (const JsonlRow* row : rows) {
    merged.ts_ms = std::max(merged.ts_ms, row->ts_ms);
    for (const auto& [name, cell] : row->counters) counters[name] += cell.total;
    for (const auto& [name, value] : row->gauges) gauges[name] += value;
    for (const auto& [name, cell] : row->histograms) {
      hists[name].push_back(&cell);
    }
  }
  for (const auto& [name, total] : counters) {
    merged.counters.emplace_back(name, JsonlRow::CounterCell{total, 0});
  }
  merged.gauges.assign(gauges.begin(), gauges.end());
  for (const auto& [name, cells] : hists) {
    bool exact = std::all_of(cells.begin(), cells.end(),
                             [](const JsonlRow::HistogramCell* cell) {
                               return cell->count == 0 ||
                                      !cell->buckets.empty();
                             });
    JsonlRow::HistogramCell out;
    double weighted_sum = 0;
    for (const JsonlRow::HistogramCell* cell : cells) {
      out.count += cell->count;
      out.max = std::max(out.max, cell->max);
      weighted_sum += cell->mean * static_cast<double>(cell->count);
    }
    out.mean = out.count > 0 ? weighted_sum / static_cast<double>(out.count)
                             : 0.0;
    if (exact) {
      // Rebuild one combined distribution and recompute the percentiles.
      HistogramSnapshot combined;
      combined.buckets.resize(LogHistogram::kNumBuckets, 0);
      for (const JsonlRow::HistogramCell* cell : cells) {
        for (const auto& [index, count] : cell->buckets) {
          combined.buckets[index] += count;
          combined.count += count;
        }
        combined.max = std::max(combined.max, cell->max);
      }
      out.p50 = combined.Quantile(0.50);
      out.p95 = combined.Quantile(0.95);
      out.p99 = combined.Quantile(0.99);
      for (size_t i = 0; i < combined.buckets.size(); ++i) {
        if (combined.buckets[i] != 0) {
          out.buckets.emplace_back(static_cast<uint32_t>(i),
                                   combined.buckets[i]);
        }
      }
    } else {
      // No buckets to merge: each percentile's upper bound is the max of
      // the per-stream values (a merged pXX can only move toward the
      // heavier stream, never above the heaviest).
      for (const JsonlRow::HistogramCell* cell : cells) {
        out.p50 = std::max(out.p50, cell->p50);
        out.p95 = std::max(out.p95, cell->p95);
        out.p99 = std::max(out.p99, cell->p99);
      }
    }
    merged.histograms.emplace_back(name, std::move(out));
  }
  return merged;
}

}  // namespace

Result<JsonlRow> ParseJsonlRow(std::string_view line) {
  return RowParser(line).Parse();
}

Result<std::vector<JsonlRow>> ReadJsonlFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Error(ErrorCode::kIoError,
                 "open " + path + ": " + std::strerror(errno));
  }
  std::vector<JsonlRow> rows;
  std::string line;
  int c;
  auto flush_line = [&]() -> Status {
    if (line.empty()) return Status::Ok();
    auto row = ParseJsonlRow(line);
    if (!row.ok()) {
      return Error(row.error().code(),
                   path + " row " + std::to_string(rows.size()) + ": " +
                       row.error().message());
    }
    rows.push_back(std::move(*row));
    line.clear();
    return Status::Ok();
  };
  while ((c = std::fgetc(file)) != EOF) {
    if (c == '\n') {
      if (auto s = flush_line(); !s.ok()) {
        std::fclose(file);
        return s.error();
      }
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  std::fclose(file);
  if (auto s = flush_line(); !s.ok()) return s.error();
  return rows;
}

std::vector<JsonlRow> MergeJsonlStreams(
    const std::vector<std::vector<JsonlRow>>& streams) {
  size_t length = 0;
  for (const auto& stream : streams) {
    length = std::max(length, stream.size());
  }
  std::vector<JsonlRow> merged;
  merged.reserve(length);
  std::vector<const JsonlRow*> aligned;
  for (size_t i = 0; i < length; ++i) {
    aligned.clear();
    for (const auto& stream : streams) {
      if (stream.empty()) continue;
      aligned.push_back(&stream[std::min(i, stream.size() - 1)]);
    }
    merged.push_back(MergeRowSet(aligned, i));
    // Deltas restate rate against the merged stream's own previous row.
    if (i > 0) {
      const JsonlRow& prev = merged[merged.size() - 2];
      for (auto& [name, cell] : merged.back().counters) {
        uint64_t before = 0;
        for (const auto& [prev_name, prev_cell] : prev.counters) {
          if (prev_name == name) {
            before = prev_cell.total;
            break;
          }
        }
        cell.delta = cell.total >= before ? cell.total - before : 0;
      }
    } else {
      for (auto& [name, cell] : merged.back().counters) {
        cell.delta = cell.total;
      }
    }
  }
  return merged;
}

}  // namespace ldp::stats
