// Offline side of the metrics JSONL format: parse rows written by
// MetricsSnapshotter back into JsonlRow, and fold N per-agent row streams
// into one merged stream (ldp_trace_stats merge; the distributed replay
// controller does the same merge live from wire snapshots).
//
// Merge semantics, row by row: output row i combines each input stream's
// row i, with streams shorter than i carrying their last row forward —
// rows are cumulative, so a finished agent's totals persist. Counters and
// gauges sum. Histograms merge exactly via sparse buckets when every
// input row carries them (emit_buckets); otherwise count/max/mean combine
// exactly and each percentile falls back to the max across inputs (an
// upper bound — the merged distribution's pXX cannot exceed it).
#ifndef LDPLAYER_STATS_SNAPSHOT_IO_H
#define LDPLAYER_STATS_SNAPSHOT_IO_H

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "stats/metrics.h"

namespace ldp::stats {

// Parses one JSONL row (as written by FormatJsonlRow). Unknown fields are
// an error: the format has one writer, so a mismatch means a wrong file.
Result<JsonlRow> ParseJsonlRow(std::string_view line);

// All rows of one snapshot file, in order. Blank lines are skipped.
Result<std::vector<JsonlRow>> ReadJsonlFile(const std::string& path);

// Folds the streams; output length is the longest input. Output seq is
// re-numbered 0..n-1, ts_ms is the max over the combined rows, and
// counter deltas are recomputed from consecutive merged totals.
std::vector<JsonlRow> MergeJsonlStreams(
    const std::vector<std::vector<JsonlRow>>& streams);

}  // namespace ldp::stats

#endif  // LDPLAYER_STATS_SNAPSHOT_IO_H
