#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ldp::stats {

std::string Distribution::ToString(int precision) const {
  auto f = [precision](double v) { return ldp::FormatDouble(v, precision); };
  return "n=" + std::to_string(count) + " min=" + f(min) + " p5=" + f(p5) +
         " p25=" + f(p25) + " p50=" + f(p50) + " p75=" + f(p75) +
         " p95=" + f(p95) + " max=" + f(max) + " mean=" + f(mean) +
         " sd=" + f(stddev);
}

void Summary::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

double Summary::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double sq = 0;
  for (double s : samples_) sq += (s - mean) * (s - mean);
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double Summary::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<double> Summary::SortedCopy() const {
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

void Summary::Finalize() {
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double Summary::Quantile(double q) const {
  if (samples_.empty()) return 0;
  if (q <= 0) return sorted_ ? samples_.front() : Min();
  if (q >= 1) return sorted_ ? samples_.back() : Max();

  const std::vector<double>& sorted =
      sorted_ ? samples_ : (samples_ = SortedCopy(), sorted_ = true, samples_);
  // Linear interpolation between closest ranks (type-7 quantile, same as R
  // and numpy defaults).
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

Distribution Summary::Summarize() const {
  Distribution d;
  d.count = samples_.size();
  if (samples_.empty()) return d;
  d.mean = Mean();
  d.stddev = Stddev();
  d.min = Quantile(0);
  d.p5 = Quantile(0.05);
  d.p25 = Quantile(0.25);
  d.p50 = Quantile(0.50);
  d.p75 = Quantile(0.75);
  d.p95 = Quantile(0.95);
  d.max = Quantile(1);
  return d;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples,
                                   size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  size_t step = n <= max_points ? 1 : n / max_points;
  for (size_t i = 0; i < n; i += step) {
    out.push_back(CdfPoint{samples[i],
                           static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().fraction < 1.0) {
    out.push_back(CdfPoint{samples.back(), 1.0});
  }
  return out;
}

}  // namespace ldp::stats
