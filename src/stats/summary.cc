#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace ldp::stats {

std::string Distribution::ToString(int precision) const {
  auto f = [precision](double v) { return ldp::FormatDouble(v, precision); };
  return "n=" + std::to_string(count) + " min=" + f(min) + " p5=" + f(p5) +
         " p25=" + f(p25) + " p50=" + f(p50) + " p75=" + f(p75) +
         " p95=" + f(p95) + " max=" + f(max) + " mean=" + f(mean) +
         " sd=" + f(stddev);
}

void Summary::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

double Summary::Mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::Stddev() const {
  if (samples_.size() < 2) return 0;
  double mean = Mean();
  double sq = 0;
  for (double s : samples_) sq += (s - mean) * (s - mean);
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double Summary::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::Max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::vector<double> Summary::SortedCopy() const {
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  return copy;
}

void Summary::Finalize() {
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double Summary::QuantileFromSorted(const std::vector<double>& sorted,
                                   double q) {
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  // Linear interpolation between closest ranks (type-7 quantile, same as R
  // and numpy defaults).
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

double Summary::Quantile(double q) const {
  if (samples_.empty()) return 0;
  // Finalize() is the only sort-in-place point; an unfinalized Summary sorts
  // a copy per call so const access never mutates shared state (a snapshot
  // thread may summarize while another thread reads).
  if (sorted_) return QuantileFromSorted(samples_, q);
  return QuantileFromSorted(SortedCopy(), q);
}

Distribution Summary::Summarize() const {
  Distribution d;
  d.count = samples_.size();
  if (samples_.empty()) return d;
  // One sort at most, then every statistic from the same sorted vector:
  // min/max are the ends, quantiles index in, and the moments come from a
  // single Welford pass.
  std::vector<double> copy;
  if (!sorted_) copy = SortedCopy();
  const std::vector<double>& sorted = sorted_ ? samples_ : copy;
  double mean = 0;
  double m2 = 0;
  size_t k = 0;
  for (double s : sorted) {
    ++k;
    double delta = s - mean;
    mean += delta / static_cast<double>(k);
    m2 += delta * (s - mean);
  }
  d.mean = mean;
  d.stddev =
      d.count > 1 ? std::sqrt(m2 / static_cast<double>(d.count - 1)) : 0;
  d.min = sorted.front();
  d.p5 = QuantileFromSorted(sorted, 0.05);
  d.p25 = QuantileFromSorted(sorted, 0.25);
  d.p50 = QuantileFromSorted(sorted, 0.50);
  d.p75 = QuantileFromSorted(sorted, 0.75);
  d.p95 = QuantileFromSorted(sorted, 0.95);
  d.max = sorted.back();
  return d;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples,
                                   size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  if (max_points <= 1) return {CdfPoint{samples.back(), 1.0}};
  // Ceiling stride keeps strided points <= max_points - 1 when downsampling,
  // leaving room for the forced final point at (max, 1.0).
  size_t step = n <= max_points ? 1 : (n + max_points - 2) / (max_points - 1);
  for (size_t i = 0; i < n; i += step) {
    double value = samples[i];
    double fraction = static_cast<double>(i + 1) / static_cast<double>(n);
    // Equal sample values collapse into one point at the highest fraction
    // reached — duplicate x values make the plotted CDF non-functional.
    if (!out.empty() && out.back().value == value) {
      out.back().fraction = fraction;
    } else {
      out.push_back(CdfPoint{value, fraction});
    }
  }
  // The CDF must end at (max, 1.0); extend the last point if it is already
  // at the max, otherwise append the endpoint.
  if (out.back().value == samples.back()) {
    out.back().fraction = 1.0;
  } else {
    out.push_back(CdfPoint{samples.back(), 1.0});
  }
  return out;
}

}  // namespace ldp::stats
