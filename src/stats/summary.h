// Sample summaries: exact quantiles, moments, and the five-number summaries
// (median, quartiles, 5th/95th percentiles) that the paper's box plots use.
#ifndef LDPLAYER_STATS_SUMMARY_H
#define LDPLAYER_STATS_SUMMARY_H

#include <cstddef>
#include <string>
#include <vector>

namespace ldp::stats {

// The statistics every figure in the paper reports.
struct Distribution {
  double min = 0;
  double p5 = 0;
  double p25 = 0;
  double p50 = 0;
  double p75 = 0;
  double p95 = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  size_t count = 0;

  std::string ToString(int precision = 3) const;
};

// Accumulates raw samples; quantiles are exact (computed by sorting a copy,
// or in place via Finalize). Suits experiment-sized sample counts (≤ 10^8).
//
// Thread safety: const accessors never mutate state, so concurrent reads of
// a quiescent Summary are safe. Call Finalize() once writing is done to make
// repeated Quantile calls O(1); before that each call sorts a copy.
class Summary {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  void AddAll(const std::vector<double>& samples);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  double Mean() const;
  double Stddev() const;
  double Min() const;
  double Max() const;

  // Exact quantile with linear interpolation, q in [0,1].
  double Quantile(double q) const;

  Distribution Summarize() const;

  // Sorts the sample buffer in place so subsequent Quantile calls are O(1)
  // after O(n log n) once. Adding more samples resets the sorted state.
  void Finalize();

  void Clear() { samples_.clear(); sorted_ = false; }

  // Exact type-7 quantile over an already-sorted, non-empty sample vector.
  // Shared with the metrics layer's accuracy tests.
  static double QuantileFromSorted(const std::vector<double>& sorted, double q);

 private:
  std::vector<double> SortedCopy() const;

  std::vector<double> samples_;
  bool sorted_ = false;
};

// Points of the empirical CDF, downsampled to at most `max_points` for
// plotting: (value, cumulative_fraction).
struct CdfPoint {
  double value;
  double fraction;
};
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples,
                                   size_t max_points = 200);

}  // namespace ldp::stats

#endif  // LDPLAYER_STATS_SUMMARY_H
