#include "stats/table.h"

#include <algorithm>

namespace ldp::stats {

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += cell;
      if (i + 1 < widths.size()) {
        line += std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::RenderCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += cells[i];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace ldp::stats
