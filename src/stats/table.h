// Plain-text table and CSV rendering for benchmark output. Every bench
// binary prints the paper's rows/series through these helpers so output
// stays uniform and machine-extractable.
#ifndef LDPLAYER_STATS_TABLE_H
#define LDPLAYER_STATS_TABLE_H

#include <string>
#include <vector>

namespace ldp::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Column-aligned ASCII rendering with a header separator.
  std::string Render() const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string RenderCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ldp::stats

#endif  // LDPLAYER_STATS_TABLE_H
