#include "stats/timeseries.h"

#include <algorithm>

namespace ldp::stats {

void RateCounter::Record(NanoTime t, uint64_t count) {
  if (!have_origin_) {
    origin_ = t;
    have_origin_ = true;
  }
  if (t < origin_) {
    // Shift the origin down to cover earlier events — unless doing so would
    // blow the bucket cap, in which case the outlier is discarded.
    uint64_t shift_buckets = static_cast<uint64_t>(
        (origin_ - t + bucket_width_ - 1) / bucket_width_);
    if (shift_buckets > max_buckets_ ||
        buckets_.size() + shift_buckets > max_buckets_) {
      discarded_ += count;
      return;
    }
    buckets_.insert(buckets_.begin(), static_cast<size_t>(shift_buckets), 0);
    origin_ -= static_cast<NanoDuration>(shift_buckets) * bucket_width_;
  }
  uint64_t index = static_cast<uint64_t>((t - origin_) / bucket_width_);
  if (index >= max_buckets_) {
    discarded_ += count;
    return;
  }
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[static_cast<size_t>(index)] += count;
  total_ += count;
}

std::vector<uint64_t> RateCounter::BucketCounts() const { return buckets_; }

std::vector<double> RateCounter::Rates() const {
  std::vector<double> rates;
  rates.reserve(buckets_.size());
  double scale =
      static_cast<double>(kNanosPerSecond) / static_cast<double>(bucket_width_);
  for (uint64_t c : buckets_) {
    rates.push_back(static_cast<double>(c) * scale);
  }
  return rates;
}

double GaugeSeries::SteadyStateMean(NanoTime from) const {
  double sum = 0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.time >= from) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0 : sum / static_cast<double>(n);
}

double GaugeSeries::SteadyStateMax(NanoTime from) const {
  double best = 0;
  for (const auto& p : points_) {
    if (p.time >= from) best = std::max(best, p.value);
  }
  return best;
}

}  // namespace ldp::stats
