// Time-bucketed metrics: per-second query-rate counters (Fig 8), and sampled
// gauges over experiment time (memory / connection counts in Fig 13/14).
#ifndef LDPLAYER_STATS_TIMESERIES_H
#define LDPLAYER_STATS_TIMESERIES_H

#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace ldp::stats {

// Counts events into fixed-width time buckets starting at a configurable
// origin. Used to compute per-second query rates of original and replayed
// traces.
//
// Growth is bounded: a sample whose timestamp would require more than
// `max_buckets` buckets (in either direction — one corrupt far-future or
// far-past trace timestamp, not gigabytes of zeros) is dropped and counted
// in discarded(). The default cap covers ~45 days at 1-second buckets.
class RateCounter {
 public:
  static constexpr size_t kDefaultMaxBuckets = 1u << 22;  // ~4M

  explicit RateCounter(NanoDuration bucket_width = kNanosPerSecond,
                       size_t max_buckets = kDefaultMaxBuckets)
      : bucket_width_(bucket_width),
        max_buckets_(max_buckets > 0 ? max_buckets : 1) {}

  void Record(NanoTime t, uint64_t count = 1);

  // Bucket counts from the first to the last non-empty bucket (inclusive).
  // Empty if nothing was recorded.
  std::vector<uint64_t> BucketCounts() const;

  // Rates in events/second for each bucket.
  std::vector<double> Rates() const;

  NanoTime origin() const { return origin_; }
  NanoDuration bucket_width() const { return bucket_width_; }
  uint64_t total() const { return total_; }

  // Samples dropped because they fell outside the max_buckets window.
  uint64_t discarded() const { return discarded_; }

 private:
  NanoDuration bucket_width_;
  size_t max_buckets_;
  NanoTime origin_ = 0;
  bool have_origin_ = false;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
  uint64_t discarded_ = 0;
};

// A sampled gauge: (time, value) pairs, e.g. bytes of memory over minutes.
struct GaugePoint {
  NanoTime time;
  double value;
};

class GaugeSeries {
 public:
  void Sample(NanoTime t, double value) { points_.push_back({t, value}); }
  const std::vector<GaugePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Last sampled value (0 when empty).
  double Last() const { return points_.empty() ? 0 : points_.back().value; }

  // Mean of samples at or after `from` — the paper's "steady state" window.
  double SteadyStateMean(NanoTime from) const;
  double SteadyStateMax(NanoTime from) const;

 private:
  std::vector<GaugePoint> points_;
};

}  // namespace ldp::stats

#endif  // LDPLAYER_STATS_TIMESERIES_H
