#include "trace/binary.h"

#include <fstream>
#include <memory>

namespace ldp::trace {
namespace {

constexpr uint8_t kFlagRd = 0x01;
constexpr uint8_t kFlagCd = 0x02;
constexpr uint8_t kFlagDo = 0x04;
constexpr uint8_t kFlagEdns = 0x08;

void EncodePayload(const QueryRecord& record, ByteWriter& writer) {
  writer.WriteU64(static_cast<uint64_t>(record.timestamp));
  writer.WriteU32(record.src.value());
  writer.WriteU16(record.src_port);
  writer.WriteU32(record.dst.value());
  writer.WriteU16(record.dst_port);
  writer.WriteU8(static_cast<uint8_t>(record.protocol));
  writer.WriteU16(record.id);
  uint8_t flags = 0;
  if (record.rd) flags |= kFlagRd;
  if (record.cd) flags |= kFlagCd;
  if (record.do_bit) flags |= kFlagDo;
  if (record.edns) flags |= kFlagEdns;
  writer.WriteU8(flags);
  writer.WriteU16(record.udp_payload_size);
  writer.WriteU16(static_cast<uint16_t>(record.qtype));
  writer.WriteU16(static_cast<uint16_t>(record.qclass));
  dns::EncodeNameUncompressed(record.qname, writer);
}

Result<QueryRecord> DecodePayload(std::span<const uint8_t> payload) {
  ByteReader reader(payload);
  QueryRecord record;
  LDP_ASSIGN_OR_RETURN(uint64_t ts, reader.ReadU64());
  record.timestamp = static_cast<NanoTime>(ts);
  LDP_ASSIGN_OR_RETURN(uint32_t src, reader.ReadU32());
  record.src = IpAddress(src);
  LDP_ASSIGN_OR_RETURN(record.src_port, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint32_t dst, reader.ReadU32());
  record.dst = IpAddress(dst);
  LDP_ASSIGN_OR_RETURN(record.dst_port, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint8_t protocol, reader.ReadU8());
  if (protocol > static_cast<uint8_t>(Protocol::kTls)) {
    return Error(ErrorCode::kParseError, "bad protocol byte");
  }
  record.protocol = static_cast<Protocol>(protocol);
  LDP_ASSIGN_OR_RETURN(record.id, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadU8());
  record.rd = flags & kFlagRd;
  record.cd = flags & kFlagCd;
  record.do_bit = flags & kFlagDo;
  record.edns = flags & kFlagEdns;
  LDP_ASSIGN_OR_RETURN(record.udp_payload_size, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(uint16_t qtype, reader.ReadU16());
  record.qtype = static_cast<dns::RRType>(qtype);
  LDP_ASSIGN_OR_RETURN(uint16_t qclass, reader.ReadU16());
  record.qclass = static_cast<dns::RRClass>(qclass);
  LDP_ASSIGN_OR_RETURN(record.qname, dns::DecodeName(reader));
  if (!reader.AtEnd()) {
    return Error(ErrorCode::kParseError, "trailing bytes in binary record");
  }
  return record;
}

}  // namespace

void EncodeBinaryRecord(const QueryRecord& record, ByteWriter& writer) {
  ByteWriter payload;
  EncodePayload(record, payload);
  writer.WriteU16(static_cast<uint16_t>(payload.size()));
  writer.WriteBytes(payload.data());
}

Result<QueryRecord> DecodeBinaryRecord(ByteReader& reader) {
  LDP_ASSIGN_OR_RETURN(uint16_t length, reader.ReadU16());
  LDP_ASSIGN_OR_RETURN(auto payload, reader.ReadSpan(length));
  return DecodePayload(payload);
}

Bytes EncodeBinaryTrace(const std::vector<QueryRecord>& records) {
  ByteWriter writer(records.size() * 48);
  for (const auto& record : records) EncodeBinaryRecord(record, writer);
  return std::move(writer).Take();
}

Result<std::vector<QueryRecord>> DecodeBinaryTrace(
    std::span<const uint8_t> data) {
  std::vector<QueryRecord> records;
  ByteReader reader(data);
  while (!reader.AtEnd()) {
    auto record = DecodeBinaryRecord(reader);
    if (!record.ok()) {
      return record.error().WithContext(
          "record " + std::to_string(records.size()));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Status WriteBinaryTraceFile(const std::vector<QueryRecord>& records,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  Bytes data = EncodeBinaryTrace(records);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Error(ErrorCode::kIoError, "write failed: " + path);
  return Status::Ok();
}

Result<BinaryTraceReader> BinaryTraceReader::Open(const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*in) return Error(ErrorCode::kIoError, "cannot open " + path);
  return BinaryTraceReader(std::move(in));
}

bool BinaryTraceReader::AtEnd() {
  return in_->peek() == std::ifstream::traits_type::eof();
}

Result<QueryRecord> BinaryTraceReader::Next() {
  uint8_t len_buf[2];
  in_->read(reinterpret_cast<char*>(len_buf), 2);
  if (in_->gcount() == 0) {
    return Error(ErrorCode::kNotFound, "end of trace");
  }
  if (in_->gcount() != 2) {
    return Error(ErrorCode::kTruncated, "partial length prefix");
  }
  uint16_t length = static_cast<uint16_t>((len_buf[0] << 8) | len_buf[1]);
  Bytes payload(length);
  in_->read(reinterpret_cast<char*>(payload.data()), length);
  if (in_->gcount() != length) {
    return Error(ErrorCode::kTruncated, "partial record payload");
  }
  return DecodePayload(payload);
}

}  // namespace ldp::trace
