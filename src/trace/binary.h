// Length-prefixed binary stream of internal query messages (paper §2.5,
// Fig 3): the pre-processed replay input format. Each record is
//
//   u16 length | payload
//
// with a fixed-layout payload (big-endian): i64 timestamp-ns, u32 src, u16
// sport, u32 dst, u16 dport, u8 protocol, u16 id, u8 flags(rd|cd|do|edns),
// u16 edns-size, u16 qtype, u16 qclass, qname (uncompressed wire form).
// The length prefix lets the reader split records without parsing, exactly
// like DNS-over-TCP framing.
#ifndef LDPLAYER_TRACE_BINARY_H
#define LDPLAYER_TRACE_BINARY_H

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "trace/record.h"

namespace ldp::trace {

// Encodes one record (with its length prefix) onto the writer.
void EncodeBinaryRecord(const QueryRecord& record, ByteWriter& writer);

// Decodes one record from the reader positioned at a length prefix.
Result<QueryRecord> DecodeBinaryRecord(ByteReader& reader);

// Whole-buffer helpers.
Bytes EncodeBinaryTrace(const std::vector<QueryRecord>& records);
Result<std::vector<QueryRecord>> DecodeBinaryTrace(
    std::span<const uint8_t> data);

// Streaming file I/O (the reader yields records one at a time so replay can
// pre-load a bounded window, paper §3 "the reader pre-loads a window").
Status WriteBinaryTraceFile(const std::vector<QueryRecord>& records,
                            const std::string& path);

class BinaryTraceReader {
 public:
  // Opens the file; fails fast when unreadable.
  static Result<BinaryTraceReader> Open(const std::string& path);

  // Next record, or kNotFound at end of stream.
  Result<QueryRecord> Next();

  bool AtEnd();

 private:
  explicit BinaryTraceReader(std::unique_ptr<std::ifstream> in)
      : in_(std::move(in)) {}
  std::unique_ptr<std::ifstream> in_;
};

}  // namespace ldp::trace

#endif  // LDPLAYER_TRACE_BINARY_H
