#include "trace/pcap.h"

#include <fstream>

#include "dns/framing.h"

namespace ldp::trace {
namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr uint32_t kLinkTypeEthernet = 1;
constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint8_t kIpProtoTcp = 6;
constexpr uint8_t kIpProtoUdp = 17;

// pcap is host-endian by convention of its writer; we always write
// little-endian (the near-universal choice) and read both.
void WriteLE32(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void WriteLE16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

class EndianReader {
 public:
  EndianReader(std::span<const uint8_t> data, bool swapped)
      : data_(data), swapped_(swapped) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) return Error(ErrorCode::kTruncated, "pcap u32");
    uint32_t v;
    if (swapped_) {
      v = static_cast<uint32_t>(data_[offset_]) |
          (static_cast<uint32_t>(data_[offset_ + 1]) << 8) |
          (static_cast<uint32_t>(data_[offset_ + 2]) << 16) |
          (static_cast<uint32_t>(data_[offset_ + 3]) << 24);
    } else {
      v = (static_cast<uint32_t>(data_[offset_]) << 24) |
          (static_cast<uint32_t>(data_[offset_ + 1]) << 16) |
          (static_cast<uint32_t>(data_[offset_ + 2]) << 8) |
          static_cast<uint32_t>(data_[offset_ + 3]);
    }
    offset_ += 4;
    return v;
  }

  Result<std::span<const uint8_t>> ReadSpan(size_t n) {
    if (remaining() < n) return Error(ErrorCode::kTruncated, "pcap span");
    auto out = data_.subspan(offset_, n);
    offset_ += n;
    return out;
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Error(ErrorCode::kTruncated, "pcap skip");
    offset_ += n;
    return Status::Ok();
  }

 private:
  std::span<const uint8_t> data_;
  bool swapped_;
  size_t offset_ = 0;
};

// Parses Ethernet/IPv4/UDP|TCP out of one captured frame. Returns kNotFound
// for frames to skip (non-IP, no payload), other errors for corrupt data.
Result<PacketRecord> ParseFrame(std::span<const uint8_t> frame,
                                NanoTime timestamp) {
  ByteReader reader(frame);
  // Ethernet: dst(6) src(6) ethertype(2).
  LDP_RETURN_IF_ERROR(reader.Skip(12));
  LDP_ASSIGN_OR_RETURN(uint16_t ethertype, reader.ReadU16());
  if (ethertype != kEtherTypeIpv4) {
    return Error(ErrorCode::kNotFound, "not IPv4");
  }
  // IPv4 header.
  LDP_ASSIGN_OR_RETURN(uint8_t version_ihl, reader.ReadU8());
  if ((version_ihl >> 4) != 4) {
    return Error(ErrorCode::kParseError, "bad IP version");
  }
  size_t ihl = static_cast<size_t>(version_ihl & 0x0f) * 4;
  if (ihl < 20) return Error(ErrorCode::kParseError, "bad IHL");
  LDP_RETURN_IF_ERROR(reader.Skip(1));  // DSCP/ECN
  LDP_ASSIGN_OR_RETURN(uint16_t total_length, reader.ReadU16());
  LDP_RETURN_IF_ERROR(reader.Skip(5));  // id, flags/frag offset, TTL
  LDP_ASSIGN_OR_RETURN(uint8_t ip_proto, reader.ReadU8());
  LDP_RETURN_IF_ERROR(reader.Skip(2));  // checksum
  LDP_ASSIGN_OR_RETURN(uint32_t src, reader.ReadU32());
  LDP_ASSIGN_OR_RETURN(uint32_t dst, reader.ReadU32());
  LDP_RETURN_IF_ERROR(reader.Skip(ihl - 20));  // options

  size_t ip_payload_len = total_length >= ihl ? total_length - ihl : 0;

  PacketRecord packet;
  packet.timestamp = timestamp;
  packet.src = IpAddress(src);
  packet.dst = IpAddress(dst);

  if (ip_proto == kIpProtoUdp) {
    packet.protocol = Protocol::kUdp;
    LDP_ASSIGN_OR_RETURN(packet.src_port, reader.ReadU16());
    LDP_ASSIGN_OR_RETURN(packet.dst_port, reader.ReadU16());
    LDP_ASSIGN_OR_RETURN(uint16_t udp_length, reader.ReadU16());
    LDP_RETURN_IF_ERROR(reader.Skip(2));  // checksum
    if (udp_length < 8) return Error(ErrorCode::kParseError, "bad UDP length");
    size_t payload_len = udp_length - 8;
    LDP_ASSIGN_OR_RETURN(auto payload, reader.ReadSpan(payload_len));
    packet.payload.assign(payload.begin(), payload.end());
    return packet;
  }
  if (ip_proto == kIpProtoTcp) {
    packet.protocol = Protocol::kTcp;
    LDP_ASSIGN_OR_RETURN(packet.src_port, reader.ReadU16());
    LDP_ASSIGN_OR_RETURN(packet.dst_port, reader.ReadU16());
    LDP_RETURN_IF_ERROR(reader.Skip(8));  // seq, ack
    LDP_ASSIGN_OR_RETURN(uint8_t data_offset, reader.ReadU8());
    size_t tcp_header = static_cast<size_t>(data_offset >> 4) * 4;
    if (tcp_header < 20) return Error(ErrorCode::kParseError, "bad TCP offset");
    LDP_RETURN_IF_ERROR(reader.Skip(tcp_header - 13));  // rest of header
    if (ip_payload_len < tcp_header) {
      return Error(ErrorCode::kParseError, "TCP header beyond IP length");
    }
    size_t payload_len = ip_payload_len - tcp_header;
    if (payload_len == 0) {
      return Error(ErrorCode::kNotFound, "bare ACK");
    }
    LDP_ASSIGN_OR_RETURN(auto payload, reader.ReadSpan(payload_len));
    packet.payload.assign(payload.begin(), payload.end());
    return packet;
  }
  return Error(ErrorCode::kNotFound, "not UDP/TCP");
}

void AppendFrame(Bytes& out, const PacketRecord& packet) {
  // Build Ethernet + IPv4 + transport headers around the payload.
  ByteWriter frame;
  // Ethernet: synthetic MACs.
  for (int i = 0; i < 6; ++i) frame.WriteU8(0x02);
  for (int i = 0; i < 6; ++i) frame.WriteU8(0x04);
  frame.WriteU16(kEtherTypeIpv4);

  bool tcp = packet.protocol != Protocol::kUdp;
  size_t transport_header = tcp ? 20 : 8;
  size_t ip_total = 20 + transport_header + packet.payload.size();

  frame.WriteU8(0x45);  // v4, IHL 5
  frame.WriteU8(0);
  frame.WriteU16(static_cast<uint16_t>(ip_total));
  frame.WriteU16(0);       // id
  frame.WriteU16(0x4000);  // DF
  frame.WriteU8(64);       // TTL
  frame.WriteU8(tcp ? kIpProtoTcp : kIpProtoUdp);
  frame.WriteU16(0);  // checksum: readers we target do not verify
  frame.WriteU32(packet.src.value());
  frame.WriteU32(packet.dst.value());

  if (tcp) {
    frame.WriteU16(packet.src_port);
    frame.WriteU16(packet.dst_port);
    frame.WriteU32(1);        // seq
    frame.WriteU32(1);        // ack
    frame.WriteU8(5 << 4);    // data offset 5 words
    frame.WriteU8(0x18);      // PSH|ACK
    frame.WriteU16(65535);    // window
    frame.WriteU16(0);        // checksum
    frame.WriteU16(0);        // urgent
  } else {
    frame.WriteU16(packet.src_port);
    frame.WriteU16(packet.dst_port);
    frame.WriteU16(static_cast<uint16_t>(8 + packet.payload.size()));
    frame.WriteU16(0);  // checksum
  }
  frame.WriteBytes(packet.payload);

  // pcap per-packet header.
  uint64_t abs = static_cast<uint64_t>(packet.timestamp);
  WriteLE32(out, static_cast<uint32_t>(abs / kNanosPerSecond));
  WriteLE32(out, static_cast<uint32_t>((abs % kNanosPerSecond) / 1000));
  WriteLE32(out, static_cast<uint32_t>(frame.size()));
  WriteLE32(out, static_cast<uint32_t>(frame.size()));
  out.insert(out.end(), frame.data().begin(), frame.data().end());
}

}  // namespace

Bytes WritePcap(const std::vector<PacketRecord>& packets) {
  Bytes out;
  WriteLE32(out, kPcapMagic);
  WriteLE16(out, 2);   // version major
  WriteLE16(out, 4);   // version minor
  WriteLE32(out, 0);   // thiszone
  WriteLE32(out, 0);   // sigfigs
  WriteLE32(out, 65535);  // snaplen
  WriteLE32(out, kLinkTypeEthernet);
  for (const auto& packet : packets) AppendFrame(out, packet);
  return out;
}

Status WritePcapFile(const std::vector<PacketRecord>& packets,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  Bytes data = WritePcap(packets);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) return Error(ErrorCode::kIoError, "write failed: " + path);
  return Status::Ok();
}

Result<std::vector<PacketRecord>> ReadPcap(std::span<const uint8_t> data) {
  if (data.size() < 24) {
    return Error(ErrorCode::kTruncated, "pcap shorter than global header");
  }
  uint32_t magic_le = static_cast<uint32_t>(data[0]) |
                      (static_cast<uint32_t>(data[1]) << 8) |
                      (static_cast<uint32_t>(data[2]) << 16) |
                      (static_cast<uint32_t>(data[3]) << 24);
  bool swapped;  // true: file is little-endian
  if (magic_le == kPcapMagic) {
    swapped = true;
  } else if (magic_le == 0xd4c3b2a1) {
    swapped = false;
  } else {
    return Error(ErrorCode::kParseError, "bad pcap magic");
  }

  EndianReader reader(data, swapped);
  LDP_RETURN_IF_ERROR(reader.Skip(20));  // rest of global header
  LDP_ASSIGN_OR_RETURN(uint32_t linktype, reader.ReadU32());
  if (linktype != kLinkTypeEthernet) {
    return Error(ErrorCode::kUnsupported,
                 "only Ethernet linktype supported, got " +
                     std::to_string(linktype));
  }

  std::vector<PacketRecord> packets;
  while (reader.remaining() > 0) {
    LDP_ASSIGN_OR_RETURN(uint32_t ts_sec, reader.ReadU32());
    LDP_ASSIGN_OR_RETURN(uint32_t ts_usec, reader.ReadU32());
    LDP_ASSIGN_OR_RETURN(uint32_t incl_len, reader.ReadU32());
    LDP_ASSIGN_OR_RETURN(uint32_t orig_len, reader.ReadU32());
    (void)orig_len;  // snaplen is 65535; incl_len is authoritative here
    LDP_ASSIGN_OR_RETURN(auto frame, reader.ReadSpan(incl_len));
    NanoTime timestamp = static_cast<NanoTime>(ts_sec) * kNanosPerSecond +
                         static_cast<NanoTime>(ts_usec) * 1000;
    auto packet = ParseFrame(frame, timestamp);
    if (packet.ok()) {
      packets.push_back(std::move(*packet));
    } else if (packet.error().code() != ErrorCode::kNotFound) {
      return packet.error().WithContext(
          "packet " + std::to_string(packets.size()));
    }
  }
  return packets;
}

Result<std::vector<PacketRecord>> ReadPcapFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return ReadPcap(data);
}

Result<QueryRecord> PacketToQuery(const PacketRecord& packet) {
  LDP_ASSIGN_OR_RETURN(dns::Message message, PacketToMessage(packet));
  if (message.qr) {
    return Error(ErrorCode::kInvalidArgument, "packet is a response");
  }
  return QueryRecord::FromMessage(message, packet.timestamp, packet.src,
                                  packet.src_port, packet.dst,
                                  packet.dst_port, packet.protocol);
}

Result<dns::Message> PacketToMessage(const PacketRecord& packet) {
  if (packet.protocol == Protocol::kUdp) {
    return dns::Message::Decode(packet.payload);
  }
  // TCP/TLS payloads carry 2-byte framing; expect exactly one message.
  dns::StreamAssembler assembler;
  LDP_RETURN_IF_ERROR(assembler.Feed(packet.payload));
  auto wire = assembler.NextMessage();
  if (!wire.has_value()) {
    return Error(ErrorCode::kUnsupported,
                 "TCP segment does not hold a complete framed message");
  }
  return dns::Message::Decode(*wire);
}

PacketRecord MessageToPacket(const dns::Message& message, NanoTime time,
                             IpAddress src, uint16_t src_port, IpAddress dst,
                             uint16_t dst_port, Protocol protocol) {
  PacketRecord packet;
  packet.timestamp = time;
  packet.src = src;
  packet.src_port = src_port;
  packet.dst = dst;
  packet.dst_port = dst_port;
  packet.protocol = protocol;
  Bytes wire = message.Encode();
  // Encode() caps the wire at 65535 bytes (TC truncation), so framing
  // cannot fail here.
  packet.payload = protocol == Protocol::kUdp
                       ? std::move(wire)
                       : std::move(dns::FrameMessage(wire)).value();
  return packet;
}

}  // namespace ldp::trace
