// Minimal pcap (libpcap classic format, magic 0xa1b2c3d4) reader/writer with
// Ethernet → IPv4 → UDP/TCP parsing, enough to ingest captured DNS traffic
// and to emit synthetic captures other tools can open. This is the
// "network trace" input lane of the paper's Figure 3.
//
// TCP handling is packet-scoped: payloads are extracted per segment without
// cross-segment reassembly (the writer emits one whole framed DNS message
// per segment, so writer→reader round-trips are lossless; foreign captures
// with split segments surface as kUnsupported records that callers skip).
#ifndef LDPLAYER_TRACE_PCAP_H
#define LDPLAYER_TRACE_PCAP_H

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "trace/record.h"

namespace ldp::trace {

// One captured packet with transport metadata and raw L7 payload.
struct PacketRecord {
  NanoTime timestamp = 0;
  IpAddress src;
  uint16_t src_port = 0;
  IpAddress dst;
  uint16_t dst_port = 0;
  Protocol protocol = Protocol::kUdp;  // kTcp payloads carry 2-byte framing
  Bytes payload;

  bool operator==(const PacketRecord&) const = default;
};

// Serializes packets into a pcap byte stream (Ethernet linktype).
Bytes WritePcap(const std::vector<PacketRecord>& packets);
Status WritePcapFile(const std::vector<PacketRecord>& packets,
                     const std::string& path);

// Parses a pcap byte stream, keeping only IPv4 UDP/TCP packets that carry a
// payload; other packets (ARP, bare ACKs, non-IP) are skipped silently.
Result<std::vector<PacketRecord>> ReadPcap(std::span<const uint8_t> data);
Result<std::vector<PacketRecord>> ReadPcapFile(const std::string& path);

// Interprets a packet's payload as a DNS query and builds a QueryRecord.
// TCP payloads are expected to carry the 2-byte length framing.
Result<QueryRecord> PacketToQuery(const PacketRecord& packet);

// Decodes the DNS message in a packet (response harvesting path). TCP
// framing is stripped.
Result<dns::Message> PacketToMessage(const PacketRecord& packet);

// Builds a packet from a DNS message (framing added for TCP).
PacketRecord MessageToPacket(const dns::Message& message, NanoTime time,
                             IpAddress src, uint16_t src_port, IpAddress dst,
                             uint16_t dst_port, Protocol protocol);

}  // namespace ldp::trace

#endif  // LDPLAYER_TRACE_PCAP_H
