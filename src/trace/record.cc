#include "trace/record.h"

namespace ldp::trace {

std::string_view ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kUdp: return "udp";
    case Protocol::kTcp: return "tcp";
    case Protocol::kTls: return "tls";
  }
  return "?";
}

Result<Protocol> ProtocolFromString(std::string_view text) {
  if (text == "udp") return Protocol::kUdp;
  if (text == "tcp") return Protocol::kTcp;
  if (text == "tls") return Protocol::kTls;
  return Error(ErrorCode::kParseError, "unknown protocol: " + std::string(text));
}

dns::Message QueryRecord::ToMessage() const {
  dns::Message msg;
  msg.id = id;
  msg.rd = rd;
  msg.cd = cd;
  msg.questions.push_back(dns::Question{qname, qtype, qclass});
  if (edns) {
    msg.edns = dns::Edns{.udp_payload_size = udp_payload_size,
                         .do_bit = do_bit};
  }
  return msg;
}

QueryRecord QueryRecord::FromMessage(const dns::Message& message,
                                     NanoTime time, IpAddress src,
                                     uint16_t src_port, IpAddress dst,
                                     uint16_t dst_port, Protocol protocol) {
  QueryRecord record;
  record.timestamp = time;
  record.src = src;
  record.src_port = src_port;
  record.dst = dst;
  record.dst_port = dst_port;
  record.protocol = protocol;
  record.id = message.id;
  if (!message.questions.empty()) {
    record.qname = message.questions[0].name;
    record.qtype = message.questions[0].type;
    record.qclass = message.questions[0].klass;
  }
  record.rd = message.rd;
  record.cd = message.cd;
  if (message.edns.has_value()) {
    record.edns = true;
    record.udp_payload_size = message.edns->udp_payload_size;
    record.do_bit = message.edns->do_bit;
  }
  return record;
}

}  // namespace ldp::trace
