// Trace records: the replayable essence of one captured DNS query (paper
// Fig 3). A QueryRecord carries timing, addressing, transport, and the
// question — everything the query engine needs to rebuild and schedule the
// query — while PacketRecord (packet.h) keeps raw payloads for the zone
// constructor, which needs full responses.
#ifndef LDPLAYER_TRACE_RECORD_H
#define LDPLAYER_TRACE_RECORD_H

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/ip.h"
#include "common/result.h"
#include "dns/message.h"

namespace ldp::trace {

enum class Protocol : uint8_t { kUdp = 0, kTcp = 1, kTls = 2 };

std::string_view ProtocolName(Protocol protocol);
Result<Protocol> ProtocolFromString(std::string_view text);

struct QueryRecord {
  NanoTime timestamp = 0;  // nanoseconds since trace epoch
  IpAddress src;
  uint16_t src_port = 0;
  IpAddress dst;           // original query destination address (OQDA)
  uint16_t dst_port = 53;
  Protocol protocol = Protocol::kUdp;

  uint16_t id = 0;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;
  dns::RRClass qclass = dns::RRClass::kIN;
  bool rd = false;
  bool cd = false;

  bool edns = false;
  uint16_t udp_payload_size = 0;
  bool do_bit = false;

  bool operator==(const QueryRecord&) const = default;

  // Builds the wire-ready DNS query message this record describes.
  dns::Message ToMessage() const;

  // Extracts a record from a decoded query message plus transport metadata.
  static QueryRecord FromMessage(const dns::Message& message, NanoTime time,
                                 IpAddress src, uint16_t src_port,
                                 IpAddress dst, uint16_t dst_port,
                                 Protocol protocol);
};

}  // namespace ldp::trace

#endif  // LDPLAYER_TRACE_RECORD_H
