#include "trace/text.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace ldp::trace {

std::string FormatQueryLine(const QueryRecord& record) {
  std::string flags;
  if (record.rd) flags += "rd,";
  if (record.cd) flags += "cd,";
  if (record.do_bit) flags += "do,";
  if (flags.empty()) {
    flags = "-";
  } else {
    flags.pop_back();  // trailing comma
  }
  return FormatSeconds(record.timestamp) + " " +
         Endpoint{record.src, record.src_port}.ToString() + " " +
         Endpoint{record.dst, record.dst_port}.ToString() + " " +
         std::string(ProtocolName(record.protocol)) + " " +
         record.qname.ToString() + " " + dns::RRClassToString(record.qclass) +
         " " + dns::RRTypeToString(record.qtype) + " " +
         std::to_string(record.id) + " " + flags + " " +
         std::to_string(record.edns ? record.udp_payload_size : 0);
}

Result<QueryRecord> ParseQueryLine(std::string_view line) {
  auto fields = SplitWhitespace(line);
  if (fields.size() != 10) {
    return Error(ErrorCode::kParseError,
                 "expected 10 fields, got " + std::to_string(fields.size()) +
                     ": " + std::string(line));
  }
  QueryRecord record;

  // Timestamp "sec.nanos".
  {
    auto parts = Split(fields[0], '.');
    if (parts.size() > 2) {
      return Error(ErrorCode::kParseError, "bad timestamp");
    }
    LDP_ASSIGN_OR_RETURN(int64_t secs, ParseInt64(parts[0]));
    int64_t nanos = 0;
    if (parts.size() == 2) {
      std::string frac(parts[1]);
      if (frac.size() > 9) {
        return Error(ErrorCode::kParseError, "timestamp beyond ns precision");
      }
      frac.append(9 - frac.size(), '0');
      LDP_ASSIGN_OR_RETURN(nanos, ParseInt64(frac));
    }
    bool negative = !fields[0].empty() && fields[0][0] == '-';
    record.timestamp =
        negative ? secs * kNanosPerSecond - nanos : secs * kNanosPerSecond + nanos;
  }

  LDP_ASSIGN_OR_RETURN(Endpoint src, Endpoint::Parse(fields[1]));
  record.src = src.addr;
  record.src_port = src.port;
  LDP_ASSIGN_OR_RETURN(Endpoint dst, Endpoint::Parse(fields[2]));
  record.dst = dst.addr;
  record.dst_port = dst.port;
  LDP_ASSIGN_OR_RETURN(record.protocol, ProtocolFromString(fields[3]));
  LDP_ASSIGN_OR_RETURN(record.qname, dns::Name::Parse(fields[4]));
  LDP_ASSIGN_OR_RETURN(record.qclass, dns::RRClassFromString(fields[5]));
  LDP_ASSIGN_OR_RETURN(record.qtype, dns::RRTypeFromString(fields[6]));
  LDP_ASSIGN_OR_RETURN(uint64_t id, ParseUint64(fields[7]));
  if (id > 0xffff) {
    return Error(ErrorCode::kOutOfRange, "query id > 65535");
  }
  record.id = static_cast<uint16_t>(id);

  if (fields[8] != "-") {
    for (auto flag : Split(fields[8], ',')) {
      if (flag == "rd") record.rd = true;
      else if (flag == "cd") record.cd = true;
      else if (flag == "do") record.do_bit = true;
      else {
        return Error(ErrorCode::kParseError,
                     "unknown flag: " + std::string(flag));
      }
    }
  }

  LDP_ASSIGN_OR_RETURN(uint64_t edns_size, ParseUint64(fields[9]));
  if (edns_size > 0xffff) {
    return Error(ErrorCode::kOutOfRange, "EDNS size > 65535");
  }
  if (edns_size > 0 || record.do_bit) {
    record.edns = true;
    record.udp_payload_size =
        static_cast<uint16_t>(edns_size > 0 ? edns_size : 4096);
  }
  return record;
}

Status WriteTextTrace(const std::vector<QueryRecord>& records,
                      std::ostream& out) {
  out << "# time src dst proto qname qclass qtype id flags edns\n";
  for (const auto& record : records) {
    out << FormatQueryLine(record) << "\n";
  }
  if (!out) return Error(ErrorCode::kIoError, "text trace write failed");
  return Status::Ok();
}

Status WriteTextTraceFile(const std::vector<QueryRecord>& records,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Error(ErrorCode::kIoError, "cannot open " + path);
  return WriteTextTrace(records, out);
}

Result<std::vector<QueryRecord>> ReadTextTrace(std::istream& in) {
  std::vector<QueryRecord> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto record = ParseQueryLine(trimmed);
    if (!record.ok()) {
      return record.error().WithContext("line " + std::to_string(line_no));
    }
    records.push_back(std::move(*record));
  }
  return records;
}

Result<std::vector<QueryRecord>> ReadTextTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  return ReadTextTrace(in);
}

}  // namespace ldp::trace
