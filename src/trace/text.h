// Column-oriented plain-text trace format (paper §2.5): one line per query,
// human-readable and editable with standard tools. This is the mutation
// surface — the query mutator reads and writes exactly this.
//
//   <time> <src>:<sport> <dst>:<dport> <proto> <qname> <qclass> <qtype>
//   <id> <flags> <edns-size>
//
// flags is a comma-joined subset of {rd,cd,do} or "-"; edns-size is 0 when
// the query carries no OPT record. Lines starting with '#' are comments.
#ifndef LDPLAYER_TRACE_TEXT_H
#define LDPLAYER_TRACE_TEXT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "trace/record.h"

namespace ldp::trace {

std::string FormatQueryLine(const QueryRecord& record);
Result<QueryRecord> ParseQueryLine(std::string_view line);

// Whole-file helpers.
Status WriteTextTrace(const std::vector<QueryRecord>& records,
                      std::ostream& out);
Status WriteTextTraceFile(const std::vector<QueryRecord>& records,
                          const std::string& path);
Result<std::vector<QueryRecord>> ReadTextTrace(std::istream& in);
Result<std::vector<QueryRecord>> ReadTextTraceFile(const std::string& path);

}  // namespace ldp::trace

#endif  // LDPLAYER_TRACE_TEXT_H
