#include "trace/tracestats.h"

#include <cmath>
#include <unordered_set>

namespace ldp::trace {

TraceStats ComputeTraceStats(const std::vector<QueryRecord>& records) {
  TraceStats stats;
  stats.records = records.size();
  if (records.empty()) return stats;

  std::unordered_set<IpAddress> clients;
  size_t do_count = 0;
  size_t tcp_count = 0;
  for (const auto& record : records) {
    clients.insert(record.src);
    if (record.do_bit) ++do_count;
    if (record.protocol != Protocol::kUdp) ++tcp_count;
  }
  stats.unique_clients = clients.size();
  stats.fraction_do = static_cast<double>(do_count) /
                      static_cast<double>(records.size());
  stats.fraction_tcp = static_cast<double>(tcp_count) /
                       static_cast<double>(records.size());
  stats.duration = records.back().timestamp - records.front().timestamp;
  if (stats.duration > 0) {
    stats.mean_rate_qps = static_cast<double>(records.size()) /
                          ToSeconds(stats.duration);
  }

  if (records.size() >= 2) {
    // Single pass over inter-arrivals (traces are timestamp-sorted).
    double sum = 0, sq = 0;
    size_t n = records.size() - 1;
    for (size_t i = 1; i < records.size(); ++i) {
      double gap = ToSeconds(records[i].timestamp - records[i - 1].timestamp);
      sum += gap;
      sq += gap * gap;
    }
    double mean = sum / static_cast<double>(n);
    stats.interarrival_mean_s = mean;
    if (n >= 2) {
      double var = (sq - sum * mean) / static_cast<double>(n - 1);
      stats.interarrival_stddev_s = var > 0 ? std::sqrt(var) : 0;
    }
  }
  return stats;
}

}  // namespace ldp::trace
