// Per-trace inventory statistics — the columns of the paper's Table 1.
#ifndef LDPLAYER_TRACE_TRACESTATS_H
#define LDPLAYER_TRACE_TRACESTATS_H

#include <cstddef>
#include <vector>

#include "common/clock.h"
#include "trace/record.h"

namespace ldp::trace {

struct TraceStats {
  size_t records = 0;
  size_t unique_clients = 0;        // distinct source IPs
  NanoDuration duration = 0;        // last - first timestamp
  double interarrival_mean_s = 0;   // seconds, mean
  double interarrival_stddev_s = 0; // seconds, sample stddev
  double mean_rate_qps = 0;         // records / duration
  double fraction_do = 0;           // queries with the DO bit
  double fraction_tcp = 0;          // queries over TCP (or TLS)
};

TraceStats ComputeTraceStats(const std::vector<QueryRecord>& records);

}  // namespace ldp::trace

#endif  // LDPLAYER_TRACE_TRACESTATS_H
