#include "workload/hierarchy.h"

#include <cassert>

#include "common/log.h"

namespace ldp::workload {
namespace {

// Hands out unique public-looking addresses: nameservers from 198.51.0.0/16
// onward, hosts from 203.0.0.0/16 onward (TEST-NET-ish, never real targets).
class AddressAllocator {
 public:
  explicit AddressAllocator(uint32_t base) : next_(base) {}
  IpAddress Next() { return IpAddress(next_++); }

 private:
  uint32_t next_;
};

dns::ResourceRecord MakeSoa(const dns::Name& origin, const dns::Name& mname) {
  dns::SoaRdata soa;
  soa.mname = mname;
  soa.rname = *origin.Child("hostmaster");
  soa.serial = 2016040601;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 3600;
  return dns::ResourceRecord{origin, dns::RRType::kSOA, dns::RRClass::kIN,
                             86400, std::move(soa)};
}

const char* kHostLabels[] = {"www", "mail", "api", "cdn", "ns-ext", "ftp",
                             "vpn", "db"};

}  // namespace

// Well-known-looking TLD labels first, then generated ones.
std::string TldLabel(size_t index) {
  static const char* kCommon[] = {"com",  "net",  "org", "edu",  "gov",
                                  "io",   "info", "biz", "name", "dev",
                                  "app",  "uk",   "de",  "jp",   "fr",
                                  "nl",   "br",   "au",  "cn",   "ru"};
  if (index < sizeof(kCommon) / sizeof(kCommon[0])) return kCommon[index];
  return "tld" + std::to_string(index);
}

std::vector<zone::ZonePtr> Hierarchy::AllZones() const {
  std::vector<zone::ZonePtr> all;
  all.reserve(1 + tlds.size() + slds.size());
  all.push_back(root);
  all.insert(all.end(), tlds.begin(), tlds.end());
  all.insert(all.end(), slds.begin(), slds.end());
  return all;
}

Hierarchy BuildHierarchy(const HierarchyConfig& config) {
  Hierarchy h;
  AddressAllocator ns_addrs(IpAddress(198, 51, 0, 4).value());
  AddressAllocator host_addrs(IpAddress(203, 0, 0, 10).value());

  auto register_zone = [&](const zone::ZonePtr& zone,
                           const std::vector<IpAddress>& addrs) {
    h.nameservers[zone->origin()] = addrs;
    for (const IpAddress& addr : addrs) {
      h.address_to_zone[addr] = zone->origin();
    }
  };

  // Synthesizes a stable AAAA companion for a v4 nameserver address
  // (2001:db8::<v4>), so referrals carry dual-stack glue like real ones.
  auto companion_v6 = [](IpAddress v4) {
    std::array<uint8_t, 16> octets{};
    octets[0] = 0x20;
    octets[1] = 0x01;
    octets[2] = 0x0d;
    octets[3] = 0xb8;
    uint32_t v = v4.value();
    octets[12] = static_cast<uint8_t>(v >> 24);
    octets[13] = static_cast<uint8_t>(v >> 16);
    octets[14] = static_cast<uint8_t>(v >> 8);
    octets[15] = static_cast<uint8_t>(v);
    return Ipv6Address(octets);
  };

  // Adds apex NS records + in-zone A/AAAA glue; returns the addresses.
  auto add_nameservers = [&](zone::Zone& zone, const dns::Name& ns_parent) {
    std::vector<IpAddress> addrs;
    for (size_t k = 0; k < config.ns_per_zone; ++k) {
      dns::Name ns_name = *ns_parent.Child(
          (k == 0 ? std::string("ns1") : "ns" + std::to_string(k + 1)));
      IpAddress addr = ns_addrs.Next();
      addrs.push_back(addr);
      auto status = zone.AddRecord(dns::ResourceRecord{
          zone.origin(), dns::RRType::kNS, dns::RRClass::kIN, 86400,
          dns::NsRdata{ns_name}});
      assert(status.ok());
      if (ns_name.IsSubdomainOf(zone.origin())) {
        status = zone.AddRecord(dns::ResourceRecord{
            ns_name, dns::RRType::kA, dns::RRClass::kIN, 86400,
            dns::ARdata{addr}});
        assert(status.ok());
        status = zone.AddRecord(dns::ResourceRecord{
            ns_name, dns::RRType::kAAAA, dns::RRClass::kIN, 86400,
            dns::AaaaRdata{companion_v6(addr)}});
        assert(status.ok());
      }
      (void)status;
    }
    return addrs;
  };

  // Delegates `child_origin` (served by `child_ns` at `child_addrs`) from
  // `parent` with glue.
  auto delegate = [&](zone::Zone& parent, const zone::Zone& child,
                      const std::vector<IpAddress>& child_addrs) {
    const dns::RRset* child_ns = child.ApexNs();
    assert(child_ns != nullptr);
    size_t k = 0;
    for (const auto& rdata : child_ns->rdatas) {
      const auto& ns = std::get<dns::NsRdata>(rdata);
      auto status = parent.AddRecord(dns::ResourceRecord{
          child.origin(), dns::RRType::kNS, dns::RRClass::kIN, 172800,
          dns::NsRdata{ns.nsdname}});
      assert(status.ok());
      // Glue: required because the nameserver names live inside the child.
      if (ns.nsdname.IsSubdomainOf(child.origin()) &&
          k < child_addrs.size()) {
        status = parent.AddRecord(dns::ResourceRecord{
            ns.nsdname, dns::RRType::kA, dns::RRClass::kIN, 172800,
            dns::ARdata{child_addrs[k]}});
        assert(status.ok());
        status = parent.AddRecord(dns::ResourceRecord{
            ns.nsdname, dns::RRType::kAAAA, dns::RRClass::kIN, 172800,
            dns::AaaaRdata{companion_v6(child_addrs[k])}});
        assert(status.ok());
      }
      (void)status;
      ++k;
    }
  };

  // --- Root zone ---
  h.root = std::make_shared<zone::Zone>(dns::Name::Root());
  {
    // Root nameservers use the classic <letter>.root-servers.net naming.
    std::vector<IpAddress> root_addrs;
    dns::Name rs_net = *dns::Name::Parse("root-servers.net");
    auto soa_ok = h.root->AddRecord(
        MakeSoa(dns::Name::Root(), *rs_net.Child("a")));
    assert(soa_ok.ok());
    (void)soa_ok;
    for (size_t k = 0; k < std::max<size_t>(config.ns_per_zone, 2); ++k) {
      dns::Name ns_name =
          *rs_net.Child(std::string(1, static_cast<char>('a' + k)));
      IpAddress addr = ns_addrs.Next();
      root_addrs.push_back(addr);
      auto s1 = h.root->AddRecord(dns::ResourceRecord{
          dns::Name::Root(), dns::RRType::kNS, dns::RRClass::kIN, 518400,
          dns::NsRdata{ns_name}});
      auto s2 = h.root->AddRecord(dns::ResourceRecord{
          ns_name, dns::RRType::kA, dns::RRClass::kIN, 518400,
          dns::ARdata{addr}});
      auto s3 = h.root->AddRecord(dns::ResourceRecord{
          ns_name, dns::RRType::kAAAA, dns::RRClass::kIN, 518400,
          dns::AaaaRdata{companion_v6(addr)}});
      assert(s1.ok() && s2.ok() && s3.ok());
      (void)s1;
      (void)s2;
      (void)s3;
    }
    register_zone(h.root, root_addrs);
  }

  // --- TLD and SLD zones ---
  for (size_t t = 0; t < config.n_tlds; ++t) {
    dns::Name tld_origin = *dns::Name::Root().Child(TldLabel(t));
    auto tld = std::make_shared<zone::Zone>(tld_origin);
    auto soa_ok = tld->AddRecord(MakeSoa(tld_origin, *tld_origin.Child("ns1")));
    assert(soa_ok.ok());
    (void)soa_ok;
    auto tld_addrs = add_nameservers(*tld, tld_origin);
    register_zone(tld, tld_addrs);
    delegate(*h.root, *tld, tld_addrs);

    for (size_t s = 0; s < config.n_slds_per_tld; ++s) {
      dns::Name sld_origin =
          *tld_origin.Child("domain" + std::to_string(s));
      auto sld = std::make_shared<zone::Zone>(sld_origin);
      auto sld_soa_ok =
          sld->AddRecord(MakeSoa(sld_origin, *sld_origin.Child("ns1")));
      assert(sld_soa_ok.ok());
      (void)sld_soa_ok;
      auto sld_addrs = add_nameservers(*sld, sld_origin);
      register_zone(sld, sld_addrs);
      delegate(*tld, *sld, sld_addrs);

      size_t hosts = std::min(config.n_hosts_per_sld,
                              sizeof(kHostLabels) / sizeof(kHostLabels[0]));
      for (size_t hidx = 0; hidx < hosts; ++hidx) {
        dns::Name host = *sld_origin.Child(kHostLabels[hidx]);
        auto st = sld->AddRecord(dns::ResourceRecord{
            host, dns::RRType::kA, dns::RRClass::kIN, 3600,
            dns::ARdata{host_addrs.Next()}});
        assert(st.ok());
        (void)st;
        h.hostnames.push_back(host);
      }
      // Apex MX pointing at mail, to exercise additional processing.
      if (hosts >= 2) {
        auto st = sld->AddRecord(dns::ResourceRecord{
            sld_origin, dns::RRType::kMX, dns::RRClass::kIN, 3600,
            dns::MxRdata{10, *sld_origin.Child("mail")}});
        assert(st.ok());
        (void)st;
      }
      h.slds.push_back(std::move(sld));
    }
    h.tlds.push_back(std::move(tld));
  }

  if (config.sign_root) {
    auto status = zone::SignZone(*h.root, config.dnssec);
    if (!status.ok()) {
      LDP_ERROR << "failed to sign root: " << status.error().ToString();
    }
  }
  return h;
}

Hierarchy BuildRootHierarchy(size_t n_tlds, bool sign,
                             const zone::DnssecConfig& dnssec, uint64_t seed) {
  HierarchyConfig config;
  config.n_tlds = n_tlds;
  config.n_slds_per_tld = 0;
  // Typical TLDs publish several nameservers; the referral's unsigned NS +
  // glue bulk relative to its signatures shapes the Fig 10 ratios.
  config.ns_per_zone = 4;
  config.seed = seed;
  config.sign_root = sign;
  config.dnssec = dnssec;
  return BuildHierarchy(config);
}

}  // namespace ldp::workload
