// Ground-truth DNS hierarchy synthesis: a root zone, TLD zones, and SLD
// zones with consistent delegations, glue, and public nameserver addresses.
//
// This stands in for the real Internet's hierarchy (DESIGN.md substitution
// table): the zone constructor replays queries against a simulated Internet
// built from these zones, and the hierarchy-emulation experiments serve
// them from the meta-DNS-server.
#ifndef LDPLAYER_WORKLOAD_HIERARCHY_H
#define LDPLAYER_WORKLOAD_HIERARCHY_H

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ip.h"
#include "zone/dnssec.h"
#include "zone/zone.h"

namespace ldp::workload {

struct HierarchyConfig {
  size_t n_tlds = 20;
  size_t n_slds_per_tld = 25;
  size_t n_hosts_per_sld = 4;   // www, mail, api, ...
  size_t ns_per_zone = 2;
  uint64_t seed = 42;
  bool sign_root = false;       // DNSSEC-sign the root zone
  zone::DnssecConfig dnssec;    // used when sign_root is set
};

struct Hierarchy {
  zone::ZonePtr root;
  std::vector<zone::ZonePtr> tlds;
  std::vector<zone::ZonePtr> slds;

  // Public addresses of each zone's authoritative nameservers — the
  // match-clients lists for split-horizon views and the listener addresses
  // of the simulated Internet.
  std::unordered_map<dns::Name, std::vector<IpAddress>> nameservers;

  // Reverse index: which zone origin an authoritative address serves.
  std::unordered_map<IpAddress, dns::Name> address_to_zone;

  std::vector<zone::ZonePtr> AllZones() const;

  // All existing "leaf" hostnames (for positive-query workloads).
  std::vector<dns::Name> hostnames;
};

// Deterministic for a given config.
Hierarchy BuildHierarchy(const HierarchyConfig& config);

// The label of the index-th synthetic TLD ("com", "net", ... then "tldN").
// Workload generators use this to emit queries for TLDs that exist in the
// generated root zone.
std::string TldLabel(size_t index);

// A root-only hierarchy (delegations but no child zones built), sized for
// B-Root replay experiments.
Hierarchy BuildRootHierarchy(size_t n_tlds, bool sign,
                             const zone::DnssecConfig& dnssec,
                             uint64_t seed = 42);

}  // namespace ldp::workload

#endif  // LDPLAYER_WORKLOAD_HIERARCHY_H
