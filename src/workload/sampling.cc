#include "workload/sampling.h"

#include <algorithm>
#include <cmath>

namespace ldp::workload {

Result<DiscreteSampler> DiscreteSampler::Build(
    const std::vector<double>& weights) {
  if (weights.empty()) {
    return Error(ErrorCode::kInvalidArgument, "no weights");
  }
  double sum = 0;
  for (double w : weights) {
    if (w < 0 || !std::isfinite(w)) {
      return Error(ErrorCode::kInvalidArgument, "negative or non-finite weight");
    }
    sum += w;
  }
  if (sum <= 0) {
    return Error(ErrorCode::kInvalidArgument, "weights sum to zero");
  }

  size_t n = weights.size();
  DiscreteSampler sampler;
  sampler.prob_.resize(n);
  sampler.alias_.resize(n);

  // Scaled probabilities; partition into small (<1) and large (>=1).
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    sampler.prob_[s] = scaled[s];
    sampler.alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (uint32_t i : large) {
    sampler.prob_[i] = 1.0;
    sampler.alias_[i] = i;
  }
  for (uint32_t i : small) {  // numerical leftovers
    sampler.prob_[i] = 1.0;
    sampler.alias_[i] = i;
  }
  return sampler;
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  size_t column = rng.NextBelow(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

std::vector<double> HeavyTailClientWeights(size_t n_clients,
                                           double top_fraction,
                                           double top_share, uint64_t seed) {
  // Two-tier construction so finite samples actually meet the calibration
  // (a pure Pareto's asymptotic share formula under-delivers at n ~ 10^4):
  // a `top_fraction` of clients ("busy resolvers") split `top_share` of the
  // total weight, the rest split the remainder, each tier Pareto-shaped so
  // the within-tier distribution is itself skewed and the overall per-client
  // count CDF looks like the paper's Fig 15c.
  Rng rng(seed);
  size_t n_heavy = std::max<size_t>(1, static_cast<size_t>(
                                           static_cast<double>(n_clients) *
                                           top_fraction));
  if (n_heavy >= n_clients) n_heavy = n_clients;

  std::vector<double> weights(n_clients);
  double heavy_raw = 0, light_raw = 0;
  for (size_t i = 0; i < n_clients; ++i) {
    weights[i] = rng.NextPareto(1.0, 1.3);
    if (i < n_heavy) {
      heavy_raw += weights[i];
    } else {
      light_raw += weights[i];
    }
  }
  // Scale the tiers to their target shares. (Clients are later addressed by
  // index, so making the first n_heavy indices the heavy tier is fine.)
  double heavy_scale = heavy_raw > 0 ? top_share / heavy_raw : 0;
  double light_scale =
      light_raw > 0 ? (1.0 - top_share) / light_raw : 0;
  for (size_t i = 0; i < n_clients; ++i) {
    weights[i] *= i < n_heavy ? heavy_scale : light_scale;
  }
  return weights;
}

}  // namespace ldp::workload
