// Discrete distributions for workload synthesis: Walker alias sampling for
// arbitrary weights (client skew) and Zipf over ranked items (name
// popularity).
#ifndef LDPLAYER_WORKLOAD_SAMPLING_H
#define LDPLAYER_WORKLOAD_SAMPLING_H

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace ldp::workload {

// Walker's alias method: O(n) build, O(1) sample. The workhorse for picking
// "which client sends this query" under heavy-tailed per-client load.
class DiscreteSampler {
 public:
  // Weights must be non-negative with a positive sum.
  static Result<DiscreteSampler> Build(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;
  size_t size() const { return prob_.size(); }

 private:
  DiscreteSampler() = default;
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

// Zipf with parameter s over ranks 1..n (rank 0 returned = most popular).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);
  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Heavy-tailed client weights calibrated so that roughly `top_share` of the
// total load comes from `top_fraction` of clients (the paper observes 1% of
// clients sending 75% of B-Root load, §5.2.4). Pareto-distributed weights,
// deterministically generated.
std::vector<double> HeavyTailClientWeights(size_t n_clients,
                                           double top_fraction,
                                           double top_share, uint64_t seed);

}  // namespace ldp::workload

#endif  // LDPLAYER_WORKLOAD_SAMPLING_H
